//! One test configuration: hosts × path × iperf3 flags.

use iperf3sim::Iperf3Opts;
use linuxhost::HostConfig;
use nethw::PathSpec;

/// A named, runnable test configuration.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Short label ("default", "zc+pace50", …).
    pub label: String,
    /// Sending host.
    pub client: HostConfig,
    /// Receiving host.
    pub server: HostConfig,
    /// Network between them.
    pub path: PathSpec,
    /// iperf3 flags.
    pub opts: Iperf3Opts,
}

impl Scenario {
    /// Construct.
    pub fn new(
        label: impl Into<String>,
        client: HostConfig,
        server: HostConfig,
        path: PathSpec,
        opts: Iperf3Opts,
    ) -> Self {
        Scenario { label: label.into(), client, server, path, opts }
    }

    /// Symmetric hosts (the common case on both testbeds).
    pub fn symmetric(
        label: impl Into<String>,
        host: HostConfig,
        path: PathSpec,
        opts: Iperf3Opts,
    ) -> Self {
        Scenario {
            label: label.into(),
            client: host.clone(),
            server: host,
            path,
            opts,
        }
    }

    /// Full description for logs.
    pub fn describe(&self) -> String {
        format!(
            "{} | {} -> {} over {} | {}",
            self.label,
            self.client.name,
            self.server.name,
            self.path.name,
            self.opts.command_line(&self.server.name)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbeds::{EsnetPath, Testbeds};
    use linuxhost::KernelVersion;

    #[test]
    fn describe_is_informative() {
        let s = Scenario::symmetric(
            "default",
            Testbeds::esnet_host(KernelVersion::L6_8),
            Testbeds::esnet_path(EsnetPath::Lan),
            Iperf3Opts::new(10),
        );
        let d = s.describe();
        assert!(d.contains("default"));
        assert!(d.contains("ESnet LAN"));
        assert!(d.contains("iperf3 -c"));
    }
}
