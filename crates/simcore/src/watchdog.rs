//! Liveness guards for the event loop.
//!
//! A discrete-event simulation has two failure modes that would
//! otherwise spin forever: a *livelock*, where handlers keep scheduling
//! events at the current instant so simulated time never advances, and
//! a *runaway*, where time advances but the event population explodes
//! far beyond what the configured workload could legitimately generate.
//! [`Watchdog`] detects both with O(1) work per event and reports a
//! structured [`WatchdogTrip`] the caller can convert into its own
//! error type instead of hanging the process.

use crate::time::SimTime;

/// Default cap on events processed at a single simulated instant.
///
/// The simulator's handlers chain at most a few events per burst per
/// instant; even an 8-flow LAN run stays well under a few thousand
/// same-instant events, so two million is far outside legitimate
/// behaviour while still tripping in well under a second of wall time.
pub const DEFAULT_MAX_EVENTS_PER_INSTANT: u64 = 2_000_000;

/// What the watchdog observed when it tripped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WatchdogTrip {
    /// Simulated time stopped advancing: `events` fired back to back at
    /// instant `at` without the clock moving.
    Livelock {
        /// The instant the loop is stuck at.
        at: SimTime,
        /// Events processed at that instant before tripping.
        events: u64,
    },
    /// The total event budget for the run was exhausted.
    BudgetExhausted {
        /// Events processed before tripping.
        events: u64,
        /// The configured budget.
        budget: u64,
    },
}

impl std::fmt::Display for WatchdogTrip {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WatchdogTrip::Livelock { at, events } => write!(
                f,
                "livelock: {events} events fired at t={at} without simulated time advancing"
            ),
            WatchdogTrip::BudgetExhausted { events, budget } => {
                write!(f, "event budget exhausted: {events} events processed (budget {budget})")
            }
        }
    }
}

/// Event-loop liveness guard: call [`Watchdog::observe`] once per
/// dispatched event with the current simulated time.
#[derive(Debug, Clone)]
pub struct Watchdog {
    max_events_per_instant: u64,
    total_budget: Option<u64>,
    last_time: SimTime,
    events_at_instant: u64,
    total_events: u64,
}

impl Watchdog {
    /// A watchdog with the default per-instant cap and an optional
    /// whole-run event budget (`None` = unlimited total).
    pub fn new(total_budget: Option<u64>) -> Self {
        Watchdog {
            max_events_per_instant: DEFAULT_MAX_EVENTS_PER_INSTANT,
            total_budget,
            last_time: SimTime::ZERO,
            events_at_instant: 0,
            total_events: 0,
        }
    }

    /// Builder: override the per-instant cap (tests use tiny values to
    /// provoke trips cheaply).
    pub fn with_max_events_per_instant(mut self, cap: u64) -> Self {
        self.max_events_per_instant = cap.max(1);
        self
    }

    /// Events observed so far.
    pub fn total_events(&self) -> u64 {
        self.total_events
    }

    /// Record one dispatched event at simulated time `now`; returns the
    /// trip condition if the loop is no longer making progress.
    pub fn observe(&mut self, now: SimTime) -> Result<(), WatchdogTrip> {
        self.total_events += 1;
        if now > self.last_time {
            self.last_time = now;
            self.events_at_instant = 1;
        } else {
            self.events_at_instant += 1;
            if self.events_at_instant > self.max_events_per_instant {
                return Err(WatchdogTrip::Livelock { at: now, events: self.events_at_instant });
            }
        }
        if let Some(budget) = self.total_budget {
            if self.total_events > budget {
                return Err(WatchdogTrip::BudgetExhausted {
                    events: self.total_events,
                    budget,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn advancing_time_never_trips() {
        let mut w = Watchdog::new(None).with_max_events_per_instant(4);
        let mut t = SimTime::ZERO;
        for _ in 0..1000 {
            t += SimDuration::from_nanos(1);
            assert!(w.observe(t).is_ok());
        }
        assert_eq!(w.total_events(), 1000);
    }

    #[test]
    fn stuck_clock_trips_livelock() {
        let mut w = Watchdog::new(None).with_max_events_per_instant(10);
        let t = SimTime::from_nanos(5);
        let mut tripped = None;
        for _ in 0..100 {
            if let Err(trip) = w.observe(t) {
                tripped = Some(trip);
                break;
            }
        }
        match tripped {
            Some(WatchdogTrip::Livelock { at, events }) => {
                assert_eq!(at, t);
                assert_eq!(events, 11);
            }
            other => panic!("expected livelock, got {other:?}"),
        }
    }

    #[test]
    fn bursts_below_the_cap_are_fine() {
        let mut w = Watchdog::new(None).with_max_events_per_instant(10);
        for step in 0..50u64 {
            let t = SimTime::from_nanos(step);
            for _ in 0..10 {
                assert!(w.observe(t).is_ok(), "10 events per instant must pass");
            }
        }
    }

    #[test]
    fn budget_exhaustion_trips() {
        let mut w = Watchdog::new(Some(5));
        let mut t = SimTime::ZERO;
        for i in 0..5 {
            t += SimDuration::from_nanos(1);
            assert!(w.observe(t).is_ok(), "event {i} within budget");
        }
        t += SimDuration::from_nanos(1);
        assert_eq!(
            w.observe(t),
            Err(WatchdogTrip::BudgetExhausted { events: 6, budget: 5 })
        );
    }

    #[test]
    fn trip_messages_are_informative() {
        let live = WatchdogTrip::Livelock { at: SimTime::from_nanos(42), events: 7 };
        assert!(live.to_string().contains("livelock"));
        let budget = WatchdogTrip::BudgetExhausted { events: 9, budget: 8 };
        assert!(budget.to_string().contains("budget"));
    }
}
