//! Generic discrete-event queue.
//!
//! The simulator in `netsim` drives everything from a single
//! [`EventQueue`]: events are pushed with an absolute firing time and
//! popped in time order. Events scheduled for the same instant fire in
//! insertion order (FIFO), which keeps runs deterministic — a property
//! the whole reproduction depends on (every run is a pure function of
//! its seed).
//!
//! # Engine internals
//!
//! Entries are ordered on `(time, seq)`, where `seq` is a monotonically
//! increasing insertion counter. Because every key is unique, the pop
//! order is the *total* order over `(time, seq)` — same-time FIFO falls
//! out of the key itself, not out of any property of the container
//! shape. Any correct priority structure therefore pops the exact same
//! sequence, which is what lets the engine be swapped without
//! disturbing bit-for-bit determinism (see
//! `tests/engine_differential.rs` and
//! `tests/timer_wheel_differential.rs` for the differential proofs
//! against a reference `BinaryHeap`).
//!
//! Payloads of plain [`EventQueue::push`] events ride *inline* in the
//! rung nodes: the node a pop returns was just touched by the sift, so
//! the common case costs zero extra memory traffic. Only cancelable
//! timers ([`EventQueue::schedule_timer`]) indirect through a
//! free-listed slab, which is what makes their cancellation O(1) — the
//! slot is tombstoned and the floating node is filtered out when its
//! bucket eventually drains.
//!
//! The queue is a three-rung **hierarchical timer wheel**, finest rung
//! first:
//!
//! 1. **Near heap** — a Vec-backed 4-ary min-heap holding every entry
//!    with `time <= horizon`. This is the only sifted structure; pops
//!    come exclusively from its root. A 4-ary layout halves the tree
//!    depth of a binary heap, trading a wider (but contiguous,
//!    cache-resident) child scan per level for fewer levels.
//! 2. **Wheel ring** — `SLOTS` (64) buckets of `2^width_shift`
//!    nanoseconds each, covering `(horizon, ring_end]`. A push lands in
//!    its bucket with one shift and one append — O(1), no comparisons
//!    against other pending entries. An occupancy bitmap finds the
//!    next non-empty bucket.
//! 3. **Overflow** — an unsorted spill list for entries beyond
//!    `ring_end`, with its exact minimum key maintained on push. When
//!    both finer rungs drain, the wheel *rebases* at the overflow
//!    minimum and re-files the spill list (each entry is re-filed at
//!    most once per full ring span consumed, so the amortized cost per
//!    entry is O(1)).
//!
//! When the near heap drains, `migrate` drains the next occupied bucket
//! — whole slots at a time — into the near heap and Floyd-heapifies the
//! batch. The slot width self-tunes toward drain batches in
//! `[MIN_BATCH, MAX_BATCH]`, but only at rebase points (when the ring
//! is empty), so an entry's bucket index never changes underneath it.
//!
//! The rungs are invisible in the pop order: every entry still compares
//! by the same total `(time, seq)` order, each coarser rung only ever
//! holds entries *later* than everything in the finer rungs, and
//! migration/rebasing are driven purely by key values — never by wall
//! clock — so runs remain bit-for-bit deterministic.
//!
//! # Cancelable timers
//!
//! [`EventQueue::schedule_timer`] is `push` plus a [`TimerId`] receipt;
//! [`EventQueue::cancel_timer`] revokes a pending timer. Cancellation
//! is O(1) for wheel- and overflow-resident timers (the payload slot is
//! tombstoned and the floating node is filtered out when its bucket
//! drains); only the rare cancellations of a timer that is already in
//! the near heap, or that is the exact minimum of its rung, pay a
//! bounded scan to keep `peek_time` exact. Cancelled timers count as
//! neither popped nor pending: `total_pushed - total_cancelled -
//! total_popped == len` at all times.

use crate::time::SimTime;

/// Arity of the near heap: each node has up to four children.
const D: usize = 4;

/// Number of buckets in the wheel ring (must be a multiple of 64 for
/// the occupancy bitmap). Kept small so the bucket headers and their
/// tail lines stay cache-resident under a scattered push pattern.
const SLOTS: usize = 64;

/// Words in the occupancy bitmap.
const OCC_WORDS: usize = SLOTS / 64;

/// Bucket drains below this (mean, per rebase period) widen the slots
/// (too many migrations, each paying a bitmap scan + heapify).
const MIN_BATCH: usize = 64;

/// Bucket drains above this shrink the slots (near heap getting too
/// deep to stay cache-resident).
const MAX_BATCH: usize = 512;

/// Bounds for the adaptive slot width, as powers of two of nanoseconds:
/// 64 ns up to ~2.2 s per slot.
const MIN_WIDTH_SHIFT: u32 = 6;
const MAX_WIDTH_SHIFT: u32 = 31;

/// Initial slot width: 2^18 ns ≈ 262 µs, a compromise between LAN RTTs
/// and WAN timer spacings; the width self-tunes from there.
const INIT_WIDTH_SHIFT: u32 = 18;

/// Where a node's payload lives.
#[derive(Debug, Clone)]
enum Payload<E> {
    /// A plain event: the payload rides in the node itself, so popping
    /// it touches no memory beyond the heap the sift just walked.
    Event(E),
    /// A cancelable timer: the payload lives in the slab at this slot
    /// (the indirection is what buys O(1) cancellation).
    Timer(usize),
}

/// One pending entry: the `(time, seq)` ordering key plus its payload.
#[derive(Debug, Clone)]
struct Node<E> {
    time: SimTime,
    seq: u64,
    payload: Payload<E>,
}

impl<E> Node<E> {
    /// The total-order key: earliest time first, then insertion order.
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.time, self.seq)
    }
}

/// A point-in-time snapshot of [`EventQueue`] internals for
/// observability (see [`EventQueue::health`]). Sampled by the harness
/// at checkpoint barriers and surfaced as gauges, so sharded engines
/// inherit per-shard metrics without reaching into queue internals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueueHealth {
    /// Live events in the near (4-ary heap) rung.
    pub near_depth: usize,
    /// Live events parked in the wheel ring buckets.
    pub ring_occupancy: usize,
    /// Live events spilled past the wheel horizon into overflow.
    pub overflow_live: usize,
    /// Cancelled-timer tombstones still floating in the rungs.
    pub stale_timers: usize,
    /// Allocated timer-payload slab slots (high-water mark).
    pub slab_slots: usize,
    /// Slab slots currently on the free list.
    pub free_slots: usize,
    /// Total pending live events (== `EventQueue::len`).
    pub len: usize,
    /// Lifetime count of past-time pushes clamped to `now`.
    pub past_clamps: u64,
}

/// An event queue over an arbitrary event payload type `E`.
#[derive(Debug)]
pub struct EventQueue<E> {
    /// Min-heap of nodes with `time <= horizon`. Never contains
    /// cancelled timers.
    near: Vec<Node<E>>,
    /// Times at or below this belong to the near heap.
    horizon: SimTime,
    /// Wheel buckets: unsorted nodes with
    /// `horizon < time < ring_end()`, indexed by
    /// `(time - ring_base) >> width_shift`.
    buckets: Vec<Vec<Node<E>>>,
    /// One bit per bucket: does it hold any node (possibly stale)?
    occ: [u64; OCC_WORDS],
    /// Wheel origin (ns). Bucket `i` covers
    /// `[ring_base + (i << width_shift), ring_base + ((i+1) << width_shift))`.
    ring_base: u64,
    /// log2 of the bucket width in nanoseconds (adaptive, but only at
    /// rebase points so existing indices never move).
    width_shift: u32,
    /// Live (non-cancelled) nodes across all buckets.
    ring_len: usize,
    /// Unsorted spill list for nodes at or beyond `ring_end()`.
    overflow: Vec<Node<E>>,
    /// Exact minimum live `(time, seq)` key in `overflow`, if any.
    overflow_min: Option<(SimTime, u64)>,
    /// Live nodes in `overflow` (the Vec may also hold tombstones).
    overflow_live: usize,
    /// Cancelled timers still floating in a bucket or the overflow list
    /// (their payload slots are already recycled). While this is zero —
    /// the common case, since the simulator's event chains never cancel
    /// — drains skip the per-node liveness filter entirely.
    stale: usize,
    /// Timer payload storage addressed by `Payload::Timer` slots;
    /// `None` marks a free or tombstoned slot.
    slab: Vec<Option<E>>,
    /// Sequence number of the timer currently owning each slab slot;
    /// lets drains tell a live timer from a stale one after slot reuse.
    slot_seq: Vec<u64>,
    /// Slots of `slab` ready for reuse.
    free: Vec<usize>,
    /// Live nodes drained / drain batches since the last width
    /// adaptation (rebase-time feedback for `width_shift`).
    drained_keys: u64,
    drained_batches: u64,
    seq: u64,
    now: SimTime,
    pushed: u64,
    popped: u64,
    cancelled: u64,
    past_clamps: u64,
}

impl<E: Clone> Clone for EventQueue<E> {
    /// Deep copy: nodes, timer slab, free list, counters, and the
    /// whole wheel geometry carry over verbatim, so a cloned queue pops
    /// the identical (time, seq) sequence as the original. This is the
    /// engine half of the checkpoint/resume contract.
    fn clone(&self) -> Self {
        EventQueue {
            near: self.near.clone(),
            horizon: self.horizon,
            buckets: self.buckets.clone(),
            occ: self.occ,
            ring_base: self.ring_base,
            width_shift: self.width_shift,
            ring_len: self.ring_len,
            overflow: self.overflow.clone(),
            overflow_min: self.overflow_min,
            overflow_live: self.overflow_live,
            stale: self.stale,
            slab: self.slab.clone(),
            slot_seq: self.slot_seq.clone(),
            free: self.free.clone(),
            drained_keys: self.drained_keys,
            drained_batches: self.drained_batches,
            seq: self.seq,
            now: self.now,
            pushed: self.pushed,
            popped: self.popped,
            cancelled: self.cancelled,
            past_clamps: self.past_clamps,
        }
    }
}

/// Receipt for a pending timer scheduled with
/// [`EventQueue::schedule_timer`]; redeem it (at most once) with
/// [`EventQueue::cancel_timer`].
#[derive(Debug, Clone, Copy)]
pub struct TimerId {
    time: SimTime,
    seq: u64,
    slot: usize,
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at time zero.
    pub fn new() -> Self {
        Self::with_capacity(1024)
    }

    /// An empty queue pre-sized for `cap` pending events (callers that
    /// know their fan-out — e.g. one chain per flow — avoid growth
    /// reallocations on the hot path).
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            near: Vec::with_capacity(cap.min(2 * MAX_BATCH)),
            horizon: SimTime::ZERO,
            buckets: std::iter::repeat_with(Vec::new).take(SLOTS).collect(),
            occ: [0; OCC_WORDS],
            ring_base: 0,
            width_shift: INIT_WIDTH_SHIFT,
            ring_len: 0,
            overflow: Vec::new(),
            overflow_min: None,
            overflow_live: 0,
            stale: 0,
            slab: Vec::new(),
            slot_seq: Vec::new(),
            free: Vec::new(),
            drained_keys: 0,
            drained_batches: 0,
            seq: 0,
            now: SimTime::ZERO,
            pushed: 0,
            popped: 0,
            cancelled: 0,
            past_clamps: 0,
        }
    }

    /// Current simulated time: the firing time of the most recently
    /// popped event (zero before the first pop).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// First nanosecond beyond the wheel ring's coverage.
    #[inline]
    fn ring_end(&self) -> u64 {
        self.ring_base.saturating_add((SLOTS as u64) << self.width_shift)
    }

    /// Clamp-and-count for pushes dated in the past (a caller causality
    /// bug that debug builds catch with a panic; see
    /// [`EventQueue::past_clamps`]).
    #[inline]
    fn admit(&mut self, at: SimTime) -> (SimTime, u64) {
        debug_assert!(at >= self.now, "event scheduled in the past: {at} < {}", self.now);
        let at = if at < self.now {
            self.past_clamps += 1;
            self.now
        } else {
            at
        };
        let seq = self.seq;
        self.seq += 1;
        self.pushed += 1;
        (at, seq)
    }

    /// Schedule `event` to fire at absolute time `at`.
    ///
    /// Scheduling in the past is a logic error in the caller and panics
    /// in debug builds; in release it is clamped to `now` to keep the
    /// run monotonic, and the clamp is counted (see
    /// [`EventQueue::past_clamps`]) so watchdogs can surface the masked
    /// causality bug instead of letting it pass silently.
    pub fn push(&mut self, at: SimTime, event: E) {
        let (time, seq) = self.admit(at);
        self.insert_node(Node { time, seq, payload: Payload::Event(event) });
    }

    /// Schedule a cancelable timer to fire `event` at absolute time
    /// `at`. Identical to [`EventQueue::push`] except it returns a
    /// [`TimerId`] receipt for [`EventQueue::cancel_timer`]. Scheduling
    /// is O(1) (amortized) regardless of how far out `at` is.
    pub fn schedule_timer(&mut self, at: SimTime, event: E) -> TimerId {
        let (time, seq) = self.admit(at);
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slab[slot] = Some(event);
                self.slot_seq[slot] = seq;
                slot
            }
            None => {
                self.slab.push(Some(event));
                self.slot_seq.push(seq);
                self.slab.len() - 1
            }
        };
        self.insert_node(Node { time, seq, payload: Payload::Timer(slot) });
        TimerId { time, seq, slot }
    }

    /// Route a node to its rung. Shared by pushes and rebase re-filing.
    #[inline]
    fn insert_node(&mut self, node: Node<E>) {
        let at = node.time;
        if at <= self.horizon {
            self.near.push(node);
            self.sift_up(self.near.len() - 1);
            return;
        }
        let at_ns = at.as_nanos();
        if at_ns < self.ring_end() {
            let idx = ((at_ns - self.ring_base) >> self.width_shift) as usize;
            self.occ[idx / 64] |= 1 << (idx % 64);
            self.buckets[idx].push(node);
            self.ring_len += 1;
        } else {
            if self.overflow_min.is_none_or(|m| node.key() < m) {
                self.overflow_min = Some(node.key());
            }
            self.overflow.push(node);
            self.overflow_live += 1;
        }
    }

    /// Is this floating timer node still live (not cancelled, slot not
    /// reused)?
    #[inline]
    fn node_live(slot_seq: &[u64], slab: &[Option<E>], node: &Node<E>) -> bool {
        match node.payload {
            Payload::Event(_) => true,
            Payload::Timer(slot) => slot_seq[slot] == node.seq && slab[slot].is_some(),
        }
    }

    /// Cancel a pending timer. Returns `true` if the timer was still
    /// pending (it will now never fire), `false` if it already fired or
    /// was already cancelled.
    ///
    /// Wheel- and overflow-resident timers cancel in O(1): the payload
    /// slot is tombstoned immediately and the floating node is filtered
    /// out when its bucket eventually drains. Only a timer that is the
    /// exact minimum of its rung (a bounded bucket/spill rescan keeps
    /// `peek_time` exact) or that already migrated into the near heap
    /// (an eager heap removal) pays more.
    pub fn cancel_timer(&mut self, id: TimerId) -> bool {
        if id.slot >= self.slab.len()
            || self.slot_seq[id.slot] != id.seq
            || self.slab[id.slot].is_none()
        {
            return false;
        }
        // Drop the payload and recycle the slot immediately; the
        // floating node is detected as stale wherever it surfaces (seq
        // mismatch once the slot is reused, empty slab entry until
        // then).
        self.slab[id.slot] = None;
        self.free.push(id.slot);
        self.cancelled += 1;
        let at_ns = id.time.as_nanos();
        if id.time <= self.horizon {
            // Near-resident: remove eagerly so the heap root (and thus
            // `peek_time`/`pop`) never sees a tombstone.
            let i = self
                .near
                .iter()
                .position(|n| n.seq == id.seq)
                .expect("live near timer must be in the near heap");
            self.heap_remove_at(i);
        } else if at_ns < self.ring_end() {
            self.ring_len -= 1;
            self.stale += 1;
        } else {
            self.overflow_live -= 1;
            self.stale += 1;
            if self.overflow_min.is_some_and(|(_, mseq)| mseq == id.seq) {
                self.rescan_overflow_min();
            }
        }
        true
    }

    /// Recompute the overflow's exact live minimum (dropping tombstoned
    /// nodes while at it).
    fn rescan_overflow_min(&mut self) {
        let mut min: Option<(SimTime, u64)> = None;
        let mut i = 0;
        while i < self.overflow.len() {
            if Self::node_live(&self.slot_seq, &self.slab, &self.overflow[i]) {
                let k = self.overflow[i].key();
                if min.is_none_or(|m| k < m) {
                    min = Some(k);
                }
                i += 1;
            } else {
                self.overflow.swap_remove(i);
                self.stale -= 1;
            }
        }
        self.overflow_min = min;
    }

    /// Remove `near[i]`, restoring the heap property.
    fn heap_remove_at(&mut self, i: usize) {
        let _removed = self.near.swap_remove(i);
        if i < self.near.len() {
            // The replacement may violate either direction.
            self.sift_down(i);
            self.sift_up(i);
        }
    }

    /// Take the payload out of a popped node.
    #[inline]
    fn claim(&mut self, node: Node<E>) -> E {
        match node.payload {
            Payload::Event(e) => e,
            Payload::Timer(slot) => {
                let e = self.slab[slot].take().expect("popped timer slot holds an event");
                self.free.push(slot);
                e
            }
        }
    }

    /// Pop the next event, advancing the clock to its firing time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.near.is_empty() {
            self.migrate()?;
        }
        let node = if self.near.len() > 1 {
            let node = self.near.swap_remove(0);
            self.sift_down(0);
            node
        } else {
            self.near.pop().expect("near heap is non-empty")
        };
        debug_assert!(node.time >= self.now, "event queue time went backwards");
        self.now = node.time;
        self.popped += 1;
        let time = node.time;
        Some((time, self.claim(node)))
    }

    /// Pop every pending event sharing the earliest firing time into
    /// `out`, in seq (FIFO) order, provided that time is at most
    /// `limit`. Returns the shared firing time, or `None` when the
    /// queue is exhausted or the next event is beyond `limit`. The
    /// clock advances exactly as if each event were popped
    /// individually, which is what makes the batch invisible to
    /// determinism: callers dispatch the batch in order and any events
    /// they push land at or after the batch time, i.e. after the batch
    /// in `(time, seq)` order.
    ///
    /// `out` is cleared first; reuse one buffer across calls to keep
    /// the drain allocation-free.
    pub fn pop_same_time(&mut self, limit: SimTime, out: &mut Vec<E>) -> Option<SimTime> {
        out.clear();
        let t = self.peek_time()?;
        if t > limit {
            return None;
        }
        let (_, first) = self.pop().expect("peeked event must pop");
        out.push(first);
        // Subsequent same-time entries are all near-resident (migration
        // drains whole buckets, and a bucket covers its full window),
        // so a root time check is exact.
        while self.near.first().is_some_and(|n| n.time == t) {
            let (_, ev) = self.pop().expect("root checked non-empty");
            out.push(ev);
        }
        Some(t)
    }

    /// Refill the (empty) near heap from the coarser rungs: drain the
    /// next occupied wheel bucket (whole slots at a time), advance the
    /// horizon to that bucket's end, and Floyd-heapify the batch. When
    /// the ring is empty too, rebase it at the overflow minimum and
    /// re-file the spill list. Returns `None` when every rung is empty.
    ///
    /// Every ingredient — bucket geometry, occupancy, overflow minimum
    /// — is a pure function of the entries pushed so far, so the rung
    /// split can never perturb determinism; and since each coarser rung
    /// only holds entries strictly beyond the finer rungs' coverage,
    /// the near heap's minimum is always the global minimum.
    fn migrate(&mut self) -> Option<()> {
        debug_assert!(self.near.is_empty());
        loop {
            if self.ring_len > 0 {
                let idx = self.first_occupied_bucket().expect("ring_len > 0 implies occupancy");
                let mut bucket = std::mem::take(&mut self.buckets[idx]);
                self.occ[idx / 64] &= !(1 << (idx % 64));
                let live;
                if self.stale == 0 {
                    // No cancelled timer floats anywhere: the whole
                    // bucket is live, so skip the per-node slab probe
                    // (the timer slab is cache-cold here).
                    live = bucket.len();
                    self.near.append(&mut bucket);
                } else {
                    let mut kept = 0usize;
                    for node in bucket.drain(..) {
                        if Self::node_live(&self.slot_seq, &self.slab, &node) {
                            self.near.push(node);
                            kept += 1;
                        } else {
                            // Stale nodes are dropped here; their slots
                            // were already recycled at cancel time.
                            self.stale -= 1;
                        }
                    }
                    live = kept;
                }
                self.buckets[idx] = bucket; // keep the allocation warm
                self.ring_len -= live;
                // The drained bucket covers [start, end); entries
                // exactly at `end` sit in the *next* bucket, so the
                // horizon (inclusive) stops one nanosecond short of it.
                self.horizon = SimTime::from_nanos(
                    self.ring_base
                        .saturating_add((idx as u64 + 1) << self.width_shift)
                        .saturating_sub(1),
                );
                self.drained_keys += live as u64;
                self.drained_batches += 1;
                // Floyd heapify: sift down every internal node,
                // deepest first.
                if self.near.len() > 1 {
                    for n in (0..=(self.near.len() - 2) / D).rev() {
                        self.sift_down(n);
                    }
                }
                if !self.near.is_empty() {
                    return Some(());
                }
                // All-tombstone bucket: keep draining.
            } else if self.overflow_live > 0 {
                self.rebase();
                // The overflow minimum's time equals the new horizon,
                // so re-filing always lands at least one node in near.
                if !self.near.is_empty() {
                    return Some(());
                }
            } else {
                return None;
            }
        }
    }

    /// Index of the first bucket with its occupancy bit set.
    #[inline]
    fn first_occupied_bucket(&self) -> Option<usize> {
        for (w, &bits) in self.occ.iter().enumerate() {
            if bits != 0 {
                return Some(w * 64 + bits.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Move the (empty) ring so it starts at the overflow minimum,
    /// adapt the slot width from the drain batches observed since the
    /// last rebase, and re-file the spill list into the new geometry.
    /// The overflow minimum itself lands in the near heap (its time
    /// equals the new horizon), so a rebase always makes progress.
    fn rebase(&mut self) {
        debug_assert!(self.near.is_empty() && self.ring_len == 0);
        // With zero live ring nodes, anything left in a bucket is a
        // cancelled timer's floating tombstone. Sweep them out before
        // the geometry changes underneath their (stale) indices.
        if self.stale > 0 {
            for w in 0..OCC_WORDS {
                let mut bits = self.occ[w];
                while bits != 0 {
                    let idx = w * 64 + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    self.stale -= self.buckets[idx].len();
                    self.buckets[idx].clear();
                }
            }
        }
        self.occ = [0; OCC_WORDS];
        let (min_time, _) = self.overflow_min.expect("rebase requires a live overflow node");
        self.adapt_width();
        self.horizon = min_time;
        self.ring_base = min_time.as_nanos();
        let spill = std::mem::take(&mut self.overflow);
        self.overflow_min = None;
        self.overflow_live = 0;
        if self.stale == 0 {
            for node in spill {
                self.insert_node(node);
            }
        } else {
            for node in spill {
                if Self::node_live(&self.slot_seq, &self.slab, &node) {
                    self.insert_node(node);
                } else {
                    self.stale -= 1;
                }
            }
        }
    }

    /// Steer drain batches into `[MIN_BATCH, MAX_BATCH]`: bitmap scans
    /// and heapify setup cost a pass per drain (wants wide slots),
    /// while sift depth grows with the near heap (wants narrow). Only
    /// called while the ring is empty, so existing bucket indices never
    /// move.
    fn adapt_width(&mut self) {
        if self.drained_batches == 0 {
            return;
        }
        let mean = self.drained_keys / self.drained_batches;
        if mean < MIN_BATCH as u64 && self.width_shift < MAX_WIDTH_SHIFT {
            self.width_shift += 1;
        } else if mean > MAX_BATCH as u64 && self.width_shift > MIN_WIDTH_SHIFT {
            self.width_shift -= 1;
        }
        self.drained_keys = 0;
        self.drained_batches = 0;
    }

    /// Firing time of the next event without popping it.
    ///
    /// Exact at every rung: the near root when the heap is non-empty,
    /// else the minimum of the first occupied wheel bucket holding a
    /// live node, else the maintained overflow minimum. The bucket scan
    /// is not maintained per push — it only runs in the brief window
    /// where the near heap is drained, i.e. at most once per migration
    /// cycle, so its amortized cost matches the drain it precedes.
    pub fn peek_time(&self) -> Option<SimTime> {
        if let Some(node) = self.near.first() {
            return Some(node.time);
        }
        if self.ring_len > 0 {
            for (w, &bits) in self.occ.iter().enumerate() {
                let mut bits = bits;
                while bits != 0 {
                    let idx = w * 64 + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let mut min = u64::MAX;
                    if self.stale == 0 {
                        // Every node is live; an occupied bit implies a
                        // non-empty bucket.
                        for n in &self.buckets[idx] {
                            min = min.min(n.time.as_nanos());
                        }
                        return Some(SimTime::from_nanos(min));
                    }
                    for n in &self.buckets[idx] {
                        if Self::node_live(&self.slot_seq, &self.slab, n) {
                            min = min.min(n.time.as_nanos());
                        }
                    }
                    if min != u64::MAX {
                        return Some(SimTime::from_nanos(min));
                    }
                    // All-stale bucket: keep scanning.
                }
            }
            unreachable!("ring_len > 0 implies a live bucket node");
        }
        self.overflow_min.map(|(time, _)| time)
    }

    /// Number of pending (live, uncancelled) events.
    pub fn len(&self) -> usize {
        self.near.len() + self.ring_len + self.overflow_live
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events pushed over the queue's lifetime, timers included
    /// (diagnostics).
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Total events popped over the queue's lifetime (diagnostics).
    pub fn total_popped(&self) -> u64 {
        self.popped
    }

    /// Total timers cancelled before firing. At any instant
    /// `total_pushed - total_cancelled - total_popped == len`.
    pub fn total_cancelled(&self) -> u64 {
        self.cancelled
    }

    /// How many release-mode pushes were silently clamped from the past
    /// to `now`. Non-zero means a caller has a causality bug that debug
    /// builds would have caught with a panic.
    pub fn past_clamps(&self) -> u64 {
        self.past_clamps
    }

    /// Point-in-time engine-health snapshot for observability: rung
    /// depths, tombstone debt and lifetime diagnostics in one plain
    /// struct. Costs a handful of field reads — cheap enough to sample
    /// at every checkpoint barrier — and keeps metric consumers out of
    /// the queue's private layout (simcore deliberately does not
    /// depend on the `obs` crate; the harness folds this snapshot into
    /// its registry).
    pub fn health(&self) -> QueueHealth {
        QueueHealth {
            near_depth: self.near.len(),
            ring_occupancy: self.ring_len,
            overflow_live: self.overflow_live,
            stale_timers: self.stale,
            slab_slots: self.slab.len(),
            free_slots: self.free.len(),
            len: self.len(),
            past_clamps: self.past_clamps,
        }
    }

    /// Iterate over the pending events in arbitrary order (used for
    /// end-of-run accounting, e.g. counting in-flight payloads).
    /// Cancelled timers' floating nodes are skipped.
    pub fn iter(&self) -> impl Iterator<Item = &E> {
        self.near
            .iter()
            .chain(self.buckets.iter().flatten())
            .chain(self.overflow.iter())
            .filter_map(move |n| match &n.payload {
                Payload::Event(e) => Some(e),
                Payload::Timer(slot) => {
                    if self.slot_seq[*slot] == n.seq {
                        self.slab[*slot].as_ref()
                    } else {
                        None
                    }
                }
            })
    }

    /// Move `near[i]` toward the root until its parent is no larger.
    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / D;
            if self.near[parent].key() <= self.near[i].key() {
                break;
            }
            self.near.swap(i, parent);
            i = parent;
        }
    }

    /// Move `near[i]` toward the leaves until no child is smaller.
    fn sift_down(&mut self, mut i: usize) {
        let len = self.near.len();
        loop {
            let first_child = i * D + 1;
            if first_child >= len {
                break;
            }
            // Smallest of the (up to four) children.
            let last_child = (first_child + D).min(len);
            let mut min_child = first_child;
            let mut min_key = self.near[first_child].key();
            for c in first_child + 1..last_child {
                let ck = self.near[c].key();
                if ck < min_key {
                    min_child = c;
                    min_key = ck;
                }
            }
            if self.near[i].key() <= min_key {
                break;
            }
            self.near.swap(i, min_child);
            i = min_child;
        }
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn health_snapshot_tracks_rungs_and_tombstones() {
        let mut q = EventQueue::new();
        assert_eq!(q.health(), QueueHealth::default());
        // Near events plus timers far enough apart to exercise rungs.
        for i in 0..8u64 {
            q.push(SimTime::from_nanos(i + 1), "ev");
        }
        let far = q.schedule_timer(SimTime::from_nanos(1_000_000_000), "far");
        let near = q.schedule_timer(SimTime::from_nanos(2), "near-timer");
        let h = q.health();
        assert_eq!(h.len, q.len());
        assert_eq!(h.near_depth + h.ring_occupancy + h.overflow_live, h.len);
        assert_eq!(h.stale_timers, 0);
        assert!(h.slab_slots >= 2, "two live timers occupy slab slots");
        // Cancelling leaves tombstones (or frees slots, depending on
        // where the node sits) — either way the invariants hold.
        q.cancel_timer(near);
        q.cancel_timer(far);
        let h = q.health();
        assert_eq!(h.len, q.len());
        assert_eq!(h.near_depth + h.ring_occupancy + h.overflow_live, h.len);
        // No live timers remain: every slab slot is back on the free
        // list, and the far (wheel/overflow-resident) cancel left one
        // floating tombstone while the near one was removed eagerly.
        assert_eq!(h.free_slots, h.slab_slots);
        assert_eq!(h.stale_timers, 1);
        while q.pop().is_some() {}
        let h = q.health();
        assert_eq!(h.len, 0);
        assert_eq!(h.near_depth, 0);
        assert_eq!(h.ring_occupancy, 0);
        assert_eq!(h.overflow_live, 0);
        assert_eq!(h.past_clamps, 0);
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(30), "c");
        q.push(SimTime::from_nanos(10), "a");
        q.push(SimTime::from_nanos(20), "b");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn simultaneous_events_fire_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(7), ());
        q.push(SimTime::from_nanos(9), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now().as_nanos(), 7);
        q.pop();
        assert_eq!(q.now().as_nanos(), 9);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(10), 1u32);
        let (t, v) = q.pop().unwrap();
        assert_eq!(v, 1);
        // Schedule relative to the popped time.
        q.push(t + SimDuration::from_nanos(5), 2);
        q.push(t + SimDuration::from_nanos(1), 3);
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop().unwrap().1, 2);
    }

    #[test]
    fn counters_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(SimTime::from_nanos(1), ());
        q.push(SimTime::from_nanos(2), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time().unwrap().as_nanos(), 1);
        q.pop();
        assert_eq!(q.total_pushed(), 2);
        assert_eq!(q.total_popped(), 1);
    }

    /// Deterministic LCG covering orderings a hand-written case misses:
    /// deep heaps, duplicate times, pops interleaved with pushes.
    #[test]
    fn randomized_schedule_pops_sorted_by_time_then_seq() {
        let mut state: u64 = 0x243F_6A88_85A3_08D3;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut q = EventQueue::new();
        let mut popped: Vec<(u64, u64)> = Vec::new();
        for round in 0..1000 {
            // Push a few events at times >= now (coarse buckets force
            // plenty of same-time collisions).
            for _ in 0..(next() % 4) {
                let t = q.now().as_nanos() + (next() % 16) * 10;
                q.push(SimTime::from_nanos(t), round);
            }
            if next() % 3 == 0 {
                if let Some((t, _)) = q.pop() {
                    popped.push((t.as_nanos(), 0));
                }
            }
        }
        while let Some((t, _)) = q.pop() {
            popped.push((t.as_nanos(), 0));
        }
        assert_eq!(q.total_pushed(), q.total_popped());
        // now() never went backwards and equals the last popped time.
        assert_eq!(q.now().as_nanos(), popped.last().unwrap().0);
    }

    /// Events spread across several slot widths: pops must still come
    /// out in exact `(time, seq)` order while the wheel drains bucket
    /// by bucket, and interleaved near-term pushes must not be starved
    /// by already-migrated later events.
    #[test]
    fn banded_schedule_pops_in_exact_order() {
        let mut q = EventQueue::new();
        // Far-flung timers first (all beyond the initial horizon)...
        for i in 0..500u64 {
            q.push(SimTime::from_nanos(1_000_000 + i * 7_919_773), i);
        }
        // ...then near-term chatter, including exact duplicates of the
        // earliest timer times.
        q.push(SimTime::from_nanos(1_000_000), 1000);
        q.push(SimTime::from_nanos(10), 1001);
        let mut last = SimTime::ZERO;
        let mut popped = 0;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last, "times went backwards");
            last = t;
            popped += 1;
            // Mid-drain, schedule a near event: it must pop before any
            // pending far timer.
            if popped == 100 {
                q.push(q.now(), 2000);
                let (tn, v) = q.pop().unwrap();
                assert_eq!((tn, v), (q.now(), 2000));
            }
        }
        assert_eq!(q.total_pushed(), q.total_popped());
        assert_eq!(q.total_pushed(), 503);
    }

    #[test]
    fn with_capacity_behaves_identically() {
        let mut a = EventQueue::new();
        let mut b = EventQueue::with_capacity(1);
        for i in 0..50u64 {
            let t = SimTime::from_nanos((i * 7919) % 100);
            a.push(t, i);
            b.push(t, i);
        }
        for _ in 0..50 {
            assert_eq!(a.pop().unwrap(), b.pop().unwrap());
        }
    }

    #[test]
    fn timer_cancel_prevents_firing_and_reports_status() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(10), 1u32);
        let id = q.schedule_timer(SimTime::from_nanos(20), 2);
        q.push(SimTime::from_nanos(30), 3);
        assert!(q.cancel_timer(id), "first cancel succeeds");
        assert!(!q.cancel_timer(id), "double cancel reports false");
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 3);
        assert!(q.pop().is_none());
        assert_eq!(q.total_pushed(), 3);
        assert_eq!(q.total_cancelled(), 1);
        assert_eq!(q.total_popped(), 2);
    }

    #[test]
    fn cancel_after_fire_is_a_noop() {
        let mut q = EventQueue::new();
        let id = q.schedule_timer(SimTime::from_nanos(5), 1u32);
        assert_eq!(q.pop().unwrap().1, 1);
        assert!(!q.cancel_timer(id));
        // Slot reuse must not let a stale id cancel the new tenant.
        let _id2 = q.schedule_timer(SimTime::from_nanos(9), 2);
        assert!(!q.cancel_timer(id));
        assert_eq!(q.pop().unwrap().1, 2);
    }

    /// Cancelling the exact minimum of each rung must keep `peek_time`
    /// exact (it drives the caller's end-of-run cutoff).
    #[test]
    fn cancel_of_rung_minimum_keeps_peek_exact() {
        let mut q = EventQueue::new();
        let a = q.schedule_timer(SimTime::from_nanos(1_000), 1u32);
        let b = q.schedule_timer(SimTime::from_nanos(2_000), 2);
        // Same bucket (initial width 2^18 ns): b is bucket minimum
        // after a is cancelled.
        assert!(q.cancel_timer(a));
        assert_eq!(q.peek_time().unwrap().as_nanos(), 2_000);
        // Overflow minimum: far beyond the ring.
        let c = q.schedule_timer(SimTime::from_nanos(7_200 * 1_000_000_000), 3);
        let _d = q.schedule_timer(SimTime::from_nanos(7_300 * 1_000_000_000), 4);
        assert!(q.cancel_timer(b));
        assert_eq!(q.peek_time().unwrap().as_nanos(), 7_200 * 1_000_000_000);
        assert!(q.cancel_timer(c));
        assert_eq!(q.peek_time().unwrap().as_nanos(), 7_300 * 1_000_000_000);
        assert_eq!(q.pop().unwrap().1, 4);
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }

    /// A timer that has already migrated into the near heap cancels
    /// eagerly (the heap root must never be a tombstone).
    #[test]
    fn cancel_of_near_resident_timer() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(100), 0u32);
        let id = q.schedule_timer(SimTime::from_nanos(150), 1);
        q.push(SimTime::from_nanos(200), 2);
        // Pop once: the whole first bucket (all three entries)
        // migrates.
        assert_eq!(q.pop().unwrap().1, 0);
        assert!(q.cancel_timer(id));
        assert_eq!(q.peek_time().unwrap().as_nanos(), 200);
        assert_eq!(q.pop().unwrap().1, 2);
        assert!(q.pop().is_none());
    }

    /// An all-cancelled bucket must be skipped by migration without
    /// yielding phantom events.
    #[test]
    fn all_tombstone_bucket_is_skipped() {
        let mut q = EventQueue::new();
        let ids: Vec<_> =
            (0..10).map(|i| q.schedule_timer(SimTime::from_nanos(1_000 + i), i)).collect();
        q.push(SimTime::from_nanos(1_000_000_000), 99u64);
        for id in ids {
            assert!(q.cancel_timer(id));
        }
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time().unwrap(), SimTime::from_nanos(1_000_000_000));
        assert_eq!(q.pop().unwrap().1, 99);
        assert!(q.pop().is_none());
    }

    /// Keys far beyond the ring span live in the overflow rung and
    /// surface via rebase, in exact order, even across multiple
    /// rebases.
    #[test]
    fn overflow_rebase_preserves_order() {
        let mut q = EventQueue::new();
        // Spread keys over ~100 s to force overflow and many rebases.
        let mut times: Vec<u64> = (0..2_000u64)
            .map(|i| (i.wrapping_mul(2_654_435_761) % 100_000) * 1_000_000)
            .collect();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_nanos(t), i);
        }
        times.sort_unstable();
        for &expect in &times {
            let (t, _) = q.pop().expect("2000 keys pending");
            assert_eq!(t.as_nanos(), expect);
        }
        assert!(q.pop().is_none());
        assert_eq!(q.total_pushed(), q.total_popped());
    }

    /// Mixed plain events and timers interleaved across rungs must pop
    /// in exact `(time, seq)` order, with `iter` seeing exactly the
    /// live payloads.
    #[test]
    fn mixed_events_and_timers_pop_in_order() {
        let mut q = EventQueue::new();
        let mut expect = Vec::new();
        for i in 0..400u64 {
            let t = (i.wrapping_mul(48_271) % 50_000) * 20_000;
            if i % 3 == 0 {
                let _ = q.schedule_timer(SimTime::from_nanos(t), i);
            } else {
                q.push(SimTime::from_nanos(t), i);
            }
            expect.push((t, i));
        }
        assert_eq!(q.iter().count(), 400);
        expect.sort_unstable();
        for &(t, v) in &expect {
            let (pt, pv) = q.pop().expect("entry pending");
            assert_eq!((pt.as_nanos(), pv), (t, v));
        }
        assert!(q.pop().is_none());
    }

    /// `pop_same_time` drains exactly the maximal same-time FIFO run at
    /// or below the limit, and nothing else.
    #[test]
    fn pop_same_time_batches_exact_runs() {
        let mut q = EventQueue::new();
        for i in 0..5u32 {
            q.push(SimTime::from_nanos(10), i);
        }
        q.push(SimTime::from_nanos(20), 100);
        q.push(SimTime::from_nanos(30), 200);
        let mut out = Vec::new();
        let t = q.pop_same_time(SimTime::from_nanos(25), &mut out).unwrap();
        assert_eq!(t.as_nanos(), 10);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
        let t = q.pop_same_time(SimTime::from_nanos(25), &mut out).unwrap();
        assert_eq!(t.as_nanos(), 20);
        assert_eq!(out, vec![100]);
        // Next event (t=30) is beyond the limit.
        assert!(q.pop_same_time(SimTime::from_nanos(25), &mut out).is_none());
        assert!(out.is_empty());
        assert_eq!(q.len(), 1);
        assert_eq!(q.now().as_nanos(), 20, "limit refusal must not advance the clock");
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    #[cfg(debug_assertions)]
    fn scheduling_in_past_panics_in_debug() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(10), ());
        q.pop();
        q.push(SimTime::from_nanos(5), ());
    }

    /// Release builds clamp past events to `now` — and count the clamp
    /// so the caller's watchdog can surface the masked causality bug.
    #[test]
    #[cfg(not(debug_assertions))]
    fn scheduling_in_past_clamps_and_counts_in_release() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(10), 1u32);
        q.pop();
        assert_eq!(q.past_clamps(), 0);
        q.push(SimTime::from_nanos(5), 2);
        assert_eq!(q.past_clamps(), 1);
        let (t, v) = q.pop().unwrap();
        assert_eq!(t.as_nanos(), 10, "clamped to now");
        assert_eq!(v, 2);
    }
}
