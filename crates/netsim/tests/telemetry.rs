//! Invariants of the `ss`/`ethtool`/`mpstat`-style telemetry sampler.
//!
//! Two properties the rest of the stack builds on:
//!
//! 1. **Ledger exactness** — summing every sample's `interval_bytes`
//!    reproduces the flow's delivered-bytes ledger exactly, including
//!    the partial interval after the last tick.
//! 2. **Observer neutrality** — sampling is read-only: a run with
//!    telemetry enabled produces bit-identical results (flows, drops,
//!    CPU, conservation counters) to the same seed without it.

use linuxhost::{HostConfig, KernelVersion};
use nethw::PathSpec;
use netsim::{CaState, RunResult, SimConfig, Simulation, WorkloadSpec};
use simcore::{BitRate, Bytes, SimDuration};

fn run(workload: WorkloadSpec) -> RunResult {
    let host = HostConfig::esnet_amd(KernelVersion::L6_8);
    let cfg = SimConfig {
        sender: host.clone(),
        receiver: host,
        path: PathSpec::lan("lan", BitRate::gbps(200.0)),
        workload,
    };
    Simulation::new(cfg).expect("config").run().expect("run")
}

/// With a zero omit window the public `FlowResult::bytes` *is* the
/// whole-run delivered ledger, so interval sums can be checked against
/// it exactly.
fn zero_omit(secs: u64) -> WorkloadSpec {
    let mut w = WorkloadSpec::single_stream(secs);
    w.omit = SimDuration::ZERO;
    w
}

#[test]
fn interval_bytes_sum_to_delivered_ledger() {
    let res = run(zero_omit(6).with_telemetry(SimDuration::from_secs(1)));
    let telemetry = res.telemetry.as_ref().expect("telemetry enabled");
    assert_eq!(telemetry.flows.len(), res.flows.len());
    for (trace, flow) in telemetry.flows.iter().zip(&res.flows) {
        assert_eq!(trace.id, flow.id);
        assert!(!trace.samples.is_empty(), "no samples for flow {}", flow.id);
        // Interval deltas must sum to the final cumulative sample…
        let (_, last) = trace.samples.last().expect("samples");
        assert_eq!(trace.total_interval_bytes(), last.delivered_bytes);
        // …and with omit = 0 that ledger is the reported flow total.
        assert_eq!(last.delivered_bytes, flow.bytes, "flow {} ledger", flow.id);
    }
}

#[test]
fn odd_tick_still_sums_exactly() {
    // 2.5 s tick over 6 s: ticks at 2.5 and 5.0, flush at 6.0 — the
    // tail interval must carry the remainder.
    let res = run(zero_omit(6).with_telemetry(SimDuration::from_millis(2500)));
    let telemetry = res.telemetry.as_ref().expect("telemetry enabled");
    let trace = &telemetry.flows[0];
    assert_eq!(trace.samples.len(), 3, "two ticks plus the end-of-run flush");
    assert_eq!(trace.total_interval_bytes(), res.flows[0].bytes);
}

#[test]
fn host_counter_deltas_sum_to_run_totals() {
    let res = run(zero_omit(6).with_telemetry(SimDuration::from_secs(1)));
    let telemetry = res.telemetry.as_ref().expect("telemetry enabled");
    let samples = telemetry.host.samples.values();
    assert!(!samples.is_empty());
    let wire: u64 = samples.iter().map(|s| s.wire_sent).sum();
    let switch: u64 = samples.iter().map(|s| s.switch_drops).sum();
    let ring: u64 = samples.iter().map(|s| s.ring_drops).sum();
    assert_eq!(wire, res.wire_sent);
    assert_eq!(switch, res.switch_drops);
    assert_eq!(ring, res.ring_drops);
    // mpstat rows cover each host's cores and report sane percentages.
    for s in samples {
        assert!(!s.sender_core_busy.is_empty());
        assert!(!s.receiver_core_busy.is_empty());
        // A service span straddling the tick can book a core slightly
        // past 100% for one interval; anything further is a real bug.
        for pct in s.sender_core_busy.iter().chain(&s.receiver_core_busy) {
            assert!((0.0..=105.0).contains(pct), "busy% out of range: {pct}");
        }
    }
}

#[test]
fn samples_look_like_ss_output() {
    let res = run(zero_omit(8).with_telemetry(SimDuration::from_secs(1)));
    let telemetry = res.telemetry.as_ref().expect("telemetry enabled");
    let trace = &telemetry.flows[0];
    for (t, s) in trace.samples.iter() {
        assert!(s.cwnd > Bytes::ZERO, "cwnd must be positive at {t:?}");
        assert!(s.srtt.is_some(), "srtt known after the first RTT at {t:?}");
        assert!(s.pacing_rate > BitRate::ZERO);
        // Recovery is transient; steady LAN slow start / avoidance only.
        assert!(matches!(
            s.ca_state,
            CaState::SlowStart | CaState::CongestionAvoidance | CaState::Recovery
        ));
    }
    // Cumulative counters never go backwards.
    for pair in trace.samples.values().windows(2) {
        assert!(pair[1].delivered_bytes >= pair[0].delivered_bytes);
        assert!(pair[1].bytes_retrans >= pair[0].bytes_retrans);
        assert!(pair[1].retr_packets >= pair[0].retr_packets);
    }
}

/// Enabling telemetry must not perturb the simulation: same seed, same
/// traffic, bit for bit. (`events` legitimately differs — the tick
/// events themselves are counted — so it is excluded.)
#[test]
fn sampling_is_observer_neutral() {
    let base = run(WorkloadSpec::single_stream(6).with_seed(42));
    let sampled =
        run(WorkloadSpec::single_stream(6).with_seed(42).with_telemetry(SimDuration::from_secs(1)));
    assert!(base.telemetry.is_none(), "telemetry off by default");
    assert!(sampled.telemetry.is_some());

    assert_eq!(base.flows.len(), sampled.flows.len());
    for (a, b) in base.flows.iter().zip(&sampled.flows) {
        assert_eq!(a.bytes, b.bytes);
        assert_eq!(a.retr_packets, b.retr_packets);
        assert_eq!(a.rto_events, b.rto_events);
        assert_eq!(a.intervals.len(), b.intervals.len());
    }
    assert_eq!(base.wire_sent, sampled.wire_sent);
    assert_eq!(base.switch_drops, sampled.switch_drops);
    assert_eq!(base.ring_drops, sampled.ring_drops);
    assert_eq!(base.random_drops, sampled.random_drops);
    assert_eq!(base.fault_drops, sampled.fault_drops);
    assert_eq!(base.cpu_intervals, sampled.cpu_intervals);
    assert_eq!(base.sender_cpu.per_core, sampled.sender_cpu.per_core);
    assert_eq!(base.receiver_cpu.per_core, sampled.receiver_cpu.per_core);
}
