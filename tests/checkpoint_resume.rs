//! Checkpoint/resume bit-identity.
//!
//! The recovery contract (DESIGN.md §6f): a run that is stepped,
//! snapshotted, dropped, and resumed from the snapshot must produce a
//! report **bit-identical** to the same configuration run straight
//! through — same `(time, seq)` event order, same float bits, same
//! rendered bytes. This is what makes supervisor resume and chaos
//! recovery sound: a resumed worker is indistinguishable from one that
//! never died.
//!
//! Bit identity is asserted on both the `Debug` rendering (Rust's f64
//! formatting is shortest-round-trip exact, so equal strings ⇔ equal
//! bits) and the iperf3-style JSON dump.

use dtnperf::prelude::*;
use harness::supervise::Supervisor;
use iperf3sim::{Iperf3Opts, SimSession};

/// The golden-shape trio: clean LAN, long-RTT WAN with zerocopy, and a
/// parallel-stream run — the same path/host shapes `golden_shapes.rs`
/// locks down.
fn golden_opts() -> Vec<(&'static str, HostConfig, PathSpec, Iperf3Opts)> {
    let host = Testbeds::esnet_host(KernelVersion::L6_8);
    vec![
        (
            "lan",
            host.clone(),
            Testbeds::esnet_path(EsnetPath::Lan),
            Iperf3Opts::new(2).omit(0).seed(11),
        ),
        (
            "wan_zc",
            host.clone(),
            Testbeds::esnet_path(EsnetPath::Wan),
            Iperf3Opts::new(3).omit(1).zerocopy().seed(12),
        ),
        (
            "multi",
            host,
            Testbeds::esnet_path(EsnetPath::Lan),
            Iperf3Opts::new(2).omit(0).parallel(4).seed(13),
        ),
    ]
}

fn straight_through(
    host: &HostConfig,
    path: &PathSpec,
    opts: &Iperf3Opts,
) -> Iperf3Report {
    iperf3sim::run(host, host, path, opts).expect("straight-through run")
}

fn start(
    host: &HostConfig,
    path: &PathSpec,
    opts: &Iperf3Opts,
) -> SimSession {
    iperf3sim::start_session(host, host, path, opts, &FaultPlan::none(), None)
        .expect("session starts")
}

fn assert_bit_identical(label: &str, a: &Iperf3Report, b: &Iperf3Report) {
    assert_eq!(format!("{a:?}"), format!("{b:?}"), "'{label}': Debug bits differ");
    assert_eq!(a.to_json(), b.to_json(), "'{label}': JSON bytes differ");
}

#[test]
fn stepped_run_matches_straight_through() {
    for (label, host, path, opts) in golden_opts() {
        let reference = straight_through(&host, &path, &opts);
        let mut session = start(&host, &path, &opts);
        // Deliberately awkward chunk size: progress never lines up with
        // any internal boundary.
        while !session.step_events(777).expect("step") {}
        let stepped = session.finish().expect("finish");
        assert_bit_identical(label, &reference, &stepped);
    }
}

#[test]
fn resume_from_checkpoint_matches_straight_through() {
    for (label, host, path, opts) in golden_opts() {
        let reference = straight_through(&host, &path, &opts);
        // Step a third of the way (by the reference event count), then
        // snapshot, drop the live session, and finish from the clone.
        let mut probe = start(&host, &path, &opts);
        while !probe.step_events(4096).expect("probe") {}
        let total_events = probe.events_done();
        drop(probe);

        let mut session = start(&host, &path, &opts);
        let stop_at = total_events / 3;
        while session.events_done() < stop_at {
            assert!(
                !session.step_events(1024).expect("step"),
                "'{label}': run ended before the checkpoint target"
            );
        }
        let checkpoint = session.checkpoint();
        assert_eq!(checkpoint.events_done(), session.events_done());
        drop(session); // the original worker "dies" here

        let mut resumed = SimSession::resume(checkpoint);
        assert_eq!(resumed.events_done(), stop_at.max(resumed.events_done()));
        while !resumed.step_events(4096).expect("resumed step") {}
        let report = resumed.finish().expect("resumed finish");
        assert_bit_identical(label, &reference, &report);
    }
}

#[test]
fn checkpoint_is_a_value_resume_twice() {
    // One snapshot, two resumes: both replicas must replay the exact
    // same future. (This is what lets the supervisor keep the snapshot
    // around across multiple worker deaths.)
    let (label, host, path, opts) = golden_opts().remove(0);
    let mut session = start(&host, &path, &opts);
    for _ in 0..8 {
        assert!(!session.step_events(2048).expect("step"), "run too short for test");
    }
    let checkpoint = session.checkpoint();
    drop(session);

    let mut runs = Vec::new();
    for _ in 0..2 {
        let mut replica = SimSession::resume(checkpoint.clone());
        while !replica.step_events(3000).expect("step") {}
        runs.push(replica.finish().expect("finish"));
    }
    assert_bit_identical(label, &runs[0], &runs[1]);
}

#[test]
fn chained_checkpoints_match_straight_through() {
    // Checkpoint → resume → checkpoint again → resume again: recovery
    // must compose (the supervisor may lose a worker more than once).
    let (label, host, path, opts) = golden_opts().remove(1);
    let reference = straight_through(&host, &path, &opts);

    let mut session = start(&host, &path, &opts);
    for _ in 0..4 {
        assert!(!session.step_events(2048).expect("step"), "run too short");
    }
    let first = session.checkpoint();
    drop(session);

    let mut session = SimSession::resume(first);
    for _ in 0..4 {
        assert!(!session.step_events(2048).expect("step"), "run too short");
    }
    let second = session.checkpoint();
    drop(session);

    let mut session = SimSession::resume(second);
    while !session.step_events(4096).expect("step") {}
    let report = session.finish().expect("finish");
    assert_bit_identical(label, &reference, &report);
}

#[test]
fn supervised_drive_is_bit_identical_to_plain_run() {
    // The supervisor's step/checkpoint loop itself must not perturb
    // results, chaos or no chaos.
    for (label, host, path, opts) in golden_opts() {
        let reference = straight_through(&host, &path, &opts);
        let supervisor = Supervisor::default().with_checkpoint_every(10_000);
        let report = supervisor
            .drive(opts.seed, || {
                iperf3sim::start_session(&host, &host, &path, &opts, &FaultPlan::none(), None)
            })
            .expect("supervised run");
        assert_bit_identical(label, &reference, &report);
    }
}
