//! Run supervision: crash isolation, deadlines, classed retries, and
//! the degraded-run ledger.
//!
//! Real campaigns on R&E testbeds lose repetitions — a host reboots, a
//! watchdog fires, a disk fills — and the methodology answer is never
//! "rerun everything", it is "retry what is retryable, account for what
//! is lost, and say so". This module is that answer for the simulated
//! campaign:
//!
//! * every repetition executes under [`Supervisor::drive`], inside
//!   `catch_unwind`, stepped in bounded event chunks with a wall-clock
//!   deadline and periodic [checkpoints](iperf3sim::SessionCheckpoint)
//!   — a crashed worker resumes from its last snapshot instead of
//!   taking the whole harness down;
//! * failures carry an [`ErrorClass`], and the retry policy consults
//!   it: a deterministic config rejection is never retried (the rerun
//!   would fail identically), a watchdog trip or state corruption gets
//!   exponential backoff up to the effort's attempt cap;
//! * retries draw from a per-experiment [`ErrorBudget`] so one
//!   pathological scenario cannot starve the rest of the run;
//! * every scenario reports into the global [`RunLedger`], from which
//!   `repro` builds the degraded-run manifest (exit code 3) when
//!   repetitions went missing.

use crate::chaos::ChaosPlan;
use crate::effort::Effort;
use crate::runner::FailedRep;
use iperf3sim::{Iperf3Report, RunError, SessionCheckpoint, SimSession};
use netsim::SimError;
use simcore::{CheckpointPolicy, Checkpointer, WatchdogTrip};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Events dispatched per supervised step — small enough that deadlines,
/// checkpoints and chaos kills land promptly, large enough that the
/// step loop is invisible in the profile.
const STEP_CHUNK: u64 = 65_536;

/// A worker that keeps dying is eventually declared dead for real:
/// after this many unwinds the repetition fails as [`ErrorClass::WorkerDeath`].
const MAX_RESUMES: u32 = 8;

/// Checkpoint cadence used when chaos is on but no explicit
/// `REPRO_CHECKPOINT_EVERY` was given.
pub const DEFAULT_CHECKPOINT_EVERY: u64 = 50_000;

/// The failure taxonomy the retry policy keys on.
///
/// Everything a repetition can die of maps onto exactly one class; the
/// class (not the message text) decides whether a retry can help.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorClass {
    /// Deterministic flag/config rejection — identical on every seed,
    /// so retrying burns budget for nothing.
    InvalidConfig,
    /// Watchdog tripped on total event-budget exhaustion.
    WatchdogBudget,
    /// Watchdog tripped on a livelocked instant (events without time
    /// advancing).
    WatchdogLivelock,
    /// An internal simulator invariant broke mid-run.
    StateCorruption,
    /// End-of-run burst accounting did not balance.
    ConservationViolation,
    /// The worker panicked and exhausted its resume allowance.
    WorkerDeath,
    /// The repetition overran its wall-clock deadline.
    DeadlineExceeded,
}

impl ErrorClass {
    /// All classes, for exhaustive tests.
    pub const ALL: [ErrorClass; 7] = [
        ErrorClass::InvalidConfig,
        ErrorClass::WatchdogBudget,
        ErrorClass::WatchdogLivelock,
        ErrorClass::StateCorruption,
        ErrorClass::ConservationViolation,
        ErrorClass::WorkerDeath,
        ErrorClass::DeadlineExceeded,
    ];

    /// Stable wire name (used in FailedRep JSON and the manifest).
    pub fn name(self) -> &'static str {
        match self {
            ErrorClass::InvalidConfig => "invalid-config",
            ErrorClass::WatchdogBudget => "watchdog-budget",
            ErrorClass::WatchdogLivelock => "watchdog-livelock",
            ErrorClass::StateCorruption => "state-corruption",
            ErrorClass::ConservationViolation => "conservation-violation",
            ErrorClass::WorkerDeath => "worker-death",
            ErrorClass::DeadlineExceeded => "deadline-exceeded",
        }
    }

    /// Inverse of [`ErrorClass::name`].
    pub fn parse(name: &str) -> Option<ErrorClass> {
        ErrorClass::ALL.into_iter().find(|c| c.name() == name)
    }

    /// Classify a run error. Total: every [`RunError`] lands in exactly
    /// one class.
    pub fn classify(e: &RunError) -> ErrorClass {
        match e {
            RunError::Invalid(_) | RunError::Sim(SimError::InvalidConfig(_)) => {
                ErrorClass::InvalidConfig
            }
            RunError::Sim(SimError::Stalled { trip, .. }) => match trip {
                WatchdogTrip::BudgetExhausted { .. } => ErrorClass::WatchdogBudget,
                WatchdogTrip::Livelock { .. } => ErrorClass::WatchdogLivelock,
            },
            RunError::Sim(SimError::StateCorruption { .. }) => ErrorClass::StateCorruption,
            RunError::Sim(SimError::ConservationViolation { .. }) => {
                ErrorClass::ConservationViolation
            }
        }
    }

    /// Can a rerun on a perturbed seed plausibly succeed? Config
    /// rejections are deterministic in the scenario, not the seed —
    /// everything else is state- or timing-dependent and worth a retry.
    pub fn retryable(self) -> bool {
        !matches!(self, ErrorClass::InvalidConfig)
    }
}

/// A classed repetition failure, before it is recorded as a
/// [`FailedRep`].
#[derive(Debug, Clone)]
pub struct RepError {
    /// Which failure class this is (drives the retry decision).
    pub class: ErrorClass,
    /// Human-readable rendering of the underlying error.
    pub error: String,
}

impl RepError {
    /// Classify and render a run error.
    pub fn from_run(e: &RunError) -> Self {
        RepError { class: ErrorClass::classify(e), error: e.to_string() }
    }
}

/// How often to retry, how long to back off, how long one repetition
/// may run on the wall clock.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts per repetition (first run included).
    pub max_attempts: u32,
    /// First backoff; doubles per further attempt, capped at ~1 s.
    pub base_backoff: Duration,
    /// Wall-clock deadline for a single attempt.
    pub deadline: Duration,
}

impl Default for RetryPolicy {
    /// The historical harness behaviour: one retry, 10 ms backoff, and
    /// a wall-clock leash generous enough for any single repetition.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 2,
            base_backoff: Duration::from_millis(10),
            deadline: Duration::from_secs(600),
        }
    }
}

impl RetryPolicy {
    /// Policy matched to the effort ladder (more attempts and a longer
    /// leash at Full, where runs are 60 s of simulated time).
    pub fn for_effort(effort: Effort) -> Self {
        RetryPolicy {
            max_attempts: effort.retry_attempts(),
            base_backoff: Duration::from_millis(10),
            deadline: effort.rep_deadline(),
        }
    }

    /// Backoff before attempt number `next_attempt` (2-based: the pause
    /// before the first retry is the base). Exponential, capped at 1 s
    /// so a broken scenario cannot stall the harness meaningfully.
    pub fn backoff(&self, next_attempt: u32) -> Duration {
        let doublings = next_attempt.saturating_sub(2).min(7);
        (self.base_backoff * 2u32.pow(doublings)).min(Duration::from_secs(1))
    }
}

/// A shared pool of retries for one experiment: every retry spends one
/// token, and when the pool is dry further failures are recorded
/// without another attempt. Keeps `repro all` moving when one scenario
/// family turns pathological.
#[derive(Debug)]
pub struct ErrorBudget {
    tokens: AtomicI64,
    initial: u64,
}

impl ErrorBudget {
    /// A budget of `n` retries.
    pub fn new(n: u64) -> Self {
        ErrorBudget { tokens: AtomicI64::new(n as i64), initial: n }
    }

    /// Take one retry token; `false` means the budget is exhausted and
    /// the caller must record the failure as-is.
    pub fn try_spend(&self) -> bool {
        self.tokens.fetch_sub(1, Ordering::Relaxed) > 0
    }

    /// Tokens left (0 when exhausted).
    pub fn remaining(&self) -> u64 {
        self.tokens.load(Ordering::Relaxed).max(0) as u64
    }

    /// Retries spent so far.
    pub fn spent(&self) -> u64 {
        self.initial - self.remaining()
    }

    /// The budget this pool started with.
    pub fn initial(&self) -> u64 {
        self.initial
    }
}

/// Supervises one repetition at a time: crash isolation, deadline,
/// checkpoint cadence, chaos schedule.
#[derive(Debug, Clone)]
pub struct Supervisor {
    policy: RetryPolicy,
    budget: Option<Arc<ErrorBudget>>,
    chaos: Option<Arc<ChaosPlan>>,
    checkpoint_every: u64,
    metrics: Option<Arc<crate::metrics::MetricsHub>>,
}

impl Default for Supervisor {
    fn default() -> Self {
        Supervisor::new(RetryPolicy::default())
    }
}

impl Supervisor {
    /// A supervisor with the given retry policy, no budget, no chaos,
    /// and checkpointing off.
    pub fn new(policy: RetryPolicy) -> Self {
        Supervisor { policy, budget: None, chaos: None, checkpoint_every: 0, metrics: None }
    }

    /// Supervisor matched to the effort ladder.
    pub fn for_effort(effort: Effort) -> Self {
        Supervisor::new(RetryPolicy::for_effort(effort))
    }

    /// Builder: attach a shared retry budget.
    pub fn with_budget(mut self, budget: Arc<ErrorBudget>) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Builder: attach a chaos schedule. Chaos needs somewhere to
    /// resume from, so this also turns on checkpointing (at the default
    /// cadence) unless a cadence was already set.
    pub fn with_chaos(mut self, chaos: Arc<ChaosPlan>) -> Self {
        self.chaos = Some(chaos);
        if self.checkpoint_every == 0 {
            self.checkpoint_every = DEFAULT_CHECKPOINT_EVERY;
        }
        self
    }

    /// Builder: snapshot the session every `n` dispatched events
    /// (0 disables).
    pub fn with_checkpoint_every(mut self, n: u64) -> Self {
        self.checkpoint_every = n;
        self
    }

    /// Builder: report event throughput, engine queue health and
    /// checkpoint spans to a metrics hub. Purely observational — the
    /// hub is consulted only between stepping slices and at checkpoint
    /// barriers, never inside the event loop, so supervised runs stay
    /// bit-identical with or without it.
    pub fn with_metrics(mut self, hub: Arc<crate::metrics::MetricsHub>) -> Self {
        self.metrics = Some(hub);
        self
    }

    /// The metrics hub, if one is attached.
    pub fn metrics(&self) -> Option<&Arc<crate::metrics::MetricsHub>> {
        self.metrics.as_ref()
    }

    /// The retry policy in force.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// The shared retry budget, if any.
    pub fn budget(&self) -> Option<&Arc<ErrorBudget>> {
        self.budget.as_ref()
    }

    /// The chaos schedule, if any.
    pub fn chaos(&self) -> Option<&Arc<ChaosPlan>> {
        self.chaos.as_ref()
    }

    /// Checkpoint cadence in events (0 = checkpointing off).
    pub fn checkpoint_cadence(&self) -> u64 {
        self.checkpoint_every
    }

    /// May a retry run, given `class` and the attempts made so far?
    /// Consults the class first (deterministic failures never retry),
    /// then the attempt cap, then — only if both pass — spends a budget
    /// token.
    pub fn may_retry(&self, class: ErrorClass, attempts_so_far: u32) -> bool {
        class.retryable()
            && attempts_so_far < self.policy.max_attempts
            && self.budget.as_ref().is_none_or(|b| b.try_spend())
    }

    /// Execute one repetition attempt under full supervision.
    ///
    /// `start` builds the session (it runs *inside* the crash-isolation
    /// boundary, so a panicking config path is survivable too);
    /// `run_seed` keys the chaos schedule. The session is stepped in
    /// [`STEP_CHUNK`]-event slices; between slices the supervisor
    /// enforces the wall-clock deadline, takes checkpoints on the
    /// configured cadence, and — under chaos — kills the worker at the
    /// scheduled event count. A killed (or genuinely panicked) worker
    /// is restarted from the latest checkpoint, or from scratch if none
    /// was taken yet; because checkpoints snapshot the full engine
    /// state between events, the resumed run replays the exact event
    /// sequence and the report is bit-identical to an undisturbed run.
    pub fn drive<F>(&self, run_seed: u64, start: F) -> Result<Iperf3Report, RepError>
    where
        F: Fn() -> Result<SimSession, RunError>,
    {
        let deadline = Instant::now() + self.policy.deadline;
        // The resume slot lives *outside* the unwind boundary: whatever
        // the worker had checkpointed before dying survives the panic.
        let slot: Mutex<Option<SessionCheckpoint>> = Mutex::new(None);
        let mut round: u32 = 0;
        loop {
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                self.run_round(&slot, &start, run_seed, round, deadline)
            }));
            match outcome {
                Ok(result) => return result,
                Err(_payload) => {
                    round += 1;
                    if round > MAX_RESUMES {
                        return Err(RepError {
                            class: ErrorClass::WorkerDeath,
                            error: format!(
                                "worker died {round} times (resume allowance exhausted)"
                            ),
                        });
                    }
                    if slot.lock().is_ok_and(|s| s.is_some()) {
                        if let Some(chaos) = &self.chaos {
                            chaos.stats.count_resume();
                        }
                    }
                    // Loop: resume from the checkpoint (or restart).
                }
            }
        }
    }

    /// One unwind-isolated round of [`Supervisor::drive`].
    fn run_round<F>(
        &self,
        slot: &Mutex<Option<SessionCheckpoint>>,
        start: &F,
        run_seed: u64,
        round: u32,
        deadline: Instant,
    ) -> Result<Iperf3Report, RepError>
    where
        F: Fn() -> Result<SimSession, RunError>,
    {
        // Resume from the latest snapshot if one exists (clone, don't
        // take: if this round dies before its first checkpoint, the
        // next one must still have something to resume from).
        let resumed = slot.lock().expect("checkpoint slot").clone();
        let mut session = match resumed {
            Some(ck) => SimSession::resume(ck),
            None => start().map_err(|e| RepError::from_run(&e))?,
        };
        let entry = session.events_done();
        let kill_at = self
            .chaos
            .as_ref()
            .and_then(|c| c.kill_after(run_seed, round))
            .map(|offset| entry + offset);
        let policy = if self.checkpoint_every > 0 {
            CheckpointPolicy::every(self.checkpoint_every)
        } else {
            CheckpointPolicy::DISABLED
        };
        let mut ckpt = Checkpointer::new(policy);
        // Skip cadence boundaries already behind a resumed session.
        ckpt.due(entry);
        loop {
            let done = session.step_events(STEP_CHUNK).map_err(|e| RepError::from_run(&e))?;
            if done {
                break;
            }
            if Instant::now() >= deadline {
                return Err(RepError {
                    class: ErrorClass::DeadlineExceeded,
                    error: format!(
                        "repetition exceeded its {}s wall-clock deadline after {} events",
                        self.policy.deadline.as_secs(),
                        session.events_done()
                    ),
                });
            }
            if ckpt.due(session.events_done()) {
                if let Some(hub) = &self.metrics {
                    // Checkpoint barriers are the engine-health sample
                    // points: the queue is between events, so the
                    // snapshot is consistent and free of races.
                    hub.sample_queue_health(session.queue_health());
                    hub.recorder().describe(
                        "supervisor_checkpoints",
                        "Session snapshots taken at cadence barriers",
                    );
                    hub.recorder().counter_add("supervisor_checkpoints", 1);
                    let start = hub.wall_now();
                    *slot.lock().expect("checkpoint slot") = Some(session.checkpoint());
                    hub.span(
                        format!("seed_{run_seed:016x}"),
                        "checkpoint",
                        "wall_s",
                        start,
                        hub.wall_now() - start,
                    );
                } else {
                    *slot.lock().expect("checkpoint slot") = Some(session.checkpoint());
                }
            }
            if let Some(kill_at) = kill_at {
                if session.events_done() >= kill_at {
                    if let Some(chaos) = &self.chaos {
                        chaos.stats.count_kill();
                    }
                    // resume_unwind skips the panic hook: a scheduled
                    // kill is part of the test, not console noise.
                    std::panic::resume_unwind(Box::new("chaos: worker killed"));
                }
            }
        }
        if let Some(hub) = &self.metrics {
            // Credit this round's dispatched events (resumed rounds
            // re-dispatch from their checkpoint; counting from `entry`
            // keeps replayed events out of the throughput number) and
            // take a final health sample so the gauges exist even when
            // checkpointing is off.
            hub.add_events(session.events_done().saturating_sub(entry));
            hub.sample_queue_health(session.queue_health());
            let mut shard = obs::HdrHistogram::new();
            shard.record(session.events_done());
            crate::metrics::fold_events_hist(hub.recorder(), &shard);
        }
        session.finish().map_err(|e| RepError::from_run(&e))
    }
}

/// One scenario's repetition accounting, as recorded in the
/// [`RunLedger`].
#[derive(Debug, Clone)]
pub struct ScenarioRecord {
    /// Scenario label.
    pub label: String,
    /// Repetitions the harness was asked for.
    pub expected: usize,
    /// Repetitions that produced a report.
    pub completed: usize,
    /// The repetitions that did not, with class and attempt count.
    pub failed: Vec<FailedRep>,
}

impl ScenarioRecord {
    /// Did every expected repetition produce a report?
    pub fn complete(&self) -> bool {
        self.failed.is_empty() && self.completed == self.expected
    }
}

/// Process-global accounting of every scenario the harness ran:
/// expected vs completed repetitions, and the classed failures. `repro`
/// snapshots it at the end of a run to decide between a clean exit and
/// the degraded manifest (exit code 3).
#[derive(Debug, Default)]
pub struct RunLedger {
    records: Mutex<Vec<ScenarioRecord>>,
}

static LEDGER: RunLedger = RunLedger { records: Mutex::new(Vec::new()) };

impl RunLedger {
    /// The process-wide ledger.
    pub fn global() -> &'static RunLedger {
        &LEDGER
    }

    /// Record one finished scenario.
    pub fn record(&self, record: ScenarioRecord) {
        self.records.lock().expect("run ledger").push(record);
    }

    /// Copy of everything recorded so far.
    pub fn snapshot(&self) -> Vec<ScenarioRecord> {
        self.records.lock().expect("run ledger").clone()
    }

    /// Clear the ledger (start of a `repro` invocation, tests).
    pub fn reset(&self) {
        self.records.lock().expect("run ledger").clear();
    }

    /// Any repetitions missing?
    pub fn degraded(&self) -> bool {
        self.records.lock().expect("run ledger").iter().any(|r| !r.complete())
    }

    /// The missing-repetition manifest: totals plus one entry per
    /// scenario that lost repetitions, each failed seed with its error
    /// class and attempt count. Valid JSON, hand-rolled like the rest
    /// of the repo's serialization.
    pub fn manifest_json(&self) -> String {
        let records = self.snapshot();
        let expected: usize = records.iter().map(|r| r.expected).sum();
        let completed: usize = records.iter().map(|r| r.completed).sum();
        let degraded: Vec<String> = records
            .iter()
            .filter(|r| !r.complete())
            .map(|r| {
                let missing: Vec<String> =
                    r.failed.iter().map(FailedRep::to_json).collect();
                format!(
                    "{{\"label\":\"{}\",\"expected\":{},\"completed\":{},\"missing\":[{}]}}",
                    json_escape(&r.label),
                    r.expected,
                    r.completed,
                    missing.join(",")
                )
            })
            .collect();
        format!(
            "{{\"degraded\":{},\"scenarios\":{},\"expected_reps\":{},\"completed_reps\":{},\"incomplete\":[{}]}}",
            !degraded.is_empty(),
            records.len(),
            expected,
            completed,
            degraded.join(",")
        )
    }
}

/// Escape a string for embedding in the hand-rolled JSON (mirror of
/// [`json_unescape`]).
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Reverse [`json_escape`]; `None` on a malformed escape.
pub(crate) fn json_unescape(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(ch) = chars.next() {
        if ch != '\\' {
            out.push(ch);
            continue;
        }
        match chars.next()? {
            '\\' => out.push('\\'),
            '"' => out.push('"'),
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            't' => out.push('\t'),
            'u' => {
                let hex: String = chars.by_ref().take(4).collect();
                if hex.len() != 4 {
                    return None;
                }
                let code = u32::from_str_radix(&hex, 16).ok()?;
                out.push(char::from_u32(code)?);
            }
            _ => return None,
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::SimTime;

    #[test]
    fn classification_is_total_and_stable() {
        let cases: Vec<(RunError, ErrorClass)> = vec![
            (RunError::Invalid(vec!["bad flag".into()]), ErrorClass::InvalidConfig),
            (
                RunError::Sim(SimError::InvalidConfig(vec!["zero".into()])),
                ErrorClass::InvalidConfig,
            ),
            (
                RunError::Sim(SimError::Stalled {
                    at: SimTime::from_nanos(1),
                    trip: WatchdogTrip::BudgetExhausted { events: 10, budget: 9 },
                }),
                ErrorClass::WatchdogBudget,
            ),
            (
                RunError::Sim(SimError::Stalled {
                    at: SimTime::from_nanos(1),
                    trip: WatchdogTrip::Livelock { at: SimTime::from_nanos(1), events: 5 },
                }),
                ErrorClass::WatchdogLivelock,
            ),
            (
                RunError::Sim(SimError::StateCorruption {
                    at: SimTime::from_nanos(2),
                    what: "ledger vanished".into(),
                }),
                ErrorClass::StateCorruption,
            ),
            (
                RunError::Sim(SimError::ConservationViolation {
                    wire_sent: 4,
                    delivered: 1,
                    dropped: 1,
                    in_flight: 1,
                }),
                ErrorClass::ConservationViolation,
            ),
        ];
        for (err, want) in cases {
            assert_eq!(ErrorClass::classify(&err), want, "{err}");
        }
    }

    #[test]
    fn names_round_trip_for_every_class() {
        for class in ErrorClass::ALL {
            assert_eq!(ErrorClass::parse(class.name()), Some(class));
        }
        assert_eq!(ErrorClass::parse("no-such-class"), None);
    }

    #[test]
    fn only_invalid_config_is_unretryable() {
        for class in ErrorClass::ALL {
            assert_eq!(class.retryable(), class != ErrorClass::InvalidConfig, "{class:?}");
        }
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        let p = RetryPolicy {
            max_attempts: 10,
            base_backoff: Duration::from_millis(10),
            deadline: Duration::from_secs(60),
        };
        assert_eq!(p.backoff(2), Duration::from_millis(10));
        assert_eq!(p.backoff(3), Duration::from_millis(20));
        assert_eq!(p.backoff(4), Duration::from_millis(40));
        assert_eq!(p.backoff(20), Duration::from_secs(1));
    }

    #[test]
    fn budget_spends_down_and_stops() {
        let b = ErrorBudget::new(2);
        assert_eq!(b.remaining(), 2);
        assert!(b.try_spend());
        assert!(b.try_spend());
        assert!(!b.try_spend());
        assert!(!b.try_spend());
        assert_eq!(b.remaining(), 0);
        assert_eq!(b.spent(), 2);
        assert_eq!(b.initial(), 2);
    }

    #[test]
    fn may_retry_consults_class_then_cap_then_budget() {
        let policy = RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(1),
            deadline: Duration::from_secs(60),
        };
        let budget = Arc::new(ErrorBudget::new(1));
        let sup = Supervisor::new(policy).with_budget(budget.clone());
        // Deterministic config errors never retry — and never spend.
        assert!(!sup.may_retry(ErrorClass::InvalidConfig, 1));
        assert_eq!(budget.remaining(), 1);
        // At the attempt cap the budget is also untouched.
        assert!(!sup.may_retry(ErrorClass::WatchdogBudget, 3));
        assert_eq!(budget.remaining(), 1);
        // A retryable class under the cap spends the last token...
        assert!(sup.may_retry(ErrorClass::WatchdogBudget, 1));
        // ...and a dry budget blocks the next one.
        assert!(!sup.may_retry(ErrorClass::WatchdogBudget, 1));
    }

    #[test]
    fn chaos_enables_default_checkpoint_cadence() {
        let sup = Supervisor::for_effort(Effort::Smoke)
            .with_chaos(Arc::new(ChaosPlan::new(1)));
        assert_eq!(sup.checkpoint_every, DEFAULT_CHECKPOINT_EVERY);
        let sup = Supervisor::for_effort(Effort::Smoke)
            .with_checkpoint_every(7)
            .with_chaos(Arc::new(ChaosPlan::new(1)));
        assert_eq!(sup.checkpoint_every, 7);
    }

    #[test]
    fn ledger_tracks_degradation_and_renders_manifest() {
        let ledger = RunLedger::default();
        ledger.record(ScenarioRecord {
            label: "clean".into(),
            expected: 2,
            completed: 2,
            failed: Vec::new(),
        });
        assert!(!ledger.degraded());
        ledger.record(ScenarioRecord {
            label: "lossy \"quoted\"".into(),
            expected: 3,
            completed: 2,
            failed: vec![FailedRep {
                seed: 42,
                error: "simulation stalled at t=1ns: livelock".into(),
                class: ErrorClass::WatchdogLivelock,
                attempts: 2,
            }],
        });
        assert!(ledger.degraded());
        let manifest = ledger.manifest_json();
        assert!(manifest.contains("\"degraded\":true"), "{manifest}");
        assert!(manifest.contains("\"expected_reps\":5"), "{manifest}");
        assert!(manifest.contains("\"completed_reps\":4"), "{manifest}");
        assert!(manifest.contains("lossy \\\"quoted\\\""), "{manifest}");
        assert!(manifest.contains("watchdog-livelock"), "{manifest}");
        assert!(!manifest.contains("\"label\":\"clean\""), "{manifest}");
    }

    #[test]
    fn json_escape_round_trips() {
        let tricky = "plain \"quoted\" back\\slash\nnewline\ttab\rreturn \u{1} low";
        assert_eq!(json_unescape(&json_escape(tricky)).as_deref(), Some(tricky));
        assert_eq!(json_unescape("trailing \\"), None);
        assert_eq!(json_unescape("bad \\q escape"), None);
        assert_eq!(json_unescape("short \\u00"), None);
    }
}
