//! Mechanism ablations: the simulated cost/benefit of individual
//! features, measured by toggling exactly one knob on a fixed scenario.
//! These benchmark the *simulation* of each mechanism (and double as a
//! performance regression net for the hot paths each mechanism adds).

use bench::{quick_opts, BenchScenario};
use criterion::{criterion_group, criterion_main, Criterion};
use dtnperf::prelude::*;

fn base() -> BenchScenario {
    BenchScenario {
        name: "copy_baseline",
        host: Testbeds::amlight_host(KernelVersion::L6_8),
        path: Testbeds::amlight_path(AmLightPath::Wan25ms),
        opts: quick_opts(2),
    }
}

fn bench_mechanisms(c: &mut Criterion) {
    let mut group = c.benchmark_group("mechanisms");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));

    let copy = base();
    group.bench_function("copy_send_path", |b| b.iter(|| copy.run()));

    let mut zc = base();
    zc.opts = zc.opts.zerocopy();
    group.bench_function("zerocopy_send_path", |b| b.iter(|| zc.run()));

    let mut paced = base();
    paced.opts = paced.opts.fq_rate(BitRate::gbps(30.0));
    group.bench_function("fq_pacing", |b| b.iter(|| paced.run()));

    let mut trunc = base();
    trunc.opts = trunc.opts.skip_rx_copy();
    group.bench_function("skip_rx_copy", |b| b.iter(|| trunc.run()));

    let mut bbr = base();
    bbr.opts = bbr.opts.congestion(CcAlgorithm::BbrV1);
    group.bench_function("bbr_congestion_control", |b| b.iter(|| bbr.run()));

    // Loss recovery: a path with random loss exercises SACK/fast
    // retransmit/TLP continuously.
    let mut lossy = base();
    lossy.path = lossy.path.with_random_loss(1e-4);
    group.bench_function("loss_recovery", |b| b.iter(|| lossy.run()));

    group.finish();
}

criterion_group!(benches, bench_mechanisms);
criterion_main!(benches);
