//! Golden congestion-control orderings: the published rankings the
//! `ext_cc_matrix` experiment sweeps, pinned here as small end-to-end
//! and controller-level tests so a CC regression fails in seconds, not
//! after a full matrix run.
//!
//! The contract (arXiv:1610.03534 high-BDP variant study + the paper's
//! §IV-F observations):
//!
//! * on a clean 1 ms deep-buffered LAN the algorithm must not matter;
//! * H-TCP's RTT-scaled additive increase must match or beat CUBIC's
//!   HyStart-clamped ramp at 200 ms RTT;
//! * loss-based CUBIC caves to Gilbert–Elliott bursty loss while
//!   model-based BBR holds rate (the crossover);
//! * BBRv3's inflight bounds keep it at or below loss-blind BBRv1;
//! * CUBIC's HyStart++ CSS entry lands inside the RFC 9406 [4, 16] ms
//!   clamp, bit-identically across reruns at fixed seeds.

use dtnperf::iperf3::run_with_faults;
use dtnperf::prelude::*;
use dtnperf::tcpstack::cc::{Bbr, CongestionControl, Cubic};
use dtnperf::tcpstack::cc::cubic::{HYSTART_MAX_RTT_THRESH, HYSTART_MIN_RTT_THRESH};
use dtnperf::simcore::SimRng;

const MSS: u64 = 9000;

fn host() -> HostConfig {
    Testbeds::esnet_host(KernelVersion::L6_8)
}

fn path_10g(rtt_ms: u64) -> PathSpec {
    PathSpec::wan(
        format!("golden {rtt_ms}ms"),
        BitRate::gbps(10.0),
        SimDuration::from_millis(rtt_ms),
    )
    .with_switch_buffer(Bytes::mib(64))
}

fn run_cc(cc: CcAlgorithm, path: &PathSpec, opts: &Iperf3Opts) -> f64 {
    let h = host();
    iperf3_run(&h, &h, path, &opts.clone().congestion(cc))
        .expect("valid golden scenario")
        .sum_bitrate()
        .as_gbps()
}

/// Clean 1 ms, deep buffer: no algorithm should matter when nothing is
/// scarce — every variant within 25 % of the best.
#[test]
fn all_variants_converge_on_a_clean_1ms_lan() {
    let path = path_10g(1);
    let opts = Iperf3Opts::new(4).omit(0);
    let rates: Vec<(CcAlgorithm, f64)> =
        CcAlgorithm::ALL.iter().map(|&cc| (cc, run_cc(cc, &path, &opts))).collect();
    let best = rates.iter().fold(0.0_f64, |a, (_, g)| a.max(*g));
    let worst = rates.iter().fold(f64::INFINITY, |a, (_, g)| a.min(*g));
    assert!(best > 9.0, "clean 1 ms 10 G must run near line rate: {rates:?}");
    assert!(
        worst >= best * 0.75,
        "variants must converge on a clean LAN: {rates:?}"
    );
}

/// H-TCP ≥ CUBIC ramp-up at 200 ms RTT: over a short window the mean
/// goodput *is* the ramp speed, and H-TCP's quadratic RTT-scaled
/// increase (no HyStart CSS brake) must not trail CUBIC.
#[test]
fn htcp_matches_or_beats_cubic_ramp_at_200ms() {
    let path = path_10g(200);
    let opts = Iperf3Opts::new(8).omit(0);
    let htcp = run_cc(CcAlgorithm::Htcp, &path, &opts);
    let cubic = run_cc(CcAlgorithm::Cubic, &path, &opts);
    assert!(
        htcp >= cubic * 0.95,
        "H-TCP must ramp at least as fast as CUBIC at 200 ms: {htcp:.2} vs {cubic:.2} Gbps"
    );
    assert!(htcp > 0.0 && cubic > 0.0, "both must move data");
}

/// The BBR/CUBIC crossover: near-equal on the clean path (§IV-F's "no
/// significant impact"), then under Gilbert–Elliott bursty loss CUBIC
/// collapses while BBR's model ignores the non-congestive drops.
#[test]
fn bbr_crosses_cubic_under_bursty_loss() {
    let h = host();
    let path = path_10g(25);
    let secs = 6;
    let opts = |cc: CcAlgorithm| Iperf3Opts::new(secs).omit(1).congestion(cc);
    let ge = FaultPlan::none().with_bursty_loss(
        SimDuration::from_secs(1),
        SimDuration::from_secs(secs - 1),
        0.02,
    );
    let gbps = |cc: CcAlgorithm, faults: &FaultPlan| {
        run_with_faults(&h, &h, &path, &opts(cc), faults, None)
            .expect("valid golden scenario")
            .sum_bitrate()
            .as_gbps()
    };
    let clean_cubic = gbps(CcAlgorithm::Cubic, &FaultPlan::none());
    let clean_bbr = gbps(CcAlgorithm::BbrV1, &FaultPlan::none());
    let lossy_cubic = gbps(CcAlgorithm::Cubic, &ge);
    let lossy_bbr = gbps(CcAlgorithm::BbrV1, &ge);
    // Clean: no crossover yet — CUBIC is at least competitive.
    assert!(
        clean_cubic >= clean_bbr * 0.8,
        "clean 25 ms path: cubic {clean_cubic:.2} vs bbr {clean_bbr:.2} Gbps"
    );
    // Lossy: the crossover — BBR must hold at least twice CUBIC's rate.
    assert!(
        lossy_bbr >= lossy_cubic * 2.0,
        "bursty loss must invert the ranking: bbr {lossy_bbr:.2} vs cubic {lossy_cubic:.2} Gbps"
    );
    // And the loss must actually have hurt CUBIC.
    assert!(
        lossy_cubic < clean_cubic * 0.5,
        "GE loss must cost CUBIC: {clean_cubic:.2} -> {lossy_cubic:.2} Gbps"
    );
}

/// At equal BDP and under an identical ack/loss schedule, BBRv3's
/// inflight bounds must keep its window at or below loss-blind BBRv1's,
/// and a loss must pin `inflight_hi`.
#[test]
fn bbrv3_inflight_never_exceeds_bbrv1_at_equal_bdp() {
    let mss = Bytes::new(MSS);
    let init = Bytes::new(MSS * 10);
    let mut v1 = Bbr::v1(mss, init);
    let mut v3 = Bbr::v3(mss, init);
    let rtt = SimDuration::from_millis(25);
    // Bottleneck-limited schedule: 10 Gbps of delivery per round trip,
    // so the shared BDP (not each controller's own window) is what
    // feeds the bandwidth filters — "at equal BDP".
    let per_rtt = Bytes::new((10.0e9 / 8.0 * rtt.as_secs_f64()) as u64);
    let mut now = SimTime::ZERO;
    let mut hi_seen = false;
    for round in 0..400u32 {
        now += rtt;
        for b in [&mut v1, &mut v3] {
            b.on_ack(per_rtt, Some(rtt), now, per_rtt, true);
        }
        if round % 50 == 49 {
            v1.on_loss(now);
            v3.on_loss(now);
            assert!(v3.inflight_hi().is_some(), "loss must pin inflight_hi");
            assert!(v3.inflight_lo().is_some(), "loss must pin inflight_lo");
            hi_seen = true;
        }
        assert!(
            v3.cwnd() <= v1.cwnd(),
            "round {round}: v3 cwnd {} exceeds v1 {}",
            v3.cwnd().as_u64(),
            v1.cwnd().as_u64()
        );
    }
    assert!(hi_seen);
    // v1 never grows inflight bounds — they are a v3 mechanism.
    assert_eq!(v1.inflight_hi(), None);
    assert_eq!(v1.inflight_lo(), None);
}

/// Drive CUBIC through a seeded queue-buildup schedule and record the
/// standing-queue depth at which HyStart++ first brakes (CSS entry =
/// growth drops below full doubling). RFC 9406 clamps the RTT-rise
/// threshold to [4, 16] ms — on a 100 ms floor the raw floor/8 rule
/// gives 12.5 ms, so the observed entry must land inside the clamp.
/// The schedule is seeded; the exit point must be bit-identical across
/// reruns.
#[test]
fn hystart_exit_lands_within_rfc9406_clamp_at_fixed_seeds() {
    let entry_queue_us = |seed: u64| -> u64 {
        let mut rng = SimRng::seed_from_u64(seed);
        let mut c = Cubic::new(Bytes::new(MSS), Bytes::new(MSS * 10));
        let floor = SimDuration::from_millis(100);
        let mut now = SimTime::ZERO;
        // Establish the RTT floor.
        c.on_ack(c.cwnd(), Some(floor), now, c.cwnd(), true);
        // Grow the standing queue ~500 µs per round with seeded jitter
        // (±200 µs, never dipping below the floor).
        for round in 1..200u64 {
            now += floor;
            let queue_us = round * 500 + rng.uniform_u64(0, 400);
            let rtt = floor + SimDuration::from_micros(queue_us);
            let before = c.cwnd();
            c.on_ack(before, Some(rtt), now, before, true);
            if c.cwnd() < before + before {
                return queue_us;
            }
        }
        panic!("HyStart never braked in 200 rounds");
    };
    for seed in [0xA11CE, 0xB0B, 0xCAB1E] {
        let q = entry_queue_us(seed);
        assert!(
            q > HYSTART_MIN_RTT_THRESH.as_nanos() / 1_000
                && q <= HYSTART_MAX_RTT_THRESH.as_nanos() / 1_000 + 900,
            "seed {seed:#x}: CSS entry at {q} µs of queue, outside the RFC 9406 clamp"
        );
        // Bit-identical across reruns.
        assert_eq!(q, entry_queue_us(seed), "seed {seed:#x} not deterministic");
    }
}
