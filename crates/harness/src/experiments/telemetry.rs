//! `ext_telemetry` — the §III-G collection model rendered end to end.
//!
//! The paper runs `ss -tin`, `ethtool -S` and `mpstat` on a 1-second
//! tick alongside every test and reads throughput dips against cwnd
//! collapses, retransmission bursts and per-core saturation. This
//! experiment reproduces that workflow on one ESnet WAN scenario per
//! congestion-control algorithm: a single stream at 63 ms RTT, sampled
//! every second, rendered as one timeline row per interval.

use crate::ctx::RunCtx;
use crate::experiments::common;
use crate::render::TableData;
use crate::scenario::Scenario;
use crate::testbeds::{EsnetPath, Testbeds};
use iperf3sim::Iperf3Opts;
use linuxhost::KernelVersion;
use simcore::{Bytes, SimDuration};
use tcpstack::CcAlgorithm;

/// Slash-joined per-core busy% (`mpstat -P ALL` as one cell).
fn per_core_cell(cores: &[f64]) -> String {
    let parts: Vec<String> = cores.iter().map(|c| format!("{c:.0}")).collect();
    parts.join("/")
}

/// One timeline row per sampled interval, CUBIC then BBR.
pub fn timeline(ctx: &RunCtx) -> TableData {
    let effort = ctx.effort;
    let host = Testbeds::esnet_host(KernelVersion::L6_8);
    let path = Testbeds::esnet_path(EsnetPath::Wan);
    let mut table = TableData::new(
        "ext_telemetry — ss -tin / ethtool -S / mpstat timeline, single stream, ESnet WAN (63 ms)",
        vec![
            "cc",
            "t (s)",
            "cwnd (KiB)",
            "ssthresh (KiB)",
            "srtt (ms)",
            "state",
            "retr",
            "Gbps",
            "drops",
            "snd core busy%",
            "rcv core busy%",
        ],
    );
    for cc in [CcAlgorithm::Cubic, CcAlgorithm::BbrV1] {
        let opts = Iperf3Opts::new(effort.wan_secs())
            .omit(effort.omit_secs(true))
            .congestion(cc)
            .telemetry(SimDuration::from_secs(1));
        let sc = Scenario::symmetric(
            format!("ext_telemetry {}", cc.name()),
            host.clone(),
            path.clone(),
            opts,
        );
        // The timeline is one run's story, not an aggregate: a single
        // repetition per algorithm (traces for more seeds come from
        // --trace).
        let summary = common::run_or_empty(&ctx.harness_with_reps(1), &sc);
        let Some(report) = summary.reports.first() else { continue };
        let Some(telemetry) = &report.telemetry else { continue };
        let host_samples = telemetry.host.samples.values();
        let trace = &telemetry.flows[0];
        let mut prev_t = 0.0_f64;
        for (k, (t, s)) in trace.samples.iter().enumerate() {
            let t_s = t.saturating_since(simcore::SimTime::ZERO).as_secs_f64();
            let dt = (t_s - prev_t).max(1e-9);
            prev_t = t_s;
            let gbps = s.interval_bytes.as_u64() as f64 * 8.0 / dt / 1e9;
            let (drops, snd_busy, rcv_busy) = match host_samples.get(k) {
                Some(h) => (
                    h.ring_drops + h.switch_drops + h.random_drops + h.fault_drops,
                    per_core_cell(&h.sender_core_busy),
                    per_core_cell(&h.receiver_core_busy),
                ),
                None => (0, "-".into(), "-".into()),
            };
            table.push_row(vec![
                cc.name().to_string(),
                format!("{t_s:.0}"),
                format!("{:.0}", s.cwnd.as_u64() as f64 / 1024.0),
                s.ssthresh
                    .map_or("-".into(), |b| format!("{:.0}", b.as_u64() as f64 / 1024.0)),
                s.srtt.map_or("-".into(), |d| format!("{:.1}", d.as_millis_f64())),
                s.ca_state.name().to_string(),
                s.retr_packets.to_string(),
                format!("{gbps:.1}"),
                drops.to_string(),
                snd_busy,
                rcv_busy,
            ]);
        }
        // Sanity: the rendered intervals cover the whole ledger.
        debug_assert_eq!(
            trace.total_interval_bytes(),
            trace.samples.last().map(|(_, s)| s.delivered_bytes).unwrap_or(Bytes::ZERO)
        );
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeline_covers_both_algorithms() {
        let table = timeline(&RunCtx::new(crate::effort::Effort::Smoke));
        assert_eq!(table.columns.len(), 11);
        let ccs: Vec<&str> = table.rows.iter().map(|r| r[0].as_str()).collect();
        assert!(ccs.contains(&"cubic"), "{ccs:?}");
        assert!(ccs.contains(&"bbr"), "{ccs:?}");
        // Smoke WAN runs 6 s on a 1 s tick: ≥4 samples per algorithm.
        assert!(ccs.iter().filter(|c| **c == "cubic").count() >= 4);
        // Every row carries a parseable throughput and srtt near the
        // 63 ms path RTT.
        for row in &table.rows {
            let gbps: f64 = row[7].parse().expect("Gbps cell");
            assert!(gbps >= 0.0);
            let srtt: f64 = row[4].parse().expect("srtt cell");
            assert!((50.0..500.0).contains(&srtt), "srtt {srtt} off a 63 ms path");
            assert!(row[9].contains('/'), "per-core cell: {}", row[9]);
        }
    }
}
