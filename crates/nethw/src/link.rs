//! Point-to-point link model: serialisation plus propagation.

use simcore::{BitRate, Bytes, SimDuration};

/// A unidirectional link.
#[derive(Debug, Clone, Copy)]
pub struct Link {
    /// Transmission rate.
    pub rate: BitRate,
    /// One-way propagation delay.
    pub delay: SimDuration,
}

impl Link {
    /// New link.
    pub fn new(rate: BitRate, delay: SimDuration) -> Self {
        assert!(rate.as_bps() > 0.0, "link rate must be positive");
        Link { rate, delay }
    }

    /// A LAN link: full rate, sub-100 µs delay.
    pub fn lan(rate: BitRate) -> Self {
        Link::new(rate, SimDuration::from_micros(25))
    }

    /// Total latency for a burst: serialisation + propagation.
    pub fn transit_time(&self, bytes: Bytes) -> SimDuration {
        self.rate.serialize_time(bytes) + self.delay
    }

    /// Serialisation time only.
    pub fn serialize_time(&self, bytes: Bytes) -> SimDuration {
        self.rate.serialize_time(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transit_combines_serialisation_and_propagation() {
        let l = Link::new(BitRate::gbps(100.0), SimDuration::from_millis(10));
        let t = l.transit_time(Bytes::kib(64));
        assert_eq!(t.as_nanos(), 10_000_000 + 5_243);
    }

    #[test]
    fn lan_link_has_small_delay() {
        let l = Link::lan(BitRate::gbps(100.0));
        assert!(l.delay < SimDuration::from_millis(1));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        let _ = Link::new(BitRate::ZERO, SimDuration::ZERO);
    }
}
