//! Differential test: the timer-wheel scheduling path
//! ([`EventQueue::schedule_timer`] / [`EventQueue::cancel_timer`])
//! against a `BinaryHeap` reference, on randomized pacing/RTO-style
//! workloads — the timer-wheel twin of `tests/engine_differential.rs`.
//!
//! The determinism contract (DESIGN.md §6e/§6g) extends to cancelable
//! timers: a timer shares the queue's single `(time, seq)` key space
//! with plain events, so the pop stream of the survivors must be
//! *identical* to a heap that never had the cancelled keys — tombstones
//! and lazily-filtered wheel buckets are invisible in the output. The
//! reference mirrors that by assigning the same monotone sequence
//! numbers and skipping cancelled ones at pop time.
//!
//! Randomness is a hand-rolled LCG from fixed seeds (same policy as
//! `tests/properties.rs`): failures are reproducible by construction.

use dtnperf::simcore::{EventQueue, SimDuration, SimTime, TimerId};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

/// Reference queue: a plain binary heap over `(time, seq, payload)`
/// plus a cancelled-seq set consulted at pop time. Every insert —
/// whether it models a plain push or a cancelable timer — consumes one
/// sequence number, exactly like the engine's shared counter.
struct ReferenceQueue {
    heap: BinaryHeap<Reverse<(SimTime, u64, u64)>>,
    cancelled: HashSet<u64>,
    seq: u64,
    now: SimTime,
}

impl ReferenceQueue {
    fn new() -> Self {
        ReferenceQueue {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Insert and return the assigned seq (the reference's "timer id").
    fn push(&mut self, at: SimTime, payload: u64) -> u64 {
        let at = at.max(self.now); // mirror the engine's past clamp
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse((at, seq, payload)));
        seq
    }

    /// Cancel by seq; true if it was still pending (like the engine).
    fn cancel(&mut self, seq: u64) -> bool {
        // The heap still physically holds the entry; pop() filters it.
        // Inserting twice or cancelling a popped seq reads as false.
        if self.heap.iter().any(|Reverse((_, s, _))| *s == seq) && self.cancelled.insert(seq) {
            return true;
        }
        false
    }

    fn pop(&mut self) -> Option<(SimTime, u64)> {
        while let Some(Reverse((t, seq, payload))) = self.heap.pop() {
            if self.cancelled.remove(&seq) {
                continue;
            }
            self.now = t;
            return Some((t, payload));
        }
        None
    }
}

/// Minimal LCG (Numerical Recipes constants), good enough to scatter
/// times and interleave operations.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

fn assert_drained_identically(engine: &mut EventQueue<u64>, reference: &mut ReferenceQueue) {
    loop {
        let a = engine.pop();
        let b = reference.pop();
        assert_eq!(a, b, "engine and reference diverged while draining");
        if a.is_none() {
            break;
        }
    }
}

/// The paper-simulation workload shape: per-burst pacing events nanos
/// out, RTO/TLP timers milliseconds out that usually get cancelled
/// (rescheduled) before firing, and steady pops advancing the clock.
#[test]
fn randomized_pacing_rto_workload_matches_reference() {
    for seed in 0..24u64 {
        let mut rng = Lcg(0xba5eba11 ^ (seed << 13));
        let mut engine: EventQueue<u64> = EventQueue::new();
        let mut reference = ReferenceQueue::new();
        // Outstanding cancelable timers: (engine id, reference seq).
        let mut timers: Vec<(TimerId, u64)> = Vec::new();
        let mut payload = 0u64;
        for _ in 0..5000 {
            match rng.next() % 8 {
                // Pacing-like near events (plain pushes, never cancelled).
                0..=3 => {
                    let t = engine.now() + SimDuration::from_nanos(rng.next() % 4096);
                    engine.push(t, payload);
                    reference.push(t, payload);
                    payload += 1;
                }
                // RTO/TLP-like timers: 1–20 ms out, cancelable.
                4 => {
                    let t = engine.now()
                        + SimDuration::from_nanos(1_000_000 + rng.next() % 19_000_000);
                    let id = engine.schedule_timer(t, payload);
                    let seq = reference.push(t, payload);
                    timers.push((id, seq));
                    payload += 1;
                }
                // Cancel a random outstanding timer (an ACK re-arming
                // the RTO). Both sides must agree whether it was live.
                5 => {
                    if !timers.is_empty() {
                        let i = (rng.next() as usize) % timers.len();
                        let (id, seq) = timers.swap_remove(i);
                        assert_eq!(
                            engine.cancel_timer(id),
                            reference.cancel(seq),
                            "cancel liveness diverged (seed {seed})"
                        );
                    }
                }
                // Pops advance `now`, so later pushes land relative to
                // a moving clock like a real run.
                _ => {
                    assert_eq!(engine.pop(), reference.pop(), "mid-run divergence (seed {seed})");
                }
            }
        }
        assert_drained_identically(&mut engine, &mut reference);
        assert_eq!(
            engine.total_pushed() - engine.total_cancelled() - engine.total_popped(),
            0,
            "conservation after drain (seed {seed})"
        );
    }
}

/// Heavy same-time collisions across both scheduling paths: plain
/// events and timers landing on identical instants must interleave in
/// exact FIFO (seq) order, including after some timers are cancelled.
#[test]
fn same_time_mixed_events_and_timers_keep_fifo_order() {
    for seed in 0..8u64 {
        let mut rng = Lcg(0x7ea7 ^ (seed << 29));
        let mut engine: EventQueue<u64> = EventQueue::new();
        let mut reference = ReferenceQueue::new();
        let mut timers = Vec::new();
        for payload in 0..3000u64 {
            // Only 16 distinct instants: nearly everything collides.
            let t = SimTime::ZERO + SimDuration::from_nanos(rng.next() % 16);
            if rng.next().is_multiple_of(3) {
                let id = engine.schedule_timer(t, payload);
                let seq = reference.push(t, payload);
                timers.push((id, seq));
            } else {
                engine.push(t, payload);
                reference.push(t, payload);
            }
        }
        // Cancel half of the timers, scattered.
        for (i, (id, seq)) in timers.into_iter().enumerate() {
            if i.is_multiple_of(2) {
                assert_eq!(engine.cancel_timer(id), reference.cancel(seq));
            }
        }
        assert_drained_identically(&mut engine, &mut reference);
    }
}

/// Cancel storms around partial drains: cancelling timers that already
/// fired must be a no-op on both sides, and timers cancelled while
/// resident in far wheel buckets must never resurface.
#[test]
fn cancel_after_partial_drain_matches_reference() {
    for seed in 0..8u64 {
        let mut rng = Lcg(0xc0ffee ^ (seed << 7));
        let mut engine: EventQueue<u64> = EventQueue::new();
        let mut reference = ReferenceQueue::new();
        let mut timers = Vec::new();
        for payload in 0..2000u64 {
            // Spread across the near band, the wheel ring, and the
            // overflow horizon (three rungs of the scheduler).
            let t = SimTime::ZERO + SimDuration::from_nanos(rng.next() % 3_000_000_000);
            let id = engine.schedule_timer(t, payload);
            let seq = reference.push(t, payload);
            timers.push((id, seq));
        }
        // Drain a third, cancel a random half (some already fired —
        // both sides must report them dead), then drain the rest.
        for _ in 0..timers.len() / 3 {
            assert_eq!(engine.pop(), reference.pop(), "pre-cancel divergence (seed {seed})");
        }
        for (i, (id, seq)) in timers.into_iter().enumerate() {
            if rng.next().is_multiple_of(2) {
                assert_eq!(
                    engine.cancel_timer(id),
                    reference.cancel(seq),
                    "cancel #{i} liveness diverged (seed {seed})"
                );
            }
        }
        assert_drained_identically(&mut engine, &mut reference);
    }
}

/// `pop_same_time` is pop() in bulk: against the reference, a
/// same-time batch must equal exactly the reference pops that share
/// the first pending instant, in the same order.
#[test]
fn pop_same_time_batches_match_reference_run_lengths() {
    let mut rng = Lcg(99);
    let mut engine: EventQueue<u64> = EventQueue::new();
    let mut reference = ReferenceQueue::new();
    for payload in 0..4000u64 {
        let t = SimTime::ZERO + SimDuration::from_nanos(rng.next() % 512);
        engine.push(t, payload);
        reference.push(t, payload);
    }
    let end = SimTime::ZERO + SimDuration::from_secs(1);
    let mut batch = Vec::new();
    while let Some(t) = engine.pop_same_time(end, &mut batch) {
        for &payload in &batch {
            assert_eq!(reference.pop(), Some((t, payload)), "batch member mismatch");
        }
    }
    assert_eq!(reference.pop(), None, "engine finished before the reference");
}
