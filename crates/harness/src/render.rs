//! Terminal rendering: grouped bar "figures" and tables.
//!
//! The paper's figures are grouped bar charts (configurations × paths)
//! with one-stdev whiskers; these render as ASCII so every experiment
//! binary can print exactly what it reproduced.

use simcore::Summary;

/// One plotted series (a bar group), e.g. "zerocopy+pacing".
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend name.
    pub name: String,
    /// One summary per x position.
    pub points: Vec<Summary>,
}

/// A reproduced figure: x axis (paths) × series (configurations).
#[derive(Debug, Clone)]
pub struct FigureData {
    /// Figure title ("Fig. 5: Single-stream results at AmLight…").
    pub title: String,
    /// Unit for the y values ("Gbps", "%").
    pub unit: String,
    /// X-axis labels.
    pub x_labels: Vec<String>,
    /// The series.
    pub series: Vec<Series>,
}

impl FigureData {
    /// New, empty figure.
    pub fn new(title: impl Into<String>, unit: impl Into<String>, x_labels: Vec<String>) -> Self {
        FigureData { title: title.into(), unit: unit.into(), x_labels, series: Vec::new() }
    }

    /// Append a series; must match the x-axis length.
    pub fn push_series(&mut self, name: impl Into<String>, points: Vec<Summary>) {
        assert_eq!(points.len(), self.x_labels.len(), "series length mismatch");
        self.series.push(Series { name: name.into(), points });
    }

    /// Largest mean across the figure (for scaling).
    pub fn max_mean(&self) -> f64 {
        self.series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.mean))
            .fold(0.0, f64::max)
    }

    /// Render as an ASCII grouped bar chart with ±1σ whiskers.
    pub fn render_ascii(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let scale = self.max_mean().max(1e-9);
        const WIDTH: usize = 46;
        let name_w = self
            .series
            .iter()
            .map(|s| s.name.len())
            .chain(std::iter::once(6))
            .max()
            .unwrap_or(6);
        for (xi, x) in self.x_labels.iter().enumerate() {
            out.push_str(&format!("{x}:\n"));
            for s in &self.series {
                let p = s.points[xi];
                let bar_len = ((p.mean / scale) * WIDTH as f64).round() as usize;
                let bar: String = "#".repeat(bar_len.min(WIDTH));
                out.push_str(&format!(
                    "  {:<name_w$} |{:<WIDTH$}| {:7.2} ±{:.2} {}\n",
                    s.name, bar, p.mean, p.stdev, self.unit
                ));
            }
        }
        out
    }

    /// Dump as CSV (`x,series,mean,stdev,min,max,n`) for plotting.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("x,series,mean,stdev,min,max,n\n");
        for (xi, x) in self.x_labels.iter().enumerate() {
            for s in &self.series {
                let p = s.points[xi];
                out.push_str(&format!(
                    "{x},{},{:.4},{:.4},{:.4},{:.4},{}\n",
                    s.name, p.mean, p.stdev, p.min, p.max, p.n
                ));
            }
        }
        out
    }
}

/// A reproduced table (Tables I–III).
#[derive(Debug, Clone)]
pub struct TableData {
    /// Table title.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Row cells (as preformatted strings).
    pub rows: Vec<Vec<String>>,
}

impl TableData {
    /// New table with headers.
    pub fn new(title: impl Into<String>, columns: Vec<&str>) -> Self {
        TableData {
            title: title.into(),
            columns: columns.into_iter().map(String::from).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; must match the column count.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render as an aligned ASCII table.
    pub fn render_ascii(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = format!("== {} ==\n", self.title);
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<w$}", c, w = widths[i]))
            .collect();
        out.push_str(&header.join(" | "));
        out.push('\n');
        out.push_str(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>().join("-+-"));
        out.push('\n');
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<w$}", c, w = widths[i]))
                .collect();
            out.push_str(&line.join(" | "));
            out.push('\n');
        }
        out
    }

    /// Dump as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = self.columns.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(mean: f64) -> Summary {
        Summary { n: 5, mean, stdev: mean / 10.0, min: mean * 0.9, max: mean * 1.1 }
    }

    #[test]
    fn figure_renders_all_series() {
        let mut fig = FigureData::new("Fig. X", "Gbps", vec!["LAN".into(), "WAN".into()]);
        fig.push_series("default", vec![summary(55.0), summary(38.0)]);
        fig.push_series("zc+pace", vec![summary(48.0), summary(48.0)]);
        let text = fig.render_ascii();
        assert!(text.contains("Fig. X"));
        assert!(text.contains("default"));
        assert!(text.contains("zc+pace"));
        assert!(text.contains("LAN:"));
        assert!(text.contains("55.00"));
        let csv = fig.to_csv();
        assert_eq!(csv.lines().count(), 1 + 4);
        assert!(csv.contains("WAN,zc+pace,48.0000"));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_series_rejected() {
        let mut fig = FigureData::new("f", "Gbps", vec!["a".into()]);
        fig.push_series("s", vec![summary(1.0), summary(2.0)]);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = TableData::new("Table I", vec!["Test Config", "Ave Tput", "Retr"]);
        t.push_row(vec!["unpaced".into(), "166 Gbps".into(), "242".into()]);
        t.push_row(vec!["25 Gbps / stream".into(), "166 Gbps".into(), "70".into()]);
        let text = t.render_ascii();
        assert!(text.contains("Table I"));
        assert!(text.contains("unpaced"));
        assert!(text.contains("25 Gbps / stream"));
        let csv = t.to_csv();
        assert!(csv.starts_with("Test Config,Ave Tput,Retr"));
    }

    #[test]
    fn bars_scale_to_max() {
        let mut fig = FigureData::new("f", "Gbps", vec!["x".into()]);
        fig.push_series("big", vec![summary(100.0)]);
        fig.push_series("half", vec![summary(50.0)]);
        let text = fig.render_ascii();
        let lines: Vec<&str> = text.lines().filter(|l| l.contains('#')).collect();
        let count = |l: &str| l.matches('#').count();
        assert!(count(lines[0]) > count(lines[1]) * 3 / 2);
        assert_eq!(fig.max_mean(), 100.0);
    }
}
