//! The CPU cost model: service times per pipeline stage.
//!
//! Every burst that moves through a host costs CPU time at four
//! stations, each modelled as a FIFO server by `netsim`:
//!
//! ```text
//! sender:   app core (syscall + copy|pin) → softirq/TX core (proto+driver)
//! receiver: softirq/RX core (GRO + proto) → app core (syscall + copy|trunc)
//! ```
//!
//! plus a per-host *fabric* server capturing the memory/DMA bandwidth
//! shared by all flows. Throughput limits — the paper's central
//! subject — emerge from whichever server saturates first.

use crate::calib::{self, ArchCosts};
use crate::hostcfg::HostConfig;
use crate::virt::VirtMode;
use simcore::time::round_f64_u64;
use simcore::{Bytes, SimDuration, SimRng};

/// One stage of the host pipeline, for per-stage cycle attribution.
///
/// Every [`CostModel`] service method corresponds to exactly one
/// variant; the simulator tags each service call with its stage so a
/// `CycleLedger` can decompose core busy time the way `perf report`
/// decomposes samples by symbol. The `name()` strings double as the
/// frame names in folded-stack (flamegraph) output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Sender application core: `write()`/`sendmsg()` (copy, pin, or
    /// splice — see [`TxMode`]).
    TxApp,
    /// Application-level checksum over the payload (§V-B data movers).
    Checksum,
    /// Sender softirq/TX core: protocol send + driver work.
    TxSoftirq,
    /// Receiver softirq/RX core: GRO merge + protocol receive.
    RxSoftirq,
    /// Receiver application core: `read()` (copy or MSG_TRUNC).
    RxApp,
    /// Sender IRQ core: ACK processing.
    Ack,
    /// Host fabric, send side: memory/DMA bandwidth for the outgoing
    /// burst.
    FabricTx,
    /// Host fabric, receive side.
    FabricRx,
}

impl Stage {
    /// Every stage, in pipeline order. The position of a stage in this
    /// array is its [`Stage::index`].
    pub const ALL: [Stage; 8] = [
        Stage::TxApp,
        Stage::Checksum,
        Stage::TxSoftirq,
        Stage::RxSoftirq,
        Stage::RxApp,
        Stage::Ack,
        Stage::FabricTx,
        Stage::FabricRx,
    ];

    /// Number of stages (the ledger's stage dimension).
    pub const COUNT: usize = Stage::ALL.len();

    /// Dense index into a `CycleLedger` stage dimension.
    pub fn index(self) -> usize {
        match self {
            Stage::TxApp => 0,
            Stage::Checksum => 1,
            Stage::TxSoftirq => 2,
            Stage::RxSoftirq => 3,
            Stage::RxApp => 4,
            Stage::Ack => 5,
            Stage::FabricTx => 6,
            Stage::FabricRx => 7,
        }
    }

    /// Stable lowercase name (folded-stack frame / trace field).
    pub fn name(self) -> &'static str {
        match self {
            Stage::TxApp => "tx_app",
            Stage::Checksum => "checksum",
            Stage::TxSoftirq => "tx_softirq",
            Stage::RxSoftirq => "rx_softirq",
            Stage::RxApp => "rx_app",
            Stage::Ack => "ack",
            Stage::FabricTx => "fabric_tx",
            Stage::FabricRx => "fabric_rx",
        }
    }
}

/// How the sender application handed the bytes to the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxMode {
    /// Ordinary `write()`: user→kernel copy.
    Copy,
    /// `sendmsg(MSG_ZEROCOPY)` that pinned pages.
    Zerocopy,
    /// `sendmsg(MSG_ZEROCOPY)` that exhausted `optmem_max` and copied.
    ZerocopyFallback,
    /// `sendfile()`: kernel-to-kernel splice from the page cache — the
    /// classic zerocopy (`iperf3 -Z`, §II-B). No user copy, no optmem
    /// accounting, but file-bound rather than general-purpose.
    Sendfile,
}

/// Version of the cost model's *numbers* (calibration constants and
/// service-time formulas). Cached simulation results are keyed on this:
/// bump it whenever a change to `calib.rs`/`costmodel.rs` (or anything
/// else that alters simulated outcomes for an unchanged scenario) would
/// make previously cached reports stale.
pub const COST_MODEL_VERSION: u32 = 3;

/// Resolved per-host cost model.
#[derive(Debug, Clone)]
pub struct CostModel {
    costs: ArchCosts,
    /// Kernel cost multiplier (≥ 1.0 for pre-6.8 kernels).
    kmult: f64,
    /// Core clock in Hz after governor effects.
    clock_hz: f64,
    /// Effective L3 bytes for the window penalty.
    l3: Bytes,
    /// MTU for per-packet costs.
    mtu: Bytes,
    /// Hardware GRO active on the receive side.
    hw_gro: bool,
    virt: VirtMode,
    iommu_pt: bool,
}

impl CostModel {
    /// Build the model for a host configuration.
    pub fn new(cfg: &HostConfig) -> Self {
        let costs = match cfg.cpu {
            crate::cpu::CpuArch::IntelXeon6346 => calib::INTEL_COSTS,
            crate::cpu::CpuArch::AmdEpyc73F3 => calib::AMD_COSTS,
        };
        let mut clock_hz = cfg.cpu.boost_clock_hz();
        if !cfg.performance_governor {
            clock_hz *= calib::NO_PERF_GOVERNOR_CLOCK_FACTOR;
        }
        CostModel {
            costs,
            kmult: calib::kernel_cost_factor(cfg.cpu, cfg.kernel),
            clock_hz,
            l3: cfg.cpu.effective_l3(),
            mtu: cfg.offload.mtu,
            hw_gro: cfg.offload.hw_gro,
            virt: cfg.virt,
            iommu_pt: cfg.iommu_pt,
        }
    }

    #[inline]
    fn cycles_to_time(&self, cycles: f64) -> SimDuration {
        SimDuration::from_nanos(round_f64_u64(cycles / self.clock_hz * 1e9))
    }

    #[inline]
    fn jitter(&self, rng: &mut SimRng) -> f64 {
        rng.jitter(calib::SERVICE_JITTER * self.virt.jitter_factor().min(19.0))
    }

    /// Window-scaling penalty on per-byte *sender* costs: once the
    /// in-flight window exceeds the effective L3, skb and retransmit-
    /// queue working sets spill to DRAM (§IV-B: the WAN sender-CPU
    /// wall; steeper on AMD's CCX-sliced cache).
    pub fn window_penalty(&self, window: Bytes) -> f64 {
        self.penalty(window, self.costs.window_penalty_alpha)
    }

    /// Cache-contention penalty on the shared copy fabric (see
    /// `calib::ArchCosts::fabric_penalty_alpha`).
    pub fn fabric_penalty(&self, window: Bytes) -> f64 {
        self.penalty(window, self.costs.fabric_penalty_alpha)
    }

    fn penalty(&self, window: Bytes, alpha: f64) -> f64 {
        let ratio = window.as_f64() / self.l3.as_f64();
        if ratio <= 1.0 {
            1.0
        } else {
            // Saturating: spilled working sets are DRAM-bound at a
            // fixed per-byte cost, so the multiplier tends to 1+alpha.
            1.0 + alpha * (1.0 - 1.0 / ratio)
        }
    }

    /// Sender application-core service time for one `write()`/`sendmsg()`
    /// of `burst` bytes, given the current in-flight window.
    pub fn tx_app_service(
        &self,
        burst: Bytes,
        mode: TxMode,
        window: Bytes,
        rng: &mut SimRng,
    ) -> SimDuration {
        let b = burst.as_f64();
        let penalty = self.window_penalty(window);
        let per_byte = match mode {
            TxMode::Copy => self.costs.tx_copy_cy_per_b * penalty,
            TxMode::Zerocopy => self.costs.tx_zc_pin_cy_per_b * penalty,
            TxMode::ZerocopyFallback => {
                self.costs.tx_copy_cy_per_b * penalty * calib::ZC_FALLBACK_OVERHEAD
            }
            // Page-cache reference splice: comparable to pinning but
            // with no completion machinery.
            TxMode::Sendfile => self.costs.tx_zc_pin_cy_per_b * penalty,
        } * self.virt.per_byte_factor();
        let per_burst = self.costs.tx_syscall_cy
            + self.virt.per_burst_overhead_cycles()
            + match mode {
                TxMode::Copy | TxMode::Sendfile => 0.0,
                TxMode::Zerocopy | TxMode::ZerocopyFallback => self.costs.tx_zc_notif_cy,
            };
        let cycles = (per_byte * b + per_burst) * self.kmult * self.jitter(rng);
        self.cycles_to_time(cycles)
    }

    /// Sender softirq/TX-core service time for one burst.
    pub fn tx_softirq_service(&self, burst: Bytes, rng: &mut SimRng) -> SimDuration {
        let pkts = burst.packets_at_mtu(self.mtu) as f64;
        let pkt_cy = self.costs.tx_softirq_pkt_cy + self.iommu_pkt_extra();
        let cycles =
            (self.costs.tx_softirq_burst_cy + pkts * pkt_cy) * self.kmult * self.jitter(rng);
        self.cycles_to_time(cycles)
    }

    /// Receiver softirq/RX-core service time for one burst (GRO merge +
    /// protocol receive). Hardware GRO (SHAMPO) slashes the per-packet
    /// component (§V-C).
    pub fn rx_softirq_service(&self, burst: Bytes, rng: &mut SimRng) -> SimDuration {
        let pkts = burst.packets_at_mtu(self.mtu) as f64;
        let (pkt_cy, burst_cy) = if self.hw_gro {
            (self.costs.rx_hwgro_pkt_cy, self.costs.rx_hwgro_burst_cy)
        } else {
            (self.costs.rx_softirq_pkt_cy, self.costs.rx_softirq_burst_cy)
        };
        let cycles =
            (burst_cy + pkts * (pkt_cy + self.iommu_pkt_extra())) * self.kmult * self.jitter(rng);
        self.cycles_to_time(cycles)
    }

    /// Receiver application-core service time for one `read()` of
    /// `burst` bytes. With `--skip-rx-copy` (MSG_TRUNC) the copy is
    /// skipped entirely.
    pub fn rx_app_service(&self, burst: Bytes, skip_copy: bool, rng: &mut SimRng) -> SimDuration {
        let per_byte = if skip_copy {
            0.0
        } else {
            self.costs.rx_copy_cy_per_b * self.virt.per_byte_factor()
        };
        let cycles = (per_byte * burst.as_f64()
            + self.costs.rx_syscall_cy
            + self.virt.per_burst_overhead_cycles())
            * self.kmult
            * self.jitter(rng);
        self.cycles_to_time(cycles)
    }

    /// Application-level checksum cost over one burst (Globus-style
    /// user-level integrity verification, §V-B).
    pub fn checksum_service(&self, burst: Bytes, rng: &mut SimRng) -> SimDuration {
        let cycles = calib::USER_CHECKSUM_CY_PER_B
            * burst.as_f64()
            * self.virt.per_byte_factor()
            * self.jitter(rng);
        self.cycles_to_time(cycles)
    }

    /// Sender IRQ-core cost of processing one ACK.
    pub fn ack_service(&self, rng: &mut SimRng) -> SimDuration {
        self.cycles_to_time(self.costs.ack_cy * self.kmult * self.jitter(rng))
    }

    /// Host-fabric service time for moving a burst on the send side.
    /// Copy-path sends contend in the shared cache with the flow's
    /// whole window; DMA-only zerocopy sends do not.
    pub fn fabric_tx_service(&self, burst: Bytes, mode: TxMode, window: Bytes) -> SimDuration {
        let (gbps, penalty) = match mode {
            TxMode::Copy | TxMode::ZerocopyFallback => {
                (self.costs.fabric_tx_copy_gbps, self.fabric_penalty(window))
            }
            TxMode::Zerocopy | TxMode::Sendfile => (self.costs.fabric_zc_dma_gbps, 1.0),
        };
        self.fabric_time(burst, gbps / penalty)
    }

    /// Host-fabric service time on the receive side. `skip_copy`
    /// removes the kernel→user copy leg, leaving DMA only.
    pub fn fabric_rx_service(&self, burst: Bytes, skip_copy: bool) -> SimDuration {
        let gbps = if skip_copy {
            self.costs.fabric_zc_dma_gbps
        } else {
            self.costs.fabric_rx_copy_gbps
        };
        self.fabric_time(burst, gbps)
    }

    fn fabric_time(&self, burst: Bytes, gbps: f64) -> SimDuration {
        let mut effective = gbps / self.kmult;
        if !self.iommu_pt {
            effective /= calib::IOMMU_NO_PT_FABRIC_DIVISOR;
        }
        SimDuration::from_nanos(round_f64_u64(burst.bits() as f64 / effective))
    }

    fn iommu_pkt_extra(&self) -> f64 {
        if self.iommu_pt { 0.0 } else { calib::IOMMU_NO_PT_PKT_EXTRA_CY }
    }

    /// Clock the model runs at (Hz).
    pub fn clock_hz(&self) -> f64 {
        self.clock_hz
    }

    /// The kernel cost multiplier in effect.
    pub fn kernel_multiplier(&self) -> f64 {
        self.kmult
    }
}

/// Throughput (Gbit/s) a single server sustains at the given per-burst
/// service time — analysis helper used by calibration tests and docs.
///
/// A zero (or sub-nanosecond) service time is clamped to one
/// simulation tick: the simulator cannot schedule work finer than a
/// nanosecond, so that is the fastest any server can actually run.
/// Returning a finite ceiling instead of `inf` keeps the value safe to
/// feed into `RunningStats` (which would otherwise skip it as a
/// non-finite sample).
pub fn server_rate_gbps(burst: Bytes, service: SimDuration) -> f64 {
    let service = service.max(SimDuration::from_nanos(1));
    burst.bits() as f64 / service.as_secs_f64() / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hostcfg::HostConfig;
    use crate::kernel::KernelVersion;
    use simcore::SimRng;

    fn rng() -> SimRng {
        SimRng::seed_from_u64(0)
    }

    fn mean_service<F: FnMut(&mut SimRng) -> SimDuration>(mut f: F) -> SimDuration {
        let mut rng = rng();
        let total: u64 = (0..200).map(|_| f(&mut rng).as_nanos()).sum();
        SimDuration::from_nanos(total / 200)
    }

    #[test]
    fn intel_rx_softirq_bounds_lan_at_55() {
        let cfg = HostConfig::amlight_intel(KernelVersion::L6_8);
        let m = CostModel::new(&cfg);
        let burst = Bytes::kib(64);
        let svc = mean_service(|r| m.rx_softirq_service(burst, r));
        let rate = server_rate_gbps(burst, svc);
        assert!((52.0..59.0).contains(&rate), "Intel rx softirq {rate:.1} Gbps");
    }

    #[test]
    fn amd_rx_softirq_bounds_lan_at_42() {
        let cfg = HostConfig::esnet_amd(KernelVersion::L6_8);
        let m = CostModel::new(&cfg);
        let burst = Bytes::kib(64);
        let svc = mean_service(|r| m.rx_softirq_service(burst, r));
        let rate = server_rate_gbps(burst, svc);
        assert!((39.5..45.0).contains(&rate), "AMD rx softirq {rate:.1} Gbps");
    }

    #[test]
    fn zerocopy_sender_is_dramatically_cheaper() {
        let cfg = HostConfig::amlight_intel(KernelVersion::L6_8);
        let m = CostModel::new(&cfg);
        let burst = Bytes::kib(64);
        let w = Bytes::mib(1);
        let copy = mean_service(|r| m.tx_app_service(burst, TxMode::Copy, w, r));
        let zc = mean_service(|r| m.tx_app_service(burst, TxMode::Zerocopy, w, r));
        assert!(
            copy.as_nanos() > 4 * zc.as_nanos(),
            "copy {copy} should dwarf zerocopy {zc}"
        );
    }

    #[test]
    fn fallback_is_worse_than_plain_copy() {
        let cfg = HostConfig::amlight_intel(KernelVersion::L6_8);
        let m = CostModel::new(&cfg);
        let burst = Bytes::kib(64);
        let w = Bytes::mib(100);
        let copy = mean_service(|r| m.tx_app_service(burst, TxMode::Copy, w, r));
        let fb = mean_service(|r| m.tx_app_service(burst, TxMode::ZerocopyFallback, w, r));
        assert!(fb > copy, "fallback {fb} must exceed copy {copy}");
    }

    #[test]
    fn window_penalty_kicks_in_past_l3() {
        let cfg = HostConfig::esnet_amd(KernelVersion::L6_8);
        let m = CostModel::new(&cfg);
        assert_eq!(m.window_penalty(Bytes::mib(16)), 1.0);
        assert_eq!(m.window_penalty(Bytes::mib(32)), 1.0);
        let p = m.window_penalty(Bytes::new(650_000_000));
        assert!(p > 2.0, "AMD penalty at 650 MB window: {p}");
        let intel = CostModel::new(&HostConfig::amlight_intel(KernelVersion::L6_8));
        let pi = intel.window_penalty(Bytes::new(650_000_000));
        assert!(pi < p, "Intel penalty {pi} must be below AMD {p}");
    }

    #[test]
    fn old_kernel_costs_more() {
        let burst = Bytes::kib(64);
        let new = CostModel::new(&HostConfig::esnet_amd(KernelVersion::L6_8));
        let old = CostModel::new(&HostConfig::esnet_amd(KernelVersion::L5_15));
        let sn = mean_service(|r| new.rx_softirq_service(burst, r));
        let so = mean_service(|r| old.rx_softirq_service(burst, r));
        let ratio = so.as_nanos() as f64 / sn.as_nanos() as f64;
        assert!((1.25..1.38).contains(&ratio), "5.15/6.8 cost ratio {ratio:.3}");
    }

    #[test]
    fn big_tcp_burst_amortises_per_packet_work() {
        let mut cfg = HostConfig::amlight_intel(KernelVersion::L6_8);
        cfg.offload = cfg.offload.with_big_tcp(Bytes::new(150_000), KernelVersion::L6_8);
        let m = CostModel::new(&cfg);
        let rate64 = server_rate_gbps(
            Bytes::kib(64),
            mean_service(|r| m.rx_softirq_service(Bytes::kib(64), r)),
        );
        let rate150 = server_rate_gbps(
            Bytes::new(150_000),
            mean_service(|r| m.rx_softirq_service(Bytes::new(150_000), r)),
        );
        assert!(rate150 > rate64 * 1.4, "BIG TCP ceiling {rate150:.0} vs {rate64:.0}");
    }

    #[test]
    fn hw_gro_slashes_receive_cost() {
        let mut cfg = HostConfig::esnet_amd(KernelVersion::L6_11);
        cfg.offload = cfg.offload.with_hw_gro(KernelVersion::L6_11);
        let hw = CostModel::new(&cfg);
        let sw = CostModel::new(&HostConfig::esnet_amd(KernelVersion::L6_8));
        let b = Bytes::kib(64);
        let t_hw = mean_service(|r| hw.rx_softirq_service(b, r));
        let t_sw = mean_service(|r| sw.rx_softirq_service(b, r));
        assert!(t_hw.as_nanos() * 2 < t_sw.as_nanos() * 2 && t_hw < t_sw);
    }

    #[test]
    fn skip_rx_copy_removes_per_byte_cost() {
        let cfg = HostConfig::esnet_amd(KernelVersion::L6_8);
        let m = CostModel::new(&cfg);
        let b = Bytes::kib(64);
        let with_copy = mean_service(|r| m.rx_app_service(b, false, r));
        let trunc = mean_service(|r| m.rx_app_service(b, true, r));
        assert!(with_copy.as_nanos() > 10 * trunc.as_nanos());
    }

    #[test]
    fn iommu_off_halves_fabric() {
        let on = CostModel::new(&HostConfig::esnet_amd(KernelVersion::L5_15));
        let mut cfg_off = HostConfig::esnet_amd(KernelVersion::L5_15);
        cfg_off.iommu_pt = false;
        let off = CostModel::new(&cfg_off);
        let b = Bytes::kib(64);
        let t_on = on.fabric_rx_service(b, false);
        let t_off = off.fabric_rx_service(b, false);
        let ratio = t_off.as_nanos() as f64 / t_on.as_nanos() as f64;
        assert!((2.0..2.2).contains(&ratio), "IOMMU fabric ratio {ratio}");
    }

    #[test]
    fn fabric_rates_match_calibration() {
        // AMD 5.15 receiver fabric ≈ 223/1.31 ≈ 170 Gbps (Table I).
        let m = CostModel::new(&HostConfig::esnet_amd(KernelVersion::L5_15));
        let b = Bytes::mib(1);
        let rate = server_rate_gbps(b, m.fabric_rx_service(b, false));
        assert!((165.0..176.0).contains(&rate), "AMD 5.15 rx fabric {rate:.0} Gbps");
    }

    #[test]
    fn zero_service_rate_is_finite() {
        let r = server_rate_gbps(Bytes::kib(64), SimDuration::ZERO);
        assert!(r.is_finite(), "zero service must clamp, got {r}");
        // Clamped to the 1 ns tick: 64 KiB / 1 ns.
        assert!((r - Bytes::kib(64).bits() as f64).abs() < 1e-3, "{r}");
        // Ordinary service times are unaffected.
        let normal = server_rate_gbps(Bytes::kib(64), SimDuration::from_micros(10));
        assert!((normal - 52.4288).abs() < 1e-3, "{normal}");
    }

    #[test]
    fn stage_indices_are_dense_and_names_stable() {
        for (i, stage) in Stage::ALL.iter().enumerate() {
            assert_eq!(stage.index(), i, "{stage:?}");
        }
        assert_eq!(Stage::COUNT, 8);
        let names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            vec![
                "tx_app",
                "checksum",
                "tx_softirq",
                "rx_softirq",
                "rx_app",
                "ack",
                "fabric_tx",
                "fabric_rx"
            ]
        );
    }

    #[test]
    fn governor_slows_clock() {
        let mut cfg = HostConfig::esnet_amd(KernelVersion::L6_8);
        cfg.performance_governor = false;
        let m = CostModel::new(&cfg);
        assert!(m.clock_hz() < CpuArchClock::AMD_BOOST);
        struct CpuArchClock;
        impl CpuArchClock {
            const AMD_BOOST: f64 = 4.0e9;
        }
    }
}
