//! "Should we upgrade the kernel on our DTNs?" — the Figs. 12/13
//! question, answered for both testbeds in one run.
//!
//! ```text
//! cargo run --release --example kernel_upgrade_study
//! ```

use dtnperf::prelude::*;

fn main() {
    let harness = TestHarness::new(4);
    println!("single-stream LAN throughput by kernel (default settings)\n");

    println!("ESnet (AMD EPYC 73F3, ConnectX-7, 200G LAN):");
    let mut amd_515 = 0.0;
    for k in KernelVersion::STUDY {
        let s = harness.run(&Scenario::symmetric(
            format!("amd-{k}"),
            Testbeds::esnet_host(k),
            Testbeds::esnet_path(EsnetPath::Lan),
            Iperf3Opts::new(8).omit(1),
        )).expect("scenario");
        if k == KernelVersion::L5_15 {
            amd_515 = s.throughput_gbps.mean;
        }
        println!(
            "  kernel {k:<5} {:6.1} Gbps  (+{:.0}% vs 5.15)",
            s.throughput_gbps.mean,
            (s.throughput_gbps.mean / amd_515 - 1.0) * 100.0
        );
    }

    println!("\nAmLight (Intel Xeon 6346, ConnectX-5, 100G LAN):");
    let mut intel_515 = 0.0;
    for k in KernelVersion::STUDY {
        let s = harness.run(&Scenario::symmetric(
            format!("intel-{k}"),
            Testbeds::amlight_host(k),
            Testbeds::amlight_path(AmLightPath::Lan),
            Iperf3Opts::new(8).omit(1),
        )).expect("scenario");
        if k == KernelVersion::L5_15 {
            intel_515 = s.throughput_gbps.mean;
        }
        println!(
            "  kernel {k:<5} {:6.1} Gbps  (+{:.0}% vs 5.15)",
            s.throughput_gbps.mean,
            (s.throughput_gbps.mean / intel_515 - 1.0) * 100.0
        );
    }

    println!("\npaper: 6.8 is up to 30% faster on the LAN and 38% on the WAN than 5.15 (SIV-E);");
    println!("on Ubuntu 22.04: apt install linux-image-generic-hwe-22.04-edge");
}
