//! `dtnperf` — the public API for the Linux-TCP-throughput
//! reproduction.
//!
//! This workspace reproduces, as a discrete-event simulation, the
//! SC/INDIS 2024 paper *"Recent Linux Improvements that Impact TCP
//! Throughput: Insights from R&E Networks"* (Schwarz, Rothenberg,
//! Tierney, Vasu, Dart, Bezerra, Valcy): MSG_ZEROCOPY, BIG TCP, fq
//! pacing, 802.3x flow control and kernel-version effects on 100–200 G
//! Data Transfer Nodes.
//!
//! # Quickstart
//!
//! ```
//! use dtnperf::prelude::*;
//!
//! // iperf3 -c <esnet-host> -t 3 --zerocopy=z --fq-rate 40G
//! let host = Testbeds::esnet_host(KernelVersion::L6_8);
//! let path = Testbeds::esnet_path(EsnetPath::Lan);
//! let opts = Iperf3Opts::new(3).omit(0).zerocopy().fq_rate(BitRate::gbps(40.0));
//! let report = iperf3_run(&host, &host, &path, &opts).expect("valid flags");
//! let gbps = report.sum_bitrate().as_gbps();
//! assert!(gbps > 30.0, "zerocopy+pacing at 40G on a 200G LAN: {gbps:.1}");
//! ```
//!
//! # Layers
//!
//! | Crate | Contents |
//! |---|---|
//! | [`simcore`] | event queue, time, units, RNG, statistics |
//! | [`nethw`] | NICs, links, shared-buffer switch, pause frames, paths |
//! | [`linuxhost`] | kernels, sysctls, offloads, zerocopy accounting, CPU cost model |
//! | [`tcpstack`] | CUBIC / BBRv1 / BBRv3 / H-TCP, sender/receiver state machines |
//! | [`netsim`] | the discrete-event simulation tying it together |
//! | [`iperf3`] | the benchmark-tool model (flags, validation, reports) |
//! | [`harness`] | testbeds, repetition runner, every figure/table of the paper |

#![deny(unreachable_pub)]
// Recoverable failures carry typed errors; every surviving `expect`
// states its infallibility argument (tests are exempt).
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use harness;
pub use linuxhost;
pub use nethw;
pub use netsim;
pub use simcore;
pub use tcpstack;

/// The iperf3 tool model (re-export of `iperf3sim`).
pub mod iperf3 {
    pub use iperf3sim::*;
}

/// Everything needed to define and run an experiment.
pub mod prelude {
    pub use harness::experiments::{self, ExperimentId};
    pub use harness::{
        AmLightPath, Effort, EsnetPath, FigureData, RunCache, RunCtx, Scenario, TableData,
        TestHarness, Testbeds,
    };
    pub use iperf3sim::{Iperf3Opts, Iperf3Report, Iperf3Version};
    pub use linuxhost::{
        CoreAllocation, CpuArch, HostConfig, KernelVersion, OffloadConfig, SysctlConfig, VirtMode,
    };
    pub use nethw::{CrossTrafficSpec, NicModel, PathSpec};
    pub use netsim::{Fault, FaultPlan, RunResult, SimConfig, SimError, Simulation, WorkloadSpec};
    pub use simcore::{BitRate, Bytes, SimDuration, SimTime, Summary};
    pub use tcpstack::CcAlgorithm;

    /// Run one iperf3 test (re-export of [`iperf3sim::run`]).
    pub use iperf3sim::run as iperf3_run;

    /// The iperf3 module alias used in examples.
    pub use crate::iperf3;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_covers_the_quickstart() {
        let host = Testbeds::esnet_host(KernelVersion::L6_8);
        let path = Testbeds::esnet_path(EsnetPath::Lan);
        let opts = Iperf3Opts::new(2).omit(0);
        let report = iperf3_run(&host, &host, &path, &opts).expect("valid");
        assert!(report.sum_bitrate().as_gbps() > 10.0);
    }

    #[test]
    fn experiment_registry_is_complete() {
        assert_eq!(ExperimentId::ALL.len(), 21);
        let names: Vec<&str> = ExperimentId::ALL.iter().map(|e| e.name()).collect();
        for figure in
            ["fig04", "fig05", "fig10", "table1", "table3", "ext_hw_gro", "ext_faults", "ext_telemetry", "ext_bottleneck", "ext_scale", "ext_cc_matrix", "ext_fleet"]
        {
            assert!(names.contains(&figure), "{figure} missing from registry");
        }
    }
}
