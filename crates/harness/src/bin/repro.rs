//! `repro` — regenerate the paper's tables and figures from the
//! command line.
//!
//! ```text
//! repro list                 # what can be reproduced
//! repro fig05                # one figure
//! repro table1 table2        # several artefacts
//! repro all                  # everything (experiments run concurrently)
//! repro ablations            # the design-choice ablations
//! repro --trace out/ ext_telemetry  # + JSON-lines telemetry traces
//! repro --metrics m/ fig05   # + OpenMetrics, interval series, heartbeat
//! REPRO_EFFORT=smoke repro fig05    # quick CI-sized run
//! REPRO_EFFORT=full  repro all      # paper-faithful 60 s × 10 reps
//! REPRO_CACHE_DIR=~/.cache/repro repro fig05  # content-addressed cache
//! REPRO_JOBS=4 repro all            # cap concurrent repetitions
//! REPRO_CHAOS=42 repro fig05        # inject harness faults, verify recovery
//! ```
//!
//! The environment (`REPRO_EFFORT`, `REPRO_JOBS`, `REPRO_TRACE_DIR`,
//! `REPRO_CACHE_DIR`, `REPRO_CHAOS`, `REPRO_CHECKPOINT_EVERY`,
//! `REPRO_METRICS`) is resolved exactly once here, into a [`RunCtx`],
//! and threaded explicitly through every experiment.
//!
//! Besides the human-readable progress lines, every experiment emits
//! one machine-parseable `repro-summary experiment=<name> key=value …`
//! record on stderr; CI matches on those fields, never on the prose.
//!
//! Exit codes: `0` clean, `1` failed scenarios (reported as zeros),
//! `2` usage error, `3` degraded — every artefact rendered, but some
//! repetitions were lost (see the missing-repetition manifest on
//! stderr, or `REPRO_MANIFEST=<file>`).

#![cfg_attr(not(test), deny(clippy::unwrap_used))]

use harness::experiments::{ablations, ExperimentId};
use harness::supervise::{ErrorBudget, RunLedger};
use harness::{RunCache, RunCtx};
use std::path::PathBuf;
use std::sync::Arc;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut ctx = RunCtx::from_env();
    // `--trace <dir>`: per-repetition JSON-lines telemetry traces.
    if let Some(pos) = args.iter().position(|a| a == "--trace") {
        if pos + 1 >= args.len() {
            eprintln!("--trace needs a directory argument");
            std::process::exit(2);
        }
        let dir = args.remove(pos + 1);
        args.remove(pos);
        eprintln!("writing telemetry traces to {dir}/");
        ctx.trace_dir = Some(PathBuf::from(dir));
    }
    // `--metrics <dir>`: OpenMetrics exposition, interval series and
    // phase spans, plus the live stderr heartbeat.
    if let Some(pos) = args.iter().position(|a| a == "--metrics") {
        if pos + 1 >= args.len() {
            eprintln!("--metrics needs a directory argument");
            std::process::exit(2);
        }
        let dir = args.remove(pos + 1);
        args.remove(pos);
        match harness::MetricsHub::new(PathBuf::from(&dir)) {
            Ok(hub) => {
                eprintln!("writing run metrics to {dir}/");
                ctx.metrics = Some(Arc::new(hub));
            }
            Err(e) => {
                eprintln!("--metrics '{dir}' is not a writable directory: {e}");
                std::process::exit(2);
            }
        }
    }
    if args.is_empty() || args[0] == "help" || args[0] == "--help" {
        usage();
        return;
    }
    if args[0] == "list" {
        println!("available experiments (set REPRO_EFFORT=smoke|standard|full):");
        for id in ExperimentId::ALL {
            println!("  {}", id.name());
        }
        println!("  ablations");
        println!("  all");
        return;
    }
    if let Some(chaos) = &ctx.chaos {
        eprintln!("chaos mode on (REPRO_CHAOS={}): injecting harness faults", chaos.seed());
    }
    RunLedger::global().reset();
    for arg in &args {
        match arg.as_str() {
            "all" => {
                // Every experiment on its own coordination thread; the
                // process-wide gate bounds how many repetitions
                // actually simulate at once, so this is
                // work-conserving, not oversubscribed. Output is
                // collected per experiment and printed in paper order.
                let n = ExperimentId::ALL.len();
                let outputs =
                    harness::sched::run_tasks(true, n, |i| run_one(ExperimentId::ALL[i], &ctx));
                for out in outputs {
                    println!("{out}");
                }
                println!("{}", ablations::run_all_rendered(&ctx));
            }
            "ablations" => println!("{}", ablations::run_all_rendered(&ctx)),
            name => match ExperimentId::ALL.iter().find(|id| id.name() == name) {
                Some(&id) => println!("{}", run_one(id, &ctx)),
                None => {
                    eprintln!("unknown experiment '{name}' — try 'repro list'");
                    std::process::exit(2);
                }
            },
        }
    }
    if let Some(chaos) = &ctx.chaos {
        eprintln!("{}", chaos.stats.summary());
    }
    if let Some(hub) = &ctx.metrics {
        // Fold the end-of-run totals (ledger, chaos) into the registry
        // and write the exposition + span files.
        harness::metrics::fold_run_totals(
            hub.recorder(),
            RunLedger::global(),
            ctx.chaos.as_ref().map(|c| &c.stats),
        );
        hub.final_heartbeat();
        match hub.write_exposition() {
            Ok(path) => eprintln!("metrics written to {}", path.display()),
            Err(e) => eprintln!("cannot write metrics to {}: {e}", hub.dir().display()),
        }
    }
    // Degraded-run accounting: the ledger has one record per scenario;
    // missing repetitions produce the manifest and exit code 3. A
    // failed *scenario* (all repetitions lost, reported as zeros) is
    // the stronger signal and keeps exit code 1.
    let ledger = RunLedger::global();
    let degraded = ledger.degraded();
    if degraded {
        let manifest = ledger.manifest_json();
        match std::env::var_os("REPRO_MANIFEST") {
            Some(path) => {
                let path = PathBuf::from(path);
                match std::fs::write(&path, &manifest) {
                    Ok(()) => eprintln!("degraded run: manifest written to {}", path.display()),
                    Err(e) => {
                        eprintln!("cannot write manifest to {}: {e}", path.display());
                        eprintln!("{manifest}");
                    }
                }
            }
            None => eprintln!("degraded run, missing-repetition manifest: {manifest}"),
        }
    }
    // Scenarios that failed (watchdog, conservation, invalid config)
    // were reported as zeros inline; reflect them in the exit code so
    // CI and scripts notice.
    let failed = harness::experiments::common::failed_scenario_count();
    if failed > 0 {
        eprintln!("{failed} scenario(s) failed and were reported as zeros — see warnings above");
        std::process::exit(1);
    }
    if degraded {
        eprintln!("some repetitions were lost; results above aggregate the survivors");
        std::process::exit(3);
    }
}

/// Run one experiment and return its rendered output; progress,
/// wall-clock and cache hit/miss counts go to stderr. Each experiment
/// gets a private handle onto the shared cache directory (so its
/// hit/miss counters stay per-experiment even when `all` runs
/// experiments concurrently) and a fresh retry budget sized by effort.
fn run_one(id: ExperimentId, ctx: &RunCtx) -> String {
    let mut ctx = ctx.clone();
    let cache = ctx.cache.as_ref().map(|c| {
        Arc::new(RunCache::new(c.dir().to_path_buf()).with_cost_model_version(c.cost_model_version()))
    });
    ctx.cache = cache.clone();
    let budget = Arc::new(ErrorBudget::new(ctx.effort.error_budget()));
    ctx.budget = Some(budget.clone());
    eprintln!("running {} at {:?} effort...", id.name(), ctx.effort);
    let failed_before = harness::experiments::common::failed_scenario_count();
    let late_before = harness::metrics::late_dropped_total();
    let start = std::time::Instant::now();
    let artifact = id.run(&ctx);
    let rendered = artifact.render_ascii();
    // Open data: dump CSVs when REPRO_CSV_DIR is set (the paper
    // releases all collected data; so do we).
    if let Some(dir) = std::env::var_os("REPRO_CSV_DIR") {
        let dir = PathBuf::from(dir);
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("cannot create {}: {e}", dir.display());
        } else {
            for (name, csv) in artifact.to_csv_files(id.name()) {
                let path = dir.join(name);
                if let Err(e) = std::fs::write(&path, csv) {
                    eprintln!("cannot write {}: {e}", path.display());
                } else {
                    eprintln!("wrote {}", path.display());
                }
            }
        }
    }
    let secs = start.elapsed().as_secs_f64();
    match &cache {
        Some(c) => {
            // Recovery counts ride after the store count so the
            // established "cache: H hit(s), M miss(es), S store(s)"
            // prefix stays grep-stable for CI.
            let recoveries = if c.stats.recoveries() > 0 {
                format!(
                    ", recovered {} corrupt / {} truncated / {} stale",
                    c.stats.corrupt_recoveries(),
                    c.stats.truncated_recoveries(),
                    c.stats.stale_recoveries(),
                )
            } else {
                String::new()
            };
            let retries = if budget.spent() > 0 {
                format!("; retries: {}/{}", budget.spent(), budget.initial())
            } else {
                String::new()
            };
            eprintln!(
                "({} done in {secs:.1}s; cache: {} hit(s), {} miss(es), {} store(s){recoveries}{retries})",
                id.name(),
                c.stats.hits(),
                c.stats.misses(),
                c.stats.stores(),
            );
        }
        None => eprintln!("({} done in {secs:.1}s)", id.name()),
    }
    // The machine-parseable twin of the human line above: one
    // `repro-summary` record per experiment with stable `key=value`
    // fields (CI and scripts match on these, never on the prose).
    let mut summary = format!(
        "repro-summary experiment={} secs={secs:.1} effort={}",
        id.name(),
        format!("{:?}", ctx.effort).to_lowercase(),
    );
    if let Some(c) = &cache {
        summary.push_str(&format!(
            " cache_hits={} cache_misses={} cache_stores={} cache_recovered_corrupt={} cache_recovered_truncated={} cache_recovered_stale={}",
            c.stats.hits(),
            c.stats.misses(),
            c.stats.stores(),
            c.stats.corrupt_recoveries(),
            c.stats.truncated_recoveries(),
            c.stats.stale_recoveries(),
        ));
    }
    summary.push_str(&format!(
        " retries_spent={} retries_budget={}",
        budget.spent(),
        budget.initial()
    ));
    // Failed-scenario count as a delta of the process-global counter.
    // Exact for single-experiment invocations (what CI greps); under a
    // concurrent `all` run an overlapping experiment's failures can
    // land in the delta, so it is an upper bound there — the process
    // exit code remains the authoritative global verdict.
    summary.push_str(&format!(
        " failed={}",
        harness::experiments::common::failed_scenario_count().saturating_sub(failed_before)
    ));
    // Late-dropped interval samples are an aggregation bug (a watermark
    // advanced past live samples); surface them loudly but keep the
    // exit code to the scenario/ledger verdicts.
    let late = harness::metrics::late_dropped_total().saturating_sub(late_before);
    if late > 0 {
        summary.push_str(&format!(" late_dropped={late}"));
        eprintln!(
            "warning: {late} interval sample(s) dropped as late during {} — \
             streamed quantiles may undercount",
            id.name(),
        );
    }
    eprintln!("{summary}\n");
    if let Some(hub) = &ctx.metrics {
        if let Some(c) = &cache {
            harness::metrics::fold_cache_stats(hub.recorder(), &c.stats);
        }
        harness::metrics::fold_budget(hub.recorder(), &budget);
    }
    rendered
}

fn usage() {
    eprintln!(
        "usage: repro [--trace <dir>] [--metrics <dir>] [list | all | ablations | fig04..fig13 | table1..table3 | ext_hw_gro | ext_bigtcp_zc | ext_faults | ext_telemetry | ext_bottleneck | ext_scale | ext_cc_matrix | ext_fleet]...\n\
         flags:       --trace <dir> to write per-repetition JSON-lines telemetry traces\n\
                      (plus .folded/.perf.txt cycle profiles per repetition)\n\
                      --metrics <dir> to write OpenMetrics exposition, per-repetition\n\
                      interval series and phase spans (plus a live stderr heartbeat)\n\
         environment: REPRO_EFFORT=smoke|standard|full (default standard)\n\
                      REPRO_JOBS=<n> to cap concurrently simulating repetitions\n\
                      REPRO_CACHE_DIR=<dir> content-addressed report cache\n\
                      REPRO_CSV_DIR=<dir> to also dump CSV data files\n\
                      REPRO_TRACE_DIR=<dir> same as --trace\n\
                      REPRO_CHAOS=<seed> inject harness faults (kills, cache\n\
                      corruption, trace failures) and verify recovery\n\
                      REPRO_CHECKPOINT_EVERY=<events> checkpoint cadence\n\
                      REPRO_METRICS=<dir> same as --metrics\n\
                      REPRO_MANIFEST=<file> write the degraded-run manifest here\n\
         exit codes:  0 clean, 1 failed scenario(s), 2 usage, 3 degraded (lost reps)"
    );
}
