//! Determinism guarantees of the scheduler and the seed derivation.
//!
//! Two properties keep `repro` reproducible under parallelism:
//!
//! 1. **Slot-order identity** — a batch run on the parallel pool is
//!    bit-identical to the same batch run sequentially (results land
//!    in slot order, whatever thread computed them).
//! 2. **Positional independence** — a scenario's seeds derive from its
//!    content fingerprint, so its results do not change when it is
//!    reordered within a grid, run alongside different siblings, or
//!    run alone.

use dtnperf::prelude::*;
use harness::experiments::figures;
use harness::{RunCtx, Scenario, TestHarness, TestSummary};
use iperf3sim::Iperf3Opts;

fn lan_scenario(label: &str, secs: u64) -> Scenario {
    Scenario::symmetric(
        label,
        Testbeds::esnet_host(KernelVersion::L6_8),
        Testbeds::esnet_path(EsnetPath::Lan),
        Iperf3Opts::new(secs).omit(0),
    )
}

fn wan_scenario(label: &str, secs: u64) -> Scenario {
    Scenario::symmetric(
        label,
        Testbeds::esnet_host(KernelVersion::L6_8),
        Testbeds::esnet_path(EsnetPath::Wan),
        Iperf3Opts::new(secs).omit(0).zerocopy(),
    )
}

/// Every float in the summary, bit-compared.
fn assert_bit_identical(a: &TestSummary, b: &TestSummary) {
    let fields = |s: &TestSummary| {
        vec![
            s.throughput_gbps.mean,
            s.throughput_gbps.stdev,
            s.throughput_gbps.min,
            s.throughput_gbps.max,
            s.retr.mean,
            s.retr.stdev,
            s.min_stream_gbps,
            s.max_stream_gbps,
            s.sender_cpu_pct.mean,
            s.receiver_cpu_pct.mean,
            s.zc_fallback,
        ]
    };
    for (x, y) in fields(a).iter().zip(fields(b).iter()) {
        assert_eq!(x.to_bits(), y.to_bits(), "float drift in '{}': {x} vs {y}", a.label);
    }
    assert_eq!(a.reports.len(), b.reports.len(), "'{}' report count", a.label);
    for (ra, rb) in a.reports.iter().zip(b.reports.iter()) {
        let bytes = |r: &Iperf3Report| -> u64 { r.streams.iter().map(|s| s.bytes.as_u64()).sum() };
        assert_eq!(bytes(ra), bytes(rb), "'{}' byte totals differ", a.label);
        assert_eq!(ra.sum_retr(), rb.sum_retr(), "'{}' retransmit totals differ", a.label);
    }
}

/// A mixed batch run on the parallel pool is bit-identical to the same
/// batch run sequentially.
#[test]
fn parallel_batch_is_bit_identical_to_sequential() {
    let scenarios = vec![
        lan_scenario("det-lan-a", 2),
        wan_scenario("det-wan", 2),
        lan_scenario("det-lan-b", 3),
    ];
    let par: Vec<TestSummary> = TestHarness::new(2)
        .run_batch(&scenarios)
        .into_iter()
        .map(|r| r.expect("parallel run"))
        .collect();
    let seq: Vec<TestSummary> = TestHarness::new(2)
        .sequential()
        .run_batch(&scenarios)
        .into_iter()
        .map(|r| r.expect("sequential run"))
        .collect();
    assert_eq!(par.len(), seq.len());
    for (p, s) in par.iter().zip(seq.iter()) {
        assert_bit_identical(p, s);
    }
}

/// A scenario's results are unaffected by its siblings: alone, batched
/// with others, or at a different grid position, the derived seeds —
/// and therefore every bit of the summary — are the same.
#[test]
fn scenario_results_independent_of_siblings_and_position() {
    let subject = lan_scenario("det-subject", 2);
    let alone = TestHarness::new(2).run(&subject).expect("alone");
    let batch = vec![wan_scenario("det-sibling-a", 2), subject.clone(), lan_scenario("det-sibling-b", 2)];
    let mut in_batch = TestHarness::new(2).run_batch(&batch);
    let from_batch = in_batch.remove(1).expect("batched");
    assert_bit_identical(&alone, &from_batch);
}

/// Scenario fingerprints hash content, not presentation: the display
/// label does not participate, every semantic field does.
#[test]
fn fingerprint_ignores_label_but_not_content() {
    let a = lan_scenario("one name", 2);
    let mut b = a.clone();
    b.label = "completely different name".into();
    assert_eq!(a.fingerprint(), b.fingerprint(), "label must not affect the fingerprint");

    let mut c = a.clone();
    c.opts = c.opts.zerocopy();
    assert_ne!(a.fingerprint(), c.fingerprint(), "opts changes must change the fingerprint");

    let mut d = a.clone();
    d.client.sysctl.rmem_max = Bytes::mib(64);
    assert_ne!(a.fingerprint(), d.fingerprint(), "host changes must change the fingerprint");
}

/// The same experiment produces byte-identical rendered output across
/// two invocations — the experiment-level determinism the golden
/// tables in EXPERIMENTS.md rely on.
#[test]
fn experiment_rendering_is_reproducible() {
    let ctx = RunCtx::new(Effort::Smoke);
    let first = figures::fig06(&ctx);
    let second = figures::fig06(&ctx);
    assert_eq!(
        first[0].render_ascii(),
        second[0].render_ascii(),
        "fig06 must render identically on every invocation"
    );
    let csv_a = first[0].to_csv();
    let csv_b = second[0].to_csv();
    assert_eq!(csv_a, csv_b);
}
