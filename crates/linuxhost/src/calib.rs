//! Calibrated cost-model constants.
//!
//! Every constant here is pinned to an observable the paper reports;
//! the anchor is cited next to each value. A calibration integration
//! test (`tests/calibration.rs` at the workspace root) asserts the
//! resulting throughput for each anchor, so a change here that breaks
//! fidelity fails CI rather than silently de-calibrating figures.
//!
//! All cycle counts are for kernel **6.8**; older kernels multiply by
//! [`kernel_cost_factor`]. Per-byte costs are cycles/byte at the
//! architecture's boost clock. "Burst" costs are per GSO/GRO
//! super-packet; "pkt" costs are per MTU-sized wire packet.

use crate::cpu::CpuArch;
use crate::kernel::KernelVersion;

/// Fraction of the nominal `--fq-rate` that fq actually delivers
/// (scheduler quantisation gaps).
///
/// Anchor: Table II — 8 × 15 Gbps paced streams average 115 Gbps
/// (not 120) on the ESnet WAN.
pub const PACING_EFFICIENCY: f64 = 0.958;

/// Multiplicative overhead of a MSG_ZEROCOPY send that *falls back* to
/// copying, relative to a plain copy: the pin attempt, the notification
/// skb, and the error-queue bookkeeping are all still paid.
///
/// Anchor: Fig. 9 — with the default 20 KB `optmem_max`, zerocopy on
/// the WAN is *worse* than plain copy and the sender CPU is pegged.
pub const ZC_FALLBACK_OVERHEAD: f64 = 2.2;

/// Service-time jitter amplitude (fraction) applied per burst.
/// Anchor: the paper's run-to-run stdev bars (e.g. ~8 Gbps stdev on
/// 166 Gbps multi-stream LAN results, Table I).
pub const SERVICE_JITTER: f64 = 0.05;

/// Per-architecture, kernel-6.8 cycle costs.
#[derive(Debug, Clone, Copy)]
pub struct ArchCosts {
    /// Sender syscall + socket-lock cost per `write()` (cycles).
    pub tx_syscall_cy: f64,
    /// Sender user→kernel copy (cycles/byte). Intel benefits from
    /// AVX-512 copy/checksum paths (§IV-A).
    pub tx_copy_cy_per_b: f64,
    /// Page-pin cost for a true zerocopy send (cycles/byte).
    pub tx_zc_pin_cy_per_b: f64,
    /// Completion-notification handling per zerocopy burst (cycles).
    pub tx_zc_notif_cy: f64,
    /// Sender softirq per burst: qdisc + IP/TCP header build (cycles).
    pub tx_softirq_burst_cy: f64,
    /// Sender softirq per wire packet (TSO leaves little per-packet
    /// work) (cycles).
    pub tx_softirq_pkt_cy: f64,
    /// Receiver softirq per wire packet: GRO merge, per-descriptor
    /// work (cycles).
    pub rx_softirq_pkt_cy: f64,
    /// Receiver softirq per burst: IP/TCP receive, socket wakeup
    /// (cycles).
    pub rx_softirq_burst_cy: f64,
    /// Receiver softirq per wire packet with hardware GRO (SHAMPO)
    /// (cycles).
    pub rx_hwgro_pkt_cy: f64,
    /// Receiver softirq per burst with hardware GRO (cycles).
    pub rx_hwgro_burst_cy: f64,
    /// Receiver kernel→user copy (cycles/byte).
    pub rx_copy_cy_per_b: f64,
    /// Receiver syscall cost per `read()` (cycles).
    pub rx_syscall_cy: f64,
    /// ACK processing on the sender IRQ core (cycles/ACK).
    pub ack_cy: f64,
    /// Window-scaling penalty coefficient: per-byte sender costs are
    /// multiplied by `1 + alpha*(1 - L3/window)` once the in-flight
    /// window exceeds the effective L3 — the skb/retransmit-queue
    /// working set spills to DRAM and per-byte cost saturates at
    /// `1 + alpha` (§IV-B: the WAN sender-CPU wall; Fig. 7 note that
    /// tuned throughput is flat across RTTs).
    pub window_penalty_alpha: f64,
    /// Same-form penalty applied to the shared copy fabric. Intel's
    /// monolithic L3 is contended by all flows (multi-stream WAN
    /// aggregate decays, Fig. 11: 62 → 50 Gbps); AMD's CCX-private L3
    /// slices don't contend across flows, and Milan's 8-channel DRAM
    /// keeps the fabric flat (Tables I/II hold their aggregates at
    /// 63 ms).
    pub fabric_penalty_alpha: f64,
    /// Host copy-path bandwidth, sender side (Gbit/s): memory fabric +
    /// cache-contention ceiling shared by all flows.
    pub fabric_tx_copy_gbps: f64,
    /// Host copy-path bandwidth, receiver side (Gbit/s).
    pub fabric_rx_copy_gbps: f64,
    /// DMA-only fabric bandwidth for zerocopy sends (Gbit/s).
    pub fabric_zc_dma_gbps: f64,
}

/// Intel Xeon 6346 costs at kernel 6.8.
///
/// Anchors: Fig. 5 — LAN single stream 55 Gbps (receiver softirq
/// bound); zerocopy+pacing 50 Gbps flat across WAN RTTs; BIG TCP
/// ≈ +16 % on the LAN. §V-C — 24 Gbps baseline at 1500-byte MTU,
/// 160 % improvement with hardware GRO. Fig. 11 — 8-stream sender
/// copy aggregate ≈ 62 Gbps LAN, declining to ≈ 50 at 104 ms.
pub const INTEL_COSTS: ArchCosts = ArchCosts {
    tx_syscall_cy: 2_500.0,
    tx_copy_cy_per_b: 0.40,
    tx_zc_pin_cy_per_b: 0.035,
    tx_zc_notif_cy: 1_500.0,
    tx_softirq_burst_cy: 3_000.0,
    tx_softirq_pkt_cy: 450.0,
    rx_softirq_pkt_cy: 1_240.0,
    rx_softirq_burst_cy: 24_100.0,
    rx_hwgro_pkt_cy: 120.0,
    rx_hwgro_burst_cy: 18_000.0,
    rx_copy_cy_per_b: 0.35,
    rx_syscall_cy: 2_500.0,
    ack_cy: 2_000.0,
    window_penalty_alpha: 0.85,
    fabric_penalty_alpha: 0.42,
    fabric_tx_copy_gbps: 63.0,
    fabric_rx_copy_gbps: 85.0,
    fabric_zc_dma_gbps: 180.0,
};

/// AMD EPYC 73F3 costs at kernel 6.8.
///
/// Anchors: Fig. 6 — LAN single stream 42 Gbps despite the higher
/// clock (no AVX-512, CCX-sliced L3); WAN default ≈ 40 % below LAN;
/// zerocopy+pacing at 40 Gbps matches LAN. Fig. 8 — higher sender CPU
/// on the WAN than Intel. Tables I/II (kernel 5.15) — 8-stream
/// aggregates ≈ 166 Gbps LAN / 127 Gbps WAN unpaced.
pub const AMD_COSTS: ArchCosts = ArchCosts {
    tx_syscall_cy: 3_000.0,
    tx_copy_cy_per_b: 0.54,
    tx_zc_pin_cy_per_b: 0.045,
    tx_zc_notif_cy: 1_800.0,
    tx_softirq_burst_cy: 4_000.0,
    tx_softirq_pkt_cy: 600.0,
    rx_softirq_pkt_cy: 2_600.0,
    rx_softirq_burst_cy: 29_140.0,
    rx_hwgro_pkt_cy: 260.0,
    rx_hwgro_burst_cy: 21_000.0,
    rx_copy_cy_per_b: 0.50,
    rx_syscall_cy: 3_000.0,
    ack_cy: 2_200.0,
    window_penalty_alpha: 2.05,
    fabric_penalty_alpha: 0.0,
    fabric_tx_copy_gbps: 220.0,
    fabric_rx_copy_gbps: 223.0,
    fabric_zc_dma_gbps: 350.0,
};

/// Relative cost multiplier of a kernel version vs 6.8 (higher =
/// slower). Captures the cumulative 5.x → 6.x stack improvements the
/// paper enumerates (§II-A): copy/checksum paths (AVX-512 on Intel),
/// buffer management, memory-bandwidth reduction, NUMA scheduling.
///
/// Anchors: Fig. 12 — AMD single stream: 6.5 ≈ +12 % over 5.15 and
/// 6.8 ≈ +17 % over 6.5 (≈ +31 % total). Fig. 13 — Intel LAN single
/// stream: 6.8 ≈ +27 % over 5.15.
pub fn kernel_cost_factor(arch: CpuArch, kernel: KernelVersion) -> f64 {
    match arch {
        CpuArch::IntelXeon6346 => match kernel {
            KernelVersion::L5_10 => 1.32,
            KernelVersion::L5_15 => 1.27,
            KernelVersion::L6_5 => 1.12,
            KernelVersion::L6_8 => 1.0,
            KernelVersion::L6_11 => 1.0,
        },
        CpuArch::AmdEpyc73F3 => match kernel {
            KernelVersion::L5_10 => 1.36,
            KernelVersion::L5_15 => 1.31,
            KernelVersion::L6_5 => 1.17,
            KernelVersion::L6_8 => 1.0,
            KernelVersion::L6_11 => 1.0,
        },
    }
}

/// Fabric-bandwidth divisor when the IOMMU is *not* in passthrough
/// mode (per-DMA-map translations).
///
/// Anchor: §III-D — `iommu=pt` lifted 8-stream throughput from 80 to
/// 181 Gbps on the ESnet AMD hosts (kernel 5.15): a ≈ 2.1× fabric
/// penalty without passthrough.
pub const IOMMU_NO_PT_FABRIC_DIVISOR: f64 = 2.1;

/// Extra per-packet IRQ-core cycles without `iommu=pt` (map/unmap).
pub const IOMMU_NO_PT_PKT_EXTRA_CY: f64 = 350.0;

/// Effective per-core capacity multiplier when IRQ and application
/// work share the same core (irqbalance / bad pinning): the §III-A
/// "20 to 55 Gbps on the same hardware" variance.
pub const SHARED_CORE_CAPACITY: f64 = 0.55;

/// Clock divisor when the CPU governor is left on powersave/schedutil
/// instead of `performance`.
pub const NO_PERF_GOVERNOR_CLOCK_FACTOR: f64 = 0.90;

/// User-level checksum cost (cycles/byte): an MD5-class digest as
/// computed by data movers like Globus on each block (§V-B: "Software
/// that does user-level checksums, such as Globus, may benefit from
/// the extra CPU cycles" zerocopy frees).
pub const USER_CHECKSUM_CY_PER_B: f64 = 0.8;

#[cfg(test)]
mod tests {
    use super::*;

    /// Analytic sanity checks that the constants hit their anchors
    /// (cheap closed-form versions of the DES calibration test).
    fn gbps(clock_hz: f64, cy_per_byte: f64) -> f64 {
        clock_hz / cy_per_byte * 8.0 / 1e9
    }

    #[test]
    fn intel_lan_default_single_stream_near_55() {
        // Receiver softirq bound: (8 pkts * pkt_cy + burst_cy) / 64 KiB.
        let c = INTEL_COSTS;
        let cy_per_b = (8.0 * c.rx_softirq_pkt_cy + c.rx_softirq_burst_cy) / 65_536.0;
        let tput = gbps(3.6e9, cy_per_b);
        assert!((53.0..58.0).contains(&tput), "Intel LAN default {tput:.1} Gbps");
    }

    #[test]
    fn intel_1500_mtu_baseline_near_24() {
        let c = INTEL_COSTS;
        let cy_per_b = (44.0 * c.rx_softirq_pkt_cy + c.rx_softirq_burst_cy) / 65_536.0;
        let tput = gbps(3.6e9, cy_per_b);
        assert!((22.0..27.0).contains(&tput), "Intel 1500B baseline {tput:.1} Gbps");
    }

    #[test]
    fn intel_big_tcp_gain_is_modest() {
        // BIG TCP lifts the receiver ceiling but the sender copy path
        // (fabric 63 Gbps) becomes the limit: ~+15 % end to end.
        let c = INTEL_COSTS;
        let rx_bigtcp =
            gbps(3.6e9, (17.0 * c.rx_softirq_pkt_cy + c.rx_softirq_burst_cy) / 150_000.0);
        assert!(rx_bigtcp > 80.0, "BIG TCP receiver ceiling {rx_bigtcp:.0}");
        let end_to_end = rx_bigtcp.min(c.fabric_tx_copy_gbps);
        let baseline = 55.5;
        let gain = end_to_end / baseline - 1.0;
        assert!((0.10..0.22).contains(&gain), "BIG TCP gain {:.0} %", gain * 100.0);
    }

    #[test]
    fn amd_lan_default_single_stream_near_42() {
        let c = AMD_COSTS;
        let cy_per_b = (8.0 * c.rx_softirq_pkt_cy + c.rx_softirq_burst_cy) / 65_536.0;
        let tput = gbps(4.0e9, cy_per_b);
        assert!((40.0..45.0).contains(&tput), "AMD LAN default {tput:.1} Gbps");
    }

    #[test]
    fn kernel_ladder_matches_figs_12_13() {
        use CpuArch::*;
        use KernelVersion::*;
        // AMD: 6.5 ≈ +12 % over 5.15; 6.8 ≈ +17 % over 6.5.
        let g65 = kernel_cost_factor(AmdEpyc73F3, L5_15) / kernel_cost_factor(AmdEpyc73F3, L6_5);
        let g68 = kernel_cost_factor(AmdEpyc73F3, L6_5) / kernel_cost_factor(AmdEpyc73F3, L6_8);
        assert!((1.09..1.15).contains(&g65), "AMD 5.15→6.5 gain {g65:.3}");
        assert!((1.14..1.20).contains(&g68), "AMD 6.5→6.8 gain {g68:.3}");
        // Intel: 6.8 ≈ +27 % over 5.15.
        let gi = kernel_cost_factor(IntelXeon6346, L5_15) / kernel_cost_factor(IntelXeon6346, L6_8);
        assert!((1.24..1.30).contains(&gi), "Intel 5.15→6.8 gain {gi:.3}");
    }

    #[test]
    fn iommu_penalty_matches_80_to_181() {
        // 181 / 80 ≈ 2.26; fabric divisor 2.1 plus per-packet overhead
        // lands in that neighbourhood.
        assert!((1.9..2.4).contains(&IOMMU_NO_PT_FABRIC_DIVISOR));
    }

    #[test]
    fn amd_wan_sender_equilibrium_near_22() {
        // Fixed-point of r = cap / (1 + alpha*(1 - L3/W(r))) at 63 ms.
        let c = AMD_COSTS;
        let cap = gbps(4.0e9, (c.tx_syscall_cy + c.tx_copy_cy_per_b * 65_536.0) / 65_536.0);
        let mut r: f64 = 30.0;
        for _ in 0..50 {
            let window_mb = r / 8.0 * 0.063 * 1000.0;
            let mult = 1.0 + c.window_penalty_alpha * (1.0 - 32.0 / window_mb.max(32.0));
            r = cap / mult;
        }
        assert!((20.0..25.0).contains(&r), "AMD WAN default equilibrium {r:.1} Gbps");
    }
}
