//! fq qdisc pacing.
//!
//! With `net.core.default_qdisc=fq`, TCP paces its own traffic
//! (`tcp_pacing_ss_ratio` = 200 % of cwnd/srtt in slow start, 120 % in
//! congestion avoidance), and an application can additionally cap the
//! rate per socket (`SO_MAX_PACING_RATE`, surfaced by iperf3 as
//! `--fq-rate`). With the stock `fq_codel` there is no pacing at all:
//! bursts leave back-to-back at line rate — the packet trains that
//! overrun receivers on long paths (§II-D).
//!
//! Pacing above 32 Gbps requires iperf3 patch #1728 (the `--fq-rate`
//! option was a `u32` of bits/sec); the tool layer enforces that.

use crate::calib;
use crate::sysctl::Qdisc;
use simcore::{BitRate, Bytes, SimTime};

/// Per-flow departure pacer.
#[derive(Debug, Clone)]
pub struct Pacer {
    qdisc: Qdisc,
    /// Explicit `--fq-rate` cap, if any.
    fq_rate: Option<BitRate>,
    /// Earliest time the next burst may leave.
    next_allowed: SimTime,
}

impl Pacer {
    /// New pacer. `fq_rate` is ignored (with a debug assertion) when
    /// the qdisc cannot pace.
    pub fn new(qdisc: Qdisc, fq_rate: Option<BitRate>) -> Self {
        debug_assert!(
            fq_rate.is_none() || qdisc == Qdisc::Fq,
            "--fq-rate requires the fq qdisc"
        );
        let fq_rate = if qdisc == Qdisc::Fq { fq_rate } else { None };
        Pacer { qdisc, fq_rate, next_allowed: SimTime::ZERO }
    }

    /// The rate at which departures are spaced right now.
    ///
    /// * `tcp_auto_rate` — the stack's own pacing rate
    ///   (ratio × cwnd/srtt), already computed by the TCP layer.
    /// * `line_rate` — the NIC wire rate, the hard ceiling.
    ///
    /// fq applies the *minimum* of the socket cap and TCP's rate; the
    /// explicit cap also pays a small scheduling inefficiency
    /// ([`calib::PACING_EFFICIENCY`]) observed as e.g. 8×15 Gbps
    /// yielding ~115 Gbps in the paper's Table II.
    pub fn current_rate(&self, tcp_auto_rate: BitRate, line_rate: BitRate) -> BitRate {
        match self.qdisc {
            Qdisc::FqCodel => line_rate,
            Qdisc::Fq => {
                let auto = if tcp_auto_rate.is_zero() { line_rate } else { tcp_auto_rate };
                match self.fq_rate {
                    Some(cap) => cap.mul_f64(calib::PACING_EFFICIENCY).min(auto).min(line_rate),
                    None => auto.min(line_rate),
                }
            }
        }
    }

    /// Schedule a burst for departure: returns the departure time and
    /// advances the pacing horizon.
    pub fn schedule(
        &mut self,
        now: SimTime,
        burst: Bytes,
        tcp_auto_rate: BitRate,
        line_rate: BitRate,
    ) -> SimTime {
        let rate = self.current_rate(tcp_auto_rate, line_rate);
        let start = self.next_allowed.max(now);
        self.next_allowed = start + rate.serialize_time(burst);
        start
    }

    /// How far ahead of `now` the pacing horizon currently sits — the
    /// qdisc residence time a burst enqueued now would see. TCP Small
    /// Queues keeps this bounded (a flow never parks more than ~1–2 ms
    /// of data in the qdisc).
    pub fn backlog(&self, now: SimTime) -> simcore::SimDuration {
        self.next_allowed.saturating_since(now)
    }

    /// The explicit `--fq-rate`, if configured.
    pub fn fq_rate(&self) -> Option<BitRate> {
        self.fq_rate
    }

    /// True when an explicit per-flow cap is active.
    pub fn is_explicitly_paced(&self) -> bool {
        self.fq_rate.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LINE: BitRate = BitRate::ZERO; // placeholder, set in fns

    fn line() -> BitRate {
        let _ = LINE;
        BitRate::gbps(100.0)
    }

    #[test]
    fn fq_codel_never_paces() {
        let p = Pacer::new(Qdisc::FqCodel, None);
        assert_eq!(p.current_rate(BitRate::gbps(10.0), line()).as_gbps(), 100.0);
        assert!(!p.is_explicitly_paced());
    }

    #[test]
    fn fq_without_cap_uses_tcp_auto_rate() {
        let p = Pacer::new(Qdisc::Fq, None);
        let r = p.current_rate(BitRate::gbps(30.0), line());
        assert!((r.as_gbps() - 30.0).abs() < 1e-9);
        // Auto rate above line rate is clipped.
        let r2 = p.current_rate(BitRate::gbps(500.0), line());
        assert_eq!(r2.as_gbps(), 100.0);
    }

    #[test]
    fn explicit_cap_wins_when_lower() {
        let p = Pacer::new(Qdisc::Fq, Some(BitRate::gbps(50.0)));
        let r = p.current_rate(BitRate::gbps(90.0), line());
        let expect = 50.0 * calib::PACING_EFFICIENCY;
        assert!((r.as_gbps() - expect).abs() < 1e-6, "got {}", r.as_gbps());
        // TCP auto rate below the cap wins.
        let r2 = p.current_rate(BitRate::gbps(10.0), line());
        assert!((r2.as_gbps() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn schedule_spaces_departures() {
        let mut p = Pacer::new(Qdisc::Fq, Some(BitRate::gbps(50.0)));
        let burst = Bytes::kib(64);
        let auto = BitRate::gbps(400.0);
        let d1 = p.schedule(SimTime::ZERO, burst, auto, line());
        let d2 = p.schedule(SimTime::ZERO, burst, auto, line());
        assert_eq!(d1, SimTime::ZERO);
        let eff = BitRate::gbps(50.0 * calib::PACING_EFFICIENCY);
        let spacing = eff.serialize_time(burst);
        assert_eq!((d2 - d1).as_nanos(), spacing.as_nanos());
    }

    #[test]
    fn schedule_respects_now() {
        let mut p = Pacer::new(Qdisc::Fq, None);
        let t = SimTime::from_nanos(5_000);
        let d = p.schedule(t, Bytes::kib(64), BitRate::gbps(10.0), line());
        assert_eq!(d, t);
        // Next departure is after the spacing even if asked earlier.
        let d2 = p.schedule(t, Bytes::kib(64), BitRate::gbps(10.0), line());
        assert!(d2 > t);
    }

    #[test]
    fn pacer_idle_catches_up() {
        let mut p = Pacer::new(Qdisc::Fq, Some(BitRate::gbps(1.0)));
        let _ = p.schedule(SimTime::ZERO, Bytes::kib(64), BitRate::gbps(100.0), line());
        // Long idle: the horizon does not owe us credit (no burst
        // catch-up beyond "now").
        let late = SimTime::from_secs_f64(1.0);
        let d = p.schedule(late, Bytes::kib(64), BitRate::gbps(100.0), line());
        assert_eq!(d, late);
    }
}
