//! One bench target per paper table/figure.
//!
//! Each target runs that artefact's *headline scenario* end to end
//! (single repetition, short duration) so `cargo bench` exercises and
//! times every reproduction path. The full multi-repetition artefact
//! regeneration — mean/stdev/min/max over ≥5 seeds at paper-scale
//! durations — is the `repro` binary:
//!
//! ```text
//! cargo run --release -p harness --bin repro -- all
//! ```

use bench::paper_scenarios;
use bench::timing::BenchGroup;

fn main() {
    let mut group = BenchGroup::new("experiments", 1, 3);
    for scenario in paper_scenarios() {
        group.bench(scenario.name, || {
            let gbps = scenario.run_or_exit();
            assert!(gbps > 0.1, "{} produced {gbps:.2} Gbps", scenario.name);
            gbps
        });
    }
}
