//! The discrete-event simulation loop.
//!
//! See the crate docs for the pipeline diagram. Design notes:
//!
//! * **One app-write chain per flow.** `AppWrite → AppWriteDone →
//!   AppWrite …` — the application core's FIFO server is what spaces
//!   the writes, exactly like a busy `iperf3` thread. The chain parks
//!   when the socket buffer fills and is revived by an ACK.
//! * **Loss points.** Random path loss (production WANs), shared-buffer
//!   tail drop at the switch, and RX-ring overflow at the receiver.
//!   With 802.3x flow control the receiver *parks* arrivals instead of
//!   dropping them (pause frames hold the data upstream) — Table III
//!   vs Tables I/II.
//! * **Lazy RTO timers.** One pending `RtoCheck` per flow that
//!   re-validates the deadline when it fires, so ACK processing never
//!   needs to cancel events.

use crate::attribution::{
    classify, Attribution, BottleneckVerdict, CoreProfile, IntervalObs, LimitingFactor,
    StageProfile,
};
use crate::config::SimConfig;
use crate::error::SimError;
use crate::faults::{Fault, FaultEvent};
use crate::host::SimHost;
use crate::result::{FlowResult, RunResult};
use crate::telemetry::{CaState, CounterSnapshot, FlowInfo, TelemetrySampler};
use linuxhost::{Pacer, SendOutcome, Stage, TxMode, ZerocopyAccounting};
use nethw::{EnqueueOutcome, SharedBufferSwitch};
use simcore::{BitRate, Bytes, EventQueue, SimDuration, SimRng, SimTime, Watchdog};
use tcpstack::{SendSlot, TcpReceiver, TcpSender, TimerKind};
use std::collections::VecDeque;

/// Propagation of the host↔switch edge hop.
const EDGE_DELAY: SimDuration = SimDuration::from_micros(5);

/// TCP Small Queues horizon: a flow parks at most this much transmit
/// time in the qdisc; more data stays in the socket until the pacer
/// drains (prevents unbounded qdisc queues and keeps the RTO clock
/// honest).
const TSQ_HORIZON: SimDuration = SimDuration::from_millis(2);

#[derive(Debug, Clone)]
enum Ev {
    AppWrite(usize),
    AppWriteDone(usize, TxMode),
    TxDequeue { flow: usize, idx: u64 },
    SwitchArrive { flow: usize, idx: u64 },
    SwitchDepart { flow: usize, idx: u64 },
    RxArrive { flow: usize, idx: u64 },
    RxSoftirqDone { flow: usize, idx: u64 },
    RxAppReadDone(usize),
    AckArrive { flow: usize, cum: u64, idx: u64, rwnd: Bytes },
    RtoCheck(usize),
    PacerResume(usize),
    CrossToggle,
    IntervalTick,
    /// `ss`/`ethtool`/`mpstat` sampling tick — only ever scheduled when
    /// [`crate::WorkloadSpec::telemetry`] is set; strictly read-only.
    TelemetryTick,
    OmitBoundary,
    /// Fault `i` of the plan begins.
    FaultBegin(usize),
    /// Fault `i` of the plan clears.
    FaultEnd(usize),
    /// Gilbert–Elliott state flip for bursty-loss episode `i`.
    GeToggle(usize),
}

#[derive(Clone)]
struct FlowState {
    sender: TcpSender,
    receiver: TcpReceiver,
    pacer: Pacer,
    zc: Option<ZerocopyAccounting>,
    /// Modes of app-written bursts not yet assigned a sequence index.
    pending_modes: VecDeque<TxMode>,
    /// Mode per in-flight burst: `burst_modes[i]` belongs to burst
    /// `modes_base + i`. Indices are assigned contiguously (new bursts
    /// enter at `snd_nxt`) and released only from the front as the
    /// cumulative ACK advances, so a deque plus base index replaces the
    /// old ordered map without touching the allocator per burst.
    burst_modes: VecDeque<TxMode>,
    /// Burst index of `burst_modes[0]`.
    modes_base: u64,
    intervals: Vec<BitRate>,
    rng: SimRng,
}

/// Per-flow scalars the dispatch inner loop reads and writes on almost
/// every event, packed structure-of-arrays style into `Runner::hot`
/// (parallel to `Runner::flows`). A [`FlowState`] spans several cache
/// lines of mostly-cold protocol and config state; splitting the
/// per-event flags and counters into this 40-byte record keeps the
/// whole fleet's hot state resident (256 flows ≈ 10 KiB) instead of
/// striding across the big structs. `hot[f]` always pairs with
/// `flows[f]`; both clone together for checkpoints.
#[derive(Debug, Clone, Copy, Default)]
struct FlowHot {
    /// Sender app blocked on a full socket buffer (woken by an ACK).
    app_waiting: bool,
    /// Receiver app is mid read stint.
    rx_app_busy: bool,
    /// An `RtoCheck` event is already in flight for this flow.
    rto_scheduled: bool,
    /// A `PacerResume` event is already in flight (TSQ backlog gate).
    pacer_resume_pending: bool,
    /// Waiting for the driver queue to drain before sending more.
    tx_gated: bool,
    /// Bytes handed to the driver (TxDequeue → wire) — the TSQ ledger.
    driver_bytes: Bytes,
    /// Bursts fully read by the receiver application.
    delivered_bursts: u64,
    /// `delivered_bursts` at the omit boundary.
    delivered_at_omit: u64,
    /// `delivered_bursts` at the last interval tick.
    interval_mark: u64,
}

/// Gilbert–Elliott bursty-loss state while an episode is active.
#[derive(Debug, Clone)]
struct GeState {
    /// Index of the driving fault in the plan.
    episode: usize,
    /// In the lossy (bad) state right now.
    bad: bool,
    mean_bad: SimDuration,
    mean_good: SimDuration,
    loss_bad: f64,
    /// Episode end (the fault's `ends_at`).
    until: SimTime,
}

/// Live bottleneck-attribution state: the "previous interval tick"
/// marks that turn cumulative ledgers/counters into per-interval
/// observations, plus the verdicts classified so far.
///
/// Strictly bookkeeping — classification reads flow/host state but
/// never mutates it, so attribution keeps the same observer-neutrality
/// guarantee as telemetry.
#[derive(Clone)]
struct AttribState {
    /// Sender ledger per-core busy totals at the previous tick.
    snd_mark: Vec<SimDuration>,
    /// Receiver ledger per-core busy totals at the previous tick.
    rcv_mark: Vec<SimDuration>,
    /// Drop/pause/wire counter totals at the previous tick.
    counter_mark: CounterSnapshot,
    /// Total zerocopy sends at the previous tick.
    zc_sends_mark: u64,
    /// Total zerocopy copy-fallbacks at the previous tick.
    zc_fallbacks_mark: u64,
    /// Total ACKs processed at the previous tick.
    acks_mark: u64,
    /// Total cwnd-limited ACKs at the previous tick.
    cwnd_limited_mark: u64,
    /// Total delivered bursts at the previous tick.
    delivered_mark: u64,
    /// When the previous tick fired.
    last_t: SimTime,
    /// Classified intervals: `(interval end, verdict)`.
    verdicts: Vec<(SimTime, LimitingFactor)>,
}

impl AttribState {
    fn new(snd_cores: usize, rcv_cores: usize) -> Self {
        AttribState {
            snd_mark: vec![SimDuration::ZERO; snd_cores],
            rcv_mark: vec![SimDuration::ZERO; rcv_cores],
            counter_mark: CounterSnapshot::default(),
            zc_sends_mark: 0,
            zc_fallbacks_mark: 0,
            acks_mark: 0,
            cwnd_limited_mark: 0,
            delivered_mark: 0,
            last_t: SimTime::ZERO,
            verdicts: Vec::new(),
        }
    }

    /// The most recent verdict (attached to telemetry samples).
    fn last_verdict(&self) -> Option<LimitingFactor> {
        self.verdicts.last().map(|(_, v)| *v)
    }
}

/// A configured, runnable simulation.
pub struct Simulation {
    cfg: SimConfig,
    burst: Bytes,
}

impl Simulation {
    /// Prepare a simulation; an invalid configuration is returned as
    /// [`SimError::InvalidConfig`] instead of asserting, so harnesses
    /// can record and skip bad scenarios rather than dying.
    pub fn new(cfg: SimConfig) -> Result<Self, SimError> {
        let problems = cfg.validate();
        if !problems.is_empty() {
            return Err(SimError::InvalidConfig(problems));
        }
        let burst = cfg.sender.offload.gso_max_size;
        Ok(Simulation { cfg, burst })
    }

    /// The burst (GSO super-packet) size in use.
    pub fn burst_size(&self) -> Bytes {
        self.burst
    }

    /// Run to completion and report. Fails with [`SimError::Stalled`]
    /// if the watchdog kills a livelocked loop, or
    /// [`SimError::ConservationViolation`] if end-of-run burst
    /// accounting does not balance.
    pub fn run(self) -> Result<RunResult, SimError> {
        Runner::new(self.cfg, self.burst).run()
    }

    /// Start the simulation without running it: schedules the initial
    /// events and hands back a [`RunningSim`] that can be stepped,
    /// checkpointed, and resumed. `start().finish()` is bit-identical
    /// to [`Simulation::run`] — both drive the same loop.
    pub fn start(self) -> RunningSim {
        let mut runner = Runner::new(self.cfg, self.burst);
        runner.start();
        RunningSim { runner }
    }
}

/// A started simulation that is driven incrementally.
///
/// The supervised execution path steps in bounded chunks so it can take
/// [`SimCheckpoint`] snapshots between events and impose wall-clock
/// deadlines; `step → checkpoint → resume → step` pops the identical
/// (time, seq) event order as a straight-through [`Simulation::run`],
/// so the final [`RunResult`] is bit-identical either way.
pub struct RunningSim {
    runner: Runner,
}

/// An opaque, barrier-safe snapshot of a [`RunningSim`].
///
/// Taken between events (never mid-dispatch), so resuming replays the
/// exact remaining event sequence: queue keys and payload slab, RNG,
/// watchdog, and all flow/host/switch state are deep-copied.
#[derive(Clone)]
pub struct SimCheckpoint(Box<Runner>);

impl SimCheckpoint {
    /// Dispatched-event count at the moment of the snapshot.
    pub fn events_done(&self) -> u64 {
        self.0.q.total_popped()
    }
}

impl RunningSim {
    /// Total events dispatched so far (monotone; drives checkpoint
    /// cadence and chaos-injection points).
    pub fn events_done(&self) -> u64 {
        self.runner.q.total_popped()
    }

    /// Dispatch up to `max` further events. Returns `true` once the
    /// run has no more in-range events (call [`RunningSim::finish`]),
    /// `false` if more stepping is needed.
    pub fn step_events(&mut self, max: u64) -> Result<bool, SimError> {
        for _ in 0..max {
            if !self.runner.step_one()? {
                return Ok(true);
            }
        }
        Ok(!self.runner.has_pending())
    }

    /// Engine-health snapshot of the underlying event queue (rung
    /// depths, tombstones, past-clamps) for observability gauges.
    pub fn queue_health(&self) -> simcore::QueueHealth {
        self.runner.q.health()
    }

    /// Simulated time reached so far, in seconds.
    pub fn sim_now_secs(&self) -> f64 {
        self.runner.q.now().as_secs_f64()
    }

    /// Snapshot the complete simulation state between events.
    pub fn checkpoint(&self) -> SimCheckpoint {
        SimCheckpoint(Box::new(self.runner.clone()))
    }

    /// Rebuild a running simulation from a snapshot; stepping it replays
    /// exactly the event sequence the original would have dispatched.
    pub fn resume(ck: SimCheckpoint) -> RunningSim {
        RunningSim { runner: *ck.0 }
    }

    /// Drain any remaining events and produce the final report
    /// (conservation check, attribution, telemetry flush — identical to
    /// the tail of [`Simulation::run`]).
    pub fn finish(mut self) -> Result<RunResult, SimError> {
        while self.runner.step_one()? {}
        self.runner.finish()
    }
}

#[derive(Clone)]
struct Runner {
    cfg: SimConfig,
    burst: Bytes,
    q: EventQueue<Ev>,
    flows: Vec<FlowState>,
    /// Hot per-flow scalars, parallel to `flows` (see [`FlowHot`]).
    hot: Vec<FlowHot>,
    snd_host: SimHost,
    rcv_host: SimHost,
    switch: SharedBufferSwitch,
    /// Bursts parked by pause-frame flow control (receiver side),
    /// bounded by `parked_cap`.
    parked: VecDeque<(usize, u64)>,
    /// Pause-buffer equivalent: how many bursts 802.3x can hold
    /// upstream before overflow becomes loss.
    parked_cap: usize,
    rng: SimRng,
    switch_drops: u64,
    ring_drops: u64,
    random_drops: u64,
    fault_drops: u64,
    /// Pause-frame holds: every time 802.3x (or a pause storm) parked a
    /// burst upstream instead of letting it reach the ring — the
    /// simulator's `ethtool -S … rx_pause` analogue.
    pause_parks: u64,
    /// Bursts handed to the wire (TxDequeue), incl. retransmissions.
    wire_sent: u64,
    /// Fault schedule (cloned out of the config).
    faults: Vec<FaultEvent>,
    /// Active link flaps (count, so overlapping flaps nest).
    link_down: u32,
    /// Active receiver-app stalls.
    rx_stalled: u32,
    /// Active pause-frame storms.
    pause_storm: u32,
    /// Active Gilbert–Elliott episode, if any.
    ge: Option<GeState>,
    watchdog: Watchdog,
    cross_on: bool,
    cross_until: SimTime,
    /// Busy snapshots at the last interval tick (mpstat deltas).
    snd_busy_mark: Vec<SimDuration>,
    rcv_busy_mark: Vec<SimDuration>,
    cpu_intervals: Vec<(f64, f64)>,
    last_tick: SimTime,
    snd_cpu_at_omit: Vec<SimDuration>,
    rcv_cpu_at_omit: Vec<SimDuration>,
    omit_time: SimTime,
    end_time: SimTime,
    /// Telemetry sampler; `None` (the default) costs one branch per
    /// dispatch of events that never get scheduled.
    sampler: Option<TelemetrySampler>,
    /// Bottleneck-attribution state; `None` unless
    /// [`crate::WorkloadSpec::attribution`] is on.
    attrib: Option<AttribState>,
}

impl Runner {
    fn new(cfg: SimConfig, burst: Bytes) -> Self {
        let mut rng = SimRng::seed_from_u64(cfg.workload.seed);
        let n = cfg.workload.num_flows;
        let attribution = cfg.workload.attribution;
        let snd_host = SimHost::new(&cfg.sender, n, attribution, &mut rng.fork());
        let rcv_host = SimHost::new(&cfg.receiver, n, attribution, &mut rng.fork());
        let mut switch = SharedBufferSwitch::new(
            cfg.path.switch_buffer,
            &[cfg.path.usable_rate()],
            // The bottleneck switch itself never runs 802.3x end to
            // end; `flow_control` protects the receiver edge (see
            // RxArrive handling).
            false,
        );
        if cfg.path.red {
            switch = switch.with_red(nethw::switch::RedParams::default());
        }
        // Pre-size per-flow buffers and the event queue for the run's
        // steady state: one ~1 s interval sample per simulated second
        // and a few dozen in-flight bursts/events per flow, so the hot
        // path never grows a Vec mid-run.
        let interval_cap = cfg.workload.duration.as_secs_f64().ceil() as usize + 1;
        let mut flows = Vec::with_capacity(n);
        for f in 0..n {
            let flow_rng = rng.fork();
            let cc = cfg
                .workload
                .flow_cc(f)
                .build(cfg.sender.offload.mtu, Bytes::new(10 * cfg.sender.offload.mtu.as_u64()));
            let rcv_buf = cfg.receiver.sysctl.tcp_rmem.max;
            let receiver = TcpReceiver::new(burst, rcv_buf.max(burst));
            let sender = TcpSender::new(
                cc,
                burst,
                cfg.sender.offload.mtu,
                cfg.sender.sysctl.tcp_wmem.max,
                receiver.rwnd(),
            );
            let pacer = Pacer::new(cfg.sender.sysctl.default_qdisc, cfg.workload.fq_rate);
            let zc = cfg.workload.zerocopy.then(|| {
                ZerocopyAccounting::for_kernel(cfg.sender.sysctl.optmem_max, cfg.sender.kernel)
            });
            flows.push(FlowState {
                sender,
                receiver,
                pacer,
                zc,
                pending_modes: VecDeque::with_capacity(64),
                burst_modes: VecDeque::with_capacity(64),
                modes_base: 0,
                intervals: Vec::with_capacity(interval_cap),
                rng: flow_rng,
            });
        }
        let omit_time = SimTime::ZERO + cfg.workload.omit;
        let end_time = SimTime::ZERO + cfg.workload.duration;
        // 802.3x can hold at most one advertised receive window of
        // data upstream: TCP admits no more un-ACKed data than the
        // receiver's buffer, so that is all pause frames ever have to
        // park for one socket. Anything beyond it (RTO duplicates
        // still in the fabric, additional sockets sharing the edge
        // port, pause storms) overflows the paused buffers and drops.
        let parked_cap = (cfg.receiver.sysctl.tcp_rmem.max.as_u64() / burst.as_u64())
            .max(4) as usize;
        // Watchdog budget: a legitimate run processes a few million
        // events per simulated second; scale generously so only a true
        // runaway trips it.
        let budget = cfg.workload.event_budget.unwrap_or_else(|| {
            let secs = cfg.workload.duration.as_secs_f64().ceil().max(1.0) as u64;
            let flows_factor = (cfg.workload.num_flows as u64).max(1);
            secs.saturating_mul(50_000_000).saturating_mul(flows_factor).max(100_000_000)
        });
        let faults = cfg.workload.faults.events.clone();
        let sampler = cfg.workload.telemetry.map(|tick| {
            TelemetrySampler::new(tick, n, snd_host.busy_snapshot(), rcv_host.busy_snapshot())
        });
        let attrib = attribution.then(|| {
            let snd_cores = snd_host.ledger().map_or(0, |l| l.num_cores());
            let rcv_cores = rcv_host.ledger().map_or(0, |l| l.num_cores());
            AttribState::new(snd_cores, rcv_cores)
        });
        Runner {
            cfg,
            burst,
            q: EventQueue::with_capacity((n * 64).max(1024)),
            flows,
            hot: vec![FlowHot::default(); n],
            snd_host,
            rcv_host,
            switch,
            parked: VecDeque::with_capacity(parked_cap.min(4096)),
            parked_cap,
            rng,
            switch_drops: 0,
            ring_drops: 0,
            random_drops: 0,
            fault_drops: 0,
            pause_parks: 0,
            wire_sent: 0,
            faults,
            link_down: 0,
            rx_stalled: 0,
            pause_storm: 0,
            ge: None,
            watchdog: Watchdog::new(Some(budget)),
            cross_on: false,
            cross_until: SimTime::ZERO,
            snd_busy_mark: Vec::new(),
            rcv_busy_mark: Vec::new(),
            cpu_intervals: Vec::new(),
            last_tick: SimTime::ZERO,
            snd_cpu_at_omit: Vec::new(),
            rcv_cpu_at_omit: Vec::new(),
            omit_time,
            end_time,
            sampler,
            attrib,
        }
    }

    /// Schedule the initial events. Split from [`Runner::run`] so the
    /// supervised path can start once, then step/checkpoint/resume.
    fn start(&mut self) {
        // Kick off: one write chain per flow, staggered within 1 ms the
        // way parallel iperf3 threads start.
        for f in 0..self.flows.len() {
            let jitter = SimDuration::from_nanos(self.rng.uniform_u64(0, 1_000_000));
            self.q.push(SimTime::ZERO + jitter, Ev::AppWrite(f));
        }
        self.q.push(self.omit_time, Ev::OmitBoundary);
        self.q
            .push(self.omit_time + SimDuration::from_secs(1), Ev::IntervalTick);
        // Zero-cost when disabled: without a sampler no tick event ever
        // enters the queue.
        if let Some(sampler) = &self.sampler {
            self.q.push(SimTime::ZERO + sampler.tick(), Ev::TelemetryTick);
        }
        if self.cfg.path.cross_traffic.is_some() {
            self.q.push(SimTime::ZERO, Ev::CrossToggle);
        }
        for (i, fe) in self.faults.iter().enumerate() {
            self.q.push(SimTime::ZERO + fe.at, Ev::FaultBegin(i));
            self.q.push(SimTime::ZERO + fe.ends_at(), Ev::FaultEnd(i));
        }
    }

    /// Whether an in-range event is still pending.
    fn has_pending(&self) -> bool {
        self.q.peek_time().is_some_and(|next| next <= self.end_time)
    }

    /// Pop and dispatch exactly one event. `Ok(false)` means the loop
    /// is done (queue empty or next event past `end_time`); the caller
    /// then hands off to [`Runner::finish`].
    fn step_one(&mut self) -> Result<bool, SimError> {
        let Some(next) = self.q.peek_time() else { return Ok(false) };
        if next > self.end_time {
            return Ok(false);
        }
        // A successful peek guarantees a pop; if the queue disagrees
        // its heap is corrupt — fail the rep instead of killing the
        // worker thread with a panic.
        let Some((now, ev)) = self.q.pop() else {
            return Err(SimError::StateCorruption {
                at: self.q.now(),
                what: "peeked event vanished before pop".into(),
            });
        };
        if let Err(trip) = self.watchdog.observe(now) {
            return Err(SimError::Stalled { at: now, trip });
        }
        self.dispatch(now, ev)?;
        Ok(true)
    }

    fn run(mut self) -> Result<RunResult, SimError> {
        self.start();
        // Drain whole same-timestamp runs in one grab so the queue
        // bookkeeping (peek + bounds check) is paid once per instant
        // instead of once per event — fan-in scenarios fire many flows
        // on the same completion tick. Handlers only ever schedule at
        // or after `now`, so anything they push at the current instant
        // sorts *behind* this batch in FIFO (time, seq) order and is
        // picked up by the next grab: the dispatch order stays
        // byte-identical to the one-at-a-time supervised path
        // ([`Runner::step_one`]), which checkpoint/resume still uses.
        while self.step_one()? {}
        self.finish()
    }

    fn dispatch(&mut self, now: SimTime, ev: Ev) -> Result<(), SimError> {
        match ev {
            Ev::AppWrite(f) => self.on_app_write(now, f),
            Ev::AppWriteDone(f, mode) => self.on_app_write_done(now, f, mode)?,
            Ev::TxDequeue { flow, idx } => self.on_tx_dequeue(now, flow, idx),
            Ev::SwitchArrive { flow, idx } => self.on_switch_arrive(now, flow, idx)?,
            Ev::SwitchDepart { flow, idx } => self.on_switch_depart(now, flow, idx),
            Ev::RxArrive { flow, idx } => self.on_rx_arrive(now, flow, idx),
            Ev::RxSoftirqDone { flow, idx } => self.on_rx_softirq_done(now, flow, idx),
            Ev::RxAppReadDone(f) => self.on_rx_app_read_done(now, f),
            Ev::AckArrive { flow, cum, idx, rwnd } => self.on_ack(now, flow, cum, idx, rwnd)?,
            Ev::RtoCheck(f) => self.on_rto_check(now, f)?,
            Ev::PacerResume(f) => self.on_pacer_resume(now, f)?,
            Ev::CrossToggle => self.on_cross_toggle(now),
            Ev::IntervalTick => self.on_interval(now)?,
            Ev::TelemetryTick => self.on_telemetry(now),
            Ev::OmitBoundary => self.on_omit(now),
            Ev::FaultBegin(i) => self.on_fault_begin(now, i),
            Ev::FaultEnd(i) => self.on_fault_end(now, i),
            Ev::GeToggle(i) => self.on_ge_toggle(now, i),
        }
        Ok(())
    }

    // ---- sender application ------------------------------------------------

    fn on_app_write(&mut self, now: SimTime, f: usize) {
        let flow = &mut self.flows[f];
        if !flow.sender.app_can_write() {
            self.hot[f].app_waiting = true;
            return;
        }
        let mode = match &mut flow.zc {
            Some(acct) => match acct.try_send() {
                SendOutcome::Zerocopy => TxMode::Zerocopy,
                SendOutcome::CopiedFallback => TxMode::ZerocopyFallback,
            },
            None if self.cfg.workload.sendfile => TxMode::Sendfile,
            None => TxMode::Copy,
        };
        let window = flow.sender.inflight();
        let svc = self
            .snd_host
            .cost
            .tx_app_service(self.burst, mode, window, &mut flow.rng);
        // The copy/zerocopy write and the optional user-space checksum
        // are charged as separate stints on the same FIFO app core, so
        // the ledger can tell them apart; back to back they complete at
        // the exact same instant as one combined stint.
        let mut done = self.snd_host.serve_app(f, now, svc, Stage::TxApp);
        if self.cfg.workload.user_checksum {
            let ck = self.snd_host.cost.checksum_service(self.burst, &mut flow.rng);
            done = self.snd_host.serve_app(f, now, ck, Stage::Checksum);
        }
        self.q.push(done, Ev::AppWriteDone(f, mode));
    }

    fn on_app_write_done(&mut self, now: SimTime, f: usize, mode: TxMode) -> Result<(), SimError> {
        {
            let flow = &mut self.flows[f];
            flow.sender.app_wrote();
            flow.pending_modes.push_back(mode);
        }
        self.try_transmit(now, f)?;
        // Continue the write chain immediately; the app core's FIFO
        // spacing throttles the actual rate.
        self.on_app_write(now, f);
        Ok(())
    }

    // ---- transmission path -------------------------------------------------

    fn try_transmit(&mut self, now: SimTime, f: usize) -> Result<(), SimError> {
        loop {
            let flow = &mut self.flows[f];
            if !flow.sender.can_send() {
                break;
            }
            // TSQ: once the qdisc (or the driver TX path behind it)
            // holds a couple of milliseconds of data, stop feeding it
            // and resume when it drains.
            // TSQ is per flow, like Linux: at most ~1 ms of data at the
            // flow's pacing rate (min two bursts) may sit in the
            // qdisc+driver. fq's per-flow round robin means one flow's
            // backlog never gates another.
            let pacer_backlog = flow.pacer.backlog(now);
            if pacer_backlog >= TSQ_HORIZON {
                if !self.hot[f].pacer_resume_pending {
                    self.hot[f].pacer_resume_pending = true;
                    let resume = now + pacer_backlog.saturating_sub(TSQ_HORIZON / 2);
                    self.q.push(resume, Ev::PacerResume(f));
                }
                break;
            }
            let rate = flow
                .pacer
                .current_rate(flow.sender.tcp_pacing_rate(), self.snd_host.nic_rate());
            let driver_limit = rate
                .bytes_in(SimDuration::from_millis(2))
                .max(self.burst * 2);
            if self.hot[f].driver_bytes >= driver_limit {
                self.hot[f].tx_gated = true; // resumed when the driver drains
                break;
            }
            let auto_rate = flow.sender.tcp_pacing_rate();
            match flow.sender.next_slot(now) {
                SendSlot::Blocked => break,
                SendSlot::New(idx) => {
                    let Some(mode) = flow.pending_modes.pop_front() else {
                        return Err(SimError::StateCorruption {
                            at: now,
                            what: format!(
                                "sender granted new burst {idx} with no pending app \
                                 write (app_buffered and pending_modes out of sync)"
                            ),
                        });
                    };
                    debug_assert_eq!(
                        idx,
                        flow.modes_base + flow.burst_modes.len() as u64,
                        "new burst indices must be contiguous"
                    );
                    flow.burst_modes.push_back(mode);
                    let depart =
                        flow.pacer
                            .schedule(now, self.burst, auto_rate, self.snd_host.nic_rate());
                    self.q.push(depart, Ev::TxDequeue { flow: f, idx });
                }
                SendSlot::Retransmit(idx) => {
                    let depart =
                        flow.pacer
                            .schedule(now, self.burst, auto_rate, self.snd_host.nic_rate());
                    self.q.push(depart, Ev::TxDequeue { flow: f, idx });
                }
            }
        }
        self.ensure_rto(now, f);
        Ok(())
    }

    fn on_tx_dequeue(&mut self, now: SimTime, f: usize, idx: u64) {
        // The burst leaves the qdisc now: restart its RTT/RTO clock so
        // pacer residence time doesn't masquerade as network delay.
        self.flows[f].sender.mark_transmitted(idx, now);
        self.hot[f].driver_bytes += self.burst;
        self.wire_sent += 1;
        let mode = {
            let flow = &self.flows[f];
            idx.checked_sub(flow.modes_base)
                .and_then(|off| flow.burst_modes.get(off as usize))
                .copied()
                .unwrap_or(TxMode::Copy)
        };
        let svc = self
            .snd_host
            .cost
            .tx_softirq_service(self.burst, &mut self.flows[f].rng);
        let t_irq = self.snd_host.serve_irq(f, now, svc, Stage::TxSoftirq);
        let window = self.flows[f].sender.inflight();
        let fab = self.snd_host.cost.fabric_tx_service(self.burst, mode, window);
        let t_fab = self.snd_host.serve_fabric(now, fab, Stage::FabricTx);
        let wire = self.cfg.sender.offload.wire_bytes(self.burst);
        let wire_done = self.snd_host.nic_transmit(t_irq.max(t_fab), wire);
        // Edge hop to the switch, then the switch-arrival logic runs
        // inline at that instant.
        self.q
            .push(wire_done + EDGE_DELAY, Ev::SwitchArrive { flow: f, idx });
    }

    fn on_switch_arrive(&mut self, now: SimTime, f: usize, idx: u64) -> Result<(), SimError> {
        // The burst left the sender's driver/NIC: credit the TSQ ledger
        // and resume a gated flow.
        {
            let hot = &mut self.hot[f];
            hot.driver_bytes = hot.driver_bytes.saturating_sub(self.burst);
            if hot.tx_gated {
                hot.tx_gated = false;
                self.try_transmit(now, f)?;
            }
        }
        // A downed bottleneck egress loses everything that reaches it.
        if self.link_down > 0 {
            self.fault_drops += 1;
            return Ok(());
        }
        // Gilbert–Elliott bad state: bursty fault loss on top of (not
        // instead of) the path's uniform random loss.
        if let Some(ge) = &self.ge {
            if ge.bad && now < ge.until {
                let p = ge.loss_bad;
                if self.flows[f].rng.chance(p) {
                    self.fault_drops += 1;
                    return Ok(());
                }
            }
        }
        let loss_p = self.cfg.path.random_loss;
        if loss_p > 0.0 && self.flows[f].rng.chance(loss_p) {
            self.random_drops += 1;
            return Ok(());
        }
        if self.switch.red_drop(&mut self.flows[f].rng) {
            self.switch_drops += 1;
            return Ok(());
        }
        let wire = self.cfg.sender.offload.wire_bytes(self.burst);
        match self.switch.enqueue(0, wire, now) {
            EnqueueOutcome::Dropped => {
                self.switch_drops += 1;
            }
            EnqueueOutcome::Queued { departs_at } => {
                self.q.push(departs_at, Ev::SwitchDepart { flow: f, idx });
            }
        }
        Ok(())
    }

    fn on_switch_depart(&mut self, now: SimTime, f: usize, idx: u64) {
        let wire = self.cfg.sender.offload.wire_bytes(self.burst);
        self.switch.departed(0, wire);
        self.q
            .push(now + self.cfg.path.one_way_delay(), Ev::RxArrive { flow: f, idx });
    }

    // ---- receiver ------------------------------------------------------------

    fn on_rx_arrive(&mut self, now: SimTime, f: usize, idx: u64) {
        // A pause storm holds *every* arrival upstream, ring state
        // notwithstanding — the edge port is XOFF'd by frames from
        // elsewhere in the fabric.
        if self.pause_storm > 0 {
            self.park(f, idx);
            return;
        }
        if !self.rcv_host.ring.offer(self.burst) {
            if self.cfg.path.flow_control {
                // 802.3x: pause frames hold the burst upstream instead
                // of dropping it; it re-enters when the ring drains.
                self.park(f, idx);
            } else {
                self.ring_drops += 1;
            }
            return;
        }
        let svc = self
            .rcv_host
            .cost
            .rx_softirq_service(self.burst, &mut self.flows[f].rng);
        let t_irq = self.rcv_host.serve_irq(f, now, svc, Stage::RxSoftirq);
        let fab = self
            .rcv_host
            .cost
            .fabric_rx_service(self.burst, self.cfg.workload.skip_rx_copy);
        let t_fab = self.rcv_host.serve_fabric(now, fab, Stage::FabricRx);
        self.q
            .push(t_irq.max(t_fab), Ev::RxSoftirqDone { flow: f, idx });
    }

    fn on_rx_softirq_done(&mut self, now: SimTime, f: usize, idx: u64) {
        self.rcv_host.ring.drain(self.burst);
        // A descriptor freed: un-park one flow-controlled burst (unless
        // a pause storm still has the edge XOFF'd).
        if self.pause_storm == 0 {
            if let Some((pf, pidx)) = self.parked.pop_front() {
                self.on_rx_arrive(now, pf, pidx);
            }
        }
        let ack = self.flows[f].receiver.on_burst(idx);
        self.q.push(
            now + self.cfg.path.one_way_delay() + EDGE_DELAY,
            Ev::AckArrive { flow: f, cum: ack.cum_ack, idx: ack.acked_idx, rwnd: ack.rwnd },
        );
        self.maybe_start_rx_app(now, f);
    }

    fn maybe_start_rx_app(&mut self, now: SimTime, f: usize) {
        // A stalled receiver application reads nothing; data piles up
        // in the socket buffer until rwnd closes.
        if self.rx_stalled > 0 {
            return;
        }
        let flow = &mut self.flows[f];
        if self.hot[f].rx_app_busy || flow.receiver.readable_bursts() == 0 {
            return;
        }
        self.hot[f].rx_app_busy = true;
        let svc = self.rcv_host.cost.rx_app_service(
            self.burst,
            self.cfg.workload.skip_rx_copy,
            &mut flow.rng,
        );
        // Read copy and user checksum: separate ledger stages, same
        // completion instant as one combined stint (see on_app_write).
        let mut done = self.rcv_host.serve_app(f, now, svc, Stage::RxApp);
        if self.cfg.workload.user_checksum {
            let ck = self.rcv_host.cost.checksum_service(self.burst, &mut flow.rng);
            done = self.rcv_host.serve_app(f, now, ck, Stage::Checksum);
        }
        self.q.push(done, Ev::RxAppReadDone(f));
    }

    fn on_rx_app_read_done(&mut self, now: SimTime, f: usize) {
        let flow = &mut self.flows[f];
        let was_zero_window = flow.receiver.rwnd() < self.burst;
        let read = flow.receiver.app_read();
        debug_assert!(read, "read completion without readable data");
        self.hot[f].delivered_bursts += 1;
        self.hot[f].rx_app_busy = false;
        // Zero-window recovery: the read that reopens the window sends
        // a window-update ACK (otherwise a sender idled by rwnd=0 after
        // a receiver stall would never learn the window reopened).
        if was_zero_window && flow.receiver.rwnd() >= self.burst {
            let cum = flow.receiver.rcv_nxt();
            let rwnd = flow.receiver.rwnd();
            if cum > 0 {
                self.q.push(
                    now + self.cfg.path.one_way_delay() + EDGE_DELAY,
                    // `idx = cum - 1` is already cumulatively ACKed, so
                    // the sender treats this as a pure window refresh.
                    Ev::AckArrive { flow: f, cum, idx: cum - 1, rwnd },
                );
            }
        }
        self.maybe_start_rx_app(now, f);
    }

    // ---- ACK path --------------------------------------------------------------

    fn on_ack(
        &mut self,
        now: SimTime,
        f: usize,
        cum: u64,
        idx: u64,
        rwnd: Bytes,
    ) -> Result<(), SimError> {
        // ACKs ride the same bottleneck link: a flap eats them too.
        // Cumulative ACKs are self-healing, so the sender recovers from
        // the gap via later ACKs or its own RTO.
        if self.link_down > 0 {
            return Ok(());
        }
        {
            let svc = self.snd_host.cost.ack_service(&mut self.flows[f].rng);
            self.snd_host.charge_irq(f, svc, Stage::Ack);
        }
        let flow = &mut self.flows[f];
        let _outcome = flow.sender.on_ack(cum, idx, rwnd, now);
        // Zerocopy completions: everything cumulatively ACKed releases
        // its optmem charge.
        while flow.modes_base < cum {
            let Some(mode) = flow.burst_modes.pop_front() else { break };
            flow.modes_base += 1;
            if mode == TxMode::Zerocopy {
                if let Some(acct) = &mut flow.zc {
                    acct.complete();
                }
            }
        }
        let wake_app = self.hot[f].app_waiting && flow.sender.app_can_write();
        if wake_app {
            self.hot[f].app_waiting = false;
        }
        self.try_transmit(now, f)?;
        if wake_app {
            self.on_app_write(now, f);
        }
        Ok(())
    }

    fn ensure_rto(&mut self, now: SimTime, f: usize) {
        if self.hot[f].rto_scheduled {
            return;
        }
        if let Some((deadline, _)) = self.flows[f].sender.timer_deadline() {
            self.hot[f].rto_scheduled = true;
            self.q.push(deadline.max(now), Ev::RtoCheck(f));
        }
    }

    fn on_pacer_resume(&mut self, now: SimTime, f: usize) -> Result<(), SimError> {
        self.hot[f].pacer_resume_pending = false;
        self.try_transmit(now, f)
    }

    fn on_rto_check(&mut self, now: SimTime, f: usize) -> Result<(), SimError> {
        self.hot[f].rto_scheduled = false;
        match self.flows[f].sender.timer_deadline() {
            None => {}
            Some((d, kind)) if d <= now => {
                match kind {
                    TimerKind::Tlp => self.flows[f].sender.on_tlp(now),
                    TimerKind::Rto => self.flows[f].sender.on_rto(now),
                }
                self.try_transmit(now, f)?;
            }
            Some((d, _)) => {
                self.hot[f].rto_scheduled = true;
                self.q.push(d, Ev::RtoCheck(f));
            }
        }
        Ok(())
    }

    // ---- fault injection -------------------------------------------------------

    fn on_fault_begin(&mut self, now: SimTime, i: usize) {
        match self.faults[i].fault.clone() {
            Fault::BurstyLoss { duration, mean_bad, mean_good, loss_bad } => {
                // An episode starts in the bad state (the episode *is*
                // the bad weather); sojourns alternate from there.
                self.ge = Some(GeState {
                    episode: i,
                    bad: true,
                    mean_bad,
                    mean_good,
                    loss_bad,
                    until: now + duration,
                });
                self.schedule_ge_toggle(now, i);
            }
            Fault::LinkFlap { .. } => {
                self.link_down += 1;
            }
            Fault::ReceiverStall { .. } => {
                self.rx_stalled += 1;
            }
            Fault::PauseStorm { .. } => {
                self.pause_storm += 1;
            }
        }
    }

    fn on_fault_end(&mut self, now: SimTime, i: usize) {
        match self.faults[i].fault {
            Fault::BurstyLoss { .. } => {
                if self.ge.as_ref().is_some_and(|g| g.episode == i) {
                    self.ge = None;
                }
            }
            Fault::LinkFlap { .. } => {
                // Nothing to restore: the senders' own RTO/TLP machinery
                // rediscovers the path.
                self.link_down = self.link_down.saturating_sub(1);
            }
            Fault::ReceiverStall { .. } => {
                self.rx_stalled = self.rx_stalled.saturating_sub(1);
                if self.rx_stalled == 0 {
                    // Reads restart; each drain will emit a window
                    // update once rwnd reopens (see on_rx_app_read_done).
                    for f in 0..self.flows.len() {
                        self.maybe_start_rx_app(now, f);
                    }
                }
            }
            Fault::PauseStorm { .. } => {
                self.pause_storm = self.pause_storm.saturating_sub(1);
                if self.pause_storm == 0 {
                    // Feed each parked burst back through the edge once;
                    // whatever still doesn't fit re-parks (802.3x) or
                    // drops (no flow control).
                    let n = self.parked.len();
                    for _ in 0..n {
                        let Some((pf, pidx)) = self.parked.pop_front() else { break };
                        self.on_rx_arrive(now, pf, pidx);
                    }
                }
            }
        }
    }

    fn schedule_ge_toggle(&mut self, now: SimTime, episode: usize) {
        let Some(ge) = &self.ge else { return };
        let mean = if ge.bad { ge.mean_bad } else { ge.mean_good };
        let dwell = SimDuration::from_secs_f64(self.rng.exponential(mean.as_secs_f64()))
            .max(SimDuration::from_nanos(1));
        let next = now + dwell;
        if next < ge.until {
            self.q.push(next, Ev::GeToggle(episode));
        }
    }

    fn on_ge_toggle(&mut self, now: SimTime, episode: usize) {
        let Some(ge) = &mut self.ge else { return };
        if ge.episode != episode || now >= ge.until {
            return;
        }
        ge.bad = !ge.bad;
        self.schedule_ge_toggle(now, episode);
    }

    /// Park a burst held upstream by pause frames, dropping on pause-
    /// buffer overflow (802.3x cannot buy infinite memory).
    fn park(&mut self, f: usize, idx: u64) {
        self.pause_parks += 1;
        if self.parked.len() >= self.parked_cap {
            self.ring_drops += 1;
        } else {
            self.parked.push_back((f, idx));
        }
    }

    // ---- environment ------------------------------------------------------------

    /// Cross-traffic driver. ON/OFF periods are exponential, but while
    /// ON the egress occupancy is booked in ~250 µs slices so that
    /// production bursts *interleave* with test traffic (occupying a
    /// share of the port) rather than blocking it outright — a blocked
    /// port would release multi-millisecond line-rate trains that no
    /// receiver could absorb.
    fn on_cross_toggle(&mut self, now: SimTime) {
        let Some(spec) = self.cfg.path.cross_traffic else { return };
        if now >= self.cross_until {
            self.cross_on = !self.cross_on;
            let mean = if self.cross_on {
                spec.mean_burst.as_secs_f64()
            } else {
                spec.mean_gap().as_secs_f64().max(1e-9)
            };
            self.cross_until =
                now + SimDuration::from_secs_f64(self.rng.exponential(mean));
        }
        if self.cross_on {
            let slice = SimDuration::from_micros(250).min(self.cross_until - now);
            let ratio = (spec.burst_rate.as_bps() / self.cfg.path.usable_rate().as_bps())
                .min(0.95);
            self.switch.consume_egress(0, slice.mul_f64(ratio), now);
            self.q.push(now + slice.max(SimDuration::from_micros(1)), Ev::CrossToggle);
        } else {
            self.q.push(self.cross_until, Ev::CrossToggle);
        }
    }

    fn on_interval(&mut self, now: SimTime) -> Result<(), SimError> {
        // mpstat-style sample: utilisation over the last interval.
        if !self.snd_busy_mark.is_empty() {
            let snd = self
                .snd_host
                .cpu_report_since(&self.snd_busy_mark, self.last_tick, now)
                .combined_pct();
            let rcv = self
                .rcv_host
                .cpu_report_since(&self.rcv_busy_mark, self.last_tick, now)
                .combined_pct();
            self.cpu_intervals.push((snd, rcv));
        }
        self.snd_busy_mark = self.snd_host.busy_snapshot();
        self.rcv_busy_mark = self.rcv_host.busy_snapshot();
        self.last_tick = now;
        self.classify_interval(now)?;
        for (flow, hot) in self.flows.iter_mut().zip(self.hot.iter_mut()) {
            let delta = hot.delivered_bursts - hot.interval_mark;
            hot.interval_mark = hot.delivered_bursts;
            flow.intervals.push(BitRate::average(
                Bytes::new(delta * self.burst.as_u64()),
                SimDuration::from_secs(1),
            ));
        }
        let next = now + SimDuration::from_secs(1);
        if next <= self.end_time {
            self.q.push(next, Ev::IntervalTick);
        }
        Ok(())
    }

    /// Current cumulative drop/pause/wire counters.
    fn counters(&self) -> CounterSnapshot {
        CounterSnapshot {
            ring_drops: self.ring_drops,
            switch_drops: self.switch_drops,
            random_drops: self.random_drops,
            fault_drops: self.fault_drops,
            pause_frames: self.pause_parks,
            wire_sent: self.wire_sent,
        }
    }

    /// Classify the interval ending at `now` and re-arm the marks.
    /// No-op when attribution is off or the interval is empty; strictly
    /// read-only on flow/host/RNG state.
    fn classify_interval(&mut self, now: SimTime) -> Result<(), SimError> {
        let Some(mut at) = self.attrib.take() else { return Ok(()) };
        if now > at.last_t {
            let obs = match self.interval_obs(&at, now) {
                Ok(obs) => obs,
                Err(e) => {
                    self.attrib = Some(at);
                    return Err(e);
                }
            };
            at.verdicts.push((now, classify(&obs)));
            self.rearm_attrib_marks(&mut at, now);
        }
        self.attrib = Some(at);
        Ok(())
    }

    /// Build the classifier's observation for `(at.last_t, now]`.
    fn interval_obs(&self, at: &AttribState, now: SimTime) -> Result<IntervalObs, SimError> {
        let dt = now.saturating_since(at.last_t).as_secs_f64();
        let missing_ledger = |side: &str| SimError::StateCorruption {
            at: now,
            what: format!("attribution enabled but {side} host has no cycle ledger"),
        };
        let snd_ledger = self.snd_host.ledger().ok_or_else(|| missing_ledger("sender"))?;
        let rcv_ledger = self.rcv_host.ledger().ok_or_else(|| missing_ledger("receiver"))?;
        // Peak (not mean) busy fraction over a core-index range: one
        // pegged core bottlenecks the pipeline no matter how idle its
        // siblings are.
        let peak = |totals: &[SimDuration], marks: &[SimDuration], lo: usize, hi: usize| {
            (lo..hi)
                .map(|i| totals[i].saturating_sub(marks[i]).as_secs_f64() / dt)
                .fold(0.0f64, f64::max)
        };
        let snd_totals = snd_ledger.core_totals();
        let rcv_totals = rcv_ledger.core_totals();
        let snd_app = self.snd_host.app_core_count();
        let snd_cores = snd_app + self.snd_host.irq_core_count();
        let rcv_app = self.rcv_host.app_core_count();
        let rcv_cores = rcv_app + self.rcv_host.irq_core_count();
        let counters = self.counters();
        let zc_sends: u64 =
            self.flows.iter().map(|fl| fl.zc.as_ref().map_or(0, |z| z.zerocopy_sends())).sum();
        let zc_fallbacks: u64 =
            self.flows.iter().map(|fl| fl.zc.as_ref().map_or(0, |z| z.fallback_sends())).sum();
        let acks: u64 = self.flows.iter().map(|fl| fl.sender.acks_processed()).sum();
        let cwnd_limited: u64 =
            self.flows.iter().map(|fl| fl.sender.cwnd_limited_acks()).sum();
        let delivered: u64 = self.hot.iter().map(|h| h.delivered_bursts).sum();
        let delivered_bits = (delivered - at.delivered_mark) as f64 * self.burst.bits() as f64;
        Ok(IntervalObs {
            switch_drops: counters.switch_drops - at.counter_mark.switch_drops,
            ring_drops: counters.ring_drops - at.counter_mark.ring_drops,
            pause_parks: counters.pause_frames - at.counter_mark.pause_frames,
            zc_sends: zc_sends - at.zc_sends_mark,
            zc_fallbacks: zc_fallbacks - at.zc_fallbacks_mark,
            acks: acks - at.acks_mark,
            cwnd_limited_acks: cwnd_limited - at.cwnd_limited_mark,
            snd_app_busy: peak(&snd_totals, &at.snd_mark, 0, snd_app),
            snd_irq_busy: peak(&snd_totals, &at.snd_mark, snd_app, snd_cores),
            rcv_irq_busy: peak(&rcv_totals, &at.rcv_mark, rcv_app, rcv_cores),
            rcv_app_busy: peak(&rcv_totals, &at.rcv_mark, 0, rcv_app),
            delivered_gbps: delivered_bits / dt / 1e9,
            usable_gbps: self.cfg.path.usable_rate().as_gbps(),
            fq_total_gbps: self
                .cfg
                .workload
                .fq_rate
                .map(|r| r.as_gbps() * self.flows.len() as f64),
        })
    }

    /// Reset the attribution marks to the current cumulative state.
    fn rearm_attrib_marks(&self, at: &mut AttribState, now: SimTime) {
        if let Some(l) = self.snd_host.ledger() {
            at.snd_mark = l.core_totals();
        }
        if let Some(l) = self.rcv_host.ledger() {
            at.rcv_mark = l.core_totals();
        }
        at.counter_mark = self.counters();
        at.zc_sends_mark =
            self.flows.iter().map(|fl| fl.zc.as_ref().map_or(0, |z| z.zerocopy_sends())).sum();
        at.zc_fallbacks_mark =
            self.flows.iter().map(|fl| fl.zc.as_ref().map_or(0, |z| z.fallback_sends())).sum();
        at.acks_mark = self.flows.iter().map(|fl| fl.sender.acks_processed()).sum();
        at.cwnd_limited_mark =
            self.flows.iter().map(|fl| fl.sender.cwnd_limited_acks()).sum();
        at.delivered_mark = self.hot.iter().map(|h| h.delivered_bursts).sum();
        at.last_t = now;
    }

    /// One host's whole-run stage decomposition out of its ledger.
    fn stage_profile(host: &SimHost, end: SimTime) -> Result<StageProfile, SimError> {
        let ledger = host.ledger().ok_or_else(|| SimError::StateCorruption {
            at: end,
            what: "attribution enabled but host has no cycle ledger".into(),
        })?;
        Ok(StageProfile {
            clock_hz: host.cost.clock_hz(),
            cores: (0..ledger.num_cores())
                .map(|i| CoreProfile {
                    role: host.core_role(i),
                    stage_busy: ledger.core_row(i).to_vec(),
                })
                .collect(),
        })
    }

    /// Telemetry tick: sample every flow and the host counters, then
    /// re-arm. Strictly read-only on flow/host/RNG state, so a sampled
    /// run reproduces the exact same traffic as an unsampled one.
    fn on_telemetry(&mut self, now: SimTime) {
        let Some(mut sampler) = self.sampler.take() else { return };
        self.telemetry_sample(now, &mut sampler);
        let next = now + sampler.tick();
        if next <= self.end_time {
            self.q.push(next, Ev::TelemetryTick);
        }
        self.sampler = Some(sampler);
    }

    /// Take one full sample at `now` (tick or end-of-run flush).
    fn telemetry_sample(&self, now: SimTime, sampler: &mut TelemetrySampler) {
        for (f, flow) in self.flows.iter().enumerate() {
            let sender = &flow.sender;
            let cc = sender.cc();
            let ca_state = if sender.in_recovery() {
                CaState::Recovery
            } else if cc.in_slow_start() {
                CaState::SlowStart
            } else {
                CaState::CongestionAvoidance
            };
            let info = FlowInfo {
                cwnd: cc.cwnd(),
                ssthresh: cc.ssthresh(),
                srtt: sender.rtt.srtt(),
                pacing_rate: sender.tcp_pacing_rate(),
                ca_state,
                bytes_retrans: Bytes::new(sender.retx_bursts() * self.burst.as_u64()),
                retr_packets: sender.retr_packets(),
                // IntervalTick sorts before TelemetryTick at equal
                // timestamps (FIFO push order), so a 1 s telemetry
                // cadence sees each interval's fresh verdict.
                limiting: self.attrib.as_ref().and_then(|a| a.last_verdict()),
            };
            sampler.sample_flow(now, f, self.burst, self.hot[f].delivered_bursts, info);
        }
        let counters = self.counters();
        let since = sampler.last_sample();
        let (snd_mark, rcv_mark) = sampler.busy_marks();
        // The end-of-run flush can land exactly on the last tick; a
        // zero-length interval has no meaningful busy%.
        let (snd_pct, rcv_pct) = if now > since {
            (
                self.snd_host.cpu_report_since(snd_mark, since, now).per_core,
                self.rcv_host.cpu_report_since(rcv_mark, since, now).per_core,
            )
        } else {
            (vec![0.0; snd_mark.len()], vec![0.0; rcv_mark.len()])
        };
        sampler.sample_host(
            now,
            counters,
            self.snd_host.busy_snapshot(),
            self.rcv_host.busy_snapshot(),
            snd_pct,
            rcv_pct,
        );
    }

    fn on_omit(&mut self, now: SimTime) {
        for hot in &mut self.hot {
            hot.delivered_at_omit = hot.delivered_bursts;
            hot.interval_mark = hot.delivered_bursts;
        }
        self.snd_cpu_at_omit = self.snd_host.busy_snapshot();
        self.rcv_cpu_at_omit = self.rcv_host.busy_snapshot();
        self.snd_busy_mark = self.snd_host.busy_snapshot();
        self.rcv_busy_mark = self.rcv_host.busy_snapshot();
        self.last_tick = now;
        // Attribution classifies measured intervals only: re-arm at the
        // omit boundary (without classifying) so warm-up slow start
        // never pollutes the verdict histogram — same contract as
        // `cpu_intervals` and the per-flow interval series.
        if let Some(mut at) = self.attrib.take() {
            self.rearm_attrib_marks(&mut at, now);
            self.attrib = Some(at);
        }
    }

    /// End-of-run burst conservation: every burst handed to the wire is
    /// delivered to a receiver (incl. duplicates and window rejects),
    /// dropped with an attributed cause, or still inside the pipeline.
    fn check_conservation(&self) -> Result<(), SimError> {
        let delivered: u64 = self.flows.iter().map(|fl| fl.receiver.total_bursts()).sum();
        let dropped =
            self.switch_drops + self.ring_drops + self.random_drops + self.fault_drops;
        let pending: u64 = self
            .q
            .iter()
            .filter(|ev| {
                matches!(
                    ev,
                    Ev::SwitchArrive { .. }
                        | Ev::SwitchDepart { .. }
                        | Ev::RxArrive { .. }
                        | Ev::RxSoftirqDone { .. }
                )
            })
            .count() as u64;
        let in_flight = pending + self.parked.len() as u64;
        if self.wire_sent != delivered + dropped + in_flight {
            return Err(SimError::ConservationViolation {
                wire_sent: self.wire_sent,
                delivered,
                dropped,
                in_flight,
            });
        }
        Ok(())
    }

    fn finish(mut self) -> Result<RunResult, SimError> {
        self.check_conservation()?;
        // Final partial attribution interval (a duration that is not a
        // tick multiple leaves a tail after the last in-range tick) —
        // classified before the telemetry flush so the flush sample
        // carries the final verdict.
        self.classify_interval(self.end_time)?;
        // Final partial-interval flush so per-interval byte counts sum
        // exactly to the delivered-bytes ledger — data that arrived
        // after the last tick (or after the last in-range tick on a
        // duration that is not a tick multiple) must land somewhere.
        let telemetry = self.sampler.take().map(|mut sampler| {
            let delivered: Vec<u64> =
                self.hot.iter().map(|h| h.delivered_bursts).collect();
            if sampler.last_sample() < self.end_time || sampler.pending_delivery(&delivered) {
                self.telemetry_sample(self.end_time, &mut sampler);
            }
            sampler.finish()
        });
        let attribution = match self.attrib.take() {
            Some(at) => {
                let verdict = BottleneckVerdict::from_intervals(&at.verdicts);
                Some(Attribution {
                    verdicts: at.verdicts,
                    verdict,
                    sender_profile: Self::stage_profile(&self.snd_host, self.end_time)?,
                    receiver_profile: Self::stage_profile(&self.rcv_host, self.end_time)?,
                })
            }
            None => None,
        };
        if std::env::var_os("NETSIM_DEBUG_FLOWS").is_some() {
            for (i, flow) in self.flows.iter().enumerate() {
                eprintln!(
                    "flow {i}: cwnd={} inflight={} ss={} srtt={:?} buffered={} waiting={} retr={} tlp={} rto={} rcv_rwnd={} readable={}",
                    flow.sender.cc().cwnd(),
                    flow.sender.inflight(),
                    flow.sender.cc().in_slow_start(),
                    flow.sender.rtt.srtt(),
                    flow.sender.app_buffered(),
                    self.hot[i].app_waiting,
                    flow.sender.retr_packets(),
                    flow.sender.tlp_events(),
                    flow.sender.rto_events(),
                    flow.receiver.rwnd(),
                    flow.receiver.readable_bursts(),
                );
            }
        }
        let window = self.end_time.saturating_since(self.omit_time);
        let flows = self
            .flows
            .iter()
            .enumerate()
            .map(|(id, flow)| {
                let hot = &self.hot[id];
                let bursts = hot.delivered_bursts - hot.delivered_at_omit;
                let bytes = Bytes::new(bursts * self.burst.as_u64());
                FlowResult {
                    id,
                    bytes,
                    goodput: BitRate::average(bytes, window),
                    // iperf3's Retr column counts the whole test,
                    // including slow-start losses before the omit mark.
                    retr_packets: flow.sender.retr_packets(),
                    rto_events: flow.sender.rto_events(),
                    zc_sends: flow.zc.as_ref().map_or(0, |z| z.zerocopy_sends()),
                    zc_fallbacks: flow.zc.as_ref().map_or(0, |z| z.fallback_sends()),
                    intervals: flow.intervals.clone(),
                }
            })
            .collect();
        let sender_cpu = if self.snd_cpu_at_omit.is_empty() {
            self.snd_host.cpu_report(SimTime::ZERO, self.end_time)
        } else {
            self.snd_host
                .cpu_report_since(&self.snd_cpu_at_omit, self.omit_time, self.end_time)
        };
        let receiver_cpu = if self.rcv_cpu_at_omit.is_empty() {
            self.rcv_host.cpu_report(SimTime::ZERO, self.end_time)
        } else {
            self.rcv_host
                .cpu_report_since(&self.rcv_cpu_at_omit, self.omit_time, self.end_time)
        };
        Ok(RunResult {
            flows,
            window,
            sender_cpu,
            receiver_cpu,
            cpu_intervals: self.cpu_intervals,
            switch_drops: self.switch_drops,
            ring_drops: self.ring_drops,
            random_drops: self.random_drops,
            fault_drops: self.fault_drops,
            wire_sent: self.wire_sent,
            events: self.q.total_popped(),
            past_clamps: self.q.past_clamps(),
            telemetry,
            attribution,
        })
    }
}
