//! Smoke tests for the experiment harness: each paper artefact's
//! generator runs end to end at Smoke effort and produces data with
//! the right structure and the headline ordering.

use dtnperf::prelude::*;
use harness::experiments::{figures, tables};
use harness::RunCtx;

#[test]
fn fig06_structure_and_ordering() {
    let figs = figures::fig06(&RunCtx::new(Effort::Smoke));
    assert_eq!(figs.len(), 1);
    let fig = &figs[0];
    assert_eq!(fig.x_labels, vec!["LAN".to_string(), "WAN".to_string()]);
    assert_eq!(fig.series.len(), 2);
    // default: LAN >> WAN; zc+pace: WAN ≈ LAN.
    let default = &fig.series[0];
    let zc = &fig.series[1];
    assert!(default.points[0].mean > default.points[1].mean * 1.4);
    assert!(zc.points[1].mean > default.points[1].mean * 1.3);
    // Rendering produces both series and the title.
    let text = fig.render_ascii();
    assert!(text.contains("Fig. 6"));
    assert!(text.contains("zerocopy"));
    let csv = fig.to_csv();
    assert_eq!(csv.lines().count(), 1 + 4, "2 series x 2 x-positions");
}

#[test]
fn table3_structure_and_ordering() {
    let table = tables::table3(&RunCtx::new(Effort::Smoke));
    assert_eq!(table.columns, vec!["Test Config", "Ave Tput", "Retr", "Range"]);
    assert_eq!(table.rows.len(), 4);
    assert_eq!(table.rows[0][0], "unpaced");
    assert_eq!(table.rows[3][0], "10 Gbps / stream");
    // The Table III takeaway: pacing at 10 G slashes retransmits.
    let retr = |row: &Vec<String>| -> f64 {
        let cell = &row[2];
        if let Some(k) = cell.strip_suffix('K') {
            k.parse::<f64>().unwrap() * 1000.0
        } else {
            cell.parse().unwrap()
        }
    };
    assert!(
        retr(&table.rows[3]) < retr(&table.rows[0]) / 4.0 + 100.0,
        "10G pacing must slash retransmits: {} -> {}",
        table.rows[0][2],
        table.rows[3][2]
    );
    let text = table.render_ascii();
    assert!(text.contains("Flow Control"));
}

#[test]
fn fig12_kernel_ordering() {
    let figs = figures::fig12(&RunCtx::new(Effort::Smoke));
    let fig = &figs[0];
    assert_eq!(fig.series.len(), 3, "5.15 / 6.5 / 6.8");
    // LAN column strictly improves with kernel version.
    let lan: Vec<f64> = fig.series.iter().map(|s| s.points[0].mean).collect();
    assert!(lan[0] < lan[1] && lan[1] < lan[2], "kernel ladder: {lan:?}");
}

#[test]
fn experiment_ids_render() {
    // The cheapest artefact end-to-end through the registry interface.
    let out = harness::experiments::ExperimentId::ExtBigTcpZc.run_rendered(&RunCtx::new(Effort::Smoke));
    assert!(out.contains("BIG TCP"));
    assert!(out.contains("Gbps"));
}
