//! iperf3 versions and patch levels.

use std::fmt;

/// Which iperf3 build is "installed" on the hosts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Iperf3Version {
    /// Minor version of the 3.x series (13, 16, 17, …).
    pub minor: u32,
    /// Patch #1690 applied (`--skip-rx-copy`, `--zerocopy=z`).
    pub patch_1690: bool,
    /// Patch #1728 applied (`--fq-rate` above 32 Gbps).
    pub patch_1728: bool,
}

impl Iperf3Version {
    /// Stock v3.13 (single-threaded parallel streams, no new flags).
    pub fn v3_13() -> Self {
        Iperf3Version { minor: 13, patch_1690: false, patch_1728: false }
    }

    /// Stock v3.16 (first multi-threaded release).
    pub fn v3_16() -> Self {
        Iperf3Version { minor: 16, patch_1690: false, patch_1728: false }
    }

    /// Stock v3.17.
    pub fn v3_17() -> Self {
        Iperf3Version { minor: 17, patch_1690: false, patch_1728: false }
    }

    /// The paper's build: v3.17 + #1690 + #1728 (§III-B).
    pub fn paper_patched() -> Self {
        Iperf3Version { minor: 17, patch_1690: true, patch_1728: true }
    }

    /// Parallel streams run as real threads (one core each) from 3.16.
    pub fn multithreaded(&self) -> bool {
        self.minor >= 16
    }

    /// `--zerocopy=z` / `--skip-rx-copy` available.
    pub fn has_msg_zerocopy_flags(&self) -> bool {
        self.patch_1690
    }

    /// `--fq-rate` accepted above 32 Gbps.
    pub fn fq_rate_above_32g(&self) -> bool {
        self.patch_1728
    }

    /// The classic `sendfile`-based `--zerocopy` (`-Z`) — available in
    /// every modern iperf3 (§II-B mentions it as the older alternative).
    pub fn has_sendfile_zerocopy(&self) -> bool {
        true
    }
}

impl Default for Iperf3Version {
    fn default() -> Self {
        Self::paper_patched()
    }
}

impl simcore::Canonicalize for Iperf3Version {
    fn canonicalize(&self, c: &mut simcore::Canon) {
        c.put_u64("minor", self.minor as u64);
        c.put_bool("patch_1690", self.patch_1690);
        c.put_bool("patch_1728", self.patch_1728);
    }
}

impl fmt::Display for Iperf3Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "iperf 3.{}", self.minor)?;
        if self.patch_1690 {
            write!(f, "+p1690")?;
        }
        if self.patch_1728 {
            write!(f, "+p1728")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_capabilities() {
        let old = Iperf3Version::v3_13();
        assert!(!old.multithreaded());
        assert!(!old.has_msg_zerocopy_flags());
        let paper = Iperf3Version::paper_patched();
        assert!(paper.multithreaded());
        assert!(paper.has_msg_zerocopy_flags());
        assert!(paper.fq_rate_above_32g());
        assert!(!Iperf3Version::v3_17().has_msg_zerocopy_flags());
    }

    #[test]
    fn display_shows_patches() {
        assert_eq!(Iperf3Version::paper_patched().to_string(), "iperf 3.17+p1690+p1728");
        assert_eq!(Iperf3Version::v3_16().to_string(), "iperf 3.16");
    }
}
