//! Canonical serialization and stable fingerprints for configuration
//! values.
//!
//! The harness derives per-repetition seeds and content-addressed cache
//! keys from *what a scenario is*, not from where it sits in a loop.
//! That requires a serialization of the configuration that is stable
//! across refactors: a [`Canon`] collects `path = value` records
//! through the [`Canonicalize`] trait, then sorts them by path before
//! hashing or rendering — so the fingerprint does not change when a
//! struct's fields are reordered, and two scenarios canonicalize
//! identically iff they configure the same run.
//!
//! Hashing is 64-bit FNV-1a (std-only, stable by specification — no
//! dependency on `std::hash`'s unspecified per-release behaviour).
//! Floats are canonicalized through their IEEE-754 bit patterns, so
//! `0.1 + 0.2` and `0.30000000000000004` stay distinguishable and the
//! representation is exact.

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// One step of FNV-1a over a byte slice, from a running state.
fn fnv1a(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= b as u64;
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

/// SplitMix64 finalizer — used to mix fingerprints, base seeds and
/// stream indices into per-repetition seeds.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive the seed for repetition `stream` of a configuration with the
/// given fingerprint under a harness `base` seed.
///
/// The derivation is position-free: it depends only on the three
/// inputs, never on where the scenario sits in an experiment grid or
/// which loop iteration launched it, so adding a sibling scenario to a
/// figure cannot change another scenario's seeds.
pub fn derive_seed(fingerprint: u64, base: u64, stream: u64) -> u64 {
    mix64(fingerprint ^ mix64(base) ^ stream.wrapping_mul(0xA24B_AED4_963E_E407))
}

/// A collector of canonical `path = value` records.
///
/// Values are keyed by a dotted path (`"opts.parallel"`,
/// `"client.sysctl.optmem_max"`). Records are sorted by path before
/// hashing/rendering, so the order fields are *pushed* in — i.e. the
/// order they happen to be declared in a struct — does not matter.
/// Duplicate paths are rejected (they would silently alias two fields).
#[derive(Debug, Default)]
pub struct Canon {
    prefix: String,
    records: Vec<(String, String)>,
}

impl Canon {
    /// An empty collector.
    pub fn new() -> Self {
        Canon::default()
    }

    fn push(&mut self, key: &str, value: String) {
        let path = if self.prefix.is_empty() {
            key.to_string()
        } else {
            format!("{}.{key}", self.prefix)
        };
        debug_assert!(
            !self.records.iter().any(|(p, _)| *p == path),
            "duplicate canonical path '{path}'"
        );
        self.records.push((path, value));
    }

    /// Record an unsigned integer field.
    pub fn put_u64(&mut self, key: &str, value: u64) {
        self.push(key, value.to_string());
    }

    /// Record a boolean field.
    pub fn put_bool(&mut self, key: &str, value: bool) {
        self.push(key, value.to_string());
    }

    /// Record a float field, exactly, via its IEEE-754 bit pattern.
    pub fn put_f64(&mut self, key: &str, value: f64) {
        self.push(key, format!("f{:016x}", value.to_bits()));
    }

    /// Record a string-ish field (enum token, name). The value is
    /// escaped into one line so rendered canonical text stays parseable.
    pub fn put_str(&mut self, key: &str, value: &str) {
        self.push(key, format!("{:?}", value));
    }

    /// Record an optional field: `None` is recorded explicitly (an
    /// absent knob is configuration too).
    pub fn put_opt(&mut self, key: &str, value: Option<&dyn Canonicalize>) {
        match value {
            None => self.push(key, "none".into()),
            Some(v) => self.scope(key, |c| v.canonicalize(c)),
        }
    }

    /// Record a nested value under `key.` — used for struct fields.
    pub fn scope(&mut self, key: &str, f: impl FnOnce(&mut Canon)) {
        let saved = self.prefix.clone();
        self.prefix = if saved.is_empty() {
            key.to_string()
        } else {
            format!("{saved}.{key}")
        };
        f(self);
        self.prefix = saved;
    }

    /// Record each element of a sequence under `key[i]`.
    pub fn put_seq(&mut self, key: &str, items: &[&dyn Canonicalize]) {
        // Length first, so [a] + [] and [] + [a] under adjacent keys
        // cannot collide.
        self.put_u64(&format!("{key}#len"), items.len() as u64);
        for (i, item) in items.iter().enumerate() {
            self.scope(&format!("{key}[{i}]"), |c| item.canonicalize(c));
        }
    }

    /// Record a sequence of integers (core lists and the like).
    pub fn put_u64_seq(&mut self, key: &str, items: &[u64]) {
        let rendered: Vec<String> = items.iter().map(u64::to_string).collect();
        self.push(key, format!("[{}]", rendered.join(",")));
    }

    /// The canonical text: one sorted `path = value` line per record.
    pub fn render(&self) -> String {
        let mut sorted: Vec<&(String, String)> = self.records.iter().collect();
        sorted.sort();
        let mut out = String::new();
        for (path, value) in sorted {
            out.push_str(path);
            out.push_str(" = ");
            out.push_str(value);
            out.push('\n');
        }
        out
    }

    /// The 64-bit FNV-1a fingerprint of the canonical text.
    pub fn fingerprint(&self) -> u64 {
        fnv1a(FNV_OFFSET, self.render().as_bytes())
    }

    /// A second, independent 64-bit hash (FNV-1a over the reversed
    /// text). Cache keys combine both into 128 bits so that a random
    /// collision is out of reach for any realistic grid size.
    pub fn fingerprint_alt(&self) -> u64 {
        let text = self.render();
        let mut state = fnv1a(FNV_OFFSET ^ 0x5bd1_e995_9e37_79b9, text.as_bytes());
        state = fnv1a(state, &[0xff]);
        fnv1a(state, text.len().to_le_bytes().as_slice())
    }
}

/// Hash arbitrary bytes with 64-bit FNV-1a (checksums for cache
/// entries).
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    fnv1a(FNV_OFFSET, bytes)
}

/// A configuration value with a canonical serialization.
///
/// Implementations enumerate every *semantically meaningful* field —
/// anything that changes the simulated outcome. Display-only fields
/// (labels, host display names) are deliberately excluded so renaming
/// a scenario does not re-seed or re-simulate it.
pub trait Canonicalize {
    /// Record this value's fields into `c`.
    fn canonicalize(&self, c: &mut Canon);

    /// Convenience: this value's standalone fingerprint.
    fn canon_fingerprint(&self) -> u64 {
        let mut c = Canon::new();
        self.canonicalize(&mut c);
        c.fingerprint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Pair {
        a: u64,
        b: f64,
    }

    impl Canonicalize for Pair {
        fn canonicalize(&self, c: &mut Canon) {
            c.put_u64("a", self.a);
            c.put_f64("b", self.b);
        }
    }

    #[test]
    fn fingerprint_is_field_order_invariant() {
        let mut fwd = Canon::new();
        fwd.put_u64("a", 1);
        fwd.put_f64("b", 2.5);
        fwd.put_str("c", "x");
        let mut rev = Canon::new();
        rev.put_str("c", "x");
        rev.put_f64("b", 2.5);
        rev.put_u64("a", 1);
        assert_eq!(fwd.render(), rev.render());
        assert_eq!(fwd.fingerprint(), rev.fingerprint());
        assert_eq!(fwd.fingerprint_alt(), rev.fingerprint_alt());
    }

    #[test]
    fn fingerprint_distinguishes_values_and_paths() {
        let fp = |k: &str, v: u64| {
            let mut c = Canon::new();
            c.put_u64(k, v);
            c.fingerprint()
        };
        assert_ne!(fp("a", 1), fp("a", 2));
        assert_ne!(fp("a", 1), fp("b", 1));
    }

    #[test]
    fn floats_canonicalize_by_bits() {
        let mut a = Canon::new();
        a.put_f64("x", 0.1 + 0.2);
        let mut b = Canon::new();
        b.put_f64("x", 0.3);
        // 0.1+0.2 != 0.3 in IEEE-754; the canonical forms must differ.
        assert_ne!(a.render(), b.render());
        let mut c = Canon::new();
        c.put_f64("x", -0.0);
        let mut d = Canon::new();
        d.put_f64("x", 0.0);
        assert_ne!(c.render(), d.render(), "signed zero is a distinct config");
    }

    #[test]
    fn scopes_nest_and_restore() {
        let mut c = Canon::new();
        c.scope("outer", |c| {
            c.put_u64("x", 1);
            c.scope("inner", |c| c.put_u64("y", 2));
        });
        c.put_u64("z", 3);
        let text = c.render();
        assert!(text.contains("outer.x = 1"));
        assert!(text.contains("outer.inner.y = 2"));
        assert!(text.starts_with("outer."), "sorted: {text}");
        assert!(text.ends_with("z = 3\n"));
    }

    #[test]
    fn sequences_record_length_and_elements() {
        let mut c = Canon::new();
        let items: Vec<&dyn Canonicalize> =
            vec![&Pair { a: 1, b: 0.5 }, &Pair { a: 2, b: 1.5 }];
        c.put_seq("pairs", &items);
        let text = c.render();
        assert!(text.contains("pairs#len = 2"));
        assert!(text.contains("pairs[0].a = 1"));
        assert!(text.contains("pairs[1].a = 2"));
        let mut empty = Canon::new();
        empty.put_seq("pairs", &[]);
        assert!(empty.render().contains("pairs#len = 0"));
    }

    #[test]
    fn derive_seed_depends_on_all_inputs_only() {
        let s = derive_seed(0xdead_beef, 1000, 0);
        assert_eq!(s, derive_seed(0xdead_beef, 1000, 0), "pure function");
        assert_ne!(s, derive_seed(0xdead_beef, 1000, 1), "stream matters");
        assert_ne!(s, derive_seed(0xdead_beef, 1001, 0), "base matters");
        assert_ne!(s, derive_seed(0xdead_bee0, 1000, 0), "fingerprint matters");
    }

    #[test]
    fn derive_seed_streams_are_spread() {
        // Consecutive streams must not produce near-identical seeds the
        // way `base + i` did.
        let seeds: Vec<u64> = (0..64).map(|i| derive_seed(7, 1000, i)).collect();
        let mut sorted = seeds.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 64, "no collisions across streams");
        for w in seeds.windows(2) {
            assert!(w[0].abs_diff(w[1]) > 1 << 20, "seeds not clustered");
        }
    }

    #[test]
    fn fnv_vector() {
        // Published FNV-1a test vector: "foobar" -> 0x85944171f73967e8.
        assert_eq!(fnv1a_64(b"foobar"), 0x8594_4171_f739_67e8);
    }
}
