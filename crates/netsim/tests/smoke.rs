//! End-to-end smoke tests for the simulator.
//!
//! These are short runs (seconds of simulated time) that check the
//! *mechanisms*; the full paper-anchor calibration lives in the
//! workspace-level `tests/calibration.rs` and runs in release mode.

use linuxhost::{HostConfig, KernelVersion};
use netsim::{SimConfig, Simulation, WorkloadSpec};
use nethw::PathSpec;
use simcore::{BitRate, SimDuration};

fn amlight_lan(workload: WorkloadSpec) -> SimConfig {
    SimConfig {
        sender: HostConfig::amlight_intel(KernelVersion::L6_8),
        receiver: HostConfig::amlight_intel(KernelVersion::L6_8),
        path: PathSpec::lan("amlight-lan", BitRate::gbps(100.0)),
        workload,
    }
}

fn amlight_wan(rtt_ms: u64, workload: WorkloadSpec) -> SimConfig {
    SimConfig {
        sender: HostConfig::amlight_intel(KernelVersion::L6_8),
        receiver: HostConfig::amlight_intel(KernelVersion::L6_8),
        path: PathSpec::wan(
            format!("amlight-{rtt_ms}ms"),
            BitRate::gbps(100.0),
            SimDuration::from_millis(rtt_ms),
        )
        .with_policy_cap(BitRate::gbps(80.0)),
        workload,
    }
}

#[test]
fn lan_single_stream_reaches_tens_of_gbps() {
    let cfg = amlight_lan(WorkloadSpec::single_stream(3));
    let res = Simulation::new(cfg).expect("config").run().expect("run");
    let gbps = res.total_goodput().as_gbps();
    assert!(
        (30.0..70.0).contains(&gbps),
        "Intel LAN default single stream: {gbps:.1} Gbps (events {})",
        res.events
    );
}

#[test]
fn zerocopy_with_pacing_hits_the_pacing_rate_on_wan() {
    let wl = WorkloadSpec::single_stream(12)
        .with_zerocopy()
        .with_fq_rate(BitRate::gbps(50.0));
    let cfg = amlight_wan(25, wl);
    let res = Simulation::new(cfg).expect("config").run().expect("run");
    let gbps = res.total_goodput().as_gbps();
    assert!(
        (42.0..51.0).contains(&gbps),
        "zc+pace50 at 25 ms should run near 48: {gbps:.1} Gbps"
    );
}

#[test]
fn wan_default_is_slower_than_lan_default() {
    let lan = Simulation::new(amlight_lan(WorkloadSpec::single_stream(6)))
        .expect("config")
        .run()
        .expect("run")
        .total_goodput()
        .as_gbps();
    let wan = Simulation::new(amlight_wan(104, WorkloadSpec::single_stream(15)))
        .expect("config")
        .run()
        .expect("run")
        .total_goodput()
        .as_gbps();
    assert!(
        wan < lan,
        "WAN default ({wan:.1}) must trail LAN default ({lan:.1}) — sender window penalty"
    );
    assert!(wan > 5.0, "WAN default should still move data: {wan:.1}");
}

#[test]
fn run_is_deterministic_per_seed() {
    let mk = |seed| {
        let wl = WorkloadSpec::single_stream(2).with_seed(seed);
        Simulation::new(amlight_lan(wl)).expect("config").run().expect("run")
    };
    let a = mk(7);
    let b = mk(7);
    let c = mk(8);
    assert_eq!(a.total_goodput().as_bps(), b.total_goodput().as_bps());
    assert_eq!(a.total_retr(), b.total_retr());
    assert_eq!(a.events, b.events);
    assert_ne!(
        (a.total_goodput().as_bps(), a.events),
        (c.total_goodput().as_bps(), c.events),
        "different seeds should differ somewhere"
    );
}

#[test]
fn parallel_streams_share_the_path() {
    let wl = WorkloadSpec::parallel(4, 3).with_fq_rate(BitRate::gbps(5.0));
    let cfg = amlight_lan(wl);
    let res = Simulation::new(cfg).expect("config").run().expect("run");
    assert_eq!(res.flows.len(), 4);
    let total = res.total_goodput().as_gbps();
    assert!(
        (15.0..21.0).contains(&total),
        "4 × 5 Gbps paced flows ≈ 19 Gbps total, got {total:.1}"
    );
    for f in &res.flows {
        let g = f.goodput.as_gbps();
        assert!((3.5..5.3).contains(&g), "flow {} at {g:.2} Gbps", f.id);
    }
}

#[test]
fn small_rmem_caps_wan_throughput() {
    // Stock tcp_rmem (6 MB) on a 104 ms path caps the window:
    // 6 MB / 104 ms ≈ 0.46 Gbps.
    let mut cfg = amlight_wan(104, WorkloadSpec::single_stream(10));
    cfg.receiver.sysctl = linuxhost::SysctlConfig::stock();
    cfg.sender.sysctl.optmem_max = simcore::Bytes::mib(1); // keep sender tuned otherwise
    let res = Simulation::new(cfg).expect("config").run().expect("run");
    let gbps = res.total_goodput().as_gbps();
    assert!(
        gbps < 1.5,
        "stock 6 MB rmem must strangle a 104 ms path, got {gbps:.2} Gbps"
    );
}

#[test]
fn cpu_reports_are_populated() {
    let cfg = amlight_lan(WorkloadSpec::single_stream(3));
    let res = Simulation::new(cfg).expect("config").run().expect("run");
    assert!(res.sender_cpu.combined_pct() > 10.0);
    assert!(res.receiver_cpu.combined_pct() > 10.0);
    // LAN default: the receiver side is the busier host (§IV-B).
    assert!(
        res.receiver_cpu.peak_core_pct > res.sender_cpu.peak_core_pct * 0.8,
        "receiver {} vs sender {}",
        res.receiver_cpu.peak_core_pct,
        res.sender_cpu.peak_core_pct
    );
}

#[test]
fn intervals_recorded_per_second() {
    let cfg = amlight_lan(WorkloadSpec::single_stream(4));
    let res = Simulation::new(cfg).expect("config").run().expect("run");
    // 4 s run with 0 omit (short run): at least 3 full interval samples.
    assert!(res.flows[0].intervals.len() >= 3, "got {}", res.flows[0].intervals.len());
}
