//! Integration tests for the fault-injection subsystem and the
//! simulation watchdogs.
//!
//! Every fault class is driven through a real end-to-end run; the
//! assertions check that the *recovery* emerges from the modelled TCP
//! machinery (drops counted, throughput dented but nonzero, run
//! completing with the conservation check green).

use linuxhost::{HostConfig, KernelVersion, SysctlConfig};
use nethw::PathSpec;
use netsim::{FaultPlan, SimConfig, SimError, Simulation, WorkloadSpec};
use simcore::{BitRate, SimDuration};

fn lan(workload: WorkloadSpec) -> SimConfig {
    SimConfig {
        sender: HostConfig::amlight_intel(KernelVersion::L6_8),
        receiver: HostConfig::amlight_intel(KernelVersion::L6_8),
        path: PathSpec::lan("amlight-lan", BitRate::gbps(100.0)),
        workload,
    }
}

fn run(workload: WorkloadSpec) -> netsim::RunResult {
    Simulation::new(lan(workload)).expect("config").run().expect("run")
}

fn clean_gbps(secs: u64) -> f64 {
    run(WorkloadSpec::single_stream(secs)).total_goodput().as_gbps()
}

#[test]
fn bursty_loss_episode_drops_bursts_and_forces_retransmits() {
    let plan = FaultPlan::none().with_bursty_loss(
        SimDuration::from_secs(1),
        SimDuration::from_millis(600),
        0.5,
    );
    let res = run(WorkloadSpec::single_stream(3).with_faults(plan));
    assert!(res.fault_drops > 0, "GE bad state must destroy bursts");
    assert!(res.total_retr() > 0, "lost bursts must be retransmitted");
    assert!(
        res.total_goodput().as_gbps() > 1.0,
        "the flow must survive the episode: {:.1} Gbps",
        res.total_goodput().as_gbps()
    );
}

#[test]
fn link_flap_costs_throughput_then_recovers() {
    let clean = clean_gbps(3);
    let plan = FaultPlan::none()
        .with_link_flap(SimDuration::from_secs(1), SimDuration::from_millis(200));
    let res = run(WorkloadSpec::single_stream(3).with_faults(plan));
    let flapped = res.total_goodput().as_gbps();
    assert!(res.fault_drops > 0, "bursts in flight during the outage are lost");
    assert!(flapped < clean, "a 200 ms outage must cost throughput: {flapped:.1} vs {clean:.1}");
    assert!(flapped > clean * 0.3, "RTO + slow start must recover the flow: {flapped:.1}");
}

#[test]
fn receiver_stall_closes_the_window_and_reopens() {
    let clean = clean_gbps(3);
    let plan = FaultPlan::none()
        .with_receiver_stall(SimDuration::from_secs(1), SimDuration::from_millis(300));
    let res = run(WorkloadSpec::single_stream(3).with_faults(plan));
    let stalled = res.total_goodput().as_gbps();
    assert!(stalled < clean, "a 300 ms zero-window must cost throughput: {stalled:.1} vs {clean:.1}");
    assert!(stalled > 1.0, "the window update must restart the flow: {stalled:.1}");
}

#[test]
fn pause_storm_parks_arrivals_and_the_flow_survives() {
    let plan = FaultPlan::none()
        .with_pause_storm(SimDuration::from_secs(1), SimDuration::from_millis(300));
    let res = run(WorkloadSpec::single_stream(3).with_faults(plan));
    // Without 802.3x on the path, everything the storm holds upstream
    // is re-fed to an already-overrun ring when it clears.
    assert!(res.ring_drops > 0, "post-storm refeed must hit the ring counter");
    assert!(res.total_goodput().as_gbps() > 1.0, "flow must survive the storm");
}

#[test]
fn pause_buffer_overflow_is_counted_as_ring_drops() {
    // An 802.3x edge can park at most one advertised receive window
    // per socket. A storm XOFFs the edge for two sockets at once on a
    // stock-sysctl receiver (small rmem, so a small pause buffer): two
    // windows' worth of arrivals park against one window's capacity.
    // On a flow-controlled path ring overruns park instead of drop, so
    // every ring_drop here can only come from pause-buffer overflow.
    let plan = FaultPlan::none()
        .with_pause_storm(SimDuration::from_secs(1), SimDuration::from_millis(300));
    let cfg = SimConfig {
        sender: HostConfig::amlight_intel(KernelVersion::L6_8),
        receiver: HostConfig::amlight_intel(KernelVersion::L6_8)
            .with_sysctl(SysctlConfig::stock()),
        path: PathSpec::lan("amlight-lan", BitRate::gbps(100.0)).with_flow_control(),
        workload: WorkloadSpec::parallel(2, 3).with_faults(plan),
    };
    let res = Simulation::new(cfg).expect("config").run().expect("run");
    assert!(res.ring_drops > 0, "two windows must not fit one socket's pause buffer");
    assert!(res.total_goodput().as_gbps() > 1.0, "802.3x must still carry the flows");
}

#[test]
fn all_fault_classes_combined_still_conserve_bursts() {
    // finish() runs the burst-conservation check internally; an Ok
    // result from this kitchen-sink schedule is the assertion.
    let plan = FaultPlan::none()
        .with_bursty_loss(SimDuration::from_millis(500), SimDuration::from_millis(300), 0.4)
        .with_link_flap(SimDuration::from_millis(1200), SimDuration::from_millis(150))
        .with_receiver_stall(SimDuration::from_millis(1800), SimDuration::from_millis(200))
        .with_pause_storm(SimDuration::from_millis(2400), SimDuration::from_millis(150));
    let res = run(WorkloadSpec::parallel(2, 4).with_faults(plan));
    assert!(res.wire_sent > 0);
    assert!(res.fault_drops > 0);
    assert_eq!(res.flows.len(), 2);
}

#[test]
fn tiny_event_budget_trips_the_watchdog() {
    let wl = WorkloadSpec::single_stream(3).with_event_budget(1_000);
    let err = Simulation::new(lan(wl)).expect("config").run().unwrap_err();
    match err {
        SimError::Stalled { at: _, trip } => {
            assert!(trip.to_string().contains("budget"), "{trip}");
        }
        other => panic!("expected Stalled, got {other}"),
    }
}

#[test]
fn invalid_fault_schedule_is_a_config_error() {
    // Fault scheduled past the end of the run.
    let plan = FaultPlan::none()
        .with_link_flap(SimDuration::from_secs(60), SimDuration::from_millis(100));
    let err = match Simulation::new(lan(WorkloadSpec::single_stream(3).with_faults(plan))) {
        Err(e) => e,
        Ok(_) => panic!("schedule past the end of the run must be rejected"),
    };
    assert!(err.is_config_error(), "{err}");
    assert!(err.to_string().contains("link-flap"), "{err}");
}

#[test]
fn faulted_runs_stay_deterministic_per_seed() {
    let mk = |seed| {
        let plan = FaultPlan::none()
            .with_bursty_loss(SimDuration::from_secs(1), SimDuration::from_millis(400), 0.3);
        run(WorkloadSpec::single_stream(2).with_faults(plan).with_seed(seed))
    };
    let a = mk(11);
    let b = mk(11);
    assert_eq!(a.total_goodput().as_bps(), b.total_goodput().as_bps());
    assert_eq!(a.fault_drops, b.fault_drops);
    assert_eq!(a.events, b.events);
}
