//! Named metric registry: counters, gauges and histograms behind one
//! thread-safe [`Recorder`].
//!
//! The registry is *passive* — it never samples anything itself and
//! costs nothing to code that holds no handle to it. The harness keeps
//! the observer-neutrality contract (metrics-off runs bit-identical)
//! by allocating a `Recorder` only when metrics are enabled and
//! folding values in at run boundaries (repetition end, checkpoint
//! barriers, experiment summary), never inside the event loop.

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::hist::HdrHistogram;

/// Thread-safe registry of named counters, gauges and histograms.
///
/// Metric names should follow OpenMetrics conventions
/// (`[a-zA-Z_][a-zA-Z0-9_]*`, unit-suffixed, e.g.
/// `cache_hits`, `rep_wall_seconds`); the exposition layer renders
/// them verbatim.
#[derive(Debug, Default)]
pub struct Recorder {
    inner: Mutex<MetricsSnapshot>,
}

/// A point-in-time copy of every metric in a [`Recorder`] — the input
/// to [`crate::render_openmetrics`]. Maps are ordered so renderings
/// are deterministic.
#[derive(Debug, Default, Clone)]
pub struct MetricsSnapshot {
    /// `name → help text` for any metric that registered a description.
    pub help: BTreeMap<String, String>,
    /// Monotone counters.
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins gauges.
    pub gauges: BTreeMap<String, f64>,
    /// Value distributions.
    pub hists: BTreeMap<String, HdrHistogram>,
}

impl Recorder {
    /// A new, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, MetricsSnapshot> {
        self.inner.lock().expect("metrics registry poisoned")
    }

    /// Attach a `# HELP` description to a metric name.
    pub fn describe(&self, name: &str, help: &str) {
        self.lock().help.insert(name.to_string(), help.to_string());
    }

    /// Add `delta` to the counter `name` (created at 0), saturating.
    pub fn counter_add(&self, name: &str, delta: u64) {
        let mut inner = self.lock();
        let slot = inner.counters.entry(name.to_string()).or_insert(0);
        *slot = slot.saturating_add(delta);
    }

    /// Set gauge `name` to `value` (last write wins).
    pub fn gauge_set(&self, name: &str, value: f64) {
        self.lock().gauges.insert(name.to_string(), value);
    }

    /// Record one sample into histogram `name` (created empty).
    pub fn hist_record(&self, name: &str, value: u64) {
        self.lock().hists.entry(name.to_string()).or_default().record(value);
    }

    /// Merge a locally-built histogram into histogram `name` — the
    /// lossless fold parallel workers use (see [`HdrHistogram::merge`]).
    pub fn hist_merge(&self, name: &str, shard: &HdrHistogram) {
        self.lock().hists.entry(name.to_string()).or_default().merge(shard);
    }

    /// Copy out every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_saturate() {
        let r = Recorder::new();
        r.counter_add("hits", 2);
        r.counter_add("hits", 3);
        r.counter_add("full", u64::MAX);
        r.counter_add("full", 1);
        let snap = r.snapshot();
        assert_eq!(snap.counters["hits"], 5);
        assert_eq!(snap.counters["full"], u64::MAX);
    }

    #[test]
    fn gauges_last_write_wins() {
        let r = Recorder::new();
        r.gauge_set("depth", 10.0);
        r.gauge_set("depth", 4.5);
        assert_eq!(r.snapshot().gauges["depth"], 4.5);
    }

    #[test]
    fn hist_merge_equals_records() {
        let r = Recorder::new();
        let mut shard = HdrHistogram::new();
        for v in [1u64, 500, 90_000] {
            shard.record(v);
            r.hist_record("direct", v);
        }
        r.hist_merge("merged", &shard);
        let snap = r.snapshot();
        assert_eq!(snap.hists["direct"], snap.hists["merged"]);
    }

    #[test]
    fn snapshot_is_a_copy() {
        let r = Recorder::new();
        r.counter_add("c", 1);
        let snap = r.snapshot();
        r.counter_add("c", 1);
        assert_eq!(snap.counters["c"], 1);
        assert_eq!(r.snapshot().counters["c"], 2);
    }

    #[test]
    fn shared_across_threads() {
        let r = std::sync::Arc::new(Recorder::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let r = r.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        r.counter_add("n", 1);
                        r.hist_record("h", 7);
                    }
                });
            }
        });
        let snap = r.snapshot();
        assert_eq!(snap.counters["n"], 4000);
        assert_eq!(snap.hists["h"].count(), 4000);
    }
}
