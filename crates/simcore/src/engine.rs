//! Generic discrete-event queue.
//!
//! The simulator in `netsim` drives everything from a single
//! [`EventQueue`]: events are pushed with an absolute firing time and
//! popped in time order. Events scheduled for the same instant fire in
//! insertion order (FIFO), which keeps runs deterministic — a property
//! the whole reproduction depends on (every run is a pure function of
//! its seed).

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event queue over an arbitrary event payload type `E`.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: SimTime,
    pushed: u64,
    popped: u64,
}

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest time (then the
        // lowest sequence number) pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(1024),
            seq: 0,
            now: SimTime::ZERO,
            pushed: 0,
            popped: 0,
        }
    }

    /// Current simulated time: the firing time of the most recently
    /// popped event (zero before the first pop).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` to fire at absolute time `at`.
    ///
    /// Scheduling in the past is a logic error in the caller and panics
    /// in debug builds; in release it is clamped to `now` to keep the
    /// run monotonic.
    pub fn push(&mut self, at: SimTime, event: E) {
        debug_assert!(at >= self.now, "event scheduled in the past: {at} < {}", self.now);
        let at = at.max(self.now);
        self.heap.push(Entry { time: at, seq: self.seq, event });
        self.seq += 1;
        self.pushed += 1;
    }

    /// Pop the next event, advancing the clock to its firing time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.time >= self.now, "event queue time went backwards");
        self.now = entry.time;
        self.popped += 1;
        Some((entry.time, entry.event))
    }

    /// Firing time of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events pushed over the queue's lifetime (diagnostics).
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Total events popped over the queue's lifetime (diagnostics).
    pub fn total_popped(&self) -> u64 {
        self.popped
    }

    /// Iterate over the pending events in arbitrary order (used for
    /// end-of-run accounting, e.g. counting in-flight payloads).
    pub fn iter(&self) -> impl Iterator<Item = &E> {
        self.heap.iter().map(|e| &e.event)
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(30), "c");
        q.push(SimTime::from_nanos(10), "a");
        q.push(SimTime::from_nanos(20), "b");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn simultaneous_events_fire_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(7), ());
        q.push(SimTime::from_nanos(9), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now().as_nanos(), 7);
        q.pop();
        assert_eq!(q.now().as_nanos(), 9);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(10), 1u32);
        let (t, v) = q.pop().unwrap();
        assert_eq!(v, 1);
        // Schedule relative to the popped time.
        q.push(t + SimDuration::from_nanos(5), 2);
        q.push(t + SimDuration::from_nanos(1), 3);
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop().unwrap().1, 2);
    }

    #[test]
    fn counters_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(SimTime::from_nanos(1), ());
        q.push(SimTime::from_nanos(2), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time().unwrap().as_nanos(), 1);
        q.pop();
        assert_eq!(q.total_pushed(), 2);
        assert_eq!(q.total_popped(), 1);
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    #[cfg(debug_assertions)]
    fn scheduling_in_past_panics_in_debug() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(10), ());
        q.pop();
        q.push(SimTime::from_nanos(5), ());
    }
}
