//! `bench` — the perf-trajectory binary.
//!
//! Runs the canonical scenarios (fig05 single-stream, table3
//! multi-stream, and the 256-flow `ext_scale` fan-in) against the
//! discrete-event engine and emits `BENCH_<date>.json` with events/sec,
//! ns/event and wall-clock per scenario. Each committed file is one
//! point on the perf trajectory; CI uploads the JSON as an artifact.
//!
//! ```text
//! cargo run --release -p bench               # full effort, BENCH_<date>.json in .
//! BENCH_EFFORT=smoke cargo run --release -p bench   # CI smoke (short runs)
//! BENCH_OUT_DIR=target cargo run --release -p bench # choose the output dir
//! BENCH_ONLY=fanin cargo run --release -p bench     # substring-filter the cases
//! ```

use dtnperf::prelude::*;
use std::fmt::Write as _;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// One benchmarked scenario: a full `SimConfig` plus its display name.
struct Case {
    name: &'static str,
    cfg: SimConfig,
}

/// One measured scenario for the JSON report.
struct Measurement {
    name: &'static str,
    flows: usize,
    sim_secs: f64,
    events: u64,
    goodput_gbps: f64,
    wall_secs_min: f64,
    wall_secs_mean: f64,
    events_per_sec: f64,
    ns_per_event: f64,
}

fn cases(smoke: bool) -> Vec<Case> {
    // Smoke halves the simulated durations so CI stays fast; the
    // scenario *shapes* (hosts, paths, flow counts) never change, so a
    // smoke point is still comparable to another smoke point.
    let single_secs = if smoke { 2 } else { 4 };
    let multi_secs = if smoke { 2 } else { 4 };
    let fanin_secs = if smoke { 1 } else { 2 };

    let amlight = Testbeds::amlight_host(KernelVersion::L6_8);
    let dtn = Testbeds::prod_dtn_host();
    let fanin = Testbeds::fanin_host(256);

    vec![
        Case {
            name: "fig05_single_stream",
            cfg: SimConfig {
                sender: amlight.clone(),
                receiver: amlight,
                path: Testbeds::amlight_path(AmLightPath::Wan25ms),
                workload: WorkloadSpec::single_stream(single_secs)
                    .with_zerocopy()
                    .with_fq_rate(BitRate::gbps(50.0)),
            },
        },
        Case {
            name: "table3_multi_stream",
            cfg: SimConfig {
                sender: dtn.clone(),
                receiver: dtn,
                path: Testbeds::prod_dtn_path(),
                workload: WorkloadSpec::parallel(8, multi_secs)
                    .with_fq_rate(BitRate::gbps(10.0)),
            },
        },
        Case {
            name: "scale_fanin_256",
            cfg: SimConfig {
                sender: fanin.clone(),
                receiver: fanin,
                path: Testbeds::fanin_path(false),
                workload: WorkloadSpec::parallel(256, fanin_secs),
            },
        },
    ]
}

fn run_once(cfg: &SimConfig) -> RunResult {
    Simulation::new(cfg.clone())
        .expect("bench scenario must validate")
        .run()
        .expect("bench scenario must complete")
}

fn measure(case: &Case, warmup: usize, iters: usize) -> Measurement {
    for _ in 0..warmup {
        let _ = run_once(&case.cfg);
    }
    let mut walls = Vec::with_capacity(iters);
    let mut result = None;
    for _ in 0..iters {
        let start = Instant::now();
        let r = run_once(&case.cfg);
        walls.push(start.elapsed().as_secs_f64());
        result = Some(r);
    }
    let result = result.expect("at least one iteration");
    let wall_min = walls.iter().cloned().fold(f64::INFINITY, f64::min);
    let wall_mean = walls.iter().sum::<f64>() / walls.len() as f64;
    let events = result.events;
    Measurement {
        name: case.name,
        flows: case.cfg.workload.num_flows,
        sim_secs: case.cfg.workload.duration.as_secs_f64(),
        events,
        goodput_gbps: result.total_goodput().as_gbps(),
        wall_secs_min: wall_min,
        wall_secs_mean: wall_mean,
        events_per_sec: events as f64 / wall_min,
        ns_per_event: wall_min * 1e9 / events as f64,
    }
}

/// Civil date (UTC) from the system clock, without a date library:
/// days-since-epoch to year/month/day (Howard Hinnant's algorithm).
fn today_utc() -> String {
    let secs = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .expect("clock before 1970")
        .as_secs();
    let days = (secs / 86_400) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

fn render_json(date: &str, effort: &str, rows: &[Measurement]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": 1,");
    let _ = writeln!(out, "  \"date\": \"{date}\",");
    let _ = writeln!(out, "  \"effort\": \"{effort}\",");
    out.push_str("  \"scenarios\": [\n");
    for (i, m) in rows.iter().enumerate() {
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"name\": \"{}\",", m.name);
        let _ = writeln!(out, "      \"flows\": {},", m.flows);
        let _ = writeln!(out, "      \"sim_secs\": {:.1},", m.sim_secs);
        let _ = writeln!(out, "      \"events\": {},", m.events);
        let _ = writeln!(out, "      \"goodput_gbps\": {:.3},", m.goodput_gbps);
        let _ = writeln!(out, "      \"wall_secs_min\": {:.6},", m.wall_secs_min);
        let _ = writeln!(out, "      \"wall_secs_mean\": {:.6},", m.wall_secs_mean);
        let _ = writeln!(out, "      \"events_per_sec\": {:.0},", m.events_per_sec);
        let _ = writeln!(out, "      \"ns_per_event\": {:.1}", m.ns_per_event);
        out.push_str(if i + 1 == rows.len() { "    }\n" } else { "    },\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let effort = std::env::var("BENCH_EFFORT").unwrap_or_else(|_| "full".into());
    let smoke = effort == "smoke";
    let (warmup, iters) = if smoke { (0, 1) } else { (1, 3) };
    let out_dir = std::env::var("BENCH_OUT_DIR").unwrap_or_else(|_| ".".into());
    let date = today_utc();

    // Substring filter for profiling sessions targeting one scenario.
    let only = std::env::var("BENCH_ONLY").unwrap_or_default();

    let mut rows = Vec::new();
    for case in cases(smoke).into_iter().filter(|c| c.name.contains(&only)) {
        eprintln!("bench: running {} ({} warmup + {} iters)...", case.name, warmup, iters);
        let m = measure(&case, warmup, iters);
        eprintln!(
            "bench: {:<22} {:>12} events  {:>12.0} events/s  {:>7.1} ns/event  {:>8.3} s wall  {:>7.2} Gbps",
            m.name, m.events, m.events_per_sec, m.ns_per_event, m.wall_secs_min, m.goodput_gbps
        );
        rows.push(m);
    }

    let json = render_json(&date, &effort, &rows);
    std::fs::create_dir_all(&out_dir).expect("create bench output dir");
    let path = format!("{out_dir}/BENCH_{date}.json");
    std::fs::write(&path, &json).expect("write bench report");
    println!("{path}");
}
