//! `repro` — regenerate the paper's tables and figures from the
//! command line.
//!
//! ```text
//! repro list                 # what can be reproduced
//! repro fig05                # one figure
//! repro table1 table2        # several artefacts
//! repro all                  # everything (experiments run concurrently)
//! repro ablations            # the design-choice ablations
//! repro --trace out/ ext_telemetry  # + JSON-lines telemetry traces
//! REPRO_EFFORT=smoke repro fig05    # quick CI-sized run
//! REPRO_EFFORT=full  repro all      # paper-faithful 60 s × 10 reps
//! REPRO_CACHE_DIR=~/.cache/repro repro fig05  # content-addressed cache
//! REPRO_JOBS=4 repro all            # cap concurrent repetitions
//! ```
//!
//! The environment (`REPRO_EFFORT`, `REPRO_JOBS`, `REPRO_TRACE_DIR`,
//! `REPRO_CACHE_DIR`) is resolved exactly once here, into a
//! [`RunCtx`], and threaded explicitly through every experiment.

use harness::experiments::{ablations, ExperimentId};
use harness::{RunCache, RunCtx};
use std::path::PathBuf;
use std::sync::Arc;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut ctx = RunCtx::from_env();
    // `--trace <dir>`: per-repetition JSON-lines telemetry traces.
    if let Some(pos) = args.iter().position(|a| a == "--trace") {
        if pos + 1 >= args.len() {
            eprintln!("--trace needs a directory argument");
            std::process::exit(2);
        }
        let dir = args.remove(pos + 1);
        args.remove(pos);
        eprintln!("writing telemetry traces to {dir}/");
        ctx.trace_dir = Some(PathBuf::from(dir));
    }
    if args.is_empty() || args[0] == "help" || args[0] == "--help" {
        usage();
        return;
    }
    if args[0] == "list" {
        println!("available experiments (set REPRO_EFFORT=smoke|standard|full):");
        for id in ExperimentId::ALL {
            println!("  {}", id.name());
        }
        println!("  ablations");
        println!("  all");
        return;
    }
    for arg in &args {
        match arg.as_str() {
            "all" => {
                // Every experiment on its own coordination thread; the
                // process-wide gate bounds how many repetitions
                // actually simulate at once, so this is
                // work-conserving, not oversubscribed. Output is
                // collected per experiment and printed in paper order.
                let n = ExperimentId::ALL.len();
                let outputs =
                    harness::sched::run_tasks(true, n, |i| run_one(ExperimentId::ALL[i], &ctx));
                for out in outputs {
                    println!("{out}");
                }
                println!("{}", ablations::run_all_rendered(&ctx));
            }
            "ablations" => println!("{}", ablations::run_all_rendered(&ctx)),
            name => match ExperimentId::ALL.iter().find(|id| id.name() == name) {
                Some(&id) => println!("{}", run_one(id, &ctx)),
                None => {
                    eprintln!("unknown experiment '{name}' — try 'repro list'");
                    std::process::exit(2);
                }
            },
        }
    }
    // Scenarios that failed (watchdog, conservation, invalid config)
    // were reported as zeros inline; reflect them in the exit code so
    // CI and scripts notice.
    let failed = harness::experiments::common::failed_scenario_count();
    if failed > 0 {
        eprintln!("{failed} scenario(s) failed and were reported as zeros — see warnings above");
        std::process::exit(1);
    }
}

/// Run one experiment and return its rendered output; progress,
/// wall-clock and cache hit/miss counts go to stderr. Each experiment
/// gets a private handle onto the shared cache directory so its
/// hit/miss counters stay per-experiment even when `all` runs
/// experiments concurrently.
fn run_one(id: ExperimentId, ctx: &RunCtx) -> String {
    let mut ctx = ctx.clone();
    let cache = ctx.cache.as_ref().map(|c| {
        Arc::new(RunCache::new(c.dir().to_path_buf()).with_cost_model_version(c.cost_model_version()))
    });
    ctx.cache = cache.clone();
    eprintln!("running {} at {:?} effort...", id.name(), ctx.effort);
    let start = std::time::Instant::now();
    let artifact = id.run(&ctx);
    let rendered = artifact.render_ascii();
    // Open data: dump CSVs when REPRO_CSV_DIR is set (the paper
    // releases all collected data; so do we).
    if let Some(dir) = std::env::var_os("REPRO_CSV_DIR") {
        let dir = PathBuf::from(dir);
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("cannot create {}: {e}", dir.display());
        } else {
            for (name, csv) in artifact.to_csv_files(id.name()) {
                let path = dir.join(name);
                if let Err(e) = std::fs::write(&path, csv) {
                    eprintln!("cannot write {}: {e}", path.display());
                } else {
                    eprintln!("wrote {}", path.display());
                }
            }
        }
    }
    let secs = start.elapsed().as_secs_f64();
    match &cache {
        Some(c) => eprintln!(
            "({} done in {secs:.1}s; cache: {} hit(s), {} miss(es), {} store(s))\n",
            id.name(),
            c.stats.hits(),
            c.stats.misses(),
            c.stats.stores(),
        ),
        None => eprintln!("({} done in {secs:.1}s)\n", id.name()),
    }
    rendered
}

fn usage() {
    eprintln!(
        "usage: repro [--trace <dir>] [list | all | ablations | fig04..fig13 | table1..table3 | ext_hw_gro | ext_bigtcp_zc | ext_faults | ext_telemetry | ext_bottleneck | ext_scale]...\n\
         flags:       --trace <dir> to write per-repetition JSON-lines telemetry traces\n\
                      (plus .folded/.perf.txt cycle profiles per repetition)\n\
         environment: REPRO_EFFORT=smoke|standard|full (default standard)\n\
                      REPRO_JOBS=<n> to cap concurrently simulating repetitions\n\
                      REPRO_CACHE_DIR=<dir> content-addressed report cache\n\
                      REPRO_CSV_DIR=<dir> to also dump CSV data files\n\
                      REPRO_TRACE_DIR=<dir> same as --trace"
    );
}
