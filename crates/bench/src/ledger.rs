//! The perf ledger and the regression gate behind `bench --check`.
//!
//! Every `bench` run appends one [`LedgerRecord`] per scenario to an
//! append-only `BENCH_LEDGER.jsonl` (one JSON object per line), so the
//! repo accumulates an always-on perf trajectory alongside the
//! point-in-time `BENCH_<date>.json` snapshots. `bench --check
//! <baseline.json>` replays the scenarios and compares them against a
//! committed baseline snapshot, failing on
//!
//! * a >threshold ns/event regression (default 10%, see
//!   [`DEFAULT_THRESHOLD`]),
//! * any `past_clamps != 0` (an event scheduled before "now" is a
//!   correctness smell, never a tuning knob),
//! * an effort or event-count mismatch (the comparison would be
//!   apples-to-oranges; re-bless the baseline instead — see
//!   DESIGN.md §6g for the blessing policy).
//!
//! Everything here is hand-rolled over the repo's own JSON shape — the
//! workspace takes no serde dependency, and the only JSON this module
//! ever reads is the JSON this workspace writes.

use std::fmt::Write as _;

/// Relative ns/event growth over baseline that fails the gate: 0.10
/// means "more than 10% slower fails". Overridable per invocation via
/// `BENCH_CHECK_THRESHOLD` (a float, same semantics).
pub const DEFAULT_THRESHOLD: f64 = 0.10;

/// One scenario's perf point, as recorded in a `BENCH_<date>.json`
/// snapshot and in one `BENCH_LEDGER.jsonl` line.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioPoint {
    /// Scenario id (e.g. `scale_fanin_256`).
    pub scenario: String,
    /// Total events dispatched in one run (deterministic per scenario
    /// shape — a mismatch means the workload itself changed).
    pub events: u64,
    /// Wall nanoseconds per dispatched event (min over iterations).
    pub ns_per_event: f64,
    /// Events per wall second (min-wall iteration).
    pub events_per_sec: f64,
    /// `EventQueue::past_clamps` after the run — events that had to be
    /// clamped forward to "now". Must be zero; gated hard.
    pub past_clamps: u64,
}

/// One appended ledger line: a [`ScenarioPoint`] plus the run context
/// that makes points comparable months later.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerRecord {
    /// Civil date (UTC) of the run, `YYYY-MM-DD`.
    pub date: String,
    /// Short commit hash of the working tree (`unknown` outside git).
    pub commit: String,
    /// Effort preset the run used (`full` or `smoke`).
    pub effort: String,
    /// The measured point.
    pub point: ScenarioPoint,
}

impl LedgerRecord {
    /// Render as one JSONL line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"date\":\"{}\",\"commit\":\"{}\",\"effort\":\"{}\",\"scenario\":\"{}\",\
             \"events\":{},\"ns_per_event\":{:.1},\"events_per_sec\":{:.0},\"past_clamps\":{}}}",
            self.date,
            self.commit,
            self.effort,
            self.point.scenario,
            self.point.events,
            self.point.ns_per_event,
            self.point.events_per_sec,
            self.point.past_clamps,
        );
        out
    }
}

/// A parsed `BENCH_<date>.json` snapshot (the gate's baseline).
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Effort preset the snapshot was taken at.
    pub effort: String,
    /// Per-scenario points, in file order.
    pub scenarios: Vec<ScenarioPoint>,
}

/// Parse a `BENCH_<date>.json` snapshot produced by this repo's bench
/// binary (see `render_json` there). This is a shape-specific reader,
/// not a general JSON parser: it scans `"key": value` pairs and opens a
/// new scenario at each `"name"` key. Pre-ledger snapshots that lack
/// `past_clamps` read as zero.
pub fn parse_snapshot(text: &str) -> Result<Snapshot, String> {
    let mut effort = None;
    let mut scenarios: Vec<ScenarioPoint> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim().trim_end_matches(',');
        let Some((key, value)) = split_pair(line) else { continue };
        let fail = |what: &str| Err(format!("line {}: {what}: {raw:?}", lineno + 1));
        match key {
            "effort" => effort = Some(unquote(value)?.to_string()),
            "name" => scenarios.push(ScenarioPoint {
                scenario: unquote(value)?.to_string(),
                events: 0,
                ns_per_event: 0.0,
                events_per_sec: 0.0,
                past_clamps: 0,
            }),
            "events" | "ns_per_event" | "events_per_sec" | "past_clamps" => {
                let Some(cur) = scenarios.last_mut() else {
                    return fail("scenario field before any \"name\"");
                };
                let Ok(num) = value.parse::<f64>() else {
                    return fail("unparseable number");
                };
                match key {
                    "events" => cur.events = num as u64,
                    "ns_per_event" => cur.ns_per_event = num,
                    "events_per_sec" => cur.events_per_sec = num,
                    _ => cur.past_clamps = num as u64,
                }
            }
            _ => {}
        }
    }
    Ok(Snapshot {
        effort: effort.ok_or("snapshot has no \"effort\" key")?,
        scenarios,
    })
}

/// Split one `"key": value` line into `(key, value)`.
fn split_pair(line: &str) -> Option<(&str, &str)> {
    let rest = line.strip_prefix('"')?;
    let (key, rest) = rest.split_once('"')?;
    let value = rest.trim().strip_prefix(':')?.trim();
    Some((key, value))
}

/// Strip the quotes off a JSON string value.
fn unquote(value: &str) -> Result<&str, String> {
    value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .ok_or_else(|| format!("expected a quoted string, got {value:?}"))
}

/// The gate verdict for one scenario.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// Within threshold of baseline (relative ns/event delta attached,
    /// negative = faster).
    Pass(f64),
    /// ns/event grew past the threshold.
    Regressed {
        /// Baseline ns/event.
        baseline: f64,
        /// Current ns/event.
        current: f64,
        /// Relative growth (0.17 = 17% slower).
        delta: f64,
    },
    /// `past_clamps` was non-zero — a correctness gate, not a perf one.
    PastClamps(u64),
    /// Event count differs from baseline: the scenario shape changed
    /// and ns/event is no longer comparable. Re-bless the baseline.
    ShapeChanged {
        /// Baseline event count.
        baseline: u64,
        /// Current event count.
        current: u64,
    },
    /// Scenario is in the current run but not the baseline.
    NotInBaseline,
}

impl Verdict {
    /// Does this verdict fail the gate?
    pub fn failed(&self) -> bool {
        !matches!(self, Verdict::Pass(_))
    }
}

/// Compare a run against the baseline snapshot. Returns one
/// `(scenario, verdict)` per *current* scenario: the gate checks what
/// ran, and a baseline scenario missing from the run (e.g. a
/// `BENCH_ONLY` filter) is simply not judged.
pub fn check(baseline: &Snapshot, effort: &str, current: &[ScenarioPoint], threshold: f64) -> Vec<(String, Verdict)> {
    current
        .iter()
        .map(|point| {
            let verdict = judge(baseline, effort, point, threshold);
            (point.scenario.clone(), verdict)
        })
        .collect()
}

fn judge(baseline: &Snapshot, effort: &str, point: &ScenarioPoint, threshold: f64) -> Verdict {
    if point.past_clamps != 0 {
        return Verdict::PastClamps(point.past_clamps);
    }
    let Some(base) = baseline.scenarios.iter().find(|s| s.scenario == point.scenario) else {
        return Verdict::NotInBaseline;
    };
    if baseline.effort != effort {
        // Different effort presets simulate different durations; the
        // event counts (and cache behaviour) aren't comparable.
        return Verdict::ShapeChanged { baseline: base.events, current: point.events };
    }
    if base.events != point.events {
        return Verdict::ShapeChanged { baseline: base.events, current: point.events };
    }
    let delta = point.ns_per_event / base.ns_per_event - 1.0;
    if delta > threshold {
        Verdict::Regressed { baseline: base.ns_per_event, current: point.ns_per_event, delta }
    } else {
        Verdict::Pass(delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(name: &str, events: u64, ns: f64, clamps: u64) -> ScenarioPoint {
        ScenarioPoint {
            scenario: name.into(),
            events,
            ns_per_event: ns,
            events_per_sec: 1e9 / ns,
            past_clamps: clamps,
        }
    }

    fn baseline() -> Snapshot {
        Snapshot {
            effort: "smoke".into(),
            scenarios: vec![point("fanin", 1_000_000, 100.0, 0), point("single", 500_000, 80.0, 0)],
        }
    }

    #[test]
    fn ledger_line_is_one_json_object() {
        let rec = LedgerRecord {
            date: "2026-08-09".into(),
            commit: "abc1234".into(),
            effort: "full".into(),
            point: point("fanin", 3_003_496, 152.043, 0),
        };
        let line = rec.to_jsonl();
        assert!(!line.contains('\n'));
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"scenario\":\"fanin\""));
        assert!(line.contains("\"ns_per_event\":152.0"));
        assert!(line.contains("\"past_clamps\":0"));
    }

    #[test]
    fn snapshot_roundtrips_through_parser() {
        let text = r#"{
  "schema": 1,
  "date": "2026-08-09",
  "effort": "smoke",
  "scenarios": [
    {
      "name": "fanin",
      "flows": 256,
      "sim_secs": 1.0,
      "events": 1000000,
      "goodput_gbps": 97.120,
      "wall_secs_min": 0.100000,
      "wall_secs_mean": 0.110000,
      "events_per_sec": 10000000,
      "past_clamps": 0,
      "ns_per_event": 100.0
    }
  ]
}
"#;
        let snap = parse_snapshot(text).expect("parses");
        assert_eq!(snap.effort, "smoke");
        assert_eq!(snap.scenarios.len(), 1);
        assert_eq!(snap.scenarios[0], point("fanin", 1_000_000, 100.0, 0));
    }

    #[test]
    fn pre_ledger_snapshot_without_past_clamps_reads_zero() {
        let text = "{\n\"effort\": \"full\",\n\"scenarios\": [\n{\n\"name\": \"x\",\n\"events\": 10,\n\"events_per_sec\": 5,\n\"ns_per_event\": 2.0\n}\n]\n}\n";
        let snap = parse_snapshot(text).expect("parses");
        assert_eq!(snap.scenarios[0].past_clamps, 0);
    }

    #[test]
    fn snapshot_without_effort_is_rejected() {
        assert!(parse_snapshot("{\n\"schema\": 1\n}\n").is_err());
    }

    #[test]
    fn within_threshold_passes() {
        let verdicts =
            check(&baseline(), "smoke", &[point("fanin", 1_000_000, 109.0, 0)], DEFAULT_THRESHOLD);
        assert_eq!(verdicts.len(), 1);
        assert!(!verdicts[0].1.failed(), "{verdicts:?}");
    }

    #[test]
    fn regression_over_threshold_fails() {
        let verdicts =
            check(&baseline(), "smoke", &[point("fanin", 1_000_000, 111.0, 0)], DEFAULT_THRESHOLD);
        match &verdicts[0].1 {
            Verdict::Regressed { delta, .. } => assert!((delta - 0.11).abs() < 1e-9),
            other => panic!("expected Regressed, got {other:?}"),
        }
    }

    #[test]
    fn improvement_passes_with_negative_delta() {
        let verdicts =
            check(&baseline(), "smoke", &[point("fanin", 1_000_000, 60.0, 0)], DEFAULT_THRESHOLD);
        match &verdicts[0].1 {
            Verdict::Pass(delta) => assert!(*delta < -0.3),
            other => panic!("expected Pass, got {other:?}"),
        }
    }

    #[test]
    fn past_clamps_fail_even_when_fast() {
        let verdicts =
            check(&baseline(), "smoke", &[point("fanin", 1_000_000, 10.0, 3)], DEFAULT_THRESHOLD);
        assert_eq!(verdicts[0].1, Verdict::PastClamps(3));
    }

    #[test]
    fn event_count_mismatch_demands_reblessing() {
        let verdicts =
            check(&baseline(), "smoke", &[point("fanin", 999_999, 100.0, 0)], DEFAULT_THRESHOLD);
        assert!(matches!(verdicts[0].1, Verdict::ShapeChanged { .. }));
    }

    #[test]
    fn effort_mismatch_demands_reblessing() {
        let verdicts =
            check(&baseline(), "full", &[point("fanin", 1_000_000, 100.0, 0)], DEFAULT_THRESHOLD);
        assert!(matches!(verdicts[0].1, Verdict::ShapeChanged { .. }));
    }

    #[test]
    fn unknown_scenario_is_flagged() {
        let verdicts =
            check(&baseline(), "smoke", &[point("brand_new", 5, 1.0, 0)], DEFAULT_THRESHOLD);
        assert_eq!(verdicts[0].1, Verdict::NotInBaseline);
    }
}
