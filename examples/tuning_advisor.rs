//! Audit a host configuration against the paper's §V checklist —
//! then *verify the advice* by simulating before/after.
//!
//! ```text
//! cargo run --release --example tuning_advisor
//! ```

use dtnperf::linuxhost::advisor::{advise, Intent};
use dtnperf::prelude::*;

fn main() {
    // A fresh Ubuntu 22.04 box somebody racked as a "DTN".
    let mut host = HostConfig::untuned(
        CpuArch::IntelXeon6346,
        NicModel::ConnectX5,
        KernelVersion::L5_15,
    );
    let intent = Intent::benchmarking_100g();

    println!("auditing '{}' for 100G single-flow benchmarking...\n", host.name);
    for rec in advise(&host, &intent) {
        println!("  {rec}");
    }

    // Does following the advice actually pay? Measure before/after on
    // the 104 ms path.
    let path = Testbeds::amlight_path(AmLightPath::Wan104ms);
    let opts = Iperf3Opts::new(12).omit(3);
    let before = iperf3_run(&host, &host, &path, &opts).expect("run");

    // Apply everything the advisor asked for.
    host.sysctl = SysctlConfig::paper_tuned_with_optmem(SysctlConfig::optmem_3_25_mb());
    host.cores = CoreAllocation::paper_tuned();
    host.iommu_pt = true;
    host.performance_governor = true;
    host.smt_off = true;
    host.kernel = KernelVersion::L6_8;
    let remaining = advise(&host, &intent);
    let zc_opts = opts.clone().zerocopy().fq_rate(BitRate::gbps(50.0));
    let after = iperf3_run(&host, &host, &path, &zc_opts).expect("run");

    println!("\nbefore: {:.2} Gbps   (untuned, default iperf3)", before.sum_bitrate().as_gbps());
    println!(
        "after:  {:.2} Gbps   (all advice applied + zerocopy + 50G pacing)",
        after.sum_bitrate().as_gbps()
    );
    println!("remaining findings: {}", remaining.len());
    for rec in remaining {
        println!("  {rec}");
    }
}
