//! Linux kernel versions and their networking feature gates.
//!
//! The paper compares the stock Ubuntu 22.04 kernel (5.15), the HWE
//! kernel (6.5) and the Ubuntu 24.04 kernel (6.8); the AmLight
//! baremetal hosts run Debian 11 (5.10), and §V-C previews 6.11
//! features (hardware GRO on ConnectX-7).

use std::fmt;

/// A Linux kernel version used in the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum KernelVersion {
    /// Debian 11 default (AmLight baremetal hosts).
    L5_10,
    /// Ubuntu 22.04 default.
    L5_15,
    /// Ubuntu 22.04 HWE kernel.
    L6_5,
    /// Ubuntu 24.04 default / 22.04 edge HWE.
    L6_8,
    /// Future-work kernel with mlx5 hardware GRO (SHAMPO) re-enabled.
    L6_11,
}

impl KernelVersion {
    /// All versions, oldest first.
    pub const ALL: [KernelVersion; 5] = [
        KernelVersion::L5_10,
        KernelVersion::L5_15,
        KernelVersion::L6_5,
        KernelVersion::L6_8,
        KernelVersion::L6_11,
    ];

    /// The three versions the paper's kernel comparison covers (§III-C).
    pub const STUDY: [KernelVersion; 3] =
        [KernelVersion::L5_15, KernelVersion::L6_5, KernelVersion::L6_8];

    /// `(major, minor)` pair.
    pub fn number(self) -> (u32, u32) {
        match self {
            KernelVersion::L5_10 => (5, 10),
            KernelVersion::L5_15 => (5, 15),
            KernelVersion::L6_5 => (6, 5),
            KernelVersion::L6_8 => (6, 8),
            KernelVersion::L6_11 => (6, 11),
        }
    }

    /// MSG_ZEROCOPY has been available since 4.17 — all studied kernels.
    pub fn supports_msg_zerocopy(self) -> bool {
        true
    }

    /// BIG TCP for IPv6 landed in 5.19.
    pub fn supports_big_tcp_ipv6(self) -> bool {
        self >= KernelVersion::L6_5
    }

    /// BIG TCP for IPv4 landed in 6.3 (§II-C). The paper found no
    /// IPv4/IPv6 difference and reports IPv4.
    pub fn supports_big_tcp_ipv4(self) -> bool {
        self >= KernelVersion::L6_5
    }

    /// mlx5 hardware GRO (SHAMPO, header/data split) usable from 6.11.
    pub fn supports_hw_gro(self) -> bool {
        self >= KernelVersion::L6_11
    }

    /// Whether `CONFIG_MAX_SKB_FRAGS` is a tunable build option
    /// (needed at 45 to combine BIG TCP with MSG_ZEROCOPY, §II-C).
    pub fn supports_max_skb_frags_config(self) -> bool {
        self >= KernelVersion::L6_5
    }

    /// Human-readable version string.
    pub fn as_str(self) -> &'static str {
        match self {
            KernelVersion::L5_10 => "5.10",
            KernelVersion::L5_15 => "5.15",
            KernelVersion::L6_5 => "6.5",
            KernelVersion::L6_8 => "6.8",
            KernelVersion::L6_11 => "6.11",
        }
    }
}

impl fmt::Display for KernelVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_follows_release_order() {
        assert!(KernelVersion::L5_10 < KernelVersion::L5_15);
        assert!(KernelVersion::L5_15 < KernelVersion::L6_5);
        assert!(KernelVersion::L6_5 < KernelVersion::L6_8);
        assert!(KernelVersion::L6_8 < KernelVersion::L6_11);
    }

    #[test]
    fn feature_gates() {
        assert!(KernelVersion::L5_15.supports_msg_zerocopy());
        assert!(!KernelVersion::L5_15.supports_big_tcp_ipv4());
        assert!(KernelVersion::L6_5.supports_big_tcp_ipv4());
        assert!(KernelVersion::L6_8.supports_big_tcp_ipv6());
        assert!(!KernelVersion::L6_8.supports_hw_gro());
        assert!(KernelVersion::L6_11.supports_hw_gro());
    }

    #[test]
    fn display_matches_paper_names() {
        assert_eq!(KernelVersion::L5_15.to_string(), "5.15");
        assert_eq!(KernelVersion::L6_8.to_string(), "6.8");
    }

    #[test]
    fn study_set_matches_section_iii_c() {
        assert_eq!(KernelVersion::STUDY.len(), 3);
        assert!(KernelVersion::STUDY.contains(&KernelVersion::L5_15));
        assert!(KernelVersion::STUDY.contains(&KernelVersion::L6_5));
        assert!(KernelVersion::STUDY.contains(&KernelVersion::L6_8));
    }
}
