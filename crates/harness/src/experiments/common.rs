//! Shared helpers for the experiment definitions.

use crate::ctx::RunCtx;
use crate::render::{FigureData, Series};
use crate::runner::{TestHarness, TestSummary};
use crate::scenario::Scenario;
use simcore::{RunningStats, Summary};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Scenarios that failed outright and were reported as zeros, since
/// process start. The `repro` binary uses this for its exit code.
static FAILED_SCENARIOS: AtomicUsize = AtomicUsize::new(0);

/// How many scenarios have degraded to zeros so far.
pub fn failed_scenario_count() -> usize {
    FAILED_SCENARIOS.load(Ordering::Relaxed)
}

/// Run one scenario; a failed scenario degrades to an all-zero
/// [`TestSummary`] (with a warning on stderr) so one broken cell does
/// not tear down a whole figure or table. Degradations are counted in
/// [`failed_scenario_count`].
pub fn run_or_empty(harness: &TestHarness, sc: &Scenario) -> TestSummary {
    harness.run(sc).unwrap_or_else(|e| {
        FAILED_SCENARIOS.fetch_add(1, Ordering::Relaxed);
        eprintln!("warning: {e}; reporting zeros for '{}'", sc.label);
        TestSummary::empty(sc.label.as_str())
    })
}

/// Record a scenario whose *result* was wrong (e.g. a bottleneck
/// verdict that contradicts the narrative it reproduces) even though
/// the run itself survived. Counts toward [`failed_scenario_count`],
/// so the `repro` binary exits non-zero.
pub fn record_scenario_failure(label: &str, why: impl std::fmt::Display) {
    FAILED_SCENARIOS.fetch_add(1, Ordering::Relaxed);
    eprintln!("warning: scenario '{label}': {why}");
}

/// Run a whole batch of scenarios through one harness; each failed
/// scenario degrades to zeros exactly like [`run_or_empty`]. The batch
/// flattens to `(scenario, repetition)` jobs on the bounded pool, so
/// the entire grid runs work-conservingly instead of scenario by
/// scenario.
pub fn run_batch_or_empty(harness: &TestHarness, scenarios: &[Scenario]) -> Vec<TestSummary> {
    harness
        .run_batch(scenarios)
        .into_iter()
        .zip(scenarios)
        .map(|(result, sc)| {
            result.unwrap_or_else(|e| {
                FAILED_SCENARIOS.fetch_add(1, Ordering::Relaxed);
                eprintln!("warning: {e}; reporting zeros for '{}'", sc.label);
                TestSummary::empty(sc.label.as_str())
            })
        })
        .collect()
}

/// Run a grid of scenarios (series × x-positions) and assemble a
/// throughput figure. `grid[s][x]` is the scenario for series `s` at
/// x-position `x`. The whole grid is submitted as one batch.
pub fn throughput_figure(
    title: &str,
    x_labels: Vec<String>,
    grid: Vec<(String, Vec<Scenario>)>,
    ctx: &RunCtx,
) -> FigureData {
    let harness = ctx.harness();
    let flat: Vec<Scenario> =
        grid.iter().flat_map(|(_, scenarios)| scenarios.iter().cloned()).collect();
    let mut summaries = run_batch_or_empty(&harness, &flat).into_iter();
    let mut fig = FigureData::new(title, "Gbps", x_labels);
    for (name, scenarios) in grid {
        let points: Vec<Summary> =
            scenarios.iter().map(|_| summaries.next().expect("summary").throughput_gbps).collect();
        fig.push_series(name, points);
    }
    fig
}

/// Run one row of scenarios and return the summaries (for tables).
pub fn run_row(scenarios: &[Scenario], ctx: &RunCtx) -> Vec<TestSummary> {
    run_batch_or_empty(&ctx.harness(), scenarios)
}

/// Build a CPU-utilisation figure from already-run summaries: for each
/// series the sender and receiver combined percentages become two
/// sub-series ("<name> TX cores" / "<name> RX cores"), matching the
/// paper's Figs. 7–8 presentation.
pub fn cpu_figure(title: &str, x_labels: Vec<String>, rows: Vec<(String, Vec<TestSummary>)>) -> FigureData {
    let mut fig = FigureData::new(title, "%", x_labels);
    for (name, summaries) in &rows {
        fig.series.push(Series {
            name: format!("{name} TX cores (sender)"),
            points: summaries.iter().map(|s| s.sender_cpu_pct).collect(),
        });
        fig.series.push(Series {
            name: format!("{name} RX cores (receiver)"),
            points: summaries.iter().map(|s| s.receiver_cpu_pct).collect(),
        });
    }
    fig
}

/// A constant series (the "Max Tput" line in Fig. 10).
pub fn constant_series(value_gbps: f64, len: usize) -> Vec<Summary> {
    let mut stats = RunningStats::new();
    stats.push(value_gbps);
    vec![stats.summary(); len]
}
