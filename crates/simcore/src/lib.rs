//! `simcore` — foundation for the discrete-event network simulation.
//!
//! This crate provides the building blocks shared by every other crate in
//! the workspace:
//!
//! * [`time`] — nanosecond-resolution simulated time ([`SimTime`],
//!   [`SimDuration`]).
//! * [`units`] — strongly-typed byte counts and bit rates ([`Bytes`],
//!   [`BitRate`]) with the conversions the rest of the simulator needs
//!   (serialisation delays, bandwidth-delay products, …).
//! * [`engine`] — a generic discrete-event queue ([`EventQueue`]) with
//!   deterministic FIFO tie-breaking for simultaneous events.
//! * [`rng`] — a seedable random source ([`SimRng`]) so that every
//!   simulation run is exactly reproducible from its seed.
//! * [`stats`] — streaming statistics ([`RunningStats`], [`Summary`])
//!   matching what the paper's harness reports (mean / stdev / min / max).
//! * [`series`] — time-indexed sample storage ([`TimeSeries`]) for the
//!   `ss`/`ethtool`/`mpstat`-style telemetry the harness samples on a
//!   tick (§III-G).
//! * [`watchdog`] — event-loop liveness guards ([`Watchdog`]) that turn
//!   a livelocked or runaway simulation into a structured error.
//! * [`ledger`] — a per-core, per-stage busy-time matrix
//!   ([`CycleLedger`]) backing the bottleneck-attribution profiles.
//! * [`checkpoint`] — snapshot cadence policy ([`CheckpointPolicy`],
//!   [`Checkpointer`]) for the barrier-safe checkpoint/resume contract
//!   the domain layers implement on top of `Clone`-able engine state.
//! * [`canon`] — canonical configuration serialization and stable
//!   FNV-1a fingerprints ([`Canon`], [`Canonicalize`]), from which the
//!   harness derives position-free per-repetition seeds and
//!   content-addressed cache keys.
//!
//! Nothing in this crate knows about TCP, Linux, or NICs; it is the
//! domain-neutral substrate.

#![deny(unreachable_pub)]
// Recoverable failures carry typed errors; every surviving `expect`
// states its infallibility argument (tests are exempt).
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod canon;
pub mod checkpoint;
pub mod engine;
pub mod ledger;
pub mod rng;
pub mod series;
pub mod stats;
pub mod time;
pub mod units;
pub mod watchdog;

pub use canon::{derive_seed, fnv1a_64, Canon, Canonicalize};
pub use checkpoint::{CheckpointPolicy, Checkpointer};
pub use engine::{EventQueue, QueueHealth, TimerId};
pub use ledger::CycleLedger;
pub use rng::SimRng;
pub use series::TimeSeries;
pub use stats::{RunningStats, Summary};
pub use time::{SimDuration, SimTime};
pub use units::{BitRate, Bytes};
pub use watchdog::{Watchdog, WatchdogTrip};
