//! `repro` — regenerate the paper's tables and figures from the
//! command line.
//!
//! ```text
//! repro list                 # what can be reproduced
//! repro fig05                # one figure
//! repro table1 table2        # several artefacts
//! repro all                  # everything (long)
//! repro ablations            # the design-choice ablations
//! repro --trace out/ ext_telemetry  # + JSON-lines telemetry traces
//! REPRO_EFFORT=smoke repro fig05    # quick CI-sized run
//! REPRO_EFFORT=full  repro all      # paper-faithful 60 s × 10 reps
//! ```

use harness::experiments::{ablations, ExperimentId};
use harness::Effort;
use std::path::PathBuf;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // `--trace <dir>`: per-repetition JSON-lines telemetry traces.
    // Plumbed as REPRO_TRACE_DIR because experiments build their own
    // harnesses internally (same pattern as REPRO_CSV_DIR/REPRO_EFFORT).
    if let Some(pos) = args.iter().position(|a| a == "--trace") {
        if pos + 1 >= args.len() {
            eprintln!("--trace needs a directory argument");
            std::process::exit(2);
        }
        let dir = args.remove(pos + 1);
        args.remove(pos);
        std::env::set_var("REPRO_TRACE_DIR", &dir);
        eprintln!("writing telemetry traces to {dir}/");
    }
    let effort = Effort::from_env();
    if args.is_empty() || args[0] == "help" || args[0] == "--help" {
        usage();
        return;
    }
    if args[0] == "list" {
        println!("available experiments (set REPRO_EFFORT=smoke|standard|full):");
        for id in ExperimentId::ALL {
            println!("  {}", id.name());
        }
        println!("  ablations");
        println!("  all");
        return;
    }
    for arg in &args {
        match arg.as_str() {
            "all" => {
                for id in ExperimentId::ALL {
                    run_one(id, effort);
                }
                println!("{}", ablations::run_all_rendered(effort));
            }
            "ablations" => println!("{}", ablations::run_all_rendered(effort)),
            name => match ExperimentId::ALL.iter().find(|id| id.name() == name) {
                Some(&id) => run_one(id, effort),
                None => {
                    eprintln!("unknown experiment '{name}' — try 'repro list'");
                    std::process::exit(2);
                }
            },
        }
    }
    // Scenarios that failed (watchdog, conservation, invalid config)
    // were reported as zeros inline; reflect them in the exit code so
    // CI and scripts notice.
    let failed = harness::experiments::common::failed_scenario_count();
    if failed > 0 {
        eprintln!("{failed} scenario(s) failed and were reported as zeros — see warnings above");
        std::process::exit(1);
    }
}

fn run_one(id: ExperimentId, effort: Effort) {
    eprintln!("running {} at {effort:?} effort...", id.name());
    let start = std::time::Instant::now();
    let artifact = id.run(effort);
    println!("{}", artifact.render_ascii());
    // Open data: dump CSVs when REPRO_CSV_DIR is set (the paper
    // releases all collected data; so do we).
    if let Some(dir) = std::env::var_os("REPRO_CSV_DIR") {
        let dir = PathBuf::from(dir);
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("cannot create {}: {e}", dir.display());
        } else {
            for (name, csv) in artifact.to_csv_files(id.name()) {
                let path = dir.join(name);
                if let Err(e) = std::fs::write(&path, csv) {
                    eprintln!("cannot write {}: {e}", path.display());
                } else {
                    eprintln!("wrote {}", path.display());
                }
            }
        }
    }
    eprintln!("({} done in {:.1}s)\n", id.name(), start.elapsed().as_secs_f64());
}

fn usage() {
    eprintln!(
        "usage: repro [--trace <dir>] [list | all | ablations | fig04..fig13 | table1..table3 | ext_hw_gro | ext_bigtcp_zc | ext_faults | ext_telemetry | ext_bottleneck]...\n\
         flags:       --trace <dir> to write per-repetition JSON-lines telemetry traces\n\
                      (plus .folded/.perf.txt cycle profiles per repetition)\n\
         environment: REPRO_EFFORT=smoke|standard|full (default standard)\n\
                      REPRO_CSV_DIR=<dir> to also dump CSV data files\n\
                      REPRO_TRACE_DIR=<dir> same as --trace"
    );
}
