//! `ext_cc_matrix` — the congestion-control variant matrix.
//!
//! ROADMAP item 4: sweep every `CcAlgorithm` across RTT {1, 25, 100,
//! 200 ms} × Gilbert–Elliott bursty loss (the PR 1 fault plan) ×
//! switch-buffer depth on the ESnet fabric, one goodput/retransmit row
//! per cell, with the per-interval steady-state column folded through
//! the `obs` interval machinery (`metrics::aggregate_report_intervals`).
//!
//! The cells then feed *ordering verdicts* — the published rankings
//! from the high-BDP variant study (arXiv:1610.03534) and the paper's
//! §IV-F observations, the same contract `tests/cc_matrix_golden.rs`
//! pins at the unit level:
//!
//! * all variants converge on the clean 1 ms deep-buffered LAN;
//! * H-TCP ramps at least as fast as CUBIC at 200 ms RTT;
//! * BBR crosses above CUBIC under bursty loss at high RTT;
//! * loss-blind BBRv1 retransmits at least as much as bounded BBRv3.
//!
//! A failed ordering renders `MISMATCH` and counts as a failed
//! scenario, so `repro ext_cc_matrix` exits non-zero on a ranking
//! regression. The sweep's variant set can be narrowed with
//! `REPRO_CC_ONLY=<name>[,<name>…]`; unknown names surface as the
//! typed [`ScenarioError::Invalid`] (never a silent fallback).

use crate::ctx::RunCtx;
use crate::experiments::common;
use crate::metrics::aggregate_report_intervals;
use crate::render::TableData;
use crate::runner::ScenarioError;
use crate::scenario::Scenario;
use crate::testbeds::Testbeds;
use iperf3sim::Iperf3Opts;
use linuxhost::KernelVersion;
use nethw::PathSpec;
use netsim::FaultPlan;
use simcore::{BitRate, Bytes, SimDuration};
use std::collections::HashMap;
use tcpstack::CcAlgorithm;

/// RTT axis of the sweep (milliseconds).
pub const RTT_AXIS_MS: [u64; 4] = [1, 25, 100, 200];

/// Bottleneck rate of the matrix fabric. 10 G keeps one cell's event
/// count small enough that the 64-cell grid stays CI-sized while the
/// 200 ms × 10 G BDP (250 MB) is still deep enough to separate the
/// variants.
const MATRIX_RATE_GBPS: f64 = 10.0;

/// Per-burst drop probability in the Gilbert–Elliott bad state (the
/// good/bad sojourn times come from the PR 1 fault-plan defaults).
const GE_LOSS_BAD: f64 = 0.02;

/// One cell of the sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CellKey {
    cc: CcAlgorithm,
    rtt_ms: u64,
    lossy: bool,
    shallow: bool,
}

impl CellKey {
    fn label(self) -> String {
        format!(
            "ccmatrix {} {}ms {} {}",
            self.cc.name(),
            self.rtt_ms,
            if self.lossy { "ge-loss" } else { "clean" },
            if self.shallow { "shallow" } else { "deep" },
        )
    }
}

/// Measured outcome of one cell.
#[derive(Debug, Clone, Copy)]
struct CellResult {
    gbps: f64,
    retr: f64,
}

/// The matrix path: ESnet-fabric switch (64 MB shared buffer, or a
/// 2 MB shallow slice of it) in front of a 10 G bottleneck at the
/// given RTT.
fn matrix_path(rtt_ms: u64, shallow: bool) -> PathSpec {
    let depth = if shallow { Bytes::mib(2) } else { Bytes::mib(64) };
    PathSpec::wan(
        format!("ccmatrix {rtt_ms}ms {}", if shallow { "shallow" } else { "deep" }),
        BitRate::gbps(MATRIX_RATE_GBPS),
        SimDuration::from_millis(rtt_ms),
    )
    .with_switch_buffer(depth)
}

/// The variants to sweep: all of them, unless `REPRO_CC_ONLY` narrows
/// the set. Unknown names in the filter are a typed
/// [`ScenarioError::Invalid`], returned so the caller can record the
/// failure — never silently skipped or defaulted.
fn variants_from_env() -> Result<Vec<CcAlgorithm>, ScenarioError> {
    let Ok(filter) = std::env::var("REPRO_CC_ONLY") else {
        return Ok(CcAlgorithm::ALL.to_vec());
    };
    let mut out = Vec::new();
    let mut problems = Vec::new();
    for name in filter.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        match name.parse::<CcAlgorithm>() {
            Ok(cc) => out.push(cc),
            Err(e) => problems.push(e.to_string()),
        }
    }
    if !problems.is_empty() {
        return Err(ScenarioError::Invalid { label: "REPRO_CC_ONLY".into(), problems });
    }
    if out.is_empty() {
        return Err(ScenarioError::Invalid {
            label: "REPRO_CC_ONLY".into(),
            problems: vec!["filter selects no variants".into()],
        });
    }
    Ok(out)
}

/// Steady-state per-interval goodput (Mbps): fold the first report
/// through the obs interval aggregator and take the median interval
/// p50 over the second half of the series (the first half carries
/// slow start).
fn steady_p50_mbps(summary: &crate::runner::TestSummary) -> u64 {
    let Some(report) = summary.reports.first() else { return 0 };
    let series = aggregate_report_intervals(report).finish();
    let mut vals: Vec<u64> = series[series.len() / 2..]
        .iter()
        .filter_map(|rec| rec.metrics.get("goodput_mbps").and_then(|h| h.quantile(0.5)))
        .collect();
    vals.sort_unstable();
    vals.get(vals.len() / 2).copied().unwrap_or(0)
}

/// One ordering verdict: a named cross-cell inequality.
struct Ordering {
    name: &'static str,
    detail: String,
    holds: bool,
}

/// Evaluate the golden orderings against the measured grid.
fn orderings(cells: &HashMap<CellKey, CellResult>, variants: &[CcAlgorithm]) -> Vec<Ordering> {
    let get = |cc: CcAlgorithm, rtt_ms: u64, lossy: bool, shallow: bool| {
        cells.get(&CellKey { cc, rtt_ms, lossy, shallow }).copied()
    };
    let mut out = Vec::new();

    // Clean 1 ms deep-buffered LAN: every variant within 25 % of the
    // best (no algorithm should matter when nothing is scarce).
    let lan: Vec<(CcAlgorithm, f64)> = variants
        .iter()
        .filter_map(|&cc| get(cc, 1, false, false).map(|r| (cc, r.gbps)))
        .collect();
    if lan.len() == variants.len() {
        let best = lan.iter().fold(0.0_f64, |a, (_, g)| a.max(*g));
        let worst = lan.iter().fold(f64::INFINITY, |a, (_, g)| a.min(*g));
        out.push(Ordering {
            name: "converge@1ms-clean-deep",
            detail: format!("min {worst:.2} / max {best:.2} Gbps"),
            holds: best > 0.0 && worst >= best * 0.75,
        });
    }

    // H-TCP ≥ CUBIC ramp-up at 200 ms RTT (the arXiv:1610.03534
    // high-BDP ranking). Measured on the clean deep cell: in a short
    // window the mean goodput IS the ramp speed — H-TCP's RTT-scaled
    // quadratic increase must not trail CUBIC's HyStart-clamped ramp.
    // (The lossy 200 ms cells are excluded on purpose: with a
    // Gilbert–Elliott burst nearly every round trip both loss-based
    // controllers pin at the floor and the comparison is noise.)
    if let (Some(h), Some(c)) =
        (get(CcAlgorithm::Htcp, 200, false, false), get(CcAlgorithm::Cubic, 200, false, false))
    {
        out.push(Ordering {
            name: "htcp>=cubic@200ms-ramp",
            detail: format!("htcp {:.2} vs cubic {:.2} Gbps", h.gbps, c.gbps),
            holds: h.gbps >= c.gbps * 0.9,
        });
    }

    // BBR vs CUBIC crossover: loss-based CUBIC caves to bursty loss at
    // high RTT, model-based BBR does not.
    if let (Some(b), Some(c)) =
        (get(CcAlgorithm::BbrV1, 100, true, false), get(CcAlgorithm::Cubic, 100, true, false))
    {
        out.push(Ordering {
            name: "bbr>=cubic@100ms-ge",
            detail: format!("bbr {:.2} vs cubic {:.2} Gbps", b.gbps, c.gbps),
            holds: b.gbps >= c.gbps,
        });
    }

    // §IV-F: BBRv1 "retransmitted more (especially BBRv1)" — summed
    // over the lossy cells, bounded BBRv3 must not out-retransmit
    // loss-blind v1 (10 % slack).
    let lossy_retr = |cc: CcAlgorithm| -> Option<f64> {
        let mut sum = 0.0;
        for rtt in RTT_AXIS_MS {
            for shallow in [false, true] {
                sum += get(cc, rtt, true, shallow)?.retr;
            }
        }
        Some(sum)
    };
    if let (Some(v1), Some(v3)) = (lossy_retr(CcAlgorithm::BbrV1), lossy_retr(CcAlgorithm::BbrV3))
    {
        out.push(Ordering {
            name: "bbr3-retr<=bbr1@ge",
            detail: format!("bbr3 {v3:.0} vs bbr {v1:.0} retr"),
            holds: v3 <= v1 * 1.1 + 8.0,
        });
    }
    out
}

/// Run the sweep; one row per cell plus one verdict row per ordering.
pub fn matrix(ctx: &RunCtx) -> TableData {
    let mut table = TableData::new(
        "ext_cc_matrix — CC variant × RTT × Gilbert–Elliott loss × buffer depth, 10 G ESnet fabric",
        vec!["cc", "rtt", "loss", "buffer", "Gbps", "retr", "steady p50 Mbps", "verdict"],
    );
    let variants = match variants_from_env() {
        Ok(v) => v,
        Err(e) => {
            common::record_scenario_failure("ext_cc_matrix", &e);
            return table;
        }
    };
    let effort = ctx.effort;
    let secs = effort.wan_secs();
    let host = Testbeds::esnet_host(KernelVersion::L6_8);

    // Build the grid in sweep order: rtt → loss → buffer → variant.
    let mut keys = Vec::new();
    let mut scenarios = Vec::new();
    for rtt_ms in RTT_AXIS_MS {
        for lossy in [false, true] {
            for shallow in [false, true] {
                for &cc in &variants {
                    let key = CellKey { cc, rtt_ms, lossy, shallow };
                    let opts = Iperf3Opts::new(secs)
                        .omit(effort.omit_secs(true))
                        .congestion(cc);
                    let mut sc = Scenario::symmetric(
                        key.label(),
                        host.clone(),
                        matrix_path(rtt_ms, shallow),
                        opts,
                    );
                    if lossy {
                        // Gilbert–Elliott bursty loss from 1 s to the
                        // end of the run (PR 1 fault plan: 10 ms bad /
                        // 50 ms good sojourns).
                        sc = sc.with_faults(FaultPlan::none().with_bursty_loss(
                            SimDuration::from_secs(1),
                            SimDuration::from_secs(secs.saturating_sub(1)),
                            GE_LOSS_BAD,
                        ));
                    }
                    keys.push(key);
                    scenarios.push(sc);
                }
            }
        }
    }

    let summaries = common::run_batch_or_empty(&ctx.harness(), &scenarios);
    let mut cells: HashMap<CellKey, CellResult> = HashMap::new();
    for (key, summary) in keys.iter().zip(&summaries) {
        let gbps = summary.mean_gbps();
        let retr = summary.mean_retr();
        let p50 = steady_p50_mbps(summary);
        // Per-cell sanity: goodput must exist and respect the physics.
        let sane = gbps > 0.0 && gbps <= MATRIX_RATE_GBPS * 1.05;
        if !sane {
            common::record_scenario_failure(
                &key.label(),
                format!("goodput {gbps:.2} Gbps outside (0, {MATRIX_RATE_GBPS}]"),
            );
        }
        cells.insert(*key, CellResult { gbps, retr });
        table.push_row(vec![
            key.cc.name().to_string(),
            format!("{}ms", key.rtt_ms),
            if key.lossy { "ge".into() } else { "clean".into() },
            if key.shallow { "shallow".into() } else { "deep".into() },
            format!("{gbps:.2}"),
            format!("{retr:.0}"),
            p50.to_string(),
            if sane { "ok".into() } else { "MISMATCH".into() },
        ]);
    }

    // Cross-cell golden orderings, one verdict row each.
    for o in orderings(&cells, &variants) {
        if !o.holds {
            common::record_scenario_failure(
                o.name,
                format!("ordering violated: {}", o.detail),
            );
        }
        table.push_row(vec![
            "ordering".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            format!("{}: {}", o.name, o.detail),
            if o.holds { "ok".into() } else { "MISMATCH".into() },
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::effort::Effort;

    #[test]
    fn unknown_cc_filter_is_a_typed_scenario_error() {
        // Parse-level check (no env mutation: the parser is what the
        // env path feeds).
        let err = "bbr2".parse::<CcAlgorithm>().unwrap_err();
        let sc_err = ScenarioError::Invalid {
            label: "REPRO_CC_ONLY".into(),
            problems: vec![err.to_string()],
        };
        let msg = sc_err.to_string();
        assert!(msg.contains("REPRO_CC_ONLY"), "{msg}");
        assert!(msg.contains("unknown congestion-control"), "{msg}");
    }

    #[test]
    fn matrix_covers_all_variants_and_orderings_at_smoke() {
        let before = common::failed_scenario_count();
        let table = matrix(&RunCtx::new(Effort::Smoke));
        // 4 variants × 4 RTTs × 2 loss × 2 buffers, plus ordering rows.
        let cell_rows: Vec<_> = table.rows.iter().filter(|r| r[0] != "ordering").collect();
        assert_eq!(cell_rows.len(), 64);
        for cc in CcAlgorithm::ALL {
            assert!(cell_rows.iter().any(|r| r[0] == cc.name()), "{} missing", cc.name());
        }
        let ordering_rows: Vec<_> = table.rows.iter().filter(|r| r[0] == "ordering").collect();
        assert_eq!(ordering_rows.len(), 4);
        for row in &table.rows {
            assert_eq!(row[7], "ok", "{row:?}");
        }
        assert_eq!(common::failed_scenario_count(), before);
    }
}
