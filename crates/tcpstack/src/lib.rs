//! `tcpstack` — TCP behaviour at GSO-burst granularity.
//!
//! The simulator moves data in *bursts* (GSO super-packets, 64–512 KB);
//! this crate supplies the TCP logic that decides when bursts may be
//! sent and what happens when they are lost:
//!
//! * [`cc`] — congestion control: CUBIC (the paper's default), BBRv1
//!   and a simplified BBRv3 (§IV-F).
//! * [`rtt`] — SRTT/RTTVAR estimation and RTO computation.
//! * [`sender`] — the sender state machine: in-flight tracking,
//!   SACK-style hole detection, fast retransmit, recovery episodes,
//!   RTO handling, and effective-window computation (cwnd ∧ rwnd ∧
//!   autotuned send buffer).
//! * [`receiver`] — the receiver state machine: cumulative ACK +
//!   out-of-order queue, receive-window advertisement bounded by
//!   `tcp_rmem`.
//!
//! Sequence space is counted in burst indices (`u64`); byte quantities
//! derive from the configured burst size. Retransmit *counters* are
//! reported in MTU packets, which is what `tcpi_total_retrans` (and
//! iperf3's `Retr` column) counts.

#![deny(unreachable_pub)]
// Recoverable failures carry typed errors; every surviving `expect`
// states its infallibility argument (tests are exempt).
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cc;
pub mod receiver;
pub mod rtt;
pub mod sender;

pub use cc::{CcAlgorithm, CongestionControl};
pub use receiver::{AckInfo, TcpReceiver};
pub use rtt::RttEstimator;
pub use sender::{AckOutcome, SendSlot, TcpSender, TimerKind};
