//! `obs` — streaming metrics primitives for the simulator and harness.
//!
//! The paper's method is observability: diagnosing throughput limits
//! from `ss -tin` and ethtool counters. This crate gives the *repo*
//! the same substrate the paper applies to Linux hosts:
//!
//! * [`HdrHistogram`] — a mergeable log-linear histogram with bounded
//!   relative quantile error (≤ 1/128 ≈ 0.78%), O(buckets) memory,
//!   exact `min`/`max`/`count`/`sum`, and a lossless bucketwise merge
//!   so per-shard histograms recorded by parallel workers fold into
//!   exactly the histogram a single-pass recorder would have built.
//! * [`Recorder`] — a thread-safe named registry of counters, gauges
//!   and histograms. It is *passive*: callers that hold no recorder
//!   handle pay nothing, which is how the harness keeps metrics-off
//!   runs bit-identical (the neutrality contract of DESIGN.md §6h).
//! * [`IntervalAggregator`] — folds timestamped samples into
//!   fixed-width interval series with one streaming histogram per
//!   metric per open interval, so memory stays O(open intervals ×
//!   metrics × buckets) regardless of total sample count.
//! * [`render_openmetrics`] — OpenMetrics text exposition of a
//!   registry snapshot, and JSONL renderings for interval series and
//!   phase [`SpanRecord`]s.
//!
//! The crate is std-only and domain-neutral: it knows nothing about
//! the simulator. Domain crates export plain snapshot structs (e.g.
//! `simcore::QueueHealth`) and the harness samples them into a
//! [`Recorder`].

#![deny(unreachable_pub)]
// Recoverable failures carry typed errors; every surviving `expect`
// states its infallibility argument (tests are exempt).
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hist;
mod interval;
mod openmetrics;
mod registry;
mod span;

pub use hist::HdrHistogram;
pub use interval::{IntervalAggregator, IntervalRecord};
pub use openmetrics::render_openmetrics;
pub use registry::{MetricsSnapshot, Recorder};
pub use span::SpanRecord;

/// Minimal JSON string escaping for the JSONL renderers: quotes,
/// backslashes and control characters. Metric/scope names are already
/// sanitized by callers; this keeps the output well-formed even if
/// they are not.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
