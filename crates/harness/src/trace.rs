//! JSON-lines telemetry traces (the `--trace <dir>` output).
//!
//! One file per surviving repetition, named
//! `<label>_rep<i>.jsonl`. Each file starts with a `meta` line, then
//! one `flow` line per flow sample (the `ss -tin` stream) and one
//! `host` line per host sample (the `ethtool -S` + `mpstat` stream).
//! When the run carried bottleneck attribution, one `verdict` line per
//! classified interval and a closing `bottleneck` roll-up follow, and
//! two profile files ride along per repetition:
//! `<label>_rep<i>.folded` (flame-graph input) and
//! `<label>_rep<i>.perf.txt` (a `perf report`-style table) — see
//! [`crate::profile`]. Every JSONL line is a self-contained JSON
//! object so the files pipe straight into `jq`/pandas without a
//! streaming parser.

use iperf3sim::Iperf3Report;
use simcore::SimTime;
use std::path::{Path, PathBuf};

/// The filesystem surface trace/profile writing goes through.
///
/// Production uses [`RealIo`]; chaos mode substitutes
/// [`crate::chaos::ChaosIo`] to inject write failures, proving the
/// harness degrades a lost trace to a warning instead of losing the
/// repetition that produced it.
pub trait TraceIo: Send + Sync {
    /// `std::fs::create_dir_all`.
    fn create_dir_all(&self, dir: &Path) -> std::io::Result<()>;
    /// Write `data` to `path`, whole-file.
    fn write(&self, path: &Path, data: &[u8]) -> std::io::Result<()>;
}

/// The real filesystem.
#[derive(Debug, Clone, Copy, Default)]
pub struct RealIo;

impl TraceIo for RealIo {
    fn create_dir_all(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)
    }

    fn write(&self, path: &Path, data: &[u8]) -> std::io::Result<()> {
        std::fs::write(path, data)
    }
}

/// File-name-safe form of a scenario label (lowercase; anything
/// outside `[a-z0-9_-]` collapses to `_`).
pub fn sanitize_label(label: &str) -> String {
    let out: String = label
        .chars()
        .map(|c| {
            let c = c.to_ascii_lowercase();
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' { c } else { '_' }
        })
        .collect();
    if out.is_empty() { "scenario".into() } else { out }
}

fn secs(t: SimTime) -> f64 {
    t.saturating_since(SimTime::ZERO).as_secs_f64()
}

/// Render one repetition's trace as JSON lines. `None` when the report
/// carries neither telemetry nor attribution (nothing was sampled).
pub fn render_jsonl(
    label: &str,
    rep: usize,
    seed: u64,
    report: &Iperf3Report,
) -> Option<String> {
    let telemetry = report.telemetry.as_ref();
    let attribution = report.attribution.as_ref();
    if telemetry.is_none() && attribution.is_none() {
        return None;
    }
    let mut out = String::with_capacity(4096);
    let tick_s =
        telemetry.map_or("null".into(), |t| format!("{}", t.tick.as_secs_f64()));
    out.push_str(&format!(
        "{{\"type\":\"meta\",\"label\":{label:?},\"rep\":{rep},\"seed\":{seed},\"tick_s\":{tick_s},\"command\":{:?}}}\n",
        report.command,
    ));
    for flow in telemetry.map(|t| t.flows.as_slice()).unwrap_or_default() {
        for (t, s) in flow.samples.iter() {
            let ssthresh = s
                .ssthresh
                .map_or("null".into(), |b| b.as_u64().to_string());
            let srtt_us = s
                .srtt
                .map_or("null".into(), |d| format!("{:.1}", d.as_secs_f64() * 1e6));
            let limiting =
                s.limiting.map_or("null".into(), |v| format!("{:?}", v.name()));
            out.push_str(&format!(
                "{{\"type\":\"flow\",\"flow\":{},\"t_s\":{:.3},\"cwnd_bytes\":{},\"ssthresh_bytes\":{ssthresh},\"srtt_us\":{srtt_us},\"pacing_gbps\":{:.3},\"ca_state\":\"{}\",\"bytes_retrans\":{},\"retr_packets\":{},\"delivered_bytes\":{},\"interval_bytes\":{},\"limiting\":{limiting}}}\n",
                flow.id,
                secs(t),
                s.cwnd.as_u64(),
                s.pacing_rate.as_gbps(),
                s.ca_state.name(),
                s.bytes_retrans.as_u64(),
                s.retr_packets,
                s.delivered_bytes.as_u64(),
                s.interval_bytes.as_u64(),
            ));
        }
    }
    if let Some(telemetry) = telemetry {
        for (t, s) in telemetry.host.samples.iter() {
            let fmt_cores = |cores: &[f64]| {
                let parts: Vec<String> = cores.iter().map(|c| format!("{c:.2}")).collect();
                format!("[{}]", parts.join(","))
            };
            out.push_str(&format!(
                "{{\"type\":\"host\",\"t_s\":{:.3},\"ring_drops\":{},\"switch_drops\":{},\"random_drops\":{},\"fault_drops\":{},\"pause_frames\":{},\"wire_sent\":{},\"snd_core_busy_pct\":{},\"rcv_core_busy_pct\":{}}}\n",
                secs(t),
                s.ring_drops,
                s.switch_drops,
                s.random_drops,
                s.fault_drops,
                s.pause_frames,
                s.wire_sent,
                fmt_cores(&s.sender_core_busy),
                fmt_cores(&s.receiver_core_busy),
            ));
        }
    }
    if let Some(attr) = attribution {
        for (t, v) in &attr.verdicts {
            out.push_str(&format!(
                "{{\"type\":\"verdict\",\"t_s\":{:.3},\"factor\":\"{}\"}}\n",
                secs(*t),
                v.name(),
            ));
        }
        if let Some(v) = &attr.verdict {
            out.push_str(&format!(
                "{{\"type\":\"bottleneck\",\"factor\":\"{}\",\"share\":{:.3},\"intervals\":{}}}\n",
                v.primary.name(),
                v.primary_share(),
                v.intervals,
            ));
        }
    }
    Some(out)
}

/// Write one repetition's trace into `dir`, creating the directory as
/// needed. Returns the path written, or `None` when the report carries
/// no telemetry.
pub fn write_rep_trace(
    dir: &Path,
    label: &str,
    rep: usize,
    seed: u64,
    report: &Iperf3Report,
) -> std::io::Result<Option<PathBuf>> {
    write_rep_trace_with(&RealIo, dir, label, rep, seed, report)
}

/// [`write_rep_trace`] through an explicit [`TraceIo`] (chaos shim or
/// the real filesystem).
pub fn write_rep_trace_with(
    io: &dyn TraceIo,
    dir: &Path,
    label: &str,
    rep: usize,
    seed: u64,
    report: &Iperf3Report,
) -> std::io::Result<Option<PathBuf>> {
    let Some(body) = render_jsonl(label, rep, seed, report) else {
        return Ok(None);
    };
    io.create_dir_all(dir)?;
    let path = dir.join(format!("{}_rep{rep}.jsonl", sanitize_label(label)));
    io.write(&path, body.as_bytes())?;
    Ok(Some(path))
}

/// Write one repetition's simulated-`perf` profiles into `dir`:
/// `<label>_rep<i>.folded` (flame-graph input) and
/// `<label>_rep<i>.perf.txt` (the `perf report` table). Returns the
/// paths written, or `None` when the report carries no attribution.
pub fn write_rep_profiles(
    dir: &Path,
    label: &str,
    rep: usize,
    report: &Iperf3Report,
) -> std::io::Result<Option<(PathBuf, PathBuf)>> {
    write_rep_profiles_with(&RealIo, dir, label, rep, report)
}

/// [`write_rep_profiles`] through an explicit [`TraceIo`].
pub fn write_rep_profiles_with(
    io: &dyn TraceIo,
    dir: &Path,
    label: &str,
    rep: usize,
    report: &Iperf3Report,
) -> std::io::Result<Option<(PathBuf, PathBuf)>> {
    let (Some(folded), Some(table)) =
        (crate::profile::folded_stacks(report), crate::profile::perf_report(report))
    else {
        return Ok(None);
    };
    io.create_dir_all(dir)?;
    let stem = sanitize_label(label);
    let folded_path = dir.join(format!("{stem}_rep{rep}.folded"));
    io.write(&folded_path, folded.as_bytes())?;
    let perf_path = dir.join(format!("{stem}_rep{rep}.perf.txt"));
    io.write(&perf_path, table.as_bytes())?;
    Ok(Some((folded_path, perf_path)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbeds::{EsnetPath, Testbeds};
    use iperf3sim::Iperf3Opts;
    use linuxhost::KernelVersion;
    use simcore::SimDuration;

    fn sampled_report() -> Iperf3Report {
        let host = Testbeds::esnet_host(KernelVersion::L6_8);
        let path = Testbeds::esnet_path(EsnetPath::Lan);
        let opts = Iperf3Opts::new(2).omit(0).telemetry(SimDuration::from_secs(1));
        iperf3sim::run(&host, &host, &path, &opts).expect("run")
    }

    #[test]
    fn label_sanitisation() {
        assert_eq!(sanitize_label("ESnet WAN -P 8"), "esnet_wan_-p_8");
        assert_eq!(sanitize_label(""), "scenario");
    }

    #[test]
    fn jsonl_lines_are_self_contained_objects() {
        let report = sampled_report();
        let body = render_jsonl("LAN check", 0, 1000, &report).expect("telemetry present");
        let lines: Vec<&str> = body.lines().collect();
        assert!(lines[0].starts_with("{\"type\":\"meta\""));
        assert!(lines[0].contains("\"seed\":1000"));
        assert!(lines.iter().skip(1).any(|l| l.starts_with("{\"type\":\"flow\"")));
        assert!(lines.iter().any(|l| l.starts_with("{\"type\":\"host\"")));
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "not an object: {line}");
            assert_eq!(line.matches('{').count(), line.matches('}').count(), "{line}");
        }
        let telemetry = report.telemetry.as_ref().unwrap();
        let flow_samples: usize = telemetry.flows.iter().map(|f| f.samples.len()).sum();
        assert_eq!(lines.len(), 1 + flow_samples + telemetry.host.samples.len());
    }

    #[test]
    fn unsampled_report_renders_nothing() {
        let host = Testbeds::esnet_host(KernelVersion::L6_8);
        let path = Testbeds::esnet_path(EsnetPath::Lan);
        let report =
            iperf3sim::run(&host, &host, &path, &Iperf3Opts::new(2).omit(0)).expect("run");
        assert!(render_jsonl("x", 0, 1, &report).is_none());
        let dir = std::env::temp_dir().join(format!("trace_none_{}", std::process::id()));
        assert!(write_rep_trace(&dir, "x", 0, 1, &report).expect("io").is_none());
        assert!(write_rep_profiles(&dir, "x", 0, &report).expect("io").is_none());
        assert!(!dir.exists(), "no telemetry must create no directory");
    }

    #[test]
    fn attribution_only_report_renders_verdict_lines() {
        // Attribution without telemetry still produces a trace: meta,
        // per-interval verdicts, and the bottleneck roll-up.
        let host = Testbeds::esnet_host(KernelVersion::L6_8);
        let path = Testbeds::esnet_path(EsnetPath::Lan);
        let report = iperf3sim::run(&host, &host, &path, &Iperf3Opts::new(2).omit(0).attribution())
            .expect("run");
        let body = render_jsonl("attr", 0, 1, &report).expect("attribution present");
        let lines: Vec<&str> = body.lines().collect();
        assert!(lines[0].starts_with("{\"type\":\"meta\""));
        assert!(lines[0].contains("\"tick_s\":null"), "{}", lines[0]);
        assert!(lines.iter().any(|l| l.starts_with("{\"type\":\"verdict\"")));
        assert!(lines.last().unwrap().starts_with("{\"type\":\"bottleneck\""), "{body}");
        assert!(!body.contains("\"type\":\"flow\""));
        for line in &lines {
            assert_eq!(line.matches('{').count(), line.matches('}').count(), "{line}");
        }
    }

    #[test]
    fn sampled_attributed_flow_lines_carry_limiting() {
        let host = Testbeds::esnet_host(KernelVersion::L6_8);
        let path = Testbeds::esnet_path(EsnetPath::Lan);
        let opts =
            Iperf3Opts::new(2).omit(0).telemetry(SimDuration::from_secs(1)).attribution();
        let report = iperf3sim::run(&host, &host, &path, &opts).expect("run");
        let body = render_jsonl("both", 0, 1, &report).expect("sampled");
        assert!(body.lines().any(|l| {
            l.starts_with("{\"type\":\"flow\"")
                && l.contains("\"limiting\":\"")
                && !l.contains("\"limiting\":null")
        }), "{body}");
        assert!(body.contains("\"type\":\"verdict\""));
    }

    #[test]
    fn profile_files_written_per_repetition() {
        let host = Testbeds::esnet_host(KernelVersion::L6_8);
        let path = Testbeds::esnet_path(EsnetPath::Lan);
        let report = iperf3sim::run(&host, &host, &path, &Iperf3Opts::new(2).omit(0).attribution())
            .expect("run");
        let dir = std::env::temp_dir().join(format!("profile_test_{}", std::process::id()));
        let (folded, perf) = write_rep_profiles(&dir, "ESnet LAN", 1, &report)
            .expect("io")
            .expect("attribution present");
        assert_eq!(folded.file_name().unwrap().to_str().unwrap(), "esnet_lan_rep1.folded");
        assert_eq!(perf.file_name().unwrap().to_str().unwrap(), "esnet_lan_rep1.perf.txt");
        let folded_body = std::fs::read_to_string(&folded).expect("read folded");
        assert!(folded_body.lines().all(|l| l.contains(';') && l.rsplit(' ').next().is_some()));
        assert!(!folded_body.trim().is_empty());
        let perf_body = std::fs::read_to_string(&perf).expect("read perf");
        assert!(perf_body.contains("# Overhead"));
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn trace_file_written_per_repetition() {
        let report = sampled_report();
        let dir = std::env::temp_dir().join(format!("trace_test_{}", std::process::id()));
        let path = write_rep_trace(&dir, "ESnet LAN", 3, 1003, &report)
            .expect("io")
            .expect("telemetry present");
        assert_eq!(path.file_name().unwrap().to_str().unwrap(), "esnet_lan_rep3.jsonl");
        let body = std::fs::read_to_string(&path).expect("read back");
        assert!(body.starts_with("{\"type\":\"meta\""));
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}
