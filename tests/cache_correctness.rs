//! Correctness of the content-addressed run cache.
//!
//! The contract: a cache hit is *bit-identical* to the run it
//! replaces, anything unreadable (truncated, bit-flipped, wrong
//! header) is silently recomputed, and bumping the cost-model version
//! orphans every existing entry.

use dtnperf::prelude::*;
use harness::{RunCache, TestSummary};
use iperf3sim::Iperf3Opts;
use std::path::PathBuf;
use std::sync::Arc;

fn scenario(label: &str) -> Scenario {
    Scenario::symmetric(
        label,
        Testbeds::esnet_host(KernelVersion::L6_8),
        Testbeds::esnet_path(EsnetPath::Lan),
        Iperf3Opts::new(2).omit(0),
    )
}

/// A fresh, empty cache directory unique to this test.
fn cache_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("repro_cache_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn harness_with(cache: Arc<RunCache>, reps: usize) -> TestHarness {
    let mut h = TestHarness::new(reps);
    h.cache = Some(cache);
    h
}

/// Every observable float of the summary, bit-compared.
fn assert_bit_identical(a: &TestSummary, b: &TestSummary) {
    let floats = |s: &TestSummary| {
        vec![
            s.throughput_gbps.mean,
            s.throughput_gbps.stdev,
            s.throughput_gbps.min,
            s.throughput_gbps.max,
            s.retr.mean,
            s.min_stream_gbps,
            s.max_stream_gbps,
            s.sender_cpu_pct.mean,
            s.receiver_cpu_pct.mean,
            s.zc_fallback,
        ]
    };
    for (x, y) in floats(a).iter().zip(floats(b).iter()) {
        assert_eq!(x.to_bits(), y.to_bits(), "cached run drifted from cold run: {x} vs {y}");
    }
    for (ra, rb) in a.reports.iter().zip(b.reports.iter()) {
        let bytes = |r: &Iperf3Report| -> u64 { r.streams.iter().map(|s| s.bytes.as_u64()).sum() };
        assert_eq!(bytes(ra), bytes(rb));
        assert_eq!(ra.sum_retr(), rb.sum_retr());
        assert_eq!(ra.sum_bitrate().as_bps().to_bits(), rb.sum_bitrate().as_bps().to_bits());
    }
}

/// Cold run fills the cache; a second run over the same directory is
/// served entirely from it, bit-identical to the cold result.
#[test]
fn warm_run_is_bit_identical_and_fully_cached() {
    let dir = cache_dir("warm");
    let sc = scenario("cache-warm");

    let cold_cache = Arc::new(RunCache::new(&dir));
    let cold = harness_with(cold_cache.clone(), 2).run(&sc).expect("cold run");
    assert_eq!(cold_cache.stats.hits(), 0);
    assert_eq!(cold_cache.stats.misses(), 2);
    assert_eq!(cold_cache.stats.stores(), 2);

    let warm_cache = Arc::new(RunCache::new(&dir));
    let warm = harness_with(warm_cache.clone(), 2).run(&sc).expect("warm run");
    assert_eq!(warm_cache.stats.hits(), 2, "warm run must be served from the cache");
    assert_eq!(warm_cache.stats.misses(), 0);
    assert_eq!(warm_cache.stats.stores(), 0);
    assert_bit_identical(&cold, &warm);

    std::fs::remove_dir_all(&dir).ok();
}

/// A truncated entry is rejected by its checksum and transparently
/// recomputed; the recomputed result still matches the cold run.
#[test]
fn truncated_entry_is_recomputed() {
    let dir = cache_dir("trunc");
    let sc = scenario("cache-trunc");
    let cold = harness_with(Arc::new(RunCache::new(&dir)), 1).run(&sc).expect("cold");

    for entry in std::fs::read_dir(&dir).expect("cache dir") {
        let path = entry.expect("entry").path();
        let bytes = std::fs::read(&path).expect("read entry");
        std::fs::write(&path, &bytes[..bytes.len() / 2]).expect("truncate entry");
    }

    let cache = Arc::new(RunCache::new(&dir));
    let again = harness_with(cache.clone(), 1).run(&sc).expect("recomputed");
    assert_eq!(cache.stats.hits(), 0, "truncated entry must not hit");
    assert_eq!(cache.stats.misses(), 1);
    assert_eq!(cache.stats.stores(), 1, "recomputed entry must be stored back");
    assert_bit_identical(&cold, &again);

    // The repaired entry hits again.
    let repaired = Arc::new(RunCache::new(&dir));
    harness_with(repaired.clone(), 1).run(&sc).expect("repaired");
    assert_eq!(repaired.stats.hits(), 1);

    std::fs::remove_dir_all(&dir).ok();
}

/// A single flipped payload bit fails the checksum: rejected and
/// recomputed, never served corrupt.
#[test]
fn bit_flipped_entry_is_rejected() {
    let dir = cache_dir("flip");
    let sc = scenario("cache-flip");
    let cold = harness_with(Arc::new(RunCache::new(&dir)), 1).run(&sc).expect("cold");

    for entry in std::fs::read_dir(&dir).expect("cache dir") {
        let path = entry.expect("entry").path();
        let mut bytes = std::fs::read(&path).expect("read entry");
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&path, &bytes).expect("flip bit");
    }

    let cache = Arc::new(RunCache::new(&dir));
    let again = harness_with(cache.clone(), 1).run(&sc).expect("recomputed");
    assert_eq!(cache.stats.hits(), 0, "corrupt entry must not hit");
    assert_eq!(cache.stats.misses(), 1);
    assert_bit_identical(&cold, &again);

    std::fs::remove_dir_all(&dir).ok();
}

/// Bumping the cost-model version changes every content address: a
/// populated cache yields no hits under the new version, and entries
/// written under either version coexist.
#[test]
fn cost_model_version_bump_invalidates() {
    let dir = cache_dir("version");
    let sc = scenario("cache-version");
    harness_with(Arc::new(RunCache::new(&dir)), 1).run(&sc).expect("v-current");

    let bumped = Arc::new(RunCache::new(&dir).with_cost_model_version(u32::MAX));
    harness_with(bumped.clone(), 1).run(&sc).expect("v-bumped");
    assert_eq!(bumped.stats.hits(), 0, "a version bump must orphan old entries");
    assert_eq!(bumped.stats.misses(), 1);
    assert_eq!(bumped.stats.stores(), 1);

    // Both generations now live side by side; each hits under its own
    // version.
    let old = Arc::new(RunCache::new(&dir));
    harness_with(old.clone(), 1).run(&sc).expect("old again");
    assert_eq!(old.stats.hits(), 1);
    let newer = Arc::new(RunCache::new(&dir).with_cost_model_version(u32::MAX));
    harness_with(newer.clone(), 1).run(&sc).expect("new again");
    assert_eq!(newer.stats.hits(), 1);

    std::fs::remove_dir_all(&dir).ok();
}

/// Runs carrying observers (telemetry sampling or attribution) bypass
/// the cache entirely — their payload would be incomplete.
#[test]
fn observer_runs_bypass_the_cache() {
    let dir = cache_dir("observers");
    let mut sc = scenario("cache-observers");
    sc.opts = sc.opts.telemetry(SimDuration::from_secs(1));
    let cache = Arc::new(RunCache::new(&dir));
    harness_with(cache.clone(), 1).run(&sc).expect("telemetry run");
    assert_eq!(cache.stats.hits() + cache.stats.misses() + cache.stats.stores(), 0);
    assert!(!dir.exists(), "no cache directory should be created for observer runs");

    std::fs::remove_dir_all(&dir).ok();
}
