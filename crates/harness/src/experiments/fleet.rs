//! `ext_fleet` — arrival-process fleet workloads with streaming FCT
//! aggregation.
//!
//! ROADMAP item 2: instead of a handful of long-lived iperf3 streams,
//! drive *flow arrivals* — a Poisson WAN mix and an MMPP-modulated
//! incast (the arXiv:1905.01194 shape) — through
//! [`netsim::FleetSim`], serving up to millions of finite flows in one
//! simulation with O(active-flow) memory. Flow-completion times fold
//! through the streaming [`obs::IntervalAggregator`] (p50/p99/p999 per
//! interval), never per-flow vectors.
//!
//! Three profiles, scaled by [`Effort::fleet_target_flows`]:
//!
//! * `fleet_steady` — Poisson arrivals, log-normal sizes, diurnal rate
//!   swing, a four-class WAN mix spanning every `CcAlgorithm`;
//! * `fleet_incast_unpaced` — 2-state MMPP bursts into a shallow
//!   top-of-rack buffer at 200 µs RTT, no pacing;
//! * `fleet_incast_paced` — the same offered load with FQ-style
//!   per-flow pacing.
//!
//! Golden shapes (verdict rows, `MISMATCH` ⇒ failed scenario):
//!
//! * incast inflates the normalized p99 FCT slowdown vs the steady
//!   Poisson mix (queue-building bursts hurt the tail);
//! * pacing improves the incast p999 FCT (paper §V takeaway: `fq`
//!   pacing smooths bursts — here it spreads whole-window losses into
//!   recoverable ones).
//!
//! Each profile also reports *what limited the p99*: the PR 3
//! bottleneck-verdict idea rolled up to fleet scale, classifying every
//! tail flow by its dominant factor (RTO stall, loss recovery,
//! cwnd-limited, bottleneck share).

use crate::ctx::RunCtx;
use crate::effort::Effort;
use crate::experiments::common;
use crate::render::TableData;
use crate::sched;
use netsim::{
    ArrivalProcess, Diurnal, FleetClass, FleetProfile, FleetResult, FleetSim, SizeDist,
};
use simcore::{BitRate, Bytes, SimDuration};
use tcpstack::CcAlgorithm;

/// Steady-profile arrival rate (flows/s). Held fixed across efforts —
/// effort scales *duration* (and thus total flows), so per-flow
/// statistics stay comparable from smoke to full.
const STEADY_RATE: f64 = 10_000.0;

/// Incast arrival-rate components: calm valleys punctuated by ~1.5 ms
/// fan-in epochs at 7.5× the calm rate. The pressure is deliberately
/// *moderate*: sustained oversubscription collapses paced and unpaced
/// alike, while here the tail is set by min-RTO stalls — a recovery
/// retransmit re-dropped at the shallow 320 KiB port sits out the full
/// 200 ms floor (TLP is quiet inside recovery). Pacing spreads each
/// epoch's bursts across the line rate, cutting the re-drop odds below
/// the p999 point while the unpaced fleet stays above it (the paper's
/// shallow-buffer + `fq` story at fleet scale).
const INCAST_CALM_RATE: f64 = 2_000.0;
const INCAST_BURST_RATE: f64 = 15_000.0;
const INCAST_CALM_SECS: f64 = 0.045;
const INCAST_BURST_SECS: f64 = 0.0015;

/// The steady Poisson WAN mix: four classes covering every congestion
/// controller, deep-buffered 25 G bottlenecks, ~50 % mean utilisation.
fn steady_profile(effort: Effort) -> FleetProfile {
    let target = effort.fleet_target_flows();
    let mut p = FleetProfile::new(
        "fleet_steady",
        ArrivalProcess::Poisson { rate_per_sec: STEADY_RATE },
        // Median 256 KiB, σ = 0.5 → mean ≈ 290 KB, p99 ≈ 820 KiB: a
        // mice-and-elephants WAN mix whose elephants stay within a few
        // slow-start rounds. (Wider σ inflates the *steady* slowdown
        // tail with pure cwnd-ramp RTTs, drowning the congestion
        // signal the incast comparison is meant to isolate.)
        SizeDist::LogNormal { median_bytes: 256.0 * 1024.0, sigma: 0.5 },
    );
    p.duration = SimDuration::from_secs_f64(target as f64 / STEADY_RATE);
    p.max_flows = target;
    p.diurnal = Some(Diurnal { amplitude: 0.3, period_secs: 5.0 });
    p.classes = vec![
        FleetClass {
            name: "cubic_wan".into(),
            weight: 1,
            cc: CcAlgorithm::Cubic,
            pacing: false,
            rtt: SimDuration::from_millis(40),
            bottleneck: BitRate::gbps(25.0),
            buffer: Bytes::mib(64),
        },
        FleetClass {
            name: "bbr_wan".into(),
            weight: 1,
            cc: CcAlgorithm::BbrV1,
            pacing: true,
            rtt: SimDuration::from_millis(70),
            bottleneck: BitRate::gbps(25.0),
            buffer: Bytes::mib(64),
        },
        FleetClass {
            name: "htcp_lfn".into(),
            weight: 1,
            cc: CcAlgorithm::Htcp,
            pacing: false,
            rtt: SimDuration::from_millis(120),
            bottleneck: BitRate::gbps(25.0),
            buffer: Bytes::mib(64),
        },
        FleetClass {
            name: "bbr3_metro".into(),
            weight: 1,
            cc: CcAlgorithm::BbrV3,
            pacing: true,
            rtt: SimDuration::from_millis(10),
            bottleneck: BitRate::gbps(25.0),
            buffer: Bytes::mib(32),
        },
    ];
    p
}

/// The incast burst profile (arXiv:1905.01194's fan-in shape): MMPP
/// bursts of small bounded-Pareto transfers into one shallow-buffered
/// 10 G top-of-rack port at 200 µs RTT. `paced` toggles FQ-style
/// per-flow pacing — the only knob that differs between the two incast
/// rows, so their delta is the pacing effect.
fn incast_profile(effort: Effort, paced: bool) -> FleetProfile {
    let mean_rate = (INCAST_CALM_RATE * INCAST_CALM_SECS
        + INCAST_BURST_RATE * INCAST_BURST_SECS)
        / (INCAST_CALM_SECS + INCAST_BURST_SECS);
    let target = (effort.fleet_target_flows() / 6).max(8_000);
    let mut p = FleetProfile::new(
        if paced { "fleet_incast_paced" } else { "fleet_incast_unpaced" },
        ArrivalProcess::Mmpp2 {
            calm_rate: INCAST_CALM_RATE,
            burst_rate: INCAST_BURST_RATE,
            mean_calm_secs: INCAST_CALM_SECS,
            mean_burst_secs: INCAST_BURST_SECS,
        },
        SizeDist::BoundedPareto { alpha: 1.2, min_bytes: 32 * 1024, max_bytes: 512 * 1024 },
    );
    p.duration = SimDuration::from_secs_f64(target as f64 / mean_rate);
    p.max_flows = target;
    p.burst = Bytes::kib(16);
    p.classes = vec![FleetClass {
        name: "incast_tor".into(),
        weight: 1,
        cc: CcAlgorithm::Cubic,
        pacing: paced,
        rtt: SimDuration::from_micros(200),
        bottleneck: BitRate::gbps(10.0),
        buffer: Bytes::kib(320),
    }];
    p
}

/// All three `ext_fleet` profiles in table order.
fn profiles(effort: Effort) -> Vec<FleetProfile> {
    vec![steady_profile(effort), incast_profile(effort, false), incast_profile(effort, true)]
}

/// Run one profile; `None` means the engine refused it or tripped its
/// watchdog (already recorded as a failed scenario).
fn run_profile(ctx: &RunCtx, profile: FleetProfile) -> Option<FleetResult> {
    let label = profile.name.clone();
    // Safety watchdog, not a tuning knob: generously above the worst
    // observed events-per-flow so only a livelock can trip it.
    let budget = profile.max_flows.saturating_mul(400).saturating_add(10_000_000);
    let sim = match FleetSim::new(profile) {
        Ok(sim) => sim,
        Err(e) => {
            common::record_scenario_failure(&label, &e);
            return None;
        }
    };
    match sim.with_event_budget(budget).run() {
        Ok(res) => {
            if let Some(hub) = &ctx.metrics {
                hub.sample_queue_health(res.health);
                hub.note_late_drops(res.late_dropped);
                if let Err(e) = hub.write_interval_records(&res.name, 0, &res.intervals) {
                    eprintln!("cannot write {label} interval series: {e}");
                }
            } else {
                crate::metrics::note_late_drops(res.late_dropped);
            }
            Some(res)
        }
        Err(e) => {
            common::record_scenario_failure(&label, &e);
            None
        }
    }
}

/// `831 → "831us"`, `12_400 → "12.4ms"` — FCT cells span µs to seconds.
fn fmt_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.2}s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.1}ms", us as f64 / 1e3)
    } else {
        format!("{us}us")
    }
}

/// Per-profile sanity: every arrival served, no samples lost, no
/// causality clamps, slab fully reclaimed.
fn sane(res: &FleetResult) -> bool {
    res.flows_served == res.flows_opened
        && res.flows_opened > 0
        && res.late_dropped == 0
        && res.past_clamps == 0
        && res.health.slab_slots == res.health.free_slots
}

/// Run the three profiles (concurrently when jobs allow — each run is
/// single-threaded and seeded from its profile fingerprint, so results
/// are bit-identical at any `REPRO_JOBS`) and render one row per
/// profile plus the golden-shape verdict rows.
pub fn fleet(ctx: &RunCtx) -> TableData {
    let mut table = TableData::new(
        "ext_fleet — arrival-process fleet workloads, streaming FCT aggregation",
        vec![
            "profile", "flows", "p50 fct", "p99 fct", "p999 fct", "slowdown p99",
            "goodput", "drops", "p99 limited by", "verdict",
        ],
    );
    let profs = profiles(ctx.effort);
    let n = profs.len();
    let results = sched::run_tasks(ctx.jobs > 1, n, |i| run_profile(ctx, profs[i].clone()));
    for res in results.iter().flatten() {
        let ok = sane(res);
        if !ok {
            common::record_scenario_failure(
                &res.name,
                format!(
                    "fleet invariants violated: served {}/{}, late {}, clamps {}, slab {}/{}",
                    res.flows_served,
                    res.flows_opened,
                    res.late_dropped,
                    res.past_clamps,
                    res.health.free_slots,
                    res.health.slab_slots,
                ),
            );
        }
        let limited = res
            .tail_rollup()
            .iter()
            .find(|(_, flows)| *flows > 0)
            .map(|(factor, flows)| format!("{factor} ({flows})"))
            .unwrap_or_else(|| "-".into());
        table.push_row(vec![
            res.name.clone(),
            res.flows_served.to_string(),
            fmt_us(res.fct_us(0.50).unwrap_or(0)),
            fmt_us(res.fct_us(0.99).unwrap_or(0)),
            fmt_us(res.fct_us(0.999).unwrap_or(0)),
            format!("{:.1}x", res.slowdown_x100(0.99).unwrap_or(0) as f64 / 100.0),
            format!("{:.2}Gbps", res.goodput_gbps()),
            res.drops.to_string(),
            limited,
            if ok { "ok".into() } else { "MISMATCH".into() },
        ]);
    }

    // Golden shapes across profiles.
    let find = |name: &str| {
        results.iter().flatten().find(|r| r.name == name)
    };
    let mut verdict = |name: &'static str, detail: String, holds: bool| {
        if !holds {
            common::record_scenario_failure(name, format!("ordering violated: {detail}"));
        }
        table.push_row(vec![
            "ordering".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            format!("{name}: {detail}"),
            if holds { "ok".into() } else { "MISMATCH".into() },
        ]);
    };
    // Incast degrades the tail vs the steady mix — compared on the
    // scale-free slowdown (fct ÷ ideal fct), since raw FCTs live on
    // different RTT and size scales.
    if let (Some(steady), Some(incast)) = (find("fleet_steady"), find("fleet_incast_unpaced")) {
        let s = steady.slowdown_x100(0.99).unwrap_or(0);
        let i = incast.slowdown_x100(0.99).unwrap_or(0);
        verdict(
            "incast-degrades-p99",
            format!("incast slowdown {:.1}x vs steady {:.1}x", i as f64 / 100.0, s as f64 / 100.0),
            i >= s,
        );
    }
    // Pacing improves the incast p999 FCT (same profile, same scale —
    // raw microseconds compare directly; 5 % slack for quantile
    // bucketing).
    if let (Some(unpaced), Some(paced)) =
        (find("fleet_incast_unpaced"), find("fleet_incast_paced"))
    {
        let u = unpaced.fct_us(0.999).unwrap_or(0);
        let p = paced.fct_us(0.999).unwrap_or(0);
        verdict(
            "pacing-improves-incast-p999",
            format!("paced {} vs unpaced {}", fmt_us(p), fmt_us(u)),
            p as f64 <= u as f64 * 1.05,
        );
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::effort::Effort;

    #[test]
    fn profiles_validate_and_scale_with_effort() {
        for effort in [Effort::Smoke, Effort::Standard, Effort::Full] {
            for p in profiles(effort) {
                assert!(p.validate().is_empty(), "{}: {:?}", p.name, p.validate());
            }
        }
        // Full effort crosses the ≥1M-flows bar in the steady profile.
        assert!(profiles(Effort::Full)[0].max_flows >= 1_000_000);
        // The two incast profiles differ only in pacing: identical
        // arrivals, sizes, duration and class shape.
        let u = incast_profile(Effort::Smoke, false);
        let p = incast_profile(Effort::Smoke, true);
        assert_eq!(u.duration, p.duration);
        assert_eq!(u.max_flows, p.max_flows);
        assert!(!u.classes[0].pacing && p.classes[0].pacing);
    }

    #[test]
    fn fleet_serves_all_profiles_with_golden_shapes_at_smoke() {
        let before = common::failed_scenario_count();
        let table = fleet(&RunCtx::new(Effort::Smoke));
        let profile_rows: Vec<_> = table.rows.iter().filter(|r| r[0] != "ordering").collect();
        assert_eq!(profile_rows.len(), 3, "{:?}", table.rows);
        let ordering_rows: Vec<_> = table.rows.iter().filter(|r| r[0] == "ordering").collect();
        assert_eq!(ordering_rows.len(), 2, "{:?}", table.rows);
        for row in &table.rows {
            assert_eq!(row[9], "ok", "{row:?}");
        }
        assert_eq!(common::failed_scenario_count(), before);
    }
}
