//! CUBIC congestion control (RFC 9438, simplified).
//!
//! Simplifications relative to the RFC, documented for reviewers:
//!
//! * the TCP-friendliness (Reno-emulation) region is omitted — at the
//!   paper's window scales (10⁴–10⁵ MSS) the cubic region always
//!   dominates;
//! * HyStart++ (RFC 9406) is the delay-based variant with Conservative
//!   Slow Start: an RTT rise moves the flow into CSS (quarter-rate
//!   growth) rather than ending slow start outright, and slow start
//!   resumes if the RTT recovers — without this, a flow that samples a
//!   transient queue exits with a tiny ssthresh and then crawls for
//!   tens of seconds on a high-BDP path (the classic HyStart false
//!   positive);
//! * ABC/pacing interactions are handled by the pacer, not here.

use super::{window_rate, CongestionControl};
use simcore::{BitRate, Bytes, SimDuration, SimTime};

/// CUBIC's multiplicative decrease factor (RFC 9438).
pub const BETA: f64 = 0.7;
/// CUBIC's scaling constant C (window growth in MSS/s³).
pub const C: f64 = 0.4;
/// Slow-start pacing ratio (Linux `tcp_pacing_ss_ratio` = 200 %).
pub const SS_PACING_RATIO: f64 = 2.0;
/// Congestion-avoidance pacing ratio (`tcp_pacing_ca_ratio` = 120 %).
pub const CA_PACING_RATIO: f64 = 1.2;
/// HyStart++ RTT-rise threshold floor, `MIN_RTT_THRESH` (RFC 9406 §4.2).
pub const HYSTART_MIN_RTT_THRESH: SimDuration = SimDuration::from_millis(4);
/// HyStart++ RTT-rise threshold cap, `MAX_RTT_THRESH` (RFC 9406 §4.2).
/// Without the cap, an RTT/8 rise on a long path (≥128 ms floor) asks
/// for more standing queue than the bottleneck buffer holds, and CSS
/// effectively never triggers.
pub const HYSTART_MAX_RTT_THRESH: SimDuration = SimDuration::from_millis(16);

/// CUBIC state.
#[derive(Debug, Clone)]
pub struct Cubic {
    mss: Bytes,
    min_cwnd: Bytes,
    cwnd: Bytes,
    ssthresh: Bytes,
    /// W_max in MSS units at the last loss.
    w_max: f64,
    /// Epoch start (set on first ACK after a loss).
    epoch_start: Option<SimTime>,
    /// Time-shift K of the cubic, seconds.
    k: f64,
    /// HyStart bookkeeping.
    hystart_min_rtt: Option<SimDuration>,
    /// Conservative-slow-start state: bytes acked since CSS entry and
    /// the cwnd at entry. `Some` while in CSS.
    css: Option<(f64, f64)>,
    exited_slow_start: bool,
}

impl Cubic {
    /// New CUBIC flow.
    pub fn new(mss: Bytes, init_cwnd: Bytes) -> Self {
        assert!(mss.as_u64() > 0, "MSS must be positive");
        let init = init_cwnd.max(mss * super::MIN_CWND_SEGMENTS);
        Cubic {
            mss,
            min_cwnd: mss * super::MIN_CWND_SEGMENTS,
            cwnd: init,
            ssthresh: Bytes::new(u64::MAX),
            w_max: 0.0,
            epoch_start: None,
            k: 0.0,
            hystart_min_rtt: None,
            css: None,
            exited_slow_start: false,
        }
    }

    fn mss_f(&self) -> f64 {
        self.mss.as_f64()
    }

    fn cwnd_mss(&self) -> f64 {
        self.cwnd.as_f64() / self.mss_f()
    }

    /// HyStart++ (delay variant): an RTT rise over the floor enters
    /// Conservative Slow Start; an RTT recovery leaves it again.
    fn hystart_check(&mut self, rtt: SimDuration) {
        let floor = match self.hystart_min_rtt {
            None => {
                self.hystart_min_rtt = Some(rtt);
                return;
            }
            Some(m) => {
                let m = m.min(rtt);
                self.hystart_min_rtt = Some(m);
                m
            }
        };
        // RFC 9406: RttThresh = clamp(MIN_RTT_THRESH, baseRTT/8,
        // MAX_RTT_THRESH) — both clamps, not just the lower one.
        let thresh =
            floor + (floor / 8).max(HYSTART_MIN_RTT_THRESH).min(HYSTART_MAX_RTT_THRESH);
        if !self.in_slow_start() {
            return;
        }
        if rtt > thresh {
            if self.css.is_none() {
                self.css = Some((0.0, self.cwnd.as_f64()));
            }
        } else if self.css.is_some() {
            // False positive: the queue drained — resume slow start.
            self.css = None;
        }
    }
}

impl CongestionControl for Cubic {
    fn on_ack(
        &mut self,
        acked: Bytes,
        rtt: Option<SimDuration>,
        now: SimTime,
        _inflight: Bytes,
        cwnd_limited: bool,
    ) {
        if let Some(r) = rtt {
            self.hystart_check(r);
        }
        if !cwnd_limited {
            // Application- or pacing-limited: the window is not being
            // used, so growing it would only store up a future burst.
            // Restart the cubic epoch so time spent app-limited doesn't
            // later translate into an explosive W(t) jump (Linux resets
            // the epoch around app-limited periods too).
            self.epoch_start = None;
            return;
        }
        if self.in_slow_start() {
            match &mut self.css {
                None => {
                    // Exponential growth: one MSS per acked MSS.
                    self.cwnd += acked;
                }
                Some((css_acked, entry_cwnd)) => {
                    // Conservative Slow Start: quarter-rate growth; if
                    // the RTT stays elevated long enough to grow ~75 %
                    // past the entry window, the queue is real — end
                    // slow start.
                    *css_acked += acked.as_f64();
                    self.cwnd += Bytes::new((acked.as_f64() / 4.0) as u64);
                    if *css_acked > 3.0 * *entry_cwnd {
                        self.ssthresh = self.cwnd;
                        self.exited_slow_start = true;
                        self.css = None;
                    }
                }
            }
            if self.cwnd >= self.ssthresh {
                self.exited_slow_start = true;
            }
            return;
        }
        // Congestion avoidance: approach the cubic target.
        let epoch = match self.epoch_start {
            Some(e) => e,
            None => {
                // Start a new epoch around the current window.
                if self.w_max < self.cwnd_mss() {
                    self.w_max = self.cwnd_mss();
                    self.k = 0.0;
                } else {
                    self.k = ((self.w_max * (1.0 - BETA)) / C).cbrt();
                }
                self.epoch_start = Some(now);
                now
            }
        };
        let t = now.saturating_since(epoch).as_secs_f64();
        let target_mss = C * (t - self.k).powi(3) + self.w_max;
        let w = self.cwnd_mss();
        if target_mss > w {
            // Standard CUBIC increment: (target - cwnd)/cwnd per ACK,
            // scaled by the acked segments for burst-sized ACKs.
            let acked_mss = acked.as_f64() / self.mss_f();
            let inc = ((target_mss - w) / w * acked_mss).min(acked_mss);
            self.cwnd = Bytes::new((self.cwnd.as_f64() + inc * self.mss_f()) as u64);
        } else {
            // Below target (concave plateau): probe gently.
            let acked_mss = acked.as_f64() / self.mss_f();
            let inc = 0.01 * acked_mss;
            self.cwnd = Bytes::new((self.cwnd.as_f64() + inc * self.mss_f()) as u64);
        }
    }

    fn on_loss(&mut self, _now: SimTime) {
        let w = self.cwnd_mss();
        // Fast convergence: release bandwidth when the loss arrives
        // below the previous W_max.
        self.w_max = if w < self.w_max { w * (1.0 + BETA) / 2.0 } else { w };
        self.k = ((self.w_max * (1.0 - BETA)) / C).cbrt();
        let new = Bytes::new((self.cwnd.as_f64() * BETA) as u64).max(self.min_cwnd);
        self.cwnd = new;
        self.ssthresh = new;
        self.epoch_start = None;
        self.exited_slow_start = true;
    }

    fn on_rto(&mut self, _now: SimTime) {
        self.w_max = self.cwnd_mss();
        self.ssthresh =
            Bytes::new((self.cwnd.as_f64() / 2.0) as u64).max(self.min_cwnd * 2);
        self.cwnd = self.min_cwnd.max(Bytes::new(self.mss.as_u64() * 2));
        self.epoch_start = None;
        self.exited_slow_start = false;
        self.hystart_min_rtt = None;
        self.css = None;
    }

    fn cwnd(&self) -> Bytes {
        self.cwnd
    }

    fn ssthresh(&self) -> Option<Bytes> {
        // u64::MAX is the "not yet set" sentinel, i.e. Linux's
        // TCP_INFINITE_SSTHRESH.
        (self.ssthresh.as_u64() != u64::MAX).then_some(self.ssthresh)
    }

    fn in_slow_start(&self) -> bool {
        !self.exited_slow_start && self.cwnd < self.ssthresh
    }

    fn pacing_rate(&self, srtt: SimDuration) -> BitRate {
        let ratio = if self.in_slow_start() { SS_PACING_RATIO } else { CA_PACING_RATIO };
        window_rate(self.cwnd, srtt, ratio)
    }

    fn name(&self) -> &'static str {
        "cubic"
    }

    fn clone_box(&self) -> Box<dyn CongestionControl> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mss() -> Bytes {
        Bytes::new(9000)
    }

    fn cubic() -> Cubic {
        Cubic::new(mss(), Bytes::new(9000 * 10))
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut c = cubic();
        let start = c.cwnd();
        // Ack a full window: cwnd should double.
        c.on_ack(start, Some(SimDuration::from_millis(10)), SimTime::ZERO, start, true);
        assert_eq!(c.cwnd(), start + start);
        assert!(c.in_slow_start());
    }

    #[test]
    fn loss_multiplies_by_beta() {
        let mut c = cubic();
        // Grow a bit first.
        for _ in 0..10 {
            let w = c.cwnd();
            c.on_ack(w, None, SimTime::ZERO, w, true);
        }
        let before = c.cwnd();
        c.on_loss(SimTime::ZERO);
        let after = c.cwnd();
        let ratio = after.as_f64() / before.as_f64();
        assert!((ratio - BETA).abs() < 0.01, "loss ratio {ratio}");
        assert!(!c.in_slow_start());
    }

    #[test]
    fn cubic_recovers_toward_w_max() {
        let mut c = cubic();
        // Reach ~1000 MSS then lose.
        while c.cwnd().as_u64() < 9000 * 1000 {
            let w = c.cwnd();
            c.on_ack(w, None, SimTime::ZERO, w, true);
        }
        let w_before_loss = c.cwnd();
        c.on_loss(SimTime::ZERO);
        // Simulate 60 s of ACK clocking at 10 ms RTT.
        let rtt = SimDuration::from_millis(10);
        let mut now = SimTime::ZERO;
        for _ in 0..6000 {
            now += rtt;
            let w = c.cwnd();
            c.on_ack(w, Some(rtt), now, w, true);
        }
        assert!(
            c.cwnd().as_f64() >= w_before_loss.as_f64() * 0.95,
            "cwnd {:.0} MSS should have recovered toward {:.0} MSS",
            c.cwnd().as_f64() / 9000.0,
            w_before_loss.as_f64() / 9000.0
        );
    }

    #[test]
    fn hystart_css_slows_then_exits_on_sustained_rise() {
        let mut c = cubic();
        let base = SimDuration::from_millis(20);
        c.on_ack(c.cwnd(), Some(base), SimTime::ZERO, c.cwnd(), true);
        assert!(c.in_slow_start());
        // Sustained RTT inflation: CSS first (still nominally slow
        // start, quarter-rate growth), then a real exit.
        let inflated = SimDuration::from_millis(30);
        let before = c.cwnd();
        c.on_ack(before, Some(inflated), SimTime::ZERO, before, true);
        let grown = c.cwnd() - before;
        assert!(grown < before / 2, "CSS must grow at quarter rate");
        for _ in 0..8 {
            let w = c.cwnd();
            c.on_ack(w, Some(inflated), SimTime::ZERO, w, true);
        }
        assert!(!c.in_slow_start(), "sustained inflation ends slow start");
    }

    #[test]
    fn hystart_css_recovers_from_false_positive() {
        let mut c = cubic();
        let base = SimDuration::from_millis(20);
        c.on_ack(c.cwnd(), Some(base), SimTime::ZERO, c.cwnd(), true);
        // One inflated sample, then the queue drains.
        c.on_ack(c.cwnd(), Some(SimDuration::from_millis(30)), SimTime::ZERO, c.cwnd(), true);
        assert!(c.in_slow_start());
        c.on_ack(c.cwnd(), Some(base), SimTime::ZERO, c.cwnd(), true);
        // Full-rate doubling resumed.
        let before = c.cwnd();
        c.on_ack(before, Some(base), SimTime::ZERO, before, true);
        assert_eq!(c.cwnd(), before + before);
    }

    #[test]
    fn hystart_threshold_capped_at_16ms_on_104ms_path() {
        // RFC 9406 clamps the RTT-rise threshold to [4 ms, 16 ms].
        // On the paper's 104 ms AmLight path the uncapped floor/8 rule
        // gives 13 ms, so a 17 ms standing queue must trigger CSS.
        let mut c = cubic();
        let floor = SimDuration::from_millis(104);
        c.on_ack(c.cwnd(), Some(floor), SimTime::ZERO, c.cwnd(), true);
        assert!(c.in_slow_start());
        let inflated = floor + SimDuration::from_millis(17);
        let before = c.cwnd();
        c.on_ack(before, Some(inflated), SimTime::ZERO, before, true);
        let grown = c.cwnd() - before;
        assert!(grown < before / 2, "17 ms of queue at 104 ms floor must enter CSS");
    }

    #[test]
    fn hystart_threshold_cap_binds_beyond_128ms_floors() {
        // At a 200 ms floor, floor/8 = 25 ms: without the 16 ms cap a
        // 17 ms rise would be ignored and CSS would effectively never
        // trigger on long paths.
        let mut c = cubic();
        let floor = SimDuration::from_millis(200);
        c.on_ack(c.cwnd(), Some(floor), SimTime::ZERO, c.cwnd(), true);
        let inflated = floor + SimDuration::from_millis(17);
        let before = c.cwnd();
        c.on_ack(before, Some(inflated), SimTime::ZERO, before, true);
        let grown = c.cwnd() - before;
        assert!(grown < before / 2, "16 ms cap must bind on a 200 ms floor");
        // A rise below the cap still doubles at full rate.
        let mut c2 = cubic();
        c2.on_ack(c2.cwnd(), Some(floor), SimTime::ZERO, c2.cwnd(), true);
        let mild = floor + SimDuration::from_millis(10);
        let before2 = c2.cwnd();
        c2.on_ack(before2, Some(mild), SimTime::ZERO, before2, true);
        assert_eq!(c2.cwnd(), before2 + before2, "below-threshold rise stays in slow start");
    }

    #[test]
    fn hystart_lower_clamp_still_4ms() {
        // Short floor (8 ms): floor/8 = 1 ms clamps up to 4 ms, so a
        // 3 ms rise is tolerated and a 5 ms rise enters CSS.
        let mut c = cubic();
        let floor = SimDuration::from_millis(8);
        c.on_ack(c.cwnd(), Some(floor), SimTime::ZERO, c.cwnd(), true);
        let before = c.cwnd();
        c.on_ack(before, Some(floor + SimDuration::from_millis(3)), SimTime::ZERO, before, true);
        assert_eq!(c.cwnd(), before + before, "3 ms rise under the 4 ms clamp");
        let before2 = c.cwnd();
        c.on_ack(
            before2,
            Some(floor + SimDuration::from_millis(5)),
            SimTime::ZERO,
            before2,
            true,
        );
        assert!(c.cwnd() - before2 < before2 / 2, "5 ms rise over the clamp enters CSS");
    }

    #[test]
    fn ssthresh_reported_after_loss_only() {
        let mut c = cubic();
        assert_eq!(c.ssthresh(), None, "pre-loss ssthresh is infinite");
        c.on_loss(SimTime::ZERO);
        assert_eq!(c.ssthresh(), Some(c.cwnd()), "post-loss ssthresh = reduced cwnd");
    }

    #[test]
    fn rto_collapses_window() {
        let mut c = cubic();
        for _ in 0..10 {
            let w = c.cwnd();
            c.on_ack(w, None, SimTime::ZERO, w, true);
        }
        let before = c.cwnd();
        c.on_rto(SimTime::ZERO);
        assert!(c.cwnd() < before / 10);
        assert!(c.in_slow_start(), "RTO restarts slow start");
    }

    #[test]
    fn pacing_ratio_by_phase() {
        let mut c = cubic();
        let srtt = SimDuration::from_millis(10);
        let ss_rate = c.pacing_rate(srtt);
        let expect_ss = c.cwnd().bits() as f64 / 0.01 * 2.0;
        assert!((ss_rate.as_bps() - expect_ss).abs() / expect_ss < 1e-9);
        c.on_loss(SimTime::ZERO);
        let ca_rate = c.pacing_rate(srtt);
        let expect_ca = c.cwnd().bits() as f64 / 0.01 * 1.2;
        assert!((ca_rate.as_bps() - expect_ca).abs() / expect_ca < 1e-9);
    }

    #[test]
    fn fast_convergence_reduces_w_max() {
        let mut c = cubic();
        for _ in 0..12 {
            let w = c.cwnd();
            c.on_ack(w, None, SimTime::ZERO, w, true);
        }
        c.on_loss(SimTime::ZERO);
        let w_max_1 = c.w_max;
        // Second loss immediately (below previous w_max): fast
        // convergence shrinks the target.
        c.on_loss(SimTime::ZERO);
        assert!(c.w_max < w_max_1);
    }
}
