//! Bare-metal vs virtualised test environment (§III-H, Fig. 4).
//!
//! AmLight runs its test workloads in an Ubuntu VM with NIC
//! PCI-passthrough, `iommu=pt`/`intel_iommu=on` on the host, and 1:1
//! vCPU pinning on the NIC's NUMA node. The paper validates that this
//! setup performs within one standard deviation of bare metal; our
//! model gives the VM a small per-burst exit/steal cost and slightly
//! wider service-time jitter, which reproduces exactly that.

/// Where the benchmark runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VirtMode {
    /// Directly on the host OS.
    Baremetal,
    /// Tuned VM: PCI passthrough + pinned vCPUs (§III-H).
    PassthroughVm,
    /// Untuned VM: no passthrough, floating vCPUs. Not used by the
    /// paper (it would not have passed the Fig. 4 validation), provided
    /// for ablation studies.
    UntunedVm,
}

impl VirtMode {
    /// Extra CPU cycles per burst for virtualisation exits/steals.
    pub fn per_burst_overhead_cycles(self) -> f64 {
        match self {
            VirtMode::Baremetal => 0.0,
            VirtMode::PassthroughVm => 400.0,
            VirtMode::UntunedVm => 9_000.0,
        }
    }

    /// Multiplier on service-time jitter amplitude.
    pub fn jitter_factor(self) -> f64 {
        match self {
            VirtMode::Baremetal => 1.0,
            VirtMode::PassthroughVm => 1.4,
            VirtMode::UntunedVm => 3.0,
        }
    }

    /// Per-byte cost multiplier (software-emulated DMA path for the
    /// untuned VM).
    pub fn per_byte_factor(self) -> f64 {
        match self {
            VirtMode::Baremetal | VirtMode::PassthroughVm => 1.0,
            VirtMode::UntunedVm => 1.6,
        }
    }

    /// Report label.
    pub fn name(self) -> &'static str {
        match self {
            VirtMode::Baremetal => "baremetal",
            VirtMode::PassthroughVm => "VM (passthrough)",
            VirtMode::UntunedVm => "VM (untuned)",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passthrough_overhead_is_small() {
        // The whole point of Fig. 4: passthrough ≈ baremetal.
        let bm = VirtMode::Baremetal;
        let vm = VirtMode::PassthroughVm;
        // 400 cycles per 64 KiB burst at 3.6 GHz ≈ 0.11 µs vs ~8 µs of
        // copy work: well under 2 %.
        let copy_cycles = 0.44 * 65_536.0;
        assert!(vm.per_burst_overhead_cycles() / copy_cycles < 0.02);
        assert_eq!(bm.per_burst_overhead_cycles(), 0.0);
        assert_eq!(vm.per_byte_factor(), 1.0);
    }

    #[test]
    fn untuned_vm_is_visibly_slower() {
        let u = VirtMode::UntunedVm;
        assert!(u.per_byte_factor() > 1.5);
        assert!(u.per_burst_overhead_cycles() > 5_000.0);
    }
}
