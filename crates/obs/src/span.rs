//! Lightweight phase spans.
//!
//! A [`SpanRecord`] marks one named phase of a run — `setup`,
//! `warmup`, `steady`, `drain`, `checkpoint`, `cache_lookup` — within
//! a scope (typically `experiment/scenario/repN`). Spans are plain
//! data; the harness times phases itself and appends records to a
//! JSONL sink in the metrics directory. Wall-clock spans carry the
//! unit `"wall_s"`, simulated-time spans `"sim_s"`.

use crate::json_escape;

/// One completed phase span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Owning scope, e.g. `fig05/wan_25ms/rep0`.
    pub scope: String,
    /// Phase name, e.g. `steady` or `cache_lookup`.
    pub name: String,
    /// Time unit of `start`/`dur`: `"wall_s"` (wall clock, relative to
    /// the metrics session start) or `"sim_s"` (simulated time).
    pub unit: &'static str,
    /// Span start in `unit`s.
    pub start: f64,
    /// Span duration in `unit`s.
    pub dur: f64,
}

impl SpanRecord {
    /// Render as one JSON line.
    pub fn to_json_line(&self) -> String {
        format!(
            "{{\"scope\":\"{}\",\"name\":\"{}\",\"unit\":\"{}\",\"start\":{:.6},\"dur\":{:.6}}}",
            json_escape(&self.scope),
            json_escape(&self.name),
            json_escape(self.unit),
            self.start,
            self.dur,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_line_shape() {
        let span = SpanRecord {
            scope: "fig05/rep0".into(),
            name: "steady".into(),
            unit: "sim_s",
            start: 1.0,
            dur: 4.25,
        };
        assert_eq!(
            span.to_json_line(),
            "{\"scope\":\"fig05/rep0\",\"name\":\"steady\",\"unit\":\"sim_s\",\"start\":1.000000,\"dur\":4.250000}"
        );
    }

    #[test]
    fn escapes_quotes() {
        let span = SpanRecord {
            scope: "a\"b".into(),
            name: "n".into(),
            unit: "wall_s",
            start: 0.0,
            dur: 0.0,
        };
        assert!(span.to_json_line().contains("a\\\"b"));
    }
}
