//! Observer-neutrality and well-formedness of the streaming-metrics
//! subsystem (DESIGN.md §6h).
//!
//! The contract: attaching a [`harness::MetricsHub`] never changes
//! what is simulated — reports are bit-identical with metrics on and
//! off — and the artifacts it writes (OpenMetrics exposition,
//! per-repetition interval series, phase spans) are well-formed.

use dtnperf::prelude::*;
use harness::{MetricsHub, RunCtx};
use iperf3sim::Iperf3Opts;
use std::path::PathBuf;
use std::sync::Arc;

fn scenario(label: &str) -> Scenario {
    Scenario::symmetric(
        label,
        Testbeds::esnet_host(KernelVersion::L6_8),
        Testbeds::esnet_path(EsnetPath::Lan),
        Iperf3Opts::new(2).omit(0),
    )
}

/// A fresh, empty metrics directory unique to this test.
fn metrics_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("repro_metrics_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

#[test]
fn metrics_on_is_bit_identical_to_metrics_off() {
    let sc = scenario("neutrality");
    let plain = RunCtx::new(Effort::Smoke).harness_with_reps(2).run(&sc).expect("plain run");

    let dir = metrics_dir("neutral");
    let hub = Arc::new(MetricsHub::new(&dir).expect("hub dir"));
    let observed = RunCtx::new(Effort::Smoke)
        .with_metrics(hub)
        .harness_with_reps(2)
        .run(&sc)
        .expect("observed run");

    // Bit-identical reports: same seeds, same event sequences, same
    // rendered JSON, to the last byte.
    assert_eq!(plain.reports.len(), observed.reports.len());
    for (a, b) in plain.reports.iter().zip(&observed.reports) {
        assert_eq!(a.to_json(), b.to_json(), "metrics observation changed a report");
    }
    assert_eq!(plain.throughput_gbps.mean, observed.throughput_gbps.mean);
    assert_eq!(plain.retr.mean, observed.retr.mean);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn metrics_do_not_change_cache_eligibility() {
    // A metrics-observed run must still be a cache-eligible pure
    // function of (scenario, seed): second run all hits, zero misses.
    let cache_dir = metrics_dir("cache_elig_store");
    let cache = Arc::new(harness::RunCache::new(&cache_dir));
    let dir = metrics_dir("cache_elig");
    let hub = Arc::new(MetricsHub::new(&dir).expect("hub dir"));
    let ctx = RunCtx::new(Effort::Smoke).with_cache(cache.clone()).with_metrics(hub);
    let sc = scenario("metrics_cacheable");
    ctx.harness_with_reps(2).run(&sc).expect("first run");
    assert_eq!(cache.stats.stores(), 2, "metrics must not force observers on");
    ctx.harness_with_reps(2).run(&sc).expect("second run");
    assert_eq!(cache.stats.hits(), 2);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&cache_dir).ok();
}

#[test]
fn openmetrics_exposition_is_well_formed() {
    let dir = metrics_dir("openmetrics");
    let hub = Arc::new(MetricsHub::new(&dir).expect("hub dir"));
    let ctx = RunCtx::new(Effort::Smoke).with_metrics(hub.clone());
    ctx.harness_with_reps(2).run(&scenario("exposition")).expect("run");
    let path = hub.write_exposition().expect("write exposition");
    let text = std::fs::read_to_string(path).expect("read exposition");

    // Terminated exactly once, at the end.
    assert!(text.ends_with("# EOF\n"), "missing # EOF terminator");
    assert_eq!(text.matches("# EOF").count(), 1);

    // Every sample line belongs to a family declared with # TYPE, and
    // counter samples carry the _total suffix with a parseable value.
    let mut counters: Vec<String> = Vec::new();
    let mut gauges: Vec<String> = Vec::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = rest.split_once(' ').expect("TYPE has name and kind");
            match kind {
                "counter" => counters.push(name.to_string()),
                "gauge" => gauges.push(name.to_string()),
                "summary" => {}
                other => panic!("unexpected metric type {other}"),
            }
        }
    }
    assert!(!counters.is_empty(), "no counters exposed");
    assert!(!gauges.is_empty(), "no gauges exposed");
    for name in &counters {
        let sample = text
            .lines()
            .find(|l| l.starts_with(&format!("{name}_total ")))
            .unwrap_or_else(|| panic!("counter {name} has no _total sample"));
        let value: f64 = sample.split_whitespace().nth(1).expect("value").parse().expect("number");
        assert!(value >= 0.0, "counter {name} negative");
    }
    // Engine health gauges landed (sampled at end-of-round barriers).
    assert!(gauges.iter().any(|g| g == "engine_queue_len"));
    // The per-rep wall-time histogram is exposed as a summary with
    // quantile labels and a consistent count.
    assert!(text.contains("# TYPE repro_rep_wall_ms summary"));
    assert!(text.contains("repro_rep_wall_ms{quantile=\"0.5\"}"));
    assert!(text.contains("repro_rep_wall_ms_count 2"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn interval_series_and_spans_are_written() {
    let dir = metrics_dir("intervals");
    let hub = Arc::new(MetricsHub::new(&dir).expect("hub dir"));
    let ctx = RunCtx::new(Effort::Smoke).with_metrics(hub.clone());
    ctx.harness_with_reps(2).run(&scenario("series")).expect("run");
    hub.write_exposition().expect("write exposition");

    for rep in 0..2 {
        let path = dir.join(format!("series_rep{rep}.intervals.jsonl"));
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing interval series {}: {e}", path.display()));
        assert!(!text.trim().is_empty(), "empty interval series");
        for line in text.lines() {
            assert!(line.starts_with("{\"start\":"), "malformed interval line: {line}");
            assert!(line.contains("\"goodput_mbps\""), "interval line lost goodput: {line}");
            assert!(line.ends_with("}}}"), "unterminated interval line: {line}");
        }
    }
    let spans = std::fs::read_to_string(dir.join("spans.jsonl")).expect("spans written");
    assert!(spans.lines().any(|l| l.contains("\"name\":\"steady\"") && l.contains("\"unit\":\"sim_s\"")));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpointed_run_samples_queue_health_and_counts_checkpoints() {
    let dir = metrics_dir("ckpt");
    let hub = Arc::new(MetricsHub::new(&dir).expect("hub dir"));
    let mut ctx = RunCtx::new(Effort::Smoke).with_metrics(hub.clone());
    ctx.checkpoint_every = 50_000;
    ctx.harness_with_reps(1).run(&scenario("ckpt_health")).expect("run");
    let snap = hub.recorder().snapshot();
    assert!(
        snap.counters.get("supervisor_checkpoints").copied().unwrap_or(0) > 0,
        "no checkpoints counted at cadence 50k"
    );
    assert!(snap.gauges.contains_key("engine_queue_len"));
    assert!(snap.hists["engine_queue_depth"].count() > 0);
    assert!(snap.hists["rep_sim_events"].count() >= 1);
    std::fs::remove_dir_all(&dir).ok();
}
