//! Tests for the mpstat-style per-second CPU sampling.

use linuxhost::{HostConfig, KernelVersion};
use nethw::PathSpec;
use netsim::{SimConfig, Simulation, WorkloadSpec};
use simcore::BitRate;

fn run(secs: u64) -> netsim::RunResult {
    let host = HostConfig::esnet_amd(KernelVersion::L6_8);
    let cfg = SimConfig {
        sender: host.clone(),
        receiver: host,
        path: PathSpec::lan("lan", BitRate::gbps(200.0)),
        workload: WorkloadSpec::single_stream(secs),
    };
    Simulation::new(cfg).expect("config").run().expect("run")
}

#[test]
fn one_sample_per_second() {
    let res = run(6); // no omit at 6 s → ticks at t = 1..6
    assert!(
        (4..=6).contains(&res.cpu_intervals.len()),
        "expected ~5-6 samples, got {}",
        res.cpu_intervals.len()
    );
    // With a 2 s omit (8 s run) the warm-up samples are excluded.
    let res8 = run(8);
    assert!(
        res8.cpu_intervals.len() <= 6,
        "omit must swallow warm-up samples, got {}",
        res8.cpu_intervals.len()
    );
}

#[test]
fn samples_reflect_load() {
    let res = run(6);
    for (i, (snd, rcv)) in res.cpu_intervals.iter().enumerate() {
        // AMD LAN default: both sides busy, receiver the busier host.
        assert!(*snd > 50.0, "sample {i}: sender {snd:.0}% too idle");
        assert!(*rcv > *snd, "sample {i}: receiver {rcv:.0}% should exceed sender {snd:.0}%");
        assert!(*rcv < 1600.0, "sample {i}: receiver {rcv:.0}% exceeds 16 cores");
    }
}

#[test]
fn steady_state_samples_are_stable() {
    let res = run(8);
    let snd: Vec<f64> = res.cpu_intervals.iter().map(|s| s.0).collect();
    let mean = snd.iter().sum::<f64>() / snd.len() as f64;
    for s in &snd {
        assert!(
            (s - mean).abs() < mean * 0.25,
            "steady-state mpstat samples should be stable: {snd:?}"
        );
    }
}
