//! Fault injection: scheduled network and host failures.
//!
//! A [`FaultPlan`] is a list of timed [`FaultEvent`]s attached to a
//! workload. Each fault perturbs the *environment* — the path, the
//! bottleneck switch, the receiving application — never the TCP
//! machinery itself, so everything the paper cares about (RTO and TLP
//! firing, cwnd collapse and regrowth, zero-window stalls, pause-frame
//! backpressure) *emerges* from the existing mechanisms reacting to the
//! injected condition.
//!
//! Four fault classes are modelled:
//!
//! * **Bursty loss** — a Gilbert–Elliott episode: the path flips
//!   between a lossless *good* state and a *bad* state that drops each
//!   burst with probability `loss_bad`; sojourn times in each state are
//!   exponential. Bursty loss is what separates congestion controls on
//!   high-BDP paths, which uniform random loss cannot express.
//! * **Link flap** — the bottleneck egress goes dark for a window;
//!   every burst and ACK arriving at the switch during the outage is
//!   lost. Recovery is pure TCP: RTO fires, cwnd collapses, slow start
//!   regrows.
//! * **Receiver stall** — the receiving application stops reading
//!   (GC pause, disk stall). The socket buffer fills, rwnd closes to
//!   zero, and the sender must ride a zero-window period, resuming on
//!   the window update when reads restart.
//! * **Pause storm** — 802.3x pause frames from elsewhere in the
//!   fabric park every arrival at the receiver edge for the storm's
//!   duration; the bounded pause buffer overflows onto the ring-drop
//!   counter, so a storm long enough converts flow control into loss.

use simcore::SimDuration;

/// One class of injectable fault.
#[derive(Debug, Clone, PartialEq)]
pub enum Fault {
    /// Gilbert–Elliott bursty-loss episode.
    BurstyLoss {
        /// Episode length (the model runs good↔bad inside this window).
        duration: SimDuration,
        /// Mean sojourn in the bad (lossy) state.
        mean_bad: SimDuration,
        /// Mean sojourn in the good (lossless) state.
        mean_good: SimDuration,
        /// Per-burst drop probability while in the bad state.
        loss_bad: f64,
    },
    /// Bottleneck egress outage.
    LinkFlap {
        /// Outage length.
        duration: SimDuration,
    },
    /// Receiving application stops reading.
    ReceiverStall {
        /// Stall length.
        duration: SimDuration,
    },
    /// Pause-frame storm at the receiver edge.
    PauseStorm {
        /// Storm length.
        duration: SimDuration,
    },
}

impl Fault {
    /// Short class name ("bursty-loss", "link-flap", …).
    pub fn kind(&self) -> &'static str {
        match self {
            Fault::BurstyLoss { .. } => "bursty-loss",
            Fault::LinkFlap { .. } => "link-flap",
            Fault::ReceiverStall { .. } => "receiver-stall",
            Fault::PauseStorm { .. } => "pause-storm",
        }
    }

    /// How long the fault condition lasts.
    pub fn duration(&self) -> SimDuration {
        match self {
            Fault::BurstyLoss { duration, .. }
            | Fault::LinkFlap { duration }
            | Fault::ReceiverStall { duration }
            | Fault::PauseStorm { duration } => *duration,
        }
    }
}

/// A fault scheduled at an absolute offset from the start of the run.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// When the fault begins (offset from t=0, *not* from the omit
    /// boundary).
    pub at: SimDuration,
    /// What happens.
    pub fault: Fault,
}

impl FaultEvent {
    /// When the fault condition clears.
    pub fn ends_at(&self) -> SimDuration {
        self.at + self.fault.duration()
    }
}

/// The full fault schedule for one run (empty = fault-free).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Scheduled faults, in no particular order.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty (fault-free) plan.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// True when no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Builder: add an arbitrary fault at `at`.
    pub fn with_fault(mut self, at: SimDuration, fault: Fault) -> Self {
        self.events.push(FaultEvent { at, fault });
        self
    }

    /// Builder: Gilbert–Elliott bursty-loss episode with default
    /// sojourns (10 ms bad / 50 ms good).
    pub fn with_bursty_loss(self, at: SimDuration, duration: SimDuration, loss_bad: f64) -> Self {
        self.with_fault(
            at,
            Fault::BurstyLoss {
                duration,
                mean_bad: SimDuration::from_millis(10),
                mean_good: SimDuration::from_millis(50),
                loss_bad,
            },
        )
    }

    /// Builder: link flap.
    pub fn with_link_flap(self, at: SimDuration, duration: SimDuration) -> Self {
        self.with_fault(at, Fault::LinkFlap { duration })
    }

    /// Builder: receiver-application stall.
    pub fn with_receiver_stall(self, at: SimDuration, duration: SimDuration) -> Self {
        self.with_fault(at, Fault::ReceiverStall { duration })
    }

    /// Builder: pause-frame storm.
    pub fn with_pause_storm(self, at: SimDuration, duration: SimDuration) -> Self {
        self.with_fault(at, Fault::PauseStorm { duration })
    }

    /// Validate against the run length; returns problems (empty = ok).
    pub fn validate(&self, run_duration: SimDuration) -> Vec<String> {
        let mut problems = Vec::new();
        for (i, ev) in self.events.iter().enumerate() {
            let kind = ev.fault.kind();
            if ev.fault.duration().is_zero() {
                problems.push(format!("fault {i} ({kind}): zero duration"));
            }
            if ev.at >= run_duration {
                problems.push(format!(
                    "fault {i} ({kind}): starts at {} but the run ends at {run_duration}",
                    ev.at
                ));
            }
            if let Fault::BurstyLoss { mean_bad, mean_good, loss_bad, .. } = &ev.fault {
                if !(0.0..=1.0).contains(loss_bad) || *loss_bad == 0.0 {
                    problems.push(format!(
                        "fault {i} ({kind}): loss_bad {loss_bad} must be in (0, 1]"
                    ));
                }
                if mean_bad.is_zero() || mean_good.is_zero() {
                    problems.push(format!("fault {i} ({kind}): zero mean sojourn"));
                }
            }
        }
        problems
    }
}

impl simcore::Canonicalize for Fault {
    fn canonicalize(&self, c: &mut simcore::Canon) {
        c.put_str("kind", self.kind());
        c.put_u64("duration_ns", self.duration().as_nanos());
        if let Fault::BurstyLoss { mean_bad, mean_good, loss_bad, .. } = self {
            c.put_u64("mean_bad_ns", mean_bad.as_nanos());
            c.put_u64("mean_good_ns", mean_good.as_nanos());
            c.put_f64("loss_bad", *loss_bad);
        }
    }
}

impl simcore::Canonicalize for FaultEvent {
    fn canonicalize(&self, c: &mut simcore::Canon) {
        c.put_u64("at_ns", self.at.as_nanos());
        c.scope("fault", |c| self.fault.canonicalize(c));
    }
}

impl simcore::Canonicalize for FaultPlan {
    /// Events are sorted by (start, kind) before canonicalization so a
    /// plan means the same schedule regardless of builder-call order.
    fn canonicalize(&self, c: &mut simcore::Canon) {
        let mut sorted: Vec<&FaultEvent> = self.events.iter().collect();
        sorted.sort_by_key(|ev| (ev.at, ev.fault.kind()));
        let items: Vec<&dyn simcore::Canonicalize> =
            sorted.iter().map(|ev| *ev as &dyn simcore::Canonicalize).collect();
        c.put_seq("events", &items);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_and_kinds() {
        let plan = FaultPlan::none()
            .with_bursty_loss(SimDuration::from_secs(1), SimDuration::from_millis(500), 0.3)
            .with_link_flap(SimDuration::from_secs(2), SimDuration::from_millis(300))
            .with_receiver_stall(SimDuration::from_secs(3), SimDuration::from_millis(200))
            .with_pause_storm(SimDuration::from_secs(4), SimDuration::from_millis(100));
        assert_eq!(plan.events.len(), 4);
        let kinds: Vec<&str> = plan.events.iter().map(|e| e.fault.kind()).collect();
        assert_eq!(kinds, ["bursty-loss", "link-flap", "receiver-stall", "pause-storm"]);
        assert!(plan.validate(SimDuration::from_secs(10)).is_empty());
        assert_eq!(
            plan.events[1].ends_at(),
            SimDuration::from_secs(2) + SimDuration::from_millis(300)
        );
    }

    #[test]
    fn empty_plan_is_default() {
        assert!(FaultPlan::none().is_empty());
        assert!(FaultPlan::default().validate(SimDuration::from_secs(1)).is_empty());
    }

    #[test]
    fn validation_catches_bad_schedules() {
        let late = FaultPlan::none()
            .with_link_flap(SimDuration::from_secs(20), SimDuration::from_millis(100));
        assert!(!late.validate(SimDuration::from_secs(10)).is_empty());

        let zero = FaultPlan::none()
            .with_receiver_stall(SimDuration::from_secs(1), SimDuration::ZERO);
        assert!(!zero.validate(SimDuration::from_secs(10)).is_empty());

        let bad_p = FaultPlan::none().with_bursty_loss(
            SimDuration::from_secs(1),
            SimDuration::from_millis(100),
            0.0,
        );
        assert!(!bad_p.validate(SimDuration::from_secs(10)).is_empty());

        let over_p = FaultPlan::none().with_bursty_loss(
            SimDuration::from_secs(1),
            SimDuration::from_millis(100),
            1.5,
        );
        assert!(!over_p.validate(SimDuration::from_secs(10)).is_empty());
    }
}
