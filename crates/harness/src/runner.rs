//! The repetition runner.
//!
//! The paper's methodology (§III-G): run every configuration for 60
//! seconds, at least 10 times, with `mpstat` sampling CPU alongside;
//! report mean, stdev, min and max. Repetitions only differ by seed
//! here, and are independent simulations — so they run on parallel
//! threads via `crossbeam::scope`.

use crate::scenario::Scenario;
use iperf3sim::Iperf3Report;
use parking_lot::Mutex;
use simcore::{RunningStats, Summary};

/// Aggregated results for one scenario across repetitions.
#[derive(Debug, Clone)]
pub struct TestSummary {
    /// Scenario label.
    pub label: String,
    /// Aggregate throughput (Gbps) across repetitions.
    pub throughput_gbps: Summary,
    /// Total retransmitted packets per run.
    pub retr: Summary,
    /// Lowest single-stream rate seen in any repetition (Gbps).
    pub min_stream_gbps: f64,
    /// Highest single-stream rate seen in any repetition (Gbps).
    pub max_stream_gbps: f64,
    /// Sender combined CPU ("TX cores", %) across repetitions.
    pub sender_cpu_pct: Summary,
    /// Receiver combined CPU ("RX cores", %) across repetitions.
    pub receiver_cpu_pct: Summary,
    /// Zerocopy fallback fraction (mean across repetitions).
    pub zc_fallback: f64,
    /// The individual reports (one per repetition).
    pub reports: Vec<Iperf3Report>,
}

impl TestSummary {
    /// Mean throughput in Gbps.
    pub fn mean_gbps(&self) -> f64 {
        self.throughput_gbps.mean
    }

    /// Mean retransmitted packets per run (what the paper's `Retr`
    /// column shows).
    pub fn mean_retr(&self) -> f64 {
        self.retr.mean
    }
}

/// The harness: repetition count and seeding policy.
#[derive(Debug, Clone)]
pub struct TestHarness {
    /// Number of repetitions per scenario.
    pub repetitions: usize,
    /// Base seed; repetition `i` runs with `base_seed + i`.
    pub base_seed: u64,
    /// Run repetitions on parallel threads.
    pub parallel: bool,
}

impl Default for TestHarness {
    fn default() -> Self {
        TestHarness { repetitions: 5, base_seed: 1000, parallel: true }
    }
}

impl TestHarness {
    /// Harness with `repetitions` runs per scenario.
    pub fn new(repetitions: usize) -> Self {
        assert!(repetitions > 0, "need at least one repetition");
        TestHarness { repetitions, ..Default::default() }
    }

    /// Builder: set the base seed.
    pub fn with_base_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Builder: disable thread-level parallelism (deterministic
    /// ordering for debugging; results are identical either way).
    pub fn sequential(mut self) -> Self {
        self.parallel = false;
        self
    }

    /// Run all repetitions of one scenario and aggregate.
    ///
    /// Panics if the scenario is invalid (flag/kernel mismatches are
    /// experiment-definition bugs, reported with the iperf3 error).
    pub fn run(&self, scenario: &Scenario) -> TestSummary {
        let reports = Mutex::new(vec![None::<Iperf3Report>; self.repetitions]);
        let run_one = |i: usize| {
            let opts = scenario.opts.clone().seed(self.base_seed + i as u64);
            let report = iperf3sim::run(&scenario.client, &scenario.server, &scenario.path, &opts)
                .unwrap_or_else(|e| panic!("scenario '{}': {e}", scenario.label));
            reports.lock()[i] = Some(report);
        };
        if self.parallel && self.repetitions > 1 {
            crossbeam::thread::scope(|s| {
                for i in 0..self.repetitions {
                    s.spawn(move |_| run_one(i));
                }
            })
            .expect("repetition thread panicked");
        } else {
            for i in 0..self.repetitions {
                run_one(i);
            }
        }
        let reports: Vec<Iperf3Report> =
            reports.into_inner().into_iter().map(|r| r.expect("missing repetition")).collect();
        Self::aggregate(&scenario.label, reports)
    }

    fn aggregate(label: &str, reports: Vec<Iperf3Report>) -> TestSummary {
        let mut tput = RunningStats::new();
        let mut retr = RunningStats::new();
        let mut snd_cpu = RunningStats::new();
        let mut rcv_cpu = RunningStats::new();
        let mut min_stream = f64::INFINITY;
        let mut max_stream = f64::NEG_INFINITY;
        let mut zc_fallback = 0.0;
        for r in &reports {
            tput.push(r.sum_bitrate().as_gbps());
            retr.push(r.sum_retr() as f64);
            snd_cpu.push(r.sender_cpu.combined_pct());
            rcv_cpu.push(r.receiver_cpu.combined_pct());
            min_stream = min_stream.min(r.min_stream_gbps());
            max_stream = max_stream.max(r.max_stream_gbps());
            zc_fallback += r.zc_fallback_fraction;
        }
        TestSummary {
            label: label.to_string(),
            throughput_gbps: tput.summary(),
            retr: retr.summary(),
            min_stream_gbps: min_stream,
            max_stream_gbps: max_stream,
            sender_cpu_pct: snd_cpu.summary(),
            receiver_cpu_pct: rcv_cpu.summary(),
            zc_fallback: zc_fallback / reports.len() as f64,
            reports,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbeds::{EsnetPath, Testbeds};
    use iperf3sim::Iperf3Opts;
    use linuxhost::KernelVersion;

    fn scenario() -> Scenario {
        Scenario::symmetric(
            "default",
            Testbeds::esnet_host(KernelVersion::L6_8),
            Testbeds::esnet_path(EsnetPath::Lan),
            Iperf3Opts::new(2).omit(0),
        )
    }

    #[test]
    fn aggregates_across_repetitions() {
        let h = TestHarness::new(3);
        let s = h.run(&scenario());
        assert_eq!(s.throughput_gbps.n, 3);
        assert_eq!(s.reports.len(), 3);
        assert!(s.mean_gbps() > 20.0, "AMD LAN default ≈ 42, got {}", s.mean_gbps());
        assert!(s.throughput_gbps.min <= s.throughput_gbps.mean);
        assert!(s.throughput_gbps.mean <= s.throughput_gbps.max);
        assert!(s.receiver_cpu_pct.mean > 50.0);
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let sc = scenario();
        let par = TestHarness::new(2).run(&sc);
        let seq = TestHarness::new(2).sequential().run(&sc);
        assert_eq!(par.throughput_gbps.mean, seq.throughput_gbps.mean);
        assert_eq!(par.retr.mean, seq.retr.mean);
    }

    #[test]
    fn seeds_differ_across_repetitions() {
        let s = TestHarness::new(3).run(&scenario());
        // Distinct seeds ⇒ stdev strictly positive (service jitter).
        assert!(s.throughput_gbps.stdev > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one repetition")]
    fn zero_repetitions_rejected() {
        let _ = TestHarness::new(0);
    }
}
