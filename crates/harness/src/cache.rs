//! The content-addressed run cache.
//!
//! Simulated repetitions are pure functions of (scenario, seed,
//! cost-model version). When `REPRO_CACHE_DIR` is set, the harness
//! keys each repetition by the 128-bit fingerprint of exactly those
//! inputs — the scenario's canonical serialization (display names
//! excluded) plus the seed and [`linuxhost::COST_MODEL_VERSION`] — and
//! stores the resulting [`Iperf3Report`] as a checksummed JSON file.
//! A later invocation with the same key loads the report instead of
//! simulating, bit-identically: floats round-trip through their
//! IEEE-754 bit patterns, never through decimal.
//!
//! Safety properties:
//! * **corruption** — a truncated or bit-flipped file fails the length
//!   or FNV-1a checksum test in the header and is recomputed (and
//!   overwritten) as if absent;
//! * **staleness** — the cost-model version is part of the key *and*
//!   the header, so bumping [`linuxhost::COST_MODEL_VERSION`] orphans
//!   every old entry;
//! * **atomicity** — entries are written to a temp file and renamed
//!   into place, so a crashed writer can leave junk but never a
//!   plausible half-entry;
//! * **observers excluded** — only runs without telemetry sampling or
//!   attribution are cached (those attach large observer payloads that
//!   do not affect traffic; the runner skips the cache for them).

use iperf3sim::{Iperf3Report, StreamReport};
use linuxhost::CpuReport;
use simcore::{fnv1a_64, BitRate, Bytes, Canon, Canonicalize, SimDuration};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::scenario::Scenario;

/// On-disk schema version (layout of the payload JSON).
const SCHEMA: u32 = 1;

/// 128-bit content address of one repetition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheKey {
    hi: u64,
    lo: u64,
}

impl CacheKey {
    /// The entry's file name.
    pub fn file_name(&self) -> String {
        format!("{:016x}{:016x}.json", self.hi, self.lo)
    }
}

/// What was wrong with an on-disk entry that *existed* but could not
/// be used. Each kind is counted separately: a rash of corrupt entries
/// points at the disk, a rash of stale ones at a cost-model bump.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheFault {
    /// Bad magic, failed checksum, or an unparsable payload.
    Corrupt,
    /// Header `len` disagrees with the payload (partial write/truncate).
    Truncated,
    /// Intact entry from an older schema or cost-model version.
    Stale,
}

impl CacheFault {
    /// Human-readable reason, used in the recovery warning.
    pub fn reason(self) -> &'static str {
        match self {
            CacheFault::Corrupt => "corrupt (checksum or payload mismatch)",
            CacheFault::Truncated => "truncated (length mismatch)",
            CacheFault::Stale => "stale (schema or cost-model version)",
        }
    }
}

/// Hit/miss/store counters for one cache handle, plus recovery
/// counters for entries that existed but had to be recomputed.
#[derive(Debug, Default)]
pub struct CacheStats {
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    corrupt: AtomicU64,
    truncated: AtomicU64,
    stale: AtomicU64,
}

impl CacheStats {
    /// Lookups that returned a valid entry.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found nothing usable (absent, corrupt, or stale).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries written.
    pub fn stores(&self) -> u64 {
        self.stores.load(Ordering::Relaxed)
    }

    /// Misses caused by a corrupt entry (bad checksum/magic/payload).
    pub fn corrupt_recoveries(&self) -> u64 {
        self.corrupt.load(Ordering::Relaxed)
    }

    /// Misses caused by a truncated entry.
    pub fn truncated_recoveries(&self) -> u64 {
        self.truncated.load(Ordering::Relaxed)
    }

    /// Misses caused by a stale (old schema/cost-model) entry.
    pub fn stale_recoveries(&self) -> u64 {
        self.stale.load(Ordering::Relaxed)
    }

    /// Total misses where an entry existed but was unusable.
    pub fn recoveries(&self) -> u64 {
        self.corrupt_recoveries() + self.truncated_recoveries() + self.stale_recoveries()
    }

    fn count_fault(&self, fault: CacheFault) {
        let counter = match fault {
            CacheFault::Corrupt => &self.corrupt,
            CacheFault::Truncated => &self.truncated,
            CacheFault::Stale => &self.stale,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Reset all counters (per-experiment reporting).
    pub fn reset(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.stores.store(0, Ordering::Relaxed);
        self.corrupt.store(0, Ordering::Relaxed);
        self.truncated.store(0, Ordering::Relaxed);
        self.stale.store(0, Ordering::Relaxed);
    }
}

/// A content-addressed report cache rooted at one directory.
#[derive(Debug)]
pub struct RunCache {
    dir: PathBuf,
    cost_model_version: u32,
    /// Counters, readable while runs are in flight.
    pub stats: CacheStats,
}

impl RunCache {
    /// A cache in `dir` (created on first store), keyed on the current
    /// [`linuxhost::COST_MODEL_VERSION`].
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        RunCache {
            dir: dir.into(),
            cost_model_version: linuxhost::COST_MODEL_VERSION,
            stats: CacheStats::default(),
        }
    }

    /// From `REPRO_CACHE_DIR`, if set.
    pub fn from_env() -> Option<Self> {
        std::env::var_os("REPRO_CACHE_DIR").map(|d| RunCache::new(PathBuf::from(d)))
    }

    /// Test hook: pretend the cost model is at a different version.
    pub fn with_cost_model_version(mut self, version: u32) -> Self {
        self.cost_model_version = version;
        self
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The cost-model version this cache keys on.
    pub fn cost_model_version(&self) -> u32 {
        self.cost_model_version
    }

    /// The content address of one repetition.
    pub fn key(&self, scenario: &Scenario, seed: u64) -> CacheKey {
        let mut c = Canon::new();
        c.scope("scenario", |c| scenario.canonicalize(c));
        c.put_u64("seed", seed);
        c.put_u64("cost_model_version", self.cost_model_version as u64);
        c.put_u64("schema", SCHEMA as u64);
        CacheKey { hi: c.fingerprint(), lo: c.fingerprint_alt() }
    }

    /// The on-disk path of `key`'s entry (whether or not it exists).
    pub fn entry_path(&self, key: &CacheKey) -> PathBuf {
        self.dir.join(key.file_name())
    }

    /// Load the entry for `key`, if present and intact. Absent, corrupt
    /// and stale entries all read as a miss.
    pub fn lookup(&self, key: &CacheKey) -> Option<Iperf3Report> {
        self.lookup_detail(key).ok().flatten()
    }

    /// [`RunCache::lookup`] with the miss cause exposed: `Ok(Some)` is
    /// a hit, `Ok(None)` means no entry existed, and `Err(fault)` means
    /// an entry existed but was corrupt/truncated/stale — counted on
    /// [`RunCache::stats`], logged with the offending path, and left
    /// for the caller's recompute-and-store to overwrite (self-heal).
    pub fn lookup_detail(&self, key: &CacheKey) -> Result<Option<Iperf3Report>, CacheFault> {
        let path = self.entry_path(key);
        let Ok(text) = std::fs::read_to_string(&path) else {
            self.stats.misses.fetch_add(1, Ordering::Relaxed);
            return Ok(None);
        };
        match decode_entry(&text, self.cost_model_version) {
            Ok(report) => {
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                Ok(Some(report))
            }
            Err(fault) => {
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                self.stats.count_fault(fault);
                eprintln!(
                    "warning: cache entry {} {}: recomputing",
                    path.display(),
                    fault.reason()
                );
                Err(fault)
            }
        }
    }

    /// Store `report` under `key` (atomic: temp file + rename). Errors
    /// are reported on stderr and swallowed — a read-only cache
    /// degrades to "always miss", it never fails the run.
    pub fn store(&self, key: &CacheKey, report: &Iperf3Report) {
        let entry = encode_entry(report, self.cost_model_version);
        let path = self.dir.join(key.file_name());
        let tmp = self.dir.join(format!(".{}.tmp{}", key.file_name(), std::process::id()));
        let write = || -> std::io::Result<()> {
            std::fs::create_dir_all(&self.dir)?;
            std::fs::write(&tmp, &entry)?;
            std::fs::rename(&tmp, &path)
        };
        match write() {
            Ok(()) => {
                self.stats.stores.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                eprintln!("warning: cache store failed for {}: {e}", path.display());
            }
        }
    }
}

// ---------------------------------------------------------------------
// Entry format: one header line, then the payload JSON.
//
//   dtnperf-cache schema=1 cost_model=1 len=1234 checksum=0123456789abcdef
//   {"command":...}
//
// `len` is the payload's byte length (truncation check); `checksum` is
// FNV-1a over the payload bytes (bit-flip check).
// ---------------------------------------------------------------------

fn encode_entry(report: &Iperf3Report, cost_model_version: u32) -> String {
    let payload = encode_report(report);
    format!(
        "dtnperf-cache schema={SCHEMA} cost_model={cost_model_version} len={} checksum={:016x}\n{payload}",
        payload.len(),
        fnv1a_64(payload.as_bytes()),
    )
}

fn decode_entry(text: &str, cost_model_version: u32) -> Result<Iperf3Report, CacheFault> {
    let (header, payload) = text.split_once('\n').ok_or(CacheFault::Truncated)?;
    let mut fields = header.split(' ');
    if fields.next() != Some("dtnperf-cache") {
        return Err(CacheFault::Corrupt);
    }
    let mut schema = None;
    let mut cost_model = None;
    let mut len = None;
    let mut checksum = None;
    for field in fields {
        let (k, v) = field.split_once('=').ok_or(CacheFault::Corrupt)?;
        match k {
            "schema" => schema = v.parse::<u32>().ok(),
            "cost_model" => cost_model = v.parse::<u32>().ok(),
            "len" => len = v.parse::<usize>().ok(),
            "checksum" => checksum = u64::from_str_radix(v, 16).ok(),
            _ => return Err(CacheFault::Corrupt),
        }
    }
    let (schema, cost_model) = (schema.ok_or(CacheFault::Corrupt)?, cost_model.ok_or(CacheFault::Corrupt)?);
    let (len, checksum) = (len.ok_or(CacheFault::Corrupt)?, checksum.ok_or(CacheFault::Corrupt)?);
    if schema != SCHEMA || cost_model != cost_model_version {
        return Err(CacheFault::Stale); // stale layout or stale cost model
    }
    if len != payload.len() {
        return Err(CacheFault::Truncated);
    }
    if checksum != fnv1a_64(payload.as_bytes()) {
        return Err(CacheFault::Corrupt); // bit-flipped
    }
    decode_report(payload).ok_or(CacheFault::Corrupt)
}

/// f64 → exact 16-hex IEEE-754 bits (the only float encoding used).
fn hex_bits(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

fn f64_seq(xs: impl Iterator<Item = f64>) -> String {
    let items: Vec<String> = xs.map(|x| format!("\"{}\"", hex_bits(x))).collect();
    format!("[{}]", items.join(","))
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn encode_cpu(cpu: &CpuReport) -> String {
    format!(
        "{{\"per_core\":{},\"app_pct\":\"{}\",\"irq_pct\":\"{}\",\"peak_core_pct\":\"{}\"}}",
        f64_seq(cpu.per_core.iter().copied()),
        hex_bits(cpu.app_pct),
        hex_bits(cpu.irq_pct),
        hex_bits(cpu.peak_core_pct),
    )
}

fn encode_report(r: &Iperf3Report) -> String {
    let streams: Vec<String> = r
        .streams
        .iter()
        .map(|s| {
            format!(
                "{{\"id\":{},\"bytes\":{},\"bitrate\":\"{}\",\"retr\":{},\"intervals\":{}}}",
                s.id,
                s.bytes.as_u64(),
                hex_bits(s.bitrate.as_bps()),
                s.retr,
                f64_seq(s.intervals.iter().map(|b| b.as_bps())),
            )
        })
        .collect();
    format!(
        "{{\"command\":\"{}\",\"window_ns\":{},\"zc_fallback_fraction\":\"{}\",\"sender_cpu\":{},\"receiver_cpu\":{},\"streams\":[{}]}}",
        escape(&r.command),
        r.window.as_nanos(),
        hex_bits(r.zc_fallback_fraction),
        encode_cpu(&r.sender_cpu),
        encode_cpu(&r.receiver_cpu),
        streams.join(","),
    )
}

/// Strict cursor over the exact byte layout `encode_report` emits. The
/// checksum has already vouched for the bytes; the parser only needs to
/// reverse the writer, failing (`None`) on any mismatch.
struct Cursor<'a> {
    rest: &'a str,
}

impl<'a> Cursor<'a> {
    fn eat(&mut self, token: &str) -> Option<()> {
        self.rest = self.rest.strip_prefix(token)?;
        Some(())
    }

    fn u64_until(&mut self, stop: char) -> Option<u64> {
        let end = self.rest.find(stop)?;
        let n = self.rest[..end].parse::<u64>().ok()?;
        self.rest = &self.rest[end..];
        Some(n)
    }

    /// A quoted 16-hex float-bits literal.
    fn f64_bits(&mut self) -> Option<f64> {
        self.eat("\"")?;
        let bits = u64::from_str_radix(self.rest.get(..16)?, 16).ok()?;
        self.rest = &self.rest[16..];
        self.eat("\"")?;
        Some(f64::from_bits(bits))
    }

    /// A quoted, escaped string.
    fn string(&mut self) -> Option<String> {
        self.eat("\"")?;
        let mut out = String::new();
        let mut chars = self.rest.char_indices();
        loop {
            let (i, ch) = chars.next()?;
            match ch {
                '"' => {
                    self.rest = &self.rest[i + 1..];
                    return Some(out);
                }
                '\\' => {
                    let (_, esc) = chars.next()?;
                    match esc {
                        '"' | '\\' => out.push(esc),
                        _ => return None,
                    }
                }
                _ => out.push(ch),
            }
        }
    }

    fn f64_array(&mut self) -> Option<Vec<f64>> {
        self.eat("[")?;
        let mut out = Vec::new();
        if self.rest.starts_with(']') {
            self.eat("]")?;
            return Some(out);
        }
        loop {
            out.push(self.f64_bits()?);
            if self.rest.starts_with(',') {
                self.eat(",")?;
            } else {
                self.eat("]")?;
                return Some(out);
            }
        }
    }

    fn cpu(&mut self) -> Option<CpuReport> {
        self.eat("{\"per_core\":")?;
        let per_core = self.f64_array()?;
        self.eat(",\"app_pct\":")?;
        let app_pct = self.f64_bits()?;
        self.eat(",\"irq_pct\":")?;
        let irq_pct = self.f64_bits()?;
        self.eat(",\"peak_core_pct\":")?;
        let peak_core_pct = self.f64_bits()?;
        self.eat("}")?;
        Some(CpuReport { per_core, app_pct, irq_pct, peak_core_pct })
    }

    fn stream(&mut self) -> Option<StreamReport> {
        self.eat("{\"id\":")?;
        let id = self.u64_until(',')? as usize;
        self.eat(",\"bytes\":")?;
        let bytes = Bytes::new(self.u64_until(',')?);
        self.eat(",\"bitrate\":")?;
        let bitrate = BitRate::from_bps(self.f64_bits()?);
        self.eat(",\"retr\":")?;
        let retr = self.u64_until(',')?;
        self.eat(",\"intervals\":")?;
        let intervals = self.f64_array()?.into_iter().map(BitRate::from_bps).collect();
        self.eat("}")?;
        Some(StreamReport { id, bytes, bitrate, retr, intervals })
    }
}

fn decode_report(payload: &str) -> Option<Iperf3Report> {
    let mut c = Cursor { rest: payload };
    c.eat("{\"command\":")?;
    let command = c.string()?;
    c.eat(",\"window_ns\":")?;
    let window = SimDuration::from_nanos(c.u64_until(',')?);
    c.eat(",\"zc_fallback_fraction\":")?;
    let zc_fallback_fraction = c.f64_bits()?;
    c.eat(",\"sender_cpu\":")?;
    let sender_cpu = c.cpu()?;
    c.eat(",\"receiver_cpu\":")?;
    let receiver_cpu = c.cpu()?;
    c.eat(",\"streams\":[")?;
    let mut streams = Vec::new();
    if c.rest.starts_with(']') {
        c.eat("]")?;
    } else {
        loop {
            streams.push(c.stream()?);
            if c.rest.starts_with(',') {
                c.eat(",")?;
            } else {
                c.eat("]")?;
                break;
            }
        }
    }
    c.eat("}")?;
    if !c.rest.is_empty() {
        return None;
    }
    Some(Iperf3Report {
        command,
        streams,
        window,
        sender_cpu,
        receiver_cpu,
        zc_fallback_fraction,
        telemetry: None,
        attribution: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> Iperf3Report {
        Iperf3Report {
            command: "iperf3 -c \"dtn\\1\" -t 10 -J".into(),
            streams: vec![
                StreamReport {
                    id: 5,
                    bytes: Bytes::gib(10),
                    bitrate: BitRate::from_bps(10.1e9 + 0.3),
                    retr: 12,
                    intervals: vec![BitRate::from_bps(0.1 + 0.2), BitRate::ZERO],
                },
                StreamReport {
                    id: 6,
                    bytes: Bytes::new(0),
                    bitrate: BitRate::ZERO,
                    retr: 0,
                    intervals: Vec::new(),
                },
            ],
            window: SimDuration::from_secs(10),
            sender_cpu: CpuReport {
                per_core: vec![1.5, 0.0, 99.99999],
                app_pct: 101.5,
                irq_pct: 3.25,
                peak_core_pct: 99.99999,
            },
            receiver_cpu: CpuReport::zero(2),
            zc_fallback_fraction: 0.1 + 0.2,
            telemetry: None,
            attribution: None,
        }
    }

    fn reports_bit_identical(a: &Iperf3Report, b: &Iperf3Report) -> bool {
        encode_report(a) == encode_report(b)
    }

    #[test]
    fn payload_roundtrips_bit_exactly() {
        let r = report();
        let decoded = decode_report(&encode_report(&r)).expect("decode");
        assert!(reports_bit_identical(&r, &decoded));
        assert_eq!(decoded.command, r.command);
        assert_eq!(decoded.zc_fallback_fraction.to_bits(), r.zc_fallback_fraction.to_bits());
        assert_eq!(decoded.streams.len(), 2);
        assert!(decoded.streams[1].intervals.is_empty());
    }

    #[test]
    fn entry_roundtrips_through_header() {
        let r = report();
        let entry = encode_entry(&r, 1);
        let decoded = decode_entry(&entry, 1).expect("decode entry");
        assert!(reports_bit_identical(&r, &decoded));
    }

    #[test]
    fn truncated_entry_rejected() {
        let entry = encode_entry(&report(), 1);
        let truncated = &entry[..entry.len() - 7];
        assert_eq!(decode_entry(truncated, 1).unwrap_err(), CacheFault::Truncated);
    }

    #[test]
    fn bit_flipped_entry_rejected() {
        let entry = encode_entry(&report(), 1);
        // Flip one payload byte, keeping the length intact.
        let mut bytes = entry.into_bytes();
        let idx = bytes.len() - 10;
        bytes[idx] ^= 0x01;
        let flipped = String::from_utf8(bytes).expect("utf8");
        assert_eq!(decode_entry(&flipped, 1).unwrap_err(), CacheFault::Corrupt);
    }

    #[test]
    fn cost_model_version_mismatch_rejected() {
        let entry = encode_entry(&report(), 1);
        assert_eq!(decode_entry(&entry, 2).unwrap_err(), CacheFault::Stale);
        assert!(decode_entry(&entry, 1).is_ok());
    }

    #[test]
    fn garbage_rejected() {
        assert_eq!(decode_entry("", 1).unwrap_err(), CacheFault::Truncated);
        assert_eq!(decode_entry("not a cache file\n{}", 1).unwrap_err(), CacheFault::Corrupt);
        assert_eq!(
            decode_entry("dtnperf-cache schema=1\n{}", 1).unwrap_err(),
            CacheFault::Corrupt
        );
    }

    #[test]
    fn lookup_detail_counts_and_heals_faults() {
        let dir = std::env::temp_dir().join(format!("cache_heal_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let cache = RunCache::new(&dir);
        let key = CacheKey { hi: 1, lo: 2 };
        let r = report();

        // Absent: clean miss, no fault counted.
        assert!(matches!(cache.lookup_detail(&key), Ok(None)));
        assert_eq!(cache.stats.recoveries(), 0);

        // Store, then truncate on disk: the fault is typed, counted,
        // and the entry self-heals on the next store.
        cache.store(&key, &r);
        let path = cache.entry_path(&key);
        let bytes = std::fs::read(&path).expect("entry written");
        std::fs::write(&path, &bytes[..bytes.len() / 2]).expect("truncate");
        assert!(matches!(cache.lookup_detail(&key), Err(CacheFault::Truncated)));
        assert_eq!(cache.stats.truncated_recoveries(), 1);
        assert_eq!(cache.stats.recoveries(), 1);

        cache.store(&key, &r);
        let healed = cache.lookup_detail(&key).expect("intact").expect("hit");
        assert!(reports_bit_identical(&r, &healed));
        assert_eq!(cache.stats.recoveries(), 1, "heal adds no new fault");

        // Recovery counters reset with the rest.
        cache.stats.reset();
        assert_eq!(cache.stats.recoveries(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
