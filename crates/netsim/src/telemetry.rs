//! In-run telemetry: the simulator's `ss -tin` / `ethtool -S` /
//! `mpstat` companion streams (§III-G).
//!
//! The paper's collection model runs three samplers on a fixed tick
//! alongside every test: `ss -tin` for per-flow `tcp_info` (cwnd,
//! ssthresh, srtt, retransmissions, pacing rate, CA state),
//! `ethtool -S` for NIC/switch counters, and `mpstat` for per-core
//! utilisation. This module reproduces that model inside the event
//! loop: when [`crate::WorkloadSpec::telemetry`] is set, the runner
//! schedules a sampling tick and records one [`TcpInfoSample`] per
//! flow and one [`HostSample`] per tick.
//!
//! Sampling is strictly read-only — it never touches flow state, the
//! RNG, or the event dynamics — so a run with telemetry enabled
//! reproduces the exact same traffic as the same seed without it.
//! When disabled (the default) no tick is scheduled and nothing
//! allocates: the only cost is one `Option` discriminant in the
//! runner.

use crate::attribution::LimitingFactor;
use simcore::{BitRate, Bytes, SimDuration, SimTime, TimeSeries};

/// Sender congestion-avoidance state, as `ss -tin` would name it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaState {
    /// Exponential startup (including HyStart++ CSS).
    SlowStart,
    /// Steady-state congestion avoidance.
    CongestionAvoidance,
    /// SACK/TLP loss recovery in progress.
    Recovery,
}

impl CaState {
    /// Lowercase wire name for traces ("slow_start", …).
    pub fn name(self) -> &'static str {
        match self {
            CaState::SlowStart => "slow_start",
            CaState::CongestionAvoidance => "congestion_avoidance",
            CaState::Recovery => "recovery",
        }
    }
}

/// One `ss -tin`-style snapshot of a flow.
#[derive(Debug, Clone)]
pub struct TcpInfoSample {
    /// Congestion window.
    pub cwnd: Bytes,
    /// Slow-start threshold (`None` = still infinite / not applicable).
    pub ssthresh: Option<Bytes>,
    /// Smoothed RTT (`None` before the first sample).
    pub srtt: Option<SimDuration>,
    /// The rate the sender is pacing itself at right now.
    pub pacing_rate: BitRate,
    /// Congestion-avoidance state.
    pub ca_state: CaState,
    /// Cumulative retransmitted bytes (burst-granular, like
    /// `bytes_retrans`).
    pub bytes_retrans: Bytes,
    /// Cumulative retransmitted MTU segments (iperf3's `Retr`).
    pub retr_packets: u64,
    /// Cumulative bytes delivered in order to the receiving
    /// application.
    pub delivered_bytes: Bytes,
    /// Bytes delivered within this sample's interval. Summed over a
    /// whole trace this reproduces [`TcpInfoSample::delivered_bytes`]
    /// of the final sample exactly — the interval-vs-ledger invariant
    /// the tests pin down.
    pub interval_bytes: Bytes,
    /// The most recent per-interval bottleneck verdict, when
    /// [`crate::WorkloadSpec::attribution`] is on and at least one
    /// interval has been classified.
    pub limiting: Option<LimitingFactor>,
}

/// One `ethtool -S` + `mpstat`-style host snapshot. All counters are
/// deltas over the sample interval, the way `ethtool -S` output is
/// consumed in practice.
#[derive(Debug, Clone)]
pub struct HostSample {
    /// Bursts dropped at the receiver NIC ring this interval.
    pub ring_drops: u64,
    /// Bursts tail-dropped (or RED-dropped) at the switch.
    pub switch_drops: u64,
    /// Bursts lost to random path loss.
    pub random_drops: u64,
    /// Bursts destroyed by injected faults.
    pub fault_drops: u64,
    /// Pause-frame holds: bursts parked upstream by 802.3x flow
    /// control (pause storms included) this interval.
    pub pause_frames: u64,
    /// Bursts handed to the wire (incl. retransmissions).
    pub wire_sent: u64,
    /// Per-core busy% on the sending host over the interval
    /// (`mpstat -P ALL` rows).
    pub sender_core_busy: Vec<f64>,
    /// Per-core busy% on the receiving host over the interval.
    pub receiver_core_busy: Vec<f64>,
}

/// The per-flow telemetry stream.
#[derive(Debug, Clone)]
pub struct FlowTrace {
    /// Flow index (matches [`crate::FlowResult::id`]).
    pub id: usize,
    /// Samples, one per tick (plus a final partial-interval flush).
    pub samples: TimeSeries<TcpInfoSample>,
}

impl FlowTrace {
    /// Sum of per-interval delivered bytes across the whole trace.
    pub fn total_interval_bytes(&self) -> Bytes {
        self.samples
            .values()
            .iter()
            .fold(Bytes::ZERO, |acc, s| acc + s.interval_bytes)
    }
}

/// The host/NIC/switch telemetry stream.
#[derive(Debug, Clone, Default)]
pub struct HostTrace {
    /// Samples, one per tick (plus a final partial-interval flush).
    pub samples: TimeSeries<HostSample>,
}

/// A full run's telemetry: what `ss`/`ethtool`/`mpstat` would have
/// collected alongside the test.
#[derive(Debug, Clone)]
pub struct Telemetry {
    /// The sampling tick the run used.
    pub tick: SimDuration,
    /// One trace per flow.
    pub flows: Vec<FlowTrace>,
    /// The host counter/CPU trace.
    pub host: HostTrace,
}

/// Cumulative drop/wire counters, used to form per-interval deltas.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct CounterSnapshot {
    pub(crate) ring_drops: u64,
    pub(crate) switch_drops: u64,
    pub(crate) random_drops: u64,
    pub(crate) fault_drops: u64,
    pub(crate) pause_frames: u64,
    pub(crate) wire_sent: u64,
}

/// The live sampler owned by the runner while telemetry is enabled.
///
/// Holds the accumulated traces plus the "previous tick" marks that
/// turn cumulative simulator counters into `ethtool`-style deltas.
#[derive(Debug, Clone)]
pub(crate) struct TelemetrySampler {
    tick: SimDuration,
    flows: Vec<FlowTrace>,
    host: HostTrace,
    /// Per-flow delivered-burst count at the previous tick.
    delivered_mark: Vec<u64>,
    /// Host counter totals at the previous tick.
    counter_mark: CounterSnapshot,
    /// Per-core busy time at the previous tick (mpstat deltas).
    snd_busy_mark: Vec<SimDuration>,
    rcv_busy_mark: Vec<SimDuration>,
    /// When the previous tick fired.
    last_sample: SimTime,
}

impl TelemetrySampler {
    pub(crate) fn new(
        tick: SimDuration,
        num_flows: usize,
        snd_busy: Vec<SimDuration>,
        rcv_busy: Vec<SimDuration>,
    ) -> Self {
        TelemetrySampler {
            tick,
            flows: (0..num_flows)
                .map(|id| FlowTrace { id, samples: TimeSeries::new() })
                .collect(),
            host: HostTrace::default(),
            delivered_mark: vec![0; num_flows],
            counter_mark: CounterSnapshot::default(),
            snd_busy_mark: snd_busy,
            rcv_busy_mark: rcv_busy,
            last_sample: SimTime::ZERO,
        }
    }

    /// The configured sampling interval.
    pub(crate) fn tick(&self) -> SimDuration {
        self.tick
    }

    /// When the previous sample was taken.
    pub(crate) fn last_sample(&self) -> SimTime {
        self.last_sample
    }

    /// Whether any flow delivered data since the previous sample (the
    /// end-of-run flush only records when there is something to add).
    pub(crate) fn pending_delivery(&self, delivered_bursts: &[u64]) -> bool {
        delivered_bursts
            .iter()
            .zip(&self.delivered_mark)
            .any(|(now, mark)| now > mark)
    }

    /// Record one flow's snapshot at `now`. `delivered_bursts` is the
    /// flow's cumulative app-delivered burst count; the sampler turns
    /// it into this interval's byte delta against its own mark.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn sample_flow(
        &mut self,
        now: SimTime,
        flow: usize,
        burst: Bytes,
        delivered_bursts: u64,
        info: FlowInfo,
    ) {
        let delta = delivered_bursts - self.delivered_mark[flow];
        self.delivered_mark[flow] = delivered_bursts;
        self.flows[flow].samples.push(
            now,
            TcpInfoSample {
                cwnd: info.cwnd,
                ssthresh: info.ssthresh,
                srtt: info.srtt,
                pacing_rate: info.pacing_rate,
                ca_state: info.ca_state,
                bytes_retrans: info.bytes_retrans,
                retr_packets: info.retr_packets,
                delivered_bytes: Bytes::new(delivered_bursts * burst.as_u64()),
                interval_bytes: Bytes::new(delta * burst.as_u64()),
                limiting: info.limiting,
            },
        );
    }

    /// Record the host counter/CPU snapshot at `now`. `counters` are
    /// cumulative totals; `snd_busy`/`rcv_busy` are per-core busy-time
    /// snapshots; `snd_pct`/`rcv_pct` the per-core busy% over the
    /// interval since the previous sample.
    pub(crate) fn sample_host(
        &mut self,
        now: SimTime,
        counters: CounterSnapshot,
        snd_busy: Vec<SimDuration>,
        rcv_busy: Vec<SimDuration>,
        snd_pct: Vec<f64>,
        rcv_pct: Vec<f64>,
    ) {
        let mark = self.counter_mark;
        self.host.samples.push(
            now,
            HostSample {
                ring_drops: counters.ring_drops - mark.ring_drops,
                switch_drops: counters.switch_drops - mark.switch_drops,
                random_drops: counters.random_drops - mark.random_drops,
                fault_drops: counters.fault_drops - mark.fault_drops,
                pause_frames: counters.pause_frames - mark.pause_frames,
                wire_sent: counters.wire_sent - mark.wire_sent,
                sender_core_busy: snd_pct,
                receiver_core_busy: rcv_pct,
            },
        );
        self.counter_mark = counters;
        self.snd_busy_mark = snd_busy;
        self.rcv_busy_mark = rcv_busy;
        self.last_sample = now;
    }

    /// The previous per-core busy-time snapshots (for delta reports).
    pub(crate) fn busy_marks(&self) -> (&[SimDuration], &[SimDuration]) {
        (&self.snd_busy_mark, &self.rcv_busy_mark)
    }

    /// Freeze into the public [`Telemetry`] result.
    pub(crate) fn finish(self) -> Telemetry {
        Telemetry { tick: self.tick, flows: self.flows, host: self.host }
    }
}

/// The per-flow fields the runner reads out of the TCP stack for one
/// sample (grouped so `sample_flow` stays reviewable).
#[derive(Debug, Clone)]
pub(crate) struct FlowInfo {
    pub(crate) cwnd: Bytes,
    pub(crate) ssthresh: Option<Bytes>,
    pub(crate) srtt: Option<SimDuration>,
    pub(crate) pacing_rate: BitRate,
    pub(crate) ca_state: CaState,
    pub(crate) bytes_retrans: Bytes,
    pub(crate) retr_packets: u64,
    pub(crate) limiting: Option<LimitingFactor>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    fn info(cwnd: u64) -> FlowInfo {
        FlowInfo {
            cwnd: Bytes::new(cwnd),
            ssthresh: None,
            srtt: Some(SimDuration::from_millis(10)),
            pacing_rate: BitRate::gbps(10.0),
            ca_state: CaState::SlowStart,
            bytes_retrans: Bytes::ZERO,
            retr_packets: 0,
            limiting: Some(LimitingFactor::CwndLimited),
        }
    }

    #[test]
    fn flow_interval_deltas_sum_to_ledger() {
        let burst = Bytes::new(1000);
        let mut s = TelemetrySampler::new(SimDuration::from_secs(1), 1, vec![], vec![]);
        s.sample_flow(at(1), 0, burst, 10, info(1));
        s.sample_flow(at(2), 0, burst, 25, info(2));
        s.sample_flow(at(3), 0, burst, 25, info(3)); // idle interval
        s.sample_flow(at(4), 0, burst, 40, info(4));
        let t = s.finish();
        let trace = &t.flows[0];
        assert_eq!(trace.total_interval_bytes(), Bytes::new(40_000));
        let last = trace.samples.last().expect("samples");
        assert_eq!(last.1.delivered_bytes, Bytes::new(40_000));
        assert_eq!(trace.samples.len(), 4);
    }

    #[test]
    fn host_counters_are_deltas() {
        let mut s = TelemetrySampler::new(SimDuration::from_secs(1), 0, vec![], vec![]);
        let c1 = CounterSnapshot { switch_drops: 5, wire_sent: 100, ..Default::default() };
        s.sample_host(at(1), c1, vec![], vec![], vec![50.0], vec![60.0]);
        let c2 = CounterSnapshot { switch_drops: 9, wire_sent: 250, ..Default::default() };
        s.sample_host(at(2), c2, vec![], vec![], vec![55.0], vec![65.0]);
        let t = s.finish();
        let vals = t.host.samples.values();
        assert_eq!(vals[0].switch_drops, 5);
        assert_eq!(vals[1].switch_drops, 4);
        assert_eq!(vals[0].wire_sent, 100);
        assert_eq!(vals[1].wire_sent, 150);
        assert_eq!(vals[1].sender_core_busy, vec![55.0]);
    }

    #[test]
    fn pending_delivery_detects_tail() {
        let mut s = TelemetrySampler::new(SimDuration::from_secs(1), 2, vec![], vec![]);
        assert!(!s.pending_delivery(&[0, 0]));
        assert!(s.pending_delivery(&[0, 3]));
        s.sample_flow(at(1), 1, Bytes::new(100), 3, info(1));
        assert!(!s.pending_delivery(&[0, 3]));
    }

    #[test]
    fn ca_state_names_are_stable() {
        assert_eq!(CaState::SlowStart.name(), "slow_start");
        assert_eq!(CaState::CongestionAvoidance.name(), "congestion_avoidance");
        assert_eq!(CaState::Recovery.name(), "recovery");
    }
}
