//! BBR congestion control (v1, and a simplified v3).
//!
//! A model-based algorithm: estimate the bottleneck bandwidth (max
//! delivery rate over a sliding window) and the propagation RTT (min
//! RTT), and pace at `gain × btlbw` with an inflight cap of
//! `cwnd_gain × BDP`. The paper (§IV-F) observes on its loss-free
//! testbeds: BBR ramps faster than CUBIC, retransmits more (v1
//! especially, since it ignores loss), and benefits strongly from
//! pacing in parallel-stream runs.
//!
//! Simplifications (documented): ProbeRTT is approximated by
//! periodically refreshing min-RTT rather than by draining to 4 MSS;
//! v3 is modelled as v1 plus the four changes that matter for the
//! paper's observations: (a) a multiplicative back-off on loss
//! episodes, (b) 15 % headroom while probing, (c) `inflight_hi` /
//! `inflight_lo` bounds — loss pins an upper bound on the window that
//! is only probed back up by loss-free ProbeBW cycles, and the
//! post-loss window is a short-term floor so the model does not
//! over-shrink mid-flight — and (d) a faster ProbeRTT cadence (5 s vs
//! v1's 10 s min-RTT expiry).

use super::{window_rate, CongestionControl};
use simcore::{BitRate, Bytes, SimDuration, SimTime};

/// Startup pacing gain (2/ln2).
const STARTUP_GAIN: f64 = 2.885;
/// Drain gain (inverse of startup).
const DRAIN_GAIN: f64 = 1.0 / STARTUP_GAIN;
/// ProbeBW gain cycle.
const PROBE_CYCLE: [f64; 8] = [1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
/// cwnd gain over the estimated BDP.
const CWND_GAIN: f64 = 2.0;
/// Bandwidth filter length (rounds).
const BW_FILTER_LEN: usize = 10;
/// v1 min-RTT filter expiry, as in Linux BBR's 10 s ProbeRTT cadence.
const MIN_RTT_EXPIRY_V1: SimDuration = SimDuration::from_secs(10);
/// v3 halves the ProbeRTT cadence (BBRv3 probes the floor every 5 s),
/// re-anchoring faster after path changes.
const MIN_RTT_EXPIRY_V3: SimDuration = SimDuration::from_secs(5);
/// v3 loss response: multiplicative cwnd back-off.
const V3_BETA: f64 = 0.85;
/// v3 loss response: bandwidth-model trim.
const V3_BW_TRIM: f64 = 0.9;
/// v3 headroom left free below `inflight_hi` (and while probing), so
/// coexisting flows can take what the probe found.
const V3_HEADROOM: f64 = 0.85;
/// v3 probes `inflight_hi` back up by this factor per loss-free
/// ProbeBW probe phase.
const V3_PROBE_UP: f64 = 1.25;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Startup,
    Drain,
    ProbeBw,
}

/// Which BBR flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BbrVersion {
    /// Version 1: loss-blind.
    V1,
    /// Version 3 (simplified): loss response + probe headroom.
    V3,
}

/// BBR state.
#[derive(Debug, Clone)]
pub struct Bbr {
    version: BbrVersion,
    mss: Bytes,
    mode: Mode,
    /// Recent delivery-rate maxima (bits/s), newest last.
    bw_samples: Vec<f64>,
    /// Propagation estimate and when it was last re-anchored. Expires
    /// after [`MIN_RTT_EXPIRY`] (the ProbeRTT stand-in): without
    /// expiry, a path change that raises the base RTT would leave the
    /// model pinned to a stale floor forever.
    min_rtt: Option<(SimDuration, SimTime)>,
    cwnd: Bytes,
    init_cwnd: Bytes,
    cycle_index: usize,
    cycle_start: SimTime,
    full_bw: f64,
    full_bw_rounds: u32,
    /// Delivery-rate round accumulator (bytes acked this round).
    round_delivered: f64,
    round_start: SimTime,
    /// v3 upper bound on inflight, pinned by loss and probed back up
    /// only by loss-free probe phases. `None` = unbounded (no loss
    /// seen, or the bound was probed past the model target).
    inflight_hi: Option<Bytes>,
    /// v3 short-term floor (the post-loss window): target reductions
    /// within the same ProbeBW cycle do not shrink below it.
    inflight_lo: Option<Bytes>,
    /// Loss seen in the current ProbeBW cycle phase (gates probe-up).
    loss_in_cycle: bool,
}

impl Bbr {
    /// BBRv1.
    pub fn v1(mss: Bytes, init_cwnd: Bytes) -> Self {
        Self::new(BbrVersion::V1, mss, init_cwnd)
    }

    /// BBRv3 (simplified).
    pub fn v3(mss: Bytes, init_cwnd: Bytes) -> Self {
        Self::new(BbrVersion::V3, mss, init_cwnd)
    }

    fn new(version: BbrVersion, mss: Bytes, init_cwnd: Bytes) -> Self {
        assert!(mss.as_u64() > 0, "MSS must be positive");
        Bbr {
            version,
            mss,
            mode: Mode::Startup,
            bw_samples: Vec::with_capacity(BW_FILTER_LEN),
            min_rtt: None,
            cwnd: init_cwnd.max(mss * super::MIN_CWND_SEGMENTS),
            init_cwnd: init_cwnd.max(mss * super::MIN_CWND_SEGMENTS),
            cycle_index: 0,
            cycle_start: SimTime::ZERO,
            full_bw: 0.0,
            full_bw_rounds: 0,
            round_delivered: 0.0,
            round_start: SimTime::ZERO,
            inflight_hi: None,
            inflight_lo: None,
            loss_in_cycle: false,
        }
    }

    /// ProbeRTT cadence: how long a min-RTT estimate may go without
    /// re-anchoring (v3 probes twice as often as v1).
    fn min_rtt_expiry(&self) -> SimDuration {
        match self.version {
            BbrVersion::V1 => MIN_RTT_EXPIRY_V1,
            BbrVersion::V3 => MIN_RTT_EXPIRY_V3,
        }
    }

    /// Bottleneck bandwidth estimate (bits/s).
    fn btlbw(&self) -> f64 {
        self.bw_samples.iter().copied().fold(0.0, f64::max)
    }

    fn push_bw(&mut self, bw: f64) {
        if self.bw_samples.len() == BW_FILTER_LEN {
            self.bw_samples.remove(0);
        }
        self.bw_samples.push(bw);
    }

    fn bdp(&self) -> Bytes {
        match self.min_rtt {
            Some((rtt, _)) if self.btlbw() > 0.0 => {
                Bytes::new((self.btlbw() / 8.0 * rtt.as_secs_f64()) as u64)
            }
            _ => self.init_cwnd,
        }
    }

    /// Current propagation estimate (fallback before the first sample).
    fn min_rtt_or(&self, fallback: SimDuration) -> SimDuration {
        self.min_rtt.map_or(fallback, |(rtt, _)| rtt)
    }

    fn pacing_gain(&self) -> f64 {
        let headroom: f64 = if self.version == BbrVersion::V3 { 0.85 } else { 1.0 };
        match self.mode {
            Mode::Startup => STARTUP_GAIN,
            Mode::Drain => DRAIN_GAIN,
            Mode::ProbeBw => {
                let g = PROBE_CYCLE[self.cycle_index];
                if g > 1.0 { g * headroom.max(0.9) } else { g }
            }
        }
    }

    /// Version under test.
    pub fn version(&self) -> BbrVersion {
        self.version
    }

    /// v3 upper inflight bound (`None` when unbounded or on v1).
    pub fn inflight_hi(&self) -> Option<Bytes> {
        self.inflight_hi
    }

    /// v3 short-term inflight floor (`None` when unset or on v1).
    pub fn inflight_lo(&self) -> Option<Bytes> {
        self.inflight_lo
    }
}

impl CongestionControl for Bbr {
    fn on_ack(
        &mut self,
        acked: Bytes,
        rtt: Option<SimDuration>,
        now: SimTime,
        _inflight: Bytes,
        _cwnd_limited: bool,
    ) {
        // BBR is model-based: delivery-rate samples are useful whether
        // or not the window was the limit.
        if let Some(r) = rtt {
            // Keep the min, but re-anchor on any sample once the
            // estimate is older than the ProbeRTT cadence — the
            // documented stand-in for draining to probe the floor.
            let expiry = self.min_rtt_expiry();
            self.min_rtt = Some(match self.min_rtt {
                None => (r, now),
                Some((m, _)) if r <= m => (r, now),
                Some((_, since)) if now.saturating_since(since) > expiry => (r, now),
                Some(kept) => kept,
            });
        }
        // Delivery-rate sampling: accumulate acked bytes over one
        // round (≈ min RTT) and convert to a rate — per-ACK samples
        // would undercount wildly when ACKs arrive per GSO burst.
        self.round_delivered += acked.as_f64();
        let round_len = self.min_rtt_or(SimDuration::from_millis(10));
        let elapsed = now.saturating_since(self.round_start);
        let round_complete = elapsed >= round_len && !elapsed.is_zero();
        if round_complete {
            let bw = self.round_delivered * 8.0 / elapsed.as_secs_f64();
            if bw > 0.0 {
                self.push_bw(bw);
            }
            self.round_delivered = 0.0;
            self.round_start = now;
        }
        match self.mode {
            Mode::Startup => {
                // Leave startup once bandwidth stops growing 25 % per
                // *round* (evaluating per ACK would see a flat filter
                // within the round and bail out instantly).
                if round_complete {
                    let bw = self.btlbw();
                    if bw > self.full_bw * 1.25 {
                        self.full_bw = bw;
                        self.full_bw_rounds = 0;
                    } else {
                        self.full_bw_rounds += 1;
                        if self.full_bw_rounds >= 3 {
                            self.mode = Mode::Drain;
                        }
                    }
                }
            }
            Mode::Drain => {
                // Queue drained once inflight fits one BDP.
                if _inflight <= self.bdp() {
                    self.mode = Mode::ProbeBw;
                    self.cycle_start = now;
                }
            }
            Mode::ProbeBw => {
                // Advance the gain cycle once per min-RTT.
                let phase = self.min_rtt_or(SimDuration::from_millis(10));
                if now.saturating_since(self.cycle_start) >= phase {
                    let leaving_probe = self.cycle_index == 0;
                    self.cycle_index = (self.cycle_index + 1) % PROBE_CYCLE.len();
                    self.cycle_start = now;
                    if self.version == BbrVersion::V3 {
                        // The short-term floor only spans one phase.
                        self.inflight_lo = None;
                        if leaving_probe && !self.loss_in_cycle {
                            // A whole probe phase survived without
                            // loss: raise the ceiling; drop it entirely
                            // once it no longer binds below the model
                            // target.
                            if let Some(hi) = self.inflight_hi {
                                let raised =
                                    Bytes::new((hi.as_f64() * V3_PROBE_UP) as u64);
                                let model =
                                    Bytes::new((self.bdp().as_f64() * CWND_GAIN) as u64);
                                self.inflight_hi = (raised < model).then_some(raised);
                            }
                        }
                        self.loss_in_cycle = false;
                    }
                }
            }
        }
        let mut target =
            Bytes::new((self.bdp().as_f64() * CWND_GAIN) as u64).max(self.init_cwnd);
        if self.version == BbrVersion::V3 {
            // Cap at the loss-derived ceiling, minus headroom left for
            // coexisting flows; the short-term floor keeps one bad
            // round from collapsing the window below the last cut.
            if let Some(hi) = self.inflight_hi {
                let cap = Bytes::new((hi.as_f64() * V3_HEADROOM) as u64)
                    .max(self.mss * super::MIN_CWND_SEGMENTS);
                target = target.min(cap);
            }
            if let Some(lo) = self.inflight_lo {
                target = target.max(lo);
            }
        }
        // cwnd moves toward target without collapsing mid-flight.
        self.cwnd = if target > self.cwnd {
            (self.cwnd + acked).min(target)
        } else {
            target.max(self.mss * super::MIN_CWND_SEGMENTS)
        };
    }

    fn on_loss(&mut self, _now: SimTime) {
        match self.version {
            BbrVersion::V1 => {
                // v1 is loss-blind: the model, not losses, rules.
            }
            BbrVersion::V3 => {
                // v3 loss response: trim the bandwidth estimate, back
                // the window off, and pin the inflight bounds — the
                // pre-cut window becomes the ceiling (probed back up
                // only by loss-free probe phases) and the post-cut
                // window the short-term floor.
                for s in &mut self.bw_samples {
                    *s *= V3_BW_TRIM;
                }
                let pre = self.cwnd;
                self.cwnd = Bytes::new((self.cwnd.as_f64() * V3_BETA) as u64)
                    .max(self.mss * super::MIN_CWND_SEGMENTS);
                self.inflight_hi = Some(match self.inflight_hi {
                    Some(hi) => hi.min(pre),
                    None => pre,
                });
                self.inflight_lo = Some(self.cwnd);
                self.loss_in_cycle = true;
            }
        }
    }

    fn on_rto(&mut self, now: SimTime) {
        self.cwnd = self.init_cwnd;
        self.mode = Mode::Startup;
        self.full_bw = 0.0;
        self.full_bw_rounds = 0;
        self.bw_samples.clear();
        self.round_delivered = 0.0;
        self.round_start = now;
        self.inflight_hi = None;
        self.inflight_lo = None;
        self.loss_in_cycle = false;
    }

    fn cwnd(&self) -> Bytes {
        self.cwnd
    }

    fn in_slow_start(&self) -> bool {
        self.mode == Mode::Startup
    }

    fn pacing_rate(&self, srtt: SimDuration) -> BitRate {
        let bw = self.btlbw();
        if bw > 0.0 {
            BitRate::from_bps(bw * self.pacing_gain())
        } else {
            // No estimate yet: window-based like slow start.
            window_rate(self.cwnd, srtt, STARTUP_GAIN)
        }
    }

    fn name(&self) -> &'static str {
        match self.version {
            BbrVersion::V1 => "bbr",
            BbrVersion::V3 => "bbr3",
        }
    }

    fn clone_box(&self) -> Box<dyn CongestionControl> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive_to_steady(bbr: &mut Bbr, rate_gbps: f64, rtt_ms: u64, rounds: usize) -> SimTime {
        let rtt = SimDuration::from_millis(rtt_ms);
        let per_rtt = Bytes::new((rate_gbps * 1e9 / 8.0 * rtt.as_secs_f64()) as u64);
        let mut now = SimTime::ZERO;
        for _ in 0..rounds {
            now += rtt;
            bbr.on_ack(per_rtt, Some(rtt), now, per_rtt, true);
        }
        now
    }

    #[test]
    fn startup_exits_when_bandwidth_plateaus() {
        let mut bbr = Bbr::v1(Bytes::new(9000), Bytes::kib(128));
        assert!(bbr.in_slow_start());
        drive_to_steady(&mut bbr, 10.0, 20, 30);
        assert!(!bbr.in_slow_start(), "BBR should leave startup at a plateau");
    }

    #[test]
    fn cwnd_targets_two_bdp() {
        let mut bbr = Bbr::v1(Bytes::new(9000), Bytes::kib(128));
        drive_to_steady(&mut bbr, 10.0, 20, 60);
        let bdp = 10.0e9 / 8.0 * 0.020; // 25 MB
        let cwnd = bbr.cwnd().as_f64();
        assert!(
            (1.5..2.6).contains(&(cwnd / bdp)),
            "cwnd {:.1} MB vs BDP {:.1} MB",
            cwnd / 1e6,
            bdp / 1e6
        );
    }

    #[test]
    fn v1_ignores_loss_v3_reacts() {
        let mut v1 = Bbr::v1(Bytes::new(9000), Bytes::kib(128));
        let mut v3 = Bbr::v3(Bytes::new(9000), Bytes::kib(128));
        drive_to_steady(&mut v1, 10.0, 20, 60);
        drive_to_steady(&mut v3, 10.0, 20, 60);
        let w1 = v1.cwnd();
        let w3 = v3.cwnd();
        v1.on_loss(SimTime::ZERO);
        v3.on_loss(SimTime::ZERO);
        assert_eq!(v1.cwnd(), w1, "BBRv1 is loss-blind");
        assert!(v3.cwnd() < w3, "BBRv3 backs off on loss");
    }

    #[test]
    fn pacing_rate_tracks_btlbw() {
        let mut bbr = Bbr::v1(Bytes::new(9000), Bytes::kib(128));
        drive_to_steady(&mut bbr, 10.0, 20, 60);
        let rate = bbr.pacing_rate(SimDuration::from_millis(20)).as_gbps();
        assert!(
            (7.0..14.0).contains(&rate),
            "pacing near the 10 Gbps bottleneck, got {rate:.1}"
        );
    }

    #[test]
    fn rto_resets_model() {
        let mut bbr = Bbr::v3(Bytes::new(9000), Bytes::kib(128));
        drive_to_steady(&mut bbr, 10.0, 20, 60);
        bbr.on_rto(SimTime::ZERO);
        assert!(bbr.in_slow_start());
        assert_eq!(bbr.cwnd(), Bytes::kib(128));
    }

    #[test]
    fn min_rtt_reanchors_after_expiry() {
        let mut bbr = Bbr::v1(Bytes::new(9000), Bytes::kib(128));
        // Converge on a 20 ms path, then flap onto a 60 ms path: the
        // model must adopt the new floor within the 10 s expiry, not
        // keep the stale 20 ms estimate forever.
        let end = drive_to_steady(&mut bbr, 10.0, 20, 30);
        assert_eq!(bbr.min_rtt_or(SimDuration::ZERO), SimDuration::from_millis(20));
        let rtt = SimDuration::from_millis(60);
        let per_rtt = Bytes::new((10.0e9 / 8.0 * rtt.as_secs_f64()) as u64);
        let mut now = end;
        for _ in 0..200 {
            now += rtt;
            bbr.on_ack(per_rtt, Some(rtt), now, per_rtt, true);
        }
        assert_eq!(
            bbr.min_rtt_or(SimDuration::ZERO),
            SimDuration::from_millis(60),
            "stale propagation floor must expire"
        );
    }

    #[test]
    fn v3_loss_pins_inflight_bounds_then_probes_back_up() {
        let mut v3 = Bbr::v3(Bytes::new(9000), Bytes::kib(128));
        let end = drive_to_steady(&mut v3, 10.0, 20, 60);
        assert_eq!(v3.inflight_hi(), None, "no loss yet: unbounded");
        let pre = v3.cwnd();
        v3.on_loss(end);
        assert_eq!(v3.inflight_hi(), Some(pre), "pre-cut window becomes the ceiling");
        assert_eq!(v3.inflight_lo(), Some(v3.cwnd()), "post-cut window becomes the floor");
        // Loss-free probe phases raise the ceiling until it stops
        // binding below the model target, then release it.
        let rtt = SimDuration::from_millis(20);
        let per_rtt = Bytes::new((10.0e9 / 8.0 * rtt.as_secs_f64()) as u64);
        let mut now = end;
        for _ in 0..2000 {
            now += rtt;
            v3.on_ack(per_rtt, Some(rtt), now, per_rtt, true);
        }
        assert_eq!(v3.inflight_hi(), None, "clean cycles must probe the ceiling away");
        assert!(
            v3.cwnd().as_f64() >= pre.as_f64() * 0.9,
            "window recovers once the bound lifts: {} vs {}",
            v3.cwnd(),
            pre
        );
    }

    #[test]
    fn v3_inflight_stays_at_or_below_v1_under_identical_schedule() {
        // The golden ordering "BBRv3 inflight ≤ BBRv1 at equal BDP":
        // same ack/loss schedule, v3's bounds keep its window at or
        // below loss-blind v1's at every step.
        let mss = Bytes::new(9000);
        let mut v1 = Bbr::v1(mss, Bytes::kib(128));
        let mut v3 = Bbr::v3(mss, Bytes::kib(128));
        let rtt = SimDuration::from_millis(20);
        let per_rtt = Bytes::new((10.0e9 / 8.0 * rtt.as_secs_f64()) as u64);
        let mut now = SimTime::ZERO;
        for round in 0..300 {
            now += rtt;
            v1.on_ack(per_rtt, Some(rtt), now, per_rtt, true);
            v3.on_ack(per_rtt, Some(rtt), now, per_rtt, true);
            if round % 50 == 49 {
                v1.on_loss(now);
                v3.on_loss(now);
            }
            assert!(
                v3.cwnd() <= v1.cwnd(),
                "round {round}: v3 {} must not exceed v1 {}",
                v3.cwnd(),
                v1.cwnd()
            );
        }
    }

    #[test]
    fn v3_probe_rtt_cadence_reanchors_faster_than_v1() {
        let mss = Bytes::new(9000);
        let mut v1 = Bbr::v1(mss, Bytes::kib(128));
        let mut v3 = Bbr::v3(mss, Bytes::kib(128));
        let end = drive_to_steady(&mut v1, 10.0, 20, 30);
        assert_eq!(drive_to_steady(&mut v3, 10.0, 20, 30), end);
        // Path moves to a 60 ms floor. 7 s of samples is past v3's 5 s
        // ProbeRTT cadence but short of v1's 10 s.
        let rtt = SimDuration::from_millis(60);
        let per_rtt = Bytes::new((10.0e9 / 8.0 * rtt.as_secs_f64()) as u64);
        let mut now = end;
        for _ in 0..117 {
            now += rtt;
            v1.on_ack(per_rtt, Some(rtt), now, per_rtt, true);
            v3.on_ack(per_rtt, Some(rtt), now, per_rtt, true);
        }
        assert_eq!(v3.min_rtt_or(SimDuration::ZERO), rtt, "v3 re-anchors within 5 s");
        assert_eq!(
            v1.min_rtt_or(SimDuration::ZERO),
            SimDuration::from_millis(20),
            "v1 still holds the old floor at 7 s"
        );
    }

    #[test]
    fn ramps_past_cubic_when_ramp_losses_occur() {
        // §IV-F: "BBRv1/BBRv3 both ramp up faster than CUBIC" on the
        // WAN — in practice because transient ramp-up losses halt
        // CUBIC (multiplicative decrease + slow-start exit) while
        // BBRv1 sails through them.
        use crate::cc::cubic::Cubic;
        use crate::cc::CongestionControl as _;
        let mss = Bytes::new(9000);
        let iw = Bytes::new(9000 * 10);
        let mut bbr = Bbr::v1(mss, iw);
        let mut cubic = Cubic::new(mss, iw);
        let rtt = SimDuration::from_millis(100);
        let mut now = SimTime::ZERO;
        for round in 0..8 {
            now += rtt;
            let wb = bbr.cwnd();
            bbr.on_ack(wb, Some(rtt), now, wb, true);
            let wc = cubic.cwnd();
            cubic.on_ack(wc, Some(rtt), now, wc, true);
            if round == 3 {
                // A burst of receiver drops during the ramp.
                bbr.on_loss(now);
                cubic.on_loss(now);
            }
        }
        assert!(
            bbr.cwnd() > cubic.cwnd(),
            "BBR {} should out-ramp CUBIC {} across ramp losses",
            bbr.cwnd(),
            cubic.cwnd()
        );
    }
}
