//! OpenMetrics text exposition of a [`MetricsSnapshot`].
//!
//! Counters render as `counter` families with the mandated `_total`
//! sample suffix, gauges as `gauge`, and histograms as `summary`
//! families (quantile samples plus `_sum`/`_count`) — the natural fit
//! for [`crate::HdrHistogram`]'s bounded-error quantiles. Output is
//! deterministic (name-ordered) and ends with the `# EOF` marker the
//! spec requires, which is what the CI well-formedness check keys on.

use crate::registry::MetricsSnapshot;

/// Quantiles exposed for every histogram family.
const QUANTILES: [(f64, &str); 4] = [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99"), (0.999, "0.999")];

/// Render a snapshot as OpenMetrics text (`# HELP`/`# TYPE` metadata,
/// one block per family, terminated by `# EOF`).
pub fn render_openmetrics(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snap.counters {
        meta(&mut out, snap, name, "counter");
        out.push_str(&format!("{name}_total {value}\n"));
    }
    for (name, value) in &snap.gauges {
        meta(&mut out, snap, name, "gauge");
        out.push_str(&format!("{name} {value}\n"));
    }
    for (name, h) in &snap.hists {
        meta(&mut out, snap, name, "summary");
        for (q, label) in QUANTILES {
            if let Some(v) = h.quantile(q) {
                out.push_str(&format!("{name}{{quantile=\"{label}\"}} {v}\n"));
            }
        }
        out.push_str(&format!("{name}_sum {}\n", h.sum()));
        out.push_str(&format!("{name}_count {}\n", h.count()));
    }
    out.push_str("# EOF\n");
    out
}

fn meta(out: &mut String, snap: &MetricsSnapshot, name: &str, kind: &str) {
    if let Some(help) = snap.help.get(name) {
        out.push_str(&format!("# HELP {name} {}\n", help.replace('\n', " ")));
    }
    out.push_str(&format!("# TYPE {name} {kind}\n"));
}

#[cfg(test)]
mod tests {
    use crate::Recorder;

    use super::*;

    #[test]
    fn renders_all_families_and_eof() {
        let r = Recorder::new();
        r.describe("cache_hits", "Repetitions served from the run cache");
        r.counter_add("cache_hits", 3);
        r.gauge_set("queue_depth", 17.0);
        for v in [10u64, 20, 30] {
            r.hist_record("rep_wall_ms", v);
        }
        let text = render_openmetrics(&r.snapshot());
        assert!(text.contains("# HELP cache_hits Repetitions served from the run cache\n"));
        assert!(text.contains("# TYPE cache_hits counter\n"));
        assert!(text.contains("cache_hits_total 3\n"));
        assert!(text.contains("# TYPE queue_depth gauge\n"));
        assert!(text.contains("queue_depth 17\n"));
        assert!(text.contains("# TYPE rep_wall_ms summary\n"));
        assert!(text.contains("rep_wall_ms{quantile=\"0.5\"} 20\n"));
        assert!(text.contains("rep_wall_ms_sum 60\n"));
        assert!(text.contains("rep_wall_ms_count 3\n"));
        assert!(text.ends_with("# EOF\n"));
    }

    #[test]
    fn empty_snapshot_is_just_eof() {
        let text = render_openmetrics(&Recorder::new().snapshot());
        assert_eq!(text, "# EOF\n");
    }

    #[test]
    fn deterministic_ordering() {
        let mk = || {
            let r = Recorder::new();
            r.counter_add("b", 1);
            r.counter_add("a", 2);
            r.gauge_set("z", 0.5);
            render_openmetrics(&r.snapshot())
        };
        assert_eq!(mk(), mk());
        let text = mk();
        assert!(text.find("a_total").unwrap() < text.find("b_total").unwrap());
    }
}
