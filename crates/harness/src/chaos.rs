//! Harness-level fault injection (`REPRO_CHAOS=<seed>`).
//!
//! Chaos mode attacks the *harness*, never the simulation: workers are
//! killed (panicked) at pseudo-random event counts, freshly stored
//! cache entries are corrupted or truncated on disk, and trace writes
//! fail through the [`crate::trace::TraceIo`] shim. The supervision
//! layer ([`crate::supervise`]) must absorb all of it — resume from the
//! last checkpoint, recompute poisoned cache entries, degrade trace
//! output to a warning — while the final reports stay bit-identical to
//! a chaos-free run and every repetition is accounted for.
//!
//! Every injection decision is a pure function of the chaos seed and
//! the identity of the thing being attacked (run seed, resume round,
//! entry path), so a chaos run is exactly as reproducible as a normal
//! one: same seed, same faults, same recoveries.

use crate::trace::TraceIo;
use simcore::derive_seed;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Decision-space salts, one per fault class (keeps the per-class
/// decision streams independent).
const SALT_KILL: u64 = 0x6b69_6c6c; // "kill"
const SALT_CACHE: u64 = 0x6361_6368; // "cach"
const SALT_TRACE: u64 = 0x7472_6163; // "trac"

/// Percent chance a fresh worker is killed mid-run.
const KILL_PCT_FIRST: u64 = 40;
/// Percent chance a *resumed* worker is killed again (kept low so a
/// repetition almost surely completes within the resume cap).
const KILL_PCT_RESUMED: u64 = 20;
/// Percent chance a newly stored cache entry is poisoned.
const CACHE_PCT: u64 = 50;
/// Percent chance a trace/profile write fails.
const TRACE_PCT: u64 = 30;

/// How a poisoned cache entry is damaged on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheDamage {
    /// Drop the tail of the file (header `len` check must catch it).
    Truncate,
    /// Flip one payload bit (header checksum must catch it).
    BitFlip,
}

/// Injection counters, readable while runs are in flight.
#[derive(Debug, Default)]
pub struct ChaosStats {
    kills: AtomicU64,
    resumes: AtomicU64,
    cache_corruptions: AtomicU64,
    trace_failures: AtomicU64,
}

impl ChaosStats {
    /// Workers killed mid-run.
    pub fn kills(&self) -> u64 {
        self.kills.load(Ordering::Relaxed)
    }

    /// Killed workers resumed from a checkpoint (the remainder
    /// restarted from scratch).
    pub fn resumes(&self) -> u64 {
        self.resumes.load(Ordering::Relaxed)
    }

    /// Cache entries corrupted or truncated after a store.
    pub fn cache_corruptions(&self) -> u64 {
        self.cache_corruptions.load(Ordering::Relaxed)
    }

    /// Trace/profile writes failed through the io shim.
    pub fn trace_failures(&self) -> u64 {
        self.trace_failures.load(Ordering::Relaxed)
    }

    /// Total faults injected across all classes.
    pub fn total(&self) -> u64 {
        self.kills() + self.cache_corruptions() + self.trace_failures()
    }

    pub(crate) fn count_kill(&self) {
        self.kills.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_resume(&self) {
        self.resumes.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_cache_corruption(&self) {
        self.cache_corruptions.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_trace_failure(&self) {
        self.trace_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// One-line summary for the end-of-run report.
    pub fn summary(&self) -> String {
        format!(
            "chaos: {} worker kill(s) ({} resumed from checkpoint), {} cache corruption(s), {} trace failure(s)",
            self.kills(),
            self.resumes(),
            self.cache_corruptions(),
            self.trace_failures(),
        )
    }
}

/// A seeded chaos schedule plus its injection counters.
#[derive(Debug)]
pub struct ChaosPlan {
    seed: u64,
    /// What has been injected so far.
    pub stats: ChaosStats,
}

impl ChaosPlan {
    /// A plan driven by `seed`.
    pub fn new(seed: u64) -> Self {
        ChaosPlan { seed, stats: ChaosStats::default() }
    }

    /// From `REPRO_CHAOS=<seed>`, if set. An unparsable value is a
    /// configuration error worth failing loudly over — silently running
    /// without chaos would turn a chaos-soak CI job into a no-op.
    pub fn from_env() -> Option<Self> {
        let raw = std::env::var("REPRO_CHAOS").ok()?;
        match raw.parse::<u64>() {
            Ok(seed) => Some(ChaosPlan::new(seed)),
            Err(_) => {
                eprintln!("REPRO_CHAOS='{raw}' is not a u64 seed; chaos disabled");
                None
            }
        }
    }

    /// The driving seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Deterministic decision stream: a u64 from (class salt, a, b).
    fn roll(&self, salt: u64, a: u64, b: u64) -> u64 {
        derive_seed(self.seed ^ salt, a, b)
    }

    /// Should the worker for `run_seed`, on resume round `round`
    /// (0 = first execution), be killed — and if so, after how many
    /// further events? The offset guarantees forward progress: at least
    /// one chunk of events runs before the kill.
    pub fn kill_after(&self, run_seed: u64, round: u32) -> Option<u64> {
        let r = self.roll(SALT_KILL, run_seed, round as u64);
        let pct = if round == 0 { KILL_PCT_FIRST } else { KILL_PCT_RESUMED };
        if r % 100 < pct {
            // 5k..=125k further events: early enough to matter, late
            // enough that a checkpoint cadence of ~50k usually has a
            // snapshot to resume from.
            Some(5_000 + (r >> 8) % 120_000)
        } else {
            None
        }
    }

    /// Should the just-stored cache entry for `run_seed` be poisoned —
    /// and how? Only *fresh* stores are attacked (the caller skips
    /// entries that already survived a corruption), so a recomputed
    /// entry heals instead of being re-poisoned forever.
    pub fn cache_damage(&self, run_seed: u64) -> Option<CacheDamage> {
        let r = self.roll(SALT_CACHE, run_seed, 0);
        if r % 100 < CACHE_PCT {
            Some(if (r >> 8).is_multiple_of(2) {
                CacheDamage::Truncate
            } else {
                CacheDamage::BitFlip
            })
        } else {
            None
        }
    }

    /// Should this trace/profile write fail?
    pub fn trace_write_fails(&self, path: &Path) -> bool {
        let h = simcore::fnv1a_64(path.to_string_lossy().as_bytes());
        self.roll(SALT_TRACE, h, 0) % 100 < TRACE_PCT
    }

    /// Apply `damage` to the cache entry at `path` (counted). Best
    /// effort: a vanished file is fine, the point is the next lookup.
    pub fn damage_entry(&self, path: &Path, damage: CacheDamage) {
        let Ok(mut bytes) = std::fs::read(path) else { return };
        match damage {
            CacheDamage::Truncate => {
                bytes.truncate(bytes.len().saturating_sub(bytes.len() / 4).max(1));
            }
            CacheDamage::BitFlip => {
                if let Some(last) = bytes.last_mut() {
                    *last ^= 0x10;
                }
            }
        }
        if std::fs::write(path, &bytes).is_ok() {
            self.stats.count_cache_corruption();
        }
    }
}

/// [`TraceIo`] shim that consults the chaos plan before every write.
#[derive(Debug, Clone)]
pub struct ChaosIo {
    plan: Arc<ChaosPlan>,
}

impl ChaosIo {
    /// Wrap the real filesystem in `plan`'s failure schedule.
    pub fn new(plan: Arc<ChaosPlan>) -> Self {
        ChaosIo { plan }
    }
}

impl TraceIo for ChaosIo {
    fn create_dir_all(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)
    }

    fn write(&self, path: &Path, data: &[u8]) -> std::io::Result<()> {
        if self.plan.trace_write_fails(path) {
            self.plan.stats.count_trace_failure();
            return Err(std::io::Error::other("chaos: injected trace-write failure"));
        }
        std::fs::write(path, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    #[test]
    fn decisions_are_deterministic() {
        let a = ChaosPlan::new(7);
        let b = ChaosPlan::new(7);
        for seed in 0..50u64 {
            assert_eq!(a.kill_after(seed, 0), b.kill_after(seed, 0));
            assert_eq!(a.cache_damage(seed), b.cache_damage(seed));
        }
        let p = PathBuf::from("/tmp/x_rep0.jsonl");
        assert_eq!(a.trace_write_fails(&p), b.trace_write_fails(&p));
    }

    #[test]
    fn different_seeds_differ() {
        let a = ChaosPlan::new(1);
        let b = ChaosPlan::new(2);
        let differs = (0..100u64).any(|s| a.kill_after(s, 0) != b.kill_after(s, 0));
        assert!(differs, "two chaos seeds should produce different kill schedules");
    }

    #[test]
    fn kill_rates_roughly_match_targets() {
        let plan = ChaosPlan::new(42);
        let first = (0..1000u64).filter(|&s| plan.kill_after(s, 0).is_some()).count();
        let resumed = (0..1000u64).filter(|&s| plan.kill_after(s, 3).is_some()).count();
        assert!((300..500).contains(&first), "first-round kills ≈40%: {first}");
        assert!((100..300).contains(&resumed), "resume-round kills ≈20%: {resumed}");
        // Offsets guarantee forward progress.
        for s in 0..1000u64 {
            if let Some(off) = plan.kill_after(s, 0) {
                assert!(off >= 5_000);
            }
        }
    }

    #[test]
    fn both_damage_kinds_occur() {
        let plan = ChaosPlan::new(9);
        let kinds: Vec<CacheDamage> =
            (0..200u64).filter_map(|s| plan.cache_damage(s)).collect();
        assert!(kinds.contains(&CacheDamage::Truncate));
        assert!(kinds.contains(&CacheDamage::BitFlip));
    }

    #[test]
    fn stats_count_and_summarize() {
        let plan = ChaosPlan::new(3);
        plan.stats.count_kill();
        plan.stats.count_kill();
        plan.stats.count_resume();
        plan.stats.count_trace_failure();
        assert_eq!(plan.stats.kills(), 2);
        assert_eq!(plan.stats.resumes(), 1);
        assert_eq!(plan.stats.total(), 3);
        let s = plan.stats.summary();
        assert!(s.contains("2 worker kill(s)"), "{s}");
        assert!(s.contains("1 trace failure(s)"), "{s}");
    }

    #[test]
    fn chaos_io_fails_only_scheduled_paths() {
        let plan = Arc::new(ChaosPlan::new(11));
        let dir = std::env::temp_dir().join(format!("chaos_io_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // Probe the exact paths the writes will use: the schedule
        // hashes the full path, so a name that is safe under /tmp may
        // be doomed under another directory (and this test's directory
        // varies by process id).
        let doomed = (0..200)
            .map(|i| dir.join(format!("chaos_probe_{i}.jsonl")))
            .find(|p| plan.trace_write_fails(p))
            .expect("some path fails at 30%");
        let safe = (0..200)
            .map(|i| dir.join(format!("chaos_probe_{i}.jsonl")))
            .find(|p| !plan.trace_write_fails(p))
            .expect("some path survives at 30%");
        let io = ChaosIo::new(plan.clone());
        assert!(io.write(&doomed, b"x").is_err());
        assert!(io.write(&safe, b"x").is_ok());
        assert_eq!(plan.stats.trace_failures(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
