//! Sender-side TCP state: windows, SACK scoreboard, retransmission.
//!
//! Loss detection follows the SACK/FACK rule at burst granularity: a
//! burst is marked lost once the receiver has acknowledged data three
//! or more bursts above it (the dup-ACK threshold). Fast retransmit
//! re-queues lost bursts ahead of new data and enters a *recovery
//! episode* — the congestion window is reduced once per episode, not
//! once per lost burst. An expired RTO collapses to slow start.

use crate::cc::CongestionControl;
use crate::rtt::RttEstimator;
use simcore::{Bytes, SimDuration, SimTime};
use std::collections::VecDeque;

/// Dup-ACK / SACK reordering threshold, in bursts.
const DUP_THRESH: u64 = 3;

/// What the sender may transmit next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendSlot {
    /// Retransmit this burst index.
    Retransmit(u64),
    /// Transmit a new burst with this index.
    New(u64),
    /// Window or data exhausted; nothing to send.
    Blocked,
}

/// Which loss timer is due.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimerKind {
    /// Tail-loss probe (fires first; gentle).
    Tlp,
    /// Retransmission timeout (collapses to slow start).
    Rto,
}

/// Result of processing one ACK.
#[derive(Debug, Clone, Default)]
pub struct AckOutcome {
    /// Bytes newly acknowledged by this ACK.
    pub newly_acked: Bytes,
    /// Whether this ACK started a recovery episode (cwnd was reduced).
    pub entered_recovery: bool,
    /// Bursts newly marked lost and queued for retransmission.
    pub marked_lost: u64,
}

#[derive(Debug, Clone, Copy)]
struct Outstanding {
    sent_at: SimTime,
    /// Ever retransmitted (Karn: no RTT sample).
    retransmitted: bool,
    acked: bool,
    /// Marked lost, awaiting (or undergoing) retransmission.
    lost: bool,
}

/// Sender state for one flow.
#[derive(Clone)]
pub struct TcpSender {
    cc: Box<dyn CongestionControl>,
    /// RTT estimator (public: the simulator reads srtt/rto from it).
    pub rtt: RttEstimator,
    burst: Bytes,
    mtu: Bytes,
    /// First unacknowledged burst.
    snd_una: u64,
    /// Next new burst index.
    snd_nxt: u64,
    /// Scoreboard for bursts `[snd_una, snd_nxt)`: entries are created
    /// at `snd_nxt` and released from the front as `snd_una` advances,
    /// so the live keys are always contiguous — a deque indexed by
    /// `idx - snd_una` replaces the old ordered map on the hot path.
    outstanding: VecDeque<Outstanding>,
    retx_queue: VecDeque<u64>,
    /// Bursts currently in flight (sent, not acked, not marked lost).
    inflight_bursts: u64,
    /// Highest burst index SACKed so far.
    high_sacked: u64,
    /// Loss marking has scanned up to this index (avoids rescans).
    loss_scan_floor: u64,
    in_recovery: bool,
    /// Recovery ends when cum-ack passes this.
    recovery_high: u64,
    /// Duplicate-ACK count for the current left edge.
    dupacks: u32,
    /// Peer's advertised window.
    rwnd: Bytes,
    /// `tcp_wmem[2]`: send-buffer autotuning ceiling.
    wmem_max: Bytes,
    /// Bursts written by the app, not yet transmitted.
    app_buffered: u64,
    /// Total bursts retransmitted (→ `Retr` in MTU packets).
    retx_bursts: u64,
    rto_events: u64,
    /// Time of the last forward ACK progress (for the tail-loss probe).
    last_progress: SimTime,
    /// A TLP may fire once per progress-free period.
    tlp_armed: bool,
    tlp_events: u64,
    /// ACKs that advanced the window (the denominator of the
    /// cwnd-limited fraction).
    acks_processed: u64,
    /// Of those, ACKs where the flight pressed against cwnd — Linux's
    /// `tcp_is_cwnd_limited()` signal, counted for attribution.
    cwnd_limited_acks: u64,
    /// Total application bursts for a finite flow (`None` = unbounded,
    /// the iperf3-style duration-driven mode). The flow FINs once the
    /// last burst is written and completes when it is cumulatively
    /// acknowledged (the FIN's ACK, at burst granularity).
    flow_bursts: Option<u64>,
    /// Bursts the application has written so far (finite-flow gate).
    bursts_written: u64,
}

impl std::fmt::Debug for TcpSender {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpSender")
            .field("cc", &self.cc.name())
            .field("snd_una", &self.snd_una)
            .field("snd_nxt", &self.snd_nxt)
            .field("inflight", &self.inflight())
            .field("cwnd", &self.cc.cwnd())
            .finish()
    }
}

impl TcpSender {
    /// New sender.
    ///
    /// `initial_rwnd` is the peer's first advertised window; `wmem_max`
    /// bounds the send buffer (`tcp_wmem[2]`).
    pub fn new(
        cc: Box<dyn CongestionControl>,
        burst: Bytes,
        mtu: Bytes,
        wmem_max: Bytes,
        initial_rwnd: Bytes,
    ) -> Self {
        assert!(!burst.is_zero() && !mtu.is_zero(), "sizes must be positive");
        TcpSender {
            cc,
            rtt: RttEstimator::new(),
            burst,
            mtu,
            snd_una: 0,
            snd_nxt: 0,
            outstanding: VecDeque::with_capacity(64),
            retx_queue: VecDeque::new(),
            inflight_bursts: 0,
            high_sacked: 0,
            loss_scan_floor: 0,
            in_recovery: false,
            recovery_high: 0,
            dupacks: 0,
            rwnd: initial_rwnd,
            wmem_max,
            app_buffered: 0,
            retx_bursts: 0,
            rto_events: 0,
            last_progress: SimTime::ZERO,
            tlp_armed: true,
            tlp_events: 0,
            acks_processed: 0,
            cwnd_limited_acks: 0,
            flow_bursts: None,
            bursts_written: 0,
        }
    }

    /// Make this a finite flow of exactly `bursts` application bursts.
    /// After the limit is written, [`TcpSender::app_can_write`] stays
    /// false; the flow is [`TcpSender::is_complete`] once every burst
    /// is cumulatively acknowledged.
    pub fn set_flow_bursts(&mut self, bursts: u64) {
        assert!(bursts > 0, "a finite flow must carry at least one burst");
        self.flow_bursts = Some(bursts);
    }

    /// The finite-flow size in bursts, if one was set.
    pub fn flow_bursts(&self) -> Option<u64> {
        self.flow_bursts
    }

    /// Bursts still to be written by the application of a finite flow
    /// (`None` for unbounded flows).
    pub fn remaining_app_bursts(&self) -> Option<u64> {
        self.flow_bursts.map(|n| n.saturating_sub(self.bursts_written))
    }

    /// A finite flow is complete when its last burst is cumulatively
    /// acknowledged — the burst-granularity equivalent of the FIN being
    /// ACKed. Unbounded flows never complete.
    pub fn is_complete(&self) -> bool {
        self.flow_bursts.is_some_and(|n| self.snd_una >= n)
    }

    /// Bytes in flight (sent, not acked, not marked lost).
    pub fn inflight(&self) -> Bytes {
        Bytes::new(self.inflight_bursts * self.burst.as_u64())
    }

    /// The effective send window: cwnd ∧ rwnd ∧ wmem ceiling, floored
    /// at one burst (TCP always keeps at least one segment moving).
    pub fn effective_window(&self) -> Bytes {
        self.cc.cwnd().min(self.rwnd).min(self.wmem_max).max(self.burst)
    }

    /// Send-buffer limit: Linux autotunes `sk_sndbuf` toward twice the
    /// congestion window, capped by `tcp_wmem[2]`.
    pub fn sndbuf_limit(&self) -> Bytes {
        let twice_cwnd = Bytes::new(self.cc.cwnd().as_u64().saturating_mul(2));
        twice_cwnd.max(self.burst.max(Bytes::kib(64)) * 16).min(self.wmem_max)
    }

    /// Can the application write another burst into the socket?
    pub fn app_can_write(&self) -> bool {
        if self.flow_bursts.is_some_and(|n| self.bursts_written >= n) {
            return false;
        }
        let queued = Bytes::new(self.app_buffered * self.burst.as_u64()) + self.inflight();
        queued + self.burst <= self.sndbuf_limit()
    }

    /// The application wrote one burst into the socket buffer.
    pub fn app_wrote(&mut self) {
        debug_assert!(
            self.flow_bursts.is_none_or(|n| self.bursts_written < n),
            "app wrote past the finite-flow size"
        );
        self.app_buffered += 1;
        self.bursts_written += 1;
    }

    /// Bursts buffered but not yet transmitted.
    pub fn app_buffered(&self) -> u64 {
        self.app_buffered
    }

    /// Whether a transmission slot is available right now.
    pub fn can_send(&self) -> bool {
        let window_ok = self.inflight() + self.burst <= self.effective_window();
        window_ok && (!self.retx_queue.is_empty() || self.app_buffered > 0)
    }

    /// Scoreboard entry for burst `idx`, if it is still tracked
    /// (`snd_una <= idx < snd_nxt`).
    #[inline]
    fn slot_mut(&mut self, idx: u64) -> Option<&mut Outstanding> {
        let off = idx.checked_sub(self.snd_una)?;
        self.outstanding.get_mut(off as usize)
    }

    /// Claim the next transmission slot at time `now`.
    pub fn next_slot(&mut self, now: SimTime) -> SendSlot {
        if self.inflight() + self.burst > self.effective_window() {
            return SendSlot::Blocked;
        }
        while let Some(idx) = self.retx_queue.pop_front() {
            // Skip entries that were acknowledged (or cum-released)
            // after being queued for retransmission.
            let Some(o) = self.slot_mut(idx) else { continue };
            if o.acked || !o.lost {
                continue;
            }
            o.lost = false;
            o.retransmitted = true;
            o.sent_at = now;
            self.inflight_bursts += 1;
            self.retx_bursts += 1;
            return SendSlot::Retransmit(idx);
        }
        if self.app_buffered > 0 {
            self.app_buffered -= 1;
            let idx = self.snd_nxt;
            self.snd_nxt += 1;
            self.outstanding.push_back(Outstanding {
                sent_at: now,
                retransmitted: false,
                acked: false,
                lost: false,
            });
            self.inflight_bursts += 1;
            return SendSlot::New(idx);
        }
        SendSlot::Blocked
    }

    /// The burst actually left the host (after pacing and softirq
    /// queueing). Refreshes the timestamp used for RTT sampling and the
    /// RTO clock — pacer residence time must not count as network RTT.
    pub fn mark_transmitted(&mut self, idx: u64, now: SimTime) {
        if let Some(o) = self.slot_mut(idx) {
            if !o.acked {
                o.sent_at = now;
            }
        }
        // The probe timeout runs from the last *send* (Linux arms the
        // TLP timer on every transmitted packet), not only from ACK
        // progress: a flow opened mid-simulation would otherwise
        // compute its first deadline from time zero — far in the past —
        // and fire one spurious probe per flow.
        self.last_progress = self.last_progress.max(now);
    }

    /// Process an ACK `(cum_ack, acked_idx, rwnd)` arriving at `now`.
    pub fn on_ack(
        &mut self,
        cum_ack: u64,
        acked_idx: u64,
        rwnd: Bytes,
        now: SimTime,
    ) -> AckOutcome {
        let mut out = AckOutcome::default();
        self.rwnd = rwnd;
        let mut rtt_sample: Option<SimDuration> = None;

        // SACK the specific burst.
        if let Some(o) = self.slot_mut(acked_idx) {
            if !o.acked {
                let was_inflight = !o.lost;
                o.acked = true;
                o.lost = false;
                let sample = (!o.retransmitted).then(|| now.saturating_since(o.sent_at));
                if was_inflight {
                    self.inflight_bursts -= 1;
                }
                out.newly_acked += self.burst;
                rtt_sample = sample;
            }
        }
        self.high_sacked = self.high_sacked.max(acked_idx);

        // Cumulative ACK: everything below cum_ack is delivered.
        let advanced = cum_ack > self.snd_una;
        while self.snd_una < cum_ack {
            if let Some(o) = self.outstanding.pop_front() {
                if !o.acked {
                    if !o.lost {
                        self.inflight_bursts -= 1;
                    }
                    out.newly_acked += self.burst;
                }
            }
            self.snd_una += 1;
        }
        // Drop any stale retransmit requests below the new left edge.
        self.retx_queue.retain(|&idx| idx >= cum_ack);

        if advanced {
            self.dupacks = 0;
        } else if acked_idx > self.snd_una && !out.newly_acked.is_zero() {
            // An ACK that sacks new data above a hole without moving
            // the left edge: a duplicate ACK.
            self.dupacks += 1;
        }

        if self.in_recovery && cum_ack >= self.recovery_high {
            self.in_recovery = false;
        }

        // After DUP_THRESH duplicate ACKs, every unacked burst below
        // the highest SACK is considered lost (RFC 6675-style SACK
        // scoreboard at burst granularity).
        if self.dupacks >= DUP_THRESH as u32 && self.high_sacked > self.snd_una {
            let scan_from = self.snd_una.max(self.loss_scan_floor);
            let start = (scan_from - self.snd_una) as usize;
            let end = ((self.high_sacked - self.snd_una) as usize).min(self.outstanding.len());
            for off in start..end {
                let o = &mut self.outstanding[off];
                if o.acked || o.lost {
                    continue;
                }
                o.lost = true;
                self.inflight_bursts -= 1;
                self.retx_queue.push_back(self.snd_una + off as u64);
                out.marked_lost += 1;
            }
            self.loss_scan_floor = self.high_sacked;
            if out.marked_lost > 0 && !self.in_recovery {
                self.in_recovery = true;
                self.recovery_high = self.snd_nxt;
                self.cc.on_loss(now);
                out.entered_recovery = true;
            }
        }

        if let Some(s) = rtt_sample {
            self.rtt.on_sample(s, now);
        }
        if !out.newly_acked.is_zero() {
            self.last_progress = now;
            self.tlp_armed = true;
        }
        if !out.newly_acked.is_zero() {
            let inflight = self.inflight();
            // Approximate Linux's tcp_is_cwnd_limited(): in slow start
            // the window may grow until it reaches twice the flight
            // size (headroom that later absorbs loss cuts without a
            // throughput dip); in congestion avoidance it only grows
            // when the flight actually presses against it.
            let pre_ack = inflight + out.newly_acked + self.burst;
            let cwnd = self.cc.cwnd().min(self.rwnd);
            let threshold = if self.cc.in_slow_start() { cwnd / 2 } else { cwnd };
            let cwnd_limited = pre_ack >= threshold;
            self.acks_processed += 1;
            if cwnd_limited {
                self.cwnd_limited_acks += 1;
            }
            self.cc.on_ack(out.newly_acked, rtt_sample, now, inflight, cwnd_limited);
        }
        out
    }

    /// Retransmission timeout fired at `now`: collapse to slow start
    /// and re-queue everything outstanding.
    pub fn on_rto(&mut self, now: SimTime) {
        self.rto_events += 1;
        self.cc.on_rto(now);
        // Everything outstanding is old data now: retransmissions and
        // the SACK pattern they produce must not be treated as *new*
        // loss episodes (that would keep cutting the already-collapsed
        // window). Recovery holds until the pre-RTO data is all acked.
        self.in_recovery = true;
        self.recovery_high = self.snd_nxt;
        self.dupacks = 0;
        self.retx_queue.clear();
        for (off, o) in self.outstanding.iter_mut().enumerate() {
            if !o.acked {
                if !o.lost {
                    self.inflight_bursts -= 1;
                }
                o.lost = true;
                self.retx_queue.push_back(self.snd_una + off as u64);
            }
        }
        self.loss_scan_floor = 0;
    }

    /// Tail-loss-probe deadline: 2×SRTT after the last forward
    /// progress (RFC 8985 PTO, simplified), while data is in flight.
    pub fn tlp_deadline(&self) -> Option<SimTime> {
        if !self.tlp_armed || self.inflight_bursts == 0 || self.in_recovery {
            return None;
        }
        let srtt = self.rtt.srtt_or(SimDuration::from_millis(10));
        Some(self.last_progress + srtt * 2 + SimDuration::from_millis(2))
    }

    /// Fire the tail-loss probe: retransmit the highest in-flight burst
    /// so the receiver generates the ACKs/SACKs that let normal fast
    /// recovery repair a tail drop — instead of waiting for the RTO and
    /// collapsing to slow start.
    pub fn on_tlp(&mut self, _now: SimTime) {
        self.tlp_armed = false;
        self.tlp_events += 1;
        let Some((off, _)) = self
            .outstanding
            .iter()
            .enumerate()
            .rev()
            .find(|(_, o)| !o.acked && !o.lost)
        else {
            return;
        };
        let idx = self.snd_una + off as u64;
        self.outstanding[off].lost = true;
        self.inflight_bursts -= 1;
        self.retx_queue.push_back(idx);
    }

    /// Number of tail-loss probes fired.
    pub fn tlp_events(&self) -> u64 {
        self.tlp_events
    }

    /// The earliest pending timer (TLP or RTO) and a token describing
    /// which one it is.
    pub fn timer_deadline(&self) -> Option<(SimTime, TimerKind)> {
        let rto = self.rto_deadline().map(|t| (t, TimerKind::Rto));
        let tlp = self.tlp_deadline().map(|t| (t, TimerKind::Tlp));
        match (tlp, rto) {
            (Some(a), Some(b)) => Some(if a.0 <= b.0 { a } else { b }),
            (a, b) => a.or(b),
        }
    }

    /// When should the RTO fire?
    ///
    /// Scans a bounded prefix of the scoreboard for the oldest
    /// in-flight burst (entries near the left edge are the oldest; a
    /// cap keeps this O(1) amortised — exactly-oldest is not required
    /// for a timeout clock).
    pub fn rto_deadline(&self) -> Option<SimTime> {
        self.outstanding
            .iter()
            .take(64)
            .filter(|o| !o.acked && !o.lost)
            .map(|o| o.sent_at)
            .min()
            .or_else(|| {
                if self.inflight_bursts > 0 {
                    // Oldest in-flight is beyond the scan cap: fall
                    // back to any in-flight entry (still a valid clock).
                    self.outstanding
                        .iter()
                        .find(|o| !o.acked && !o.lost)
                        .map(|o| o.sent_at)
                } else {
                    None
                }
            })
            .map(|t| t + self.rtt.rto())
    }

    /// First unacknowledged burst index.
    pub fn snd_una(&self) -> u64 {
        self.snd_una
    }

    /// Next fresh burst index.
    pub fn snd_nxt(&self) -> u64 {
        self.snd_nxt
    }

    /// Whether a recovery episode is in progress.
    pub fn in_recovery(&self) -> bool {
        self.in_recovery
    }

    /// Total retransmitted bursts.
    pub fn retx_bursts(&self) -> u64 {
        self.retx_bursts
    }

    /// ACKs that advanced the window so far.
    pub fn acks_processed(&self) -> u64 {
        self.acks_processed
    }

    /// Of [`TcpSender::acks_processed`], how many found the flight
    /// pressing against cwnd (`tcp_is_cwnd_limited()` true).
    pub fn cwnd_limited_acks(&self) -> u64 {
        self.cwnd_limited_acks
    }

    /// Retransmissions in MTU packets — iperf3's `Retr`.
    pub fn retr_packets(&self) -> u64 {
        self.retx_bursts * self.burst.packets_at_mtu(self.mtu)
    }

    /// Number of RTO events.
    pub fn rto_events(&self) -> u64 {
        self.rto_events
    }

    /// Access the congestion controller.
    pub fn cc(&self) -> &dyn CongestionControl {
        self.cc.as_ref()
    }

    /// Current pacing rate from the congestion controller.
    pub fn tcp_pacing_rate(&self) -> simcore::BitRate {
        self.cc.pacing_rate(self.rtt.srtt_or(SimDuration::from_micros(500)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::CcAlgorithm;

    fn sender() -> TcpSender {
        let burst = Bytes::kib(64);
        // Large initial cwnd so window isn't the constraint in most tests.
        let cc = CcAlgorithm::Cubic.build(Bytes::new(9000), Bytes::mib(4));
        TcpSender::new(cc, burst, Bytes::new(9000), Bytes::gib(1), Bytes::gib(1))
    }

    fn fill(s: &mut TcpSender, n: u64) -> Vec<u64> {
        let mut sent = Vec::new();
        for _ in 0..n {
            s.app_wrote();
            match s.next_slot(SimTime::ZERO) {
                SendSlot::New(idx) => sent.push(idx),
                other => panic!("expected New, got {other:?}"),
            }
        }
        sent
    }

    #[test]
    fn sends_new_data_within_window() {
        let mut s = sender();
        let sent = fill(&mut s, 4);
        assert_eq!(sent, vec![0, 1, 2, 3]);
        assert_eq!(s.inflight(), Bytes::kib(256));
        assert_eq!(s.snd_nxt(), 4);
    }

    #[test]
    fn blocked_when_window_full() {
        let burst = Bytes::kib(64);
        let cc = CcAlgorithm::Cubic.build(Bytes::new(9000), Bytes::kib(128));
        let mut s = TcpSender::new(cc, burst, Bytes::new(9000), Bytes::gib(1), Bytes::gib(1));
        s.app_wrote();
        s.app_wrote();
        s.app_wrote();
        assert!(matches!(s.next_slot(SimTime::ZERO), SendSlot::New(0)));
        assert!(matches!(s.next_slot(SimTime::ZERO), SendSlot::New(1)));
        // cwnd = 128 KiB = 2 bursts: third must block.
        assert!(matches!(s.next_slot(SimTime::ZERO), SendSlot::Blocked));
        assert!(!s.can_send());
    }

    #[test]
    fn cumulative_ack_releases_window() {
        let mut s = sender();
        fill(&mut s, 4);
        let out = s.on_ack(2, 1, Bytes::gib(1), SimTime::from_nanos(1000));
        assert_eq!(out.newly_acked, Bytes::kib(128));
        assert_eq!(s.snd_una(), 2);
        assert_eq!(s.inflight(), Bytes::kib(128));
    }

    #[test]
    fn sack_hole_triggers_fast_retransmit_after_threshold() {
        let mut s = sender();
        fill(&mut s, 8);
        let t = SimTime::from_nanos(10_000);
        // Burst 0 lost; receiver ACKs 1, 2, 3 (cum stays 0).
        assert_eq!(s.on_ack(0, 1, Bytes::gib(1), t).marked_lost, 0);
        assert_eq!(s.on_ack(0, 2, Bytes::gib(1), t).marked_lost, 0);
        let out = s.on_ack(0, 3, Bytes::gib(1), t);
        assert_eq!(out.marked_lost, 1, "burst 0 lost after 3 SACKs above");
        assert!(out.entered_recovery);
        assert!(s.in_recovery());
        // Retransmit comes before new data.
        match s.next_slot(t) {
            SendSlot::Retransmit(0) => {}
            other => panic!("expected Retransmit(0), got {other:?}"),
        }
        assert_eq!(s.retx_bursts(), 1);
    }

    #[test]
    fn recovery_reduces_cwnd_once_per_episode() {
        let mut s = sender();
        fill(&mut s, 16);
        let t = SimTime::from_nanos(10_000);
        let cwnd_before = s.cc().cwnd();
        // Two holes (0 and 1); SACKs climb.
        s.on_ack(0, 2, Bytes::gib(1), t);
        s.on_ack(0, 3, Bytes::gib(1), t);
        let o1 = s.on_ack(0, 4, Bytes::gib(1), t);
        assert!(o1.entered_recovery);
        let after_first = s.cc().cwnd();
        assert!(after_first < cwnd_before);
        let o2 = s.on_ack(0, 5, Bytes::gib(1), t);
        assert!(!o2.entered_recovery, "same episode: no second reduction");
        assert_eq!(s.cc().cwnd(), after_first);
    }

    #[test]
    fn recovery_ends_when_cum_ack_passes_recovery_high() {
        let mut s = sender();
        fill(&mut s, 8);
        let t = SimTime::from_nanos(10_000);
        s.on_ack(0, 1, Bytes::gib(1), t);
        s.on_ack(0, 2, Bytes::gib(1), t);
        s.on_ack(0, 3, Bytes::gib(1), t);
        assert!(s.in_recovery());
        // Retransmit 0, receiver fills the hole → cum jumps to 8.
        assert!(matches!(s.next_slot(t), SendSlot::Retransmit(0)));
        s.on_ack(8, 0, Bytes::gib(1), t);
        assert!(!s.in_recovery());
        assert_eq!(s.snd_una(), 8);
        assert_eq!(s.inflight(), Bytes::ZERO);
    }

    #[test]
    fn karn_no_rtt_sample_from_retransmits() {
        let mut s = sender();
        fill(&mut s, 5);
        let t1 = SimTime::from_nanos(100_000);
        s.on_ack(0, 1, Bytes::gib(1), t1);
        s.on_ack(0, 2, Bytes::gib(1), t1);
        s.on_ack(0, 3, Bytes::gib(1), t1);
        let srtt_before = s.rtt.srtt();
        assert!(matches!(s.next_slot(t1), SendSlot::Retransmit(0)));
        // ACK of the retransmitted burst must not update SRTT.
        let far = SimTime::from_secs_f64(5.0);
        s.on_ack(5, 0, Bytes::gib(1), far);
        assert_eq!(s.rtt.srtt(), srtt_before);
    }

    #[test]
    fn rto_requeues_everything_and_restarts_slow_start() {
        let mut s = sender();
        fill(&mut s, 6);
        let t = SimTime::from_secs_f64(2.0);
        s.on_rto(t);
        assert_eq!(s.rto_events(), 1);
        assert!(s.cc().in_slow_start());
        assert_eq!(s.inflight(), Bytes::ZERO, "everything marked lost");
        // First retransmission is the left edge.
        assert!(matches!(s.next_slot(t), SendSlot::Retransmit(0)));
    }

    #[test]
    fn rwnd_limits_window() {
        let mut s = sender();
        fill(&mut s, 2);
        s.on_ack(2, 1, Bytes::kib(64), SimTime::from_nanos(500));
        // Peer advertises one burst of window: only one more send allowed.
        s.app_wrote();
        s.app_wrote();
        assert!(matches!(s.next_slot(SimTime::ZERO), SendSlot::New(2)));
        assert!(matches!(s.next_slot(SimTime::ZERO), SendSlot::Blocked));
    }

    #[test]
    fn retr_packets_scale_by_mtu() {
        let mut s = sender();
        fill(&mut s, 5);
        let t = SimTime::from_nanos(1_000);
        s.on_ack(0, 1, Bytes::gib(1), t);
        s.on_ack(0, 2, Bytes::gib(1), t);
        s.on_ack(0, 3, Bytes::gib(1), t);
        let _ = s.next_slot(t);
        // One 64 KiB burst at 9000-byte MTU = 8 wire packets.
        assert_eq!(s.retr_packets(), 8);
    }

    #[test]
    fn app_write_gating_by_sndbuf() {
        let burst = Bytes::kib(64);
        let cc = CcAlgorithm::Cubic.build(Bytes::new(9000), Bytes::kib(128));
        let mut s = TcpSender::new(cc, burst, Bytes::new(9000), Bytes::mib(1), Bytes::gib(1));
        let mut writes = 0;
        while s.app_can_write() && writes < 100 {
            s.app_wrote();
            writes += 1;
        }
        assert!(writes < 100, "sndbuf must bound buffered writes, wrote {writes}");
        assert!(writes >= 2);
    }

    #[test]
    fn finite_flow_gates_writes_and_completes_on_final_ack() {
        let mut s = sender();
        s.set_flow_bursts(3);
        assert_eq!(s.remaining_app_bursts(), Some(3));
        let mut writes = 0;
        while s.app_can_write() {
            s.app_wrote();
            writes += 1;
        }
        assert_eq!(writes, 3, "writes must stop at the flow size");
        assert_eq!(s.remaining_app_bursts(), Some(0));
        for i in 0..3 {
            assert!(matches!(s.next_slot(SimTime::ZERO), SendSlot::New(idx) if idx == i));
        }
        assert!(!s.is_complete(), "unacked data: not complete");
        s.on_ack(2, 1, Bytes::gib(1), SimTime::from_nanos(100));
        assert!(!s.is_complete(), "last burst still outstanding");
        s.on_ack(3, 2, Bytes::gib(1), SimTime::from_nanos(200));
        assert!(s.is_complete(), "all bursts cum-acked: FIN acked");
    }

    #[test]
    fn finite_flow_completes_after_loss_recovery() {
        let mut s = sender();
        s.set_flow_bursts(5);
        fill(&mut s, 5);
        let t = SimTime::from_nanos(10_000);
        // Burst 0 lost; SACKs 1..=3 trigger fast retransmit.
        s.on_ack(0, 1, Bytes::gib(1), t);
        s.on_ack(0, 2, Bytes::gib(1), t);
        s.on_ack(0, 3, Bytes::gib(1), t);
        assert!(matches!(s.next_slot(t), SendSlot::Retransmit(0)));
        assert!(!s.is_complete());
        // Hole filled: cum jumps over everything.
        s.on_ack(5, 0, Bytes::gib(1), t);
        assert!(s.is_complete());
        assert_eq!(s.inflight(), Bytes::ZERO);
    }

    #[test]
    fn unbounded_flow_never_completes() {
        let mut s = sender();
        fill(&mut s, 2);
        s.on_ack(2, 1, Bytes::gib(1), SimTime::from_nanos(50));
        assert!(!s.is_complete());
        assert_eq!(s.flow_bursts(), None);
        assert_eq!(s.remaining_app_bursts(), None);
    }

    #[test]
    fn duplicate_sack_is_idempotent() {
        let mut s = sender();
        fill(&mut s, 4);
        let t = SimTime::from_nanos(100);
        let o1 = s.on_ack(0, 2, Bytes::gib(1), t);
        assert_eq!(o1.newly_acked, Bytes::kib(64));
        let o2 = s.on_ack(0, 2, Bytes::gib(1), t);
        assert_eq!(o2.newly_acked, Bytes::ZERO);
    }
}
