//! The fleet engine's scale contract: more than a million finite flows
//! served through one simulation with O(active-flow) memory, every
//! completion folded through the streaming interval aggregator (no
//! per-flow vectors, no late drops), and the whole run reproducible
//! bit-for-bit from the profile alone.

use netsim::{ArrivalProcess, FleetClass, FleetProfile, FleetResult, FleetSim, SizeDist};
use simcore::{BitRate, Bytes, SimDuration};
use tcpstack::CcAlgorithm;

/// A deliberately light per-flow workload — 1–2 bursts over an
/// uncongested 100 G hop — so a million-flow run stays cheap enough
/// for the tier-1 suite while still churning the open/close, slab and
/// timer-wheel paths a million times.
fn mouse_fleet(target: u64) -> FleetProfile {
    let rate = 50_000.0;
    let mut p = FleetProfile::new(
        "fleet_streaming_mice",
        ArrivalProcess::Poisson { rate_per_sec: rate },
        SizeDist::BoundedPareto { alpha: 1.5, min_bytes: 16 * 1024, max_bytes: 32 * 1024 },
    );
    p.duration = SimDuration::from_secs_f64(target as f64 / rate);
    p.max_flows = target;
    p.burst = Bytes::kib(16);
    p.classes = vec![FleetClass {
        name: "mice".into(),
        weight: 1,
        cc: CcAlgorithm::Cubic,
        pacing: false,
        rtt: SimDuration::from_micros(500),
        bottleneck: BitRate::gbps(100.0),
        buffer: Bytes::mib(4),
    }];
    p
}

fn run(target: u64) -> FleetResult {
    FleetSim::new(mouse_fleet(target))
        .expect("profile validates")
        .with_event_budget(target.saturating_mul(400).saturating_add(10_000_000))
        .run()
        .expect("fleet run completes")
}

#[test]
fn million_flows_stream_with_o_active_memory() {
    let target = 1_050_000;
    let res = run(target);

    // Scale: every arrival served, none stuck, and we really crossed
    // the million-flow bar.
    assert_eq!(res.flows_served, res.flows_opened);
    assert!(res.flows_served > 1_000_000, "served {}", res.flows_served);

    // O(active) memory: the slot slab high-water mark tracks the
    // concurrently-active population (arrival rate × FCT ≈ dozens),
    // not the total flow count. A leak of even 1% of closed flows
    // would blow through this bound.
    assert!(
        res.peak_slots as u64 * 100 < res.flows_served,
        "peak {} slots for {} flows is not O(active)",
        res.peak_slots,
        res.flows_served
    );

    // Teardown reclaimed every slab slot through the timer wheel's
    // tombstone path.
    assert_eq!(res.health.slab_slots, res.health.free_slots, "leaked slab slots");
    assert_eq!(res.health.stale_timers, 0, "stale timers after drain");
    assert_eq!(res.past_clamps, 0);

    // Streaming aggregation: everything landed before the watermark,
    // and each sealed interval carries coherent FCT quantiles.
    assert_eq!(res.late_dropped, 0);
    assert!(!res.intervals.is_empty());
    let mut samples = 0;
    for rec in &res.intervals {
        if let Some(fct) = rec.metrics.get("fct_us") {
            samples += fct.count();
            let (p50, p99, p999) = (
                fct.quantile(0.50).unwrap_or(0),
                fct.quantile(0.99).unwrap_or(0),
                fct.quantile(0.999).unwrap_or(0),
            );
            assert!(p50 <= p99 && p99 <= p999, "non-monotone interval quantiles");
        }
    }
    assert_eq!(samples, res.flows_served, "streamed FCT samples must cover every flow");

    // Run-level quantiles are monotone too.
    let (p50, p99, p999) = (
        res.fct_us(0.50).unwrap_or(0),
        res.fct_us(0.99).unwrap_or(0),
        res.fct_us(0.999).unwrap_or(0),
    );
    assert!(p50 > 0 && p50 <= p99 && p99 <= p999, "bad run quantiles {p50}/{p99}/{p999}");
}

#[test]
fn fleet_runs_are_bit_identical() {
    // Same profile, two independent engine instances: identical event
    // counts, service totals and tail quantiles (position-independent
    // per-flow seeding).
    let a = run(120_000);
    let b = run(120_000);
    assert_eq!(a.events, b.events);
    assert_eq!(a.flows_served, b.flows_served);
    assert_eq!(a.total_bytes, b.total_bytes);
    assert_eq!(a.drops, b.drops);
    assert_eq!(a.fct_us(0.50), b.fct_us(0.50));
    assert_eq!(a.fct_us(0.999), b.fct_us(0.999));
    assert_eq!(a.finished_at, b.finished_at);
}
