//! A DTN tuning advisor: the paper's §V recommendations as an
//! executable checklist.
//!
//! Give it a [`HostConfig`] and what you intend to run, and it returns
//! the gaps between your configuration and the paper's guidance —
//! with the section of the paper each recommendation comes from.

use crate::hostcfg::HostConfig;
use crate::kernel::KernelVersion;
use crate::sysctl::Qdisc;
use simcore::{BitRate, Bytes, SimDuration};
use std::fmt;

/// How much a finding matters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Will outright break or cripple the intended workload.
    Critical,
    /// Leaves significant performance on the table.
    Warning,
    /// Worth knowing; minor effect.
    Note,
}

/// One piece of advice.
#[derive(Debug, Clone)]
pub struct Recommendation {
    /// How much it matters.
    pub severity: Severity,
    /// What to change and why.
    pub message: String,
    /// Where the paper says so.
    pub reference: &'static str,
}

impl fmt::Display for Recommendation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:?}] {} ({})", self.severity, self.message, self.reference)
    }
}

/// What the host is being tuned for.
#[derive(Debug, Clone, Copy)]
pub struct Intent {
    /// Highest-RTT path the host will serve.
    pub max_rtt: SimDuration,
    /// Target per-host throughput.
    pub target_rate: BitRate,
    /// MSG_ZEROCOPY will be used.
    pub zerocopy: bool,
    /// Parallel streams (DTN) vs single-flow benchmarking.
    pub parallel_streams: bool,
}

impl Intent {
    /// Single-flow benchmarking at 100G over up to ~100 ms (§V-A).
    pub fn benchmarking_100g() -> Self {
        Intent {
            max_rtt: SimDuration::from_millis(110),
            target_rate: BitRate::gbps(100.0),
            zerocopy: true,
            parallel_streams: false,
        }
    }

    /// A production DTN moving parallel streams (§V-B).
    pub fn production_dtn() -> Self {
        Intent {
            max_rtt: SimDuration::from_millis(110),
            target_rate: BitRate::gbps(100.0),
            zerocopy: false,
            parallel_streams: true,
        }
    }
}

/// Audit `cfg` against the paper's recommendations.
pub fn advise(cfg: &HostConfig, intent: &Intent) -> Vec<Recommendation> {
    let mut out = Vec::new();
    let bdp = intent.target_rate.bdp(intent.max_rtt);

    // Buffer ceilings must cover the BDP (with autotuning headroom),
    // capped at the largest value the sysctl accepts (2 GiB - 1 —
    // which is also as far as TCP window scaling goes).
    let needed = Bytes::new(bdp.as_u64().saturating_mul(2).min(2_147_483_647));
    if cfg.sysctl.tcp_rmem.max < needed {
        out.push(Recommendation {
            severity: Severity::Critical,
            message: format!(
                "tcp_rmem max {} cannot cover 2x the {} BDP of your longest path ({}); \
                 set net.ipv4.tcp_rmem max (and rmem_max) to 2147483647",
                cfg.sysctl.tcp_rmem.max, bdp, needed
            ),
            reference: "SIII-D / fasterdata 100G tuning",
        });
    }
    if cfg.sysctl.tcp_wmem.max < needed {
        out.push(Recommendation {
            severity: Severity::Critical,
            message: format!(
                "tcp_wmem max {} is below 2x BDP {}; raise it to 2147483647",
                cfg.sysctl.tcp_wmem.max, needed
            ),
            reference: "SIII-D",
        });
    }

    // fq is required for pacing, which both use cases need.
    if cfg.sysctl.default_qdisc != Qdisc::Fq {
        out.push(Recommendation {
            severity: Severity::Critical,
            message: "default_qdisc is fq_codel; set net.core.default_qdisc=fq \
                      (pacing needs fq)"
                .into(),
            reference: "SIII-D / SV-A",
        });
    }

    // Zerocopy needs optmem_max sized to the pinned window.
    if intent.zerocopy {
        let per_send = crate::zerocopy::notification_charge(cfg.kernel);
        let sends = bdp.as_u64().saturating_mul(2) / cfg.offload.gso_max_size.as_u64().max(1);
        let optmem_needed = Bytes::new(sends * per_send.as_u64());
        if cfg.sysctl.optmem_max < optmem_needed.min(Bytes::mib(1)) {
            out.push(Recommendation {
                severity: Severity::Critical,
                message: format!(
                    "optmem_max {} will make MSG_ZEROCOPY fall back to copies \
                     (and cost MORE CPU than plain sends); set it to at least 1 MB \
                     (~{} needed for your BDP)",
                    cfg.sysctl.optmem_max, optmem_needed
                ),
                reference: "SIV-B",
            });
        } else if cfg.sysctl.optmem_max < optmem_needed {
            out.push(Recommendation {
                severity: Severity::Warning,
                message: format!(
                    "optmem_max {} covers short paths but not your longest one; \
                     ~{} would avoid copy fallbacks (the paper used 3.25 MB on 6.5)",
                    cfg.sysctl.optmem_max, optmem_needed
                ),
                reference: "SIV-B / Fig. 9",
            });
        }
        if !cfg.offload.zerocopy_compatible() {
            out.push(Recommendation {
                severity: Severity::Critical,
                message: "BIG TCP is enabled: MSG_ZEROCOPY cannot be used with it on a \
                          stock kernel (both consume skb frags); build with \
                          CONFIG_MAX_SKB_FRAGS=45 or disable one"
                    .into(),
                reference: "SII-C",
            });
        }
    }

    // Affinity: the single biggest variance source.
    if cfg.cores.irqbalance {
        out.push(Recommendation {
            severity: Severity::Warning,
            message: "irqbalance is running: single-flow results will vary 20-55 Gbps \
                      with core placement; disable it and pin NIC IRQs and the \
                      application to separate cores on the NIC's NUMA node"
                .into(),
            reference: "SIII-A",
        });
    } else if !cfg.cores.is_separated() {
        out.push(Recommendation {
            severity: Severity::Warning,
            message: "application cores overlap IRQ cores; keep them disjoint".into(),
            reference: "SIII-A / Hock et al.",
        });
    }

    // iommu=pt.
    if !cfg.iommu_pt {
        out.push(Recommendation {
            severity: Severity::Warning,
            message: "iommu=pt is not set; IOMMU translations roughly halve \
                      multi-stream throughput (80 -> 181 Gbps in the paper)"
                .into(),
            reference: "SIII-D",
        });
    }

    // Governor / SMT.
    if !cfg.performance_governor {
        out.push(Recommendation {
            severity: Severity::Note,
            message: "CPU governor is not 'performance'".into(),
            reference: "SIII-D",
        });
    }
    if !cfg.smt_off {
        out.push(Recommendation {
            severity: Severity::Note,
            message: "SMT (hyper-threading) is on; the paper disables it for \
                      consistency"
                .into(),
            reference: "SIII-D",
        });
    }

    // Kernel version.
    if cfg.kernel < KernelVersion::L6_8 {
        out.push(Recommendation {
            severity: Severity::Warning,
            message: format!(
                "kernel {} — 6.8 is up to 30% faster on the LAN and 38% on the WAN \
                 (on Ubuntu 22.04: apt install linux-image-generic-hwe-22.04-edge)",
                cfg.kernel
            ),
            reference: "SIV-E / SV-A",
        });
    }

    // AMD ring sizing.
    if cfg.cpu == crate::cpu::CpuArch::AmdEpyc73F3 && cfg.effective_ring_entries() < 8192 {
        out.push(Recommendation {
            severity: Severity::Note,
            message: "rx ring at driver default; ethtool -G rx 8192 helped the AMD \
                      hosts absorb line-rate trains"
                .into(),
            reference: "SIII-D",
        });
    }

    // DTN-specific: pacing reminder.
    if intent.parallel_streams {
        out.push(Recommendation {
            severity: Severity::Note,
            message: "pace parallel streams (e.g. 5-8 Gbps/flow toward 100G peers, \
                      ~1 Gbps toward 10G clients) or use 802.3x-capable switches — \
                      unpaced flows interfere and retransmit"
                .into(),
            reference: "SV-B / Tables I-III",
        });
    }

    out.sort_by_key(|r| r.severity);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::CpuArch;
    use nethw::NicModel;

    #[test]
    fn untuned_host_fails_hard() {
        let cfg = HostConfig::untuned(
            CpuArch::IntelXeon6346,
            NicModel::ConnectX5,
            KernelVersion::L5_15,
        );
        let recs = advise(&cfg, &Intent::benchmarking_100g());
        assert!(recs.iter().any(|r| r.severity == Severity::Critical));
        // Buffers, qdisc, optmem, irqbalance, iommu, kernel all flagged.
        assert!(recs.len() >= 6, "expected a pile of findings, got {}", recs.len());
        let text: String = recs.iter().map(|r| r.to_string()).collect();
        assert!(text.contains("tcp_rmem"));
        assert!(text.contains("irqbalance"));
        assert!(text.contains("iommu"));
        assert!(text.contains("6.8"));
    }

    #[test]
    fn paper_tuned_host_is_mostly_clean() {
        let cfg = HostConfig::amlight_intel(KernelVersion::L6_8);
        let recs = advise(&cfg, &Intent::benchmarking_100g());
        assert!(
            !recs.iter().any(|r| r.severity == Severity::Critical),
            "tuned host must have no critical findings: {recs:?}"
        );
    }

    #[test]
    fn optmem_warning_scales_with_rtt() {
        let cfg = HostConfig::amlight_intel(KernelVersion::L6_5); // 1 MB optmem
        let short = Intent {
            max_rtt: SimDuration::from_millis(10),
            ..Intent::benchmarking_100g()
        };
        let long = Intent {
            max_rtt: SimDuration::from_millis(104),
            target_rate: BitRate::gbps(50.0),
            zerocopy: true,
            parallel_streams: false,
        };
        let has_optmem = |intent: &Intent| {
            advise(&cfg, intent).iter().any(|r| r.message.contains("optmem"))
        };
        assert!(!has_optmem(&short), "1 MB is plenty at 10 ms");
        assert!(has_optmem(&long), "1 MB is short at 104 ms (Fig. 9)");
    }

    #[test]
    fn bigtcp_zerocopy_conflict_flagged() {
        let mut cfg = HostConfig::amlight_intel(KernelVersion::L6_8);
        cfg.offload = cfg
            .offload
            .with_big_tcp(crate::offload::PAPER_BIG_TCP_SIZE, KernelVersion::L6_8);
        let recs = advise(&cfg, &Intent::benchmarking_100g());
        assert!(recs.iter().any(|r| r.message.contains("MAX_SKB_FRAGS")));
    }

    #[test]
    fn dtn_intent_adds_pacing_note() {
        let cfg = HostConfig::esnet_prod_dtn();
        let recs = advise(&cfg, &Intent::production_dtn());
        assert!(recs.iter().any(|r| r.message.contains("pace")));
    }

    #[test]
    fn findings_sorted_by_severity() {
        let cfg = HostConfig::untuned(
            CpuArch::AmdEpyc73F3,
            NicModel::ConnectX7,
            KernelVersion::L5_15,
        );
        let recs = advise(&cfg, &Intent::benchmarking_100g());
        for pair in recs.windows(2) {
            assert!(pair[0].severity <= pair[1].severity);
        }
    }
}
