//! Strongly-typed data sizes and rates.
//!
//! Throughput in this workspace is always a [`BitRate`] (bits per second,
//! the unit the paper reports: Gbps) and data volumes are [`Bytes`].
//! Mixing the two — the classic factor-of-8 bug — is a type error.

use crate::time::SimDuration;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A count of bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bytes(u64);

impl Bytes {
    /// Zero bytes.
    pub const ZERO: Bytes = Bytes(0);

    /// Construct from a raw byte count.
    #[inline]
    pub const fn new(n: u64) -> Self {
        Bytes(n)
    }

    /// Construct from kibibytes (1024 B).
    #[inline]
    pub const fn kib(n: u64) -> Self {
        Bytes(n * 1024)
    }

    /// Construct from mebibytes (1024² B).
    #[inline]
    pub const fn mib(n: u64) -> Self {
        Bytes(n * 1024 * 1024)
    }

    /// Construct from gibibytes (1024³ B).
    #[inline]
    pub const fn gib(n: u64) -> Self {
        Bytes(n * 1024 * 1024 * 1024)
    }

    /// Raw byte count.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Byte count as `f64`.
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Bit count (×8).
    #[inline]
    pub const fn bits(self) -> u64 {
        self.0 * 8
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: Bytes) -> Bytes {
        Bytes(self.0.saturating_sub(other.0))
    }

    /// The smaller of two sizes.
    #[inline]
    pub fn min(self, other: Bytes) -> Bytes {
        Bytes(self.0.min(other.0))
    }

    /// The larger of two sizes.
    #[inline]
    pub fn max(self, other: Bytes) -> Bytes {
        Bytes(self.0.max(other.0))
    }

    /// True if zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Number of MTU-sized wire packets needed to carry this payload
    /// (ceiling division). This is what retransmit counters count.
    #[inline]
    pub fn packets_at_mtu(self, mtu: Bytes) -> u64 {
        debug_assert!(mtu.0 > 0, "MTU must be positive");
        self.0.div_ceil(mtu.0)
    }
}

impl Add for Bytes {
    type Output = Bytes;
    #[inline]
    fn add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 + rhs.0)
    }
}

impl AddAssign for Bytes {
    #[inline]
    fn add_assign(&mut self, rhs: Bytes) {
        self.0 += rhs.0;
    }
}

impl Sub for Bytes {
    type Output = Bytes;
    #[inline]
    fn sub(self, rhs: Bytes) -> Bytes {
        debug_assert!(self.0 >= rhs.0, "Bytes subtraction underflow");
        Bytes(self.0 - rhs.0)
    }
}

impl SubAssign for Bytes {
    #[inline]
    fn sub_assign(&mut self, rhs: Bytes) {
        debug_assert!(self.0 >= rhs.0, "Bytes subtraction underflow");
        self.0 -= rhs.0;
    }
}

impl std::ops::Mul<u64> for Bytes {
    type Output = Bytes;
    #[inline]
    fn mul(self, rhs: u64) -> Bytes {
        Bytes(self.0 * rhs)
    }
}

impl std::ops::Div<u64> for Bytes {
    type Output = Bytes;
    #[inline]
    fn div(self, rhs: u64) -> Bytes {
        Bytes(self.0 / rhs)
    }
}

impl Sum for Bytes {
    fn sum<I: Iterator<Item = Bytes>>(iter: I) -> Bytes {
        Bytes(iter.map(|b| b.0).sum())
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n = self.0 as f64;
        if self.0 >= 1 << 30 {
            write!(f, "{:.2} GiB", n / (1u64 << 30) as f64)
        } else if self.0 >= 1 << 20 {
            write!(f, "{:.2} MiB", n / (1u64 << 20) as f64)
        } else if self.0 >= 1 << 10 {
            write!(f, "{:.2} KiB", n / 1024.0)
        } else {
            write!(f, "{} B", self.0)
        }
    }
}

/// A data rate in bits per second.
///
/// Stored as `f64` bits/s: rates are the product of calibration constants
/// and don't need exact integer arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct BitRate(f64);

impl BitRate {
    /// Zero rate.
    pub const ZERO: BitRate = BitRate(0.0);

    /// Construct from bits per second.
    #[inline]
    pub fn from_bps(bps: f64) -> Self {
        debug_assert!(bps >= 0.0 && bps.is_finite(), "rate must be finite and >= 0");
        BitRate(bps)
    }

    /// Construct from gigabits per second (the paper's unit).
    #[inline]
    pub fn gbps(g: f64) -> Self {
        Self::from_bps(g * 1e9)
    }

    /// Construct from megabits per second.
    #[inline]
    pub fn mbps(m: f64) -> Self {
        Self::from_bps(m * 1e6)
    }

    /// Rate in bits per second.
    #[inline]
    pub fn as_bps(self) -> f64 {
        self.0
    }

    /// Rate in gigabits per second.
    #[inline]
    pub fn as_gbps(self) -> f64 {
        self.0 / 1e9
    }

    /// Rate in bytes per second.
    #[inline]
    pub fn bytes_per_sec(self) -> f64 {
        self.0 / 8.0
    }

    /// Time to serialise `bytes` at this rate.
    ///
    /// Rounds *up* to the next nanosecond: rounding to nearest would
    /// let a small burst serialise faster than line rate (up to half a
    /// nanosecond early per burst, compounding into a link that beats
    /// its own capacity over millions of back-to-back bursts).
    ///
    /// A zero rate would take forever; callers must not ask.
    #[inline]
    pub fn serialize_time(self, bytes: Bytes) -> SimDuration {
        assert!(self.0 > 0.0, "cannot serialise at zero rate");
        SimDuration::from_nanos((bytes.bits() as f64 / self.0 * 1e9).ceil() as u64)
    }

    /// Bytes transferred in `dur` at this rate.
    #[inline]
    pub fn bytes_in(self, dur: SimDuration) -> Bytes {
        Bytes::new((self.bytes_per_sec() * dur.as_secs_f64()).floor() as u64)
    }

    /// Bandwidth-delay product: bytes in flight at this rate over `rtt`.
    #[inline]
    pub fn bdp(self, rtt: SimDuration) -> Bytes {
        self.bytes_in(rtt)
    }

    /// The smaller of two rates.
    #[inline]
    pub fn min(self, other: BitRate) -> BitRate {
        BitRate(self.0.min(other.0))
    }

    /// The larger of two rates.
    #[inline]
    pub fn max(self, other: BitRate) -> BitRate {
        BitRate(self.0.max(other.0))
    }

    /// Scale by a dimensionless factor.
    #[inline]
    pub fn mul_f64(self, factor: f64) -> BitRate {
        debug_assert!(factor >= 0.0, "rate scale must be non-negative");
        BitRate(self.0 * factor)
    }

    /// True if the rate is exactly zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }

    /// Compute the average rate of `bytes` over `dur`.
    #[inline]
    pub fn average(bytes: Bytes, dur: SimDuration) -> BitRate {
        if dur.is_zero() {
            return BitRate::ZERO;
        }
        BitRate(bytes.bits() as f64 / dur.as_secs_f64())
    }
}

impl fmt::Display for BitRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e9 {
            write!(f, "{:.2} Gbps", self.0 / 1e9)
        } else if self.0 >= 1e6 {
            write!(f, "{:.2} Mbps", self.0 / 1e6)
        } else if self.0 >= 1e3 {
            write!(f, "{:.2} Kbps", self.0 / 1e3)
        } else {
            write!(f, "{:.0} bps", self.0)
        }
    }
}

impl crate::canon::Canonicalize for Bytes {
    fn canonicalize(&self, c: &mut crate::canon::Canon) {
        c.put_u64("bytes", self.0);
    }
}

impl crate::canon::Canonicalize for BitRate {
    fn canonicalize(&self, c: &mut crate::canon::Canon) {
        c.put_f64("bps", self.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_constructors() {
        assert_eq!(Bytes::kib(64).as_u64(), 65_536);
        assert_eq!(Bytes::mib(1).as_u64(), 1_048_576);
        assert_eq!(Bytes::gib(2).as_u64(), 2_147_483_648);
    }

    #[test]
    fn packets_at_mtu_is_ceiling() {
        let mtu = Bytes::new(9000);
        assert_eq!(Bytes::new(9000).packets_at_mtu(mtu), 1);
        assert_eq!(Bytes::new(9001).packets_at_mtu(mtu), 2);
        assert_eq!(Bytes::kib(64).packets_at_mtu(mtu), 8);
        assert_eq!(Bytes::ZERO.packets_at_mtu(mtu), 0);
    }

    #[test]
    fn serialize_time_100g() {
        // 64 KiB at 100 Gbps = 65536*8 / 100e9 s = 5.24288 us.
        let t = BitRate::gbps(100.0).serialize_time(Bytes::kib(64));
        assert_eq!(t.as_nanos(), 5_243);
    }

    #[test]
    fn serialize_time_rounds_up_not_to_nearest() {
        // 1464 B at 100 Gbps = 117.12 ns: round-to-nearest would say
        // 117 ns, i.e. an effective 100.1 Gbps — faster than the link.
        let t = BitRate::gbps(100.0).serialize_time(Bytes::new(1464));
        assert_eq!(t.as_nanos(), 118);
    }

    #[test]
    fn back_to_back_bursts_never_beat_link_capacity() {
        // Property: for any (rate, burst) combination, N back-to-back
        // serialisations take at least as long as the exact time for
        // N bursts, so the effective rate never exceeds the link rate.
        let rates = [1.0, 10.0, 25.0, 100.0, 200.0, 400.0];
        let sizes: [u64; 6] = [64, 1464, 1500, 9000, 65_536, 150_000];
        const N: u64 = 1_000_000;
        for gbps in rates {
            let rate = BitRate::gbps(gbps);
            for size in sizes {
                let burst = Bytes::new(size);
                let per_burst = rate.serialize_time(burst).as_nanos();
                let total_ns = per_burst * N;
                let exact_ns = burst.bits() as f64 * N as f64 / rate.as_bps() * 1e9;
                assert!(
                    total_ns as f64 >= exact_ns,
                    "{N} x {size} B at {gbps} Gbps serialised in {total_ns} ns, \
                     beating the {exact_ns:.0} ns the link needs"
                );
            }
        }
    }

    #[test]
    fn bdp_matches_paper_scale() {
        // 50 Gbps over 104 ms RTT = 650 MB in flight.
        let bdp = BitRate::gbps(50.0).bdp(SimDuration::from_millis(104));
        assert_eq!(bdp.as_u64(), 650_000_000);
    }

    #[test]
    fn average_rate() {
        let r = BitRate::average(Bytes::new(1_250_000_000), SimDuration::from_secs(1));
        assert!((r.as_gbps() - 10.0).abs() < 1e-9);
        assert_eq!(BitRate::average(Bytes::new(5), SimDuration::ZERO), BitRate::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", BitRate::gbps(12.5)), "12.50 Gbps");
        assert_eq!(format!("{}", Bytes::kib(64)), "64.00 KiB");
    }

    #[test]
    fn saturating_and_minmax() {
        let a = Bytes::new(10);
        let b = Bytes::new(30);
        assert_eq!(a.saturating_sub(b), Bytes::ZERO);
        assert_eq!(b.saturating_sub(a).as_u64(), 20);
        assert_eq!(a.max(b), b);
        assert_eq!(BitRate::gbps(1.0).min(BitRate::gbps(2.0)).as_gbps(), 1.0);
    }

    #[test]
    fn bytes_in_duration() {
        let b = BitRate::gbps(8.0).bytes_in(SimDuration::from_secs(1));
        assert_eq!(b.as_u64(), 1_000_000_000);
    }
}
