//! Ablations of the design choices the paper's tuning guide calls out.
//!
//! Each of these isolates one knob from §III-A/§III-D and shows its
//! effect — the "what happens if you skip this step" companion to the
//! paper's recommendations.

use super::common::{run_or_empty, run_row, throughput_figure};
use crate::ctx::RunCtx;
use crate::render::{FigureData, TableData};
use crate::scenario::Scenario;
use crate::testbeds::{AmLightPath, EsnetPath, Testbeds};
use iperf3sim::Iperf3Opts;
use linuxhost::{CoreAllocation, HostConfig, KernelVersion, SysctlConfig};
use simcore::BitRate;
use tcpstack::CcAlgorithm;

/// §III-A — core affinity: with `irqbalance` left on, "the performance
/// of a single 100G flow can vary from 20 Gbps to 55 Gbps on the same
/// hardware". Reports tuned vs untuned pinning, min–max across runs.
pub fn core_affinity(ctx: &RunCtx) -> TableData {
    let effort = ctx.effort;
    let tuned = Testbeds::amlight_host(KernelVersion::L6_8);
    let mut untuned = tuned.clone();
    untuned.cores = CoreAllocation::stock(32);
    untuned.name = "amlight-intel-irqbalance".into();
    let path = Testbeds::amlight_path(AmLightPath::Lan);
    let opts = Iperf3Opts::new(effort.lan_secs()).omit(effort.omit_secs(false));
    // Extra repetitions: the whole point is the placement lottery.
    let reps = (effort.repetitions() * 2).max(6);
    let harness = ctx.harness_with_reps(reps);
    let mut table = TableData::new(
        "Ablation: IRQ/app core affinity (Intel LAN, single stream)",
        vec!["Configuration", "Mean", "Min", "Max", "stdev"],
    );
    for (label, host) in [("pinned (paper SIII-A)", tuned), ("irqbalance + floating app", untuned)] {
        let s = run_or_empty(&harness, &Scenario::symmetric(label, host, path.clone(), opts.clone()));
        table.push_row(vec![
            label.into(),
            format!("{:.1} Gbps", s.throughput_gbps.mean),
            format!("{:.1}", s.throughput_gbps.min),
            format!("{:.1}", s.throughput_gbps.max),
            format!("{:.1}", s.throughput_gbps.stdev),
        ]);
    }
    table
}

/// §III-D — `iommu=pt`: lifted 8-stream throughput from 80 to
/// 181 Gbps on the ESnet hosts (kernel 5.15).
pub fn iommu_passthrough(ctx: &RunCtx) -> TableData {
    let effort = ctx.effort;
    let on = Testbeds::esnet_host(KernelVersion::L5_15);
    let mut off = on.clone();
    off.iommu_pt = false;
    off.name = "esnet-amd-no-iommu-pt".into();
    let path = Testbeds::esnet_path(EsnetPath::Lan);
    let opts = Iperf3Opts::new(effort.multi_secs()).omit(effort.omit_secs(false)).parallel(8);
    let scenarios = [
        Scenario::symmetric("iommu=pt", on, path.clone(), opts.clone()),
        Scenario::symmetric("default IOMMU", off, path, opts),
    ];
    let summaries = run_row(&scenarios, ctx);
    let mut table = TableData::new(
        "Ablation: iommu=pt (AMD, 8 streams, kernel 5.15; paper: 80 -> 181 Gbps)",
        vec!["Configuration", "Ave Tput", "stdev"],
    );
    for s in &summaries {
        table.push_row(vec![
            s.label.clone(),
            format!("{:.0} Gbps", s.throughput_gbps.mean),
            format!("{:.1}", s.throughput_gbps.stdev),
        ]);
    }
    table
}

/// §III-D — `tcp_rmem`/`tcp_wmem` ceilings: stock 6 MB buffers
/// strangle a 104 ms path to under a gigabit.
pub fn buffer_sysctls(ctx: &RunCtx) -> TableData {
    let effort = ctx.effort;
    let tuned = Testbeds::amlight_host(KernelVersion::L6_8);
    let mut stock = tuned.clone();
    stock.sysctl = SysctlConfig::stock();
    // Keep fq so the comparison isolates buffer sizes from pacing.
    stock.sysctl.default_qdisc = linuxhost::Qdisc::Fq;
    stock.name = "amlight-intel-stock-buffers".into();
    let mut table = TableData::new(
        "Ablation: tcp_rmem/tcp_wmem ceilings (Intel, single stream)",
        vec!["Path", "stock sysctls", "fasterdata tuned"],
    );
    for p in [AmLightPath::Lan, AmLightPath::Wan104ms] {
        let opts = Iperf3Opts::new(if p == AmLightPath::Lan {
            effort.lan_secs()
        } else {
            effort.wan_secs()
        })
        .omit(effort.omit_secs(p != AmLightPath::Lan));
        let row = run_row(
            &[
                Scenario::symmetric("stock", stock.clone(), Testbeds::amlight_path(p), opts.clone()),
                Scenario::symmetric("tuned", tuned.clone(), Testbeds::amlight_path(p), opts),
            ],
            ctx,
        );
        table.push_row(vec![
            p.label().into(),
            format!("{:.2} Gbps", row[0].throughput_gbps.mean),
            format!("{:.2} Gbps", row[1].throughput_gbps.mean),
        ]);
    }
    table
}

/// §III-D — RX ring sizing (`ethtool -G rx 8192`): deeper rings absorb
/// longer line-rate trains before dropping (helped the AMD hosts).
pub fn ring_size(ctx: &RunCtx) -> TableData {
    let effort = ctx.effort;
    let tuned = Testbeds::esnet_host(KernelVersion::L6_8);
    let mut small = tuned.clone();
    small.ring_entries = Some(1024);
    small.name = "esnet-amd-ring1024".into();
    let path = Testbeds::esnet_path(EsnetPath::Wan);
    // Unpaced zerocopy pushes line-rate trains at the receiver — the
    // scenario ring depth protects against.
    let opts = Iperf3Opts::new(effort.wan_secs()).omit(effort.omit_secs(true)).zerocopy();
    let scenarios = [
        Scenario::symmetric("rx ring 8192", tuned, path.clone(), opts.clone()),
        Scenario::symmetric("rx ring 1024", small, path, opts),
    ];
    let summaries = run_row(&scenarios, ctx);
    let mut table = TableData::new(
        "Ablation: RX ring depth (AMD, single stream, zerocopy unpaced, WAN)",
        vec!["Configuration", "Ave Tput", "Retr"],
    );
    for s in &summaries {
        table.push_row(vec![
            s.label.clone(),
            format!("{:.1} Gbps", s.throughput_gbps.mean),
            format!("{:.0}", s.retr.mean),
        ]);
    }
    table
}

/// §IV-F — congestion control: every [`CcAlgorithm`] on the clean
/// testbed WAN. Throughput is similar; BBR (v1 especially)
/// retransmits more. (The lossy/high-BDP separation between the
/// variants is the `ext_cc_matrix` experiment's job.)
pub fn congestion_control(ctx: &RunCtx) -> TableData {
    let effort = ctx.effort;
    let host = Testbeds::esnet_host(KernelVersion::L6_8);
    let path = Testbeds::esnet_path(EsnetPath::Wan);
    let mut table = TableData::new(
        "Ablation: congestion control (AMD, single stream, clean WAN)",
        vec!["Algorithm", "Ave Tput", "Retr", "stdev"],
    );
    let scenarios: Vec<Scenario> = CcAlgorithm::ALL
        .iter()
        .map(|&cc| {
            Scenario::symmetric(
                cc.name(),
                host.clone(),
                path.clone(),
                Iperf3Opts::new(effort.wan_secs())
                    .omit(effort.omit_secs(true))
                    .congestion(cc),
            )
        })
        .collect();
    for s in &run_row(&scenarios, ctx) {
        table.push_row(vec![
            s.label.clone(),
            format!("{:.1} Gbps", s.throughput_gbps.mean),
            format!("{:.0}", s.retr.mean),
            format!("{:.1}", s.throughput_gbps.stdev),
        ]);
    }
    table
}

/// MTU 1500 vs 9000 (§V-C gives the 1500-byte baseline of 24 Gbps).
pub fn mtu(ctx: &RunCtx) -> FigureData {
    let effort = ctx.effort;
    let mk_host = |mtu: u64| {
        let mut cfg = Testbeds::amlight_host(KernelVersion::L6_8);
        cfg.offload = linuxhost::OffloadConfig::standard(simcore::Bytes::new(mtu));
        cfg
    };
    let lan = Testbeds::amlight_path(AmLightPath::Lan);
    let opts = Iperf3Opts::new(effort.lan_secs()).omit(effort.omit_secs(false));
    let grid = vec![
        (
            "MTU 9000".to_string(),
            vec![Scenario::symmetric("MTU 9000", mk_host(9000), lan.clone(), opts.clone())],
        ),
        (
            "MTU 1500".to_string(),
            vec![Scenario::symmetric("MTU 1500", mk_host(1500), lan, opts)],
        ),
    ];
    throughput_figure(
        "Ablation: MTU (Intel LAN, single stream, default settings)",
        vec!["LAN".into()],
        grid,
        ctx,
    )
}

/// `--skip-rx-copy` (MSG_TRUNC): removes the receiver copy so sender
/// limits show — the flag patch #1690 adds for exactly this purpose.
pub fn skip_rx_copy(ctx: &RunCtx) -> TableData {
    let effort = ctx.effort;
    let host = Testbeds::amlight_host(KernelVersion::L6_8);
    let lan = Testbeds::amlight_path(AmLightPath::Lan);
    let base = Iperf3Opts::new(effort.lan_secs()).omit(effort.omit_secs(false));
    let scenarios = [
        Scenario::symmetric("normal receive", host.clone(), lan.clone(), base.clone()),
        Scenario::symmetric("--skip-rx-copy", host, lan, base.skip_rx_copy()),
    ];
    let summaries = run_row(&scenarios, ctx);
    let mut table = TableData::new(
        "Ablation: --skip-rx-copy (Intel LAN, single stream)",
        vec!["Configuration", "Ave Tput", "Receiver CPU"],
    );
    for s in &summaries {
        table.push_row(vec![
            s.label.clone(),
            format!("{:.1} Gbps", s.throughput_gbps.mean),
            format!("{:.0}%", s.receiver_cpu_pct.mean),
        ]);
    }
    table
}

/// §II-C: "We tested BIG TCP for both IPv4 and IPv6, but found no
/// significant difference" — reproduce that null result.
pub fn address_family(ctx: &RunCtx) -> TableData {
    let effort = ctx.effort;
    let mk = |v6: bool| {
        let mut cfg = Testbeds::amlight_host(KernelVersion::L6_8);
        if v6 {
            cfg.offload = cfg.offload.with_ipv6();
        }
        cfg.offload = cfg
            .offload
            .with_big_tcp(linuxhost::offload::PAPER_BIG_TCP_SIZE, KernelVersion::L6_8);
        cfg
    };
    let lan = Testbeds::amlight_path(AmLightPath::Lan);
    let opts = Iperf3Opts::new(effort.lan_secs()).omit(effort.omit_secs(false));
    let scenarios = [
        Scenario::symmetric("BIG TCP over IPv4", mk(false), lan.clone(), opts.clone()),
        Scenario::symmetric("BIG TCP over IPv6", mk(true), lan, opts),
    ];
    let summaries = run_row(&scenarios, ctx);
    let mut table = TableData::new(
        "Ablation: IPv4 vs IPv6 BIG TCP (Intel LAN, single stream; paper: no difference)",
        vec!["Family", "Ave Tput", "stdev"],
    );
    for s in &summaries {
        table.push_row(vec![
            s.label.clone(),
            format!("{:.1} Gbps", s.throughput_gbps.mean),
            format!("{:.2}", s.throughput_gbps.stdev),
        ]);
    }
    table
}

/// Pacing-rate sweep around the Fig. 10 operating points: where does
/// per-flow pacing stop paying?
pub fn pacing_sweep(ctx: &RunCtx) -> FigureData {
    let effort = ctx.effort;
    let host = Testbeds::esnet_host(KernelVersion::L6_8);
    let path = Testbeds::esnet_path(EsnetPath::Wan);
    let rates = [5.0, 10.0, 15.0, 20.0, 25.0];
    let mut fig = FigureData::new(
        "Ablation: per-flow pacing sweep (AMD WAN, 8 flows, zerocopy)",
        "Gbps",
        rates.iter().map(|r| format!("{r:.0}G/flow")).collect(),
    );
    let scenarios: Vec<Scenario> = rates
        .iter()
        .map(|&g| {
            Scenario::symmetric(
                format!("pace {g}G"),
                host.clone(),
                path.clone(),
                Iperf3Opts::new(effort.multi_secs())
                    .omit(effort.omit_secs(true))
                    .parallel(8)
                    .zerocopy()
                    .fq_rate(BitRate::gbps(g)),
            )
        })
        .collect();
    let summaries = run_row(&scenarios, ctx);
    fig.push_series(
        "aggregate throughput",
        summaries.iter().map(|s| s.throughput_gbps).collect(),
    );
    fig
}

/// Run every ablation and render.
pub fn run_all_rendered(ctx: &RunCtx) -> String {
    let mut out = String::new();
    out.push_str(&core_affinity(ctx).render_ascii());
    out.push('\n');
    out.push_str(&iommu_passthrough(ctx).render_ascii());
    out.push('\n');
    out.push_str(&buffer_sysctls(ctx).render_ascii());
    out.push('\n');
    out.push_str(&ring_size(ctx).render_ascii());
    out.push('\n');
    out.push_str(&congestion_control(ctx).render_ascii());
    out.push('\n');
    out.push_str(&mtu(ctx).render_ascii());
    out.push('\n');
    out.push_str(&skip_rx_copy(ctx).render_ascii());
    out.push('\n');
    out.push_str(&address_family(ctx).render_ascii());
    out.push('\n');
    out.push_str(&pacing_sweep(ctx).render_ascii());
    out
}

/// Unused import guard (HostConfig is used in doc positions).
#[allow(dead_code)]
fn _t(_: &HostConfig) {}
