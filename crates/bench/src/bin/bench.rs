//! `bench` — the perf-trajectory binary and regression gate.
//!
//! Runs the canonical scenarios (fig05 single-stream, table3
//! multi-stream, the 256-flow `ext_scale` fan-in, the four-controller
//! `cc_mix_256`, and the million-flow `fleet_1m` fleet drain) against
//! the discrete-event engine, emits `BENCH_<date>.json` with events/sec,
//! ns/event, past-clamp counts and wall-clock per scenario, and appends
//! one line per scenario to the committed `BENCH_LEDGER.jsonl` — the
//! always-on perf trajectory (see DESIGN.md §6g).
//!
//! ```text
//! cargo run --release -p bench               # full effort, BENCH_<date>.json in .
//! cargo run --release -p bench -- --check BENCH_BASELINE.json   # regression gate
//! BENCH_EFFORT=smoke cargo run --release -p bench    # CI smoke (short runs)
//! BENCH_OUT_DIR=target cargo run --release -p bench  # choose the output dir
//! BENCH_ONLY=fanin cargo run --release -p bench      # substring-filter the cases
//! BENCH_LEDGER=path.jsonl … # ledger file (default <out_dir>/BENCH_LEDGER.jsonl)
//! BENCH_CHECK_THRESHOLD=0.25 … --check …  # loosen/tighten the gate
//! BENCH_HANDICAP=1.2 …      # test hook: inflate measured wall time 1.2×
//! ```
//!
//! `--check <baseline.json>` compares the run against a committed
//! snapshot and exits 1 on a >threshold ns/event regression, any
//! non-zero past-clamp count, or a scenario-shape mismatch (see
//! `bench::ledger`). `BENCH_HANDICAP` exists so the gate's failure path
//! can be exercised deliberately (CI never sets it).

#![cfg_attr(not(test), deny(clippy::unwrap_used))]

use bench::ledger::{self, LedgerRecord, ScenarioPoint, Verdict};
use dtnperf::iperf3::RunError;
use dtnperf::prelude::*;
use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// One benchmarked scenario: its display name plus what to run.
struct Case {
    name: &'static str,
    kind: CaseKind,
}

/// The two engines a case can exercise: the packet-level two-host
/// simulation, or the fleet engine serving arrival-process workloads.
enum CaseKind {
    Sim(Box<SimConfig>),
    Fleet(netsim::FleetProfile),
}

/// One measured scenario for the JSON report.
struct Measurement {
    name: &'static str,
    flows: usize,
    sim_secs: f64,
    events: u64,
    past_clamps: u64,
    goodput_gbps: f64,
    wall_secs_min: f64,
    wall_secs_mean: f64,
    events_per_sec: f64,
    ns_per_event: f64,
    /// Per-iteration ns/event distribution (log-linear HDR buckets,
    /// ≤1% relative error). Rendered on stderr only — the JSON
    /// snapshot schema stays fixed so committed baselines keep
    /// parsing.
    ns_hist: obs::HdrHistogram,
}

impl Measurement {
    fn point(&self) -> ScenarioPoint {
        ScenarioPoint {
            scenario: self.name.to_string(),
            events: self.events,
            ns_per_event: self.ns_per_event,
            events_per_sec: self.events_per_sec,
            past_clamps: self.past_clamps,
        }
    }
}

/// The 1M-flow arrival-process workload: Poisson arrivals, log-normal
/// sizes, one paced and one unpaced WAN class. Times the fleet
/// engine's hot path — slot-slab churn, timer-wheel rearms, streaming
/// interval aggregation — where ns/event is spread over open/transmit/
/// deliver/close handling rather than any single long-lived flow. The
/// same 1M flows run at every effort: one pass is only a few seconds,
/// so smoke doesn't need a reduced shape.
fn fleet_1m_profile() -> netsim::FleetProfile {
    use netsim::{ArrivalProcess, FleetClass, FleetProfile, SizeDist};
    use simcore::SimDuration;

    let mut p = FleetProfile::new(
        "fleet_1m",
        ArrivalProcess::Poisson { rate_per_sec: 10_000.0 },
        SizeDist::LogNormal { median_bytes: 256.0 * 1024.0, sigma: 0.5 },
    );
    p.max_flows = 1_000_000;
    p.duration = SimDuration::from_secs_f64(100.0);
    p.classes = vec![
        FleetClass {
            name: "cubic_wan".into(),
            weight: 1,
            cc: tcpstack::CcAlgorithm::Cubic,
            pacing: false,
            rtt: SimDuration::from_millis(40),
            bottleneck: BitRate::gbps(25.0),
            buffer: Bytes::mib(64),
        },
        FleetClass {
            name: "bbr_wan".into(),
            weight: 1,
            cc: tcpstack::CcAlgorithm::BbrV1,
            pacing: true,
            rtt: SimDuration::from_millis(70),
            bottleneck: BitRate::gbps(25.0),
            buffer: Bytes::mib(64),
        },
    ];
    p
}

fn cases(smoke: bool) -> Vec<Case> {
    // Smoke halves the simulated durations so CI stays fast; the
    // scenario *shapes* (hosts, paths, flow counts) never change, so a
    // smoke point is still comparable to another smoke point.
    let single_secs = if smoke { 2 } else { 4 };
    let multi_secs = if smoke { 2 } else { 4 };
    let fanin_secs = if smoke { 1 } else { 2 };

    let amlight = Testbeds::amlight_host(KernelVersion::L6_8);
    let dtn = Testbeds::prod_dtn_host();
    let fanin = Testbeds::fanin_host(256);

    vec![
        Case {
            name: "fig05_single_stream",
            kind: CaseKind::Sim(Box::new(SimConfig {
                sender: amlight.clone(),
                receiver: amlight,
                path: Testbeds::amlight_path(AmLightPath::Wan25ms),
                workload: WorkloadSpec::single_stream(single_secs)
                    .with_zerocopy()
                    .with_fq_rate(BitRate::gbps(50.0)),
            })),
        },
        Case {
            name: "table3_multi_stream",
            kind: CaseKind::Sim(Box::new(SimConfig {
                sender: dtn.clone(),
                receiver: dtn,
                path: Testbeds::prod_dtn_path(),
                workload: WorkloadSpec::parallel(8, multi_secs)
                    .with_fq_rate(BitRate::gbps(10.0)),
            })),
        },
        Case {
            name: "scale_fanin_256",
            kind: CaseKind::Sim(Box::new(SimConfig {
                sender: fanin.clone(),
                receiver: fanin.clone(),
                path: Testbeds::fanin_path(false),
                workload: WorkloadSpec::parallel(256, fanin_secs),
            })),
        },
        // Same 256-flow fan-in fabric, but with the flows split evenly
        // across all four congestion controllers (64 × CUBIC/BBRv1/
        // BBRv3/H-TCP, round-robin). Times the whole cc module on one
        // workload, so a regression in any one controller's hot path
        // moves this scenario's ns/event.
        Case {
            name: "cc_mix_256",
            kind: CaseKind::Sim(Box::new(SimConfig {
                sender: fanin.clone(),
                receiver: fanin,
                path: Testbeds::fanin_path(false),
                workload: WorkloadSpec::parallel(256, fanin_secs)
                    .with_cc_mix(CcAlgorithm::ALL.to_vec()),
            })),
        },
        Case { name: "fleet_1m", kind: CaseKind::Fleet(fleet_1m_profile()) },
    ]
}

/// Engine-agnostic per-run stats, so the timing loop can measure both
/// [`CaseKind`]s through one code path.
struct RunStats {
    flows: usize,
    sim_secs: f64,
    events: u64,
    past_clamps: u64,
    goodput_gbps: f64,
}

fn run_sim(cfg: &SimConfig) -> Result<RunResult, RunError> {
    Ok(Simulation::new(cfg.clone())?.run()?)
}

fn run_once(kind: &CaseKind) -> Result<RunStats, String> {
    match kind {
        CaseKind::Sim(cfg) => {
            let r = run_sim(cfg).map_err(|err| {
                let class = match &err {
                    RunError::Invalid(_) => "invalid configuration",
                    RunError::Sim(_) => "simulation error",
                };
                format!("{class}: {err}")
            })?;
            Ok(RunStats {
                flows: cfg.workload.num_flows,
                sim_secs: cfg.workload.duration.as_secs_f64(),
                events: r.events,
                past_clamps: r.past_clamps,
                goodput_gbps: r.total_goodput().as_gbps(),
            })
        }
        CaseKind::Fleet(profile) => {
            // Same watchdog sizing as the harness's ext_fleet runner:
            // generously above observed events-per-flow, so only a
            // livelock trips it.
            let budget =
                profile.max_flows.saturating_mul(400).saturating_add(10_000_000);
            let r = netsim::FleetSim::new(profile.clone())
                .map_err(|e| format!("invalid fleet profile: {e}"))?
                .with_event_budget(budget)
                .run()
                .map_err(|e| format!("fleet simulation error: {e}"))?;
            Ok(RunStats {
                flows: profile.max_flows as usize,
                sim_secs: profile.duration.as_secs_f64(),
                events: r.events,
                past_clamps: r.past_clamps,
                goodput_gbps: r.goodput_gbps(),
            })
        }
    }
}

fn measure(case: &Case, warmup: usize, iters: usize, handicap: f64) -> Result<Measurement, String> {
    for _ in 0..warmup {
        let _ = run_once(&case.kind)?;
    }
    let mut walls = Vec::with_capacity(iters);
    let mut result = None;
    for _ in 0..iters {
        let start = Instant::now();
        let r = run_once(&case.kind)?;
        walls.push(start.elapsed().as_secs_f64() * handicap);
        result = Some(r);
    }
    // Infallible: `iters >= 1` for every effort, so the loop above ran.
    let result = result.expect("at least one iteration");
    let wall_min = walls.iter().cloned().fold(f64::INFINITY, f64::min);
    let wall_mean = walls.iter().sum::<f64>() / walls.len() as f64;
    let events = result.events;
    let mut ns_hist = obs::HdrHistogram::new();
    for wall in &walls {
        ns_hist.record_f64(wall * 1e9 / events as f64);
    }
    Ok(Measurement {
        name: case.name,
        flows: result.flows,
        sim_secs: result.sim_secs,
        events,
        past_clamps: result.past_clamps,
        goodput_gbps: result.goodput_gbps,
        wall_secs_min: wall_min,
        wall_secs_mean: wall_mean,
        events_per_sec: events as f64 / wall_min,
        ns_per_event: wall_min * 1e9 / events as f64,
        ns_hist,
    })
}

/// Civil date (UTC) from the system clock, without a date library:
/// days-since-epoch to year/month/day (Howard Hinnant's algorithm).
fn today_utc() -> String {
    // A clock before 1970 degrades to the epoch date rather than
    // aborting a finished measurement run.
    let secs = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap_or_default()
        .as_secs();
    let days = (secs / 86_400) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

/// Short commit hash of the working tree, for ledger provenance, with
/// a `+dirty` suffix when uncommitted changes are present (a dirty-tree
/// point measures code that HEAD does not contain). `unknown` outside a
/// git checkout (e.g. a source tarball).
fn current_commit() -> String {
    let git = |args: &[&str]| {
        std::process::Command::new("git")
            .args(args)
            .output()
            .ok()
            .filter(|o| o.status.success())
            .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
    };
    let Some(hash) = git(&["rev-parse", "--short", "HEAD"]).filter(|s| !s.is_empty()) else {
        return "unknown".into();
    };
    match git(&["status", "--porcelain"]) {
        Some(s) if s.is_empty() => hash,
        _ => format!("{hash}+dirty"),
    }
}

fn render_json(date: &str, effort: &str, rows: &[Measurement]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": 1,");
    let _ = writeln!(out, "  \"date\": \"{date}\",");
    let _ = writeln!(out, "  \"effort\": \"{effort}\",");
    out.push_str("  \"scenarios\": [\n");
    for (i, m) in rows.iter().enumerate() {
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"name\": \"{}\",", m.name);
        let _ = writeln!(out, "      \"flows\": {},", m.flows);
        let _ = writeln!(out, "      \"sim_secs\": {:.1},", m.sim_secs);
        let _ = writeln!(out, "      \"events\": {},", m.events);
        let _ = writeln!(out, "      \"past_clamps\": {},", m.past_clamps);
        let _ = writeln!(out, "      \"goodput_gbps\": {:.3},", m.goodput_gbps);
        let _ = writeln!(out, "      \"wall_secs_min\": {:.6},", m.wall_secs_min);
        let _ = writeln!(out, "      \"wall_secs_mean\": {:.6},", m.wall_secs_mean);
        let _ = writeln!(out, "      \"events_per_sec\": {:.0},", m.events_per_sec);
        let _ = writeln!(out, "      \"ns_per_event\": {:.1}", m.ns_per_event);
        out.push_str(if i + 1 == rows.len() { "    }\n" } else { "    },\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Append one ledger line per measurement (creates the file if
/// absent). An unwritable ledger costs the trajectory point, not the
/// measurements already taken — warn and keep going.
fn append_ledger(path: &str, date: &str, commit: &str, effort: &str, rows: &[Measurement]) {
    use std::io::Write as _;
    let mut file = match std::fs::OpenOptions::new().create(true).append(true).open(path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("bench: cannot open ledger {path}: {e} — skipping ledger append");
            return;
        }
    };
    for m in rows {
        let rec = LedgerRecord {
            date: date.to_string(),
            commit: commit.to_string(),
            effort: effort.to_string(),
            point: m.point(),
        };
        if let Err(e) = writeln!(file, "{}", rec.to_jsonl()) {
            eprintln!("bench: cannot append to ledger {path}: {e} — skipping ledger append");
            return;
        }
    }
}

/// Run the regression gate; returns the process exit code.
fn run_check(baseline_path: &str, effort: &str, rows: &[Measurement]) -> ExitCode {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench --check: cannot read baseline {baseline_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let baseline = match ledger::parse_snapshot(&text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("bench --check: malformed baseline {baseline_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let threshold = std::env::var("BENCH_CHECK_THRESHOLD")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(ledger::DEFAULT_THRESHOLD);
    let points: Vec<ScenarioPoint> = rows.iter().map(Measurement::point).collect();
    let verdicts = ledger::check(&baseline, effort, &points, threshold);
    let mut failed = false;
    for (name, verdict) in &verdicts {
        match verdict {
            Verdict::Pass(delta) => {
                eprintln!("bench --check: {name:<22} OK ({:+.1}% vs baseline)", delta * 100.0);
            }
            Verdict::Regressed { baseline, current, delta } => {
                failed = true;
                eprintln!(
                    "bench --check: {name:<22} REGRESSED {baseline:.1} -> {current:.1} ns/event \
                     ({:+.1}%, threshold {:+.1}%)",
                    delta * 100.0,
                    threshold * 100.0
                );
            }
            Verdict::PastClamps(n) => {
                failed = true;
                eprintln!("bench --check: {name:<22} FAILED: {n} past-clamped events (must be 0)");
            }
            Verdict::ShapeChanged { baseline, current } => {
                failed = true;
                eprintln!(
                    "bench --check: {name:<22} SHAPE CHANGED: {baseline} -> {current} events \
                     (or effort mismatch) — re-bless the baseline (DESIGN.md §6g)"
                );
            }
            Verdict::NotInBaseline => {
                failed = true;
                eprintln!(
                    "bench --check: {name:<22} not in baseline — re-bless it (DESIGN.md §6g)"
                );
            }
        }
    }
    if failed {
        eprintln!("bench --check: FAIL (baseline {baseline_path})");
        ExitCode::FAILURE
    } else {
        eprintln!("bench --check: all scenarios within {:.0}% of baseline", threshold * 100.0);
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let effort = std::env::var("BENCH_EFFORT").unwrap_or_else(|_| "full".into());
    let smoke = effort == "smoke";
    let (warmup, iters) = if smoke { (0, 1) } else { (1, 3) };
    let out_dir = std::env::var("BENCH_OUT_DIR").unwrap_or_else(|_| ".".into());
    let date = today_utc();

    // `--check <baseline.json>`: gate mode (still writes the snapshot
    // and ledger, so a gated CI run leaves the same artifacts).
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let baseline_path = match argv.as_slice() {
        [] => None,
        [flag, path] if flag == "--check" => Some(path.clone()),
        other => {
            eprintln!("bench: unknown arguments {other:?} (usage: bench [--check <baseline.json>])");
            return ExitCode::from(2);
        }
    };

    // Substring filter for profiling sessions targeting one scenario.
    let only = std::env::var("BENCH_ONLY").unwrap_or_default();
    // Test hook for exercising the gate's failure path: inflates the
    // measured wall time by a factor (ns/event scales with it).
    let handicap = std::env::var("BENCH_HANDICAP")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(1.0);

    let mut rows = Vec::new();
    for case in cases(smoke).into_iter().filter(|c| c.name.contains(&only)) {
        eprintln!("bench: running {} ({} warmup + {} iters)...", case.name, warmup, iters);
        let m = match measure(&case, warmup, iters, handicap) {
            Ok(m) => m,
            Err(err) => {
                eprintln!("bench: scenario {} failed ({err})", case.name);
                return ExitCode::from(2);
            }
        };
        eprintln!(
            "bench: {:<22} {:>12} events  {:>12.0} events/s  {:>7.1} ns/event  {:>8.3} s wall  {:>7.2} Gbps",
            m.name, m.events, m.events_per_sec, m.ns_per_event, m.wall_secs_min, m.goodput_gbps
        );
        // Iteration-to-iteration spread (HDR-quantile, not re-sorted):
        // a wide p50→max gap means a noisy machine, so treat a
        // borderline --check verdict with suspicion.
        if m.ns_hist.count() > 1 {
            eprintln!(
                "bench: {:<22} ns/event spread over {} iters: p50={} p90={} max={}",
                m.name,
                m.ns_hist.count(),
                m.ns_hist.quantile(0.50).unwrap_or(0),
                m.ns_hist.quantile(0.90).unwrap_or(0),
                m.ns_hist.max().unwrap_or(0),
            );
        }
        rows.push(m);
    }

    let json = render_json(&date, &effort, &rows);
    let path = format!("{out_dir}/BENCH_{date}.json");
    if let Err(e) = std::fs::create_dir_all(&out_dir).and_then(|()| std::fs::write(&path, &json)) {
        eprintln!("bench: cannot write report {path}: {e}");
        return ExitCode::from(2);
    }
    let ledger_path = std::env::var("BENCH_LEDGER")
        .unwrap_or_else(|_| format!("{out_dir}/BENCH_LEDGER.jsonl"));
    append_ledger(&ledger_path, &date, &current_commit(), &effort, &rows);
    println!("{path}");

    match baseline_path {
        Some(p) => run_check(&p, &effort, &rows),
        None => ExitCode::SUCCESS,
    }
}
