//! `ext_bottleneck` — the paper's diagnosis narratives, re-diagnosed
//! by the attribution engine.
//!
//! The paper's throughput numbers all come with a *story* about what
//! limited them: the sender copying itself to death until MSG_ZEROCOPY
//! moves the wall to the receiver (§V-B), zerocopy silently falling
//! back when `optmem_max` is starved (Fig. 9), and shallow switch
//! buffers overflowing without 802.3x flow control (Tables I–II). This
//! experiment replays one scenario per narrative with bottleneck
//! attribution on and checks the engine tells the same story: a row
//! whose verdict mismatches its expectation renders `MISMATCH` and
//! counts as a failed scenario (non-zero `repro` exit).

use crate::ctx::RunCtx;
use crate::effort::Effort;
use crate::experiments::common;
use crate::render::TableData;
use crate::scenario::Scenario;
use crate::testbeds::Testbeds;
use iperf3sim::Iperf3Opts;
use linuxhost::{KernelVersion, SysctlConfig};
use nethw::PathSpec;
use simcore::{BitRate, Bytes, SimDuration};

/// One narrative row: scenario plus the verdict the paper's story
/// predicts.
struct Narrative {
    scenario: Scenario,
    expected: &'static str,
}

/// The narratives. Durations scale with effort but stay above the
/// calibrated minimums (the verdict needs a few classified intervals);
/// warm-up omit is zero so every interval is classified.
fn narratives(effort: Effort) -> Vec<Narrative> {
    let lan_secs = effort.lan_secs().max(4);
    let wan_secs = effort.wan_secs().max(6);

    // §V-B: two streams squeezed onto one sender app core (the
    // pre-3.16 single-threaded iperf3 shape) saturate that core on the
    // write() copy...
    let mut one_core_sender = Testbeds::amlight_host(KernelVersion::L6_8);
    one_core_sender.cores.app_cores.truncate(1);
    let receiver = Testbeds::amlight_host(KernelVersion::L6_8);
    let lan = PathSpec::lan("AmLight LAN", BitRate::gbps(100.0));
    let copy_bound = Scenario::new(
        "copy-bound sender",
        one_core_sender.clone(),
        receiver.clone(),
        lan.clone(),
        Iperf3Opts::new(lan_secs).omit(0).parallel(2).attribution(),
    );
    // ...and MSG_ZEROCOPY relieves the copy, moving the wall to the
    // receiver's softirq cores.
    let zerocopy_shift = Scenario::new(
        "zerocopy shifts to receiver",
        one_core_sender,
        receiver,
        lan,
        Iperf3Opts::new(lan_secs).omit(0).parallel(2).zerocopy().attribution(),
    );

    // Fig. 9: zerocopy on a long path against a starved optmem_max
    // budget falls back to copying; the verdict names the sysctl, not
    // the CPU it burns. The path must be long — completions release
    // their optmem charge after ~1 RTT, so only a WAN pins enough
    // notifications to exhaust the budget.
    let mut starved_sender = Testbeds::amlight_host(KernelVersion::L6_8);
    starved_sender.sysctl = SysctlConfig::paper_tuned_with_optmem(Bytes::kib(20));
    let optmem_starved = Scenario::new(
        "optmem-starved zerocopy",
        starved_sender,
        Testbeds::amlight_host(KernelVersion::L6_8),
        PathSpec::wan("starved WAN", BitRate::gbps(100.0), SimDuration::from_millis(50)),
        Iperf3Opts::new(wan_secs).omit(0).zerocopy().attribution(),
    );

    // Tables I–II: overrunning a shallow-buffered switch with no
    // 802.3x flow control reads as switch-buffer loss.
    let switch_overflow = Scenario::symmetric(
        "no-FC switch overflow",
        Testbeds::esnet_host(KernelVersion::L6_8),
        PathSpec::lan("shallow switch", BitRate::gbps(10.0)).with_switch_buffer(Bytes::kib(256)),
        Iperf3Opts::new(lan_secs).omit(0).attribution(),
    );

    vec![
        Narrative { scenario: copy_bound, expected: "sender_app_cpu" },
        Narrative { scenario: zerocopy_shift, expected: "receiver_softirq" },
        Narrative { scenario: optmem_starved, expected: "optmem_stalled" },
        Narrative { scenario: switch_overflow, expected: "switch_buffer" },
    ]
}

/// Run the narratives; one table row per scenario.
pub fn diagnosis(ctx: &RunCtx) -> TableData {
    let mut table = TableData::new(
        "ext_bottleneck — attribution engine vs the paper's diagnosis narratives",
        vec!["scenario", "Gbps", "zc fallback", "verdict", "share", "expected", "agrees"],
    );
    // Each narrative is one run's diagnosis, not an aggregate (more
    // seeds come from --trace); the verdict must be stable per seed.
    let harness = ctx.harness_with_reps(1);
    for Narrative { scenario, expected } in narratives(ctx.effort) {
        let summary = common::run_or_empty(&harness, &scenario);
        let verdict = summary
            .reports
            .first()
            .and_then(|r| r.attribution.as_ref())
            .and_then(|a| a.verdict.as_ref());
        let (name, share) = match verdict {
            Some(v) => (v.primary.name(), format!("{:.0}%", v.primary_share() * 100.0)),
            None => ("-", "-".into()),
        };
        let agrees = name == expected;
        if !agrees {
            common::record_scenario_failure(
                &scenario.label,
                format!("verdict '{name}' contradicts the narrative's '{expected}'"),
            );
        }
        table.push_row(vec![
            scenario.label.clone(),
            format!("{:.1}", summary.mean_gbps()),
            format!("{:.2}", summary.zc_fallback),
            name.to_string(),
            share,
            expected.to_string(),
            if agrees { "yes".into() } else { "MISMATCH".into() },
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn narratives_agree_at_smoke_effort() {
        let before = common::failed_scenario_count();
        let table = diagnosis(&RunCtx::new(Effort::Smoke));
        assert_eq!(table.rows.len(), 4);
        for row in &table.rows {
            assert_eq!(row[6], "yes", "{row:?}");
            assert_eq!(row[3], row[5], "{row:?}");
            let gbps: f64 = row[1].parse().expect("Gbps cell");
            assert!(gbps > 1.0, "{row:?}");
        }
        // The optmem narrative actually starved (Fig. 9's mechanism,
        // not a CPU ceiling in disguise).
        let optmem = &table.rows[2];
        let fallback: f64 = optmem[2].parse().expect("fallback cell");
        assert!(fallback > 0.25, "{optmem:?}");
        assert_eq!(common::failed_scenario_count(), before);
    }
}
