//! NIC hardware models.
//!
//! The two testbeds use Nvidia ConnectX-5 (AmLight, 100 GbE, PCIe
//! Gen3 x16) and ConnectX-7 (ESnet, 200 GbE, PCIe Gen5 x16). The NIC
//! contributes three things to the simulation:
//!
//! * a **line rate** that bounds burst serialisation onto the wire;
//! * an **effective host-interface rate** (PCIe/DMA) that bounds the
//!   aggregate a host can move regardless of wire speed;
//! * an **RX ring**: the descriptor ring the driver posts. If softirq
//!   processing falls behind arriving line-rate packet trains, the ring
//!   overflows and the NIC drops — the central loss mechanism the paper
//!   works around with pacing and flow control (§II-D, §IV-A).

use simcore::{BitRate, Bytes};

/// Which NIC is installed in a host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NicModel {
    /// Nvidia ConnectX-5 (AmLight hosts): 100 GbE, PCIe Gen3 x16.
    ConnectX5,
    /// Nvidia ConnectX-6 Dx: 100 GbE, PCIe Gen4 x16.
    ConnectX6Dx,
    /// Nvidia ConnectX-7 (ESnet hosts): 200 GbE, PCIe Gen5 x16.
    ConnectX7,
}

impl NicModel {
    /// Wire speed of the port.
    pub fn line_rate(self) -> BitRate {
        match self {
            NicModel::ConnectX5 | NicModel::ConnectX6Dx => BitRate::gbps(100.0),
            NicModel::ConnectX7 => BitRate::gbps(200.0),
        }
    }

    /// Effective host-interface (PCIe + DMA) throughput. Raw PCIe
    /// bandwidth is higher, but descriptor/doorbell overheads and
    /// payload framing make the usable rate lower; these are typical
    /// achievable figures.
    pub fn host_interface_rate(self) -> BitRate {
        match self {
            // Gen3 x16 ≈ 126 Gb/s raw → ~97 effective.
            NicModel::ConnectX5 => BitRate::gbps(97.0),
            // Gen4 x16 ≈ 252 Gb/s raw → ~190 effective.
            NicModel::ConnectX6Dx => BitRate::gbps(190.0),
            // Gen5 x16: wire (200G) is the limit, minus framing.
            NicModel::ConnectX7 => BitRate::gbps(197.0),
        }
    }

    /// Default RX descriptor ring size (entries), as shipped by the
    /// mlx5 driver.
    pub fn default_ring_entries(self) -> u32 {
        1024
    }

    /// Whether the NIC supports hardware-accelerated GRO (SHAMPO,
    /// header/data split). Only ConnectX-7 with Linux ≥ 6.11 (paper
    /// §V-C future work).
    pub fn supports_hw_gro(self) -> bool {
        matches!(self, NicModel::ConnectX7)
    }

    /// Human-readable model name.
    pub fn name(self) -> &'static str {
        match self {
            NicModel::ConnectX5 => "ConnectX-5",
            NicModel::ConnectX6Dx => "ConnectX-6 Dx",
            NicModel::ConnectX7 => "ConnectX-7",
        }
    }
}

/// RX descriptor ring occupancy model.
///
/// Each MTU-sized frame consumes one descriptor; capacity in bytes is
/// `entries × mtu`. The paper tunes `ethtool -G rx 8192` on the AMD
/// hosts: a deeper ring absorbs longer line-rate packet trains before
/// dropping.
#[derive(Debug, Clone)]
pub struct RxRing {
    entries: u32,
    mtu: Bytes,
    occupied: Bytes,
    drops: u64,
}

impl RxRing {
    /// New ring with the given descriptor count and MTU.
    pub fn new(entries: u32, mtu: Bytes) -> Self {
        assert!(entries > 0, "ring must have descriptors");
        assert!(mtu.as_u64() > 0, "MTU must be positive");
        RxRing { entries, mtu, occupied: Bytes::ZERO, drops: 0 }
    }

    /// Total byte capacity.
    pub fn capacity(&self) -> Bytes {
        Bytes::new(self.entries as u64 * self.mtu.as_u64())
    }

    /// Bytes currently waiting for softirq processing.
    pub fn occupied(&self) -> Bytes {
        self.occupied
    }

    /// Free space.
    pub fn free(&self) -> Bytes {
        self.capacity().saturating_sub(self.occupied)
    }

    /// Offer an arriving burst. Returns `true` if accepted; `false`
    /// means the ring was full and the burst was dropped (counted).
    ///
    /// Mirrors real NIC behaviour at burst granularity: a burst that
    /// doesn't fit is dropped in its entirety (the remaining frames of
    /// a train overrun the ring).
    pub fn offer(&mut self, burst: Bytes) -> bool {
        if burst > self.free() {
            self.drops += 1;
            false
        } else {
            self.occupied += burst;
            true
        }
    }

    /// Softirq drained a burst from the ring.
    pub fn drain(&mut self, burst: Bytes) {
        debug_assert!(burst <= self.occupied, "draining more than occupied");
        self.occupied = self.occupied.saturating_sub(burst);
    }

    /// Number of dropped bursts so far.
    pub fn drop_count(&self) -> u64 {
        self.drops
    }

    /// Ring fill fraction in `[0, 1]`.
    pub fn fill(&self) -> f64 {
        self.occupied.as_f64() / self.capacity().as_f64()
    }
}

/// A NIC instance in a host: model + configured ring.
#[derive(Debug, Clone)]
pub struct Nic {
    /// Hardware model.
    pub model: NicModel,
    /// RX ring as configured (default or `ethtool -G`-tuned).
    pub rx_ring: RxRing,
    /// Hardware GRO enabled (requires model support and kernel ≥ 6.11).
    pub hw_gro_enabled: bool,
}

impl Nic {
    /// NIC with driver-default ring sizing.
    pub fn new(model: NicModel, mtu: Bytes) -> Self {
        Nic {
            model,
            rx_ring: RxRing::new(model.default_ring_entries(), mtu),
            hw_gro_enabled: false,
        }
    }

    /// Apply `ethtool -G rx N` (the paper uses 8192 on AMD hosts).
    pub fn with_ring_entries(mut self, entries: u32) -> Self {
        let mtu = self.rx_ring.mtu;
        self.rx_ring = RxRing::new(entries, mtu);
        self
    }

    /// Enable hardware GRO (ConnectX-7 + kernel 6.11 path, §V-C).
    /// Panics if the model doesn't support it — misconfiguration is a
    /// bug in the experiment definition, not a runtime condition.
    pub fn with_hw_gro(mut self) -> Self {
        assert!(self.model.supports_hw_gro(), "{} has no hardware GRO", self.model.name());
        self.hw_gro_enabled = true;
        self
    }

    /// Wire rate.
    pub fn line_rate(&self) -> BitRate {
        self.model.line_rate()
    }

    /// Effective rate the host side can sustain (min of wire and PCIe).
    pub fn effective_rate(&self) -> BitRate {
        self.model.line_rate().min(self.model.host_interface_rate())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_rates() {
        assert_eq!(NicModel::ConnectX5.line_rate().as_gbps(), 100.0);
        assert_eq!(NicModel::ConnectX7.line_rate().as_gbps(), 200.0);
        assert!(NicModel::ConnectX5.host_interface_rate().as_gbps() < 100.0);
        assert!(NicModel::ConnectX7.host_interface_rate().as_gbps() < 200.0);
    }

    #[test]
    fn ring_capacity_default_vs_tuned() {
        let mtu = Bytes::new(9000);
        let default = RxRing::new(1024, mtu);
        let tuned = RxRing::new(8192, mtu);
        assert_eq!(default.capacity().as_u64(), 1024 * 9000);
        assert_eq!(tuned.capacity().as_u64(), 8192 * 9000);
        assert!(tuned.capacity() > default.capacity());
    }

    #[test]
    fn ring_accepts_until_full_then_drops() {
        let mut ring = RxRing::new(16, Bytes::new(9000)); // 144 KB
        assert!(ring.offer(Bytes::kib(64)));
        assert!(ring.offer(Bytes::kib(64)));
        // 128 KiB in a 140.6 KiB ring: a third 64 KiB burst must drop.
        assert!(!ring.offer(Bytes::kib(64)));
        assert_eq!(ring.drop_count(), 1);
        ring.drain(Bytes::kib(64));
        assert!(ring.offer(Bytes::kib(64)));
        assert_eq!(ring.drop_count(), 1);
    }

    #[test]
    fn ring_fill_fraction() {
        let mut ring = RxRing::new(10, Bytes::new(1000));
        assert_eq!(ring.fill(), 0.0);
        ring.offer(Bytes::new(5000));
        assert!((ring.fill() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn nic_effective_rate_is_min_of_wire_and_pcie() {
        let cx5 = Nic::new(NicModel::ConnectX5, Bytes::new(9000));
        assert_eq!(cx5.effective_rate().as_gbps(), 97.0);
        let cx7 = Nic::new(NicModel::ConnectX7, Bytes::new(9000));
        assert_eq!(cx7.effective_rate().as_gbps(), 197.0);
    }

    #[test]
    fn hw_gro_gating() {
        let cx7 = Nic::new(NicModel::ConnectX7, Bytes::new(9000)).with_hw_gro();
        assert!(cx7.hw_gro_enabled);
    }

    #[test]
    #[should_panic(expected = "no hardware GRO")]
    fn hw_gro_rejected_on_cx5() {
        let _ = Nic::new(NicModel::ConnectX5, Bytes::new(9000)).with_hw_gro();
    }

    #[test]
    fn ring_tuning_via_nic() {
        let nic = Nic::new(NicModel::ConnectX7, Bytes::new(9000)).with_ring_entries(8192);
        assert_eq!(nic.rx_ring.capacity().as_u64(), 8192 * 9000);
    }
}
