//! A model of Google's `neper` (`tcp_stream`) — the tool whose
//! zerocopy/MSG_TRUNC options inspired iperf3 patch #1690 (§III-B).
//!
//! neper differs from iperf3 in its threading model: `-T` threads
//! serve `-F` flows, so several flows can share one sender thread —
//! useful for studying CPU-bound many-flow workloads without one
//! core per flow.

use crate::report::Iperf3Report;
use crate::runner::RunError;
use linuxhost::HostConfig;
use nethw::PathSpec;
use netsim::{SimConfig, Simulation, WorkloadSpec};
use simcore::{BitRate, SimDuration};
use std::fmt;

/// Options for `tcp_stream`.
#[derive(Debug, Clone)]
pub struct NeperOpts {
    /// `-F`: total number of flows.
    pub num_flows: usize,
    /// `-T`: number of worker threads (flows are striped over them).
    pub num_threads: usize,
    /// `-Z`: use MSG_ZEROCOPY.
    pub zerocopy: bool,
    /// `--skip-rx-copy` equivalent (MSG_TRUNC receive).
    pub skip_rx_copy: bool,
    /// Test length in seconds (`-l`).
    pub length_secs: u64,
    /// Run seed.
    pub seed: u64,
}

impl Default for NeperOpts {
    fn default() -> Self {
        NeperOpts {
            num_flows: 1,
            num_threads: 1,
            zerocopy: false,
            skip_rx_copy: false,
            length_secs: 10,
            seed: 1,
        }
    }
}

impl NeperOpts {
    /// `tcp_stream -l secs`.
    pub fn new(length_secs: u64) -> Self {
        NeperOpts { length_secs, ..Default::default() }
    }

    /// Builder: `-F n` flows.
    pub fn flows(mut self, n: usize) -> Self {
        self.num_flows = n;
        self
    }

    /// Builder: `-T n` threads.
    pub fn threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builder: `-Z`.
    pub fn zerocopy(mut self) -> Self {
        self.zerocopy = true;
        self
    }

    /// Builder: MSG_TRUNC receive.
    pub fn skip_rx_copy(mut self) -> Self {
        self.skip_rx_copy = true;
        self
    }

    /// Builder: seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The command line this corresponds to.
    pub fn command_line(&self, host: &str) -> String {
        let mut cmd = format!(
            "tcp_stream -c -H {host} -l {} -F {} -T {}",
            self.length_secs, self.num_flows, self.num_threads
        );
        if self.zerocopy {
            cmd.push_str(" -Z");
        }
        if self.skip_rx_copy {
            cmd.push_str(" --skip-rx-copy");
        }
        cmd
    }

    /// Validation.
    pub fn validate(&self) -> Vec<String> {
        let mut errors = Vec::new();
        if self.num_flows == 0 {
            errors.push("-F must be at least 1".into());
        }
        if self.num_threads == 0 {
            errors.push("-T must be at least 1".into());
        }
        if self.num_threads > self.num_flows {
            errors.push("-T must not exceed -F (idle threads)".into());
        }
        if self.length_secs == 0 {
            errors.push("-l must be positive".into());
        }
        errors
    }
}

/// neper's closing summary.
#[derive(Debug, Clone)]
pub struct NeperReport {
    /// The command line.
    pub command: String,
    /// Aggregate goodput.
    pub throughput: BitRate,
    /// Retransmitted MTU segments.
    pub retransmits: u64,
    /// Underlying per-flow detail (shares the iperf3 report shape).
    pub detail: Iperf3Report,
}

impl fmt::Display for NeperReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "$ {}", self.command)?;
        writeln!(f, "num_transactions=0")?;
        writeln!(f, "throughput_units=Mbit/s")?;
        writeln!(f, "throughput={:.2}", self.throughput.as_bps() / 1e6)?;
        writeln!(f, "retransmits={}", self.retransmits)
    }
}

/// Run `tcp_stream` between two hosts.
pub fn run_tcp_stream(
    client: &HostConfig,
    server: &HostConfig,
    path: &PathSpec,
    opts: &NeperOpts,
) -> Result<NeperReport, RunError> {
    let errors = opts.validate();
    if !errors.is_empty() {
        return Err(RunError::Invalid(errors));
    }
    // -T threads: flows stripe over that many sender/receiver cores.
    let mut client = client.clone();
    let mut server = server.clone();
    let threads = opts.num_threads.min(client.cores.app_cores.len());
    client.cores.app_cores.truncate(threads);
    server.cores.app_cores.truncate(threads);

    let workload = WorkloadSpec {
        num_flows: opts.num_flows,
        duration: SimDuration::from_secs(opts.length_secs),
        omit: SimDuration::from_secs(if opts.length_secs > 6 { 2 } else { 0 }),
        zerocopy: opts.zerocopy,
        sendfile: false,
        skip_rx_copy: opts.skip_rx_copy,
        user_checksum: false,
        fq_rate: None,
        cc: tcpstack::CcAlgorithm::Cubic,
        cc_mix: Vec::new(),
        seed: opts.seed,
        faults: netsim::FaultPlan::none(),
        event_budget: None,
        telemetry: None,
        attribution: false,
    };
    let cfg = SimConfig { sender: client, receiver: server.clone(), path: path.clone(), workload };
    let problems = cfg.validate();
    if !problems.is_empty() {
        return Err(RunError::Invalid(problems));
    }
    let result = Simulation::new(cfg)?.run()?;
    let detail = Iperf3Report::from_run(opts.command_line(&server.name), &result);
    Ok(NeperReport {
        command: opts.command_line(&server.name),
        throughput: detail.sum_bitrate(),
        retransmits: detail.sum_retr(),
        detail,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use linuxhost::KernelVersion;

    fn setup() -> (HostConfig, PathSpec) {
        (
            HostConfig::esnet_amd(KernelVersion::L6_8),
            PathSpec::lan("lan", BitRate::gbps(200.0)),
        )
    }

    #[test]
    fn basic_tcp_stream() {
        let (host, path) = setup();
        let r = run_tcp_stream(&host, &host, &path, &NeperOpts::new(3).flows(2).threads(2))
            .expect("run");
        assert!(r.throughput.as_gbps() > 10.0);
        let text = r.to_string();
        assert!(text.contains("throughput_units=Mbit/s"));
        assert!(text.contains("tcp_stream -c"));
    }

    #[test]
    fn thread_striping_matters() {
        // 8 flows on 1 thread vs 8 threads: the multi-threaded run
        // must be faster (one shared app core vs eight).
        let (host, path) = setup();
        let one = run_tcp_stream(&host, &host, &path, &NeperOpts::new(3).flows(8).threads(1))
            .unwrap();
        let eight = run_tcp_stream(&host, &host, &path, &NeperOpts::new(3).flows(8).threads(8))
            .unwrap();
        assert!(
            eight.throughput.as_gbps() > one.throughput.as_gbps() * 1.5,
            "-T 8 {:.1} should beat -T 1 {:.1}",
            eight.throughput.as_gbps(),
            one.throughput.as_gbps()
        );
    }

    #[test]
    fn validation() {
        assert!(!NeperOpts::new(0).validate().is_empty());
        assert!(!NeperOpts::new(5).flows(0).validate().is_empty());
        assert!(!NeperOpts::new(5).flows(2).threads(4).validate().is_empty());
        assert!(NeperOpts::new(5).flows(4).threads(2).validate().is_empty());
    }

    #[test]
    fn zerocopy_flag_passes_through() {
        let (host, path) = setup();
        let r = run_tcp_stream(&host, &host, &path, &NeperOpts::new(3).zerocopy()).unwrap();
        assert!(r.command.contains("-Z"));
        assert!(r.throughput.as_gbps() > 10.0);
    }
}
