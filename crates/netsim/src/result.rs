//! Run results.

use crate::attribution::Attribution;
use crate::telemetry::Telemetry;
use linuxhost::CpuReport;
use simcore::{BitRate, Bytes, SimDuration};

/// Per-flow outcome over the measured window.
#[derive(Debug, Clone)]
pub struct FlowResult {
    /// Flow index.
    pub id: usize,
    /// Bytes delivered in order to the receiving application.
    pub bytes: Bytes,
    /// Mean goodput over the measured window.
    pub goodput: BitRate,
    /// Retransmitted MTU packets (iperf3 `Retr`).
    pub retr_packets: u64,
    /// RTO events.
    pub rto_events: u64,
    /// True zerocopy sends.
    pub zc_sends: u64,
    /// Zerocopy sends that fell back to copying.
    pub zc_fallbacks: u64,
    /// Per-interval goodput samples (1-second bins).
    pub intervals: Vec<BitRate>,
}

/// Outcome of one simulation run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Per-flow results.
    pub flows: Vec<FlowResult>,
    /// Measured window length.
    pub window: SimDuration,
    /// Sender host CPU over the measured window.
    pub sender_cpu: CpuReport,
    /// Receiver host CPU over the measured window.
    pub receiver_cpu: CpuReport,
    /// Per-second CPU samples over the measured window, like running
    /// `mpstat 1` alongside the test (§III-G): `(sender %, receiver %)`
    /// combined TX/RX-cores utilisation.
    pub cpu_intervals: Vec<(f64, f64)>,
    /// Bursts tail-dropped at the switch.
    pub switch_drops: u64,
    /// Bursts dropped at the receiver NIC ring.
    pub ring_drops: u64,
    /// Bursts lost to random path loss.
    pub random_drops: u64,
    /// Bursts destroyed by injected faults (bursty-loss episodes and
    /// link flaps).
    pub fault_drops: u64,
    /// Bursts handed to the wire over the whole run, including
    /// retransmissions (the left-hand side of the conservation check).
    pub wire_sent: u64,
    /// Total events processed (diagnostics).
    pub events: u64,
    /// Release-mode pushes the event queue clamped from the past to
    /// `now`. Debug builds panic on the same condition; a non-zero
    /// count here means a causality bug was silently masked — see
    /// [`RunResult::warnings`].
    pub past_clamps: u64,
    /// Sampled `ss`/`ethtool`/`mpstat`-style time series; present only
    /// when [`crate::WorkloadSpec::telemetry`] set a tick.
    pub telemetry: Option<Telemetry>,
    /// Bottleneck attribution (per-interval verdicts + whole-run stage
    /// profiles); present only when
    /// [`crate::WorkloadSpec::attribution`] is on.
    pub attribution: Option<Attribution>,
}

impl RunResult {
    /// Sum of flow goodputs.
    pub fn total_goodput(&self) -> BitRate {
        BitRate::from_bps(self.flows.iter().map(|f| f.goodput.as_bps()).sum())
    }

    /// Sum of retransmitted packets.
    pub fn total_retr(&self) -> u64 {
        self.flows.iter().map(|f| f.retr_packets).sum()
    }

    /// Per-flow goodputs in Gbps (for range/fairness reporting).
    pub fn flow_gbps(&self) -> Vec<f64> {
        self.flows.iter().map(|f| f.goodput.as_gbps()).collect()
    }

    /// Fraction of zerocopy sends that fell back (0 when zerocopy off).
    pub fn zc_fallback_fraction(&self) -> f64 {
        let zc: u64 = self.flows.iter().map(|f| f.zc_sends).sum();
        let fb: u64 = self.flows.iter().map(|f| f.zc_fallbacks).sum();
        if zc + fb == 0 { 0.0 } else { fb as f64 / (zc + fb) as f64 }
    }

    /// Total losses of any kind (bursts).
    pub fn total_drops(&self) -> u64 {
        self.switch_drops + self.ring_drops + self.random_drops + self.fault_drops
    }

    /// Run-level warnings: conditions that did not fail the run but
    /// mean its output should be treated with suspicion. Harnesses
    /// surface these next to the report.
    pub fn warnings(&self) -> Vec<String> {
        let mut out = Vec::new();
        if self.past_clamps > 0 {
            out.push(format!(
                "{} event(s) were scheduled in the past and clamped to the current \
                 time (a causality bug a debug build would panic on)",
                self.past_clamps
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linuxhost::CpuReport;

    fn flow(id: usize, gbps: f64, retr: u64) -> FlowResult {
        FlowResult {
            id,
            bytes: Bytes::new((gbps * 1e9 / 8.0) as u64),
            goodput: BitRate::gbps(gbps),
            retr_packets: retr,
            rto_events: 0,
            zc_sends: 10,
            zc_fallbacks: 30,
            intervals: vec![],
        }
    }

    fn result() -> RunResult {
        RunResult {
            flows: vec![flow(0, 10.0, 5), flow(1, 12.0, 7)],
            window: SimDuration::from_secs(1),
            sender_cpu: CpuReport::zero(16),
            receiver_cpu: CpuReport::zero(16),
            cpu_intervals: vec![(50.0, 75.0)],
            switch_drops: 1,
            ring_drops: 2,
            random_drops: 3,
            fault_drops: 4,
            wire_sent: 110,
            events: 100,
            past_clamps: 0,
            telemetry: None,
            attribution: None,
        }
    }

    #[test]
    fn aggregates() {
        let r = result();
        assert!((r.total_goodput().as_gbps() - 22.0).abs() < 1e-9);
        assert_eq!(r.total_retr(), 12);
        assert_eq!(r.flow_gbps(), vec![10.0, 12.0]);
        assert_eq!(r.total_drops(), 10);
        assert!((r.zc_fallback_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn past_clamps_become_a_warning() {
        let mut r = result();
        assert!(r.warnings().is_empty());
        r.past_clamps = 3;
        let warnings = r.warnings();
        assert_eq!(warnings.len(), 1);
        assert!(warnings[0].contains("3 event(s)"));
        assert!(warnings[0].contains("causality"));
    }
}
