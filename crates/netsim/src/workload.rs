//! Fleet workload profiles: arrival processes, flow-size
//! distributions, and the per-flow mix.
//!
//! A [`FleetProfile`] describes production-shaped traffic declaratively
//! — flows *arrive* (Poisson or 2-state MMPP, optionally modulated by a
//! diurnal cycle), draw a heavy-tailed size (log-normal or bounded
//! Pareto) and a [`FleetClass`] (path RTT, bottleneck rate and buffer,
//! congestion controller, pacing), then open, transfer, and close
//! inside one simulation (see [`crate::fleet`]).
//!
//! Determinism contract: every random draw is derived from the
//! profile's canonical fingerprint via [`simcore::derive_seed`].
//! Arrivals use stream 0 (they are sampled sequentially in simulated
//! time); each flow's size/class draw uses stream `1 + flow_id`, so a
//! flow's identity is position-independent — re-ordering completions,
//! changing `REPRO_JOBS`, or adding observers cannot change what flow
//! `k` is.

use simcore::{derive_seed, BitRate, Bytes, Canon, Canonicalize, SimDuration, SimRng};
use tcpstack::CcAlgorithm;

/// How flow arrivals are spaced in time.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals at a constant mean rate (flows per second).
    Poisson {
        /// Mean arrival rate in flows per second.
        rate_per_sec: f64,
    },
    /// 2-state Markov-modulated Poisson process: exponential sojourns
    /// alternate between a calm and a burst rate — the incast /
    /// many-short-flow shape of the datacenter TCP-parameter study
    /// (arXiv:1905.01194).
    Mmpp2 {
        /// Arrival rate (flows/s) in the calm state.
        calm_rate: f64,
        /// Arrival rate (flows/s) in the burst state.
        burst_rate: f64,
        /// Mean sojourn in the calm state, seconds.
        mean_calm_secs: f64,
        /// Mean sojourn in the burst state, seconds.
        mean_burst_secs: f64,
    },
}

impl ArrivalProcess {
    /// The long-run mean arrival rate in flows per second.
    pub fn mean_rate(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate_per_sec } => rate_per_sec,
            ArrivalProcess::Mmpp2 { calm_rate, burst_rate, mean_calm_secs, mean_burst_secs } => {
                let total = mean_calm_secs + mean_burst_secs;
                (calm_rate * mean_calm_secs + burst_rate * mean_burst_secs) / total
            }
        }
    }
}

/// Flow-size distribution, in bytes.
#[derive(Debug, Clone, PartialEq)]
pub enum SizeDist {
    /// Log-normal: `median · exp(σ·Z)` — the classic heavy-but-not-
    /// power-law tail of WAN transfer sizes.
    LogNormal {
        /// Median transfer size in bytes (`exp(μ)`).
        median_bytes: f64,
        /// Shape σ of the underlying normal.
        sigma: f64,
    },
    /// Bounded Pareto on `[min, max]` with tail index `alpha` — the
    /// mice-and-elephants mix of datacenter flow traces.
    BoundedPareto {
        /// Tail index α (smaller = heavier tail). Must be positive.
        alpha: f64,
        /// Smallest possible flow, bytes.
        min_bytes: u64,
        /// Largest possible flow, bytes.
        max_bytes: u64,
    },
}

/// Sinusoidal rate modulation: the arrival rate is multiplied by
/// `1 + amplitude · sin(2πt / period)`, the day/night swing of a
/// production fleet compressed to simulation scale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Diurnal {
    /// Peak-to-mean swing in `[0, 1)`.
    pub amplitude: f64,
    /// Cycle period in seconds of simulated time.
    pub period_secs: f64,
}

/// One entry of the per-flow mix: the path and host profile a flow
/// draws when it opens.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetClass {
    /// Display name ("wan-cubic-paced", "incast-leaf", …).
    pub name: String,
    /// Relative draw weight (flows pick a class ∝ weight).
    pub weight: u32,
    /// Congestion controller for flows of this class.
    pub cc: CcAlgorithm,
    /// Whether flows of this class pace bursts at the bottleneck rate
    /// (fq with a matched rate) instead of dumping the whole window.
    pub pacing: bool,
    /// Path round-trip time.
    pub rtt: SimDuration,
    /// Shared bottleneck rate for the class.
    pub bottleneck: BitRate,
    /// Bottleneck queue capacity (tail-drop beyond it).
    pub buffer: Bytes,
}

impl Canonicalize for FleetClass {
    fn canonicalize(&self, c: &mut Canon) {
        c.put_str("name", &self.name);
        c.put_u64("weight", self.weight as u64);
        c.put_str("cc", self.cc.name());
        c.put_bool("pacing", self.pacing);
        c.put_u64("rtt_ns", self.rtt.as_nanos());
        c.put_f64("bottleneck_gbps", self.bottleneck.as_gbps());
        c.put_u64("buffer_bytes", self.buffer.as_u64());
    }
}

/// A declarative fleet workload: arrivals, sizes, mix, and horizon.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetProfile {
    /// Profile name (labels results and interval series).
    pub name: String,
    /// Flow arrival process.
    pub arrivals: ArrivalProcess,
    /// Flow size distribution.
    pub sizes: SizeDist,
    /// Optional diurnal rate modulation.
    pub diurnal: Option<Diurnal>,
    /// Arrival horizon: no new flows open after this; existing flows
    /// drain to completion.
    pub duration: SimDuration,
    /// The per-flow mix (at least one class).
    pub classes: Vec<FleetClass>,
    /// Base seed, combined with the profile fingerprint.
    pub seed: u64,
    /// Hard cap on opened flows (bounds runaway rates); `u64::MAX` by
    /// default.
    pub max_flows: u64,
    /// Transfer granularity (GSO burst); flow sizes round up to it.
    pub burst: Bytes,
    /// Width of the streaming FCT/goodput aggregation intervals.
    pub interval_width: SimDuration,
}

impl FleetProfile {
    /// A profile with sensible defaults: one class must still be added.
    pub fn new(name: impl Into<String>, arrivals: ArrivalProcess, sizes: SizeDist) -> Self {
        FleetProfile {
            name: name.into(),
            arrivals,
            sizes,
            diurnal: None,
            duration: SimDuration::from_secs(10),
            classes: Vec::new(),
            seed: 0,
            max_flows: u64::MAX,
            burst: Bytes::kib(64),
            interval_width: SimDuration::from_secs(1),
        }
    }

    /// Validation problems, in the `SimConfig::validate` style; empty
    /// means runnable.
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        match self.arrivals {
            ArrivalProcess::Poisson { rate_per_sec } => {
                if !(rate_per_sec > 0.0 && rate_per_sec.is_finite()) {
                    problems.push(format!("poisson rate must be positive, got {rate_per_sec}"));
                }
            }
            ArrivalProcess::Mmpp2 { calm_rate, burst_rate, mean_calm_secs, mean_burst_secs } => {
                if !(calm_rate >= 0.0 && burst_rate > 0.0) {
                    problems.push("mmpp rates must be non-negative (burst positive)".into());
                }
                if !(mean_calm_secs > 0.0 && mean_burst_secs > 0.0) {
                    problems.push("mmpp mean sojourns must be positive".into());
                }
            }
        }
        match self.sizes {
            SizeDist::LogNormal { median_bytes, sigma } => {
                if !(median_bytes >= 1.0 && sigma >= 0.0) {
                    problems.push("log-normal needs median >= 1 byte and sigma >= 0".into());
                }
            }
            SizeDist::BoundedPareto { alpha, min_bytes, max_bytes } => {
                if !alpha.is_finite() || alpha <= 0.0 {
                    problems.push(format!("pareto alpha must be positive, got {alpha}"));
                }
                if min_bytes == 0 || min_bytes > max_bytes {
                    problems.push(format!(
                        "pareto bounds must satisfy 0 < min <= max, got [{min_bytes}, {max_bytes}]"
                    ));
                }
            }
        }
        if let Some(d) = self.diurnal {
            if !(0.0..1.0).contains(&d.amplitude) || !d.period_secs.is_finite() || d.period_secs <= 0.0 {
                problems.push("diurnal needs amplitude in [0,1) and a positive period".into());
            }
        }
        if self.classes.is_empty() {
            problems.push("fleet profile needs at least one class".into());
        }
        if self.classes.iter().all(|c| c.weight == 0) && !self.classes.is_empty() {
            problems.push("at least one class weight must be positive".into());
        }
        for class in &self.classes {
            if class.bottleneck.is_zero() {
                problems.push(format!("class '{}' has a zero bottleneck rate", class.name));
            }
            if class.buffer < self.burst {
                problems.push(format!(
                    "class '{}' buffer smaller than one burst ({} < {})",
                    class.name,
                    class.buffer.as_u64(),
                    self.burst.as_u64()
                ));
            }
        }
        if self.duration.is_zero() {
            problems.push("fleet duration must be positive".into());
        }
        if self.max_flows == 0 {
            problems.push("max_flows must be positive".into());
        }
        if self.burst.is_zero() {
            problems.push("burst size must be positive".into());
        }
        problems
    }

    /// The canonical fingerprint (seed and cache identity).
    pub fn fingerprint(&self) -> u64 {
        let mut c = Canon::new();
        self.canonicalize(&mut c);
        c.fingerprint()
    }

    /// Deterministic per-flow draw: class index and size in bursts.
    /// Depends only on (profile, flow_id) — never on arrival order.
    pub fn draw_flow(&self, fingerprint: u64, flow_id: u64) -> FlowDraw {
        let mut rng = SimRng::seed_from_u64(derive_seed(fingerprint, self.seed, 1 + flow_id));
        let total: u64 = self.classes.iter().map(|c| c.weight as u64).sum();
        let mut pick = rng.uniform_u64(0, total.max(1));
        let mut class = 0;
        for (i, c) in self.classes.iter().enumerate() {
            if pick < c.weight as u64 {
                class = i;
                break;
            }
            pick -= c.weight as u64;
        }
        let size_bytes = sample_size(&self.sizes, &mut rng);
        let bursts = size_bytes.div_ceil(self.burst.as_u64()).max(1);
        FlowDraw { class, size_bytes, bursts }
    }
}

impl Canonicalize for FleetProfile {
    fn canonicalize(&self, c: &mut Canon) {
        c.put_str("name", &self.name);
        match self.arrivals {
            ArrivalProcess::Poisson { rate_per_sec } => c.scope("arrivals", |c| {
                c.put_str("kind", "poisson");
                c.put_f64("rate_per_sec", rate_per_sec);
            }),
            ArrivalProcess::Mmpp2 { calm_rate, burst_rate, mean_calm_secs, mean_burst_secs } => {
                c.scope("arrivals", |c| {
                    c.put_str("kind", "mmpp2");
                    c.put_f64("calm_rate", calm_rate);
                    c.put_f64("burst_rate", burst_rate);
                    c.put_f64("mean_calm_secs", mean_calm_secs);
                    c.put_f64("mean_burst_secs", mean_burst_secs);
                })
            }
        }
        match self.sizes {
            SizeDist::LogNormal { median_bytes, sigma } => c.scope("sizes", |c| {
                c.put_str("kind", "lognormal");
                c.put_f64("median_bytes", median_bytes);
                c.put_f64("sigma", sigma);
            }),
            SizeDist::BoundedPareto { alpha, min_bytes, max_bytes } => c.scope("sizes", |c| {
                c.put_str("kind", "bounded_pareto");
                c.put_f64("alpha", alpha);
                c.put_u64("min_bytes", min_bytes);
                c.put_u64("max_bytes", max_bytes);
            }),
        }
        match self.diurnal {
            None => c.put_str("diurnal", "none"),
            Some(d) => c.scope("diurnal", |c| {
                c.put_f64("amplitude", d.amplitude);
                c.put_f64("period_secs", d.period_secs);
            }),
        }
        c.put_u64("duration_ns", self.duration.as_nanos());
        let classes: Vec<&dyn Canonicalize> =
            self.classes.iter().map(|x| x as &dyn Canonicalize).collect();
        c.put_seq("classes", &classes);
        c.put_u64("seed", self.seed);
        c.put_u64("max_flows", self.max_flows);
        c.put_u64("burst_bytes", self.burst.as_u64());
        c.put_u64("interval_width_ns", self.interval_width.as_nanos());
    }
}

/// The deterministic identity of one flow: which class it belongs to
/// and how much it transfers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowDraw {
    /// Index into [`FleetProfile::classes`].
    pub class: usize,
    /// Sampled size in bytes (before burst rounding).
    pub size_bytes: u64,
    /// Size in whole bursts (`ceil(size / burst)`, at least 1).
    pub bursts: u64,
}

/// Sample one flow size in bytes.
pub fn sample_size(dist: &SizeDist, rng: &mut SimRng) -> u64 {
    match *dist {
        SizeDist::LogNormal { median_bytes, sigma } => {
            let z = standard_normal(rng);
            let v = median_bytes * (sigma * z).exp();
            // Clamp to a petabyte so a wild σ cannot overflow byte math.
            v.clamp(1.0, 1e15) as u64
        }
        SizeDist::BoundedPareto { alpha, min_bytes, max_bytes } => {
            if min_bytes == max_bytes {
                return min_bytes;
            }
            // Inverse-CDF of the bounded Pareto on [min, max].
            let u = rng.uniform(0.0, 1.0);
            let (lo, hi) = (min_bytes as f64, max_bytes as f64);
            let la = lo.powf(-alpha);
            let ha = hi.powf(-alpha);
            let x = (la - u * (la - ha)).powf(-1.0 / alpha);
            (x.clamp(lo, hi)) as u64
        }
    }
}

/// A standard normal via Box–Muller (two uniform draws per value; the
/// unused sine half is discarded to keep the draw count per sample
/// fixed, which the determinism contract prefers over caching).
fn standard_normal(rng: &mut SimRng) -> f64 {
    let u1 = rng.uniform(0.0, 1.0).max(f64::EPSILON);
    let u2 = rng.uniform(0.0, 1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Sequential arrival-time sampler for a profile's process + diurnal
/// modulation. Draws are thinned against the per-state peak rate, so
/// the accepted stream has exactly the modulated intensity.
#[derive(Debug, Clone)]
pub struct ArrivalSampler {
    rng: SimRng,
    process: ArrivalProcess,
    diurnal: Option<Diurnal>,
    /// MMPP2 state: currently in the burst state?
    in_burst: bool,
    /// Absolute end of the current MMPP sojourn, seconds.
    sojourn_end_secs: f64,
}

impl ArrivalSampler {
    /// A sampler seeded from the profile fingerprint (stream 0).
    pub fn new(profile: &FleetProfile, fingerprint: u64) -> Self {
        let mut rng = SimRng::seed_from_u64(derive_seed(fingerprint, profile.seed, 0));
        let (in_burst, sojourn_end_secs) = match profile.arrivals {
            ArrivalProcess::Poisson { .. } => (false, f64::INFINITY),
            ArrivalProcess::Mmpp2 { mean_calm_secs, .. } => {
                (false, rng.exponential(mean_calm_secs))
            }
        };
        ArrivalSampler {
            rng,
            process: profile.arrivals.clone(),
            diurnal: profile.diurnal,
            in_burst,
            sojourn_end_secs,
        }
    }

    /// Current state's base rate (flows/s).
    fn state_rate(&self) -> f64 {
        match self.process {
            ArrivalProcess::Poisson { rate_per_sec } => rate_per_sec,
            ArrivalProcess::Mmpp2 { calm_rate, burst_rate, .. } => {
                if self.in_burst {
                    burst_rate
                } else {
                    calm_rate
                }
            }
        }
    }

    /// The diurnal multiplier at absolute time `t` seconds.
    fn diurnal_factor(&self, t: f64) -> f64 {
        match self.diurnal {
            None => 1.0,
            Some(d) => 1.0 + d.amplitude * (std::f64::consts::TAU * t / d.period_secs).sin(),
        }
    }

    /// The next arrival strictly after `now_secs`, in absolute seconds.
    pub fn next_arrival(&mut self, now_secs: f64) -> f64 {
        let mut t = now_secs;
        loop {
            // Peak intensity over the current state: thinning envelope.
            let peak = self.state_rate() * (1.0 + self.diurnal.map_or(0.0, |d| d.amplitude));
            if peak <= 0.0 {
                // Calm state with zero rate: jump to the state switch.
                t = self.sojourn_end_secs;
                self.switch_state(t);
                continue;
            }
            let cand = t + self.rng.exponential(1.0 / peak);
            if cand >= self.sojourn_end_secs {
                // The sojourn ended first: advance to the switch point
                // and re-draw from the new state (memorylessness makes
                // the discard exact, not an approximation).
                t = self.sojourn_end_secs;
                self.switch_state(t);
                continue;
            }
            t = cand;
            let actual = self.state_rate() * self.diurnal_factor(t);
            if self.rng.chance((actual / peak).clamp(0.0, 1.0)) {
                return t;
            }
        }
    }

    /// Flip the MMPP state at absolute time `t` and draw the next
    /// sojourn.
    fn switch_state(&mut self, t: f64) {
        if let ArrivalProcess::Mmpp2 { mean_calm_secs, mean_burst_secs, .. } = self.process {
            self.in_burst = !self.in_burst;
            let mean = if self.in_burst { mean_burst_secs } else { mean_calm_secs };
            self.sojourn_end_secs = t + self.rng.exponential(mean);
        } else {
            self.sojourn_end_secs = f64::INFINITY;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_class() -> FleetClass {
        FleetClass {
            name: "wan".into(),
            weight: 1,
            cc: CcAlgorithm::Cubic,
            pacing: true,
            rtt: SimDuration::from_millis(20),
            bottleneck: BitRate::gbps(10.0),
            buffer: Bytes::mib(4),
        }
    }

    fn profile(arrivals: ArrivalProcess, sizes: SizeDist) -> FleetProfile {
        let mut p = FleetProfile::new("test", arrivals, sizes);
        p.classes.push(one_class());
        p
    }

    fn mean_cv(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        (mean, var.sqrt() / mean)
    }

    #[test]
    fn poisson_interarrivals_have_unit_cv_and_right_mean() {
        let p = profile(
            ArrivalProcess::Poisson { rate_per_sec: 100.0 },
            SizeDist::LogNormal { median_bytes: 1e6, sigma: 1.0 },
        );
        let fp = p.fingerprint();
        let mut s = ArrivalSampler::new(&p, fp);
        let mut t = 0.0;
        let gaps: Vec<f64> = (0..50_000)
            .map(|_| {
                let next = s.next_arrival(t);
                let gap = next - t;
                t = next;
                gap
            })
            .collect();
        let (mean, cv) = mean_cv(&gaps);
        assert!((mean - 0.01).abs() < 0.0005, "mean gap {mean} != 1/λ");
        assert!((cv - 1.0).abs() < 0.05, "exponential gaps have CV 1, got {cv}");
    }

    #[test]
    fn mmpp2_is_burstier_than_poisson_with_matching_mean() {
        let arr = ArrivalProcess::Mmpp2 {
            calm_rate: 20.0,
            burst_rate: 2000.0,
            mean_calm_secs: 0.5,
            mean_burst_secs: 0.05,
        };
        let mean_rate = arr.mean_rate();
        let p = profile(arr, SizeDist::LogNormal { median_bytes: 1e6, sigma: 1.0 });
        let fp = p.fingerprint();
        let mut s = ArrivalSampler::new(&p, fp);
        let mut t = 0.0;
        let gaps: Vec<f64> = (0..200_000)
            .map(|_| {
                let next = s.next_arrival(t);
                let gap = next - t;
                t = next;
                gap
            })
            .collect();
        let (mean, cv) = mean_cv(&gaps);
        // Tolerance is dominated by how many calm/burst sojourn cycles
        // the window happens to contain, not by the arrival count.
        assert!(
            (mean - 1.0 / mean_rate).abs() / (1.0 / mean_rate) < 0.15,
            "MMPP mean gap {mean} vs expected {}",
            1.0 / mean_rate
        );
        assert!(cv > 1.3, "MMPP inter-arrivals must be burstier than Poisson, CV {cv}");
    }

    #[test]
    fn lognormal_sizes_match_median_and_mean() {
        let mut rng = SimRng::seed_from_u64(7);
        let dist = SizeDist::LogNormal { median_bytes: 1_000_000.0, sigma: 1.5 };
        let mut sizes: Vec<f64> =
            (0..50_000).map(|_| sample_size(&dist, &mut rng) as f64).collect();
        sizes.sort_by(|a, b| a.partial_cmp(b).expect("sizes are finite"));
        let median = sizes[sizes.len() / 2];
        assert!(
            (median - 1e6).abs() / 1e6 < 0.05,
            "empirical median {median} vs 1e6"
        );
        let mean = sizes.iter().sum::<f64>() / sizes.len() as f64;
        let expected_mean = 1e6 * (1.5f64 * 1.5 / 2.0).exp();
        assert!(
            (mean - expected_mean).abs() / expected_mean < 0.15,
            "empirical mean {mean} vs {expected_mean}"
        );
    }

    #[test]
    fn bounded_pareto_respects_bounds_and_mean() {
        let mut rng = SimRng::seed_from_u64(11);
        let (alpha, lo, hi) = (1.3f64, 32_768u64, 8_388_608u64);
        let dist = SizeDist::BoundedPareto { alpha, min_bytes: lo, max_bytes: hi };
        let samples: Vec<u64> = (0..50_000).map(|_| sample_size(&dist, &mut rng)).collect();
        assert!(samples.iter().all(|&s| (lo..=hi).contains(&s)));
        let mean = samples.iter().map(|&s| s as f64).sum::<f64>() / samples.len() as f64;
        // Analytic mean of the bounded Pareto (α ≠ 1).
        let (l, h) = (lo as f64, hi as f64);
        let expected = l.powf(alpha) / (1.0 - (l / h).powf(alpha))
            * (alpha / (alpha - 1.0))
            * (1.0 / l.powf(alpha - 1.0) - 1.0 / h.powf(alpha - 1.0));
        assert!(
            (mean - expected).abs() / expected < 0.1,
            "empirical mean {mean} vs analytic {expected}"
        );
    }

    #[test]
    fn diurnal_modulation_shifts_arrival_mass() {
        let mut p = profile(
            ArrivalProcess::Poisson { rate_per_sec: 1000.0 },
            SizeDist::LogNormal { median_bytes: 1e6, sigma: 1.0 },
        );
        p.diurnal = Some(Diurnal { amplitude: 0.8, period_secs: 2.0 });
        let fp = p.fingerprint();
        let mut s = ArrivalSampler::new(&p, fp);
        let (mut peak, mut trough) = (0u64, 0u64);
        let mut t = 0.0;
        while t < 20.0 {
            t = s.next_arrival(t);
            // sin > 0 on the first half of each period (peak), < 0 on
            // the second (trough).
            if (t % 2.0) < 1.0 {
                peak += 1;
            } else {
                trough += 1;
            }
        }
        assert!(
            peak as f64 > trough as f64 * 2.0,
            "diurnal peak half must dominate: {peak} vs {trough}"
        );
    }

    #[test]
    fn flow_draws_are_position_independent_and_weighted() {
        let mut p = profile(
            ArrivalProcess::Poisson { rate_per_sec: 10.0 },
            SizeDist::BoundedPareto { alpha: 1.2, min_bytes: 65_536, max_bytes: 1 << 24 },
        );
        p.classes.push(FleetClass { name: "lan".into(), weight: 3, ..one_class() });
        let fp = p.fingerprint();
        // Drawing flow 5 before or after flow 900 gives identical results.
        let a = p.draw_flow(fp, 5);
        let _ = p.draw_flow(fp, 900);
        let b = p.draw_flow(fp, 5);
        assert_eq!(a, b, "draws must depend only on (profile, flow_id)");
        // Weighted mix: class 1 (weight 3) gets ~3x the flows of class 0.
        let mut counts = [0u64; 2];
        for id in 0..20_000 {
            counts[p.draw_flow(fp, id).class] += 1;
        }
        let ratio = counts[1] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "weight ratio {ratio} != 3");
    }

    #[test]
    fn validation_catches_bad_profiles() {
        let mut p = profile(
            ArrivalProcess::Poisson { rate_per_sec: 0.0 },
            SizeDist::BoundedPareto { alpha: 0.0, min_bytes: 10, max_bytes: 5 },
        );
        p.classes.clear();
        let problems = p.validate();
        assert!(problems.len() >= 3, "expected several problems, got {problems:?}");
        let good = profile(
            ArrivalProcess::Poisson { rate_per_sec: 10.0 },
            SizeDist::LogNormal { median_bytes: 1e6, sigma: 1.0 },
        );
        assert!(good.validate().is_empty());
    }

    #[test]
    fn fingerprint_distinguishes_profiles() {
        let a = profile(
            ArrivalProcess::Poisson { rate_per_sec: 10.0 },
            SizeDist::LogNormal { median_bytes: 1e6, sigma: 1.0 },
        );
        let mut b = a.clone();
        b.seed = 1;
        let mut c = a.clone();
        c.classes[0].pacing = false;
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert_eq!(a.fingerprint(), a.clone().fingerprint());
    }
}
