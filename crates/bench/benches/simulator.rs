//! Raw simulator performance: how fast the discrete-event engine
//! chews through representative workloads (reported as wall time per
//! simulated test; the event counts are printed by `--nocapture`
//! diagnostics elsewhere).

use bench::{quick_opts, BenchScenario};
use criterion::{criterion_group, criterion_main, Criterion};
use dtnperf::prelude::*;

fn scenario_lan_single() -> BenchScenario {
    BenchScenario {
        name: "lan_single",
        host: Testbeds::esnet_host(KernelVersion::L6_8),
        path: Testbeds::esnet_path(EsnetPath::Lan),
        opts: quick_opts(1),
    }
}

fn scenario_wan_paced() -> BenchScenario {
    BenchScenario {
        name: "wan_paced",
        host: Testbeds::amlight_host(KernelVersion::L6_8),
        path: Testbeds::amlight_path(AmLightPath::Wan25ms),
        opts: quick_opts(2).zerocopy().fq_rate(BitRate::gbps(50.0)),
    }
}

fn scenario_multiflow() -> BenchScenario {
    BenchScenario {
        name: "multiflow",
        host: Testbeds::esnet_host(KernelVersion::L5_15),
        path: Testbeds::esnet_path(EsnetPath::Lan),
        opts: quick_opts(1).parallel(8),
    }
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for scenario in [scenario_lan_single(), scenario_wan_paced(), scenario_multiflow()] {
        group.bench_function(scenario.name, |b| {
            b.iter(|| {
                let gbps = scenario.run();
                assert!(gbps > 0.5, "{}: {gbps}", scenario.name);
                gbps
            })
        });
    }
    group.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    use dtnperf::simcore::{EventQueue, SimTime};
    c.bench_function("event_queue_push_pop_100k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..100_000u64 {
                q.push(SimTime::from_nanos((i * 7919) % 1_000_000), i);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
            acc
        })
    });
}

criterion_group!(benches, bench_engine, bench_event_queue);
criterion_main!(benches);
