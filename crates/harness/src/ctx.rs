//! The run context: everything the environment used to leak into
//! arbitrary call sites, resolved once at harness entry.
//!
//! `Effort::from_env`, `REPRO_TRACE_DIR`, `REPRO_CACHE_DIR`,
//! `REPRO_JOBS`, `REPRO_CHAOS` and `REPRO_CHECKPOINT_EVERY` are read
//! exactly once — by [`RunCtx::from_env`] in the `repro` binary — and
//! threaded explicitly from there. Tests build a [`RunCtx`] directly
//! and never touch process-global environment variables, which would
//! race across test threads under the parallel scheduler.

use crate::cache::RunCache;
use crate::chaos::ChaosPlan;
use crate::effort::Effort;
use crate::metrics::MetricsHub;
use crate::runner::TestHarness;
use crate::sched;
use crate::supervise::{ErrorBudget, Supervisor};
use std::path::PathBuf;
use std::sync::Arc;

/// Resolved run-wide configuration.
#[derive(Debug, Clone)]
pub struct RunCtx {
    /// Simulation effort (repetitions and durations).
    pub effort: Effort,
    /// Concurrency bound for the process-wide scheduler gate (display
    /// only here; the gate itself is sized on first use).
    pub jobs: usize,
    /// Telemetry-trace output directory (`--trace` / `REPRO_TRACE_DIR`).
    pub trace_dir: Option<PathBuf>,
    /// Content-addressed report cache (`REPRO_CACHE_DIR`).
    pub cache: Option<Arc<RunCache>>,
    /// Harness-level fault injection (`REPRO_CHAOS=<seed>`).
    pub chaos: Option<Arc<ChaosPlan>>,
    /// Shared retry budget for the harnesses this context builds
    /// (`repro` replaces it per experiment).
    pub budget: Option<Arc<ErrorBudget>>,
    /// Checkpoint cadence override (`REPRO_CHECKPOINT_EVERY`, events;
    /// 0 = unset, chaos picks its own default).
    pub checkpoint_every: u64,
    /// Streaming metrics hub (`--metrics <dir>` / `REPRO_METRICS`):
    /// HDR-histogram registry, OpenMetrics exposition, interval series,
    /// phase spans, live heartbeat. Observer-neutral — attaching it
    /// never changes simulation results or cache eligibility.
    pub metrics: Option<Arc<MetricsHub>>,
}

impl RunCtx {
    /// A context at the given effort, with no tracing, no cache, and no
    /// chaos — what tests and library callers start from.
    pub fn new(effort: Effort) -> Self {
        RunCtx {
            effort,
            jobs: sched::jobs_from_env(),
            trace_dir: None,
            cache: None,
            chaos: None,
            budget: None,
            checkpoint_every: 0,
            metrics: None,
        }
    }

    /// Resolve the environment once: `REPRO_EFFORT`, `REPRO_JOBS`,
    /// `REPRO_TRACE_DIR`, `REPRO_CACHE_DIR`, `REPRO_CHAOS`,
    /// `REPRO_CHECKPOINT_EVERY`, `REPRO_METRICS`.
    pub fn from_env() -> Self {
        let checkpoint_every = std::env::var("REPRO_CHECKPOINT_EVERY")
            .ok()
            .and_then(|v| match v.parse::<u64>() {
                Ok(n) => Some(n),
                Err(_) => {
                    eprintln!(
                        "REPRO_CHECKPOINT_EVERY='{v}' is not an event count; ignoring"
                    );
                    None
                }
            })
            .unwrap_or(0);
        let metrics = std::env::var_os("REPRO_METRICS").and_then(|dir| {
            match MetricsHub::new(PathBuf::from(&dir)) {
                Ok(hub) => Some(Arc::new(hub)),
                Err(e) => {
                    eprintln!(
                        "REPRO_METRICS='{}' is not a writable directory ({e}); ignoring",
                        dir.to_string_lossy()
                    );
                    None
                }
            }
        });
        RunCtx {
            effort: Effort::from_env(),
            jobs: sched::jobs_from_env(),
            trace_dir: std::env::var_os("REPRO_TRACE_DIR").map(PathBuf::from),
            cache: RunCache::from_env().map(Arc::new),
            chaos: ChaosPlan::from_env().map(Arc::new),
            budget: None,
            checkpoint_every,
            metrics,
        }
    }

    /// Builder: write telemetry traces to `dir`.
    pub fn with_trace_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.trace_dir = Some(dir.into());
        self
    }

    /// Builder: consult and fill `cache`.
    pub fn with_cache(mut self, cache: Arc<RunCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Builder: inject harness faults per `chaos`.
    pub fn with_chaos(mut self, chaos: Arc<ChaosPlan>) -> Self {
        self.chaos = Some(chaos);
        self
    }

    /// Builder: draw retries from `budget`.
    pub fn with_budget(mut self, budget: Arc<ErrorBudget>) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Builder: stream run metrics into `hub`.
    pub fn with_metrics(mut self, hub: Arc<MetricsHub>) -> Self {
        self.metrics = Some(hub);
        self
    }

    /// A harness with the context's effort-default repetition count.
    pub fn harness(&self) -> TestHarness {
        self.harness_with_reps(self.effort.repetitions())
    }

    /// A harness with an explicit repetition count (single-run
    /// diagnosis experiments use 1). The supervisor is assembled from
    /// the context: effort-matched retry policy and deadline, the
    /// shared budget, the chaos schedule, and the checkpoint cadence.
    pub fn harness_with_reps(&self, repetitions: usize) -> TestHarness {
        let mut supervisor = Supervisor::for_effort(self.effort);
        if self.checkpoint_every > 0 {
            supervisor = supervisor.with_checkpoint_every(self.checkpoint_every);
        }
        if let Some(budget) = &self.budget {
            supervisor = supervisor.with_budget(budget.clone());
        }
        if let Some(chaos) = &self.chaos {
            supervisor = supervisor.with_chaos(chaos.clone());
        }
        if let Some(hub) = &self.metrics {
            supervisor = supervisor.with_metrics(hub.clone());
        }
        let mut h = TestHarness::new(repetitions).with_supervisor(supervisor);
        h.trace_dir = self.trace_dir.clone();
        h.cache = self.cache.clone();
        h
    }
}

impl Default for RunCtx {
    fn default() -> Self {
        RunCtx::new(Effort::Standard)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::supervise::DEFAULT_CHECKPOINT_EVERY;

    #[test]
    fn harness_inherits_ctx_settings() {
        let cache = Arc::new(RunCache::new("/tmp/nonexistent-cache-dir-for-test"));
        let ctx = RunCtx::new(Effort::Smoke)
            .with_trace_dir("/tmp/traces")
            .with_cache(cache);
        let h = ctx.harness();
        assert_eq!(h.repetitions, Effort::Smoke.repetitions());
        assert_eq!(h.trace_dir.as_deref(), Some(std::path::Path::new("/tmp/traces")));
        assert!(h.cache.is_some());
        assert_eq!(ctx.harness_with_reps(1).repetitions, 1);
    }

    #[test]
    fn plain_ctx_has_no_observers() {
        let ctx = RunCtx::new(Effort::Smoke);
        let h = ctx.harness();
        assert!(h.trace_dir.is_none());
        assert!(h.cache.is_none());
        assert!(h.supervisor.chaos().is_none());
        assert!(h.supervisor.budget().is_none());
        assert!(h.supervisor.metrics().is_none());
    }

    #[test]
    fn metrics_hub_reaches_the_supervisor() {
        let dir = std::env::temp_dir().join(format!("ctx_metrics_{}", std::process::id()));
        let hub = Arc::new(MetricsHub::new(&dir).expect("hub dir"));
        let ctx = RunCtx::new(Effort::Smoke).with_metrics(hub.clone());
        let h = ctx.harness();
        assert!(Arc::ptr_eq(h.supervisor.metrics().expect("metrics wired"), &hub));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn harness_supervisor_matches_effort_and_wiring() {
        let budget = Arc::new(ErrorBudget::new(5));
        let chaos = Arc::new(ChaosPlan::new(99));
        let ctx = RunCtx::new(Effort::Full)
            .with_budget(budget.clone())
            .with_chaos(chaos.clone());
        let h = ctx.harness();
        let sup = &h.supervisor;
        assert_eq!(sup.policy().max_attempts, Effort::Full.retry_attempts());
        assert_eq!(sup.policy().deadline, Effort::Full.rep_deadline());
        assert!(Arc::ptr_eq(sup.budget().expect("budget wired"), &budget));
        assert!(Arc::ptr_eq(sup.chaos().expect("chaos wired"), &chaos));
        // Chaos without an explicit cadence turns checkpointing on.
        assert_eq!(sup.checkpoint_cadence(), DEFAULT_CHECKPOINT_EVERY);
        // An explicit cadence wins.
        let mut ctx2 = RunCtx::new(Effort::Smoke).with_chaos(chaos);
        ctx2.checkpoint_every = 7;
        assert_eq!(ctx2.harness().supervisor.checkpoint_cadence(), 7);
    }
}
