//! The sysctl configuration from §III-D.
//!
//! ```text
//! net.core.rmem_max=2147483647
//! net.core.wmem_max=2147483647
//! net.ipv4.tcp_rmem=4096 131072 2147483647
//! net.ipv4.tcp_wmem=4096 16384 2147483647
//! net.ipv4.tcp_no_metrics_save=1
//! net.core.default_qdisc=fq
//! net.core.optmem_max=1048576   # needed for MSG_ZEROCOPY
//! ```
//!
//! Stock Ubuntu defaults are much smaller (`tcp_rmem` max of 6 MB,
//! `optmem_max` of 20 KB) — the difference between a working 100G DTN
//! and a sub-gigabit WAN transfer.

use simcore::Bytes;

/// Queueing discipline installed on the egress interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Qdisc {
    /// `fq` — per-flow fair queueing with pacing support; the paper's
    /// recommendation for high-throughput hosts.
    Fq,
    /// `fq_codel` — Ubuntu's default; no fine-grained pacing.
    FqCodel,
}

/// TCP buffer triple: `min default max` as in `tcp_rmem`/`tcp_wmem`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufTriple {
    /// Floor.
    pub min: Bytes,
    /// Initial allocation.
    pub default: Bytes,
    /// Autotuning ceiling.
    pub max: Bytes,
}

impl BufTriple {
    /// Construct, validating ordering.
    pub fn new(min: Bytes, default: Bytes, max: Bytes) -> Self {
        assert!(min <= default && default <= max, "buffer triple must be ordered");
        BufTriple { min, default, max }
    }
}

/// The sysctl set the simulation honours.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SysctlConfig {
    /// `net.ipv4.tcp_rmem` — receive buffer autotuning triple.
    pub tcp_rmem: BufTriple,
    /// `net.ipv4.tcp_wmem` — send buffer autotuning triple.
    pub tcp_wmem: BufTriple,
    /// `net.core.rmem_max` (socket receive ceiling; the autotuner is
    /// bounded by `tcp_rmem.max`, SO_RCVBUF by this).
    pub rmem_max: Bytes,
    /// `net.core.wmem_max`.
    pub wmem_max: Bytes,
    /// `net.core.optmem_max` — ancillary buffer budget per socket;
    /// bounds MSG_ZEROCOPY completion notifications in flight (§IV-B).
    pub optmem_max: Bytes,
    /// `net.core.default_qdisc`.
    pub default_qdisc: Qdisc,
    /// `net.ipv4.tcp_no_metrics_save` — don't seed cwnd from cached
    /// route metrics (keeps repetitions independent).
    pub tcp_no_metrics_save: bool,
}

impl SysctlConfig {
    /// Stock Ubuntu 22.04 defaults.
    pub fn stock() -> Self {
        SysctlConfig {
            tcp_rmem: BufTriple::new(Bytes::new(4096), Bytes::kib(128), Bytes::new(6_291_456)),
            tcp_wmem: BufTriple::new(Bytes::new(4096), Bytes::kib(16), Bytes::new(4_194_304)),
            rmem_max: Bytes::new(212_992),
            wmem_max: Bytes::new(212_992),
            optmem_max: Bytes::kib(20),
            default_qdisc: Qdisc::FqCodel,
            tcp_no_metrics_save: false,
        }
    }

    /// The paper's tuned configuration (§III-D, from fasterdata.es.net).
    pub fn paper_tuned() -> Self {
        let two_gb = Bytes::new(2_147_483_647);
        SysctlConfig {
            tcp_rmem: BufTriple::new(Bytes::new(4096), Bytes::kib(128), two_gb),
            tcp_wmem: BufTriple::new(Bytes::new(4096), Bytes::kib(16), two_gb),
            rmem_max: two_gb,
            wmem_max: two_gb,
            optmem_max: Bytes::mib(1),
            default_qdisc: Qdisc::Fq,
            tcp_no_metrics_save: true,
        }
    }

    /// Tuned, with a specific `optmem_max` (the Fig. 9 sweep).
    pub fn paper_tuned_with_optmem(optmem: Bytes) -> Self {
        let mut cfg = Self::paper_tuned();
        cfg.optmem_max = optmem;
        cfg
    }

    /// The ~3.25 MB value the authors found optimal on kernel 6.5
    /// (§IV-B: 3405376 bytes).
    pub fn optmem_3_25_mb() -> Bytes {
        Bytes::new(3_405_376)
    }

    /// Whether pacing via fq is available.
    pub fn supports_fq_pacing(&self) -> bool {
        self.default_qdisc == Qdisc::Fq
    }
}

impl Default for SysctlConfig {
    fn default() -> Self {
        Self::paper_tuned()
    }
}

impl simcore::Canonicalize for BufTriple {
    fn canonicalize(&self, c: &mut simcore::Canon) {
        c.put_u64("min", self.min.as_u64());
        c.put_u64("default", self.default.as_u64());
        c.put_u64("max", self.max.as_u64());
    }
}

impl simcore::Canonicalize for SysctlConfig {
    fn canonicalize(&self, c: &mut simcore::Canon) {
        c.scope("tcp_rmem", |c| self.tcp_rmem.canonicalize(c));
        c.scope("tcp_wmem", |c| self.tcp_wmem.canonicalize(c));
        c.put_u64("rmem_max", self.rmem_max.as_u64());
        c.put_u64("wmem_max", self.wmem_max.as_u64());
        c.put_u64("optmem_max", self.optmem_max.as_u64());
        c.put_str("default_qdisc", match self.default_qdisc {
            Qdisc::Fq => "fq",
            Qdisc::FqCodel => "fq_codel",
        });
        c.put_bool("tcp_no_metrics_save", self.tcp_no_metrics_save);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stock_vs_tuned_ceilings() {
        let stock = SysctlConfig::stock();
        let tuned = SysctlConfig::paper_tuned();
        assert!(stock.tcp_rmem.max < tuned.tcp_rmem.max);
        assert_eq!(tuned.tcp_rmem.max.as_u64(), 2_147_483_647);
        assert_eq!(stock.optmem_max, Bytes::kib(20));
        assert_eq!(tuned.optmem_max, Bytes::mib(1));
    }

    #[test]
    fn qdisc_gates_pacing() {
        assert!(!SysctlConfig::stock().supports_fq_pacing());
        assert!(SysctlConfig::paper_tuned().supports_fq_pacing());
    }

    #[test]
    fn optmem_sweep_values() {
        let small = SysctlConfig::paper_tuned_with_optmem(Bytes::kib(20));
        assert_eq!(small.optmem_max, Bytes::kib(20));
        assert_eq!(SysctlConfig::optmem_3_25_mb().as_u64(), 3_405_376);
    }

    #[test]
    #[should_panic(expected = "ordered")]
    fn unordered_triple_rejected() {
        let _ = BufTriple::new(Bytes::kib(64), Bytes::kib(16), Bytes::mib(1));
    }
}
