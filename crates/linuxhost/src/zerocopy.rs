//! MSG_ZEROCOPY completion accounting.
//!
//! A `sendmsg(MSG_ZEROCOPY)` pins the user pages and, when the data is
//! finally ACKed, posts a completion notification on the socket error
//! queue. The memory charged for pending notifications is bounded by
//! `net.core.optmem_max`; when the budget is exhausted **the kernel
//! silently falls back to copying** (the completion carries
//! `SO_EE_CODE_ZEROCOPY_COPIED`). A fallback send is *worse* than a
//! plain copy: it pays the copy plus the pin attempt and notification
//! machinery.
//!
//! This is the mechanism behind Fig. 9: on a 104 ms path at 50 Gbps the
//! flow keeps ~650 MB in flight; with `optmem_max = 1 MB` only ~300 MB
//! of sends can hold a pending notification, so roughly half the bytes
//! are silently copied and the sender burns CPU. At ~3.25 MB the whole
//! window fits and the path runs at the paced rate with minimal CPU.

use crate::kernel::KernelVersion;
use simcore::Bytes;

/// Effective `optmem` charge per in-flight zerocopy send on 5.x/6.5
/// kernels.
///
/// The kernel charges the truesize of the error-queue skb; consecutive
/// completions coalesce, so the *effective* cost per 64 KB burst is
/// well below a full skb. The pinned window of a busy sender is about
/// *twice* the BDP (send-buffer autotuning writes ahead of the wire by
/// ~2×cwnd), so 185 bytes/burst — ≈ 370 MB of pinned data per MB of
/// optmem — reproduces the Fig. 9 crossover on kernel 6.5: 1 MB covers
/// the 25/54 ms windows (~50 Gbps) but leaves the 104 ms path in a
/// copy-fallback equilibrium near 40 Gbps, and 3.25 MB (~1.2 GB
/// pinned) restores full rate everywhere.
pub const NOTIFICATION_CHARGE: Bytes = Bytes::new(185);

/// Effective charge on 6.8+, where completion coalescing is more
/// aggressive — the paper notes optmem behaviour "didn't have
/// consistent behaviour across all kernel versions" (§IV-B), and the
/// Fig. 5 results (kernel 6.8) sustain 50 Gbps at 104 ms with the
/// 1 MB setting (2×BDP ≈ 1.3 GB pinned).
pub const NOTIFICATION_CHARGE_68: Bytes = Bytes::new(40);

/// The per-send charge for a given kernel.
pub fn notification_charge(kernel: KernelVersion) -> Bytes {
    if kernel >= KernelVersion::L6_8 {
        NOTIFICATION_CHARGE_68
    } else {
        NOTIFICATION_CHARGE
    }
}

/// How a given send was executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOutcome {
    /// Pages pinned; no copy. Completion pending until ACKed.
    Zerocopy,
    /// Budget exhausted: data copied despite MSG_ZEROCOPY
    /// (`SO_EE_CODE_ZEROCOPY_COPIED`).
    CopiedFallback,
}

/// Per-socket zerocopy accounting state.
#[derive(Debug, Clone)]
pub struct ZerocopyAccounting {
    optmem_max: Bytes,
    charge: Bytes,
    charged: Bytes,
    /// Sends that ran true zerocopy.
    zerocopy_sends: u64,
    /// Sends that fell back to copying.
    fallback_sends: u64,
}

impl ZerocopyAccounting {
    /// New accounting against the given `optmem_max`, with the 5.x/6.5
    /// per-send charge.
    pub fn new(optmem_max: Bytes) -> Self {
        Self::with_charge(optmem_max, NOTIFICATION_CHARGE)
    }

    /// Accounting with the kernel-appropriate charge.
    pub fn for_kernel(optmem_max: Bytes, kernel: KernelVersion) -> Self {
        Self::with_charge(optmem_max, notification_charge(kernel))
    }

    /// Accounting with an explicit per-send charge.
    pub fn with_charge(optmem_max: Bytes, charge: Bytes) -> Self {
        assert!(!charge.is_zero(), "charge must be positive");
        ZerocopyAccounting {
            optmem_max,
            charge,
            charged: Bytes::ZERO,
            zerocopy_sends: 0,
            fallback_sends: 0,
        }
    }

    /// Attempt a zerocopy send. Returns the outcome; on
    /// [`SendOutcome::Zerocopy`] the charge stays outstanding until
    /// [`Self::complete`] is called (when the burst is fully ACKed).
    pub fn try_send(&mut self) -> SendOutcome {
        let after = self.charged + self.charge;
        if after > self.optmem_max {
            self.fallback_sends += 1;
            SendOutcome::CopiedFallback
        } else {
            self.charged = after;
            self.zerocopy_sends += 1;
            SendOutcome::Zerocopy
        }
    }

    /// Release the charge for one completed zerocopy send.
    pub fn complete(&mut self) {
        debug_assert!(
            self.charged >= self.charge,
            "completing more zerocopy sends than outstanding"
        );
        self.charged = self.charged.saturating_sub(self.charge);
    }

    /// Outstanding charged bytes.
    pub fn charged(&self) -> Bytes {
        self.charged
    }

    /// Maximum payload bytes that can be in flight as true zerocopy,
    /// assuming `burst`-sized sends.
    pub fn max_pinned_bytes(&self, burst: Bytes) -> Bytes {
        let slots = self.optmem_max.as_u64() / self.charge.as_u64();
        Bytes::new(slots * burst.as_u64())
    }

    /// Count of true zerocopy sends.
    pub fn zerocopy_sends(&self) -> u64 {
        self.zerocopy_sends
    }

    /// Count of fallback (copied) sends.
    pub fn fallback_sends(&self) -> u64 {
        self.fallback_sends
    }

    /// Fraction of sends that fell back, in `[0, 1]`.
    pub fn fallback_fraction(&self) -> f64 {
        let total = self.zerocopy_sends + self.fallback_sends;
        if total == 0 { 0.0 } else { self.fallback_sends as f64 / total as f64 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_until_budget_then_falls_back() {
        // Budget for exactly 4 notifications.
        let mut acct = ZerocopyAccounting::new(Bytes::new(4 * 185));
        for _ in 0..4 {
            assert_eq!(acct.try_send(), SendOutcome::Zerocopy);
        }
        assert_eq!(acct.try_send(), SendOutcome::CopiedFallback);
        assert_eq!(acct.zerocopy_sends(), 4);
        assert_eq!(acct.fallback_sends(), 1);
        acct.complete();
        assert_eq!(acct.try_send(), SendOutcome::Zerocopy);
    }

    #[test]
    fn paper_scale_1mb_pins_370mb() {
        let acct = ZerocopyAccounting::new(Bytes::mib(1));
        let pinned = acct.max_pinned_bytes(Bytes::kib(64));
        let mb = pinned.as_f64() / 1e6;
        // Covers the 54 ms BDP at 50 Gbps (~340 MB) but only ~60 % of
        // the 104 ms one — the Fig. 9 plateau at ~40 Gbps.
        assert!(
            (340.0..400.0).contains(&mb),
            "1 MB optmem should sustain ~370 MB pinned, got {mb:.0} MB"
        );
    }

    #[test]
    fn paper_scale_3_25mb_covers_104ms_pinned_window() {
        let acct = ZerocopyAccounting::new(Bytes::new(3_405_376));
        let pinned = acct.max_pinned_bytes(Bytes::kib(64));
        // The 104 ms BDP at 50 Gbps plus write-ahead ≈ 1.2 GB; 3.25 MB
        // must cover it.
        assert!(pinned.as_u64() > 1_150_000_000, "got {} pinned", pinned);
    }

    #[test]
    fn default_20kb_is_tiny() {
        let acct = ZerocopyAccounting::new(Bytes::kib(20));
        let pinned = acct.max_pinned_bytes(Bytes::kib(64));
        assert!(pinned.as_u64() < 20_000_000, "20 KB optmem must pin < 20 MB");
    }

    #[test]
    fn fallback_fraction() {
        let mut acct = ZerocopyAccounting::new(Bytes::new(185));
        assert_eq!(acct.fallback_fraction(), 0.0);
        acct.try_send();
        acct.try_send();
        assert!((acct.fallback_fraction() - 0.5).abs() < 1e-12);
    }
}
