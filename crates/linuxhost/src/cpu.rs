//! CPU packages and core-affinity policy.
//!
//! The paper's two testbeds use dual-socket Intel Xeon 6346 (AmLight,
//! 3.1/3.6 GHz, AVX-512) and dual-socket AMD EPYC 73F3 (ESnet,
//! 3.5/4.0 GHz, no AVX-512, CCX-sliced L3). §III-A shows that without
//! explicit affinity ("irqbalance everywhere"), a single 100G flow
//! varies between 20 and 55 Gbps on the same hardware; the paper pins
//! NIC IRQs to cores 0–7 and iperf3 to cores 8–15 on the NIC's NUMA
//! node.

use simcore::Bytes;

/// A CPU package model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CpuArch {
    /// Intel Xeon Gold 6346 (Ice Lake-SP): 16 cores/socket,
    /// 3.1 GHz base / 3.6 GHz boost, AVX-512, 36 MB monolithic L3.
    IntelXeon6346,
    /// AMD EPYC 73F3 (Milan): 16 cores/socket, 3.5 GHz base / 4.0 GHz
    /// boost, no AVX-512 (Zen 3), 32 MB L3 per CCX.
    AmdEpyc73F3,
}

impl CpuArch {
    /// Boost clock in Hz — what a lightly-loaded pinned core runs at
    /// with the performance governor (§III-D sets `cpupower -g
    /// performance` and disables SMT).
    pub fn boost_clock_hz(self) -> f64 {
        match self {
            CpuArch::IntelXeon6346 => 3.6e9,
            CpuArch::AmdEpyc73F3 => 4.0e9,
        }
    }

    /// Base clock in Hz.
    pub fn base_clock_hz(self) -> f64 {
        match self {
            CpuArch::IntelXeon6346 => 3.1e9,
            CpuArch::AmdEpyc73F3 => 3.5e9,
        }
    }

    /// Effective last-level cache visible to one network flow's working
    /// set. Intel Ice Lake has a monolithic 36 MB L3 per socket; Milan's
    /// 32 MB per 4-core CCX is *less* effective for a single flow whose
    /// skb/retransmit-queue working set is touched from several cores.
    pub fn effective_l3(self) -> Bytes {
        match self {
            CpuArch::IntelXeon6346 => Bytes::mib(36),
            CpuArch::AmdEpyc73F3 => Bytes::mib(32),
        }
    }

    /// AVX-512 available (used by 6.x checksum/copy paths — one of the
    /// paper's explanations for Intel's single-stream edge, §IV-A).
    pub fn has_avx512(self) -> bool {
        matches!(self, CpuArch::IntelXeon6346)
    }

    /// Physical cores per socket.
    pub fn cores_per_socket(self) -> u32 {
        16
    }

    /// Short name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            CpuArch::IntelXeon6346 => "Intel Xeon 6346",
            CpuArch::AmdEpyc73F3 => "AMD EPYC 73F3",
        }
    }
}

/// How IRQ and application work is placed on cores.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreAllocation {
    /// Cores dedicated to NIC interrupts (`set_irq_affinity_cpulist.sh`).
    pub irq_cores: Vec<u32>,
    /// Cores the benchmark tool is pinned to (`numactl -C`).
    pub app_cores: Vec<u32>,
    /// `irqbalance` left running: IRQs and the app migrate over all
    /// cores, including cross-NUMA placements — the §III-A variance.
    pub irqbalance: bool,
}

impl CoreAllocation {
    /// The paper's configuration: IRQs on 0-7, iperf3 on 8-15, same
    /// NUMA node as the NIC, irqbalance disabled.
    pub fn paper_tuned() -> Self {
        CoreAllocation {
            irq_cores: (0..8).collect(),
            app_cores: (8..16).collect(),
            irqbalance: false,
        }
    }

    /// Stock configuration: irqbalance spreads IRQs over all 32 cores
    /// and the scheduler places the app anywhere.
    pub fn stock(total_cores: u32) -> Self {
        CoreAllocation {
            irq_cores: (0..total_cores).collect(),
            app_cores: (0..total_cores).collect(),
            irqbalance: true,
        }
    }

    /// Whether IRQ and app core sets are disjoint (the §III-A advice:
    /// "applications should not be pinned to cores that handle
    /// interrupts from the NIC").
    pub fn is_separated(&self) -> bool {
        !self.irqbalance
            && self.irq_cores.iter().all(|c| !self.app_cores.contains(c))
    }

    /// Validate non-emptiness.
    pub fn validate(&self) -> Result<(), String> {
        if self.irq_cores.is_empty() {
            return Err("no IRQ cores configured".into());
        }
        if self.app_cores.is_empty() {
            return Err("no application cores configured".into());
        }
        Ok(())
    }
}

impl simcore::Canonicalize for CoreAllocation {
    fn canonicalize(&self, c: &mut simcore::Canon) {
        let irq: Vec<u64> = self.irq_cores.iter().map(|&x| x as u64).collect();
        let app: Vec<u64> = self.app_cores.iter().map(|&x| x as u64).collect();
        c.put_u64_seq("irq_cores", &irq);
        c.put_u64_seq("app_cores", &app);
        c.put_bool("irqbalance", self.irqbalance);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arch_properties() {
        let intel = CpuArch::IntelXeon6346;
        let amd = CpuArch::AmdEpyc73F3;
        assert!(intel.has_avx512());
        assert!(!amd.has_avx512());
        assert!(amd.boost_clock_hz() > intel.boost_clock_hz());
        assert_eq!(intel.cores_per_socket(), 16);
    }

    #[test]
    fn paper_affinity_is_separated() {
        let a = CoreAllocation::paper_tuned();
        assert!(a.is_separated());
        assert!(a.validate().is_ok());
        assert_eq!(a.irq_cores, (0..8).collect::<Vec<_>>());
        assert_eq!(a.app_cores, (8..16).collect::<Vec<_>>());
    }

    #[test]
    fn stock_affinity_overlaps() {
        let a = CoreAllocation::stock(32);
        assert!(!a.is_separated());
        assert!(a.irqbalance);
        assert_eq!(a.irq_cores.len(), 32);
    }

    #[test]
    fn validation_catches_empty_sets() {
        let a = CoreAllocation { irq_cores: vec![], app_cores: vec![1], irqbalance: false };
        assert!(a.validate().is_err());
        let b = CoreAllocation { irq_cores: vec![0], app_cores: vec![], irqbalance: false };
        assert!(b.validate().is_err());
    }
}
