//! Streaming statistics.
//!
//! The paper's harness reports, per test configuration, the mean,
//! standard deviation, minimum and maximum over ≥10 repetitions
//! (Tables I–III; the "thin line at the top of each result" in the bar
//! plots is one standard deviation). [`RunningStats`] accumulates those
//! with Welford's online algorithm; [`Summary`] is the frozen result.

use std::fmt;

/// Welford online accumulator for mean/variance/min/max.
#[derive(Debug, Clone, Default)]
pub struct RunningStats {
    n: u64,
    skipped: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            n: 0,
            skipped: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation. A non-finite observation (NaN, ±inf) would
    /// corrupt the mean/min/max permanently, so it is skipped and
    /// counted in [`RunningStats::skipped`] instead of accumulated.
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            self.skipped += 1;
            return;
        }
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Add many observations.
    pub fn extend(&mut self, xs: impl IntoIterator<Item = f64>) {
        for x in xs {
            self.push(x);
        }
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Non-finite observations rejected by [`RunningStats::push`].
    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    /// Mean of observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 { 0.0 } else { self.mean }
    }

    /// Sample standard deviation (n-1 denominator; 0 for n < 2).
    pub fn stdev(&self) -> f64 {
        if self.n < 2 { 0.0 } else { (self.m2 / (self.n - 1) as f64).sqrt() }
    }

    /// Minimum observation (0 when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 { 0.0 } else { self.min }
    }

    /// Maximum observation (0 when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 { 0.0 } else { self.max }
    }

    /// Freeze into a [`Summary`].
    pub fn summary(&self) -> Summary {
        Summary {
            n: self.n,
            mean: self.mean(),
            stdev: self.stdev(),
            min: self.min(),
            max: self.max(),
        }
    }
}

/// Frozen summary statistics for one test configuration.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    /// Number of observations.
    pub n: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub stdev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarise a slice in one call.
    pub fn of(xs: &[f64]) -> Summary {
        let mut s = RunningStats::new();
        s.extend(xs.iter().copied());
        s.summary()
    }

    /// Coefficient of variation (stdev/mean), 0 when the mean is 0.
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 { 0.0 } else { self.stdev / self.mean }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mean={:.2} stdev={:.2} min={:.2} max={:.2} (n={})",
            self.mean, self.stdev, self.min, self.max, self.n
        )
    }
}

/// Percentile of a sample via linear interpolation (p in `[0, 100]`).
///
/// Non-finite samples are filtered out (matching
/// [`RunningStats::push`]) rather than panicking the comparison sort;
/// a slice with no finite samples reads as 0.0. Filters and sorts a
/// copy on every call — fine for one-shot harness summaries, but a
/// caller reading several percentiles from the same sample should sort
/// once and use [`percentile_sorted`].
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    let mut v: Vec<f64> = xs.iter().copied().filter(|x| x.is_finite()).collect();
    v.sort_by(|a, b| a.partial_cmp(b).expect("filtered samples are comparable"));
    percentile_sorted(&v, p)
}

/// Percentile of an already-sorted (ascending) sample of finite values,
/// without allocating or re-sorting — the cheap path when extracting
/// many percentiles from one sample.
///
/// Edge cases match [`percentile`]: an empty slice reads as 0.0 and a
/// single-element slice reads as that element for every `p`. Debug
/// builds assert the slice really is sorted; release builds trust the
/// caller (interpolation between misordered neighbours is garbage-in,
/// garbage-out, never a panic).
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p), "percentile out of range");
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "percentile_sorted requires an ascending sample"
    );
    match sorted {
        [] => 0.0,
        [only] => *only,
        _ => {
            let rank = p / 100.0 * (sorted.len() - 1) as f64;
            let lo = rank.floor() as usize;
            let hi = rank.ceil() as usize;
            let frac = rank - lo as f64;
            sorted[lo] + (sorted[hi] - sorted[lo]) * frac
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample stdev of this classic set is ~2.138.
        assert!((s.stdev - 2.138089935).abs() < 1e-6);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.n, 8);
    }

    #[test]
    fn empty_and_single() {
        let s = Summary::of(&[]);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.stdev, 0.0);
        let s1 = Summary::of(&[3.5]);
        assert_eq!(s1.mean, 3.5);
        assert_eq!(s1.stdev, 0.0);
        assert_eq!(s1.min, 3.5);
        assert_eq!(s1.max, 3.5);
    }

    #[test]
    fn percentiles() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 50.0), 3.0);
        assert_eq!(percentile(&xs, 100.0), 5.0);
        assert_eq!(percentile(&xs, 25.0), 2.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7.0], 90.0), 7.0);
    }

    #[test]
    fn non_finite_observations_skipped_and_counted() {
        let mut s = RunningStats::new();
        s.push(1.0);
        s.push(f64::NAN);
        s.push(3.0);
        s.push(f64::INFINITY);
        s.push(f64::NEG_INFINITY);
        assert_eq!(s.count(), 2);
        assert_eq!(s.skipped(), 3);
        assert!((s.mean() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 3.0);
        // The frozen summary is untouched by the skipped samples.
        let frozen = s.summary();
        assert_eq!(frozen.n, 2);
        assert!(frozen.mean.is_finite() && frozen.stdev.is_finite());
    }

    #[test]
    fn percentile_filters_non_finite() {
        let xs = [1.0, f64::NAN, 2.0, f64::INFINITY, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&xs, 50.0), 3.0);
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 5.0);
        // All-non-finite degrades to zero, like an empty sample.
        assert_eq!(percentile(&[f64::NAN, f64::INFINITY], 50.0), 0.0);
    }

    #[test]
    fn percentile_sorted_matches_unsorted_path() {
        // Same sample, shuffled vs pre-sorted: identical answers at
        // every probed percentile, with no allocation on the fast path.
        let shuffled = [9.0, 1.0, 5.0, 3.0, 7.0, 2.0, 8.0, 4.0, 6.0];
        let mut sorted = shuffled;
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            assert_eq!(percentile(&shuffled, p), percentile_sorted(&sorted, p), "p={p}");
        }
    }

    #[test]
    fn percentile_empty_slice_reads_zero() {
        for p in [0.0, 50.0, 100.0] {
            assert_eq!(percentile(&[], p), 0.0);
            assert_eq!(percentile_sorted(&[], p), 0.0);
        }
    }

    #[test]
    fn percentile_single_element_reads_that_element() {
        for p in [0.0, 1.0, 50.0, 99.0, 100.0] {
            assert_eq!(percentile(&[42.5], p), 42.5);
            assert_eq!(percentile_sorted(&[42.5], p), 42.5);
        }
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn percentile_rejects_out_of_range_p() {
        percentile_sorted(&[1.0, 2.0], 101.0);
    }

    #[test]
    fn cv_handles_zero_mean() {
        let s = Summary::of(&[0.0, 0.0]);
        assert_eq!(s.cv(), 0.0);
        let s2 = Summary::of(&[10.0, 10.0, 10.0]);
        assert_eq!(s2.cv(), 0.0);
    }

    #[test]
    fn welford_matches_two_pass() {
        // Property-ish check against the naive two-pass formula.
        let xs: Vec<f64> = (0..500).map(|i| ((i * 37) % 113) as f64 * 0.25).collect();
        let s = Summary::of(&xs);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((s.mean - mean).abs() < 1e-9);
        assert!((s.stdev - var.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn display_is_compact() {
        let s = Summary::of(&[1.0, 3.0]);
        let out = format!("{s}");
        assert!(out.contains("mean=2.00"));
        assert!(out.contains("n=2"));
    }
}
