//! Checkpoint cadence policy for long runs.
//!
//! A checkpoint of the simulator is a deep clone of the whole engine
//! state — event-queue keys and payload slab ([`crate::EventQueue`] is
//! `Clone` when its payload is), RNG, watchdog, and whatever
//! domain-layer state rides on top. Snapshots are only taken *between*
//! events (never mid-dispatch), which makes them barrier-safe by
//! construction: resuming from one replays the identical (time, seq)
//! total order as a straight-through run.
//!
//! Cloning a large slab is not free, so checkpoints are taken on a
//! cadence measured in dispatched events. This module owns that cadence
//! logic; the domain layers own the actual snapshot types.

/// When to take snapshots, measured in dispatched events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Take a snapshot every `every_events` dispatched events.
    /// `0` disables checkpointing entirely.
    pub every_events: u64,
}

impl CheckpointPolicy {
    /// Checkpointing disabled.
    pub const DISABLED: CheckpointPolicy = CheckpointPolicy { every_events: 0 };

    /// A policy snapshotting every `every_events` events (`0` disables).
    pub fn every(every_events: u64) -> Self {
        CheckpointPolicy { every_events }
    }

    /// Whether this policy ever takes snapshots.
    pub fn enabled(&self) -> bool {
        self.every_events > 0
    }
}

/// Tracks progress against a [`CheckpointPolicy`].
///
/// Drive it with the engine's monotone dispatched-event counter and
/// snapshot whenever [`Checkpointer::due`] fires:
///
/// ```
/// use simcore::checkpoint::{CheckpointPolicy, Checkpointer};
/// let mut ck = Checkpointer::new(CheckpointPolicy::every(100));
/// assert!(!ck.due(50));
/// assert!(ck.due(100)); // crossed the first boundary
/// assert!(!ck.due(150));
/// assert!(ck.due(275)); // boundaries may be crossed in one stride
/// ```
#[derive(Debug, Clone)]
pub struct Checkpointer {
    policy: CheckpointPolicy,
    /// Event count at the last snapshot (or start).
    last_at: u64,
    /// Snapshots taken so far.
    taken: u64,
}

impl Checkpointer {
    /// A checkpointer starting from event count zero.
    pub fn new(policy: CheckpointPolicy) -> Self {
        Checkpointer { policy, last_at: 0, taken: 0 }
    }

    /// Report the engine's total dispatched-event count; returns `true`
    /// when a snapshot is due (and records it as taken). Stepping over
    /// several boundaries at once yields a single snapshot — the caller
    /// steps in bounded chunks, so cadence error is bounded too.
    pub fn due(&mut self, events_done: u64) -> bool {
        if !self.policy.enabled() || events_done < self.last_at {
            return false;
        }
        if events_done - self.last_at >= self.policy.every_events {
            self.last_at = events_done;
            self.taken += 1;
            true
        } else {
            false
        }
    }

    /// Snapshots recorded via [`Checkpointer::due`] so far.
    pub fn taken(&self) -> u64 {
        self.taken
    }

    /// The policy driving this checkpointer.
    pub fn policy(&self) -> CheckpointPolicy {
        self.policy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_policy_never_fires() {
        let mut ck = Checkpointer::new(CheckpointPolicy::DISABLED);
        for n in [0, 1, 100, 1_000_000] {
            assert!(!ck.due(n));
        }
        assert_eq!(ck.taken(), 0);
        assert!(!CheckpointPolicy::DISABLED.enabled());
    }

    #[test]
    fn fires_once_per_boundary() {
        let mut ck = Checkpointer::new(CheckpointPolicy::every(10));
        assert!(!ck.due(9));
        assert!(ck.due(10));
        assert!(!ck.due(10), "same count must not double-fire");
        assert!(!ck.due(19));
        assert!(ck.due(20));
        assert_eq!(ck.taken(), 2);
    }

    #[test]
    fn large_strides_fire_once() {
        let mut ck = Checkpointer::new(CheckpointPolicy::every(100));
        assert!(ck.due(1_000), "one snapshot even after skipping 10 boundaries");
        assert!(!ck.due(1_050));
        assert!(ck.due(1_100));
        assert_eq!(ck.taken(), 2);
    }

    #[test]
    fn regressing_counter_is_ignored() {
        // A resumed run re-reports counts from the snapshot point; a
        // count below `last_at` must never fire or underflow.
        let mut ck = Checkpointer::new(CheckpointPolicy::every(10));
        assert!(ck.due(10));
        assert!(!ck.due(5));
        assert!(ck.due(20));
    }
}
