//! Congestion-control algorithms.
//!
//! The paper runs CUBIC for all reported results and notes (§IV-F)
//! that BBRv1/BBRv3 performed similarly on their loss-free testbeds,
//! ramped faster on the WAN, retransmitted more (especially BBRv1),
//! and benefited strongly from pacing in parallel-stream runs. All
//! three are provided so those comparisons can be reproduced.

pub mod bbr;
pub mod cubic;
pub mod htcp;

use simcore::{BitRate, Bytes, SimDuration, SimTime};

pub use bbr::Bbr;
pub use cubic::Cubic;
pub use htcp::Htcp;

/// Hard congestion-window floor, in segments. No response — loss cut,
/// RTO, or a BBRv3 inflight cap — may leave the window below two MSS
/// (RFC 5681's loss-window minimum, which Linux also enforces for its
/// loss-based controllers). `tests/cc_differential.rs` pins this as a
/// shared invariant across every [`CcAlgorithm`].
pub const MIN_CWND_SEGMENTS: u64 = 2;

/// Selector for a congestion-control algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CcAlgorithm {
    /// CUBIC (Linux default; the paper's choice).
    #[default]
    Cubic,
    /// BBR version 1.
    BbrV1,
    /// BBR version 3 (simplified: loss response, inflight bounds,
    /// probe headroom, faster ProbeRTT cadence).
    BbrV3,
    /// H-TCP (RTT-scaled additive increase, adaptive backoff).
    Htcp,
}

/// A congestion-control name that matches no known algorithm.
///
/// Scenario loaders must surface this as a typed error — silently
/// falling back to CUBIC would run (and cache) the wrong controller
/// under the requested label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownCcError {
    /// The name that failed to parse.
    pub name: String,
}

impl std::fmt::Display for UnknownCcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown congestion-control algorithm {:?} (expected one of: {})",
            self.name,
            CcAlgorithm::ALL
                .iter()
                .map(|a| a.name())
                .collect::<Vec<_>>()
                .join(", ")
        )
    }
}

impl std::error::Error for UnknownCcError {}

impl CcAlgorithm {
    /// Every supported algorithm, in sweep order.
    pub const ALL: [CcAlgorithm; 4] =
        [CcAlgorithm::Cubic, CcAlgorithm::BbrV1, CcAlgorithm::BbrV3, CcAlgorithm::Htcp];

    /// Instantiate the algorithm. `mss` is the wire segment size,
    /// `init_cwnd` the initial window in bytes.
    pub fn build(self, mss: Bytes, init_cwnd: Bytes) -> Box<dyn CongestionControl> {
        match self {
            CcAlgorithm::Cubic => Box::new(Cubic::new(mss, init_cwnd)),
            CcAlgorithm::BbrV1 => Box::new(Bbr::v1(mss, init_cwnd)),
            CcAlgorithm::BbrV3 => Box::new(Bbr::v3(mss, init_cwnd)),
            CcAlgorithm::Htcp => Box::new(Htcp::new(mss, init_cwnd)),
        }
    }

    /// sysctl-style name.
    pub fn name(self) -> &'static str {
        match self {
            CcAlgorithm::Cubic => "cubic",
            CcAlgorithm::BbrV1 => "bbr",
            CcAlgorithm::BbrV3 => "bbr3",
            CcAlgorithm::Htcp => "htcp",
        }
    }
}

impl std::fmt::Display for CcAlgorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for CcAlgorithm {
    type Err = UnknownCcError;

    /// Parse a sysctl-style name; the exact inverse of
    /// [`CcAlgorithm::name`]. Unknown names are a typed error, never a
    /// default.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        CcAlgorithm::ALL
            .iter()
            .copied()
            .find(|a| a.name() == s)
            .ok_or_else(|| UnknownCcError { name: s.to_string() })
    }
}

/// The interface `TcpSender` drives.
pub trait CongestionControl: std::fmt::Debug + Send {
    /// Bytes newly acknowledged; `rtt` is the sample for this ACK (if
    /// usable), `inflight` the bytes outstanding after the ACK.
    /// `cwnd_limited` reports whether the flow was actually using its
    /// whole window — loss-based algorithms must not grow cwnd while
    /// application- or pacing-limited (Linux's `is_cwnd_limited`).
    fn on_ack(
        &mut self,
        acked: Bytes,
        rtt: Option<SimDuration>,
        now: SimTime,
        inflight: Bytes,
        cwnd_limited: bool,
    );

    /// A loss episode began (at most once per round trip).
    fn on_loss(&mut self, now: SimTime);

    /// Retransmission timeout fired.
    fn on_rto(&mut self, now: SimTime);

    /// Current congestion window in bytes.
    fn cwnd(&self) -> Bytes;

    /// Slow-start threshold, for `ss -tin`-style telemetry. `None`
    /// when the algorithm has no meaningful ssthresh yet (pre-loss
    /// CUBIC reports TCP_INFINITE_SSTHRESH; model-based BBR has none).
    fn ssthresh(&self) -> Option<Bytes> {
        None
    }

    /// Whether the algorithm is still in its startup phase.
    fn in_slow_start(&self) -> bool;

    /// The rate TCP paces itself at through fq (before any `--fq-rate`
    /// cap). `srtt` is the current smoothed RTT.
    fn pacing_rate(&self, srtt: SimDuration) -> BitRate;

    /// Algorithm name.
    fn name(&self) -> &'static str;

    /// Deep-copy the algorithm state behind the trait object, so the
    /// whole sender (and therefore a running simulation) can be
    /// snapshotted for checkpoint/resume.
    fn clone_box(&self) -> Box<dyn CongestionControl>;
}

impl Clone for Box<dyn CongestionControl> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Shared helper: rate = window / srtt × ratio.
pub(crate) fn window_rate(cwnd: Bytes, srtt: SimDuration, ratio: f64) -> BitRate {
    if srtt.is_zero() {
        return BitRate::gbps(1000.0); // effectively unpaced until an RTT exists
    }
    BitRate::from_bps(cwnd.bits() as f64 / srtt.as_secs_f64() * ratio)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_builds_each_algorithm() {
        let mss = Bytes::new(9000);
        let iw = Bytes::kib(128);
        for (alg, name) in [
            (CcAlgorithm::Cubic, "cubic"),
            (CcAlgorithm::BbrV1, "bbr"),
            (CcAlgorithm::BbrV3, "bbr3"),
            (CcAlgorithm::Htcp, "htcp"),
        ] {
            let cc = alg.build(mss, iw);
            assert_eq!(cc.name(), name);
            assert_eq!(alg.name(), name);
            assert!(cc.cwnd() >= iw);
            assert!(cc.in_slow_start());
        }
    }

    #[test]
    fn name_parse_round_trips_every_algorithm() {
        for alg in CcAlgorithm::ALL {
            let rendered = alg.to_string();
            assert_eq!(rendered, alg.name());
            let parsed: CcAlgorithm = rendered.parse().expect("round-trip");
            assert_eq!(parsed, alg);
        }
    }

    #[test]
    fn unknown_name_is_a_typed_error_not_a_fallback() {
        for bad in ["reno", "CUBIC", "bbr2", ""] {
            let err = bad.parse::<CcAlgorithm>().unwrap_err();
            assert_eq!(err.name, bad);
            let msg = err.to_string();
            assert!(msg.contains("unknown congestion-control"), "message: {msg}");
            assert!(msg.contains("htcp"), "message must list the options: {msg}");
        }
    }

    #[test]
    fn window_rate_math() {
        let r = window_rate(Bytes::new(1_250_000), SimDuration::from_millis(1), 1.0);
        assert!((r.as_gbps() - 10.0).abs() < 1e-9);
        let r2 = window_rate(Bytes::new(1_250_000), SimDuration::from_millis(1), 1.2);
        assert!((r2.as_gbps() - 12.0).abs() < 1e-9);
        // Zero srtt: effectively unlimited.
        assert!(window_rate(Bytes::kib(64), SimDuration::ZERO, 2.0).as_gbps() > 500.0);
    }
}
