//! `bench` — benchmark scenarios and the timing harness shared by the
//! bench targets (plain `main()` binaries, `harness = false`).
//!
//! Three bench suites live in `benches/`:
//!
//! * `simulator` — raw discrete-event-simulator performance
//!   (events/second) on representative workloads;
//! * `experiments` — one target per paper table/figure, each running
//!   that artefact's headline scenario end to end (the full
//!   multi-repetition regeneration lives in the `repro` binary of the
//!   `harness` crate: `cargo run -p harness --bin repro -- all`);
//! * `ablation_mechanisms` — the cost of individual mechanisms
//!   (zerocopy accounting, pacing, loss recovery) measured by toggling
//!   them on one fixed scenario.

#![deny(unreachable_pub)]
// Recoverable failures carry typed errors; every surviving `expect`
// states its infallibility argument (tests are exempt).
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dtnperf::iperf3::RunError;
use dtnperf::prelude::*;

pub mod ledger;
pub mod timing;

/// A named, ready-to-run single scenario for benches.
pub struct BenchScenario {
    /// Bench target id.
    pub name: &'static str,
    /// Client/server host.
    pub host: HostConfig,
    /// Path.
    pub path: PathSpec,
    /// iperf3 flags.
    pub opts: Iperf3Opts,
    /// Injected faults (none for most scenarios).
    pub faults: FaultPlan,
}

impl BenchScenario {
    /// Execute once, returning total goodput in Gbps (so the timing
    /// loop can assert the run really happened). A broken scenario
    /// surfaces as the runner's classed [`RunError`] — flag validation
    /// vs simulation failure — instead of a panic, so bench targets can
    /// say *which* scenario failed and why.
    pub fn run(&self) -> Result<f64, RunError> {
        Ok(dtnperf::iperf3::run_with_faults(
            &self.host,
            &self.host,
            &self.path,
            &self.opts,
            &self.faults,
            None,
        )?
        .sum_bitrate()
        .as_gbps())
    }

    /// [`BenchScenario::run`] for `main()`-style bench targets: on
    /// failure, print a classed one-liner naming the scenario and exit
    /// non-zero (2 = invalid configuration, 3 = simulation error)
    /// rather than unwinding through the timing loop with a backtrace.
    pub fn run_or_exit(&self) -> f64 {
        match self.run() {
            Ok(gbps) => gbps,
            Err(err) => {
                let (class, code) = match &err {
                    RunError::Invalid(_) => ("invalid configuration", 2),
                    RunError::Sim(_) => ("simulation error", 3),
                };
                eprintln!("bench: scenario {} failed ({class}): {err}", self.name);
                std::process::exit(code);
            }
        }
    }
}

/// Short-duration options used by bench targets.
pub fn quick_opts(secs: u64) -> Iperf3Opts {
    Iperf3Opts::new(secs).omit(0)
}

/// The headline scenario of each paper artefact, one per entry.
pub fn paper_scenarios() -> Vec<BenchScenario> {
    let intel68 = Testbeds::amlight_host(KernelVersion::L6_8);
    let intel65 = Testbeds::amlight_host(KernelVersion::L6_5);
    let intel510 = Testbeds::amlight_host(KernelVersion::L5_10);
    let amd68 = Testbeds::esnet_host(KernelVersion::L6_8);
    let amd515 = Testbeds::esnet_host(KernelVersion::L5_15);
    let mut bigtcp = intel68.clone();
    bigtcp.offload = bigtcp
        .offload
        .with_big_tcp(dtnperf::linuxhost::offload::PAPER_BIG_TCP_SIZE, KernelVersion::L6_8);

    vec![
        BenchScenario {
            name: "fig04_vm_vs_baremetal",
            host: intel510,
            path: Testbeds::amlight_path(AmLightPath::Lan),
            opts: quick_opts(2),
            faults: FaultPlan::none(),
        },
        BenchScenario {
            name: "fig05_single_stream_amlight",
            host: intel68.clone(),
            path: Testbeds::amlight_path(AmLightPath::Wan25ms),
            opts: quick_opts(4).zerocopy().fq_rate(BitRate::gbps(50.0)),
            faults: FaultPlan::none(),
        },
        BenchScenario {
            name: "fig06_single_stream_esnet",
            host: amd68.clone(),
            path: Testbeds::esnet_path(EsnetPath::Wan),
            opts: quick_opts(4).zerocopy().fq_rate(BitRate::gbps(40.0)),
            faults: FaultPlan::none(),
        },
        BenchScenario {
            name: "fig07_cpu_intel",
            host: intel65.clone(),
            path: Testbeds::amlight_path(AmLightPath::Lan),
            opts: quick_opts(2),
            faults: FaultPlan::none(),
        },
        BenchScenario {
            name: "fig08_cpu_amd",
            host: Testbeds::esnet_host(KernelVersion::L6_5),
            path: Testbeds::esnet_path(EsnetPath::Lan),
            opts: quick_opts(2),
            faults: FaultPlan::none(),
        },
        BenchScenario {
            name: "fig09_optmem_sweep",
            host: intel65.with_optmem(Bytes::mib(1)),
            path: Testbeds::amlight_path(AmLightPath::Wan104ms),
            opts: quick_opts(5).zerocopy().fq_rate(BitRate::gbps(50.0)),
            faults: FaultPlan::none(),
        },
        BenchScenario {
            name: "fig10_multistream_esnet",
            host: amd68.clone(),
            path: Testbeds::esnet_path(EsnetPath::Wan),
            opts: quick_opts(3).parallel(8).zerocopy().fq_rate(BitRate::gbps(15.0)),
            faults: FaultPlan::none(),
        },
        BenchScenario {
            name: "fig11_multistream_amlight",
            host: intel68.clone(),
            path: Testbeds::amlight_path(AmLightPath::Wan25ms),
            opts: quick_opts(3).parallel(8).zerocopy().fq_rate(BitRate::gbps(10.0)),
            faults: FaultPlan::none(),
        },
        BenchScenario {
            name: "fig12_kernels_esnet",
            host: amd515.clone(),
            path: Testbeds::esnet_path(EsnetPath::Lan),
            opts: quick_opts(2),
            faults: FaultPlan::none(),
        },
        BenchScenario {
            name: "fig13_kernels_amlight",
            host: Testbeds::amlight_host(KernelVersion::L5_15),
            path: Testbeds::amlight_path(AmLightPath::Lan),
            opts: quick_opts(2),
            faults: FaultPlan::none(),
        },
        BenchScenario {
            name: "table1_esnet_lan",
            host: amd515.clone(),
            path: Testbeds::esnet_path(EsnetPath::Lan),
            opts: quick_opts(2).parallel(8).fq_rate(BitRate::gbps(15.0)),
            faults: FaultPlan::none(),
        },
        BenchScenario {
            name: "table2_esnet_wan",
            host: amd515,
            path: Testbeds::esnet_path(EsnetPath::Wan),
            opts: quick_opts(4).parallel(8).fq_rate(BitRate::gbps(15.0)),
            faults: FaultPlan::none(),
        },
        BenchScenario {
            name: "table3_flow_control",
            host: Testbeds::prod_dtn_host(),
            path: Testbeds::prod_dtn_path(),
            opts: quick_opts(4).parallel(8).fq_rate(BitRate::gbps(10.0)),
            faults: FaultPlan::none(),
        },
        BenchScenario {
            name: "ext_hw_gro",
            host: {
                let mut cfg = Testbeds::amlight_host(KernelVersion::L6_11);
                cfg.nic = NicModel::ConnectX7;
                cfg.offload = cfg.offload.with_hw_gro(KernelVersion::L6_11);
                cfg
            },
            path: Testbeds::amlight_path(AmLightPath::Lan),
            opts: quick_opts(2),
            faults: FaultPlan::none(),
        },
        BenchScenario {
            name: "ext_bigtcp_zc",
            host: {
                let mut cfg = bigtcp;
                cfg.offload = cfg.offload.with_max_skb_frags(45, KernelVersion::L6_8);
                cfg
            },
            path: Testbeds::amlight_path(AmLightPath::Lan),
            opts: quick_opts(2).zerocopy().fq_rate(BitRate::gbps(85.0)),
            faults: FaultPlan::none(),
        },
        BenchScenario {
            name: "ext_faults_recovery",
            host: amd68,
            path: Testbeds::esnet_path(EsnetPath::Lan),
            opts: quick_opts(3),
            faults: FaultPlan::none().with_link_flap(
                SimDuration::from_millis(1000),
                SimDuration::from_millis(100),
            ),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_paper_artefact_has_a_bench_scenario() {
        let names: Vec<&str> = paper_scenarios().iter().map(|s| s.name).collect();
        assert_eq!(names.len(), 16);
        for prefix in ["fig04", "fig05", "fig06", "fig07", "fig08", "fig09", "fig10", "fig11", "fig12", "fig13", "table1", "table2", "table3", "ext_hw_gro", "ext_bigtcp_zc", "ext_faults"] {
            assert!(
                names.iter().any(|n| n.starts_with(prefix)),
                "no bench scenario for {prefix}"
            );
        }
    }

    #[test]
    fn scenarios_run_and_move_data() {
        // Spot-check a cheap one end to end.
        let scenarios = paper_scenarios();
        let fig12 = scenarios.iter().find(|s| s.name.starts_with("fig12")).unwrap();
        let gbps = fig12.run().expect("fig12 bench scenario is valid");
        assert!(gbps > 10.0, "fig12 bench scenario produced {gbps:.1} Gbps");
    }

    #[test]
    fn broken_scenario_reports_classed_error() {
        let mut bad = paper_scenarios().remove(0);
        bad.opts = Iperf3Opts::new(2).parallel(0); // -P 0 fails flag validation
        match bad.run() {
            Err(RunError::Invalid(msgs)) => {
                assert!(msgs.iter().any(|m| m.contains("-P")), "unexpected messages: {msgs:?}")
            }
            other => panic!("expected classed Invalid error, got {other:?}"),
        }
    }
}
