//! Figures 4–13.

use super::common::{constant_series, cpu_figure, run_row, throughput_figure};
use crate::ctx::RunCtx;
use crate::effort::Effort;
use crate::render::FigureData;
use crate::scenario::Scenario;
use crate::testbeds::{AmLightPath, EsnetPath, Testbeds};
use iperf3sim::Iperf3Opts;
use linuxhost::{HostConfig, KernelVersion, SysctlConfig};
use simcore::BitRate;

/// AmLight zerocopy pacing rate (§IV-A): 50 Gbps.
const AMLIGHT_PACE: f64 = 50.0;
/// ESnet zerocopy pacing rate (§IV-A): 40 Gbps.
const ESNET_PACE: f64 = 40.0;

fn amlight_opts(effort: Effort, path: AmLightPath) -> Iperf3Opts {
    let wan = path != AmLightPath::Lan;
    let secs = if wan { effort.wan_secs() } else { effort.lan_secs() };
    Iperf3Opts::new(secs).omit(effort.omit_secs(wan))
}

fn esnet_opts(effort: Effort, path: EsnetPath) -> Iperf3Opts {
    let wan = path == EsnetPath::Wan;
    let secs = if wan { effort.wan_secs() } else { effort.lan_secs() };
    Iperf3Opts::new(secs).omit(effort.omit_secs(wan))
}

fn amlight_single(
    label: &str,
    host: &HostConfig,
    effort: Effort,
    decorate: impl Fn(Iperf3Opts) -> Iperf3Opts,
) -> (String, Vec<Scenario>) {
    let scenarios = AmLightPath::ALL
        .iter()
        .map(|&p| {
            Scenario::symmetric(
                label,
                host.clone(),
                Testbeds::amlight_path(p),
                decorate(amlight_opts(effort, p)),
            )
        })
        .collect();
    (label.to_string(), scenarios)
}

fn amlight_x_labels() -> Vec<String> {
    AmLightPath::ALL.iter().map(|p| p.label().to_string()).collect()
}

fn esnet_x_labels() -> Vec<String> {
    EsnetPath::ALL.iter().map(|p| p.label().to_string()).collect()
}

/// Fig. 4 — baremetal vs tuned VM on AmLight (Intel, kernel 5.10,
/// single stream, default and zerocopy+pacing): the two environments
/// must agree within the run-to-run spread (§III-H).
pub fn fig04(ctx: &RunCtx) -> Vec<FigureData> {
    let effort = ctx.effort;
    let vm = Testbeds::amlight_host(KernelVersion::L5_10);
    let bm = HostConfig::amlight_intel_baremetal(KernelVersion::L5_10);
    let zc = |o: Iperf3Opts| o.zerocopy().fq_rate(BitRate::gbps(AMLIGHT_PACE));
    let grid = vec![
        amlight_single("baremetal default", &bm, effort, |o| o),
        amlight_single("VM default", &vm, effort, |o| o),
        amlight_single("baremetal zc+pace50", &bm, effort, zc),
        amlight_single("VM zc+pace50", &vm, effort, zc),
    ];
    vec![throughput_figure(
        "Fig. 4: Baremetal vs VM, AmLight (Intel, single stream, kernel 5.10)",
        amlight_x_labels(),
        grid,
        ctx,
    )]
}

/// Fig. 5 — single-stream results at AmLight (Intel, kernel 6.8):
/// default, zerocopy alone, zerocopy+pacing(50G), BIG TCP (150 KB).
pub fn fig05(ctx: &RunCtx) -> Vec<FigureData> {
    let effort = ctx.effort;
    let host = Testbeds::amlight_host(KernelVersion::L6_8);
    let mut bigtcp_host = host.clone();
    bigtcp_host.offload = bigtcp_host
        .offload
        .with_big_tcp(linuxhost::offload::PAPER_BIG_TCP_SIZE, KernelVersion::L6_8);
    let grid = vec![
        amlight_single("default", &host, effort, |o| o),
        amlight_single("zerocopy", &host, effort, |o| o.zerocopy()),
        amlight_single("zerocopy+pacing 50G", &host, effort, |o| {
            o.zerocopy().fq_rate(BitRate::gbps(AMLIGHT_PACE))
        }),
        amlight_single("BIG TCP 150KB", &bigtcp_host, effort, |o| o),
    ];
    vec![throughput_figure(
        "Fig. 5: Single-stream results at AmLight (Intel host, kernel 6.8)",
        amlight_x_labels(),
        grid,
        ctx,
    )]
}

/// Fig. 6 — single-stream results at ESnet (AMD, kernel 6.8): default
/// vs zerocopy+pacing(40G); the WAN catches up to the LAN.
pub fn fig06(ctx: &RunCtx) -> Vec<FigureData> {
    let effort = ctx.effort;
    let host = Testbeds::esnet_host(KernelVersion::L6_8);
    let mk = |label: &str, zc: bool| {
        let scenarios = EsnetPath::ALL
            .iter()
            .map(|&p| {
                let mut opts = esnet_opts(effort, p);
                if zc {
                    opts = opts.zerocopy().fq_rate(BitRate::gbps(ESNET_PACE));
                }
                Scenario::symmetric(label, host.clone(), Testbeds::esnet_path(p), opts)
            })
            .collect();
        (label.to_string(), scenarios)
    };
    let grid = vec![mk("default", false), mk("zerocopy+pacing 40G", true)];
    vec![throughput_figure(
        "Fig. 6: Single-stream results at ESnet (AMD host, kernel 6.8)",
        esnet_x_labels(),
        grid,
        ctx,
    )]
}

/// Fig. 7 — CPU utilisation at various latencies (Intel, single
/// stream, kernel 6.5): on the LAN the receiver is the bottleneck, on
/// the WAN the sender; zerocopy+pacing collapses the sender CPU.
/// Returns the CPU figure and the companion throughput figure.
pub fn fig07(ctx: &RunCtx) -> Vec<FigureData> {
    cpu_latency_figure(
        "Fig. 7: CPU utilisation at various latencies (Intel, single stream, kernel 6.5)",
        &Testbeds::amlight_host(KernelVersion::L6_5),
        ctx,
    )
}

/// Fig. 8 — same study on the ESnet AMD hosts: the same shape at lower
/// throughput, with a hotter sender on the WAN.
pub fn fig08(ctx: &RunCtx) -> Vec<FigureData> {
    let effort = ctx.effort;
    let host = Testbeds::esnet_host(KernelVersion::L6_5);
    let mk = |label: &str, zc: bool| {
        let scenarios: Vec<Scenario> = EsnetPath::ALL
            .iter()
            .map(|&p| {
                let mut opts = esnet_opts(effort, p);
                if zc {
                    opts = opts.zerocopy().fq_rate(BitRate::gbps(ESNET_PACE));
                }
                Scenario::symmetric(label, host.clone(), Testbeds::esnet_path(p), opts)
            })
            .collect();
        (label.to_string(), run_row(&scenarios, ctx))
    };
    let rows = vec![mk("default", false), mk("zc+pace40", true)];
    let mut figs = vec![cpu_figure(
        "Fig. 8: CPU utilisation at various latencies (AMD, single stream)",
        esnet_x_labels(),
        rows.clone(),
    )];
    figs.push(throughput_companion(
        "Fig. 8 (companion): throughput per configuration",
        esnet_x_labels(),
        rows,
    ));
    figs
}

fn cpu_latency_figure(title: &str, host: &HostConfig, ctx: &RunCtx) -> Vec<FigureData> {
    let effort = ctx.effort;
    let mk = |label: &str, zc: bool| {
        let scenarios: Vec<Scenario> = AmLightPath::ALL
            .iter()
            .map(|&p| {
                let mut opts = amlight_opts(effort, p);
                // The zerocopy runs use "optimal settings for
                // optmem_max" (§IV-B) — 3.25 MB on kernel 6.5.
                let mut h = host.clone();
                if zc {
                    opts = opts.zerocopy().fq_rate(BitRate::gbps(AMLIGHT_PACE));
                    h = h.with_optmem(SysctlConfig::optmem_3_25_mb());
                }
                Scenario::symmetric(label, h, Testbeds::amlight_path(p), opts)
            })
            .collect();
        (label.to_string(), run_row(&scenarios, ctx))
    };
    let rows = vec![mk("default", false), mk("zc+pace50", true)];
    let mut figs = vec![cpu_figure(title, amlight_x_labels(), rows.clone())];
    figs.push(throughput_companion(
        "companion: throughput per configuration",
        amlight_x_labels(),
        rows,
    ));
    figs
}

fn throughput_companion(
    title: &str,
    x_labels: Vec<String>,
    rows: Vec<(String, Vec<crate::runner::TestSummary>)>,
) -> FigureData {
    let mut fig = FigureData::new(title, "Gbps", x_labels);
    for (name, summaries) in rows {
        fig.push_series(name, summaries.iter().map(|s| s.throughput_gbps).collect());
    }
    fig
}

/// Fig. 9 — sender performance with zerocopy for various `optmem_max`
/// values (Intel, kernel 6.5, zerocopy + 50 Gbps pacing). Produces the
/// throughput figure and the sender-CPU figure.
pub fn fig09(ctx: &RunCtx) -> Vec<FigureData> {
    let effort = ctx.effort;
    let base = Testbeds::amlight_host(KernelVersion::L6_5);
    let variants = [
        ("optmem 20KB (default)", simcore::Bytes::kib(20)),
        ("optmem 1MB", simcore::Bytes::mib(1)),
        ("optmem 3.25MB", SysctlConfig::optmem_3_25_mb()),
    ];
    let mut tput = FigureData::new(
        "Fig. 9: Sender performance with zerocopy vs optmem_max (Intel, kernel 6.5)",
        "Gbps",
        amlight_x_labels(),
    );
    let mut cpu = FigureData::new(
        "Fig. 9 (CPU): Sender TX-core utilisation vs optmem_max",
        "%",
        amlight_x_labels(),
    );
    for (label, optmem) in variants {
        let host = base.clone().with_optmem(optmem);
        let scenarios: Vec<Scenario> = AmLightPath::ALL
            .iter()
            .map(|&p| {
                Scenario::symmetric(
                    label,
                    host.clone(),
                    Testbeds::amlight_path(p),
                    amlight_opts(effort, p)
                        .zerocopy()
                        .fq_rate(BitRate::gbps(AMLIGHT_PACE)),
                )
            })
            .collect();
        let summaries = run_row(&scenarios, ctx);
        tput.push_series(label, summaries.iter().map(|s| s.throughput_gbps).collect());
        cpu.push_series(label, summaries.iter().map(|s| s.sender_cpu_pct).collect());
    }
    vec![tput, cpu]
}

/// Fig. 10 — 8 parallel flows on the ESnet testbed (kernel 6.8):
/// default vs zerocopy at various pacing rates, against the "Max Tput"
/// line.
pub fn fig10(ctx: &RunCtx) -> Vec<FigureData> {
    let effort = ctx.effort;
    let host = Testbeds::esnet_host(KernelVersion::L6_8);
    let secs = effort.multi_secs();
    let mk = |label: &str, zc: bool, pace: Option<f64>| {
        let scenarios: Vec<Scenario> = EsnetPath::ALL
            .iter()
            .map(|&p| {
                let mut opts = Iperf3Opts::new(secs)
                    .omit(effort.omit_secs(p == EsnetPath::Wan))
                    .parallel(8);
                if zc {
                    opts = opts.zerocopy();
                }
                if let Some(g) = pace {
                    opts = opts.fq_rate(BitRate::gbps(g));
                }
                Scenario::symmetric(label, host.clone(), Testbeds::esnet_path(p), opts)
            })
            .collect();
        (label.to_string(), scenarios)
    };
    let grid = vec![
        mk("default unpaced", false, None),
        mk("zc+pace 25G/flow", true, Some(25.0)),
        mk("zc+pace 20G/flow", true, Some(20.0)),
        mk("zc+pace 15G/flow", true, Some(15.0)),
    ];
    let mut fig = throughput_figure(
        "Fig. 10: 8 parallel flows, ESnet testbed (AMD, kernel 6.8)",
        esnet_x_labels(),
        grid,
        ctx,
    );
    // The NIC bounds unpaced runs at ~197 Gbps effective.
    fig.push_series("Max Tput (NIC)", constant_series(197.0, EsnetPath::ALL.len()));
    vec![fig]
}

/// Fig. 11 — 8 parallel flows on AmLight (Intel, kernel 6.8): the
/// default baseline decays with RTT; zerocopy alone suffers from the
/// ~16 Gbps of production cross traffic; pacing at 10/9 Gbps per flow
/// is stable at every latency.
pub fn fig11(ctx: &RunCtx) -> Vec<FigureData> {
    let effort = ctx.effort;
    let host = Testbeds::amlight_host(KernelVersion::L6_8);
    let secs = effort.multi_secs();
    let mk = |label: &str, zc: bool, pace: Option<f64>| {
        let scenarios: Vec<Scenario> = AmLightPath::ALL
            .iter()
            .map(|&p| {
                let mut opts = Iperf3Opts::new(secs)
                    .omit(effort.omit_secs(p != AmLightPath::Lan))
                    .parallel(8);
                if zc {
                    opts = opts.zerocopy();
                }
                if let Some(g) = pace {
                    opts = opts.fq_rate(BitRate::gbps(g));
                }
                Scenario::symmetric(label, host.clone(), Testbeds::amlight_path(p), opts)
            })
            .collect();
        (label.to_string(), scenarios)
    };
    let grid = vec![
        mk("default unpaced", false, None),
        mk("zerocopy unpaced", true, None),
        mk("zc+pace 10G/flow", true, Some(10.0)),
        mk("zc+pace 9G/flow", true, Some(9.0)),
    ];
    vec![throughput_figure(
        "Fig. 11: 8 parallel flows, AmLight testbed (Intel, kernel 6.8)",
        amlight_x_labels(),
        grid,
        ctx,
    )]
}

/// Fig. 12 — kernel version results on ESnet (AMD, single stream,
/// default settings): 6.5 ≈ +12 % over 5.15, 6.8 ≈ +17 % over 6.5.
pub fn fig12(ctx: &RunCtx) -> Vec<FigureData> {
    let effort = ctx.effort;
    let grid = KernelVersion::STUDY
        .iter()
        .map(|&k| {
            let host = Testbeds::esnet_host(k);
            let label = format!("kernel {k}");
            let scenarios = EsnetPath::ALL
                .iter()
                .map(|&p| {
                    Scenario::symmetric(
                        label.clone(),
                        host.clone(),
                        Testbeds::esnet_path(p),
                        esnet_opts(effort, p),
                    )
                })
                .collect();
            (label, scenarios)
        })
        .collect();
    vec![throughput_figure(
        "Fig. 12: Kernel version results, ESnet (AMD, single stream)",
        esnet_x_labels(),
        grid,
        ctx,
    )]
}

/// Fig. 13 — kernel version results on AmLight (Intel, single stream):
/// LAN runs use default settings (+27 % from 5.15 to 6.8); WAN runs use
/// zerocopy+pacing(50G) and are flat across kernels, pinned at the
/// pacing rate (§IV-E).
pub fn fig13(ctx: &RunCtx) -> Vec<FigureData> {
    let effort = ctx.effort;
    let grid = KernelVersion::STUDY
        .iter()
        .map(|&k| {
            let host = Testbeds::amlight_host(k);
            let label = format!("kernel {k}");
            let scenarios = AmLightPath::ALL
                .iter()
                .map(|&p| {
                    let mut opts = amlight_opts(effort, p);
                    if p != AmLightPath::Lan {
                        opts = opts.zerocopy().fq_rate(BitRate::gbps(AMLIGHT_PACE));
                    }
                    Scenario::symmetric(
                        label.clone(),
                        host.clone(),
                        Testbeds::amlight_path(p),
                        opts,
                    )
                })
                .collect();
            (label, scenarios)
        })
        .collect();
    vec![throughput_figure(
        "Fig. 13: Kernel version results, AmLight (Intel, single stream; WAN paced at 50G)",
        amlight_x_labels(),
        grid,
        ctx,
    )]
}
