//! The paper's experiments, one function per table/figure.
//!
//! Every function takes a [`RunCtx`](crate::RunCtx) and returns
//! render-ready [`FigureData`](crate::FigureData) /
//! [`TableData`](crate::TableData). The mapping to the paper:
//!
//! | Function | Reproduces |
//! |---|---|
//! | [`figures::fig04`] | Fig. 4 — baremetal vs VM validation |
//! | [`figures::fig05`] | Fig. 5 — single stream, AmLight/Intel |
//! | [`figures::fig06`] | Fig. 6 — single stream, ESnet/AMD |
//! | [`figures::fig07`] | Fig. 7 — CPU utilisation, Intel |
//! | [`figures::fig08`] | Fig. 8 — CPU utilisation, AMD |
//! | [`figures::fig09`] | Fig. 9 — `optmem_max` sweep |
//! | [`figures::fig10`] | Fig. 10 — 8 flows, ESnet |
//! | [`figures::fig11`] | Fig. 11 — 8 flows, AmLight |
//! | [`figures::fig12`] | Fig. 12 — kernel versions, ESnet |
//! | [`figures::fig13`] | Fig. 13 — kernel versions, AmLight |
//! | [`tables::table1`] | Table I — ESnet LAN, no flow control |
//! | [`tables::table2`] | Table II — ESnet WAN, no flow control |
//! | [`tables::table3`] | Table III — production DTNs, flow control |
//! | [`extensions::hw_gro`] | §V-C — hardware GRO preview |
//! | [`extensions::bigtcp_zerocopy`] | §V-C — BIG TCP + zerocopy custom kernel |
//! | [`extensions::fault_recovery`] | robustness — recovery from injected faults |
//! | [`extensions::scale_fanin`] | scale — 16/64/256-flow fan-in through one switch |
//! | [`telemetry::timeline`] | §III-G — ss/ethtool/mpstat timeline on the ESnet WAN |
//! | [`bottleneck::diagnosis`] | diagnosis narratives vs the attribution engine |
//! | [`ablations`] | design-choice ablations (affinity, IOMMU, ring, CC, MTU, sysctls) |
//! | [`cc_matrix::matrix`] | CC variant × RTT × bursty loss × buffer-depth matrix with golden orderings |
//! | [`fleet::fleet`] | arrival-process fleet workloads with streaming FCT aggregation |

pub mod ablations;
pub mod bottleneck;
pub mod cc_matrix;
pub mod common;
pub mod extensions;
pub mod fleet;
pub mod figures;
pub mod tables;
pub mod telemetry;

use crate::ctx::RunCtx;
use crate::render::{FigureData, TableData};

/// The output of one experiment: figures or a table.
#[derive(Debug, Clone)]
pub enum Artifact {
    /// One or more figures (a main plot plus companions).
    Figures(Vec<FigureData>),
    /// A table.
    Table(TableData),
}

impl Artifact {
    /// Render everything as terminal text.
    pub fn render_ascii(&self) -> String {
        match self {
            Artifact::Figures(figs) => {
                figs.iter().map(FigureData::render_ascii).collect::<Vec<_>>().join("\n")
            }
            Artifact::Table(t) => t.render_ascii(),
        }
    }

    /// CSV dumps, one per figure/table, named for file output.
    pub fn to_csv_files(&self, stem: &str) -> Vec<(String, String)> {
        match self {
            Artifact::Figures(figs) => figs
                .iter()
                .enumerate()
                .map(|(i, f)| {
                    let name = if figs.len() == 1 {
                        format!("{stem}.csv")
                    } else {
                        format!("{stem}_{i}.csv")
                    };
                    (name, f.to_csv())
                })
                .collect(),
            Artifact::Table(t) => vec![(format!("{stem}.csv"), t.to_csv())],
        }
    }
}

/// Identifier for one experiment (used by benches and the CLI).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExperimentId {
    /// Fig. 4.
    Fig04,
    /// Fig. 5.
    Fig05,
    /// Fig. 6.
    Fig06,
    /// Fig. 7.
    Fig07,
    /// Fig. 8.
    Fig08,
    /// Fig. 9.
    Fig09,
    /// Fig. 10.
    Fig10,
    /// Fig. 11.
    Fig11,
    /// Fig. 12.
    Fig12,
    /// Fig. 13.
    Fig13,
    /// Table I.
    Table1,
    /// Table II.
    Table2,
    /// Table III.
    Table3,
    /// §V-C hardware GRO.
    ExtHwGro,
    /// §V-C BIG TCP + zerocopy.
    ExtBigTcpZc,
    /// Robustness: recovery from injected faults.
    ExtFaults,
    /// §III-G: ss/ethtool/mpstat-style telemetry timeline.
    ExtTelemetry,
    /// Diagnosis narratives vs the bottleneck-attribution engine.
    ExtBottleneck,
    /// Scale: many-flow fan-in through one shared switch.
    ExtScale,
    /// Congestion-control matrix: variant × RTT × Gilbert–Elliott loss
    /// × switch-buffer depth, with golden-ordering verdicts.
    ExtCcMatrix,
    /// Fleet workloads: arrival-process traffic (Poisson / MMPP incast)
    /// with streaming FCT aggregation and golden tail shapes.
    ExtFleet,
}

impl ExperimentId {
    /// All paper artefacts in order of appearance.
    pub const ALL: [ExperimentId; 21] = [
        ExperimentId::Fig04,
        ExperimentId::Fig05,
        ExperimentId::Fig06,
        ExperimentId::Fig07,
        ExperimentId::Fig08,
        ExperimentId::Fig09,
        ExperimentId::Fig10,
        ExperimentId::Fig11,
        ExperimentId::Fig12,
        ExperimentId::Fig13,
        ExperimentId::Table1,
        ExperimentId::Table2,
        ExperimentId::Table3,
        ExperimentId::ExtHwGro,
        ExperimentId::ExtBigTcpZc,
        ExperimentId::ExtFaults,
        ExperimentId::ExtTelemetry,
        ExperimentId::ExtBottleneck,
        ExperimentId::ExtScale,
        ExperimentId::ExtCcMatrix,
        ExperimentId::ExtFleet,
    ];

    /// Short name ("fig05", "table1", …).
    pub fn name(self) -> &'static str {
        match self {
            ExperimentId::Fig04 => "fig04",
            ExperimentId::Fig05 => "fig05",
            ExperimentId::Fig06 => "fig06",
            ExperimentId::Fig07 => "fig07",
            ExperimentId::Fig08 => "fig08",
            ExperimentId::Fig09 => "fig09",
            ExperimentId::Fig10 => "fig10",
            ExperimentId::Fig11 => "fig11",
            ExperimentId::Fig12 => "fig12",
            ExperimentId::Fig13 => "fig13",
            ExperimentId::Table1 => "table1",
            ExperimentId::Table2 => "table2",
            ExperimentId::Table3 => "table3",
            ExperimentId::ExtHwGro => "ext_hw_gro",
            ExperimentId::ExtBigTcpZc => "ext_bigtcp_zc",
            ExperimentId::ExtFaults => "ext_faults",
            ExperimentId::ExtTelemetry => "ext_telemetry",
            ExperimentId::ExtBottleneck => "ext_bottleneck",
            ExperimentId::ExtScale => "ext_scale",
            ExperimentId::ExtCcMatrix => "ext_cc_matrix",
            ExperimentId::ExtFleet => "ext_fleet",
        }
    }

    /// Run the experiment, returning its artifact.
    pub fn run(self, ctx: &RunCtx) -> Artifact {
        match self {
            ExperimentId::Fig04 => Artifact::Figures(figures::fig04(ctx)),
            ExperimentId::Fig05 => Artifact::Figures(figures::fig05(ctx)),
            ExperimentId::Fig06 => Artifact::Figures(figures::fig06(ctx)),
            ExperimentId::Fig07 => Artifact::Figures(figures::fig07(ctx)),
            ExperimentId::Fig08 => Artifact::Figures(figures::fig08(ctx)),
            ExperimentId::Fig09 => Artifact::Figures(figures::fig09(ctx)),
            ExperimentId::Fig10 => Artifact::Figures(figures::fig10(ctx)),
            ExperimentId::Fig11 => Artifact::Figures(figures::fig11(ctx)),
            ExperimentId::Fig12 => Artifact::Figures(figures::fig12(ctx)),
            ExperimentId::Fig13 => Artifact::Figures(figures::fig13(ctx)),
            ExperimentId::Table1 => Artifact::Table(tables::table1(ctx)),
            ExperimentId::Table2 => Artifact::Table(tables::table2(ctx)),
            ExperimentId::Table3 => Artifact::Table(tables::table3(ctx)),
            ExperimentId::ExtHwGro => Artifact::Figures(extensions::hw_gro(ctx)),
            ExperimentId::ExtBigTcpZc => Artifact::Figures(extensions::bigtcp_zerocopy(ctx)),
            ExperimentId::ExtFaults => Artifact::Figures(extensions::fault_recovery(ctx)),
            ExperimentId::ExtTelemetry => Artifact::Table(telemetry::timeline(ctx)),
            ExperimentId::ExtBottleneck => Artifact::Table(bottleneck::diagnosis(ctx)),
            ExperimentId::ExtScale => Artifact::Figures(extensions::scale_fanin(ctx)),
            ExperimentId::ExtCcMatrix => Artifact::Table(cc_matrix::matrix(ctx)),
            ExperimentId::ExtFleet => Artifact::Table(fleet::fleet(ctx)),
        }
    }

    /// Run and render as terminal text.
    pub fn run_rendered(self, ctx: &RunCtx) -> String {
        self.run(ctx).render_ascii()
    }
}

/// Run every table of the paper (I–III).
pub fn all_tables(ctx: &RunCtx) -> Vec<TableData> {
    vec![tables::table1(ctx), tables::table2(ctx), tables::table3(ctx)]
}
