//! IEEE 802.3x pause-frame flow control.
//!
//! When a switch egress queue (or the receiving host's NIC) backs up
//! past a high-water mark, the device emits a *pause frame* telling the
//! upstream sender to stop transmitting; when occupancy falls below a
//! low-water mark it resumes (§II-D). The paper's testbed switches do
//! **not** support 802.3x (results show drops instead), but the ESnet
//! production DTNs in Table III do — both modes are modelled.

use simcore::Bytes;

/// High/low-water marks for pause emission, as fractions of capacity.
#[derive(Debug, Clone, Copy)]
pub struct PauseThresholds {
    /// Occupancy fraction above which XOFF (pause) is asserted.
    pub xoff: f64,
    /// Occupancy fraction below which XON (resume) is sent.
    pub xon: f64,
}

impl Default for PauseThresholds {
    /// Typical switch defaults: pause at 80 % full, resume at 60 %.
    fn default() -> Self {
        PauseThresholds { xoff: 0.80, xon: 0.60 }
    }
}

impl PauseThresholds {
    /// Validate and construct.
    pub fn new(xoff: f64, xon: f64) -> Self {
        assert!(
            0.0 < xon && xon < xoff && xoff <= 1.0,
            "need 0 < xon < xoff <= 1, got xon={xon} xoff={xoff}"
        );
        PauseThresholds { xoff, xon }
    }
}

/// The pause state machine for one flow-controlled hop.
#[derive(Debug, Clone)]
pub struct PauseState {
    thresholds: PauseThresholds,
    capacity: Bytes,
    paused: bool,
    pause_events: u64,
}

impl PauseState {
    /// New state machine over a buffer of `capacity` bytes.
    pub fn new(capacity: Bytes, thresholds: PauseThresholds) -> Self {
        assert!(!capacity.is_zero(), "pause domain needs a buffer");
        PauseState { thresholds, capacity, paused: false, pause_events: 0 }
    }

    /// Update with the current buffer occupancy; returns the (possibly
    /// changed) paused state. Hysteresis: once paused, stays paused
    /// until occupancy falls below the XON mark.
    pub fn update(&mut self, occupancy: Bytes) -> bool {
        let frac = occupancy.as_f64() / self.capacity.as_f64();
        if self.paused {
            if frac < self.thresholds.xon {
                self.paused = false;
            }
        } else if frac > self.thresholds.xoff {
            self.paused = true;
            self.pause_events += 1;
        }
        self.paused
    }

    /// Is the upstream currently paused?
    pub fn is_paused(&self) -> bool {
        self.paused
    }

    /// How many XOFF transitions have occurred (diagnostics).
    pub fn pause_events(&self) -> u64 {
        self.pause_events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> PauseState {
        PauseState::new(Bytes::new(1000), PauseThresholds::default())
    }

    #[test]
    fn pauses_above_xoff_resumes_below_xon() {
        let mut s = state();
        assert!(!s.update(Bytes::new(500)));
        assert!(s.update(Bytes::new(850))); // > 80 %
        // Hysteresis: 70 % is below xoff but above xon — stays paused.
        assert!(s.update(Bytes::new(700)));
        assert!(!s.update(Bytes::new(500))); // < 60 %
        assert_eq!(s.pause_events(), 1);
    }

    #[test]
    fn repeated_congestion_counts_events() {
        let mut s = state();
        for _ in 0..3 {
            s.update(Bytes::new(900));
            s.update(Bytes::new(100));
        }
        assert_eq!(s.pause_events(), 3);
    }

    #[test]
    #[should_panic(expected = "xon < xoff")]
    fn bad_thresholds_rejected() {
        let _ = PauseThresholds::new(0.5, 0.9);
    }

    #[test]
    fn boundary_is_exclusive() {
        let mut s = state();
        assert!(!s.update(Bytes::new(800))); // exactly 80 %: not yet paused
        assert!(s.update(Bytes::new(801)));
    }
}
