//! Generic discrete-event queue.
//!
//! The simulator in `netsim` drives everything from a single
//! [`EventQueue`]: events are pushed with an absolute firing time and
//! popped in time order. Events scheduled for the same instant fire in
//! insertion order (FIFO), which keeps runs deterministic — a property
//! the whole reproduction depends on (every run is a pure function of
//! its seed).
//!
//! # Engine internals
//!
//! The queue is a Vec-backed **4-ary min-heap** ordered on the key
//! `(time, seq)`, where `seq` is a monotonically increasing insertion
//! counter. Because every key is unique, the heap's pop order is the
//! *total* order over `(time, seq)` — same-time FIFO falls out of the
//! key itself, not out of any property of the heap shape. Any correct
//! heap implementation therefore pops the exact same sequence, which is
//! what lets the engine be swapped without disturbing bit-for-bit
//! determinism (see `tests/engine_differential.rs` for the differential
//! proof against a reference `BinaryHeap`).
//!
//! A 4-ary layout halves the tree depth of a binary heap, trading a
//! wider (but contiguous, cache-resident) child scan per level for
//! fewer levels — the classic d-ary trade.
//!
//! Payloads are **not** stored in the heap. The heap holds only
//! 24-byte [`Key`]s (time, seq, slab slot); the events themselves sit
//! in a free-listed slab and never move until popped. Sifting
//! therefore shuffles small `Copy` keys with single-copy "hole" moves
//! instead of swapping full `(key, event)` entries — at 256-flow scale
//! the event enum dominates the entry size, and keeping it out of the
//! sift path is worth ~2× on `pop`.
//!
//! On top of that, the queue is **two-banded** (a two-rung ladder
//! queue). A network simulation at fan-in scale keeps thousands of
//! events pending — propagation arrivals and RTO timers a full RTT
//! out — but only ever pops from the leading edge. Keys within
//! `window` of the current epoch live in the sifted *near* heap; keys
//! beyond it are appended to an unsorted *far* buffer in O(1) and are
//! only heapified (band by band, when the near heap drains) once the
//! clock approaches them. The near heap stays small enough for its
//! key array to sit in L1, so sift traffic no longer scales with how
//! far ahead the simulation has scheduled. `window` self-tunes toward
//! a migration batch in `[MIN_BATCH, MAX_BATCH]`.
//!
//! The split is invisible in the pop order: every key still compares
//! by the same total `(time, seq)` order, the far band only ever holds
//! keys *later* than everything in the near band, and migration is
//! driven purely by key values — never by wall clock — so runs remain
//! bit-for-bit deterministic.

use crate::time::{SimDuration, SimTime};

/// Arity of the heap: each node has up to four children.
const D: usize = 4;

/// Migration batches below this grow `window` (too many migrations,
/// each paying a far-buffer scan).
const MIN_BATCH: usize = 64;

/// Migration batches above this shrink `window` (near heap getting too
/// deep to stay cache-resident).
const MAX_BATCH: usize = 512;

/// Bounds for the adaptive near-band window.
const MIN_WINDOW: SimDuration = SimDuration::from_nanos(1);
const MAX_WINDOW: SimDuration = SimDuration::from_secs(3600);

/// An event queue over an arbitrary event payload type `E`.
#[derive(Debug)]
pub struct EventQueue<E> {
    /// Min-heap of keys with `time <= horizon` — small, `Copy`,
    /// cache-dense.
    near: Vec<Key>,
    /// Unsorted keys with `time > horizon`, appended in O(1).
    far: Vec<Key>,
    /// The minimum key in `far` (by total order), if any.
    far_min: Option<Key>,
    /// Times at or below this belong to the near heap.
    horizon: SimTime,
    /// Current near-band width (adaptive).
    window: SimDuration,
    /// Payload storage addressed by `Key::slot`; `None` marks a free
    /// slot awaiting reuse via `free`.
    slab: Vec<Option<E>>,
    /// Slots of `slab` ready for reuse.
    free: Vec<usize>,
    seq: u64,
    now: SimTime,
    pushed: u64,
    popped: u64,
    past_clamps: u64,
}

impl<E: Clone> Clone for EventQueue<E> {
    /// Deep copy: keys, payload slab, free list, counters, and the
    /// adaptive near/far split all carry over verbatim, so a cloned
    /// queue pops the identical (time, seq) sequence as the original.
    /// This is the engine half of the checkpoint/resume contract.
    fn clone(&self) -> Self {
        EventQueue {
            near: self.near.clone(),
            far: self.far.clone(),
            far_min: self.far_min,
            horizon: self.horizon,
            window: self.window,
            slab: self.slab.clone(),
            free: self.free.clone(),
            seq: self.seq,
            now: self.now,
            pushed: self.pushed,
            popped: self.popped,
            past_clamps: self.past_clamps,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Key {
    time: SimTime,
    seq: u64,
    slot: usize,
}

impl Key {
    /// The total-order key: earliest time first, then insertion order.
    #[inline]
    fn key(self) -> (SimTime, u64) {
        (self.time, self.seq)
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at time zero.
    pub fn new() -> Self {
        Self::with_capacity(1024)
    }

    /// An empty queue pre-sized for `cap` pending events (callers that
    /// know their fan-out — e.g. one chain per flow — avoid growth
    /// reallocations on the hot path).
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            near: Vec::with_capacity(cap.min(2 * MAX_BATCH)),
            far: Vec::with_capacity(cap),
            far_min: None,
            horizon: SimTime::ZERO,
            window: SimDuration::from_micros(100),
            slab: Vec::with_capacity(cap),
            free: Vec::new(),
            seq: 0,
            now: SimTime::ZERO,
            pushed: 0,
            popped: 0,
            past_clamps: 0,
        }
    }

    /// Current simulated time: the firing time of the most recently
    /// popped event (zero before the first pop).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` to fire at absolute time `at`.
    ///
    /// Scheduling in the past is a logic error in the caller and panics
    /// in debug builds; in release it is clamped to `now` to keep the
    /// run monotonic, and the clamp is counted (see
    /// [`EventQueue::past_clamps`]) so watchdogs can surface the masked
    /// causality bug instead of letting it pass silently.
    pub fn push(&mut self, at: SimTime, event: E) {
        debug_assert!(at >= self.now, "event scheduled in the past: {at} < {}", self.now);
        let at = if at < self.now {
            self.past_clamps += 1;
            self.now
        } else {
            at
        };
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slab[slot] = Some(event);
                slot
            }
            None => {
                self.slab.push(Some(event));
                self.slab.len() - 1
            }
        };
        let key = Key { time: at, seq: self.seq, slot };
        self.seq += 1;
        self.pushed += 1;
        if at <= self.horizon {
            self.near.push(key);
            self.sift_up(self.near.len() - 1);
        } else {
            if self.far_min.is_none_or(|m| key.key() < m.key()) {
                self.far_min = Some(key);
            }
            self.far.push(key);
        }
    }

    /// Pop the next event, advancing the clock to its firing time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.near.is_empty() {
            self.migrate()?;
        }
        let root = self.near[0];
        let last = self.near.pop().expect("near heap is non-empty");
        if !self.near.is_empty() {
            self.near[0] = last;
            self.sift_down(0);
        }
        let event = self.slab[root.slot].take().expect("popped slot holds an event");
        self.free.push(root.slot);
        debug_assert!(root.time >= self.now, "event queue time went backwards");
        self.now = root.time;
        self.popped += 1;
        Some((root.time, event))
    }

    /// Refill the (empty) near heap from the far buffer: advance the
    /// horizon one window past the far minimum, move every key at or
    /// below it, and Floyd-heapify the batch. Returns `None` when the
    /// far buffer is empty too (the queue is exhausted).
    ///
    /// Every ingredient — far minimum, window, horizon — is a pure
    /// function of the keys pushed so far, so the band split can never
    /// perturb determinism; and since all far keys are strictly beyond
    /// the *old* horizon while near keys never were, the near heap's
    /// minimum is always the global minimum.
    fn migrate(&mut self) -> Option<()> {
        debug_assert!(self.near.is_empty());
        let base = self.far_min?;
        let horizon = base.time + self.window;
        let mut far_min: Option<Key> = None;
        let mut i = 0;
        while i < self.far.len() {
            let key = self.far[i];
            if key.time <= horizon {
                self.far.swap_remove(i);
                self.near.push(key);
            } else {
                if far_min.is_none_or(|m| key.key() < m.key()) {
                    far_min = Some(key);
                }
                i += 1;
            }
        }
        // Floyd heapify: sift down every internal node, deepest first.
        if self.near.len() > 1 {
            for n in (0..=(self.near.len() - 2) / D).rev() {
                self.sift_down(n);
            }
        }
        self.horizon = horizon;
        self.far_min = far_min;
        // Steer the next batch into [MIN_BATCH, MAX_BATCH]: scanning
        // the far buffer costs a pass per migration (wants wide bands),
        // while sift depth grows with the near heap (wants narrow).
        if self.near.len() > MAX_BATCH {
            self.window = SimDuration::from_nanos(self.window.as_nanos() / 2).max(MIN_WINDOW);
        } else if self.near.len() < MIN_BATCH {
            self.window = SimDuration::from_nanos(self.window.as_nanos().saturating_mul(2))
                .min(MAX_WINDOW);
        }
        Some(())
    }

    /// Firing time of the next event without popping it.
    ///
    /// When the near heap is drained this is the far minimum — exact,
    /// because the far minimum is maintained on every far push.
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        match self.near.first() {
            Some(key) => Some(key.time),
            None => self.far_min.map(|key| key.time),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.near.len() + self.far.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.near.is_empty() && self.far.is_empty()
    }

    /// Total events pushed over the queue's lifetime (diagnostics).
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Total events popped over the queue's lifetime (diagnostics).
    pub fn total_popped(&self) -> u64 {
        self.popped
    }

    /// How many release-mode pushes were silently clamped from the past
    /// to `now`. Non-zero means a caller has a causality bug that debug
    /// builds would have caught with a panic.
    pub fn past_clamps(&self) -> u64 {
        self.past_clamps
    }

    /// Iterate over the pending events in arbitrary order (used for
    /// end-of-run accounting, e.g. counting in-flight payloads).
    pub fn iter(&self) -> impl Iterator<Item = &E> {
        self.slab.iter().filter_map(|slot| slot.as_ref())
    }

    /// Move `near[i]` toward the root until its parent is no larger.
    ///
    /// Hole technique: the moving key is held in a register and written
    /// exactly once at its final slot — one copy per level instead of a
    /// three-move swap.
    fn sift_up(&mut self, mut i: usize) {
        let moving = self.near[i];
        let key = moving.key();
        while i > 0 {
            let parent = (i - 1) / D;
            if self.near[parent].key() <= key {
                break;
            }
            self.near[i] = self.near[parent];
            i = parent;
        }
        self.near[i] = moving;
    }

    /// Move `near[i]` toward the leaves until no child is smaller
    /// (hole technique, as in [`EventQueue::sift_up`]).
    fn sift_down(&mut self, mut i: usize) {
        let len = self.near.len();
        let moving = self.near[i];
        let key = moving.key();
        loop {
            let first_child = i * D + 1;
            if first_child >= len {
                break;
            }
            // Smallest of the (up to four) children.
            let last_child = (first_child + D).min(len);
            let mut min_child = first_child;
            let mut min_key = self.near[first_child].key();
            for c in first_child + 1..last_child {
                let ck = self.near[c].key();
                if ck < min_key {
                    min_child = c;
                    min_key = ck;
                }
            }
            if key <= min_key {
                break;
            }
            self.near[i] = self.near[min_child];
            i = min_child;
        }
        self.near[i] = moving;
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(30), "c");
        q.push(SimTime::from_nanos(10), "a");
        q.push(SimTime::from_nanos(20), "b");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn simultaneous_events_fire_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(7), ());
        q.push(SimTime::from_nanos(9), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now().as_nanos(), 7);
        q.pop();
        assert_eq!(q.now().as_nanos(), 9);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(10), 1u32);
        let (t, v) = q.pop().unwrap();
        assert_eq!(v, 1);
        // Schedule relative to the popped time.
        q.push(t + SimDuration::from_nanos(5), 2);
        q.push(t + SimDuration::from_nanos(1), 3);
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop().unwrap().1, 2);
    }

    #[test]
    fn counters_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(SimTime::from_nanos(1), ());
        q.push(SimTime::from_nanos(2), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time().unwrap().as_nanos(), 1);
        q.pop();
        assert_eq!(q.total_pushed(), 2);
        assert_eq!(q.total_popped(), 1);
    }

    /// Deterministic LCG covering orderings a hand-written case misses:
    /// deep heaps, duplicate times, pops interleaved with pushes.
    #[test]
    fn randomized_schedule_pops_sorted_by_time_then_seq() {
        let mut state: u64 = 0x243F_6A88_85A3_08D3;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut q = EventQueue::new();
        let mut popped: Vec<(u64, u64)> = Vec::new();
        for round in 0..1000 {
            // Push a few events at times >= now (coarse buckets force
            // plenty of same-time collisions).
            for _ in 0..(next() % 4) {
                let t = q.now().as_nanos() + (next() % 16) * 10;
                q.push(SimTime::from_nanos(t), round);
            }
            if next() % 3 == 0 {
                if let Some((t, _)) = q.pop() {
                    popped.push((t.as_nanos(), 0));
                }
            }
        }
        while let Some((t, _)) = q.pop() {
            popped.push((t.as_nanos(), 0));
        }
        assert_eq!(q.total_pushed(), q.total_popped());
        // now() never went backwards and equals the last popped time.
        assert_eq!(q.now().as_nanos(), popped.last().unwrap().0);
    }

    /// Events spread across several band widths: pops must still come
    /// out in exact `(time, seq)` order while the far band migrates
    /// batch by batch, and interleaved near-term pushes must not be
    /// starved by already-migrated later events.
    #[test]
    fn banded_schedule_pops_in_exact_order() {
        let mut q = EventQueue::new();
        // Far-flung timers first (all beyond the initial window)...
        for i in 0..500u64 {
            q.push(SimTime::from_nanos(1_000_000 + i * 7_919_773), i);
        }
        // ...then near-term chatter, including exact duplicates of the
        // earliest timer times.
        q.push(SimTime::from_nanos(1_000_000), 1000);
        q.push(SimTime::from_nanos(10), 1001);
        let mut last = SimTime::ZERO;
        let mut popped = 0;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last, "times went backwards");
            last = t;
            popped += 1;
            // Mid-drain, schedule a near event: it must pop before any
            // pending far timer.
            if popped == 100 {
                q.push(q.now(), 2000);
                let (tn, v) = q.pop().unwrap();
                assert_eq!((tn, v), (q.now(), 2000));
            }
        }
        assert_eq!(q.total_pushed(), q.total_popped());
        assert_eq!(q.total_pushed(), 503);
    }

    #[test]
    fn with_capacity_behaves_identically() {
        let mut a = EventQueue::new();
        let mut b = EventQueue::with_capacity(1);
        for i in 0..50u64 {
            let t = SimTime::from_nanos((i * 7919) % 100);
            a.push(t, i);
            b.push(t, i);
        }
        for _ in 0..50 {
            assert_eq!(a.pop().unwrap(), b.pop().unwrap());
        }
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    #[cfg(debug_assertions)]
    fn scheduling_in_past_panics_in_debug() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(10), ());
        q.pop();
        q.push(SimTime::from_nanos(5), ());
    }

    /// Release builds clamp past events to `now` — and count the clamp
    /// so the caller's watchdog can surface the masked causality bug.
    #[test]
    #[cfg(not(debug_assertions))]
    fn scheduling_in_past_clamps_and_counts_in_release() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(10), 1u32);
        q.pop();
        assert_eq!(q.past_clamps(), 0);
        q.push(SimTime::from_nanos(5), 2);
        assert_eq!(q.past_clamps(), 1);
        let (t, v) = q.pop().unwrap();
        assert_eq!(t.as_nanos(), 10, "clamped to now");
        assert_eq!(v, 2);
    }
}
