//! Paper-anchor calibration suite.
//!
//! Every test pins one observable the paper reports to a tolerance
//! band, so a change to the cost model (`linuxhost::calib`) or the
//! simulator that silently de-calibrates a figure fails here rather
//! than in a generated plot. Tolerances are deliberately generous —
//! these guard the *shape* (who wins, by roughly what factor), not
//! digits.
//!
//! Durations are shorter than the paper's 60 s (the model is
//! time-homogeneous after slow start; `omit` excludes the ramp).

use dtnperf::prelude::*;

fn run1(host: &HostConfig, path: &PathSpec, opts: Iperf3Opts) -> Iperf3Report {
    iperf3_run(host, host, path, &opts).expect("calibration scenario must be valid")
}

fn gbps(host: &HostConfig, path: &PathSpec, opts: Iperf3Opts) -> f64 {
    run1(host, path, opts).sum_bitrate().as_gbps()
}

fn lan_opts() -> Iperf3Opts {
    Iperf3Opts::new(4).omit(1)
}

fn wan_opts() -> Iperf3Opts {
    Iperf3Opts::new(12).omit(4)
}

// ---------- Fig. 5 (AmLight / Intel / 6.8) --------------------------------

#[test]
fn fig5_intel_lan_default_near_55() {
    let g = gbps(
        &Testbeds::amlight_host(KernelVersion::L6_8),
        &Testbeds::amlight_path(AmLightPath::Lan),
        lan_opts(),
    );
    assert!((50.0..61.0).contains(&g), "Intel LAN default: {g:.1} (paper: 55)");
}

#[test]
fn fig5_intel_wan_default_below_lan() {
    let host = Testbeds::amlight_host(KernelVersion::L6_8);
    let wan = gbps(&host, &Testbeds::amlight_path(AmLightPath::Wan104ms), wan_opts());
    assert!(
        (32.0..46.0).contains(&wan),
        "Intel 104ms default: {wan:.1} (sender window penalty; paper ~37)"
    );
}

#[test]
fn fig5_zerocopy_plus_pacing_holds_50_on_all_wan_paths() {
    let host = Testbeds::amlight_host(KernelVersion::L6_8);
    for p in [AmLightPath::Wan25ms, AmLightPath::Wan54ms, AmLightPath::Wan104ms] {
        let g = gbps(
            &host,
            &Testbeds::amlight_path(p),
            wan_opts().zerocopy().fq_rate(BitRate::gbps(50.0)),
        );
        assert!(
            (44.0..50.0).contains(&g),
            "zc+pace50 at {}: {g:.1} (paper: ~50, flat across RTTs)",
            p.label()
        );
    }
}

#[test]
fn fig5_zerocopy_with_pacing_beats_default_by_tens_of_percent() {
    let host = Testbeds::amlight_host(KernelVersion::L6_8);
    let path = Testbeds::amlight_path(AmLightPath::Wan104ms);
    let default = gbps(&host, &path, wan_opts());
    let zc = gbps(&host, &path, wan_opts().zerocopy().fq_rate(BitRate::gbps(50.0)));
    let gain = zc / default - 1.0;
    assert!(
        (0.10..0.50).contains(&gain),
        "zc+pacing gain on 104ms: {:.0}% (paper: up to 35%)",
        gain * 100.0
    );
}

#[test]
fn fig5_zerocopy_alone_is_no_silver_bullet() {
    // §IV-A: "MSG_ZEROCOPY by itself does not improve throughput".
    let host = Testbeds::amlight_host(KernelVersion::L6_8);
    let path = Testbeds::amlight_path(AmLightPath::Wan104ms);
    let default = gbps(&host, &path, wan_opts());
    let zc_only = gbps(&host, &path, wan_opts().zerocopy());
    let ratio = zc_only / default;
    assert!(
        (0.75..1.30).contains(&ratio),
        "zerocopy alone vs default on 104ms: x{ratio:.2} (paper: ≈1, no gain)"
    );
}

#[test]
fn fig5_big_tcp_gains_10_to_20_percent_on_lan() {
    let base = Testbeds::amlight_host(KernelVersion::L6_8);
    let mut big = base.clone();
    big.offload = big
        .offload
        .with_big_tcp(dtnperf::linuxhost::offload::PAPER_BIG_TCP_SIZE, KernelVersion::L6_8);
    let lan = Testbeds::amlight_path(AmLightPath::Lan);
    let d = gbps(&base, &lan, lan_opts());
    let b = gbps(&big, &lan, lan_opts());
    let gain = b / d - 1.0;
    assert!(
        (0.06..0.25).contains(&gain),
        "BIG TCP LAN gain: {:.0}% (paper: up to 16%)",
        gain * 100.0
    );
}

// ---------- Fig. 6 (ESnet / AMD / 6.8) ------------------------------------

#[test]
fn fig6_amd_lan_default_near_42() {
    let g = gbps(
        &Testbeds::esnet_host(KernelVersion::L6_8),
        &Testbeds::esnet_path(EsnetPath::Lan),
        lan_opts(),
    );
    assert!((38.0..47.0).contains(&g), "AMD LAN default: {g:.1} (paper: 42)");
}

#[test]
fn fig6_amd_wan_zerocopy_pacing_recovers_lan_performance() {
    let host = Testbeds::esnet_host(KernelVersion::L6_8);
    let wan = Testbeds::esnet_path(EsnetPath::Wan);
    let default = gbps(&host, &wan, wan_opts());
    let zc = gbps(&host, &wan, wan_opts().zerocopy().fq_rate(BitRate::gbps(40.0)));
    assert!(
        (17.0..28.0).contains(&default),
        "AMD WAN default: {default:.1} (paper: well below the 42 LAN)"
    );
    assert!((35.0..41.0).contains(&zc), "AMD WAN zc+pace40: {zc:.1} (paper: ≈40)");
    let gain = zc / default - 1.0;
    assert!(
        (0.45..1.10).contains(&gain),
        "AMD WAN zerocopy+pacing gain: {:.0}% (paper: 85%)",
        gain * 100.0
    );
}

// ---------- Figs. 7/8 (CPU utilisation) -----------------------------------

#[test]
fn fig7_lan_receiver_limited_wan_sender_limited() {
    let host = Testbeds::amlight_host(KernelVersion::L6_5);
    let lan = run1(&host, &Testbeds::amlight_path(AmLightPath::Lan), lan_opts());
    assert!(
        lan.receiver_cpu.peak_core_pct > 90.0,
        "LAN default: receiver core should peg, got {:.0}%",
        lan.receiver_cpu.peak_core_pct
    );
    let wan = run1(&host, &Testbeds::amlight_path(AmLightPath::Wan104ms), wan_opts());
    assert!(
        wan.sender_cpu.peak_core_pct > 90.0,
        "WAN default: sender core should peg, got {:.0}%",
        wan.sender_cpu.peak_core_pct
    );
    assert!(
        wan.receiver_cpu.peak_core_pct < 90.0,
        "WAN default: receiver should NOT be the bottleneck, got {:.0}%",
        wan.receiver_cpu.peak_core_pct
    );
}

#[test]
fn fig7_zerocopy_pacing_collapses_sender_cpu() {
    // §IV-B: "zerocopy with optimal settings for optmem_max and packet
    // pacing" — on kernel 6.5 the optimum is ~3.25 MB.
    let host = Testbeds::amlight_host(KernelVersion::L6_5)
        .with_optmem(SysctlConfig::optmem_3_25_mb());
    let path = Testbeds::amlight_path(AmLightPath::Wan25ms);
    let default = run1(&host, &path, wan_opts());
    let zc = run1(&host, &path, wan_opts().zerocopy().fq_rate(BitRate::gbps(50.0)));
    assert!(
        zc.sender_cpu.app_pct < default.sender_cpu.app_pct / 2.0,
        "zerocopy should slash sender app CPU: {:.0}% -> {:.0}%",
        default.sender_cpu.app_pct,
        zc.sender_cpu.app_pct
    );
}

// ---------- Fig. 9 (optmem_max) --------------------------------------------

#[test]
fn fig9_default_optmem_cripples_zerocopy_and_pegs_the_sender() {
    let host = Testbeds::amlight_host(KernelVersion::L6_5).with_optmem(Bytes::kib(20));
    let path = Testbeds::amlight_path(AmLightPath::Wan104ms);
    let report = run1(&host, &path, wan_opts().zerocopy().fq_rate(BitRate::gbps(50.0)));
    let g = report.sum_bitrate().as_gbps();
    assert!(g < 30.0, "20KB optmem on 104ms: {g:.1} (paper: severely affected)");
    assert!(
        report.sender_cpu.peak_core_pct > 90.0,
        "sender must be CPU-pegged in fallback mode, got {:.0}%",
        report.sender_cpu.peak_core_pct
    );
    assert!(
        report.zc_fallback_fraction > 0.9,
        "almost all sends must fall back, got {:.0}%",
        report.zc_fallback_fraction * 100.0
    );
}

#[test]
fn fig9_1mb_optmem_suffices_short_paths_not_104ms() {
    let host = Testbeds::amlight_host(KernelVersion::L6_5).with_optmem(Bytes::mib(1));
    let opts = || wan_opts().zerocopy().fq_rate(BitRate::gbps(50.0));
    let short = gbps(&host, &Testbeds::amlight_path(AmLightPath::Wan25ms), opts());
    let long = gbps(&host, &Testbeds::amlight_path(AmLightPath::Wan104ms), opts());
    assert!((44.0..50.0).contains(&short), "1MB optmem at 25ms: {short:.1} (paper: ~50)");
    assert!(
        (32.0..45.5).contains(&long),
        "1MB optmem at 104ms: {long:.1} (paper: sags to ~40)"
    );
    assert!(short - long > 4.0, "the 104ms path must visibly sag");
}

#[test]
fn fig9_3_25mb_optmem_restores_the_long_path() {
    let host =
        Testbeds::amlight_host(KernelVersion::L6_5).with_optmem(SysctlConfig::optmem_3_25_mb());
    let g = gbps(
        &host,
        &Testbeds::amlight_path(AmLightPath::Wan104ms),
        wan_opts().zerocopy().fq_rate(BitRate::gbps(50.0)),
    );
    assert!((44.0..50.0).contains(&g), "3.25MB optmem at 104ms: {g:.1} (paper: ~50)");
}

// ---------- Figs. 12/13 (kernel versions) ----------------------------------

#[test]
fn fig12_amd_kernel_ladder() {
    let lan = Testbeds::esnet_path(EsnetPath::Lan);
    let g515 = gbps(&Testbeds::esnet_host(KernelVersion::L5_15), &lan, lan_opts());
    let g65 = gbps(&Testbeds::esnet_host(KernelVersion::L6_5), &lan, lan_opts());
    let g68 = gbps(&Testbeds::esnet_host(KernelVersion::L6_8), &lan, lan_opts());
    let step1 = g65 / g515 - 1.0;
    let step2 = g68 / g65 - 1.0;
    assert!((0.07..0.18).contains(&step1), "5.15->6.5: +{:.0}% (paper: 12%)", step1 * 100.0);
    assert!((0.11..0.23).contains(&step2), "6.5->6.8: +{:.0}% (paper: 17%)", step2 * 100.0);
}

#[test]
fn fig13_intel_kernel_ladder_and_flat_paced_wan() {
    let lan = Testbeds::amlight_path(AmLightPath::Lan);
    let g515 = gbps(&Testbeds::amlight_host(KernelVersion::L5_15), &lan, lan_opts());
    let g68 = gbps(&Testbeds::amlight_host(KernelVersion::L6_8), &lan, lan_opts());
    let gain = g68 / g515 - 1.0;
    assert!(
        (0.20..0.35).contains(&gain),
        "Intel LAN 5.15->6.8: +{:.0}% (paper: 27%)",
        gain * 100.0
    );
    // WAN runs are pinned to the pacing rate on every kernel (§IV-E).
    let wan = Testbeds::amlight_path(AmLightPath::Wan25ms);
    let opts = || wan_opts().zerocopy().fq_rate(BitRate::gbps(50.0));
    let w515 = gbps(&Testbeds::amlight_host(KernelVersion::L5_15), &wan, opts());
    let w68 = gbps(&Testbeds::amlight_host(KernelVersion::L6_8), &wan, opts());
    // §IV-E says paced WAN throughput was "the same for all kernels";
    // in our calibration the 5.15 receiver ceiling (≈44 Gbps) sits
    // slightly below the 50 G pacing, so the spread is small but not
    // zero — see EXPERIMENTS.md.
    let spread = (w68 - w515).abs() / w68;
    assert!(
        spread < 0.25,
        "paced WAN should be nearly kernel-flat: 5.15={w515:.1} vs 6.8={w68:.1}"
    );
}

// ---------- §V-C extensions -------------------------------------------------

#[test]
fn ext_hw_gro_rescues_1500_byte_mtu() {
    let lan = PathSpec::lan("lan", BitRate::gbps(100.0));
    let host = |mtu: u64, hw: bool| {
        let kernel = if hw { KernelVersion::L6_11 } else { KernelVersion::L6_8 };
        let mut cfg = Testbeds::amlight_host(kernel);
        cfg.nic = NicModel::ConnectX7;
        cfg.offload = OffloadConfig::standard(Bytes::new(mtu));
        if hw {
            cfg.offload = cfg.offload.with_hw_gro(kernel);
        }
        cfg
    };
    let sw1500 = gbps(&host(1500, false), &lan, lan_opts());
    let hw1500 = gbps(&host(1500, true), &lan, lan_opts());
    assert!((20.0..29.0).contains(&sw1500), "1500B software GRO: {sw1500:.1} (paper: 24)");
    let gain = hw1500 / sw1500 - 1.0;
    assert!(
        gain > 1.0,
        "hardware GRO at 1500B: +{:.0}% (paper: 160%)",
        gain * 100.0
    );
    let sw9000 = gbps(&host(9000, false), &lan, lan_opts());
    let hw9000 = gbps(&host(9000, true), &lan, lan_opts());
    let gain9k = hw9000 / sw9000 - 1.0;
    assert!(
        (0.05..0.45).contains(&gain9k),
        "hardware GRO at 9000B: +{:.0}% (paper: modest)",
        gain9k * 100.0
    );
}

#[test]
fn ext_bigtcp_plus_zerocopy_on_custom_kernel() {
    let base = Testbeds::amlight_host(KernelVersion::L6_8);
    let mut custom = base.clone();
    custom.offload = custom
        .offload
        .with_big_tcp(dtnperf::linuxhost::offload::PAPER_BIG_TCP_SIZE, KernelVersion::L6_8)
        .with_max_skb_frags(45, KernelVersion::L6_8);
    let lan = Testbeds::amlight_path(AmLightPath::Lan);
    let default = gbps(&base, &lan, lan_opts());
    let combo = gbps(&custom, &lan, lan_opts().zerocopy().fq_rate(BitRate::gbps(85.0)));
    let gain = combo / default - 1.0;
    assert!(
        (0.35..0.90).contains(&gain),
        "BIG TCP + zerocopy: +{:.0}% (paper preliminary: up to 65%)",
        gain * 100.0
    );
}

// ---------- §III-D one-liners -----------------------------------------------

#[test]
fn iommu_pt_roughly_doubles_multistream_throughput() {
    let on = Testbeds::esnet_host(KernelVersion::L5_15);
    let mut off = on.clone();
    off.iommu_pt = false;
    let lan = Testbeds::esnet_path(EsnetPath::Lan);
    let opts = Iperf3Opts::new(4).omit(1).parallel(8);
    let g_on = gbps(&on, &lan, opts.clone());
    let g_off = gbps(&off, &lan, opts);
    let ratio = g_on / g_off;
    assert!(
        (1.7..2.6).contains(&ratio),
        "iommu=pt: {g_off:.0} -> {g_on:.0} Gbps (x{ratio:.2}; paper: 80 -> 181)"
    );
}

#[test]
fn stock_sysctls_strangle_long_paths() {
    let mut stock = Testbeds::amlight_host(KernelVersion::L6_8);
    stock.sysctl = SysctlConfig::stock();
    stock.sysctl.default_qdisc = dtnperf::linuxhost::Qdisc::Fq;
    let g = gbps(&stock, &Testbeds::amlight_path(AmLightPath::Wan104ms), wan_opts());
    assert!(g < 1.5, "6MB tcp_rmem over 104ms: {g:.2} Gbps (0.46 theoretical)");
}
