//! The run context: everything the environment used to leak into
//! arbitrary call sites, resolved once at harness entry.
//!
//! `Effort::from_env`, `REPRO_TRACE_DIR`, `REPRO_CACHE_DIR` and
//! `REPRO_JOBS` are read exactly once — by [`RunCtx::from_env`] in the
//! `repro` binary — and threaded explicitly from there. Tests build a
//! [`RunCtx`] directly and never touch process-global environment
//! variables, which would race across test threads under the parallel
//! scheduler.

use crate::cache::RunCache;
use crate::effort::Effort;
use crate::runner::TestHarness;
use crate::sched;
use std::path::PathBuf;
use std::sync::Arc;

/// Resolved run-wide configuration.
#[derive(Debug, Clone)]
pub struct RunCtx {
    /// Simulation effort (repetitions and durations).
    pub effort: Effort,
    /// Concurrency bound for the process-wide scheduler gate (display
    /// only here; the gate itself is sized on first use).
    pub jobs: usize,
    /// Telemetry-trace output directory (`--trace` / `REPRO_TRACE_DIR`).
    pub trace_dir: Option<PathBuf>,
    /// Content-addressed report cache (`REPRO_CACHE_DIR`).
    pub cache: Option<Arc<RunCache>>,
}

impl RunCtx {
    /// A context at the given effort, with no tracing and no cache —
    /// what tests and library callers start from.
    pub fn new(effort: Effort) -> Self {
        RunCtx { effort, jobs: sched::jobs_from_env(), trace_dir: None, cache: None }
    }

    /// Resolve the environment once: `REPRO_EFFORT`, `REPRO_JOBS`,
    /// `REPRO_TRACE_DIR`, `REPRO_CACHE_DIR`.
    pub fn from_env() -> Self {
        RunCtx {
            effort: Effort::from_env(),
            jobs: sched::jobs_from_env(),
            trace_dir: std::env::var_os("REPRO_TRACE_DIR").map(PathBuf::from),
            cache: RunCache::from_env().map(Arc::new),
        }
    }

    /// Builder: write telemetry traces to `dir`.
    pub fn with_trace_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.trace_dir = Some(dir.into());
        self
    }

    /// Builder: consult and fill `cache`.
    pub fn with_cache(mut self, cache: Arc<RunCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// A harness with the context's effort-default repetition count.
    pub fn harness(&self) -> TestHarness {
        self.harness_with_reps(self.effort.repetitions())
    }

    /// A harness with an explicit repetition count (single-run
    /// diagnosis experiments use 1).
    pub fn harness_with_reps(&self, repetitions: usize) -> TestHarness {
        let mut h = TestHarness::new(repetitions);
        h.trace_dir = self.trace_dir.clone();
        h.cache = self.cache.clone();
        h
    }
}

impl Default for RunCtx {
    fn default() -> Self {
        RunCtx::new(Effort::Standard)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_inherits_ctx_settings() {
        let cache = Arc::new(RunCache::new("/tmp/nonexistent-cache-dir-for-test"));
        let ctx = RunCtx::new(Effort::Smoke)
            .with_trace_dir("/tmp/traces")
            .with_cache(cache);
        let h = ctx.harness();
        assert_eq!(h.repetitions, Effort::Smoke.repetitions());
        assert_eq!(h.trace_dir.as_deref(), Some(std::path::Path::new("/tmp/traces")));
        assert!(h.cache.is_some());
        assert_eq!(ctx.harness_with_reps(1).repetitions, 1);
    }

    #[test]
    fn plain_ctx_has_no_observers() {
        let ctx = RunCtx::new(Effort::Smoke);
        let h = ctx.harness();
        assert!(h.trace_dir.is_none());
        assert!(h.cache.is_none());
    }
}
