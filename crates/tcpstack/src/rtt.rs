//! RTT estimation and RTO computation (RFC 6298).

use simcore::SimDuration;

/// Linux's minimum RTO (200 ms).
pub const MIN_RTO: SimDuration = SimDuration::from_millis(200);

/// Maximum RTO we allow (Linux caps at 120 s; tests never get there).
pub const MAX_RTO: SimDuration = SimDuration::from_secs(120);

/// SRTT/RTTVAR estimator.
#[derive(Debug, Clone)]
pub struct RttEstimator {
    srtt: Option<SimDuration>,
    rttvar: SimDuration,
    min_rtt: SimDuration,
}

impl RttEstimator {
    /// New estimator with no samples yet.
    pub fn new() -> Self {
        RttEstimator {
            srtt: None,
            rttvar: SimDuration::ZERO,
            min_rtt: SimDuration::from_secs(3600),
        }
    }

    /// Feed one RTT sample (from a never-retransmitted burst — Karn's
    /// algorithm is the caller's responsibility).
    pub fn on_sample(&mut self, sample: SimDuration) {
        self.min_rtt = self.min_rtt.min(sample);
        match self.srtt {
            None => {
                self.srtt = Some(sample);
                self.rttvar = sample / 2;
            }
            Some(srtt) => {
                // RTTVAR = 3/4 RTTVAR + 1/4 |SRTT - sample|
                let err = if sample > srtt { sample - srtt } else { srtt - sample };
                self.rttvar = SimDuration::from_nanos(
                    (3 * self.rttvar.as_nanos() + err.as_nanos()) / 4,
                );
                // SRTT = 7/8 SRTT + 1/8 sample
                self.srtt = Some(SimDuration::from_nanos(
                    (7 * srtt.as_nanos() + sample.as_nanos()) / 8,
                ));
            }
        }
    }

    /// Smoothed RTT; `fallback` before the first sample.
    pub fn srtt_or(&self, fallback: SimDuration) -> SimDuration {
        self.srtt.unwrap_or(fallback)
    }

    /// Smoothed RTT if at least one sample has arrived.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.srtt
    }

    /// Lowest RTT observed (the propagation estimate BBR and HyStart
    /// rely on).
    pub fn min_rtt(&self) -> SimDuration {
        self.min_rtt
    }

    /// Retransmission timeout: `SRTT + 4×RTTVAR`, clamped.
    pub fn rto(&self) -> SimDuration {
        match self.srtt {
            None => SimDuration::from_secs(1), // RFC 6298 initial RTO
            Some(srtt) => (srtt + self.rttvar * 4).max(MIN_RTO).min(MAX_RTO),
        }
    }
}

impl Default for RttEstimator {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_initialises() {
        let mut e = RttEstimator::new();
        assert_eq!(e.rto(), SimDuration::from_secs(1));
        e.on_sample(SimDuration::from_millis(100));
        assert_eq!(e.srtt(), Some(SimDuration::from_millis(100)));
        assert_eq!(e.min_rtt(), SimDuration::from_millis(100));
        // RTO = 100 + 4*50 = 300 ms.
        assert_eq!(e.rto(), SimDuration::from_millis(300));
    }

    #[test]
    fn smoothing_converges() {
        let mut e = RttEstimator::new();
        for _ in 0..100 {
            e.on_sample(SimDuration::from_millis(50));
        }
        let srtt = e.srtt().unwrap();
        assert!((srtt.as_millis_f64() - 50.0).abs() < 0.5);
        // Stable samples → rttvar → 0 → RTO clamps at the 200 ms floor.
        assert_eq!(e.rto(), MIN_RTO);
    }

    #[test]
    fn min_rtt_tracks_floor() {
        let mut e = RttEstimator::new();
        e.on_sample(SimDuration::from_millis(30));
        e.on_sample(SimDuration::from_millis(10));
        e.on_sample(SimDuration::from_millis(40));
        assert_eq!(e.min_rtt(), SimDuration::from_millis(10));
    }

    #[test]
    fn variance_raises_rto() {
        let mut e = RttEstimator::new();
        for i in 0..50 {
            let ms = if i % 2 == 0 { 20 } else { 80 };
            e.on_sample(SimDuration::from_millis(ms));
        }
        assert!(e.rto() > SimDuration::from_millis(100));
    }
}
