//! Bottleneck attribution: per-interval limiting-factor verdicts and
//! `perf`-style stage profiles.
//!
//! The paper never leaves a throughput number unexplained — every
//! figure comes with a diagnosis ("the sender app core saturates on
//! the copy", "zerocopy shifts the bottleneck to the receiver",
//! "without flow control the switch buffer overflows"), read off
//! `mpstat` and `perf` on the real hosts. This module is the
//! simulator's machine-checkable version of that reading: when
//! [`crate::WorkloadSpec::attribution`] is on, each host keeps a
//! per-core, per-stage [`simcore::CycleLedger`], and on every interval
//! tick the runner feeds an [`IntervalObs`] — stage-ledger deltas,
//! drop/pause counter deltas, the sender's cwnd-limited signal and the
//! delivered rate — through [`classify`] to produce one
//! [`LimitingFactor`] verdict per interval. The whole run rolls up
//! into a [`BottleneckVerdict`] plus one [`StageProfile`] per host
//! (the folded-stack / `perf report` source data).
//!
//! Attribution follows the same observer-neutrality contract as
//! telemetry (§III-G): classification is strictly read-only on flow,
//! host and RNG state, and ledger charging never alters service or
//! completion times, so an attributed run is bit-identical to an
//! unattributed one with the same seed.

use linuxhost::Stage;
use simcore::{SimDuration, SimTime};

/// The resource that limited throughput over one interval.
///
/// Variants are ordered by diagnostic priority: loss events outrank
/// queue-pressure signals, which outrank CPU saturation, which
/// outranks capacity/pacing ceilings; a window that presses against
/// cwnd with none of the above is protocol-limited.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LimitingFactor {
    /// The shared switch buffer overflowed (tail/RED drops) — the
    /// no-flow-control story of Tables I–II.
    SwitchBuffer,
    /// 802.3x pause frames (or a pause storm) held traffic upstream.
    PauseThrottled,
    /// MSG_ZEROCOPY exhausted `optmem_max` and fell back to copying
    /// (the Fig. 9 cliff).
    OptmemStalled,
    /// The sender's application core saturated (the `write()` copy).
    SenderAppCpu,
    /// The sender's softirq/TX core saturated.
    SenderSoftirq,
    /// The receiver's softirq/RX core saturated (GRO + protocol rx).
    ReceiverSoftirq,
    /// The receiver's application core saturated (the `read()` copy).
    ReceiverAppCopy,
    /// Goodput reached the path's usable capacity.
    LinkCapacity,
    /// An explicit `--fq-rate` pacing cap held throughput down.
    PacingLimited,
    /// The congestion window limited the flight (loss recovery, slow
    /// start, or a genuinely BDP-bound window).
    CwndLimited,
}

impl LimitingFactor {
    /// Every factor, in diagnostic-priority order.
    pub const ALL: [LimitingFactor; 10] = [
        LimitingFactor::SwitchBuffer,
        LimitingFactor::PauseThrottled,
        LimitingFactor::OptmemStalled,
        LimitingFactor::SenderAppCpu,
        LimitingFactor::SenderSoftirq,
        LimitingFactor::ReceiverSoftirq,
        LimitingFactor::ReceiverAppCopy,
        LimitingFactor::LinkCapacity,
        LimitingFactor::PacingLimited,
        LimitingFactor::CwndLimited,
    ];

    /// Stable lowercase name for traces and tables.
    pub fn name(self) -> &'static str {
        match self {
            LimitingFactor::SwitchBuffer => "switch_buffer",
            LimitingFactor::PauseThrottled => "pause_throttled",
            LimitingFactor::OptmemStalled => "optmem_stalled",
            LimitingFactor::SenderAppCpu => "sender_app_cpu",
            LimitingFactor::SenderSoftirq => "sender_softirq",
            LimitingFactor::ReceiverSoftirq => "receiver_softirq",
            LimitingFactor::ReceiverAppCopy => "receiver_app_copy",
            LimitingFactor::LinkCapacity => "link_capacity",
            LimitingFactor::PacingLimited => "pacing_limited",
            LimitingFactor::CwndLimited => "cwnd_limited",
        }
    }
}

/// A core group is "saturated" when its busiest core spent at least
/// this fraction of the interval busy (mpstat reads ≥ ~90 % as pegged;
/// the last few percent go to scheduler slack the model does not
/// charge).
pub const CPU_SATURATION_FRACTION: f64 = 0.90;

/// Zerocopy is "optmem-stalled" when more than this fraction of the
/// interval's sends fell back to copying.
pub const OPTMEM_STALL_FRACTION: f64 = 0.25;

/// Goodput at or above this fraction of the usable path rate reads as
/// link-limited (ACK overhead and pacing gaps eat the rest).
pub const LINK_SATURATION_FRACTION: f64 = 0.90;

/// Goodput within this fraction of an explicit `--fq-rate` cap reads
/// as pacing-limited.
pub const PACING_SATURATION_FRACTION: f64 = 0.85;

/// ACKs must find the flight pressing against cwnd at least this often
/// for the interval to read as cwnd-limited.
pub const CWND_LIMITED_FRACTION: f64 = 0.50;

/// Everything [`classify`] looks at for one interval — counter deltas
/// and busy fractions, already normalised by the interval length.
#[derive(Debug, Clone, Default)]
pub struct IntervalObs {
    /// Switch tail/RED drops this interval.
    pub switch_drops: u64,
    /// Receiver NIC-ring drops this interval (incl. pause-buffer
    /// overflow under flow control).
    pub ring_drops: u64,
    /// Pause-frame holds (802.3x parks) this interval.
    pub pause_parks: u64,
    /// Zerocopy sends this interval.
    pub zc_sends: u64,
    /// Zerocopy sends that fell back to copying this interval.
    pub zc_fallbacks: u64,
    /// ACKs processed by all senders this interval.
    pub acks: u64,
    /// Of those, ACKs with `tcp_is_cwnd_limited()` true.
    pub cwnd_limited_acks: u64,
    /// Busiest sender app core, as a busy fraction of the interval.
    pub snd_app_busy: f64,
    /// Busiest sender IRQ core busy fraction.
    pub snd_irq_busy: f64,
    /// Busiest receiver IRQ core busy fraction.
    pub rcv_irq_busy: f64,
    /// Busiest receiver app core busy fraction.
    pub rcv_app_busy: f64,
    /// Aggregate goodput this interval (Gbit/s).
    pub delivered_gbps: f64,
    /// The path's usable rate (Gbit/s).
    pub usable_gbps: f64,
    /// Explicit per-flow pacing cap × flow count (Gbit/s), if set.
    pub fq_total_gbps: Option<f64>,
}

impl IntervalObs {
    /// Fraction of this interval's zerocopy sends that fell back.
    pub fn fallback_fraction(&self) -> f64 {
        let total = self.zc_sends + self.zc_fallbacks;
        if total == 0 { 0.0 } else { self.zc_fallbacks as f64 / total as f64 }
    }

    /// Fraction of ACKs that found the flight cwnd-limited.
    pub fn cwnd_limited_fraction(&self) -> f64 {
        if self.acks == 0 { 0.0 } else { self.cwnd_limited_acks as f64 / self.acks as f64 }
    }
}

/// Decide what limited throughput over one interval.
///
/// Pure and deterministic: the verdict priority is loss events >
/// pause-frame throttling > optmem starvation > CPU saturation >
/// pacing cap > link capacity > cwnd. When nothing crosses a
/// threshold, the busiest CPU group (if meaningfully loaded) or the
/// congestion window takes the verdict — every interval gets exactly
/// one factor.
pub fn classify(obs: &IntervalObs) -> LimitingFactor {
    if obs.switch_drops > 0 {
        return LimitingFactor::SwitchBuffer;
    }
    if obs.pause_parks > 0 || obs.ring_drops > 0 {
        // Flow control parked traffic upstream (or, without it, the
        // ring itself overflowed): the receiver edge is the brake.
        if obs.pause_parks > 0 {
            return LimitingFactor::PauseThrottled;
        }
        return cpu_verdict(obs).unwrap_or(LimitingFactor::ReceiverSoftirq);
    }
    if obs.fallback_fraction() > OPTMEM_STALL_FRACTION {
        return LimitingFactor::OptmemStalled;
    }
    if let Some(cpu) = cpu_verdict(obs) {
        return cpu;
    }
    if let Some(fq) = obs.fq_total_gbps {
        if fq < obs.usable_gbps && obs.delivered_gbps >= PACING_SATURATION_FRACTION * fq {
            return LimitingFactor::PacingLimited;
        }
    }
    if obs.usable_gbps > 0.0
        && obs.delivered_gbps >= LINK_SATURATION_FRACTION * obs.usable_gbps
    {
        return LimitingFactor::LinkCapacity;
    }
    if obs.cwnd_limited_fraction() >= CWND_LIMITED_FRACTION {
        return LimitingFactor::CwndLimited;
    }
    // Nothing pegged: blame the busiest CPU group if it carries real
    // load, else fall back to the window (start-up, recovery, idle).
    busiest_cpu(obs)
        .filter(|&(_, busy)| busy >= 0.5)
        .map(|(factor, _)| factor)
        .unwrap_or(LimitingFactor::CwndLimited)
}

/// CPU-saturation verdict, when some group's busiest core is pegged.
fn cpu_verdict(obs: &IntervalObs) -> Option<LimitingFactor> {
    busiest_cpu(obs).filter(|&(_, busy)| busy >= CPU_SATURATION_FRACTION).map(|(f, _)| f)
}

fn busiest_cpu(obs: &IntervalObs) -> Option<(LimitingFactor, f64)> {
    let groups = [
        (LimitingFactor::SenderAppCpu, obs.snd_app_busy),
        (LimitingFactor::SenderSoftirq, obs.snd_irq_busy),
        (LimitingFactor::ReceiverSoftirq, obs.rcv_irq_busy),
        (LimitingFactor::ReceiverAppCopy, obs.rcv_app_busy),
    ];
    groups
        .into_iter()
        .filter(|(_, busy)| busy.is_finite())
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite busy fractions"))
}

/// The whole-run roll-up of the per-interval verdicts.
#[derive(Debug, Clone)]
pub struct BottleneckVerdict {
    /// The factor that limited the most intervals (ties break by
    /// diagnostic priority).
    pub primary: LimitingFactor,
    /// Interval counts per factor, most frequent first.
    pub histogram: Vec<(LimitingFactor, u64)>,
    /// How many intervals were classified.
    pub intervals: usize,
}

impl BottleneckVerdict {
    /// Roll up per-interval verdicts. `None` when no interval was
    /// classified (run shorter than one interval).
    pub fn from_intervals(verdicts: &[(SimTime, LimitingFactor)]) -> Option<Self> {
        if verdicts.is_empty() {
            return None;
        }
        let mut counts: Vec<(LimitingFactor, u64)> = Vec::new();
        for factor in LimitingFactor::ALL {
            let n = verdicts.iter().filter(|(_, v)| *v == factor).count() as u64;
            if n > 0 {
                counts.push((factor, n));
            }
        }
        // Most frequent first; equal counts keep priority order (the
        // ALL iteration order) because the sort is stable.
        counts.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
        Some(BottleneckVerdict {
            primary: counts[0].0,
            histogram: counts,
            intervals: verdicts.len(),
        })
    }

    /// Fraction of intervals the primary factor limited.
    pub fn primary_share(&self) -> f64 {
        if self.intervals == 0 {
            return 0.0;
        }
        self.histogram
            .first()
            .map(|(_, n)| *n as f64 / self.intervals as f64)
            .unwrap_or(0.0)
    }
}

/// One host's whole-run stage decomposition — the data behind the
/// folded-stack and `perf report` outputs.
#[derive(Debug, Clone)]
pub struct StageProfile {
    /// Clock the host's cost model ran at (Hz), for cycle conversion.
    pub clock_hz: f64,
    /// One row per ledger core (app cores, IRQ cores, fabric last).
    pub cores: Vec<CoreProfile>,
}

/// Per-core slice of a [`StageProfile`].
#[derive(Debug, Clone)]
pub struct CoreProfile {
    /// Role label: `app0`, `irq1`, `fabric`.
    pub role: String,
    /// Busy time per stage, indexed by [`Stage::index`].
    pub stage_busy: Vec<SimDuration>,
}

impl StageProfile {
    /// Total busy time across all cores and stages.
    pub fn total_busy(&self) -> SimDuration {
        self.cores.iter().fold(SimDuration::ZERO, |acc, c| {
            c.stage_busy.iter().fold(acc, |a, d| a + *d)
        })
    }

    /// Busy time of one stage summed over all cores.
    pub fn stage_total(&self, stage: Stage) -> SimDuration {
        self.cores
            .iter()
            .fold(SimDuration::ZERO, |acc, c| acc + c.stage_busy[stage.index()])
    }

    /// Convert a busy time to cycles at this profile's clock.
    pub fn cycles(&self, busy: SimDuration) -> u64 {
        (busy.as_secs_f64() * self.clock_hz).round() as u64
    }
}

/// A full run's attribution output.
#[derive(Debug, Clone)]
pub struct Attribution {
    /// Per-interval verdicts `(interval end, factor)`.
    pub verdicts: Vec<(SimTime, LimitingFactor)>,
    /// The whole-run roll-up; `None` if no interval completed.
    pub verdict: Option<BottleneckVerdict>,
    /// Sender-host stage decomposition over the whole run.
    pub sender_profile: StageProfile,
    /// Receiver-host stage decomposition over the whole run.
    pub receiver_profile: StageProfile,
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::SimDuration;

    fn base() -> IntervalObs {
        IntervalObs { usable_gbps: 100.0, ..Default::default() }
    }

    #[test]
    fn drops_outrank_everything() {
        let obs = IntervalObs {
            switch_drops: 3,
            snd_app_busy: 0.99,
            zc_sends: 1,
            zc_fallbacks: 9,
            ..base()
        };
        assert_eq!(classify(&obs), LimitingFactor::SwitchBuffer);
    }

    #[test]
    fn pause_parks_read_as_flow_control() {
        let obs = IntervalObs { pause_parks: 12, snd_app_busy: 0.6, ..base() };
        assert_eq!(classify(&obs), LimitingFactor::PauseThrottled);
    }

    #[test]
    fn ring_drops_blame_the_receiver() {
        let obs = IntervalObs { ring_drops: 4, ..base() };
        assert_eq!(classify(&obs), LimitingFactor::ReceiverSoftirq);
        // ... unless a pegged core says which side of the receiver.
        let busy = IntervalObs { ring_drops: 4, rcv_app_busy: 0.97, ..base() };
        assert_eq!(classify(&busy), LimitingFactor::ReceiverAppCopy);
    }

    #[test]
    fn optmem_starvation_beats_cpu() {
        let obs = IntervalObs {
            zc_sends: 10,
            zc_fallbacks: 30,
            snd_app_busy: 0.99,
            ..base()
        };
        assert_eq!(classify(&obs), LimitingFactor::OptmemStalled);
    }

    #[test]
    fn cpu_saturation_picks_the_busiest_group() {
        let obs = IntervalObs {
            snd_app_busy: 0.98,
            rcv_irq_busy: 0.95,
            ..base()
        };
        assert_eq!(classify(&obs), LimitingFactor::SenderAppCpu);
        let rcv = IntervalObs { rcv_irq_busy: 0.96, snd_app_busy: 0.5, ..base() };
        assert_eq!(classify(&rcv), LimitingFactor::ReceiverSoftirq);
    }

    #[test]
    fn pacing_cap_detected_before_link() {
        let obs = IntervalObs {
            delivered_gbps: 9.6,
            fq_total_gbps: Some(10.0),
            ..base()
        };
        assert_eq!(classify(&obs), LimitingFactor::PacingLimited);
    }

    #[test]
    fn link_capacity_when_wire_is_full() {
        let obs = IntervalObs { delivered_gbps: 95.0, ..base() };
        assert_eq!(classify(&obs), LimitingFactor::LinkCapacity);
    }

    #[test]
    fn cwnd_limited_is_the_protocol_verdict() {
        let obs = IntervalObs {
            acks: 100,
            cwnd_limited_acks: 80,
            delivered_gbps: 20.0,
            ..base()
        };
        assert_eq!(classify(&obs), LimitingFactor::CwndLimited);
    }

    #[test]
    fn quiet_interval_defaults_to_cwnd() {
        assert_eq!(classify(&base()), LimitingFactor::CwndLimited);
    }

    #[test]
    fn moderately_busy_group_takes_the_default() {
        // No threshold crossed, but the receiver IRQ core carries real
        // load: the verdict names it rather than the window.
        let obs = IntervalObs { rcv_irq_busy: 0.7, delivered_gbps: 40.0, ..base() };
        assert_eq!(classify(&obs), LimitingFactor::ReceiverSoftirq);
    }

    #[test]
    fn verdict_rollup_majority_and_ties() {
        let t = SimTime::ZERO;
        let verdicts = vec![
            (t, LimitingFactor::SenderAppCpu),
            (t, LimitingFactor::SenderAppCpu),
            (t, LimitingFactor::CwndLimited),
        ];
        let v = BottleneckVerdict::from_intervals(&verdicts).expect("rollup");
        assert_eq!(v.primary, LimitingFactor::SenderAppCpu);
        assert_eq!(v.intervals, 3);
        assert!((v.primary_share() - 2.0 / 3.0).abs() < 1e-12);
        // Ties break by diagnostic priority.
        let tie = vec![
            (t, LimitingFactor::CwndLimited),
            (t, LimitingFactor::SwitchBuffer),
        ];
        let v = BottleneckVerdict::from_intervals(&tie).expect("rollup");
        assert_eq!(v.primary, LimitingFactor::SwitchBuffer);
        assert!(BottleneckVerdict::from_intervals(&[]).is_none());
    }

    #[test]
    fn factor_names_are_stable() {
        let names: Vec<&str> = LimitingFactor::ALL.iter().map(|f| f.name()).collect();
        assert_eq!(names.len(), 10);
        assert!(names.contains(&"sender_app_cpu"));
        assert!(names.contains(&"optmem_stalled"));
        assert!(names.contains(&"switch_buffer"));
        // All distinct.
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }

    #[test]
    fn stage_profile_totals_and_cycles() {
        let profile = StageProfile {
            clock_hz: 4.0e9,
            cores: vec![
                CoreProfile {
                    role: "app0".into(),
                    stage_busy: {
                        let mut v = vec![SimDuration::ZERO; Stage::COUNT];
                        v[Stage::TxApp.index()] = SimDuration::from_millis(500);
                        v
                    },
                },
                CoreProfile {
                    role: "irq0".into(),
                    stage_busy: {
                        let mut v = vec![SimDuration::ZERO; Stage::COUNT];
                        v[Stage::TxSoftirq.index()] = SimDuration::from_millis(250);
                        v
                    },
                },
            ],
        };
        assert_eq!(profile.total_busy(), SimDuration::from_millis(750));
        assert_eq!(profile.stage_total(Stage::TxApp), SimDuration::from_millis(500));
        assert_eq!(profile.cycles(SimDuration::from_millis(500)), 2_000_000_000);
    }
}
