//! End-to-end path specification.
//!
//! An experiment runs over one [`PathSpec`]: the paper's paths are the
//! AmLight LAN and its 25/54/104 ms WAN loops (testing capped at
//! 80 Gbps to protect production traffic, with ~16 Gbps of production
//! background), and the ESnet testbed LAN/WAN plus the production DTN
//! path at 63 ms with 802.3x flow control.

use crate::cross::CrossTrafficSpec;
use simcore::{BitRate, Bytes, SimDuration};

/// LAN vs WAN, used for reporting and default tuning choices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PathClass {
    /// Same-site, sub-millisecond RTT.
    Lan,
    /// Wide-area path.
    Wan,
}

/// A single network path between two hosts.
#[derive(Debug, Clone)]
pub struct PathSpec {
    /// Display name, e.g. `"AmLight 104ms"`.
    pub name: String,
    /// LAN or WAN.
    pub class: PathClass,
    /// Round-trip time (propagation only).
    pub rtt: SimDuration,
    /// Bottleneck egress rate of the path (switch port or WAN circuit).
    pub bottleneck: BitRate,
    /// Administrative cap below the physical bottleneck, if any
    /// (AmLight WAN tests were limited to 80 Gbps).
    pub policy_cap: Option<BitRate>,
    /// Shared buffer at the bottleneck switch.
    pub switch_buffer: Bytes,
    /// IEEE 802.3x flow control available end-to-end.
    pub flow_control: bool,
    /// Background production traffic sharing the bottleneck.
    pub cross_traffic: Option<CrossTrafficSpec>,
    /// Per-burst random loss probability on the WAN segment (transient
    /// errors on long production paths; 0 on clean testbeds).
    pub random_loss: f64,
    /// WRED-style AQM at the bottleneck (production transit gear);
    /// testbed switches are plain tail-drop.
    pub red: bool,
}

impl PathSpec {
    /// A clean LAN path at the given rate with a 64 MB shared buffer.
    pub fn lan(name: impl Into<String>, rate: BitRate) -> Self {
        PathSpec {
            name: name.into(),
            class: PathClass::Lan,
            rtt: SimDuration::from_micros(100),
            bottleneck: rate,
            policy_cap: None,
            switch_buffer: Bytes::mib(64),
            flow_control: false,
            cross_traffic: None,
            random_loss: 0.0,
            red: false,
        }
    }

    /// A clean WAN path.
    pub fn wan(name: impl Into<String>, rate: BitRate, rtt: SimDuration) -> Self {
        PathSpec {
            name: name.into(),
            class: PathClass::Wan,
            rtt,
            bottleneck: rate,
            policy_cap: None,
            switch_buffer: Bytes::mib(64),
            flow_control: false,
            cross_traffic: None,
            random_loss: 0.0,
            red: false,
        }
    }

    /// Builder: enable WRED-style AQM at the bottleneck.
    pub fn with_red(mut self) -> Self {
        self.red = true;
        self
    }

    /// Builder: apply an administrative rate cap.
    pub fn with_policy_cap(mut self, cap: BitRate) -> Self {
        self.policy_cap = Some(cap);
        self
    }

    /// Builder: enable 802.3x flow control.
    pub fn with_flow_control(mut self) -> Self {
        self.flow_control = true;
        self
    }

    /// Builder: add background cross traffic.
    pub fn with_cross_traffic(mut self, spec: CrossTrafficSpec) -> Self {
        self.cross_traffic = Some(spec);
        self
    }

    /// Builder: set per-burst random loss probability.
    pub fn with_random_loss(mut self, p: f64) -> Self {
        assert!((0.0..1.0).contains(&p), "loss probability out of range");
        self.random_loss = p;
        self
    }

    /// Builder: set the shared switch buffer size.
    pub fn with_switch_buffer(mut self, buf: Bytes) -> Self {
        self.switch_buffer = buf;
        self
    }

    /// One-way propagation delay (RTT / 2).
    pub fn one_way_delay(&self) -> SimDuration {
        self.rtt / 2
    }

    /// The rate actually available to test traffic: the physical
    /// bottleneck clipped by any policy cap.
    pub fn usable_rate(&self) -> BitRate {
        match self.policy_cap {
            Some(cap) => self.bottleneck.min(cap),
            None => self.bottleneck,
        }
    }

    /// Bandwidth-delay product at the usable rate — the window a single
    /// flow needs to fill the path.
    pub fn bdp(&self) -> Bytes {
        self.usable_rate().bdp(self.rtt)
    }

    /// True if this is a WAN path.
    pub fn is_wan(&self) -> bool {
        self.class == PathClass::Wan
    }
}

impl simcore::Canonicalize for PathSpec {
    /// `name` is display-only and excluded: renaming a path must not
    /// re-seed or re-simulate the scenarios that run over it.
    fn canonicalize(&self, c: &mut simcore::Canon) {
        c.put_str("class", &format!("{:?}", self.class));
        c.put_u64("rtt_ns", self.rtt.as_nanos());
        c.put_f64("bottleneck_bps", self.bottleneck.as_bps());
        match self.policy_cap {
            None => c.put_str("policy_cap_bps", "none"),
            Some(cap) => c.put_f64("policy_cap_bps", cap.as_bps()),
        }
        c.put_u64("switch_buffer_bytes", self.switch_buffer.as_u64());
        c.put_bool("flow_control", self.flow_control);
        match &self.cross_traffic {
            None => c.put_str("cross_traffic", "none"),
            Some(spec) => c.scope("cross_traffic", |c| spec.canonicalize(c)),
        }
        c.put_f64("random_loss", self.random_loss);
        c.put_bool("red", self.red);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lan_defaults() {
        let p = PathSpec::lan("lan", BitRate::gbps(100.0));
        assert_eq!(p.class, PathClass::Lan);
        assert!(p.rtt < SimDuration::from_millis(1));
        assert!(!p.flow_control);
        assert_eq!(p.usable_rate().as_gbps(), 100.0);
        assert!(!p.is_wan());
    }

    #[test]
    fn policy_cap_clips_usable_rate() {
        let p = PathSpec::wan("w", BitRate::gbps(100.0), SimDuration::from_millis(104))
            .with_policy_cap(BitRate::gbps(80.0));
        assert_eq!(p.usable_rate().as_gbps(), 80.0);
    }

    #[test]
    fn bdp_scales_with_rtt() {
        let p = PathSpec::wan("w", BitRate::gbps(50.0), SimDuration::from_millis(104));
        assert_eq!(p.bdp().as_u64(), 650_000_000);
        assert_eq!(p.one_way_delay().as_nanos(), 52_000_000);
    }

    #[test]
    fn builders_compose() {
        let p = PathSpec::wan("w", BitRate::gbps(100.0), SimDuration::from_millis(63))
            .with_flow_control()
            .with_cross_traffic(CrossTrafficSpec::amlight_production())
            .with_random_loss(1e-6)
            .with_switch_buffer(Bytes::mib(32));
        assert!(p.flow_control);
        assert!(p.cross_traffic.is_some());
        assert!(p.random_loss > 0.0);
        assert_eq!(p.switch_buffer, Bytes::mib(32));
        assert!(p.is_wan());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_loss_probability_rejected() {
        let _ = PathSpec::lan("l", BitRate::gbps(1.0)).with_random_loss(1.5);
    }
}
