//! The scenario scheduler: a bounded work-conserving pool.
//!
//! Experiments flatten into `(scenario, repetition)` jobs; this module
//! runs any such indexed job list on `std::thread::scope` workers
//! pulling from a shared injector (an atomic next-index counter — all
//! jobs are known up front, so stealing degenerates to "take the next
//! undone index"). Results land in deterministic slot order: job `i`
//! writes slot `i`, whatever thread ran it, so parallel and sequential
//! execution produce bit-identical output.
//!
//! Concurrency is bounded globally by a [`Gate`]: every *leaf* job (one
//! simulated repetition) holds a permit while it computes, so nested
//! fan-out — `repro all` running experiments on threads, each
//! experiment batching scenarios, each scenario running repetitions —
//! cannot multiply into `experiments × scenarios × reps` live
//! simulations. Coordination threads never hold permits, only leaves
//! do, so the nesting cannot deadlock either.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

/// A counting semaphore bounding how many simulations run at once.
#[derive(Debug)]
pub struct Gate {
    capacity: usize,
    in_use: Mutex<usize>,
    freed: Condvar,
}

/// RAII permit from a [`Gate`]; releases on drop.
#[derive(Debug)]
pub struct Permit<'a> {
    gate: &'a Gate,
}

impl Gate {
    /// A gate admitting `capacity` concurrent jobs.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "gate capacity must be positive");
        Gate { capacity, in_use: Mutex::new(0), freed: Condvar::new() }
    }

    /// Maximum concurrent permits.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Block until a permit is free, then take it.
    pub fn permit(&self) -> Permit<'_> {
        let mut in_use = self.in_use.lock().expect("gate lock");
        while *in_use >= self.capacity {
            in_use = self.freed.wait(in_use).expect("gate wait");
        }
        *in_use += 1;
        Permit { gate: self }
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut in_use = self.gate.in_use.lock().expect("gate lock");
        *in_use -= 1;
        self.gate.freed.notify_one();
    }
}

/// Parallelism from the environment: `REPRO_JOBS` if set (≥ 1), else
/// the machine's available parallelism.
pub fn jobs_from_env() -> usize {
    match std::env::var("REPRO_JOBS").ok().and_then(|v| v.parse::<usize>().ok()) {
        Some(n) if n >= 1 => n,
        Some(_) => {
            eprintln!("REPRO_JOBS must be >= 1; using available parallelism");
            default_jobs()
        }
        None => default_jobs(),
    }
}

fn default_jobs() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// The process-wide gate, sized from `REPRO_JOBS` on first use. Every
/// harness that is not given an explicit gate shares this one, so
/// however many experiments and scenarios are in flight, at most this
/// many repetitions simulate concurrently.
pub fn global_gate() -> &'static Gate {
    static GATE: OnceLock<Gate> = OnceLock::new();
    GATE.get_or_init(|| Gate::new(jobs_from_env()))
}

/// Run jobs `0..n` through `f`, at most `gate.capacity()` at a time,
/// and return the results in index order.
///
/// Workers pull indices from a shared injector and hold a gate permit
/// only while computing a job, so concurrent batches (from parallel
/// experiments or tests) share the bound instead of stacking on top of
/// each other. `f` runs on worker threads — it must not itself call
/// back into a batch on the same gate while holding state the inner
/// batch needs (leaf jobs never do).
pub fn run_batch<T, F>(gate: &Gate, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let workers = gate.capacity().min(n);
    if workers <= 1 {
        return (0..n).map(|i| {
            let _permit = gate.permit();
            f(i)
        }).collect();
    }

    let injector = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = injector.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let result = {
                    let _permit = gate.permit();
                    f(i)
                };
                *slots[i].lock().expect("slot lock") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.into_inner()
                .expect("slot lock")
                .unwrap_or_else(|| panic!("job {i} produced no result (worker died)"))
        })
        .collect()
}

/// Run `n` coordination-level tasks concurrently (no permits held):
/// used for experiment-level fan-out, where each task spends its life
/// blocked on inner [`run_batch`] calls and holding a permit would
/// starve the leaves. Results return in index order.
pub fn run_tasks<T, F>(parallel: bool, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    if !parallel || n == 1 {
        return (0..n).map(f).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for (i, slot) in slots.iter().enumerate() {
            let f = &f;
            s.spawn(move || {
                *slot.lock().expect("slot lock") = Some(f(i));
            });
        }
    });
    slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.into_inner()
                .expect("slot lock")
                .unwrap_or_else(|| panic!("task {i} produced no result (worker died)"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_land_in_slot_order() {
        let gate = Gate::new(4);
        let out = run_batch(&gate, 16, |i| i * i);
        assert_eq!(out, (0..16).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn empty_batch_is_empty() {
        let gate = Gate::new(2);
        let out: Vec<usize> = run_batch(&gate, 0, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn gate_bounds_concurrency() {
        let gate = Gate::new(3);
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        run_batch(&gate, 24, |_| {
            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(2));
            live.fetch_sub(1, Ordering::SeqCst);
        });
        assert!(peak.load(Ordering::SeqCst) <= 3, "peak {}", peak.load(Ordering::SeqCst));
    }

    #[test]
    fn nested_batches_share_the_gate_without_deadlock() {
        // Coordination tasks (no permit) fan out to leaf batches on a
        // capacity-1 gate: must complete, sequentially.
        let gate = Gate::new(1);
        let out = run_tasks(true, 3, |t| {
            let inner = run_batch(&gate, 4, |i| t * 10 + i);
            inner.iter().sum::<usize>()
        });
        assert_eq!(out, vec![6, 46, 86]);
    }

    #[test]
    fn run_tasks_sequential_matches_parallel() {
        let seq = run_tasks(false, 5, |i| i + 1);
        let par = run_tasks(true, 5, |i| i + 1);
        assert_eq!(seq, par);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = Gate::new(0);
    }
}
