//! Simulated time: nanosecond-resolution instants and durations.
//!
//! The simulator's clock is a `u64` count of nanoseconds since the start
//! of the run. 2^64 ns ≈ 584 years, so overflow is not a practical
//! concern for 60-second throughput tests.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// Round a non-negative `f64` to the nearest integer, halves away from
/// zero — bit-identical to `x.round() as u64` over the whole `f64`
/// domain (negatives, NaN and out-of-range values all saturate through
/// the same `as` conversion), but inlines to a handful of SSE2
/// instructions where `f64::round` is an out-of-line libm call on
/// baseline x86-64. The simulator converts float-domain service times
/// on every event, so this sits on the hot path.
#[inline]
pub fn round_f64_u64(x: f64) -> u64 {
    // For x < 2^53 the truncation and the fractional part are both
    // exact, so the comparison reproduces round()'s half-away-from-zero
    // tie break; for x >= 2^53 there is no fractional part and the
    // truncation is already the answer.
    let t = x as u64;
    if x - t as f64 >= 0.5 {
        t.saturating_add(1)
    } else {
        t
    }
}

/// An instant on the simulated clock (nanoseconds since run start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time (nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// Time zero: the start of the simulation run.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from seconds (fractional seconds allowed).
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        debug_assert!(secs >= 0.0, "SimTime cannot be negative");
        SimTime(round_f64_u64(secs * 1e9))
    }

    /// Raw nanosecond count.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds as `f64` (lossy for very large times; fine for our runs).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction producing a duration.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        debug_assert!(secs >= 0.0, "SimDuration cannot be negative");
        SimDuration(round_f64_u64(secs * 1e9))
    }

    /// Raw nanosecond count.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds as `f64`.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds as `f64`.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Scale by a dimensionless factor (e.g. jitter multipliers).
    #[inline]
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        debug_assert!(factor >= 0.0, "duration scale must be non-negative");
        SimDuration(round_f64_u64(self.0 as f64 * factor))
    }

    /// The larger of two durations.
    #[inline]
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// The smaller of two durations.
    #[inline]
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// True if this duration is zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Panics in debug builds if `rhs` is later than `self`.
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction underflow");
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimDuration subtraction underflow");
        SimDuration(self.0 - rhs.0)
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl crate::canon::Canonicalize for SimDuration {
    fn canonicalize(&self, c: &mut crate::canon::Canon) {
        c.put_u64("ns", self.0);
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_nanos(1_500);
        let d = SimDuration::from_micros(2);
        assert_eq!((t + d).as_nanos(), 3_500);
        assert_eq!(((t + d) - t).as_nanos(), 2_000);
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(SimTime::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
        assert_eq!(SimDuration::from_secs_f64(0.000_001).as_nanos(), 1_000);
    }

    #[test]
    fn round_f64_u64_matches_libm_round() {
        // Exhaustive over the interesting shapes: exact halves, just
        // under/over halves, subnormal-ish smalls, big values past the
        // 2^53 exactness cliff, and the saturating edges.
        let cases = [
            0.0, 0.25, 0.5, 0.75, 0.999_999_999, 1.0, 1.499_999_9, 1.5, 2.5, 1e9, 1.5e9 + 0.5,
            4.503_599_627_370_495e15, 4.503_599_627_370_496e15, 9.3e18, 2e19, f64::MAX,
            -0.2, -0.5, -3.7, f64::NAN, f64::INFINITY, f64::NEG_INFINITY,
        ];
        for &x in &cases {
            assert_eq!(round_f64_u64(x), x.round() as u64, "mismatch at {x}");
        }
        // And a dense deterministic sweep around the ns magnitudes the
        // cost model actually produces.
        let mut v = 1.0_f64;
        for i in 0..200_000u64 {
            let x = v + (i as f64) * 0.137;
            assert_eq!(round_f64_u64(x), x.round() as u64, "mismatch at {x}");
            v += 17.31;
        }
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let a = SimTime::from_nanos(10);
        let b = SimTime::from_nanos(20);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a).as_nanos(), 10);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_millis(10);
        assert_eq!(d.mul_f64(1.5).as_nanos(), 15_000_000);
        assert_eq!((d * 3).as_nanos(), 30_000_000);
        assert_eq!((d / 2).as_nanos(), 5_000_000);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12)), "12.000s");
    }

    #[test]
    fn min_max_helpers() {
        let a = SimTime::from_nanos(5);
        let b = SimTime::from_nanos(9);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let da = SimDuration::from_nanos(5);
        let db = SimDuration::from_nanos(9);
        assert_eq!(da.max(db), db);
        assert_eq!(da.min(db), da);
    }
}
