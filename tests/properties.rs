//! Property-based tests: invariants that must hold for *any*
//! configuration, checked over randomly drawn scenarios.
//!
//! The scenario generator is hand-rolled on the workspace's own
//! [`SimRng`] (no external property-testing dependency): each property
//! draws `CASES` scenarios from a fixed master seed, so failures are
//! reproducible by construction. Runs are short (1–2 simulated
//! seconds) and the case count modest — each case is a full
//! discrete-event simulation.

use dtnperf::prelude::*;
use dtnperf::simcore::SimRng;

const CASES: u64 = 10;

#[derive(Debug, Clone)]
struct AnyScenario {
    amd: bool,
    kernel: KernelVersion,
    rtt_ms: u64,
    flows: usize,
    pace_gbps: Option<f64>,
    zerocopy: bool,
    skip_rx_copy: bool,
    cc: CcAlgorithm,
    seed: u64,
}

/// Draw one scenario. Each case gets its own RNG stream derived from
/// (master seed, case index) so properties stay independent.
fn draw(master: u64, case: u64) -> AnyScenario {
    let mut rng = SimRng::seed_from_u64(master ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let kernel = match rng.uniform_u64(0, 3) {
        0 => KernelVersion::L5_15,
        1 => KernelVersion::L6_5,
        _ => KernelVersion::L6_8,
    };
    let cc = match rng.uniform_u64(0, 4) {
        0 => CcAlgorithm::Cubic,
        1 => CcAlgorithm::BbrV1,
        2 => CcAlgorithm::BbrV3,
        _ => CcAlgorithm::Htcp,
    };
    AnyScenario {
        amd: rng.chance(0.5),
        kernel,
        rtt_ms: rng.uniform_u64(0, 60),
        flows: 1 + rng.uniform_u64(0, 3) as usize,
        pace_gbps: if rng.chance(0.5) { Some(2.0 + rng.uniform_u64(0, 28) as f64) } else { None },
        zerocopy: rng.chance(0.5),
        skip_rx_copy: rng.chance(0.5),
        cc,
        seed: rng.uniform_u64(0, 1_000_000),
    }
}

fn build(s: &AnyScenario) -> (HostConfig, PathSpec, Iperf3Opts) {
    let host = if s.amd {
        Testbeds::esnet_host(s.kernel)
    } else {
        Testbeds::amlight_host(s.kernel)
    };
    let rate = if s.amd { 200.0 } else { 100.0 };
    let path = if s.rtt_ms == 0 {
        PathSpec::lan("prop-lan", BitRate::gbps(rate))
    } else {
        PathSpec::wan("prop-wan", BitRate::gbps(rate), SimDuration::from_millis(s.rtt_ms))
    };
    let mut opts = Iperf3Opts::new(2).omit(0).parallel(s.flows).congestion(s.cc).seed(s.seed);
    if let Some(g) = s.pace_gbps {
        opts = opts.fq_rate(BitRate::gbps(g));
    }
    if s.zerocopy {
        opts = opts.zerocopy();
    }
    if s.skip_rx_copy {
        opts = opts.skip_rx_copy();
    }
    (host, path, opts)
}

/// A random fault schedule for a 2-second run (possibly empty).
fn draw_faults(rng: &mut SimRng) -> FaultPlan {
    let mut plan = FaultPlan::none();
    let n = rng.uniform_u64(0, 3); // 0..=2 faults
    for _ in 0..n {
        let at = SimDuration::from_millis(200 + rng.uniform_u64(0, 1200));
        let dur = SimDuration::from_millis(50 + rng.uniform_u64(0, 300));
        plan = match rng.uniform_u64(0, 4) {
            0 => plan.with_bursty_loss(at, dur, rng.uniform(0.1, 0.7)),
            1 => plan.with_link_flap(at, dur),
            2 => plan.with_receiver_stall(at, dur),
            _ => plan.with_pause_storm(at, dur),
        };
    }
    plan
}

/// Goodput can never exceed the narrowest physical limit.
#[test]
fn goodput_bounded_by_physics() {
    for case in 0..CASES {
        let s = draw(0xFEED, case);
        let (host, path, opts) = build(&s);
        let report = iperf3_run(&host, &host, &path, &opts).unwrap();
        let nic = dtnperf::nethw::Nic::new(host.nic, host.offload.mtu).effective_rate().as_gbps();
        let mut limit = path.usable_rate().as_gbps().min(nic);
        if let Some(g) = s.pace_gbps {
            limit = limit.min(g * s.flows as f64);
        }
        let got = report.sum_bitrate().as_gbps();
        assert!(
            got <= limit * 1.02 + 0.1,
            "goodput {got:.2} exceeds physical limit {limit:.2} ({s:?})"
        );
    }
}

/// Same (config, seed) ⇒ bit-identical results.
#[test]
fn runs_are_deterministic() {
    for case in 0..CASES {
        let s = draw(0xD00D, case);
        let (host, path, opts) = build(&s);
        let a = iperf3_run(&host, &host, &path, &opts).unwrap();
        let b = iperf3_run(&host, &host, &path, &opts).unwrap();
        assert_eq!(a.sum_bitrate().as_bps(), b.sum_bitrate().as_bps(), "{s:?}");
        assert_eq!(a.sum_retr(), b.sum_retr(), "{s:?}");
        assert!((a.sender_cpu.combined_pct() - b.sender_cpu.combined_pct()).abs() < 1e-9);
    }
}

/// Per-stream rates respect the per-flow pacing cap.
#[test]
fn pacing_caps_each_stream() {
    for case in 0..CASES {
        let s = draw(0xBEEF, case);
        let (host, path, opts) = build(&s);
        let report = iperf3_run(&host, &host, &path, &opts).unwrap();
        if let Some(g) = s.pace_gbps {
            for stream in &report.streams {
                assert!(
                    stream.bitrate.as_gbps() <= g * 1.02 + 0.05,
                    "stream {} at {:.2} beats its {g} G cap ({s:?})",
                    stream.id,
                    stream.bitrate.as_gbps()
                );
            }
        }
    }
}

/// CPU accounting stays within physical bounds and data moves.
#[test]
fn cpu_and_liveness_sane() {
    for case in 0..CASES {
        let s = draw(0xCAFE, case);
        let (host, path, opts) = build(&s);
        let report = iperf3_run(&host, &host, &path, &opts).unwrap();
        let n_cores = (host.cores.app_cores.len() + host.cores.irq_cores.len()) as f64;
        for cpu in [&report.sender_cpu, &report.receiver_cpu] {
            assert!(cpu.combined_pct() >= 0.0);
            assert!(
                cpu.combined_pct() <= n_cores * 100.0 + 1e-6,
                "CPU {:.0}% exceeds {} cores ({s:?})",
                cpu.combined_pct(),
                n_cores
            );
            assert!(cpu.peak_core_pct <= 100.0 + 1e-6);
        }
        // Liveness: every configuration must move *some* data.
        assert!(report.sum_bitrate().as_gbps() > 0.01, "no data moved ({s:?})");
        // Stream accounting adds up.
        assert_eq!(report.streams.len(), s.flows);
        let sum: f64 = report.streams.iter().map(|f| f.bitrate.as_bps()).sum();
        assert!((sum - report.sum_bitrate().as_bps()).abs() < 1.0);
    }
}

/// A clean path (no drops anywhere) must not retransmit more than
/// the occasional tail-loss probe.
#[test]
fn clean_paths_barely_retransmit() {
    for case in 0..CASES {
        let s = draw(0xF00D, case);
        // Only meaningful when nothing is overloaded: pace gently.
        let (host, path, mut opts) = build(&s);
        let per_flow = 4.0 / s.flows as f64;
        opts = opts.fq_rate(BitRate::gbps(per_flow));
        let report = iperf3_run(&host, &host, &path, &opts).unwrap();
        let pkts_per_burst = host.offload.packets_per_burst();
        assert!(
            report.sum_retr() <= 4 * pkts_per_burst * s.flows as u64,
            "gently-paced clean path retransmitted {} packets ({s:?})",
            report.sum_retr()
        );
    }
}

/// Burst conservation holds for any configuration, with or without an
/// injected fault schedule: every burst handed to the wire is either
/// delivered, accounted to a drop counter, or still in flight when the
/// run ends. `Simulation::finish` verifies the ledger and returns
/// [`SimError::ConservationViolation`] on any mismatch — so `Ok` *is*
/// the property.
#[test]
fn bursts_conserved_across_random_configs_and_faults() {
    for case in 0..CASES {
        let s = draw(0xACED, case);
        let (host, path, _) = build(&s);
        let mut rng = SimRng::seed_from_u64(0xACED ^ case);
        for faults in [FaultPlan::none(), draw_faults(&mut rng)] {
            let faulted = !faults.is_empty();
            let workload = WorkloadSpec::parallel(s.flows, 2)
                .with_seed(s.seed)
                .with_faults(faults);
            let cfg = SimConfig {
                sender: host.clone(),
                receiver: host.clone(),
                path: path.clone(),
                workload,
            };
            let res = Simulation::new(cfg)
                .expect("drawn scenario must validate")
                .run()
                .unwrap_or_else(|e| panic!("conservation/run failure ({s:?}): {e}"));
            assert!(res.wire_sent > 0, "nothing reached the wire ({s:?})");
            if !faulted {
                assert_eq!(res.fault_drops, 0, "fault drops without faults ({s:?})");
            }
        }
    }
}

/// The windowed min-RTT filter vs a brute-force reference, over
/// randomized sample/flap schedules (regime shifts up and down, dense
/// and sparse gaps, queue jitter). The filter is Linux's three-slot
/// `minmax` estimator — approximate by design under sparse sampling —
/// so the exact contract is:
///
/// * the reported min is an *actual sample* observed within the last
///   [`MIN_RTT_WINDOW`] (so a stale pre-flap floor can never pin);
/// * it is never below the brute-force windowed minimum;
/// * it is never above the newest sample;
/// * SRTT stays inside the all-time sample envelope and the RTO inside
///   its RFC 6298 clamps.
#[test]
fn min_rtt_filter_tracks_brute_force_window() {
    use dtnperf::tcpstack::rtt::{MAX_RTO, MIN_RTO, MIN_RTT_WINDOW};
    use dtnperf::tcpstack::RttEstimator;
    for case in 0..20u64 {
        let mut rng = SimRng::seed_from_u64(0x11217 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut est = RttEstimator::new();
        let mut samples: Vec<(SimTime, SimDuration)> = Vec::new();
        let mut now = SimTime::ZERO;
        let mut global_min = u64::MAX;
        let mut global_max = 0u64;
        let regimes = 2 + rng.uniform_u64(0, 3);
        for _ in 0..regimes {
            // A path regime: base RTT with up to +30 % queue jitter,
            // lasting 1–15 s, sampled at gaps from 10 ms to 2 s.
            let base_us = rng.uniform_u64(500, 200_000);
            let end = now + SimDuration::from_millis(1000 + rng.uniform_u64(0, 14_000));
            while now < end {
                now += SimDuration::from_millis(10 + rng.uniform_u64(0, 1_990));
                let rtt_us = base_us + rng.uniform_u64(0, 1 + (base_us * 3) / 10);
                let sample = SimDuration::from_micros(rtt_us);
                est.on_sample(sample, now);
                samples.push((now, sample));
                global_min = global_min.min(rtt_us);
                global_max = global_max.max(rtt_us);
                // Brute force: samples no older than the window.
                samples.retain(|(t, _)| now.saturating_since(*t) <= MIN_RTT_WINDOW);
                let brute = samples.iter().map(|(_, s)| *s).min().expect("non-empty");
                let got = est.min_rtt();
                assert!(
                    got >= brute,
                    "case {case}: filter {got:?} below brute-force window min {brute:?}"
                );
                assert!(
                    samples.iter().any(|(_, s)| *s == got),
                    "case {case}: filter {got:?} is not an in-window sample"
                );
                assert!(got <= sample, "case {case}: filter {got:?} above newest {sample:?}");
                let srtt_us = est.srtt().expect("sampled").as_nanos() / 1_000;
                assert!(
                    (global_min..=global_max).contains(&srtt_us),
                    "case {case}: srtt {srtt_us} outside sample envelope"
                );
                assert!(est.rto() >= MIN_RTO && est.rto() <= MAX_RTO);
            }
        }
    }
}

/// A mid-run link flap must be survivable: once the outage clears, the
/// flow regrows to at least 90 % of its pre-flap per-second goodput.
#[test]
fn link_flap_recovers_to_pre_flap_goodput() {
    for case in 0..3 {
        // LAN only: recovery inside the run needs a short RTT.
        let host = Testbeds::esnet_host(KernelVersion::L6_8);
        let path = PathSpec::lan("flap-lan", BitRate::gbps(200.0));
        let plan = FaultPlan::none()
            .with_link_flap(SimDuration::from_millis(2500), SimDuration::from_millis(100));
        // 6 s keeps the omit window at zero, so interval bin 1 really
        // is steady pre-flap state.
        let workload = WorkloadSpec::single_stream(6).with_seed(100 + case).with_faults(plan);
        let cfg = SimConfig {
            sender: host.clone(),
            receiver: host.clone(),
            path,
            workload,
        };
        let res = Simulation::new(cfg).expect("config").run().expect("run");
        let intervals = &res.flows[0].intervals;
        assert!(intervals.len() >= 5, "need 1-second bins, got {}", intervals.len());
        // Bin 1 (t=1..2 s) is steady pre-flap; the final bin is the
        // recovered state, several RTO/slow-start cycles after the flap.
        let before = intervals[1].as_gbps();
        let after = intervals[intervals.len() - 1].as_gbps();
        assert!(
            after >= before * 0.9,
            "seed {}: post-flap {after:.1} Gbps < 90% of pre-flap {before:.1} Gbps",
            100 + case
        );
        // And the flap itself must be visible in the fault ledger.
        assert!(res.fault_drops > 0, "outage dropped nothing");
    }
}
