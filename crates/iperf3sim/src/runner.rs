//! Execute an iperf3 run over the simulator.

use crate::opts::Iperf3Opts;
use crate::report::Iperf3Report;
use linuxhost::HostConfig;
use nethw::PathSpec;
use netsim::{FaultPlan, RunningSim, SimConfig, SimError, Simulation, WorkloadSpec};
use simcore::SimDuration;
use std::fmt;

/// Why a run could not start or finish.
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// Flag/configuration validation failed before the simulation
    /// started; each string is one iperf3-style message.
    Invalid(Vec<String>),
    /// The simulation itself failed (watchdog, conservation, …).
    Sim(SimError),
}

impl RunError {
    /// The individual error messages (validation problems, or the one
    /// simulation error rendered as text).
    pub fn messages(&self) -> Vec<String> {
        match self {
            RunError::Invalid(errors) => errors.clone(),
            RunError::Sim(e) => vec![e.to_string()],
        }
    }
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Invalid(errors) => write!(f, "iperf3 error: {}", errors.join("; ")),
            RunError::Sim(e) => write!(f, "iperf3 error: {e}"),
        }
    }
}

impl std::error::Error for RunError {}

impl From<SimError> for RunError {
    fn from(e: SimError) -> Self {
        // Config problems keep their per-message structure so callers
        // (and tests) can match individual complaints.
        match e {
            SimError::InvalidConfig(problems) => RunError::Invalid(problems),
            other => RunError::Sim(other),
        }
    }
}

/// Run `iperf3 -c server` from `client` to `server` across `path`.
///
/// Validates the flags against the tool version (patches #1690/#1728)
/// and the kernel/offload configuration, then executes the
/// discrete-event simulation and renders an [`Iperf3Report`].
pub fn run(
    client: &HostConfig,
    server: &HostConfig,
    path: &PathSpec,
    opts: &Iperf3Opts,
) -> Result<Iperf3Report, RunError> {
    run_with_faults(client, server, path, opts, &FaultPlan::none(), None)
}

/// [`run`], with a fault-injection schedule attached to the workload.
///
/// Faults are not iperf3 flags — the tool under test has no idea the
/// network is about to misbehave — so they ride alongside the options
/// rather than inside them. `event_budget` optionally overrides the
/// watchdog's total event budget (mainly to force
/// [`SimError::Stalled`] in tests).
pub fn run_with_faults(
    client: &HostConfig,
    server: &HostConfig,
    path: &PathSpec,
    opts: &Iperf3Opts,
    faults: &FaultPlan,
    event_budget: Option<u64>,
) -> Result<Iperf3Report, RunError> {
    // One code path: the straight-through run is a session driven to
    // completion without intermediate steps or checkpoints, which the
    // checkpoint/resume suite verifies is bit-identical.
    start_session(client, server, path, opts, faults, event_budget)?.finish()
}

/// Validate flags and configuration, then start (but do not run) the
/// simulated test, returning a [`SimSession`] the caller can drive in
/// bounded steps, checkpoint, and resume. Used by the harness
/// supervisor for crash isolation and chaos testing;
/// [`run_with_faults`] is this plus an immediate [`SimSession::finish`].
pub fn start_session(
    client: &HostConfig,
    server: &HostConfig,
    path: &PathSpec,
    opts: &Iperf3Opts,
    faults: &FaultPlan,
    event_budget: Option<u64>,
) -> Result<SimSession, RunError> {
    let mut errors = opts.validate();

    // Pre-3.16 builds run all streams on one thread: emulate by pinning
    // every stream's app work onto a single core.
    let mut client = client.clone();
    let mut server = server.clone();
    if !opts.version.multithreaded() && opts.parallel > 1 {
        client.cores.app_cores.truncate(1);
        server.cores.app_cores.truncate(1);
    }

    let workload = WorkloadSpec {
        num_flows: opts.parallel,
        duration: opts.duration(),
        omit: SimDuration::from_secs(opts.omit_secs),
        zerocopy: opts.zerocopy,
        sendfile: opts.sendfile,
        skip_rx_copy: opts.skip_rx_copy,
        user_checksum: false,
        fq_rate: opts.fq_rate,
        cc: opts.congestion,
        // iperf3 has no per-stream -C; a mixed fleet is a simulator-level
        // workload (`WorkloadSpec::with_cc_mix`), not an iperf3 flag.
        cc_mix: Vec::new(),
        seed: opts.seed,
        faults: faults.clone(),
        event_budget,
        telemetry: opts.telemetry,
        attribution: opts.attribution,
    };
    let command = opts.command_line(&server.name);
    let cfg = SimConfig {
        sender: client,
        receiver: server,
        path: path.clone(),
        workload,
    };
    errors.extend(cfg.validate());
    if !errors.is_empty() {
        return Err(RunError::Invalid(errors));
    }
    Ok(SimSession { sim: Simulation::new(cfg)?.start(), command })
}

/// A started iperf3 test over the simulator, driven incrementally.
///
/// Stepping in chunks (instead of one blocking run) is what lets the
/// harness supervisor snapshot state between events, enforce wall-clock
/// deadlines, and — under `REPRO_CHAOS` — kill and resume workers while
/// still producing bit-identical reports.
pub struct SimSession {
    sim: RunningSim,
    command: String,
}

/// A deep snapshot of a [`SimSession`], resumable with
/// [`SimSession::resume`].
#[derive(Clone)]
pub struct SessionCheckpoint {
    sim: netsim::SimCheckpoint,
    command: String,
}

impl SessionCheckpoint {
    /// Dispatched-event count at the moment of the snapshot.
    pub fn events_done(&self) -> u64 {
        self.sim.events_done()
    }
}

impl SimSession {
    /// Total simulation events dispatched so far.
    pub fn events_done(&self) -> u64 {
        self.sim.events_done()
    }

    /// Dispatch up to `max` further events; `Ok(true)` once the run is
    /// ready for [`SimSession::finish`].
    pub fn step_events(&mut self, max: u64) -> Result<bool, RunError> {
        Ok(self.sim.step_events(max)?)
    }

    /// Engine-health snapshot of the session's event queue, sampled by
    /// the harness at checkpoint barriers.
    pub fn queue_health(&self) -> simcore::QueueHealth {
        self.sim.queue_health()
    }

    /// Simulated time reached so far, in seconds.
    pub fn sim_now_secs(&self) -> f64 {
        self.sim.sim_now_secs()
    }

    /// Snapshot the full session state between events.
    pub fn checkpoint(&self) -> SessionCheckpoint {
        SessionCheckpoint { sim: self.sim.checkpoint(), command: self.command.clone() }
    }

    /// Rebuild a session from a snapshot; it replays exactly the events
    /// the original would have dispatched.
    pub fn resume(ck: SessionCheckpoint) -> SimSession {
        SimSession { sim: RunningSim::resume(ck.sim), command: ck.command }
    }

    /// Drain remaining events and render the report.
    pub fn finish(self) -> Result<Iperf3Report, RunError> {
        let result = self.sim.finish()?;
        // Run-level warnings (e.g. past-scheduled events clamped by the
        // release-mode queue) don't fail the run, but must not vanish:
        // the report is suspect and the reader should know.
        for warning in result.warnings() {
            eprintln!("warning: {warning}");
        }
        Ok(Iperf3Report::from_run(self.command, &result))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::version::Iperf3Version;
    use linuxhost::KernelVersion;
    use simcore::BitRate;

    fn hosts_and_path() -> (HostConfig, HostConfig, PathSpec) {
        (
            HostConfig::esnet_amd(KernelVersion::L6_8),
            HostConfig::esnet_amd(KernelVersion::L6_8),
            PathSpec::lan("lan", BitRate::gbps(200.0)),
        )
    }

    #[test]
    fn basic_run_produces_report() {
        let (c, s, p) = hosts_and_path();
        let report = run(&c, &s, &p, &Iperf3Opts::new(3).omit(0)).expect("run");
        assert_eq!(report.streams.len(), 1);
        let gbps = report.sum_bitrate().as_gbps();
        assert!((30.0..50.0).contains(&gbps), "AMD LAN default: {gbps:.1}");
        assert!(report.command.contains("iperf3 -c"));
    }

    #[test]
    fn invalid_flags_refused() {
        let (c, s, p) = hosts_and_path();
        let mut opts = Iperf3Opts::new(3).zerocopy();
        opts.version = Iperf3Version::v3_17(); // no patch 1690
        let err = run(&c, &s, &p, &opts).unwrap_err();
        assert!(err.to_string().contains("1690"));
    }

    #[test]
    fn fq_rate_requires_fq_qdisc() {
        let (mut c, s, p) = hosts_and_path();
        c.sysctl = linuxhost::SysctlConfig::stock();
        let opts = Iperf3Opts::new(3).fq_rate(BitRate::gbps(2.0));
        let err = run(&c, &s, &p, &opts).unwrap_err();
        assert!(err.to_string().contains("fq"), "{err}");
    }

    #[test]
    fn single_threaded_parallel_is_slower() {
        // v3.13 runs -P 4 on one core; the paper's v3.16+ uses four.
        let (c, s, p) = hosts_and_path();
        let mut old = Iperf3Opts::new(4).omit(0).parallel(4).seed(3);
        old.version = Iperf3Version { patch_1690: true, patch_1728: true, minor: 13 };
        let new = Iperf3Opts::new(4).omit(0).parallel(4).seed(3);
        let r_old = run(&c, &s, &p, &old).expect("old run");
        let r_new = run(&c, &s, &p, &new).expect("new run");
        assert!(
            r_new.sum_bitrate().as_gbps() > r_old.sum_bitrate().as_gbps() * 1.5,
            "multithreaded {:.1} should beat single-threaded {:.1}",
            r_new.sum_bitrate().as_gbps(),
            r_old.sum_bitrate().as_gbps()
        );
    }

    #[test]
    fn seeds_vary_results_slightly() {
        let (c, s, p) = hosts_and_path();
        let a = run(&c, &s, &p, &Iperf3Opts::new(2).omit(0).seed(1)).unwrap();
        let b = run(&c, &s, &p, &Iperf3Opts::new(2).omit(0).seed(2)).unwrap();
        assert_ne!(a.sum_bitrate().as_bps(), b.sum_bitrate().as_bps());
        // ... but within the same ballpark (service jitter, not chaos).
        let ratio = a.sum_bitrate().as_bps() / b.sum_bitrate().as_bps();
        assert!((0.8..1.25).contains(&ratio), "ratio {ratio}");
    }
}
