//! `harness` — the test harness and the paper's experiment suite.
//!
//! Modelled on the ESnet "Network Test Harness" the paper uses
//! (§III-G): every test configuration is run for a fixed duration, a
//! minimum number of times, with `mpstat` running alongside; results
//! are reported as mean/stdev/min/max.
//!
//! * [`testbeds`] — the AmLight and ESnet testbeds (hosts + paths) as
//!   calibrated reproductions of Figs. 1–2.
//! * [`scenario`] — one test configuration (hosts × path × iperf3
//!   flags).
//! * [`runner`] — the repetition runner (scenario batches flatten into
//!   `(scenario, repetition)` jobs on the bounded pool) producing
//!   [`runner::TestSummary`]; failed repetitions are retried once and
//!   recorded per-seed. Seeds derive from scenario fingerprints, not
//!   loop positions.
//! * [`sched`] — the bounded work-conserving pool and the process-wide
//!   concurrency gate (`REPRO_JOBS`).
//! * [`cache`] — the content-addressed run cache (`REPRO_CACHE_DIR`):
//!   checksummed JSON reports keyed on canonical scenario + seed +
//!   cost-model version, with corrupt/truncated/stale entries counted
//!   and self-healed.
//! * [`supervise`] — the run supervisor: crash isolation, wall-clock
//!   deadlines, error-class-aware retries against a per-experiment
//!   budget, checkpoint/resume, and the degraded-run ledger.
//! * [`chaos`] — seeded harness-fault injection (`REPRO_CHAOS`):
//!   worker kills, cache corruption, trace-write failures.
//! * [`ctx`] — [`ctx::RunCtx`]: effort, tracing, cache, chaos and
//!   parallelism resolved once at entry and threaded explicitly.
//! * [`metrics`] — the run-introspection hub (`--metrics <dir>` /
//!   `REPRO_METRICS`): HDR-histogram registry, OpenMetrics exposition,
//!   per-repetition interval series, phase spans, and the live
//!   stderr heartbeat. Observer-neutral by construction (§6h).
//! * [`render`] — ASCII tables and grouped bar charts for terminal
//!   reports.
//! * [`trace`] — JSON-lines telemetry traces (`--trace <dir>`), one
//!   file per surviving repetition, plus simulated-`perf` profile
//!   files when attribution ran.
//! * [`profile`] — folded-stack and `perf report` renderings of a
//!   run's per-stage cycle profiles.
//! * [`experiments`] — one module per table/figure of the paper, plus
//!   the §V-C future-work extensions and the ablations called out in
//!   DESIGN.md.

#![deny(unreachable_pub)]
// Recoverable failures carry typed errors; every surviving `expect`
// states its infallibility argument (tests are exempt).
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod chaos;
pub mod ctx;
pub mod effort;
pub mod experiments;
pub mod metrics;
pub mod profile;
pub mod render;
pub mod runner;
pub mod scenario;
pub mod sched;
pub mod supervise;
pub mod testbeds;
pub mod trace;

pub use cache::{CacheFault, RunCache};
pub use chaos::{ChaosPlan, ChaosStats};
pub use ctx::RunCtx;
pub use effort::Effort;
pub use metrics::MetricsHub;
pub use render::{FigureData, Series, TableData};
pub use runner::{FailedRep, ScenarioError, TestHarness, TestSummary};
pub use scenario::Scenario;
pub use supervise::{
    ErrorBudget, ErrorClass, RepError, RetryPolicy, RunLedger, ScenarioRecord, Supervisor,
};
pub use testbeds::{AmLightPath, EsnetPath, Testbeds};
