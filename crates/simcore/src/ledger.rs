//! Per-core, per-stage busy-time ledger for bottleneck attribution.
//!
//! A [`CycleLedger`] is a flat `cores × stages` matrix of accumulated
//! busy time. It is the substrate of the simulator's `perf`-style
//! profiles: every service call an instrumented host executes charges
//! `(core, stage)` here, and the attribution layer later reads the
//! matrix back as per-interval deltas or whole-run profiles.
//!
//! The ledger is unit-neutral on purpose: it stores [`SimDuration`]s,
//! not cycles, because the clock rate is a property of the host model,
//! not of the accounting. Callers that want cycle counts multiply by
//! their own clock. Likewise it knows nothing about what a "stage" is —
//! stage indices are dense `usize`s supplied by the instrumenting
//! layer, keeping this crate free of TCP/Linux vocabulary.

use crate::time::SimDuration;

/// A `cores × stages` matrix of accumulated busy time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleLedger {
    num_cores: usize,
    num_stages: usize,
    /// Row-major: `busy[core * num_stages + stage]`.
    busy: Vec<SimDuration>,
}

impl CycleLedger {
    /// An all-zero ledger for `num_cores × num_stages` cells.
    pub fn new(num_cores: usize, num_stages: usize) -> Self {
        CycleLedger { num_cores, num_stages, busy: vec![SimDuration::ZERO; num_cores * num_stages] }
    }

    /// Number of cores tracked.
    pub fn num_cores(&self) -> usize {
        self.num_cores
    }

    /// Number of stages tracked.
    pub fn num_stages(&self) -> usize {
        self.num_stages
    }

    /// Charge `dur` of busy time to `(core, stage)`.
    pub fn charge(&mut self, core: usize, stage: usize, dur: SimDuration) {
        self.busy[core * self.num_stages + stage] += dur;
    }

    /// Accumulated busy time of one `(core, stage)` cell.
    pub fn busy(&self, core: usize, stage: usize) -> SimDuration {
        self.busy[core * self.num_stages + stage]
    }

    /// Total busy time on one core across all stages.
    pub fn core_total(&self, core: usize) -> SimDuration {
        let base = core * self.num_stages;
        self.busy[base..base + self.num_stages]
            .iter()
            .fold(SimDuration::ZERO, |acc, d| acc + *d)
    }

    /// Total busy time of one stage across all cores.
    pub fn stage_total(&self, stage: usize) -> SimDuration {
        (0..self.num_cores)
            .fold(SimDuration::ZERO, |acc, c| acc + self.busy[c * self.num_stages + stage])
    }

    /// Per-core totals, one entry per core (for interval marks).
    pub fn core_totals(&self) -> Vec<SimDuration> {
        (0..self.num_cores).map(|c| self.core_total(c)).collect()
    }

    /// One core's per-stage busy row, cloned.
    pub fn core_row(&self, core: usize) -> Vec<SimDuration> {
        let base = core * self.num_stages;
        self.busy[base..base + self.num_stages].to_vec()
    }

    /// Cell-wise difference `self − mark` (saturating), for turning two
    /// cumulative snapshots into a per-interval delta. Panics if the
    /// shapes differ.
    pub fn delta_since(&self, mark: &CycleLedger) -> CycleLedger {
        assert_eq!(self.num_cores, mark.num_cores, "ledger core count mismatch");
        assert_eq!(self.num_stages, mark.num_stages, "ledger stage count mismatch");
        CycleLedger {
            num_cores: self.num_cores,
            num_stages: self.num_stages,
            busy: self
                .busy
                .iter()
                .zip(&mark.busy)
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_and_totals() {
        let mut l = CycleLedger::new(3, 2);
        l.charge(0, 0, SimDuration::from_micros(10));
        l.charge(0, 1, SimDuration::from_micros(5));
        l.charge(2, 1, SimDuration::from_micros(7));
        assert_eq!(l.busy(0, 0), SimDuration::from_micros(10));
        assert_eq!(l.busy(1, 0), SimDuration::ZERO);
        assert_eq!(l.core_total(0), SimDuration::from_micros(15));
        assert_eq!(l.core_total(2), SimDuration::from_micros(7));
        assert_eq!(l.stage_total(1), SimDuration::from_micros(12));
        assert_eq!(
            l.core_totals(),
            vec![
                SimDuration::from_micros(15),
                SimDuration::ZERO,
                SimDuration::from_micros(7)
            ]
        );
    }

    #[test]
    fn accumulation_is_additive() {
        let mut l = CycleLedger::new(1, 1);
        for _ in 0..100 {
            l.charge(0, 0, SimDuration::from_nanos(3));
        }
        assert_eq!(l.busy(0, 0), SimDuration::from_nanos(300));
    }

    #[test]
    fn delta_since_subtracts_cellwise() {
        let mut mark = CycleLedger::new(2, 2);
        mark.charge(0, 0, SimDuration::from_micros(4));
        let mut now = mark.clone();
        now.charge(0, 0, SimDuration::from_micros(6));
        now.charge(1, 1, SimDuration::from_micros(2));
        let d = now.delta_since(&mark);
        assert_eq!(d.busy(0, 0), SimDuration::from_micros(6));
        assert_eq!(d.busy(1, 1), SimDuration::from_micros(2));
        assert_eq!(d.busy(0, 1), SimDuration::ZERO);
    }

    #[test]
    fn core_row_matches_cells() {
        let mut l = CycleLedger::new(2, 3);
        l.charge(1, 0, SimDuration::from_nanos(1));
        l.charge(1, 2, SimDuration::from_nanos(9));
        assert_eq!(
            l.core_row(1),
            vec![
                SimDuration::from_nanos(1),
                SimDuration::ZERO,
                SimDuration::from_nanos(9)
            ]
        );
    }

    #[test]
    #[should_panic(expected = "core count mismatch")]
    fn delta_shape_mismatch_panics() {
        let a = CycleLedger::new(2, 2);
        let b = CycleLedger::new(3, 2);
        let _ = a.delta_since(&b);
    }
}
