//! Invariants and golden verdicts of the bottleneck-attribution engine.
//!
//! Three properties the harness builds on:
//!
//! 1. **Observer neutrality** — attribution is bookkeeping only: a run
//!    with attribution enabled produces bit-identical traffic (flows,
//!    drops, CPU, conservation counters) to the same seed without it.
//! 2. **Ledger sanity** — per-core stage busy time never exceeds the
//!    wall clock (modulo the one service span a FIFO server may book
//!    past the end), and the ledger agrees with the `mpstat`-style
//!    [`linuxhost::CpuReport`] the run already publishes.
//! 3. **Golden verdicts** — the paper's diagnosis narratives come out
//!    of the classifier: a plain-copy Intel sender is sender-app-bound,
//!    zerocopy shifts the bottleneck to the receiver, starved
//!    `optmem_max` reads as optmem-stalled, a shallow switch without
//!    flow control reads as switch-buffer loss, and an `--fq-rate` cap
//!    reads as pacing-limited.

use linuxhost::{HostConfig, KernelVersion, SysctlConfig};
use nethw::PathSpec;
use netsim::{LimitingFactor, RunResult, SimConfig, Simulation, WorkloadSpec};
use simcore::{BitRate, Bytes, SimDuration};

fn run(sender: HostConfig, receiver: HostConfig, path: PathSpec, workload: WorkloadSpec) -> RunResult {
    let cfg = SimConfig { sender, receiver, path, workload };
    Simulation::new(cfg).expect("config").run().expect("run")
}

fn amlight_lan_run(workload: WorkloadSpec) -> RunResult {
    let host = HostConfig::amlight_intel(KernelVersion::L6_8);
    run(host.clone(), host, PathSpec::lan("AmLight LAN", BitRate::gbps(100.0)), workload)
}

fn workload(secs: u64) -> WorkloadSpec {
    let mut w = WorkloadSpec::single_stream(secs);
    w.omit = SimDuration::ZERO;
    w
}

fn primary(res: &RunResult) -> LimitingFactor {
    res.attribution
        .as_ref()
        .expect("attribution enabled")
        .verdict
        .as_ref()
        .expect("at least one classified interval")
        .primary
}

/// Enabling attribution must not perturb the simulation: same seed,
/// same traffic, bit for bit. The user-checksum path is included
/// because instrumentation splits the write+checksum stint into two
/// ledger charges — the completion times must stay identical.
#[test]
fn attribution_is_observer_neutral() {
    let base = amlight_lan_run(workload(4).with_user_checksum().with_seed(7));
    let attributed =
        amlight_lan_run(workload(4).with_user_checksum().with_seed(7).with_attribution());
    assert!(base.attribution.is_none(), "attribution off by default");
    assert!(attributed.attribution.is_some());

    assert_eq!(base.flows.len(), attributed.flows.len());
    for (a, b) in base.flows.iter().zip(&attributed.flows) {
        assert_eq!(a.bytes, b.bytes);
        assert_eq!(a.retr_packets, b.retr_packets);
        assert_eq!(a.rto_events, b.rto_events);
        assert_eq!(
            a.intervals.iter().map(|r| r.as_bps()).collect::<Vec<_>>(),
            b.intervals.iter().map(|r| r.as_bps()).collect::<Vec<_>>()
        );
    }
    assert_eq!(base.wire_sent, attributed.wire_sent);
    assert_eq!(base.switch_drops, attributed.switch_drops);
    assert_eq!(base.ring_drops, attributed.ring_drops);
    assert_eq!(base.random_drops, attributed.random_drops);
    assert_eq!(base.fault_drops, attributed.fault_drops);
    assert_eq!(base.cpu_intervals, attributed.cpu_intervals);
    assert_eq!(base.sender_cpu.per_core, attributed.sender_cpu.per_core);
    assert_eq!(base.receiver_cpu.per_core, attributed.receiver_cpu.per_core);
}

/// Ledger busy time per core stays within the wall clock, and the
/// ledger reproduces the `mpstat` CPU report: with a zero omit window
/// the report's busy% × duration equals the ledger's core total (the
/// only slack is work booked at the omit instant and the final service
/// span a FIFO server may carry past the end).
#[test]
fn ledger_agrees_with_wall_clock_and_mpstat() {
    let secs = 4;
    let res = amlight_lan_run(workload(secs).with_seed(11).with_attribution());
    let attr = res.attribution.as_ref().expect("attribution");
    let dur = secs as f64;
    // One service span may straddle the end of the run; FIFO bookahead
    // beyond ~a TSQ horizon of work would mean double charging.
    let slack = 0.1;
    for (profile, report) in [
        (&attr.sender_profile, &res.sender_cpu),
        (&attr.receiver_profile, &res.receiver_cpu),
    ] {
        assert!(profile.clock_hz > 1e9, "implausible clock {}", profile.clock_hz);
        // Ledger rows: every accounted core plus the fabric pseudo-core.
        assert_eq!(profile.cores.len(), report.per_core.len() + 1);
        assert_eq!(profile.cores.last().expect("fabric row").role, "fabric");
        for (i, core) in profile.cores.iter().enumerate() {
            let busy: f64 =
                core.stage_busy.iter().map(|d| d.as_secs_f64()).sum();
            assert!(
                busy <= dur + slack,
                "core {} ({}) booked {busy:.3}s in a {dur:.0}s run",
                i,
                core.role
            );
            if let Some(pct) = report.per_core.get(i) {
                let reported = pct / 100.0 * dur;
                assert!(
                    (busy - reported).abs() < 0.05,
                    "core {} ({}): ledger {busy:.4}s vs mpstat {reported:.4}s",
                    i,
                    core.role
                );
            }
        }
    }
    // The run did real work: the sender's ledger is not empty.
    assert!(attr.sender_profile.total_busy() > SimDuration::ZERO);
}

/// Two parallel streams squeezed onto one sender app core: every
/// `write()` copy serialises behind the same CPU, like pre-3.16
/// single-threaded iperf3 (§III-B).
fn single_app_core_workload(secs: u64) -> (HostConfig, HostConfig, PathSpec, WorkloadSpec) {
    let mut sender = HostConfig::amlight_intel(KernelVersion::L6_8);
    sender.cores.app_cores.truncate(1);
    let receiver = HostConfig::amlight_intel(KernelVersion::L6_8);
    let mut w = WorkloadSpec::parallel(2, secs);
    w.omit = SimDuration::ZERO;
    (sender, receiver, PathSpec::lan("AmLight LAN", BitRate::gbps(100.0)), w)
}

/// Narrative 1a (§V-B): a plain-copy sender whose streams share one
/// application core saturates that core on the `write()` copy.
#[test]
fn copy_bound_sender_reads_as_sender_app_cpu() {
    let (sender, receiver, path, w) = single_app_core_workload(4);
    let res = run(sender, receiver, path, w.with_seed(21).with_attribution());
    assert_eq!(primary(&res), LimitingFactor::SenderAppCpu, "{:?}", verdicts(&res));
}

/// Narrative 1b: the same host with MSG_ZEROCOPY stops copying, goes
/// faster, and the bottleneck moves to the receiver's softirq cores.
#[test]
fn zerocopy_shifts_bottleneck_to_receiver() {
    let (sender, receiver, path, w) = single_app_core_workload(4);
    let copy = run(
        sender.clone(),
        receiver.clone(),
        path.clone(),
        w.clone().with_seed(22).with_attribution(),
    );
    let zc = run(sender, receiver, path, w.with_zerocopy().with_seed(22).with_attribution());
    assert_eq!(primary(&zc), LimitingFactor::ReceiverSoftirq, "{:?}", verdicts(&zc));
    assert!(
        zc.total_goodput().as_gbps() > copy.total_goodput().as_gbps() * 1.1,
        "zerocopy {:.1}G should beat copy {:.1}G",
        zc.total_goodput().as_gbps(),
        copy.total_goodput().as_gbps()
    );
}

/// Narrative 2 (Fig. 9): zerocopy against a starved `optmem_max` on a
/// long path falls back to copying most of the time — the verdict
/// names the misconfiguration, not the CPU it wastes. The path must be
/// long: completions release their optmem charge after ~1 RTT, so only
/// a WAN keeps enough notifications in flight to exhaust the budget.
#[test]
fn starved_optmem_reads_as_optmem_stalled() {
    let mut sender = HostConfig::amlight_intel(KernelVersion::L6_8);
    sender.sysctl = SysctlConfig::paper_tuned_with_optmem(Bytes::kib(20));
    let receiver = HostConfig::amlight_intel(KernelVersion::L6_8);
    let res = run(
        sender,
        receiver,
        PathSpec::wan("starved WAN", BitRate::gbps(100.0), SimDuration::from_millis(50)),
        workload(6).with_zerocopy().with_seed(23).with_attribution(),
    );
    assert_eq!(primary(&res), LimitingFactor::OptmemStalled, "{:?}", verdicts(&res));
    assert!(res.zc_fallback_fraction() > 0.25, "{}", res.zc_fallback_fraction());
}

/// Narrative 3 (Tables I/II): senders overrunning a shallow-buffered
/// switch without 802.3x read as switch-buffer loss.
#[test]
fn shallow_switch_reads_as_switch_buffer() {
    let host = HostConfig::esnet_amd(KernelVersion::L6_8);
    let path = PathSpec::lan("shallow", BitRate::gbps(10.0))
        .with_switch_buffer(Bytes::kib(256));
    let res = run(
        host.clone(),
        host,
        path,
        workload(4).with_seed(24).with_attribution(),
    );
    assert_eq!(primary(&res), LimitingFactor::SwitchBuffer, "{:?}", verdicts(&res));
    assert!(res.switch_drops > 0);
}

/// Golden: an `--fq-rate` cap well under both the link and the CPU
/// ceiling reads as pacing-limited.
#[test]
fn fq_rate_cap_reads_as_pacing_limited() {
    let host = HostConfig::esnet_amd(KernelVersion::L6_8);
    let res = run(
        host.clone(),
        host,
        PathSpec::lan("lan", BitRate::gbps(200.0)),
        workload(4).with_fq_rate(BitRate::gbps(10.0)).with_seed(25).with_attribution(),
    );
    assert_eq!(primary(&res), LimitingFactor::PacingLimited, "{:?}", verdicts(&res));
}

/// Per-interval verdicts ride on the telemetry stream: with both
/// samplers on a 1 s tick, measured-window samples carry the fresh
/// interval verdict.
#[test]
fn telemetry_samples_carry_verdicts() {
    let res = amlight_lan_run(
        workload(4)
            .with_seed(26)
            .with_attribution()
            .with_telemetry(SimDuration::from_secs(1)),
    );
    let attr = res.attribution.as_ref().expect("attribution");
    assert!(!attr.verdicts.is_empty());
    let trace = &res.telemetry.as_ref().expect("telemetry").flows[0];
    let tagged = trace.samples.values().iter().filter(|s| s.limiting.is_some()).count();
    assert!(tagged >= attr.verdicts.len().min(trace.samples.len()) - 1, "{tagged} tagged");
    // The last sample carries the final verdict.
    let (_, last) = trace.samples.last().expect("samples");
    assert_eq!(last.limiting, attr.verdicts.last().map(|(_, v)| *v));
}

fn verdicts(res: &RunResult) -> Vec<(f64, &'static str)> {
    res.attribution
        .as_ref()
        .map(|a| {
            a.verdicts
                .iter()
                .map(|(t, v)| (t.saturating_since(simcore::SimTime::ZERO).as_secs_f64(), v.name()))
                .collect()
        })
        .unwrap_or_default()
}
