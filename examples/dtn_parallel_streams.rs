//! The DTN use case (§V-B): a production data-transfer node pushing 8
//! parallel streams across a 63 ms path with 802.3x flow control —
//! what per-flow pacing rate should it use?
//!
//! ```text
//! cargo run --release --example dtn_parallel_streams
//! ```
//!
//! Reproduces the Table III trade-off: unpaced streams interfere
//! (retransmits, wide per-flow spread); pacing to ~the fair share
//! keeps the same aggregate with almost no retransmits and perfectly
//! even flows.

use dtnperf::prelude::*;

fn main() {
    let host = Testbeds::prod_dtn_host();
    let path = Testbeds::prod_dtn_path();
    println!(
        "DTN: {} x2 over {} (flow control: {})\n",
        host.name, path.name, path.flow_control
    );
    println!(
        "{:<18} {:>10} {:>10} {:>16} {:>8}",
        "pacing", "aggregate", "retr", "per-flow range", "stdev"
    );

    let harness = TestHarness::new(4);
    let mut best: Option<(String, f64, f64)> = None;
    for pace in [None, Some(15.0), Some(12.0), Some(10.0), Some(8.0)] {
        let label = match pace {
            None => "unpaced".to_string(),
            Some(g) => format!("{g:.0} Gbps/flow"),
        };
        let mut opts = Iperf3Opts::new(16).omit(4).parallel(8);
        if let Some(g) = pace {
            opts = opts.fq_rate(BitRate::gbps(g));
        }
        let s = harness.run(&Scenario::symmetric(&label, host.clone(), path.clone(), opts)).expect("scenario");
        println!(
            "{label:<18} {:>7.1} G {:>10.0} {:>8.1}-{:<7.1} {:>8.1}",
            s.throughput_gbps.mean,
            s.retr.mean,
            s.min_stream_gbps,
            s.max_stream_gbps,
            s.throughput_gbps.stdev,
        );
        // "Best" = highest aggregate among low-retransmit settings.
        let clean = s.retr.mean < 1000.0;
        if clean && best.as_ref().is_none_or(|(_, g, _)| s.throughput_gbps.mean > *g) {
            best = Some((label.clone(), s.throughput_gbps.mean, s.retr.mean));
        }
    }

    if let Some((label, gbps, retr)) = best {
        println!(
            "\nrecommendation: pace at {label} — {gbps:.0} Gbps aggregate with ~{retr:.0} retransmits."
        );
    }
    println!("paper guidance (SV-B): 5-8 Gbps/flow toward 100G peers, ~1 Gbps toward 10G clients;");
    println!("hosts low on CPU should use MSG_ZEROCOPY-capable tools.");
}
