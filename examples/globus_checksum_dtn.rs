//! §V-B's closing recommendation, quantified: "A heavily used DTN that
//! is running out of CPU serving data to clients would benefit from
//! using tools that support MSG_ZEROCOPY. Software that does
//! user-level checksums, such as Globus, may benefit from the extra
//! CPU cycles."
//!
//! ```text
//! cargo run --release --example globus_checksum_dtn
//! ```
//!
//! We model a Globus-style data mover: every byte is checksummed in
//! user space on both ends (MD5-class digest) on top of the transfer
//! itself. With copy-mode sends the checksum competes with the
//! user→kernel copy for the same core; MSG_ZEROCOPY hands those cycles
//! back to the digest.

use dtnperf::netsim::{SimConfig, Simulation, WorkloadSpec};
use dtnperf::prelude::*;

fn run(label: &str, zerocopy: bool, checksum: bool) {
    // The clients: ordinary tuned hosts with plenty of cores.
    let client_side = Testbeds::amlight_host(KernelVersion::L6_8)
        .with_optmem(SysctlConfig::optmem_3_25_mb());
    // The *busy serving DTN* of SV-B: only two cores are left for the
    // data mover (the rest serve disk I/O and other transfers), so
    // four flows share each application core.
    let mut host = client_side.clone();
    host.cores.app_cores.truncate(2);
    let mut workload = WorkloadSpec::parallel(8, 14).with_fq_rate(BitRate::gbps(10.0));
    workload.omit = SimDuration::from_secs(4);
    if zerocopy {
        workload = workload.with_zerocopy();
    }
    if checksum {
        workload = workload.with_user_checksum();
    }
    let cfg = SimConfig {
        sender: host,
        receiver: client_side,
        path: Testbeds::amlight_path(AmLightPath::Wan25ms),
        workload,
    };
    let res = Simulation::new(cfg).expect("config").run().expect("run");
    println!(
        "{label:<40} {:6.1} Gbps   sender CPU app={:.0}% irq={:.0}%",
        res.total_goodput().as_gbps(),
        res.sender_cpu.app_pct,
        res.sender_cpu.irq_pct,
    );
}

fn main() {
    println!("Globus-style busy DTN: 8 flows paced at 10G over the 25 ms path,");
    println!("2 application cores shared by all flows\n");
    run("plain transfer (copy)", false, false);
    run("plain transfer (zerocopy)", true, false);
    run("with user checksums (copy)", false, true);
    run("with user checksums (zerocopy)", true, true);
    println!("\nSV-B: zerocopy returns the copy cycles to the checksum, so a");
    println!("checksumming DTN keeps its paced rate instead of going CPU-bound.");
}
