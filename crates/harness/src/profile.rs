//! Simulated `perf` output: folded stacks and a `perf report` table.
//!
//! The paper's workflow for "why is this flow slow?" is to run `perf`
//! alongside iperf3 and read where the cycles went (copies, checksums,
//! softirq). The attribution engine's [`StageProfile`] carries the
//! same information for a simulated run; this module renders it in the
//! two formats that workflow expects:
//!
//! * **folded stacks** — `host;core;stage <cycles>` lines, the input
//!   format of Brendan Gregg's `flamegraph.pl` / `inferno`, so a trace
//!   directory turns into a flame graph with one shell pipe;
//! * **`perf report` table** — stage rows sorted by overhead, like
//!   `perf report --stdio --sort cpu,sym`.

use iperf3sim::Iperf3Report;
use linuxhost::Stage;
use netsim::StageProfile;
use std::fmt::Write as _;

/// The two hosts of a run, in render order.
fn hosts(report: &Iperf3Report) -> Option<[(&'static str, &StageProfile); 2]> {
    let attr = report.attribution.as_ref()?;
    Some([("sender", &attr.sender_profile), ("receiver", &attr.receiver_profile)])
}

/// Folded-stack lines (`host;core;stage <cycles>`), one per non-idle
/// (host, core, stage) triple. `None` when the report carries no
/// attribution. Cycle counts use each host's own cost-model clock, so
/// a 2.8 GHz receiver and a 3.1 GHz sender fold honestly.
pub fn folded_stacks(report: &Iperf3Report) -> Option<String> {
    let mut out = String::with_capacity(1024);
    for (host, profile) in hosts(report)? {
        for core in &profile.cores {
            for stage in Stage::ALL {
                let cycles = profile.cycles(core.stage_busy[stage.index()]);
                if cycles > 0 {
                    let _ = writeln!(out, "{host};{};{} {cycles}", core.role, stage.name());
                }
            }
        }
    }
    Some(out)
}

/// One row of the [`perf_report`] table.
struct Row {
    host: &'static str,
    core: String,
    stage: &'static str,
    cycles: u64,
}

/// A `perf report --stdio`-style table over both hosts: one row per
/// non-idle (host, core, stage) triple, sorted by overhead descending.
/// Overhead is the share of all busy cycles in the run (both hosts
/// combined), like `perf report` over a whole-system record. `None`
/// when the report carries no attribution.
pub fn perf_report(report: &Iperf3Report) -> Option<String> {
    let mut rows: Vec<Row> = Vec::new();
    for (host, profile) in hosts(report)? {
        for core in &profile.cores {
            for stage in Stage::ALL {
                let cycles = profile.cycles(core.stage_busy[stage.index()]);
                if cycles > 0 {
                    rows.push(Row { host, core: core.role.clone(), stage: stage.name(), cycles });
                }
            }
        }
    }
    rows.sort_by_key(|r| std::cmp::Reverse(r.cycles));
    let total: u64 = rows.iter().map(|r| r.cycles).sum();
    let mut out = String::with_capacity(1024);
    let _ = writeln!(out, "# Overhead        Cycles  Host      Core    Stage");
    let _ = writeln!(out, "# ........  ............  ........  ......  ...........");
    for r in &rows {
        let pct = if total > 0 { r.cycles as f64 / total as f64 * 100.0 } else { 0.0 };
        let _ = writeln!(
            out,
            "   {pct:6.2}%  {:>12}  {:<8}  {:<6}  {}",
            r.cycles, r.host, r.core, r.stage
        );
    }
    if let Some(v) = report.attribution.as_ref().and_then(|a| a.verdict.as_ref()) {
        let _ = writeln!(
            out,
            "#\n# bottleneck: {} ({:.0}% of {} interval(s))",
            v.primary.name(),
            v.primary_share() * 100.0,
            v.intervals
        );
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbeds::{EsnetPath, Testbeds};
    use iperf3sim::Iperf3Opts;
    use linuxhost::KernelVersion;

    fn attributed_report() -> Iperf3Report {
        let host = Testbeds::esnet_host(KernelVersion::L6_8);
        let path = Testbeds::esnet_path(EsnetPath::Lan);
        let opts = Iperf3Opts::new(2).omit(0).attribution();
        iperf3sim::run(&host, &host, &path, &opts).expect("run")
    }

    #[test]
    fn unattributed_report_renders_nothing() {
        let host = Testbeds::esnet_host(KernelVersion::L6_8);
        let path = Testbeds::esnet_path(EsnetPath::Lan);
        let report =
            iperf3sim::run(&host, &host, &path, &Iperf3Opts::new(2).omit(0)).expect("run");
        assert!(folded_stacks(&report).is_none());
        assert!(perf_report(&report).is_none());
    }

    #[test]
    fn folded_stacks_cover_both_hosts_and_sum_positive() {
        let report = attributed_report();
        let folded = folded_stacks(&report).expect("attribution present");
        assert!(!folded.is_empty());
        let mut total: u64 = 0;
        let mut hosts_seen = std::collections::BTreeSet::new();
        for line in folded.lines() {
            let (stack, count) = line.rsplit_once(' ').expect("`stack count` shape");
            let parts: Vec<&str> = stack.split(';').collect();
            assert_eq!(parts.len(), 3, "host;core;stage: {line}");
            hosts_seen.insert(parts[0].to_string());
            total += count.parse::<u64>().expect("cycle count");
        }
        assert!(hosts_seen.contains("sender") && hosts_seen.contains("receiver"), "{hosts_seen:?}");
        assert!(total > 0);
        // A busy LAN run books the big stages on both sides.
        assert!(folded.contains("tx_app"), "{folded}");
        assert!(folded.contains("rx_softirq"), "{folded}");
    }

    #[test]
    fn perf_report_sorted_by_overhead_and_names_bottleneck() {
        let report = attributed_report();
        let table = perf_report(&report).expect("attribution present");
        assert!(table.contains("# Overhead"));
        assert!(table.contains("# bottleneck: "), "{table}");
        // Overhead percentages are sorted descending and sum to ~100.
        let pcts: Vec<f64> = table
            .lines()
            .filter(|l| !l.starts_with('#'))
            .filter_map(|l| l.split_whitespace().next()?.strip_suffix('%')?.parse().ok())
            .collect();
        assert!(pcts.len() >= 4, "{table}");
        assert!(pcts.windows(2).all(|w| w[0] >= w[1]), "{pcts:?}");
        let sum: f64 = pcts.iter().sum();
        assert!((sum - 100.0).abs() < 1.0, "sum {sum}: {table}");
    }
}
