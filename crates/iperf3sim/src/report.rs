//! iperf3-style result reports.

use linuxhost::CpuReport;
use netsim::{Attribution, RunResult, Telemetry};
use simcore::{BitRate, Bytes, SimDuration};
use std::fmt;

/// Per-stream results (one `[ ID ]` line).
#[derive(Debug, Clone)]
pub struct StreamReport {
    /// Stream id (iperf3 numbers sockets from 5).
    pub id: usize,
    /// Bytes transferred in the measured window.
    pub bytes: Bytes,
    /// Mean bitrate.
    pub bitrate: BitRate,
    /// Retransmitted MTU segments.
    pub retr: u64,
    /// Per-second bitrate samples.
    pub intervals: Vec<BitRate>,
}

/// A full test report (the `-J` document, in struct form).
#[derive(Debug, Clone)]
pub struct Iperf3Report {
    /// The command line that produced this.
    pub command: String,
    /// Per-stream rows.
    pub streams: Vec<StreamReport>,
    /// Measured window.
    pub window: SimDuration,
    /// Sender-host CPU (mpstat companion data, §III-G).
    pub sender_cpu: CpuReport,
    /// Receiver-host CPU.
    pub receiver_cpu: CpuReport,
    /// Zerocopy sends that fell back to copying (fraction 0–1).
    pub zc_fallback_fraction: f64,
    /// `ss`/`ethtool`/`mpstat`-style time series, when the run sampled
    /// them (see [`crate::Iperf3Opts::telemetry`]).
    pub telemetry: Option<Telemetry>,
    /// Bottleneck attribution (per-interval verdicts + stage profiles),
    /// when the run enabled it (see
    /// [`crate::Iperf3Opts::attribution`]).
    pub attribution: Option<Attribution>,
}

impl Iperf3Report {
    /// Build from a simulation result.
    pub fn from_run(command: String, run: &RunResult) -> Self {
        Iperf3Report {
            command,
            streams: run
                .flows
                .iter()
                .map(|f| StreamReport {
                    id: 5 + f.id,
                    bytes: f.bytes,
                    bitrate: f.goodput,
                    retr: f.retr_packets,
                    intervals: f.intervals.clone(),
                })
                .collect(),
            window: run.window,
            sender_cpu: run.sender_cpu.clone(),
            receiver_cpu: run.receiver_cpu.clone(),
            zc_fallback_fraction: run.zc_fallback_fraction(),
            telemetry: run.telemetry.clone(),
            attribution: run.attribution.clone(),
        }
    }

    /// The whole-run bottleneck verdict name, when attribution ran and
    /// classified at least one interval.
    pub fn bottleneck(&self) -> Option<&'static str> {
        self.attribution
            .as_ref()
            .and_then(|a| a.verdict.as_ref())
            .map(|v| v.primary.name())
    }

    /// Aggregate bitrate (the `[SUM]` line).
    pub fn sum_bitrate(&self) -> BitRate {
        BitRate::from_bps(self.streams.iter().map(|s| s.bitrate.as_bps()).sum())
    }

    /// Total retransmissions.
    pub fn sum_retr(&self) -> u64 {
        self.streams.iter().map(|s| s.retr).sum()
    }

    /// Lowest per-stream bitrate (Gbps) — the paper's "Range" column.
    /// A report with no streams reads as 0.0, not `±inf`.
    pub fn min_stream_gbps(&self) -> f64 {
        if self.streams.is_empty() {
            return 0.0;
        }
        self.streams.iter().map(|s| s.bitrate.as_gbps()).fold(f64::INFINITY, f64::min)
    }

    /// Highest per-stream bitrate (Gbps). 0.0 when there are no streams.
    pub fn max_stream_gbps(&self) -> f64 {
        if self.streams.is_empty() {
            return 0.0;
        }
        self.streams.iter().map(|s| s.bitrate.as_gbps()).fold(f64::NEG_INFINITY, f64::max)
    }

    /// A compact JSON rendering (subset of iperf3 `-J`; hand-rolled so
    /// the workspace needs no JSON dependency).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        out.push_str(&format!("  \"title\": {:?},\n", self.command));
        // Per-second samples, like the `-J` "intervals" array.
        let ticks = self.streams.iter().map(|s| s.intervals.len()).max().unwrap_or(0);
        out.push_str("  \"intervals\": [\n");
        for k in 0..ticks {
            let rates: Vec<f64> = self
                .streams
                .iter()
                .map(|s| s.intervals.get(k).copied().unwrap_or(BitRate::ZERO).as_bps())
                .collect();
            let streams_json: Vec<String> = self
                .streams
                .iter()
                .zip(&rates)
                .map(|(s, bps)| format!("{{\"socket\": {}, \"bits_per_second\": {bps:.1}}}", s.id))
                .collect();
            out.push_str(&format!(
                "    {{\"start\": {k}, \"end\": {}, \"streams\": [{}], \"sum\": {{\"bits_per_second\": {:.1}}}}}{}\n",
                k + 1,
                streams_json.join(", "),
                rates.iter().sum::<f64>(),
                if k + 1 == ticks { "" } else { "," }
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"end\": {{\n    \"sum_received\": {{\"seconds\": {:.3}, \"bits_per_second\": {:.1}, \"retransmits\": {}}},\n",
            self.window.as_secs_f64(),
            self.sum_bitrate().as_bps(),
            self.sum_retr()
        ));
        out.push_str("    \"streams\": [\n");
        for (i, s) in self.streams.iter().enumerate() {
            out.push_str(&format!(
                "      {{\"socket\": {}, \"bytes\": {}, \"bits_per_second\": {:.1}, \"retransmits\": {}}}{}\n",
                s.id,
                s.bytes.as_u64(),
                s.bitrate.as_bps(),
                s.retr,
                if i + 1 == self.streams.len() { "" } else { "," }
            ));
        }
        out.push_str("    ],\n");
        out.push_str(&format!(
            "    \"cpu_utilization_percent\": {{\"host_total\": {:.1}, \"remote_total\": {:.1}}},\n",
            self.sender_cpu.combined_pct(),
            self.receiver_cpu.combined_pct()
        ));
        out.push_str(&format!(
            "    \"zerocopy_fallback_fraction\": {:.4}",
            self.zc_fallback_fraction
        ));
        if let Some(b) = self.bottleneck() {
            out.push_str(&format!(",\n    \"bottleneck\": {b:?}"));
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

impl fmt::Display for Iperf3Report {
    /// The human-readable closing lines of an iperf3 run.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "$ {}", self.command)?;
        for s in &self.streams {
            writeln!(
                f,
                "[{:3}]  0.00-{:.2} sec  {:>10}  {:>7.2} Gbits/sec  {:>6}  sender",
                s.id,
                self.window.as_secs_f64(),
                format!("{}", s.bytes),
                s.bitrate.as_gbps(),
                s.retr
            )?;
        }
        if self.streams.len() > 1 {
            writeln!(
                f,
                "[SUM]  0.00-{:.2} sec  {:>7.2} Gbits/sec  {:>6}  sender",
                self.window.as_secs_f64(),
                self.sum_bitrate().as_gbps(),
                self.sum_retr()
            )?;
        }
        writeln!(
            f,
            "CPU: local {:.0}%, remote {:.0}%",
            self.sender_cpu.combined_pct(),
            self.receiver_cpu.combined_pct()
        )?;
        if let Some(v) = self.attribution.as_ref().and_then(|a| a.verdict.as_ref()) {
            writeln!(
                f,
                "Bottleneck: {} ({:.0}% of intervals)",
                v.primary.name(),
                v.primary_share() * 100.0
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> Iperf3Report {
        Iperf3Report {
            command: "iperf3 -c host -t 10 -P 2 -J".into(),
            streams: vec![
                StreamReport {
                    id: 5,
                    bytes: Bytes::gib(10),
                    bitrate: BitRate::gbps(10.0),
                    retr: 12,
                    intervals: vec![BitRate::gbps(10.0); 10],
                },
                StreamReport {
                    id: 6,
                    bytes: Bytes::gib(12),
                    bitrate: BitRate::gbps(12.0),
                    retr: 3,
                    intervals: vec![BitRate::gbps(12.0); 10],
                },
            ],
            window: SimDuration::from_secs(10),
            sender_cpu: CpuReport::zero(4),
            receiver_cpu: CpuReport::zero(4),
            zc_fallback_fraction: 0.25,
            telemetry: None,
            attribution: None,
        }
    }

    #[test]
    fn sums_and_ranges() {
        let r = report();
        assert!((r.sum_bitrate().as_gbps() - 22.0).abs() < 1e-9);
        assert_eq!(r.sum_retr(), 15);
        assert_eq!(r.min_stream_gbps(), 10.0);
        assert_eq!(r.max_stream_gbps(), 12.0);
    }

    #[test]
    fn empty_report_ranges_are_zero_not_infinite() {
        let mut r = report();
        r.streams.clear();
        assert_eq!(r.min_stream_gbps(), 0.0);
        assert_eq!(r.max_stream_gbps(), 0.0);
    }

    #[test]
    fn json_contains_key_fields() {
        let j = report().to_json();
        assert!(j.contains("\"bits_per_second\""));
        assert!(j.contains("\"retransmits\": 15"));
        assert!(j.contains("\"socket\": 5"));
        assert!(j.contains("zerocopy_fallback_fraction"));
        // Balanced braces (cheap well-formedness check).
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn json_intervals_section_renders_per_second_samples() {
        let j = report().to_json();
        assert!(j.contains("\"intervals\": ["));
        // 10 one-second bins, both streams present in each.
        assert!(j.contains("\"start\": 0, \"end\": 1"));
        assert!(j.contains("\"start\": 9, \"end\": 10"));
        assert!(!j.contains("\"start\": 10, \"end\": 11"));
        // Sum row carries both streams: 10 + 12 Gbit/s.
        assert!(j.contains("\"sum\": {\"bits_per_second\": 22000000000.0}"));
        // A stream-free report still renders valid JSON.
        let mut empty = report();
        empty.streams.clear();
        let je = empty.to_json();
        assert!(je.contains("\"intervals\": [\n  ]"));
        assert_eq!(je.matches('{').count(), je.matches('}').count());
    }

    #[test]
    fn bottleneck_rendered_when_attribution_present() {
        use netsim::{BottleneckVerdict, LimitingFactor, StageProfile};
        let mut r = report();
        assert_eq!(r.bottleneck(), None);
        let verdicts = vec![(simcore::SimTime::ZERO, LimitingFactor::SenderAppCpu)];
        r.attribution = Some(Attribution {
            verdict: BottleneckVerdict::from_intervals(&verdicts),
            verdicts,
            sender_profile: StageProfile { clock_hz: 4.0e9, cores: vec![] },
            receiver_profile: StageProfile { clock_hz: 4.0e9, cores: vec![] },
        });
        assert_eq!(r.bottleneck(), Some("sender_app_cpu"));
        let j = r.to_json();
        assert!(j.contains("\"bottleneck\": \"sender_app_cpu\""), "{j}");
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        let text = r.to_string();
        assert!(text.contains("Bottleneck: sender_app_cpu (100% of intervals)"), "{text}");
    }

    #[test]
    fn display_has_sum_line_for_parallel() {
        let text = report().to_string();
        assert!(text.contains("[SUM]"));
        assert!(text.contains("Gbits/sec"));
    }
}
