//! The paper as a tuning walkthrough: start from a completely untuned
//! host on a 104 ms path and apply the §III/§V recommendations one at
//! a time, measuring after each step.
//!
//! ```text
//! cargo run --release --example single_stream_tuning
//! ```
//!
//! Expected progression (single stream, Intel hosts, 104 ms WAN):
//! stock sysctls strangle the window to well under a gigabit;
//! buffer tuning unlocks tens of Gbps but leaves the sender CPU-bound;
//! core pinning removes the scheduler lottery; and MSG_ZEROCOPY with
//! `optmem_max` and 50 G pacing reaches the paced rate with the sender
//! CPU mostly idle.

use dtnperf::prelude::*;

fn measure(label: &str, host: &HostConfig, opts: &Iperf3Opts, path: &PathSpec) {
    // A few repetitions so the irqbalance lottery is visible.
    let harness = TestHarness::new(4);
    let summary = harness.run(&Scenario::symmetric(label, host.clone(), path.clone(), opts.clone())).expect("scenario");
    println!(
        "{label:<44} {:6.2} Gbps  (min {:5.2}, max {:5.2})  sender CPU {:3.0}%",
        summary.throughput_gbps.mean,
        summary.throughput_gbps.min,
        summary.throughput_gbps.max,
        summary.sender_cpu_pct.mean,
    );
}

fn main() {
    let path = Testbeds::amlight_path(AmLightPath::Wan104ms);
    let opts = Iperf3Opts::new(12).omit(3);
    println!("single TCP stream over {} (RTT {})\n", path.name, path.rtt);

    // Step 0: completely untuned Ubuntu box: stock sysctls (6 MB
    // tcp_rmem ceiling!), irqbalance on, no iommu=pt, powersave
    // governor.
    let step0 = HostConfig::untuned(
        CpuArch::IntelXeon6346,
        NicModel::ConnectX5,
        KernelVersion::L6_8,
    );
    measure("0. stock Ubuntu (nothing tuned)", &step0, &opts, &path);

    // Step 1: fasterdata sysctls — 2 GB buffer ceilings, fq qdisc,
    // optmem_max 1 MB (SIII-D).
    let mut step1 = step0.clone();
    step1.sysctl = SysctlConfig::paper_tuned();
    measure("1. + fasterdata sysctls (buffers, fq)", &step1, &opts, &path);

    // Step 2: pin NIC IRQs to cores 0-7 and iperf3 to 8-15, disable
    // irqbalance; performance governor; iommu=pt (SIII-A/D).
    let mut step2 = step1.clone();
    step2.cores = CoreAllocation::paper_tuned();
    step2.performance_governor = true;
    step2.iommu_pt = true;
    step2.smt_off = true;
    measure("2. + core pinning, governor, iommu=pt", &step2, &opts, &path);

    // Step 3: MSG_ZEROCOPY + pacing at 50 Gbps (SIV-A). optmem_max is
    // already 1 MB from step 1.
    let zc_opts = opts.clone().zerocopy().fq_rate(BitRate::gbps(50.0));
    measure("3. + --zerocopy=z --fq-rate 50G", &step2, &zc_opts, &path);

    // Step 4: the 3.25 MB optmem_max the authors found best on 6.5
    // (SIV-B) — on long paths it removes the remaining fallbacks.
    let step4 = step2.clone().with_optmem(SysctlConfig::optmem_3_25_mb());
    measure("4. + optmem_max=3.25MB", &step4, &zc_opts, &path);

    println!("\npaper checklist (SV-A): tuned sysctls; separate IRQ/app cores;");
    println!("MSG_ZEROCOPY + optmem_max + pacing; kernel 6.8; flow control or pacing.");
}
