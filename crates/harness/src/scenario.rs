//! One test configuration: hosts × path × iperf3 flags (× faults).

use iperf3sim::Iperf3Opts;
use linuxhost::HostConfig;
use nethw::PathSpec;
use netsim::FaultPlan;

/// A named, runnable test configuration.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Short label ("default", "zc+pace50", …).
    pub label: String,
    /// Sending host.
    pub client: HostConfig,
    /// Receiving host.
    pub server: HostConfig,
    /// Network between them.
    pub path: PathSpec,
    /// iperf3 flags.
    pub opts: Iperf3Opts,
    /// Faults injected into the network during the run. The tool under
    /// test does not know about these — they model the testbed
    /// misbehaving, not a flag.
    pub faults: FaultPlan,
    /// Optional watchdog event-budget override (tests use a tiny
    /// budget to provoke `SimError::Stalled`).
    pub event_budget: Option<u64>,
}

impl Scenario {
    /// Construct.
    pub fn new(
        label: impl Into<String>,
        client: HostConfig,
        server: HostConfig,
        path: PathSpec,
        opts: Iperf3Opts,
    ) -> Self {
        Scenario {
            label: label.into(),
            client,
            server,
            path,
            opts,
            faults: FaultPlan::none(),
            event_budget: None,
        }
    }

    /// Symmetric hosts (the common case on both testbeds).
    pub fn symmetric(
        label: impl Into<String>,
        host: HostConfig,
        path: PathSpec,
        opts: Iperf3Opts,
    ) -> Self {
        Scenario::new(label, host.clone(), host, path, opts)
    }

    /// Builder: attach a fault-injection schedule.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Builder: override the watchdog's total event budget.
    pub fn with_event_budget(mut self, budget: u64) -> Self {
        self.event_budget = Some(budget);
        self
    }

    /// The scenario's stable 64-bit fingerprint — the identity seeds
    /// and cache keys derive from. `label` (and the hosts'/path's
    /// display names) are excluded, so renaming never re-seeds a run.
    pub fn fingerprint(&self) -> u64 {
        use simcore::Canonicalize;
        self.canon_fingerprint()
    }

    /// Full description for logs.
    pub fn describe(&self) -> String {
        let mut d = format!(
            "{} | {} -> {} over {} | {}",
            self.label,
            self.client.name,
            self.server.name,
            self.path.name,
            self.opts.command_line(&self.server.name)
        );
        if !self.faults.is_empty() {
            d.push_str(&format!(" | {} fault(s)", self.faults.events.len()));
        }
        d
    }
}

impl simcore::Canonicalize for Scenario {
    fn canonicalize(&self, c: &mut simcore::Canon) {
        c.scope("client", |cc| self.client.canonicalize(cc));
        c.scope("server", |cc| self.server.canonicalize(cc));
        c.scope("path", |cc| self.path.canonicalize(cc));
        c.scope("opts", |cc| self.opts.canonicalize(cc));
        c.scope("faults", |cc| self.faults.canonicalize(cc));
        match self.event_budget {
            None => c.put_str("event_budget", "default"),
            Some(n) => c.put_u64("event_budget", n),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbeds::{EsnetPath, Testbeds};
    use linuxhost::KernelVersion;
    use simcore::SimDuration;

    fn base() -> Scenario {
        Scenario::symmetric(
            "default",
            Testbeds::esnet_host(KernelVersion::L6_8),
            Testbeds::esnet_path(EsnetPath::Lan),
            Iperf3Opts::new(10),
        )
    }

    #[test]
    fn describe_is_informative() {
        let d = base().describe();
        assert!(d.contains("default"));
        assert!(d.contains("ESnet LAN"));
        assert!(d.contains("iperf3 -c"));
        assert!(!d.contains("fault(s)"));
    }

    #[test]
    fn describe_mentions_faults() {
        let s = base().with_faults(FaultPlan::none().with_link_flap(
            SimDuration::from_secs(2),
            SimDuration::from_millis(50),
        ));
        assert!(s.describe().contains("1 fault(s)"));
    }
}
