//! The iperf3 command line, as a typed options struct.

use crate::version::Iperf3Version;
use simcore::{BitRate, SimDuration};
use tcpstack::CcAlgorithm;

/// Options for one iperf3 client run.
#[derive(Debug, Clone)]
pub struct Iperf3Opts {
    /// iperf3 build in use.
    pub version: Iperf3Version,
    /// `-P`: number of parallel streams.
    pub parallel: usize,
    /// `-t`: test duration in seconds.
    pub time_secs: u64,
    /// `-O`: seconds to omit from the start (warm-up).
    pub omit_secs: u64,
    /// `--fq-rate`: per-stream pacing cap.
    pub fq_rate: Option<BitRate>,
    /// `--zerocopy=z`: send with MSG_ZEROCOPY (patch #1690).
    pub zerocopy: bool,
    /// `-Z`: send with `sendfile()` — the classic zerocopy available
    /// in every modern iperf3 (§II-B).
    pub sendfile: bool,
    /// `--skip-rx-copy`: receive with MSG_TRUNC (patch #1690).
    pub skip_rx_copy: bool,
    /// `-C`: congestion control algorithm.
    pub congestion: CcAlgorithm,
    /// Seed for the simulated run (not an iperf3 flag; the simulator's
    /// substitute for "run it again").
    pub seed: u64,
    /// Telemetry sampling tick (not an iperf3 flag; the simulator's
    /// substitute for running `ss`/`ethtool`/`mpstat` alongside the
    /// test, §III-G). `None` disables sampling.
    pub telemetry: Option<SimDuration>,
    /// Bottleneck attribution (not an iperf3 flag; the simulator's
    /// substitute for running `perf` alongside the test and reading the
    /// profiles). Adds per-interval limiting-factor verdicts and
    /// per-stage cycle profiles to the report without changing the
    /// traffic.
    pub attribution: bool,
}

impl Default for Iperf3Opts {
    fn default() -> Self {
        Iperf3Opts {
            version: Iperf3Version::paper_patched(),
            parallel: 1,
            time_secs: 60,
            omit_secs: 2,
            fq_rate: None,
            zerocopy: false,
            sendfile: false,
            skip_rx_copy: false,
            congestion: CcAlgorithm::Cubic,
            seed: 1,
            telemetry: None,
            attribution: false,
        }
    }
}

impl Iperf3Opts {
    /// Default options with the given duration.
    pub fn new(time_secs: u64) -> Self {
        Iperf3Opts { time_secs, ..Default::default() }
    }

    /// Builder: `-P n`.
    pub fn parallel(mut self, n: usize) -> Self {
        self.parallel = n;
        self
    }

    /// Builder: `-O secs`.
    pub fn omit(mut self, secs: u64) -> Self {
        self.omit_secs = secs;
        self
    }

    /// Builder: `--fq-rate`.
    pub fn fq_rate(mut self, rate: BitRate) -> Self {
        self.fq_rate = Some(rate);
        self
    }

    /// Builder: `--zerocopy=z`.
    pub fn zerocopy(mut self) -> Self {
        self.zerocopy = true;
        self
    }

    /// Builder: `-Z` (sendfile).
    pub fn sendfile(mut self) -> Self {
        self.sendfile = true;
        self
    }

    /// Builder: `--skip-rx-copy`.
    pub fn skip_rx_copy(mut self) -> Self {
        self.skip_rx_copy = true;
        self
    }

    /// Builder: `-C algo`.
    pub fn congestion(mut self, cc: CcAlgorithm) -> Self {
        self.congestion = cc;
        self
    }

    /// Builder: run seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder: sample `ss`/`ethtool`/`mpstat`-style telemetry on the
    /// given tick.
    pub fn telemetry(mut self, tick: SimDuration) -> Self {
        self.telemetry = Some(tick);
        self
    }

    /// Builder: enable bottleneck attribution (per-stage cycle ledgers
    /// and per-interval limiting-factor verdicts).
    pub fn attribution(mut self) -> Self {
        self.attribution = true;
        self
    }

    /// The command line this corresponds to (for reports/logs).
    pub fn command_line(&self, server: &str) -> String {
        let mut cmd = format!("iperf3 -c {server} -t {}", self.time_secs);
        if self.omit_secs > 0 {
            cmd.push_str(&format!(" -O {}", self.omit_secs));
        }
        if self.parallel > 1 {
            cmd.push_str(&format!(" -P {}", self.parallel));
        }
        if let Some(rate) = self.fq_rate {
            cmd.push_str(&format!(" --fq-rate {:.0}G", rate.as_gbps()));
        }
        if self.zerocopy {
            cmd.push_str(" --zerocopy=z");
        }
        if self.sendfile {
            cmd.push_str(" -Z");
        }
        if self.skip_rx_copy {
            cmd.push_str(" --skip-rx-copy");
        }
        if self.congestion != CcAlgorithm::Cubic {
            cmd.push_str(&format!(" -C {}", self.congestion.name()));
        }
        cmd.push_str(" -J");
        cmd
    }

    /// Validate flags against the installed version. Returns
    /// human-readable errors, like iperf3 itself would.
    pub fn validate(&self) -> Vec<String> {
        let mut errors = Vec::new();
        if self.parallel == 0 {
            errors.push("-P must be at least 1".into());
        }
        if self.time_secs == 0 {
            errors.push("-t must be positive".into());
        }
        if self.omit_secs >= self.time_secs {
            errors.push("-O must be shorter than -t".into());
        }
        if self.zerocopy && self.sendfile {
            errors.push("-Z and --zerocopy=z are mutually exclusive".into());
        }
        if (self.zerocopy || self.skip_rx_copy) && !self.version.has_msg_zerocopy_flags() {
            errors.push(format!(
                "{}: --zerocopy=z/--skip-rx-copy need patch #1690",
                self.version
            ));
        }
        if let Some(rate) = self.fq_rate {
            // §V-A: "pacing single flows above 32 Gbps ... requires a
            // recent patch to iperf3" — the u32 bits/sec overflow.
            if rate.as_bps() > u32::MAX as f64 && !self.version.fq_rate_above_32g() {
                errors.push(format!(
                    "{}: --fq-rate above 32G wraps a u32 (needs patch #1728)",
                    self.version
                ));
            }
        }
        errors
    }

    /// Duration as a `SimDuration`.
    pub fn duration(&self) -> SimDuration {
        SimDuration::from_secs(self.time_secs)
    }
}

impl simcore::Canonicalize for Iperf3Opts {
    /// `seed` is excluded (it is *derived from* the fingerprint, per
    /// repetition), as are `telemetry`/`attribution` — observers that
    /// sample the run without changing the traffic.
    fn canonicalize(&self, c: &mut simcore::Canon) {
        c.scope("version", |c| self.version.canonicalize(c));
        c.put_u64("parallel", self.parallel as u64);
        c.put_u64("time_secs", self.time_secs);
        c.put_u64("omit_secs", self.omit_secs);
        match self.fq_rate {
            None => c.put_str("fq_rate_bps", "none"),
            Some(rate) => c.put_f64("fq_rate_bps", rate.as_bps()),
        }
        c.put_bool("zerocopy", self.zerocopy);
        c.put_bool("sendfile", self.sendfile);
        c.put_bool("skip_rx_copy", self.skip_rx_copy);
        c.put_str("congestion", self.congestion.name());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_build() {
        let o = Iperf3Opts::default();
        assert!(o.validate().is_empty());
        assert_eq!(o.parallel, 1);
        assert!(o.version.has_msg_zerocopy_flags());
    }

    #[test]
    fn command_line_rendering() {
        let o = Iperf3Opts::new(60)
            .parallel(8)
            .fq_rate(BitRate::gbps(25.0))
            .zerocopy()
            .skip_rx_copy();
        let cmd = o.command_line("dtn1");
        assert!(cmd.contains("-P 8"));
        assert!(cmd.contains("--fq-rate 25G"));
        assert!(cmd.contains("--zerocopy=z"));
        assert!(cmd.contains("--skip-rx-copy"));
        assert!(cmd.contains("-O 2"));
    }

    #[test]
    fn zerocopy_needs_patch_1690() {
        let mut o = Iperf3Opts::new(10).zerocopy();
        o.version = Iperf3Version::v3_17();
        let errs = o.validate();
        assert!(errs.iter().any(|e| e.contains("1690")), "{errs:?}");
    }

    #[test]
    fn fq_rate_above_32g_needs_patch_1728() {
        let mut o = Iperf3Opts::new(10).fq_rate(BitRate::gbps(50.0));
        o.version = Iperf3Version::v3_16();
        let errs = o.validate();
        assert!(errs.iter().any(|e| e.contains("1728")), "{errs:?}");
        // 25G fits in u32 bits/sec? No — 25e9 > u32::MAX too.
        let mut o2 = Iperf3Opts::new(10).fq_rate(BitRate::gbps(4.0));
        o2.version = Iperf3Version::v3_16();
        assert!(o2.validate().is_empty());
    }

    #[test]
    fn sendfile_conflicts_with_msg_zerocopy() {
        let o = Iperf3Opts::new(10).sendfile().zerocopy();
        assert!(o.validate().iter().any(|e| e.contains("mutually exclusive")));
        // -Z alone works on every version, even unpatched old builds.
        let mut plain = Iperf3Opts::new(10).sendfile();
        plain.version = Iperf3Version::v3_13();
        assert!(plain.validate().is_empty());
        assert!(plain.command_line("h").contains(" -Z"));
    }

    #[test]
    fn degenerate_flags_rejected() {
        assert!(!Iperf3Opts::new(0).validate().is_empty());
        assert!(!Iperf3Opts::new(10).parallel(0).validate().is_empty());
        let bad_omit = Iperf3Opts { omit_secs: 10, time_secs: 10, ..Default::default() };
        assert!(!bad_omit.validate().is_empty());
    }
}
