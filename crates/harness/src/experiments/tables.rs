//! Tables I–III.

use super::common::run_row;
use crate::ctx::RunCtx;
use crate::render::TableData;
use crate::runner::TestSummary;
use crate::scenario::Scenario;
use crate::testbeds::{EsnetPath, Testbeds};
use iperf3sim::Iperf3Opts;
use linuxhost::KernelVersion;
use simcore::BitRate;

/// The pacing ladder of Tables I and II.
const PACING_ROWS: [(&str, Option<f64>); 4] = [
    ("unpaced", None),
    ("25 Gbps / stream", Some(25.0)),
    ("20 Gbps / stream", Some(20.0)),
    ("15 Gbps / stream", Some(15.0)),
];

fn esnet_table(ctx: &RunCtx, path: EsnetPath, title: &str) -> TableData {
    let effort = ctx.effort;
    // Tables I/II are kernel 5.15 with default iperf3 settings plus
    // --fq-rate (§IV-C).
    let host = Testbeds::esnet_host(KernelVersion::L5_15);
    let secs = effort.multi_secs();
    let scenarios: Vec<Scenario> = PACING_ROWS
        .iter()
        .map(|(label, pace)| {
            let mut opts = Iperf3Opts::new(secs)
                .omit(effort.omit_secs(path == EsnetPath::Wan))
                .parallel(8);
            if let Some(g) = pace {
                opts = opts.fq_rate(BitRate::gbps(*g));
            }
            Scenario::symmetric(*label, host.clone(), Testbeds::esnet_path(path), opts)
        })
        .collect();
    let summaries = run_row(&scenarios, ctx);
    let mut table = TableData::new(title, vec!["Test Config", "Ave Tput", "Retr", "Min", "Max", "stdev"]);
    for s in &summaries {
        table.push_row(row_5col(s));
    }
    table
}

fn row_5col(s: &TestSummary) -> Vec<String> {
    vec![
        s.label.clone(),
        format!("{:.0} Gbps", s.throughput_gbps.mean),
        format_retr(s.retr.mean),
        format!("{:.0}", s.throughput_gbps.min),
        format!("{:.0}", s.throughput_gbps.max),
        format!("{:.1}", s.throughput_gbps.stdev),
    ]
}

fn format_retr(mean: f64) -> String {
    if mean >= 1000.0 {
        format!("{:.0}K", mean / 1000.0)
    } else {
        format!("{mean:.0}")
    }
}

/// Table I — ESnet testbed LAN results, 8 streams, no flow control.
pub fn table1(ctx: &RunCtx) -> TableData {
    esnet_table(
        ctx,
        EsnetPath::Lan,
        "Table I: ESnet Testbed, LAN results, no Flow Control (8 streams, kernel 5.15)",
    )
}

/// Table II — ESnet testbed WAN results, 8 streams, no flow control.
pub fn table2(ctx: &RunCtx) -> TableData {
    esnet_table(
        ctx,
        EsnetPath::Wan,
        "Table II: ESnet Testbed, WAN results, no Flow Control (8 streams, kernel 5.15)",
    )
}

/// Table III — ESnet production DTNs with 802.3x flow control
/// (RTT = 63 ms): pacing trims retransmits and tightens the per-flow
/// range without changing the average.
pub fn table3(ctx: &RunCtx) -> TableData {
    let effort = ctx.effort;
    let host = Testbeds::prod_dtn_host();
    let path = Testbeds::prod_dtn_path();
    let rows: [(&str, Option<f64>); 4] = [
        ("unpaced", None),
        ("15 Gbps / stream", Some(15.0)),
        ("12 Gbps / stream", Some(12.0)),
        ("10 Gbps / stream", Some(10.0)),
    ];
    let secs = effort.multi_secs().max(12);
    let scenarios: Vec<Scenario> = rows
        .iter()
        .map(|(label, pace)| {
            let mut opts = Iperf3Opts::new(secs).omit(effort.omit_secs(true)).parallel(8);
            if let Some(g) = pace {
                opts = opts.fq_rate(BitRate::gbps(*g));
            }
            Scenario::symmetric(*label, host.clone(), path.clone(), opts)
        })
        .collect();
    let summaries = run_row(&scenarios, ctx);
    let mut table = TableData::new(
        "Table III: ESnet Production DTNs, with Flow Control (8 streams, RTT 63 ms)",
        vec!["Test Config", "Ave Tput", "Retr", "Range"],
    );
    for s in &summaries {
        table.push_row(vec![
            s.label.clone(),
            format!("{:.0} Gbps", s.throughput_gbps.mean),
            format_retr(s.retr.mean),
            format!("{:.0}-{:.0} Gbps", s.min_stream_gbps, s.max_stream_gbps),
        ]);
    }
    table
}
