//! Receiver-side TCP state: cumulative ACK, out-of-order queue, and
//! receive-window advertisement.
//!
//! The receiver ACKs every burst it processes (GRO already coalesces
//! wire packets, so "one ACK per super-packet" matches Linux). The
//! advertised window is the autotuned receive buffer minus unread
//! data, with the buffer ceiling set by `tcp_rmem[2]` — the sysctl that
//! separates a 6 MB stock ceiling from the paper's 2 GB tuned value.

use simcore::Bytes;
use std::collections::BTreeSet;

/// The information carried by one ACK back to the sender.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AckInfo {
    /// Next in-order burst expected (cumulative ACK, burst index).
    pub cum_ack: u64,
    /// The specific burst this ACK acknowledges (SACK-style).
    pub acked_idx: u64,
    /// Advertised receive window in bytes.
    pub rwnd: Bytes,
}

/// Receiver state for one flow.
#[derive(Debug, Clone)]
pub struct TcpReceiver {
    burst: Bytes,
    /// Next expected in-order burst index.
    rcv_nxt: u64,
    /// Bursts received above `rcv_nxt`.
    ooo: BTreeSet<u64>,
    /// Receive-buffer ceiling (`tcp_rmem[2]`, bounded by what autotune
    /// will actually grant).
    rcv_buf: Bytes,
    /// Bytes held in the receive queue (in-order unread + out-of-order).
    buffered: Bytes,
    /// In-order bursts ready for the application to read.
    readable: u64,
    /// Totals for reporting.
    total_bursts: u64,
    duplicate_bursts: u64,
    /// New data discarded because the advertised window was closed
    /// (zero-window probes during a receiver stall land here).
    window_rejects: u64,
}

impl TcpReceiver {
    /// New receiver with the given burst size and buffer ceiling.
    pub fn new(burst: Bytes, rcv_buf: Bytes) -> Self {
        assert!(!burst.is_zero(), "burst size must be positive");
        assert!(rcv_buf >= burst, "receive buffer smaller than one burst");
        TcpReceiver {
            burst,
            rcv_nxt: 0,
            ooo: BTreeSet::new(),
            rcv_buf,
            buffered: Bytes::ZERO,
            readable: 0,
            total_bursts: 0,
            duplicate_bursts: 0,
            window_rejects: 0,
        }
    }

    /// A burst survived the NIC/softirq path. Returns the ACK to send.
    pub fn on_burst(&mut self, idx: u64) -> AckInfo {
        self.total_bursts += 1;
        if idx < self.rcv_nxt || self.ooo.contains(&idx) {
            // Duplicate (spurious retransmit): ACK again, buffer nothing.
            self.duplicate_bursts += 1;
            return self.ack_for(idx);
        }
        // Out-of-window new data while the buffer is full (a stalled
        // application stopped reading): discard the payload and reply
        // with a pure window probe ACK, like Linux does. The sender's
        // own timers retransmit once the window reopens. (`rcv_nxt > 0`
        // guards the probe ACK's `acked_idx = rcv_nxt - 1`, which must
        // reference an already cum-ACKed burst.)
        if self.rwnd() < self.burst && self.rcv_nxt > 0 {
            self.window_rejects += 1;
            return AckInfo {
                cum_ack: self.rcv_nxt,
                acked_idx: self.rcv_nxt - 1,
                rwnd: self.rwnd(),
            };
        }
        self.buffered += self.burst;
        if idx == self.rcv_nxt {
            self.rcv_nxt += 1;
            self.readable += 1;
            // Pull any contiguous out-of-order data in.
            while self.ooo.remove(&self.rcv_nxt) {
                self.rcv_nxt += 1;
                self.readable += 1;
            }
        } else {
            self.ooo.insert(idx);
        }
        self.ack_for(idx)
    }

    fn ack_for(&self, idx: u64) -> AckInfo {
        AckInfo { cum_ack: self.rcv_nxt, acked_idx: idx, rwnd: self.rwnd() }
    }

    /// Current advertised window.
    pub fn rwnd(&self) -> Bytes {
        self.rcv_buf.saturating_sub(self.buffered)
    }

    /// Bursts the application can read right now.
    pub fn readable_bursts(&self) -> u64 {
        self.readable
    }

    /// The application read one burst; frees buffer space.
    pub fn app_read(&mut self) -> bool {
        if self.readable == 0 {
            return false;
        }
        self.readable -= 1;
        self.buffered = self.buffered.saturating_sub(self.burst);
        true
    }

    /// Total bursts that arrived (including duplicates).
    pub fn total_bursts(&self) -> u64 {
        self.total_bursts
    }

    /// Duplicate bursts (spurious retransmissions received).
    pub fn duplicate_bursts(&self) -> u64 {
        self.duplicate_bursts
    }

    /// New-data bursts discarded because the window was closed.
    pub fn window_rejects(&self) -> u64 {
        self.window_rejects
    }

    /// Next expected in-order burst.
    pub fn rcv_nxt(&self) -> u64 {
        self.rcv_nxt
    }

    /// Bursts currently held out of order.
    pub fn ooo_len(&self) -> usize {
        self.ooo.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rx() -> TcpReceiver {
        TcpReceiver::new(Bytes::kib(64), Bytes::mib(8))
    }

    #[test]
    fn in_order_delivery() {
        let mut r = rx();
        for i in 0..4 {
            let ack = r.on_burst(i);
            assert_eq!(ack.cum_ack, i + 1);
            assert_eq!(ack.acked_idx, i);
        }
        assert_eq!(r.readable_bursts(), 4);
        assert_eq!(r.ooo_len(), 0);
    }

    #[test]
    fn out_of_order_held_then_released() {
        let mut r = rx();
        r.on_burst(0);
        let ack = r.on_burst(2); // hole at 1
        assert_eq!(ack.cum_ack, 1);
        assert_eq!(ack.acked_idx, 2);
        assert_eq!(r.readable_bursts(), 1);
        assert_eq!(r.ooo_len(), 1);
        // Retransmit fills the hole: everything becomes readable.
        let ack2 = r.on_burst(1);
        assert_eq!(ack2.cum_ack, 3);
        assert_eq!(r.readable_bursts(), 3);
        assert_eq!(r.ooo_len(), 0);
    }

    #[test]
    fn duplicates_do_not_double_buffer() {
        let mut r = rx();
        r.on_burst(0);
        let before = r.rwnd();
        r.on_burst(0);
        assert_eq!(r.rwnd(), before);
        assert_eq!(r.duplicate_bursts(), 1);
        assert_eq!(r.readable_bursts(), 1);
    }

    #[test]
    fn rwnd_shrinks_with_unread_data_and_recovers_on_read() {
        let mut r = rx();
        let full = r.rwnd();
        for i in 0..8 {
            r.on_burst(i);
        }
        assert_eq!(r.rwnd(), full.saturating_sub(Bytes::kib(64 * 8)));
        for _ in 0..8 {
            assert!(r.app_read());
        }
        assert_eq!(r.rwnd(), full);
        assert!(!r.app_read());
    }

    #[test]
    fn small_buffer_limits_window() {
        // A stock 6 MB tcp_rmem ceiling advertises at most 6 MB.
        let r = TcpReceiver::new(Bytes::kib(64), Bytes::new(6_291_456));
        assert_eq!(r.rwnd().as_u64(), 6_291_456);
    }

    #[test]
    fn closed_window_rejects_new_data() {
        // Buffer fits exactly 4 bursts; the 5th (new data, nobody
        // reading) must be discarded with a probe ACK, not buffered.
        let mut r = TcpReceiver::new(Bytes::kib(64), Bytes::kib(256));
        for i in 0..4 {
            r.on_burst(i);
        }
        assert!(r.rwnd().is_zero());
        let ack = r.on_burst(4);
        assert_eq!(ack.cum_ack, 4, "probe ACK repeats the cumulative edge");
        assert_eq!(ack.acked_idx, 3, "probe ACK must not SACK the rejected burst");
        assert_eq!(r.window_rejects(), 1);
        assert_eq!(r.readable_bursts(), 4, "rejected data is not readable");
        // A read reopens the window; the retransmit then lands.
        assert!(r.app_read());
        let ack = r.on_burst(4);
        assert_eq!(ack.cum_ack, 5);
        assert_eq!(r.window_rejects(), 1);
    }

    #[test]
    fn ooo_counts_toward_buffer() {
        let mut r = rx();
        let full = r.rwnd();
        r.on_burst(5); // pure OOO
        assert_eq!(r.rwnd(), full.saturating_sub(Bytes::kib(64)));
        assert_eq!(r.readable_bursts(), 0);
    }
}
