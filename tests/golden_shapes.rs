//! Golden-shape regression suite.
//!
//! EXPERIMENTS.md closes every artefact with a **Shape reproduced**
//! claim — who wins, by roughly what factor, where the crossovers
//! fall. These tests encode those claims as assertions at Smoke
//! effort, so a cost-model change that silently bends a headline shape
//! fails here instead of surfacing as a quiet drift in the measured
//! tables. Absolute values are *not* asserted (they are
//! effort-dependent); ratios and orderings are.

use dtnperf::prelude::*;
use harness::experiments::{extensions, figures, tables};
use harness::{FigureData, RunCtx};

fn ctx() -> RunCtx {
    RunCtx::new(Effort::Smoke)
}

/// Mean of series `s` at x-position `x`.
fn mean(fig: &FigureData, s: usize, x: usize) -> f64 {
    fig.series[s].points[x].mean
}

/// Fig. 4: the tuned passthrough VM performs within the run-to-run
/// spread of bare metal, for default and zerocopy+pacing runs.
#[test]
fn fig04_vm_matches_baremetal() {
    let figs = figures::fig04(&ctx());
    let fig = &figs[0];
    // Series: [BM default, VM default, BM zc+pace50, VM zc+pace50].
    assert_eq!(fig.series.len(), 4);
    for (bm, vm) in [(0, 1), (2, 3)] {
        for x in 0..fig.x_labels.len() {
            let (b, v) = (mean(fig, bm, x), mean(fig, vm, x));
            assert!(
                (b - v).abs() / b < 0.05,
                "VM must track baremetal (x={x}): BM {b:.1} vs VM {v:.1}"
            );
        }
    }
}

/// Fig. 5: zerocopy+pacing is flat across every WAN RTT and beats the
/// WAN defaults; BIG TCP helps on the LAN but is ≈ default on the WAN.
#[test]
fn fig05_pacing_flat_and_bigtcp_lan_only() {
    let figs = figures::fig05(&ctx());
    let fig = &figs[0];
    // Series: [default, zerocopy, zerocopy+pacing 50G, BIG TCP 150KB];
    // x: [LAN, 25 ms, 54 ms, 104 ms].
    assert_eq!(fig.series.len(), 4);
    assert_eq!(fig.x_labels.len(), 4);
    let wan_paced: Vec<f64> = (1..4).map(|x| mean(fig, 2, x)).collect();
    let spread = wan_paced.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        - wan_paced.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(
        spread < 0.05 * wan_paced[0],
        "zc+pacing must be flat across WAN RTTs: {wan_paced:?}"
    );
    // Pacing beats the default on the longest path (paper: up to +35 %).
    assert!(
        mean(fig, 2, 3) > mean(fig, 0, 3) * 1.10,
        "zc+pace must beat default at 104 ms: {} vs {}",
        mean(fig, 2, 3),
        mean(fig, 0, 3)
    );
    // BIG TCP: a real LAN gain, ≈ default on the WAN
    // (sender-copy-limited there).
    assert!(mean(fig, 3, 0) > mean(fig, 0, 0) * 1.03, "BIG TCP must help on the LAN");
    assert!(
        (mean(fig, 3, 3) - mean(fig, 0, 3)).abs() < 0.10 * mean(fig, 0, 3),
        "BIG TCP ≈ default on the 104 ms WAN"
    );
    // The default baseline decays from LAN to 104 ms.
    assert!(mean(fig, 0, 0) > mean(fig, 0, 3) * 1.2, "LAN default must exceed WAN default");
}

/// Fig. 9: the three optmem_max regimes — 20 KB starves the WAN, 1 MB
/// sags at 104 ms, 3.25 MB restores the pacing plateau everywhere.
#[test]
fn fig09_optmem_regimes() {
    let figs = figures::fig09(&ctx());
    let tput = &figs[0];
    // Series: [20KB, 1MB, 3.25MB]; x: [LAN, 25, 54, 104 ms].
    assert_eq!(tput.series.len(), 3);
    // 20 KB: severely degraded on every WAN path vs the tuned value.
    for x in 1..4 {
        assert!(
            mean(tput, 0, x) < 0.7 * mean(tput, 2, x),
            "20 KB optmem must starve the WAN (x={x}): {} vs {}",
            mean(tput, 0, x),
            mean(tput, 2, x)
        );
    }
    // 3.25 MB: flat pacing plateau across all paths.
    let plateau: Vec<f64> = (0..4).map(|x| mean(tput, 2, x)).collect();
    let spread = plateau.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        - plateau.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(spread < 0.05 * plateau[0], "3.25 MB must be flat: {plateau:?}");
    // 1 MB: fine on short paths, sags on the 104 ms path.
    assert!(
        (mean(tput, 1, 1) - mean(tput, 2, 1)).abs() < 0.05 * mean(tput, 2, 1),
        "1 MB ≈ 3.25 MB at 25 ms"
    );
    assert!(
        mean(tput, 1, 3) < 0.97 * mean(tput, 2, 3),
        "1 MB must sag at 104 ms: {} vs {}",
        mean(tput, 1, 3),
        mean(tput, 2, 3)
    );
}

/// Fig. 10: paced zerocopy rides the "Max Tput" line on both paths —
/// LAN ≈ WAN per pacing rate, and the rates ladder down.
#[test]
fn fig10_paced_rides_max_line() {
    let figs = figures::fig10(&ctx());
    let fig = &figs[0];
    // Series: [default unpaced, 25G, 20G, 15G, Max Tput (NIC)].
    assert_eq!(fig.series.len(), 5);
    for s in 1..4 {
        let (lan, wan) = (mean(fig, s, 0), mean(fig, s, 1));
        assert!(
            (lan - wan).abs() < 0.03 * lan,
            "paced series {s} must be path-independent: LAN {lan:.1} vs WAN {wan:.1}"
        );
    }
    // The pacing ladder on the WAN: 15 G < 20 G < 25 G, and the
    // 8 × 15 G row lands at ~115 Gbps (8 × 15 × fq efficiency).
    assert!(mean(fig, 3, 1) < mean(fig, 2, 1) && mean(fig, 2, 1) < mean(fig, 1, 1));
    let fifteen = mean(fig, 3, 1);
    assert!(
        (105.0..125.0).contains(&fifteen),
        "8×15 G must land near 115 Gbps, got {fifteen:.1}"
    );
}

/// Fig. 11: the default baseline decays with RTT; unpaced zerocopy is
/// noisy on the shared WAN; 9 G pacing is the flattest configuration
/// (the paper's σ observation).
#[test]
fn fig11_baseline_decay_and_stable_pacing() {
    let figs = figures::fig11(&ctx());
    let fig = &figs[0];
    // Series: [default unpaced, zerocopy unpaced, 10G, 9G].
    assert_eq!(fig.series.len(), 4);
    assert!(
        mean(fig, 0, 0) > mean(fig, 0, 3) * 1.1,
        "default baseline must decay with RTT: {} -> {}",
        mean(fig, 0, 0),
        mean(fig, 0, 3)
    );
    // 9 G pacing: identical mean on every path (σ ≈ 0 flatness).
    let nine: Vec<f64> = (0..4).map(|x| mean(fig, 3, x)).collect();
    let spread = nine.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        - nine.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(spread < 0.02 * nine[0], "9 G/flow must be flat everywhere: {nine:?}");
    // Unpaced zerocopy degrades toward the long shared paths.
    assert!(mean(fig, 1, 0) > mean(fig, 1, 3), "unpaced zerocopy must lose to cross traffic");
}

/// Parse an "N Gbps" table cell.
fn gbps_cell(cell: &str) -> f64 {
    cell.split_whitespace().next().expect("numeric cell").parse().expect("Gbps value")
}

/// Table I: the throughput ladder — unpaced ≈ 25 G ≈ the host ceiling,
/// 20 G below that, 15 G at the bottom.
#[test]
fn table1_pacing_ladder() {
    let t = tables::table1(&ctx());
    assert_eq!(t.rows.len(), 4);
    let tput: Vec<f64> = t.rows.iter().map(|r| gbps_cell(&r[1])).collect();
    assert!(
        (tput[0] - tput[1]).abs() < 0.05 * tput[0],
        "unpaced ≈ 25 G-paced (both at the ceiling): {tput:?}"
    );
    assert!(tput[2] < tput[1] * 0.97, "20 G must sit below the ceiling: {tput:?}");
    assert!(tput[3] < tput[2] * 0.97, "15 G must sit below 20 G: {tput:?}");
}

/// Table II: the 15 G/stream row lands at ~115 Gbps (the paper's exact
/// figure), below the unpaced/25 G/20 G rows which the sender CPU caps.
#[test]
fn table2_fifteen_gig_row() {
    let t = tables::table2(&ctx());
    assert_eq!(t.rows.len(), 4);
    let tput: Vec<f64> = t.rows.iter().map(|r| gbps_cell(&r[1])).collect();
    assert!((105.0..125.0).contains(&tput[3]), "15 G row must land near 115: {tput:?}");
    for i in 0..3 {
        assert!(tput[i] >= tput[3] * 0.98, "row {i} must not fall below the 15 G row: {tput:?}");
    }
}

/// §V-C hardware GRO: the 1500-byte rescue is the headline — well over
/// a 2× gain at MTU 1500, a real but smaller gain at MTU 9000.
#[test]
fn ext_hw_gro_1500_byte_rescue() {
    let figs = extensions::hw_gro(&ctx());
    let fig = &figs[0];
    // Series: [software GRO (6.8), hardware GRO (6.11)]; x: [9000, 1500].
    assert_eq!(fig.series.len(), 2);
    assert!(
        mean(fig, 1, 1) > 2.0 * mean(fig, 0, 1),
        "hardware GRO must rescue MTU 1500: {} vs {}",
        mean(fig, 1, 1),
        mean(fig, 0, 1)
    );
    assert!(mean(fig, 1, 0) > mean(fig, 0, 0), "hardware GRO must still help at MTU 9000");
}

/// §V-C BIG TCP + MSG_ZEROCOPY on the custom kernel: the combination
/// beats the default baseline and BIG TCP alone.
#[test]
fn ext_bigtcp_zerocopy_combination_wins() {
    let figs = extensions::bigtcp_zerocopy(&ctx());
    let fig = &figs[0];
    // Series: [default, BIG TCP, zerocopy+pace50, BIG TCP + zerocopy].
    assert_eq!(fig.series.len(), 4);
    let (default, bigtcp, combined) = (mean(fig, 0, 0), mean(fig, 1, 0), mean(fig, 3, 0));
    assert!(bigtcp > default * 1.03, "BIG TCP alone must gain: {bigtcp:.1} vs {default:.1}");
    assert!(
        combined > default * 1.2,
        "the combination must clearly beat default: {combined:.1} vs {default:.1}"
    );
    assert!(combined > bigtcp, "the combination must beat BIG TCP alone");
}
