//! One Criterion target per paper table/figure.
//!
//! Each target runs that artefact's *headline scenario* end to end
//! (single repetition, short duration) so `cargo bench` exercises and
//! times every reproduction path. The full multi-repetition artefact
//! regeneration — mean/stdev/min/max over ≥5 seeds at paper-scale
//! durations — is the `repro` binary:
//!
//! ```text
//! cargo run --release -p harness --bin repro -- all
//! ```

use bench::paper_scenarios;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_paper_artefacts(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiments");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for scenario in paper_scenarios() {
        group.bench_function(scenario.name, |b| {
            b.iter(|| {
                let gbps = scenario.run();
                assert!(gbps > 0.1, "{} produced {gbps:.2} Gbps", scenario.name);
                gbps
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_paper_artefacts);
criterion_main!(benches);
