//! Log-linear HDR histogram over `u64` values.
//!
//! Bucket scheme (`SUB_BITS = 7`):
//!
//! * values `< 128` get one exact unit-width bucket each (error 0);
//! * larger values are grouped by magnitude: for a value whose most
//!   significant bit is `msb ≥ 7`, the shift is `s = msb − 6` and the
//!   bucket index is `128 + (s−1)·64 + ((v >> s) − 64)` — 64 buckets
//!   of width `2^s` per binary order of magnitude.
//!
//! A bucket's representative value is its midpoint, so the relative
//! quantile error is at most `(2^s / 2) / (64 · 2^s) = 1/128 ≈ 0.78%`,
//! under the 1% budget. The full `u64` range needs `128 + 57·64 =
//! 3776` buckets (≈ 30 KiB); storage grows lazily so an empty or
//! small-valued histogram stays tiny.

/// Number of low-order exact buckets (and sub-buckets per octave × 2).
const SUB: u64 = 128;
/// Sub-buckets per binary order of magnitude above `SUB`.
const HALF: u64 = SUB / 2;
/// Total bucket count covering the whole `u64` range.
const NUM_BUCKETS: usize = (SUB + 57 * HALF) as usize;

/// A mergeable log-linear histogram with ≤ 1/128 relative quantile
/// error, exact `min`/`max`/`count`/`sum`, and saturating counts.
///
/// Merging is *lossless* with respect to the bucket scheme: because
/// each sample's bucket depends only on its value, merging per-shard
/// histograms yields bit-for-bit the same state as recording every
/// sample into a single histogram, in any merge order or grouping.
#[derive(Debug, Clone, Default)]
pub struct HdrHistogram {
    /// Bucket counts, lazily grown; indices past `counts.len()` are 0.
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

/// Bucket index for a value.
fn index_of(v: u64) -> usize {
    if v < SUB {
        v as usize
    } else {
        let msb = 63 - u64::from(v.leading_zeros());
        let s = msb - 6;
        (SUB + (s - 1) * HALF + ((v >> s) - HALF)) as usize
    }
}

/// Lowest value mapping to bucket `idx`.
fn bucket_lower(idx: usize) -> u64 {
    if (idx as u64) < SUB {
        idx as u64
    } else {
        let b = idx as u64 - SUB;
        let s = b / HALF + 1;
        let off = b % HALF;
        (HALF + off) << s
    }
}

/// Width (number of distinct values) of bucket `idx`.
fn bucket_width(idx: usize) -> u64 {
    if (idx as u64) < SUB {
        1
    } else {
        1 << ((idx as u64 - SUB) / HALF + 1)
    }
}

/// Midpoint representative reported for quantiles in bucket `idx`.
fn bucket_mid(idx: usize) -> u64 {
    bucket_lower(idx) + bucket_width(idx) / 2
}

impl HdrHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Record `n` identical samples (used when folding pre-aggregated
    /// counts). Counts and sums saturate instead of wrapping.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = index_of(v);
        debug_assert!(idx < NUM_BUCKETS);
        if self.counts.len() <= idx {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] = self.counts[idx].saturating_add(n);
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count = self.count.saturating_add(n);
        self.sum = self.sum.saturating_add(u128::from(v) * u128::from(n));
    }

    /// Record a non-negative float sample, rounding to the nearest
    /// integer; negative and non-finite samples are clamped to 0.
    pub fn record_f64(&mut self, v: f64) {
        let v = if v.is_finite() && v > 0.0 { v.round() as u64 } else { 0 };
        self.record(v);
    }

    /// Number of recorded samples (saturating).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact sum of all samples (saturating at `u128::MAX`).
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Exact minimum sample, if any.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact maximum sample, if any.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of all samples, if any.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Nearest-rank quantile, `q` in `[0, 1]`. Returns the midpoint of
    /// the bucket holding the rank-⌈q·count⌉ sample, clamped to the
    /// exact tracked `[min, max]`; relative error ≤ 1/128.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = (q * self.count as f64).ceil().max(1.0).min(self.count as f64) as u64;
        // The extreme ranks are tracked exactly — report them exactly.
        if rank == 1 {
            return Some(self.min);
        }
        if rank == self.count {
            return Some(self.max);
        }
        let mut cum = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            cum = cum.saturating_add(c);
            if cum >= rank {
                return Some(bucket_mid(idx).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Merge `other` into `self`. Lossless: the result is identical to
    /// having recorded both sample streams into one histogram.
    pub fn merge(&mut self, other: &HdrHistogram) {
        if other.count == 0 {
            return;
        }
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (idx, &c) in other.counts.iter().enumerate() {
            self.counts[idx] = self.counts[idx].saturating_add(c);
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Non-empty buckets as `(representative value, count)` pairs in
    /// ascending value order — the exposition renderers' iteration.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(idx, &c)| (bucket_mid(idx), c))
    }
}

impl PartialEq for HdrHistogram {
    /// Structural equality ignoring trailing empty buckets, so a shard
    /// merge compares equal to a single-pass histogram even when their
    /// lazily-grown storage lengths differ.
    fn eq(&self, other: &Self) -> bool {
        if (self.count, self.sum) != (other.count, other.sum) {
            return false;
        }
        if self.count > 0 && (self.min, self.max) != (other.min, other.max) {
            return false;
        }
        let (short, long) = if self.counts.len() <= other.counts.len() {
            (&self.counts, &other.counts)
        } else {
            (&other.counts, &self.counts)
        };
        short.iter().zip(long.iter()).all(|(a, b)| a == b)
            && long[short.len()..].iter().all(|&c| c == 0)
    }
}

impl Eq for HdrHistogram {}

#[cfg(test)]
mod tests {
    use super::*;

    /// SplitMix64 — the repo-standard dependency-free PRNG for tests.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// Exact nearest-rank quantile from a sorted sample vector.
    fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
        let rank = (q * sorted.len() as f64).ceil().max(1.0).min(sorted.len() as f64) as usize;
        sorted[rank - 1]
    }

    fn assert_within_1pct(h: &HdrHistogram, sorted: &[u64], q: f64) {
        let exact = exact_quantile(sorted, q);
        let got = h.quantile(q).unwrap();
        let tol = 1.0_f64.max(exact as f64 * 0.01);
        assert!(
            (got as f64 - exact as f64).abs() <= tol,
            "q={q}: histogram {got} vs exact {exact} (tol {tol:.1})"
        );
    }

    const QS: [f64; 7] = [0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0];

    #[test]
    fn small_values_are_exact() {
        let mut h = HdrHistogram::new();
        let mut samples: Vec<u64> = (0..128).collect();
        for &v in &samples {
            h.record(v);
        }
        samples.sort_unstable();
        for q in QS {
            assert_eq!(h.quantile(q).unwrap(), exact_quantile(&samples, q));
        }
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(127));
        assert_eq!(h.sum(), (0u128..128).sum::<u128>());
    }

    #[test]
    fn uniform_random_within_error_bound() {
        let mut rng = Rng(1);
        let mut h = HdrHistogram::new();
        let mut samples = Vec::new();
        for _ in 0..20_000 {
            let v = rng.next() % 10_000_000;
            h.record(v);
            samples.push(v);
        }
        samples.sort_unstable();
        for q in QS {
            assert_within_1pct(&h, &samples, q);
        }
    }

    #[test]
    fn heavy_tail_within_error_bound() {
        // Pareto-ish: exponentiate the uniform so the tail spans many
        // orders of magnitude — the regime means hide and quantiles
        // matter (the datacenter-tuning argument for histograms).
        let mut rng = Rng(2);
        let mut h = HdrHistogram::new();
        let mut samples = Vec::new();
        for _ in 0..20_000 {
            let shift = rng.next() % 40;
            let v = (1u64 << shift) + rng.next() % (1 << shift).max(1);
            h.record(v);
            samples.push(v);
        }
        samples.sort_unstable();
        for q in QS {
            assert_within_1pct(&h, &samples, q);
        }
    }

    #[test]
    fn adversarial_bucket_boundaries_within_error_bound() {
        // Values hugging every power-of-two boundary: v-1, v, v+1.
        let mut h = HdrHistogram::new();
        let mut samples = Vec::new();
        for shift in 0..63 {
            let v = 1u64 << shift;
            for s in [v.saturating_sub(1), v, v + 1] {
                h.record(s);
                samples.push(s);
            }
        }
        samples.sort_unstable();
        for q in QS {
            assert_within_1pct(&h, &samples, q);
        }
    }

    #[test]
    fn all_equal_samples() {
        let mut h = HdrHistogram::new();
        for _ in 0..1000 {
            h.record(123_456);
        }
        for q in QS {
            // Min/max clamping makes constant streams exact.
            assert_eq!(h.quantile(q), Some(123_456));
        }
        assert_eq!(h.mean(), Some(123_456.0));
    }

    #[test]
    fn empty_and_single() {
        let mut h = HdrHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        h.record(42);
        assert_eq!(h.count(), 1);
        for q in QS {
            assert_eq!(h.quantile(q), Some(42));
        }
    }

    #[test]
    fn extreme_values_do_not_overflow() {
        let mut h = HdrHistogram::new();
        h.record(0);
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(u64::MAX));
        assert_eq!(h.count(), 3);
        // p100 clamps to the exact max even though the top bucket's
        // midpoint would otherwise overflow the value range.
        assert_eq!(h.quantile(1.0), Some(u64::MAX));
        assert!(index_of(u64::MAX) < NUM_BUCKETS);
    }

    #[test]
    fn saturating_counts() {
        let mut h = HdrHistogram::new();
        h.record_n(7, u64::MAX);
        h.record_n(7, 10);
        assert_eq!(h.count(), u64::MAX);
        assert_eq!(h.quantile(0.5), Some(7));
        let mut other = HdrHistogram::new();
        other.record_n(9, u64::MAX);
        h.merge(&other);
        assert_eq!(h.count(), u64::MAX);
        assert_eq!(h.max(), Some(9));
    }

    #[test]
    fn merge_equals_single_pass() {
        let mut rng = Rng(3);
        let samples: Vec<u64> = (0..30_000).map(|_| rng.next() % 1_000_000_000).collect();
        let mut single = HdrHistogram::new();
        for &v in &samples {
            single.record(v);
        }
        // Shard into 7 uneven pieces, merge back.
        let mut merged = HdrHistogram::new();
        for chunk in samples.chunks(4321) {
            let mut shard = HdrHistogram::new();
            for &v in chunk {
                shard.record(v);
            }
            merged.merge(&shard);
        }
        assert_eq!(merged, single);
        assert_eq!(merged.quantile(0.999), single.quantile(0.999));
    }

    #[test]
    fn merge_commutative_and_associative() {
        let mut rng = Rng(4);
        let mk = |rng: &mut Rng, n: usize, modulo: u64| {
            let mut h = HdrHistogram::new();
            for _ in 0..n {
                h.record(rng.next() % modulo);
            }
            h
        };
        let a = mk(&mut rng, 1000, 500);
        let b = mk(&mut rng, 2000, 5_000_000);
        let c = mk(&mut rng, 50, u64::MAX);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "merge must be commutative");

        let mut ab_c = ab.clone();
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc, "merge must be associative");
    }

    #[test]
    fn merge_empty_is_identity() {
        let mut rng = Rng(5);
        let mut h = HdrHistogram::new();
        for _ in 0..100 {
            h.record(rng.next() % 1000);
        }
        let before = h.clone();
        h.merge(&HdrHistogram::new());
        assert_eq!(h, before);
        let mut empty = HdrHistogram::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn bucket_scheme_invariants() {
        // Every bucket's lower bound maps back to that bucket and the
        // value one below it maps to the previous bucket.
        for idx in 1..NUM_BUCKETS {
            let lo = bucket_lower(idx);
            assert_eq!(index_of(lo), idx, "lower bound of bucket {idx}");
            assert_eq!(index_of(lo - 1), idx - 1, "predecessor of bucket {idx}");
            // Relative half-width (the quantile error bound) ≤ 1/128.
            let half = bucket_width(idx) / 2;
            assert!(half as f64 <= lo as f64 / 128.0 + f64::EPSILON);
        }
    }

    #[test]
    fn record_f64_clamps() {
        let mut h = HdrHistogram::new();
        h.record_f64(-5.0);
        h.record_f64(f64::NAN);
        h.record_f64(2.6);
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(3));
    }
}
