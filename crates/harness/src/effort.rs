//! Effort levels: how faithfully to reproduce the paper's 60-second,
//! ≥10-repetition methodology vs how long you're willing to wait.

/// Simulation effort.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Effort {
    /// CI-sized: 2 repetitions, short runs. Shapes hold; stdev columns
    /// are noisy.
    Smoke,
    /// Default: 5 repetitions, mid-length runs (WAN flows reach steady
    /// state).
    #[default]
    Standard,
    /// Paper-faithful: 10 repetitions of 60-second tests (§III-G).
    Full,
}

impl Effort {
    /// Repetitions per configuration ("run a minimum of 10 times").
    pub fn repetitions(self) -> usize {
        match self {
            Effort::Smoke => 2,
            Effort::Standard => 5,
            Effort::Full => 10,
        }
    }

    /// Duration (seconds) for single-stream LAN tests.
    pub fn lan_secs(self) -> u64 {
        match self {
            Effort::Smoke => 3,
            Effort::Standard => 8,
            Effort::Full => 60,
        }
    }

    /// Duration (seconds) for WAN tests — long enough for slow start
    /// plus CUBIC convergence at 100+ ms RTTs.
    pub fn wan_secs(self) -> u64 {
        match self {
            Effort::Smoke => 6,
            Effort::Standard => 18,
            Effort::Full => 60,
        }
    }

    /// Duration (seconds) for 8-stream tests (more events per second).
    pub fn multi_secs(self) -> u64 {
        match self {
            Effort::Smoke => 4,
            Effort::Standard => 14,
            Effort::Full => 60,
        }
    }

    /// Duration (seconds) for the many-flow `ext_scale` fan-in runs —
    /// short by design: 256 flows generate roughly 256× the events of a
    /// single stream, so paper-length tests would dominate wall-clock.
    pub fn scale_secs(self) -> u64 {
        match self {
            Effort::Smoke => 2,
            Effort::Standard => 6,
            Effort::Full => 20,
        }
    }

    /// Target flow count for the steady `ext_fleet` profile. The fleet
    /// engine holds arrival *rate* fixed and scales duration, so the
    /// per-flow statistics are comparable across efforts; Full crosses
    /// the ROADMAP item 2 bar of ≥1M flows in one simulation.
    pub fn fleet_target_flows(self) -> u64 {
        match self {
            Effort::Smoke => 60_000,
            Effort::Standard => 250_000,
            Effort::Full => 1_200_000,
        }
    }

    /// Warm-up seconds excluded from measurements (`iperf3 -O`).
    pub fn omit_secs(self, wan: bool) -> u64 {
        match self {
            Effort::Smoke => if wan { 2 } else { 0 },
            Effort::Standard => if wan { 4 } else { 1 },
            Effort::Full => if wan { 5 } else { 2 },
        }
    }

    /// Wall-clock deadline for one supervised repetition attempt.
    /// Generous multiples of the worst observed per-rep runtime — the
    /// deadline exists to catch hangs, not to race healthy runs.
    pub fn rep_deadline(self) -> std::time::Duration {
        std::time::Duration::from_secs(match self {
            Effort::Smoke => 120,
            Effort::Standard => 300,
            Effort::Full => 1200,
        })
    }

    /// Total attempts per repetition (first run included) the
    /// supervisor may spend on retryable failures.
    pub fn retry_attempts(self) -> u32 {
        match self {
            Effort::Smoke | Effort::Standard => 2,
            Effort::Full => 3,
        }
    }

    /// Per-experiment retry budget: across all of one experiment's
    /// scenarios, at most this many retries run before further
    /// failures are recorded without another attempt.
    pub fn error_budget(self) -> u64 {
        match self {
            Effort::Smoke => 16,
            Effort::Standard => 32,
            Effort::Full => 64,
        }
    }

    /// Read `REPRO_EFFORT` from the environment (`smoke` / `standard` /
    /// `full`), defaulting to [`Effort::Standard`].
    pub fn from_env() -> Self {
        match std::env::var("REPRO_EFFORT").as_deref() {
            Ok("smoke") => Effort::Smoke,
            Ok("full") => Effort::Full,
            Ok("standard") | Err(_) => Effort::Standard,
            Ok(other) => {
                eprintln!("REPRO_EFFORT='{other}' not recognized (smoke|standard|full); using standard");
                Effort::Standard
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effort_ladder_is_monotone() {
        let e = [Effort::Smoke, Effort::Standard, Effort::Full];
        for w in e.windows(2) {
            assert!(w[0].repetitions() <= w[1].repetitions());
            assert!(w[0].lan_secs() <= w[1].lan_secs());
            assert!(w[0].wan_secs() <= w[1].wan_secs());
            assert!(w[0].multi_secs() <= w[1].multi_secs());
            assert!(w[0].scale_secs() <= w[1].scale_secs());
            assert!(w[0].fleet_target_flows() <= w[1].fleet_target_flows());
            assert!(w[0].rep_deadline() <= w[1].rep_deadline());
            assert!(w[0].retry_attempts() <= w[1].retry_attempts());
            assert!(w[0].error_budget() <= w[1].error_budget());
        }
    }

    #[test]
    fn full_matches_paper_methodology() {
        assert_eq!(Effort::Full.repetitions(), 10);
        assert_eq!(Effort::Full.lan_secs(), 60);
        assert_eq!(Effort::Full.wan_secs(), 60);
        // ROADMAP item 2: full-effort fleet runs serve ≥1M flows.
        assert!(Effort::Full.fleet_target_flows() >= 1_000_000);
    }

    #[test]
    fn omit_shorter_than_duration() {
        for e in [Effort::Smoke, Effort::Standard, Effort::Full] {
            assert!(e.omit_secs(true) < e.wan_secs());
            assert!(e.omit_secs(false) < e.lan_secs());
        }
    }
}
