//! Simulation configuration: hosts, path, workload.

use crate::faults::FaultPlan;
use linuxhost::HostConfig;
use nethw::PathSpec;
use simcore::{BitRate, SimDuration};
use tcpstack::CcAlgorithm;

/// What traffic to generate — the iperf3 command line, in effect.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Number of parallel TCP streams (`-P`).
    pub num_flows: usize,
    /// Test duration (`-t`), including the omitted warm-up.
    pub duration: SimDuration,
    /// Warm-up to exclude from results (`-O`); lets WAN flows finish
    /// slow start before measurement begins.
    pub omit: SimDuration,
    /// Send with MSG_ZEROCOPY (`--zerocopy=z`).
    pub zerocopy: bool,
    /// Send with `sendfile()` (`iperf3 -Z`, the classic zerocopy).
    pub sendfile: bool,
    /// Receiver discards with MSG_TRUNC (`--skip-rx-copy`).
    pub skip_rx_copy: bool,
    /// Both applications checksum every byte in user space
    /// (Globus-style data movers, §V-B).
    pub user_checksum: bool,
    /// Per-flow pacing cap (`--fq-rate`).
    pub fq_rate: Option<BitRate>,
    /// Congestion control algorithm.
    pub cc: CcAlgorithm,
    /// Per-flow congestion-control mix: flow `i` runs `cc_mix[i % len]`
    /// (round-robin, so the variants stay evenly represented at any
    /// flow count). Empty — the default — means every flow runs
    /// [`WorkloadSpec::cc`]. Mixed-CC fleets are how shared DTN links
    /// actually look, and the `cc_mix_256` bench scenario uses this to
    /// time all four controllers in one run.
    pub cc_mix: Vec<CcAlgorithm>,
    /// RNG seed; a (config, seed) pair reproduces a run bit-for-bit.
    pub seed: u64,
    /// Scheduled fault injections (empty = fault-free run).
    pub faults: FaultPlan,
    /// Watchdog event budget override; `None` scales with duration.
    pub event_budget: Option<u64>,
    /// Telemetry sampling tick (`ss`/`ethtool`/`mpstat` cadence,
    /// §III-G). `None` (the default) disables sampling entirely: no
    /// tick event is scheduled and nothing allocates.
    pub telemetry: Option<SimDuration>,
    /// Bottleneck attribution: per-stage cycle ledgers on both hosts
    /// plus a per-interval limiting-factor verdict (the simulator's
    /// `perf` + diagnosis pass). Off by default; enabling it never
    /// changes traffic — an attributed run is bit-identical to an
    /// unattributed one with the same seed.
    pub attribution: bool,
}

impl WorkloadSpec {
    /// Single default-settings stream for `secs` seconds.
    pub fn single_stream(secs: u64) -> Self {
        WorkloadSpec {
            num_flows: 1,
            duration: SimDuration::from_secs(secs),
            omit: SimDuration::from_secs(if secs > 6 { 2 } else { 0 }),
            zerocopy: false,
            sendfile: false,
            skip_rx_copy: false,
            user_checksum: false,
            fq_rate: None,
            cc: CcAlgorithm::Cubic,
            cc_mix: Vec::new(),
            seed: 1,
            faults: FaultPlan::none(),
            event_budget: None,
            telemetry: None,
            attribution: false,
        }
    }

    /// `-P n` parallel streams for `secs` seconds.
    pub fn parallel(n: usize, secs: u64) -> Self {
        WorkloadSpec { num_flows: n, ..Self::single_stream(secs) }
    }

    /// Builder: enable zerocopy.
    pub fn with_zerocopy(mut self) -> Self {
        self.zerocopy = true;
        self
    }

    /// Builder: enable sendfile-based sending.
    pub fn with_sendfile(mut self) -> Self {
        self.sendfile = true;
        self
    }

    /// Builder: enable `--skip-rx-copy`.
    pub fn with_skip_rx_copy(mut self) -> Self {
        self.skip_rx_copy = true;
        self
    }

    /// Builder: enable user-level checksumming.
    pub fn with_user_checksum(mut self) -> Self {
        self.user_checksum = true;
        self
    }

    /// Builder: set a per-flow pacing rate.
    pub fn with_fq_rate(mut self, rate: BitRate) -> Self {
        self.fq_rate = Some(rate);
        self
    }

    /// Builder: choose the congestion controller.
    pub fn with_cc(mut self, cc: CcAlgorithm) -> Self {
        self.cc = cc;
        self
    }

    /// Builder: run a round-robin mix of controllers across the flows
    /// (flow `i` gets `mix[i % mix.len()]`).
    pub fn with_cc_mix(mut self, mix: Vec<CcAlgorithm>) -> Self {
        self.cc_mix = mix;
        self
    }

    /// The controller flow `flow` runs: the round-robin mix entry when
    /// a mix is set, otherwise the single configured algorithm.
    pub fn flow_cc(&self, flow: usize) -> CcAlgorithm {
        if self.cc_mix.is_empty() {
            self.cc
        } else {
            self.cc_mix[flow % self.cc_mix.len()]
        }
    }

    /// Builder: set the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder: attach a fault-injection schedule.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Builder: cap the total number of events the run may process
    /// (the watchdog turns overruns into [`crate::SimError::Stalled`]).
    pub fn with_event_budget(mut self, budget: u64) -> Self {
        self.event_budget = Some(budget);
        self
    }

    /// Builder: sample `ss`/`ethtool`/`mpstat`-style telemetry every
    /// `tick` of simulated time.
    pub fn with_telemetry(mut self, tick: SimDuration) -> Self {
        self.telemetry = Some(tick);
        self
    }

    /// Builder: enable bottleneck attribution (stage ledgers +
    /// per-interval limiting-factor verdicts).
    pub fn with_attribution(mut self) -> Self {
        self.attribution = true;
        self
    }

    /// Measured window (duration − omit).
    pub fn measured_window(&self) -> SimDuration {
        self.duration.saturating_sub(self.omit)
    }
}

/// A complete simulation configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Sending host.
    pub sender: HostConfig,
    /// Receiving host.
    pub receiver: HostConfig,
    /// The network between them.
    pub path: PathSpec,
    /// Traffic to generate.
    pub workload: WorkloadSpec,
}

impl SimConfig {
    /// Validate the combination, returning problems (empty = ok).
    pub fn validate(&self) -> Vec<String> {
        let mut problems = self.sender.validate();
        problems.extend(self.receiver.validate());
        if self.workload.num_flows == 0 {
            problems.push("need at least one flow".into());
        }
        if self.workload.duration.is_zero() {
            problems.push("zero duration".into());
        }
        if self.workload.omit >= self.workload.duration {
            problems.push("omit window swallows the whole test".into());
        }
        if self.workload.zerocopy && self.workload.sendfile {
            problems.push("--zerocopy=z and -Z (sendfile) are mutually exclusive".into());
        }
        if self.workload.zerocopy && !self.sender.offload.zerocopy_compatible() {
            problems.push(
                "MSG_ZEROCOPY with BIG TCP requires a MAX_SKB_FRAGS=45 kernel build".into(),
            );
        }
        if self.workload.fq_rate.is_some() && !self.sender.sysctl.supports_fq_pacing() {
            problems.push("--fq-rate requires net.core.default_qdisc=fq".into());
        }
        if self.workload.telemetry.is_some_and(|t| t.is_zero()) {
            problems.push("telemetry tick must be positive".into());
        }
        problems.extend(self.workload.faults.validate(self.workload.duration));
        problems
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linuxhost::KernelVersion;
    use nethw::PathSpec;
    use simcore::Bytes;

    fn base() -> SimConfig {
        SimConfig {
            sender: HostConfig::esnet_amd(KernelVersion::L6_8),
            receiver: HostConfig::esnet_amd(KernelVersion::L6_8),
            path: PathSpec::lan("lan", BitRate::gbps(200.0)),
            workload: WorkloadSpec::single_stream(10),
        }
    }

    #[test]
    fn valid_baseline() {
        assert!(base().validate().is_empty());
    }

    #[test]
    fn zerocopy_bigtcp_conflict_detected() {
        let mut cfg = base();
        cfg.sender.offload = cfg
            .sender
            .offload
            .with_big_tcp(Bytes::new(150_000), KernelVersion::L6_8);
        cfg.workload = cfg.workload.with_zerocopy();
        let problems = cfg.validate();
        assert!(problems.iter().any(|p| p.contains("MAX_SKB_FRAGS")), "{problems:?}");
    }

    #[test]
    fn custom_kernel_resolves_conflict() {
        let mut cfg = base();
        cfg.sender.offload = cfg
            .sender
            .offload
            .with_big_tcp(Bytes::new(150_000), KernelVersion::L6_8)
            .with_max_skb_frags(45, KernelVersion::L6_8);
        cfg.workload = cfg.workload.with_zerocopy();
        assert!(cfg.validate().is_empty());
    }

    #[test]
    fn fq_rate_needs_fq_qdisc() {
        let mut cfg = base();
        cfg.sender.sysctl = linuxhost::SysctlConfig::stock();
        cfg.workload = cfg.workload.with_fq_rate(BitRate::gbps(10.0));
        assert!(!cfg.validate().is_empty());
    }

    #[test]
    fn workload_builders() {
        let w = WorkloadSpec::parallel(8, 20)
            .with_zerocopy()
            .with_skip_rx_copy()
            .with_fq_rate(BitRate::gbps(15.0))
            .with_cc(CcAlgorithm::BbrV1)
            .with_seed(99)
            .with_attribution();
        assert_eq!(w.num_flows, 8);
        assert!(w.zerocopy && w.skip_rx_copy);
        assert!(w.attribution);
        assert_eq!(w.seed, 99);
        assert_eq!(w.measured_window(), SimDuration::from_secs(18));
    }

    #[test]
    fn cc_mix_round_robins_and_defaults_to_single_cc() {
        let plain = WorkloadSpec::parallel(4, 10).with_cc(CcAlgorithm::BbrV3);
        for f in 0..8 {
            assert_eq!(plain.flow_cc(f), CcAlgorithm::BbrV3);
        }
        let mixed = WorkloadSpec::parallel(256, 10).with_cc_mix(CcAlgorithm::ALL.to_vec());
        let mut counts = [0usize; 4];
        for f in 0..256 {
            let alg = mixed.flow_cc(f);
            counts[CcAlgorithm::ALL.iter().position(|a| *a == alg).unwrap()] += 1;
        }
        assert_eq!(counts, [64, 64, 64, 64], "mix is not even: {counts:?}");
    }

    #[test]
    fn fault_schedule_validated_against_duration() {
        let mut cfg = base();
        cfg.workload = cfg.workload.with_faults(
            FaultPlan::none()
                .with_link_flap(SimDuration::from_secs(60), SimDuration::from_millis(100)),
        );
        let problems = cfg.validate();
        assert!(problems.iter().any(|p| p.contains("link-flap")), "{problems:?}");

        let mut ok = base();
        ok.workload = ok.workload.with_faults(
            FaultPlan::none()
                .with_link_flap(SimDuration::from_secs(3), SimDuration::from_millis(100)),
        );
        assert!(ok.validate().is_empty());
    }

    #[test]
    fn degenerate_workloads_rejected() {
        let mut cfg = base();
        cfg.workload.num_flows = 0;
        assert!(!cfg.validate().is_empty());
        let mut cfg2 = base();
        cfg2.workload.omit = cfg2.workload.duration;
        assert!(!cfg2.validate().is_empty());
    }

    #[test]
    fn zero_telemetry_tick_rejected() {
        let mut cfg = base();
        cfg.workload = cfg.workload.with_telemetry(SimDuration::ZERO);
        assert!(cfg.validate().iter().any(|p| p.contains("telemetry")));
        let mut ok = base();
        ok.workload = ok.workload.with_telemetry(SimDuration::from_secs(1));
        assert!(ok.validate().is_empty());
    }
}
