//! `linuxhost` — a model of the Linux host network stack.
//!
//! This crate captures everything the paper tunes on its Data Transfer
//! Nodes:
//!
//! * [`kernel`] — kernel versions (5.10/5.15/6.5/6.8/6.11) with feature
//!   gates (MSG_ZEROCOPY ≥ 4.17, BIG TCP IPv6 ≥ 5.19 / IPv4 ≥ 6.3,
//!   hardware GRO ≥ 6.11) and per-version efficiency profiles.
//! * [`cpu`] — CPU packages (Intel Xeon 6346 vs AMD EPYC 73F3) and the
//!   IRQ/application core-affinity scheme from §III-A.
//! * [`sysctl`] — the sysctl set from §III-D (`rmem_max`, `tcp_rmem`,
//!   `optmem_max`, `default_qdisc`, …), stock vs fasterdata-tuned.
//! * [`offload`] — GSO/GRO sizing including BIG TCP, MTU, `max_skb_frags`.
//! * [`zerocopy`] — MSG_ZEROCOPY completion accounting against
//!   `optmem_max`, with copy fallback when the budget is exhausted.
//! * [`qdisc`] — fq pacing (explicit `--fq-rate` or TCP auto-pacing).
//! * [`costmodel`] — CPU cycle costs per burst for each stage of the
//!   stack, per kernel and architecture; the heart of the simulation.
//! * [`mpstat`] — per-core-group utilisation accounting.
//! * [`hostcfg`] — the combined host configuration (a "DTN build sheet").
//! * [`virt`] — bare-metal vs PCI-passthrough VM (§III-H).
//! * [`calib`] — every calibrated constant, each documented with the
//!   paper anchor it satisfies.

#![deny(unreachable_pub)]
// Recoverable failures carry typed errors; every surviving `expect`
// states its infallibility argument (tests are exempt).
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod advisor;
pub mod calib;
pub mod costmodel;
pub mod cpu;
pub mod hostcfg;
pub mod kernel;
pub mod mpstat;
pub mod offload;
pub mod qdisc;
pub mod sysctl;
pub mod virt;
pub mod zerocopy;

pub use advisor::{advise, Intent, Recommendation, Severity};
pub use costmodel::{CostModel, Stage, TxMode, COST_MODEL_VERSION};
pub use cpu::{CoreAllocation, CpuArch};
pub use hostcfg::HostConfig;
pub use kernel::KernelVersion;
pub use mpstat::{CoreGroup, CpuAccounting, CpuReport};
pub use offload::{AddrFamily, OffloadConfig};
pub use qdisc::Pacer;
pub use sysctl::{Qdisc, SysctlConfig};
pub use virt::VirtMode;
pub use zerocopy::{SendOutcome, ZerocopyAccounting};
