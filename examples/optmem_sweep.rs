//! The Fig. 9 mechanism, interactively: sweep `net.core.optmem_max`
//! and watch MSG_ZEROCOPY silently degrade into copies on long paths.
//!
//! ```text
//! cargo run --release --example optmem_sweep
//! ```
//!
//! `optmem_max` bounds the completion notifications a zerocopy socket
//! may hold in flight; once a path's bandwidth-delay product outgrows
//! what that budget can pin, sends fall back to copying
//! (`SO_EE_CODE_ZEROCOPY_COPIED`) — throughput sags and the sender
//! CPU climbs, which is exactly what the sweep shows.

use dtnperf::prelude::*;

fn main() {
    let kernel = KernelVersion::L6_5; // the kernel the paper swept (SIV-B)
    let base = Testbeds::amlight_host(kernel);
    let harness = TestHarness::new(3);
    let opts = Iperf3Opts::new(14).omit(4).zerocopy().fq_rate(BitRate::gbps(50.0));

    let optmems: [(&str, Bytes); 5] = [
        ("20 KB (kernel default)", Bytes::kib(20)),
        ("256 KB", Bytes::kib(256)),
        ("1 MB (fasterdata)", Bytes::mib(1)),
        ("3.25 MB (paper's 6.5 optimum)", SysctlConfig::optmem_3_25_mb()),
        ("8 MB", Bytes::mib(8)),
    ];

    for path_sel in [AmLightPath::Wan25ms, AmLightPath::Wan104ms] {
        let path = Testbeds::amlight_path(path_sel);
        println!(
            "\nzerocopy + 50G pacing over {} (BDP at 50G: {})",
            path.name,
            path.usable_rate().bdp(path.rtt)
        );
        println!(
            "{:<32} {:>10} {:>12} {:>10}",
            "optmem_max", "tput", "sender CPU", "fallbacks"
        );
        for (label, optmem) in optmems {
            let host = base.clone().with_optmem(optmem);
            let s = harness.run(&Scenario::symmetric(label, host, path.clone(), opts.clone())).expect("scenario");
            println!(
                "{label:<32} {:>7.1} G {:>10.0}% {:>9.0}%",
                s.throughput_gbps.mean,
                s.sender_cpu_pct.mean,
                s.zc_fallback * 100.0
            );
        }
    }

    println!("\nrule of thumb: optmem_max must cover (BDP / send size) notifications,");
    println!("or MSG_ZEROCOPY quietly turns back into memcpy (SIV-B).");
}
