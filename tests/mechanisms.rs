//! Cross-crate mechanism tests: each verifies that one modelled
//! mechanism produces its characteristic *behaviour* end to end (not
//! just that the code paths run).

use dtnperf::prelude::*;

fn lan_opts(secs: u64) -> Iperf3Opts {
    Iperf3Opts::new(secs).omit(0)
}

#[test]
fn flow_control_converts_drops_into_backpressure() {
    // Same overload (zerocopy line-rate trains at a receiver that can't
    // keep up), with and without 802.3x on the receiver edge.
    let host = Testbeds::amlight_host(KernelVersion::L6_8);
    let mk_path = |fc: bool| {
        let p = PathSpec::wan("p", BitRate::gbps(100.0), SimDuration::from_millis(10));
        if fc { p.with_flow_control() } else { p }
    };
    let opts = Iperf3Opts::new(8).omit(2).zerocopy();
    let without = iperf3_run(&host, &host, &mk_path(false), &opts).unwrap();
    let with = iperf3_run(&host, &host, &mk_path(true), &opts).unwrap();
    assert!(
        with.sum_retr() < without.sum_retr() / 4,
        "pause frames must suppress retransmits: {} -> {}",
        without.sum_retr(),
        with.sum_retr()
    );
    assert!(
        with.sum_bitrate().as_gbps() >= without.sum_bitrate().as_gbps() * 0.9,
        "flow control should not cost throughput: {:.1} vs {:.1}",
        with.sum_bitrate().as_gbps(),
        without.sum_bitrate().as_gbps()
    );
}

#[test]
fn pacing_spreads_flows_evenly() {
    // §IV-C: without pacing per-flow rates range widely; with pacing
    // they equalise.
    let host = Testbeds::esnet_host(KernelVersion::L5_15);
    let path = Testbeds::esnet_path(EsnetPath::Lan);
    let unpaced = iperf3_run(&host, &host, &path, &lan_opts(6).parallel(8)).unwrap();
    let paced = iperf3_run(
        &host,
        &host,
        &path,
        &lan_opts(6).parallel(8).fq_rate(BitRate::gbps(15.0)),
    )
    .unwrap();
    let spread = |r: &Iperf3Report| r.max_stream_gbps() - r.min_stream_gbps();
    assert!(
        spread(&paced) < 1.0,
        "paced flows must equalise, spread {:.1}",
        spread(&paced)
    );
    assert!(
        spread(&unpaced) > 3.0,
        "unpaced flows should diverge, spread {:.1}",
        spread(&unpaced)
    );
}

#[test]
fn random_path_loss_triggers_recovery_not_collapse() {
    let host = Testbeds::amlight_host(KernelVersion::L6_8);
    let clean = PathSpec::wan("clean", BitRate::gbps(100.0), SimDuration::from_millis(10));
    let lossy = clean.clone().with_random_loss(5e-5);
    let opts = Iperf3Opts::new(10).omit(2);
    let r_clean = iperf3_run(&host, &host, &clean, &opts).unwrap();
    let r_lossy = iperf3_run(&host, &host, &lossy, &opts).unwrap();
    assert_eq!(r_clean.sum_retr(), 0, "clean path must not retransmit");
    assert!(r_lossy.sum_retr() > 50, "lossy path must retransmit");
    // SACK + TLP keep it productive despite the losses.
    assert!(
        r_lossy.sum_bitrate().as_gbps() > r_clean.sum_bitrate().as_gbps() * 0.25,
        "recovery should keep most throughput: {:.1} vs {:.1}",
        r_lossy.sum_bitrate().as_gbps(),
        r_clean.sum_bitrate().as_gbps()
    );
}

#[test]
fn skip_rx_copy_unloads_the_receiver() {
    let host = Testbeds::amlight_host(KernelVersion::L6_8);
    let path = Testbeds::amlight_path(AmLightPath::Lan);
    let normal = iperf3_run(&host, &host, &path, &lan_opts(4)).unwrap();
    let trunc = iperf3_run(&host, &host, &path, &lan_opts(4).skip_rx_copy()).unwrap();
    assert!(
        trunc.receiver_cpu.app_pct < normal.receiver_cpu.app_pct / 3.0,
        "MSG_TRUNC must gut the receiver app CPU: {:.0}% -> {:.0}%",
        normal.receiver_cpu.app_pct,
        trunc.receiver_cpu.app_pct
    );
    assert!(
        trunc.sum_bitrate().as_gbps() >= normal.sum_bitrate().as_gbps() * 0.95,
        "removing receive work must not cost throughput: {:.1} vs {:.1}",
        trunc.sum_bitrate().as_gbps(),
        normal.sum_bitrate().as_gbps()
    );
}

#[test]
fn sendfile_relieves_sender_cpu_like_msg_zerocopy() {
    // §II-B: sendfile is the older zerocopy; same sender-side copy
    // elimination, no optmem coupling — so unlike MSG_ZEROCOPY it
    // needs no sysctl to work on long paths.
    let host = Testbeds::amlight_host(KernelVersion::L6_8).with_optmem(Bytes::kib(20));
    let path = Testbeds::amlight_path(AmLightPath::Wan104ms);
    let opts = |f: fn(Iperf3Opts) -> Iperf3Opts| {
        f(Iperf3Opts::new(10).omit(3).fq_rate(BitRate::gbps(50.0)))
    };
    let copy = iperf3_run(&host, &host, &path, &opts(|o| o)).unwrap();
    let sendfile = iperf3_run(&host, &host, &path, &opts(|o| o.sendfile())).unwrap();
    let msg_zc = iperf3_run(&host, &host, &path, &opts(|o| o.zerocopy())).unwrap();
    assert!(
        sendfile.sender_cpu.app_pct < copy.sender_cpu.app_pct / 2.0,
        "sendfile must relieve the sender: {:.0}% -> {:.0}%",
        copy.sender_cpu.app_pct,
        sendfile.sender_cpu.app_pct
    );
    // With the crippled 20 KB optmem, MSG_ZEROCOPY falls back to
    // copies while sendfile sails through.
    assert!(
        sendfile.sum_bitrate().as_gbps() > msg_zc.sum_bitrate().as_gbps() * 1.3,
        "sendfile {:.1} should beat fallback-ridden MSG_ZEROCOPY {:.1}",
        sendfile.sum_bitrate().as_gbps(),
        msg_zc.sum_bitrate().as_gbps()
    );
}

#[test]
fn cc_choice_does_not_change_clean_testbed_throughput() {
    // §IV-F's primary finding: "single stream performance was not
    // significantly impacted by the choice of congestion control
    // algorithm, as there is no congestion on our testbeds". (The
    // paper's secondary note — BBRv1 retransmitting more — depends on
    // BBRv1's bufferbloat-vs-probe dynamics our simplified BBR doesn't
    // model; see EXPERIMENTS.md.)
    let host = Testbeds::esnet_host(KernelVersion::L6_8);
    let path = Testbeds::esnet_path(EsnetPath::Wan);
    let run_cc = |cc: CcAlgorithm| {
        iperf3_run(
            &host,
            &host,
            &path,
            &Iperf3Opts::new(12).omit(4).congestion(cc),
        )
        .unwrap()
        .sum_bitrate()
        .as_gbps()
    };
    let cubic = run_cc(CcAlgorithm::Cubic);
    let bbr1 = run_cc(CcAlgorithm::BbrV1);
    let bbr3 = run_cc(CcAlgorithm::BbrV3);
    for (name, g) in [("bbr", bbr1), ("bbr3", bbr3)] {
        let ratio = g / cubic;
        assert!(
            (0.8..1.25).contains(&ratio),
            "{name} vs cubic on the clean WAN: {g:.1} vs {cubic:.1}"
        );
    }
}

#[test]
fn cross_traffic_disturbs_unpaced_zerocopy() {
    // The Fig. 11 observation: unpaced zerocopy cannot hold full rate
    // on a path shared with bursty production traffic.
    let host = Testbeds::amlight_host(KernelVersion::L6_8);
    let clean = PathSpec::wan("clean", BitRate::gbps(100.0), SimDuration::from_millis(25));
    let busy = clean
        .clone()
        .with_cross_traffic(CrossTrafficSpec::amlight_production());
    let opts = Iperf3Opts::new(10).omit(3).parallel(8).zerocopy();
    let r_clean = iperf3_run(&host, &host, &clean, &opts).unwrap();
    let r_busy = iperf3_run(&host, &host, &busy, &opts).unwrap();
    assert!(
        r_busy.sum_bitrate().as_gbps() < r_clean.sum_bitrate().as_gbps() * 0.95,
        "production bursts must cost aggregate throughput: {:.1} vs {:.1}",
        r_busy.sum_bitrate().as_gbps(),
        r_clean.sum_bitrate().as_gbps()
    );
}

#[test]
fn big_tcp_reduces_receiver_cpu_per_bit() {
    let base = Testbeds::amlight_host(KernelVersion::L6_8);
    let mut big = base.clone();
    big.offload = big
        .offload
        .with_big_tcp(dtnperf::linuxhost::offload::PAPER_BIG_TCP_SIZE, KernelVersion::L6_8);
    let path = Testbeds::amlight_path(AmLightPath::Lan);
    let r_base = iperf3_run(&base, &base, &path, &lan_opts(4)).unwrap();
    let r_big = iperf3_run(&big, &big, &path, &lan_opts(4)).unwrap();
    let per_bit = |r: &Iperf3Report| r.receiver_cpu.combined_pct() / r.sum_bitrate().as_gbps();
    assert!(
        per_bit(&r_big) < per_bit(&r_base) * 0.9,
        "BIG TCP must cut receiver CPU/bit: {:.2} vs {:.2}",
        per_bit(&r_base),
        per_bit(&r_big)
    );
}

#[test]
fn untuned_hosts_show_the_irqbalance_lottery() {
    // §III-A: 20–55 Gbps on the same hardware. Across seeds the
    // untuned host must exhibit a wide range; the tuned host must not.
    let tuned = Testbeds::amlight_host(KernelVersion::L6_8);
    let mut untuned = tuned.clone();
    untuned.cores = CoreAllocation::stock(32);
    let path = Testbeds::amlight_path(AmLightPath::Lan);
    let spread = |host: &HostConfig| {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for seed in 0..8 {
            let g = iperf3_run(host, host, &path, &lan_opts(2).seed(seed))
                .unwrap()
                .sum_bitrate()
                .as_gbps();
            lo = lo.min(g);
            hi = hi.max(g);
        }
        (lo, hi)
    };
    let (tuned_lo, tuned_hi) = spread(&tuned);
    let (untuned_lo, untuned_hi) = spread(&untuned);
    assert!(
        tuned_hi / tuned_lo < 1.25,
        "tuned host must be stable: {tuned_lo:.1}..{tuned_hi:.1}"
    );
    assert!(
        untuned_hi / untuned_lo > 1.5,
        "untuned host must vary widely: {untuned_lo:.1}..{untuned_hi:.1}"
    );
}

#[test]
fn iperf3_pre_316_serialises_parallel_streams() {
    let host = Testbeds::esnet_host(KernelVersion::L6_8);
    let path = Testbeds::esnet_path(EsnetPath::Lan);
    let mut old = lan_opts(3).parallel(8);
    old.version = Iperf3Version { minor: 13, patch_1690: false, patch_1728: false };
    let r_old = iperf3_run(&host, &host, &path, &old).unwrap();
    let r_new = iperf3_run(&host, &host, &path, &lan_opts(3).parallel(8)).unwrap();
    assert!(
        r_new.sum_bitrate().as_gbps() > r_old.sum_bitrate().as_gbps() * 2.0,
        "multithreaded iperf3 must scale: v3.13={:.1} v3.17={:.1}",
        r_old.sum_bitrate().as_gbps(),
        r_new.sum_bitrate().as_gbps()
    );
}

#[test]
fn wan_throughput_grows_with_switch_buffer() {
    // Shallow transit buffers cost goodput when the bottleneck is the
    // switch itself: a zerocopy sender can overdrive a 30G circuit, so
    // the standing queue lives in the shared buffer.
    let host = Testbeds::amlight_host(KernelVersion::L6_8);
    let mk = |mib: u64| {
        PathSpec::wan("w", BitRate::gbps(30.0), SimDuration::from_millis(20))
            .with_switch_buffer(Bytes::mib(mib))
    };
    let opts = Iperf3Opts::new(12).omit(4).zerocopy();
    let shallow = iperf3_run(&host, &host, &mk(1), &opts).unwrap();
    let deep = iperf3_run(&host, &host, &mk(64), &opts).unwrap();
    // Classic result: a buffer well below the BDP (1 MiB « 75 MB)
    // leaves CUBIC underutilised after every loss cut; a BDP-scale
    // buffer rides at (nearly) full rate.
    assert!(
        deep.sum_bitrate().as_gbps() > shallow.sum_bitrate().as_gbps() * 1.08,
        "BDP-scale buffer must out-run a starved one: {:.1} vs {:.1}",
        deep.sum_bitrate().as_gbps(),
        shallow.sum_bitrate().as_gbps()
    );
    assert!(deep.sum_bitrate().as_gbps() > 28.0, "deep buffer ≈ line rate");
    // Both operating points are genuinely congested.
    assert!(shallow.sum_retr() > 1000 && deep.sum_retr() > 1000);
}
