//! Bursty background ("cross") traffic.
//!
//! AmLight's WAN paths carried ≈ 16 Gbps of production traffic during
//! the paper's experiments (§III-E), and the authors attribute the
//! failure of *unpaced* zerocopy to reach full rate on the WAN to
//! micro-bursts from that traffic (§IV-C, Fig. 11). We model it as an
//! on/off Markov process: exponentially distributed ON periods during
//! which the aggregate transmits at a configurable burst rate into the
//! bottleneck egress port, and exponential OFF gaps, with the long-run
//! average matching the configured mean rate.

use simcore::{BitRate, SimDuration, SimRng, SimTime};

/// Configuration of a cross-traffic aggregate.
#[derive(Debug, Clone, Copy)]
pub struct CrossTrafficSpec {
    /// Long-run average offered rate (paper: ~16 Gbps).
    pub mean_rate: BitRate,
    /// Instantaneous rate while a burst is on the wire. Production
    /// traffic is many 10G-ish flows; bursts arrive near line rate of
    /// the senders feeding the path.
    pub burst_rate: BitRate,
    /// Mean duration of an ON burst.
    pub mean_burst: SimDuration,
}

impl CrossTrafficSpec {
    /// AmLight production-traffic profile used in the reproduction:
    /// 16 Gbps average arriving as ~40 Gbps micro-bursts of ~2 ms.
    pub fn amlight_production() -> Self {
        CrossTrafficSpec {
            mean_rate: BitRate::gbps(16.0),
            burst_rate: BitRate::gbps(40.0),
            mean_burst: SimDuration::from_millis(2),
        }
    }

    /// Duty cycle implied by the spec (fraction of time ON).
    pub fn duty_cycle(&self) -> f64 {
        (self.mean_rate.as_bps() / self.burst_rate.as_bps()).min(1.0)
    }

    /// Mean OFF-gap duration that yields the configured average rate.
    pub fn mean_gap(&self) -> SimDuration {
        let duty = self.duty_cycle();
        if duty >= 1.0 {
            return SimDuration::ZERO;
        }
        self.mean_burst.mul_f64((1.0 - duty) / duty)
    }
}

impl simcore::Canonicalize for CrossTrafficSpec {
    fn canonicalize(&self, c: &mut simcore::Canon) {
        c.put_f64("mean_rate_bps", self.mean_rate.as_bps());
        c.put_f64("burst_rate_bps", self.burst_rate.as_bps());
        c.put_u64("mean_burst_ns", self.mean_burst.as_nanos());
    }
}

/// Live state of the on/off process.
#[derive(Debug, Clone)]
pub struct CrossTraffic {
    spec: CrossTrafficSpec,
    on: bool,
    /// Time of the next ON↔OFF transition.
    next_transition: SimTime,
}

impl CrossTraffic {
    /// Start the process (in an OFF gap) at time zero.
    pub fn new(spec: CrossTrafficSpec, rng: &mut SimRng) -> Self {
        assert!(spec.burst_rate.as_bps() >= spec.mean_rate.as_bps(), "burst rate below mean");
        let first_gap = SimDuration::from_secs_f64(
            rng.exponential(spec.mean_gap().as_secs_f64().max(1e-9)),
        );
        CrossTraffic { spec, on: false, next_transition: SimTime::ZERO + first_gap }
    }

    /// Advance the process to `now`, then report the instantaneous rate.
    pub fn rate_at(&mut self, now: SimTime, rng: &mut SimRng) -> BitRate {
        while now >= self.next_transition {
            self.on = !self.on;
            let mean = if self.on {
                self.spec.mean_burst.as_secs_f64()
            } else {
                self.spec.mean_gap().as_secs_f64().max(1e-9)
            };
            self.next_transition += SimDuration::from_secs_f64(rng.exponential(mean));
        }
        if self.on { self.spec.burst_rate } else { BitRate::ZERO }
    }

    /// Time of the next state change (lets the event loop know when to
    /// re-evaluate).
    pub fn next_transition(&self) -> SimTime {
        self.next_transition
    }

    /// The configured spec.
    pub fn spec(&self) -> CrossTrafficSpec {
        self.spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duty_cycle_and_gap() {
        let spec = CrossTrafficSpec::amlight_production();
        assert!((spec.duty_cycle() - 0.4).abs() < 1e-12);
        // gap = 2 ms * 0.6/0.4 = 3 ms.
        assert_eq!(spec.mean_gap().as_nanos(), 3_000_000);
    }

    #[test]
    fn long_run_average_matches_mean_rate() {
        let spec = CrossTrafficSpec::amlight_production();
        let mut rng = SimRng::seed_from_u64(17);
        let mut ct = CrossTraffic::new(spec, &mut rng);
        // Sample every 100 µs over 20 simulated seconds.
        let step = SimDuration::from_micros(100);
        let mut t = SimTime::ZERO;
        let mut acc = 0.0;
        let n = 200_000;
        for _ in 0..n {
            acc += ct.rate_at(t, &mut rng).as_gbps();
            t += step;
        }
        let avg = acc / n as f64;
        assert!(
            (avg - spec.mean_rate.as_gbps()).abs() < 1.5,
            "long-run average {avg:.2} Gbps too far from 16"
        );
    }

    #[test]
    fn rate_is_burst_or_zero() {
        let spec = CrossTrafficSpec::amlight_production();
        let mut rng = SimRng::seed_from_u64(3);
        let mut ct = CrossTraffic::new(spec, &mut rng);
        let mut t = SimTime::ZERO;
        for _ in 0..10_000 {
            let r = ct.rate_at(t, &mut rng).as_gbps();
            assert!(r == 0.0 || (r - 40.0).abs() < 1e-9);
            t += SimDuration::from_micros(50);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let spec = CrossTrafficSpec::amlight_production();
        let sample = |seed: u64| {
            let mut rng = SimRng::seed_from_u64(seed);
            let mut ct = CrossTraffic::new(spec, &mut rng);
            (0..1000)
                .map(|i| {
                    ct.rate_at(SimTime::from_nanos(i * 100_000), &mut rng).as_gbps() as u64
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(sample(5), sample(5));
    }
}
